// Broadcast fan-out soak: one channel versus a mixed listener
// population — healthy subscribers on clean pipes, a subscriber behind a
// write-fragmenting transport, a subscriber whose connection resets
// mid-stream, and a wedged subscriber that never reads a byte — while a
// player streams a recognizable ramp through the device mix. The
// assertions are the encode-once contract under fire: the encoder's work
// never depends on (or waits for) any listener, the wedged listener is
// evicted by the ordinary overload machinery while healthy listeners
// receive a gap-free, content-correct stream, and the broadcast
// conservation laws hold exactly once the dust settles.
package audiofile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/netsim"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

// ramp stamps device time into a µ-law byte. 251 is prime (so the
// pattern never phase-locks with chunk or block sizes) and the values
// 0..250 never collide with MU255 silence (0xFF), letting a listener
// classify every received byte as "my audio" or "silence".
func ramp(t uint32) byte { return byte(t % 251) }

// playRampBlocks streams non-overlapping ramp-stamped blocks a little
// ahead of device time, so the mix holds ramp(t) at every frame t the
// player covered and silence elsewhere. Returns on the first error
// (the soak's reset clients expect one).
func playRampBlocks(ac *af.AC, blocks, blockFrames int, fail func(error)) {
	data := make([]byte, blockFrames)
	var next af.ATime
	for j := 0; j < blocks; j++ {
		now, err := ac.GetTime()
		if err != nil {
			fail(fmt.Errorf("player GetTime %d: %w", j, err))
			return
		}
		t0 := now.Add(512)
		if t0 < next {
			t0 = next // never overlap: two blocks would double-mix
		}
		for i := range data {
			data[i] = ramp(uint32(t0) + uint32(i))
		}
		if _, err := ac.PlaySamples(t0, data); err != nil {
			fail(fmt.Errorf("player play %d: %w", j, err))
			return
		}
		next = t0.Add(blockFrames)
	}
}

// collectChunks reads n chunks from a subscription, asserting the
// stream contract as it goes: contiguous sequence numbers and every
// byte either the ramp for its device time or silence. Returns the
// number of ramp (non-silence) bytes seen.
func collectChunks(t *testing.T, sub *af.Subscription, n int, fail func(error)) int {
	t.Helper()
	rampBytes := 0
	haveSeq := false
	var wantSeq uint16
	for got := 0; got < n; got++ {
		ch, err := sub.Next()
		if err != nil {
			fail(fmt.Errorf("subscriber chunk %d: %w", got, err))
			return rampBytes
		}
		if haveSeq && ch.Seq != wantSeq {
			fail(fmt.Errorf("subscriber chunk %d: seq %d, want %d (gap)", got, ch.Seq, wantSeq))
			return rampBytes
		}
		haveSeq, wantSeq = true, ch.Seq+1
		if len(ch.Data) == 0 || len(ch.Data)%4 != 0 {
			fail(fmt.Errorf("subscriber chunk %d: %d bytes, want nonzero multiple of 4", got, len(ch.Data)))
			return rampBytes
		}
		for i, b := range ch.Data {
			if b == 0xFF { // µ-law silence: region the player did not cover
				continue
			}
			if want := ramp(uint32(ch.Time) + uint32(i)); b != want {
				fail(fmt.Errorf("subscriber chunk %d (time %d): byte %d = %#x, want %#x or silence",
					got, ch.Time, i, b, want))
				return rampBytes
			}
			rampBytes++
		}
	}
	return rampBytes
}

// TestBroadcastBasic: one player, one subscriber, a clean transport.
// The subscribed stream must be gap-free, time-stamped, and carry the
// played audio byte-exactly (µ-law mix of a single source round-trips).
func TestBroadcastBasic(t *testing.T) {
	const rate = 8000
	clk := vdev.NewManualClock(rate)
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.Advance(256)
			srv.Sync()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	t.Cleanup(stepWG.Wait)
	t.Cleanup(func() { close(stop) })

	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := af.NewConn(srv.DialPipe())
		if err != nil {
			fail(err)
			return
		}
		defer conn.Close()
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			fail(err)
			return
		}
		playRampBlocks(ac, 120, 2048, fail)
	}()

	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	sub, start, err := ac.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	rampBytes := collectChunks(t, sub, 60, fail)
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err == nil {
		t.Error("Next succeeded on an unsubscribed subscription")
	}
	conn.Close()

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
	if rampBytes == 0 {
		t.Errorf("subscriber starting at device time %d saw only silence; the played ramp never reached the channel", start)
	}

	s := drainSnapshot(t, srv)
	checkConservation(t, s)
	d := s.Devices[0]
	if d.BcastChunks == 0 || d.BcastMsgs == 0 {
		t.Errorf("broadcast counters did not move: chunks=%d msgs=%d", d.BcastChunks, d.BcastMsgs)
	}
	// One subscriber, one wire format: encode-once is exact equality.
	if d.BcastEncodes != d.BcastChunks {
		t.Errorf("encodes %d != chunks %d with a single format", d.BcastEncodes, d.BcastChunks)
	}
}

// TestBroadcastSubscribeErrors: the subscription state machine's edges —
// double subscription on a device, compressed contexts, unsubscribe
// idempotence, and FreeAC releasing the server-side slot.
func TestBroadcastSubscribeErrors(t *testing.T) {
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})

	wantCode := func(err error, code uint8, what string) {
		t.Helper()
		var pe *af.ProtoError
		if !errors.As(err, &pe) || pe.Code != code {
			t.Errorf("%s: err = %v, want proto error code %d", what, err, code)
		}
	}

	ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := ac.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	// A second subscription on the same device over the same connection
	// would be unroutable (chunks carry only the channel id): BadValue.
	ac2, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ac2.Subscribe()
	wantCode(err, proto.ErrValue, "second subscription on device")

	// Stateful coders cannot be shared across listeners: BadMatch.
	adpcm, err := conn.CreateAC(0, af.ACEncoding, af.ACAttributes{Type: af.ADPCM4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = adpcm.Subscribe()
	wantCode(err, proto.ErrMatch, "ADPCM subscription")

	// Unsubscribe releases the device slot and is idempotent.
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Errorf("second Unsubscribe: %v, want nil", err)
	}
	sub2, _, err := ac2.Subscribe()
	if err != nil {
		t.Fatalf("subscribe after unsubscribe freed the slot: %v", err)
	}

	// Freeing the context tears the subscription down server-side too:
	// the slot opens up and the local subscription is dead.
	if err := ac2.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub2.Next(); err == nil {
		t.Error("Next succeeded on a subscription whose context was freed")
	}
	if _, _, err := ac.Subscribe(); err != nil {
		t.Fatalf("subscribe after FreeAC released the slot: %v", err)
	}

	s := drainSnapshot(t, func() *aserver.Server { conn.Close(); return srv }())
	checkConservation(t, s)
}

// TestBroadcastSoak: the fan-out under fire. A player streams the ramp
// for the whole run while four kinds of listeners subscribe: two healthy
// (clean pipe), one behind a fragmenting transport, one whose transport
// resets mid-stream, and one wedged raw-socket listener that never reads
// a byte. The wedged one must be evicted by the ordinary overload
// machinery without the encoder ever stalling; the healthy ones must see
// a gap-free, content-correct stream throughout.
func TestBroadcastSoak(t *testing.T) {
	const (
		rate         = 8000
		simSpan      = 20 * rate // frames of simulated device time
		clientBudget = 32 << 10
		evictGrace   = 50 * time.Millisecond
		healthySubs  = 2
		subChunks    = 150
	)

	clk := vdev.NewManualClock(rate)
	srv, err := aserver.New(aserver.Options{
		Devices:          []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:             func(string, ...any) {},
		ClientQueueBytes: clientBudget,
		EvictGrace:       evictGrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	addr := l.Addr().String()

	var advanced atomic.Int64
	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.Advance(256)
			advanced.Add(256)
			srv.Sync()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	t.Cleanup(stepWG.Wait)
	t.Cleanup(func() { close(stop) })

	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	var wg sync.WaitGroup

	// The player: streams the ramp for the whole run so every listener
	// has content to verify.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := af.NewConn(srv.DialPipe())
		if err != nil {
			fail(err)
			return
		}
		defer conn.Close()
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			fail(err)
			return
		}
		playRampBlocks(ac, 400, 2048, fail)
	}()

	// Healthy subscribers: every chunk in order, every byte accounted.
	subscribeAndCollect := func(nc net.Conn, label string) {
		defer wg.Done()
		conn, err := af.NewConn(nc)
		if err != nil {
			fail(fmt.Errorf("%s setup: %w", label, err))
			return
		}
		defer conn.Close()
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
			return
		}
		sub, _, err := ac.Subscribe()
		if err != nil {
			fail(fmt.Errorf("%s subscribe: %w", label, err))
			return
		}
		if rampBytes := collectChunks(t, sub, subChunks, fail); rampBytes == 0 {
			fail(fmt.Errorf("%s: saw only silence across %d chunks", label, subChunks))
			return
		}
		if err := sub.Unsubscribe(); err != nil {
			fail(fmt.Errorf("%s unsubscribe: %w", label, err))
		}
	}
	for i := 0; i < healthySubs; i++ {
		wg.Add(1)
		go subscribeAndCollect(srv.DialPipe(), fmt.Sprintf("healthy subscriber %d", i))
	}

	// A subscriber behind a transport that fragments every client write:
	// held to the same gap-free standard — the push path is server→client
	// and must not care how the requests arrived.
	wg.Add(1)
	go func() {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			wg.Done()
			t.Error(err)
			return
		}
		subscribeAndCollect(netsim.NewFaultConn(nc, netsim.FaultConfig{
			Seed: 42, FragmentWrites: true, MaxFragment: 7}), "fragmented subscriber")
	}()

	// A subscriber whose transport dies mid-stream (deterministic reset on
	// its write path; the periodic GetTime supplies the writes). Whatever
	// it saw before the cut must be correct; the server must sweep its
	// subscription and account the teardown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			return
		}
		fc := netsim.NewFaultConn(nc, netsim.FaultConfig{Seed: 7, ResetAfterBytes: 600})
		conn, err := af.NewConn(fc)
		if err != nil {
			return // cut landed in setup
		}
		defer conn.Close()
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			return
		}
		sub, _, err := ac.Subscribe()
		if err != nil {
			return
		}
		haveSeq := false
		var wantSeq uint16
		for i := 0; ; i++ {
			ch, err := sub.Next()
			if err != nil {
				return // the reset: expected
			}
			if haveSeq && ch.Seq != wantSeq {
				fail(fmt.Errorf("reset subscriber: seq %d, want %d before the cut", ch.Seq, wantSeq))
				return
			}
			haveSeq, wantSeq = true, ch.Seq+1
			if i%8 == 0 {
				if _, err := ac.GetTime(); err != nil {
					return
				}
			}
		}
	}()

	// The wedged listener: subscribes over a raw unbuffered pipe and never
	// reads a byte, so the server's writer blocks on the very first
	// unconsumed message (TCP kernel buffers would mask the wedge for
	// megabytes). The pushed chunks pile up in its server-side queue,
	// cross the budget, and the eviction policy must cut it loose — the
	// encoder never waits on it either way.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc := srv.DialPipe()
		defer nc.Close()
		setup := proto.SetupRequest{
			ByteOrder: proto.LittleEndianOrder,
			Major:     proto.ProtocolMajor,
			Minor:     proto.ProtocolMinor,
		}
		if err := setup.Send(nc); err != nil {
			fail(fmt.Errorf("wedged setup: %w", err))
			return
		}
		if _, err := proto.ReadSetupReply(nc, binary.LittleEndian); err != nil {
			fail(fmt.Errorf("wedged setup reply: %w", err))
			return
		}
		var w proto.Writer
		w.Order = binary.LittleEndian
		proto.AppendCreateAC(&w, proto.CreateACReq{AC: 1, Device: 0}) //nolint:errcheck
		proto.AppendSubscribe(&w, 1)                                  //nolint:errcheck
		if _, err := nc.Write(w.Buf); err != nil {
			fail(fmt.Errorf("wedged subscribe: %w", err))
			return
		}
		// Never touch the transport again — even a slow read loop would
		// drain the pipe and mask the wedge. Watch the server's counters
		// for the eviction instead.
		deadline := time.Now().Add(8 * time.Second)
		for srv.Snapshot().Evictions == 0 {
			if time.Now().After(deadline) {
				fail(errors.New("wedged listener was never evicted"))
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
	for advanced.Load() < simSpan {
		time.Sleep(time.Millisecond)
	}

	s := drainSnapshot(t, srv)
	checkConservation(t, s)
	d := s.Devices[0]

	// The wedged listener must have been evicted by the ordinary overload
	// machinery; every disconnect classified exactly once.
	if s.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1 (the wedged listener)", s.Evictions)
	}
	if sum := s.Evictions + s.Sheds + s.Drains + s.ClientCloses; s.Disconnects != sum {
		t.Errorf("disconnects %d != evictions %d + sheds %d + drains %d + client closes %d",
			s.Disconnects, s.Evictions, s.Sheds, s.Drains, s.ClientCloses)
	}

	// Encode-once, exactly: every listener in this soak shares one wire
	// format (little-endian µ-law mono), so the encode count equals the
	// chunk count no matter how many listeners were attached — the law
	// the whole fan-out path exists to uphold.
	if d.BcastChunks == 0 {
		t.Error("no broadcast chunks cut; the soak never exercised the pump")
	}
	if d.BcastEncodes != d.BcastChunks {
		t.Errorf("encodes %d != chunks %d with a single wire format", d.BcastEncodes, d.BcastChunks)
	}
	if d.BcastMsgs == 0 {
		t.Error("no broadcast messages delivered")
	}
	if s.QueuedBytes != 0 {
		t.Errorf("queued bytes %d after drain, want 0", s.QueuedBytes)
	}
}
