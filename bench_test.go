// Package audiofile's root benchmarks regenerate the paper's evaluation
// (Section 10), one benchmark per table and figure. Absolute numbers are
// hardware-bound; the shapes to check against the paper are:
//
//	Fig. 10 / BenchmarkGetTime      — local ≪ networked; delay-injected
//	                                  configs dominated by the wire.
//	Fig. 11 / BenchmarkRecordSamples — fixed overhead + linear per-byte
//	                                  cost, with steps at 8 KiB chunk
//	                                  boundaries (a reply per chunk).
//	Fig. 12 / BenchmarkPlayPreempt   — near-linear in size: replies are
//	                                  suppressed on all but the last chunk.
//	Fig. 13 / BenchmarkPlayMix       — like Fig. 12 plus per-sample mixing,
//	                                  always slower than preempt.
//	Tables 10/11                     — the same runs expressed as
//	                                  throughput (bytes/sec follows from
//	                                  ns/op at each size).
//	Table 12 / BenchmarkLoopback     — the open-loop record→play iteration,
//	                                  bounded by per-request overhead.
//
// The afperf command prints these as paper-style tables; see EXPERIMENTS.md.
package audiofile

import (
	"fmt"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/internal/perfrig"
)

// benchConfigs are the transport configurations standing in for the
// paper's host configurations. The delayed TCP variants are confined to
// the latency benchmark to keep -bench runs fast.
var benchConfigs = []perfrig.Config{
	{Name: "unix", Transport: "unix"},
	{Name: "tcp", Transport: "tcp"},
}

func newRig(b *testing.B, cfg perfrig.Config) *perfrig.Rig {
	b.Helper()
	r, err := perfrig.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	return r
}

// BenchmarkGetTime is Figure 10: the AFGetTime round trip, the baseline
// cost of an AudioFile operation (8-byte request, minimal processing).
func BenchmarkGetTime(b *testing.B) {
	configs := append([]perfrig.Config{{Name: "pipe", Transport: "pipe"}}, benchConfigs...)
	configs = append(configs, perfrig.Config{Name: "tcp+1ms", Transport: "tcp", RTT: time.Millisecond})
	for _, cfg := range configs {
		b.Run(cfg.Name, func(b *testing.B) {
			r := newRig(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Conn.GetTime(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var transferSizes = []int{64, 1 << 10, 4 << 10, 8 << 10, 16 << 10, 24 << 10}

// BenchmarkRecordSamples is Figure 11: AFRecordSamples of various lengths
// that hit entirely in the server's record buffer and do not block. The
// jumps at 8 KiB multiples are the client library's chunking: each chunk
// is a synchronous round trip.
func BenchmarkRecordSamples(b *testing.B) {
	for _, cfg := range benchConfigs {
		b.Run(cfg.Name, func(b *testing.B) {
			r := newRig(b, cfg)
			if err := r.PrimeRecord(); err != nil {
				b.Fatal(err)
			}
			now, err := r.AC.GetTime()
			if err != nil {
				b.Fatal(err)
			}
			for _, size := range transferSizes {
				b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
					buf := make([]byte, size)
					start := now.Add(-size)
					b.SetBytes(int64(size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_, n, err := r.AC.RecordSamples(start, buf, true)
						if err != nil || n != size {
							b.Fatalf("n=%d err=%v", n, err)
						}
					}
				})
			}
		})
	}
}

// playBench measures AFPlaySamples of various lengths landing in the
// buffered near future (never blocking), in mixing or preemptive mode.
func playBench(b *testing.B, preempt bool) {
	for _, cfg := range benchConfigs {
		b.Run(cfg.Name, func(b *testing.B) {
			r := newRig(b, cfg)
			if preempt {
				if err := r.AC.ChangeAttributes(af.ACPreemption,
					af.ACAttributes{Preempt: true}); err != nil {
					b.Fatal(err)
				}
			}
			now, err := r.AC.GetTime()
			if err != nil {
				b.Fatal(err)
			}
			start := now.Add(4000) // half a second ahead; rewritten every iteration
			for _, size := range transferSizes {
				b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
					data := make([]byte, size)
					for i := range data {
						data[i] = byte(0x80 + i%64)
					}
					b.SetBytes(int64(size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := r.AC.PlaySamples(start, data); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkPlayPreempt is Figure 12: preemptive play, the fastest path —
// data is copied into the server's play buffer, and replies are
// suppressed for all but the final chunk.
func BenchmarkPlayPreempt(b *testing.B) { playBench(b, true) }

// BenchmarkPlayMix is Figure 13: mixing play. The cost of mixing by the
// server is visible: mixing is always slower than preemptive play
// (Table 11).
func BenchmarkPlayMix(b *testing.B) { playBench(b, false) }

// BenchmarkLoopback is Table 12: the open-loop record/play test of
// §10.1.4 — read whatever samples are available without blocking, write
// them back immediately. The iteration rate is governed entirely by
// AudioFile overhead and bounds real-time audio handling.
func BenchmarkLoopback(b *testing.B) {
	for _, cfg := range benchConfigs {
		b.Run(cfg.Name, func(b *testing.B) {
			r := newRig(b, cfg)
			if err := r.PrimeRecord(); err != nil {
				b.Fatal(err)
			}
			next, err := r.AC.GetTime()
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 8000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The device moves 20 ms per iteration (the clock is
				// manual, so this models a fast real-time loop).
				r.Clk.Advance(160)
				now, n, err := r.AC.RecordSamples(next, buf[:160], false)
				if err != nil {
					b.Fatal(err)
				}
				if n > 0 {
					if _, err := r.AC.PlaySamples(next.Add(4000), buf[:n]); err != nil {
						b.Fatal(err)
					}
				}
				next = now
			}
		})
	}
}

// BenchmarkServerMixing isolates the per-sample mixing cost inside the
// server (the Table 11 mixing-vs-preempt gap) without transport noise.
func BenchmarkServerMixing(b *testing.B) {
	r := newRig(b, perfrig.Config{Name: "pipe", Transport: "pipe"})
	now, err := r.AC.GetTime()
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 8000)
	for i := range data {
		data[i] = byte(i)
	}
	start := now.Add(4000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AC.PlaySamples(start, data); err != nil {
			b.Fatal(err)
		}
	}
}
