// Quickstart: the smallest complete AudioFile program. It embeds a
// server with a loopback-wired CODEC device, connects as a client, plays
// a dial tone at an exact device time, records the same interval back
// through the loopback cable, and verifies the audio survived the trip.
//
// The point to notice is the explicit use of device time: the client
// decides exactly when the sound plays and exactly which interval it
// records — there is no stream to synchronize, only timestamps.
package main

import (
	"fmt"
	"log"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
)

func main() {
	// An in-process server: one local CODEC whose output is patched to
	// its input. (Point af.Open at a running afd to use a real one.)
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{
			{Kind: "codec", Name: "codec0", Loopback: true},
		},
		Logf: func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	dev := conn.FindDefaultDevice()
	d := conn.Devices()[dev]
	fmt.Printf("connected to %q: device %d (%s), %d Hz %v\n",
		conn.Vendor(), dev, d.Name, d.PlaySampleFreq, d.PlayBufType)

	ac, err := conn.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		log.Fatal(err)
	}

	// Render one second of North American dial tone (Table 7).
	spec := afutil.CallProgressTones["dialtone"]
	tone := make([]byte, d.PlaySampleFreq)
	afutil.TonePair(spec.F1, spec.DB1, spec.F2, spec.DB2, 40, d.PlaySampleFreq, tone)

	// Schedule it a quarter second in the future, to the sample.
	now, err := ac.GetTime()
	if err != nil {
		log.Fatal(err)
	}
	start := now.Add(d.PlaySampleFreq / 4)
	if _, err := ac.PlaySamples(start, tone); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d samples at device time %d (now %d)\n", len(tone), start, now)

	// Record the exact same interval. The blocking record returns the
	// moment the last requested sample has been captured.
	buf := make([]byte, len(tone))
	endTime, n, err := ac.RecordSamples(start, buf, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d bytes; device time is now %d\n", n, endTime)

	// The loopback means the recording is the tone we played.
	p := afutil.PowerMu(buf)
	fmt.Printf("recorded signal power: %.1f dBm (dial tone is two -13 dBm tones ≈ -10 dBm)\n", p)
	if p < -13 || p > -7 {
		log.Fatal("quickstart: loopback audio missing or mangled")
	}
	fmt.Println("ok")
}
