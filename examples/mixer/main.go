// Mixer: the output model of §2.2 with multiple simultaneous clients.
// Three independent connections play overlapping tones into the same
// device — "two audio applications running on a single computer should
// behave just like those same applications running on separate computers
// in the same room" — and the server mixes them. A fourth client then
// preempts with an urgent announcement that overwrites the mix.
package main

import (
	"fmt"
	"log"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/vdev"
)

func main() {
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Sink: speaker}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Three clients, three tones, one device.
	freqs := []float64{440, 550, 660}
	conns := make([]*af.Conn, len(freqs))
	acs := make([]*af.AC, len(freqs))
	for i := range conns {
		conns[i], err = af.NewConn(srv.DialPipe())
		if err != nil {
			log.Fatal(err)
		}
		defer conns[i].Close()
		acs[i], err = conns[i].CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			log.Fatal(err)
		}
	}
	rate := conns[0].Devices()[0].PlaySampleFreq

	// All three schedule the same interval; the server mixes.
	now, err := acs[0].GetTime()
	if err != nil {
		log.Fatal(err)
	}
	start := now.Add(rate / 4)
	second := rate
	for i, f := range freqs {
		tone := make([]byte, second)
		afutil.TonePair(f, -13, 0, -120, 40, rate, tone)
		if _, err := acs[i].PlaySamples(start, tone); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client %d scheduled a %.0f Hz tone at time %d\n", i, f, start)
	}

	// A fourth client preempts the middle 200 ms with an urgent tone:
	// preemptive play overwrites the mixed data already in place.
	urgent, err := af.NewConn(srv.DialPipe())
	if err != nil {
		log.Fatal(err)
	}
	defer urgent.Close()
	uac, err := urgent.CreateAC(0, af.ACPreemption, af.ACAttributes{Preempt: true})
	if err != nil {
		log.Fatal(err)
	}
	alarm := make([]byte, rate/5)
	afutil.TonePair(1500, -6, 0, -120, 40, rate, alarm)
	alarmAt := start.Add(2 * rate / 5)
	if _, err := uac.PlaySamples(alarmAt, alarm); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("urgent client preempted %d samples at time %d\n", len(alarm), alarmAt)

	// Wait for it all to play out, then inspect what the speaker heard.
	endAt := start.Add(second)
	buf := make([]byte, 1)
	if _, _, err := acs[0].RecordSamples(endAt, buf, true); err != nil {
		log.Fatal(err)
	}

	heard, heardStart := speaker.Bytes()
	// Index of a frame inside the capture.
	at := func(t af.ATime) int { return int(int32(uint32(t) - uint32(heardStart))) }

	mixRegion := heard[at(start.Add(rate/10)):at(start.Add(3*rate/10))]
	alarmRegion := heard[at(alarmAt.Add(len(alarm)/4)):at(alarmAt.Add(3*len(alarm)/4))]

	pMix := afutil.PowerMu(mixRegion)
	pAlarm := afutil.PowerMu(alarmRegion)
	fmt.Printf("mixed region power:   %.1f dBm (three -13 dBm tones ≈ -8.2 dBm)\n", pMix)
	fmt.Printf("preempted region:     %.1f dBm (one -6 dBm tone)\n", pAlarm)

	if pMix < -11 || pMix > -5 {
		log.Fatal("mixing did not produce the expected level")
	}
	if pAlarm < -8 || pAlarm > -4 {
		log.Fatal("preemption did not produce the expected level")
	}
	fmt.Println("ok")
}
