// Intercom: the apass scenario of §8.3 — record from a device on one
// AudioFile server and play, after a strict delay budget, on a device of
// a *different* server whose sample clock runs at a slightly different
// rate (crystal tolerance, here an exaggerated 2000 ppm so the effect
// shows up within seconds).
//
// The two servers' device times cannot be compared directly; the loop is
// paced by the transmit server's blocking record, and the receiver-side
// slack (tt - tactt) is tracked so that when clock drift pushes the
// end-to-end delay outside the anti-jitter band, the connection
// resynchronizes — the paper's "audible blip".
package main

import (
	"fmt"
	"log"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

func main() {
	// Transmit server: its microphone hears a 440 Hz tone.
	mic := vdev.SineSource{Freq: 440, Amp: 6000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	txSrv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "mic", Source: mic}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer txSrv.Close()

	// Receive server: 2000 ppm fast, speaker captured for inspection.
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	rxSrv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "spkr", PPM: 2000, Sink: speaker}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rxSrv.Close()

	faud, err := af.NewConn(txSrv.DialPipe())
	if err != nil {
		log.Fatal(err)
	}
	defer faud.Close()
	taud, err := af.NewConn(rxSrv.DialPipe())
	if err != nil {
		log.Fatal(err)
	}
	defer taud.Close()

	fac, err := faud.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		log.Fatal(err)
	}
	tac, err := taud.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		log.Fatal(err)
	}

	const (
		rate         = 8000
		delaySamples = 2400 // 300 ms end-to-end budget
		ajSamples    = 80   // ±10 ms anti-jitter band
		blockSamples = 800  // 100 ms packetization
	)
	buf := make([]byte, blockSamples)

	ft, err := fac.GetTime()
	if err != nil {
		log.Fatal(err)
	}
	tt0, err := tac.GetTime()
	if err != nil {
		log.Fatal(err)
	}
	tt := tt0.Add(delaySamples)

	resyncs := 0
	var hist [4]int
	for i := range hist {
		hist[i] = delaySamples // seed so startup does not look like drift
	}
	fmt.Println("passing 6 seconds of audio between clock domains (rx runs 2000 ppm fast)...")
	for block := 0; block < 60; block++ {
		// Pacing flow control: the source server blocks until the block
		// has been captured.
		if _, n, err := fac.RecordSamples(ft, buf, true); err != nil || n != len(buf) {
			log.Fatalf("record: n=%d err=%v", n, err)
		}
		tactt, err := tac.PlaySamples(tt, buf)
		if err != nil {
			log.Fatal(err)
		}
		hist[block%len(hist)] = int(af.TimeSub(tt, tactt))
		slip := 0
		for _, v := range hist {
			slip += v
		}
		slip /= len(hist)
		if block >= len(hist) && (slip < delaySamples-ajSamples || slip >= delaySamples+ajSamples) {
			tt = tactt.Add(delaySamples)
			resyncs++
			for i := range hist {
				hist[i] = delaySamples // restart the average after resync
			}
			fmt.Printf("  block %2d: slip %d samples out of band, resynchronized\n", block, slip)
		}
		ft = ft.Add(blockSamples)
		tt = tt.Add(blockSamples)
	}

	// The receiver clock gains 2000 ppm * 6 s = 96 samples against the
	// transmitter; with an 80-sample band the connection must have
	// resynchronized at least once.
	fmt.Printf("resyncs: %d\n", resyncs)
	if resyncs == 0 {
		log.Fatal("intercom: expected at least one clock resynchronization")
	}

	// The speaker really heard the tone.
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -30 {
		log.Fatalf("intercom: speaker heard only %.1f dBm", p)
	} else {
		fmt.Printf("speaker signal power: %.1f dBm\n", p)
	}
	fmt.Println("ok")
}
