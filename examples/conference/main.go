// Conference: the application AudioFile was built to enable.
// "Teleconferencing ... must communicate with multiple audio servers" —
// network transparency means one bridge process can hold connections to
// every participant's workstation at once (§1.1).
//
// Three participants each run their own AudioFile server (their own
// workstation, their own sample clock). Each participant's microphone
// carries a distinctive tone. The bridge records a block from everyone,
// then plays to each participant the mix of the *other* participants —
// the N-way version of apass, with the same delay budget and the same
// explicit-time scheduling.
//
// The check at the end: every speaker hears the other two tones and not
// its own.
package main

import (
	"fmt"
	"log"
	"math"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

const (
	rate         = 8000
	blockSamples = 800  // 100 ms packetization
	delaySamples = 2400 // 300 ms end-to-end budget
	nBlocks      = 30   // 3 seconds of conference
)

type participant struct {
	name    string
	freq    float64
	srv     *aserver.Server
	conn    *af.Conn
	ac      *af.AC
	speaker *vdev.CaptureSink
	recT    af.ATime // next record time on this participant's clock
	playT   af.ATime // next play time on this participant's clock
}

func main() {
	freqs := map[string]float64{"ann": 500, "bob": 800, "carol": 1250}
	var people []*participant
	for name, f := range freqs {
		p := &participant{name: name, freq: f}
		p.speaker = &vdev.CaptureSink{Max: 1 << 20}
		mic := vdev.SineSource{Freq: f, Amp: 5000, Rate: rate, Enc: sampleconv.MU255, Ch: 1}
		srv, err := aserver.New(aserver.Options{
			Devices: []aserver.DeviceSpec{{Kind: "codec", Name: name, Source: mic, Sink: p.speaker}},
			Logf:    func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		p.srv = srv
		p.conn, err = af.NewConn(srv.DialPipe())
		if err != nil {
			log.Fatal(err)
		}
		defer p.conn.Close()
		p.ac, err = p.conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			log.Fatal(err)
		}
		now, err := p.ac.GetTime()
		if err != nil {
			log.Fatal(err)
		}
		p.recT = now
		p.playT = now.Add(delaySamples)
		people = append(people, p)
	}
	fmt.Printf("bridging %d participants across %d servers...\n", len(people), len(people))

	// The bridge loop. Each participant's device time is private — the
	// bridge never compares clocks, it only advances each one by the
	// block size and lets each server's buffering absorb the rest.
	blocks := make([][]byte, len(people))
	lin := make([][]int16, len(people))
	for i := range blocks {
		blocks[i] = make([]byte, blockSamples)
		lin[i] = make([]int16, blockSamples)
	}
	mix := make([]int16, blockSamples)
	out := make([]byte, blockSamples)
	for b := 0; b < nBlocks; b++ {
		// Collect a block from everyone (the first record paces the loop).
		for i, p := range people {
			if _, n, err := p.ac.RecordSamples(p.recT, blocks[i], true); err != nil || n != blockSamples {
				log.Fatalf("record %s: n=%d err=%v", p.name, n, err)
			}
			sampleconv.ToLin16(lin[i], blocks[i], sampleconv.MU255, blockSamples)
			p.recT = p.recT.Add(blockSamples)
		}
		// For each participant, mix everyone else and schedule it.
		for i, p := range people {
			for s := 0; s < blockSamples; s++ {
				sum := 0
				for j := range people {
					if j != i {
						sum += int(lin[j][s])
					}
				}
				mix[s] = sampleconv.Clamp16(sum)
			}
			sampleconv.FromLin16(out, sampleconv.MU255, mix, blockSamples)
			if _, err := p.ac.PlaySamples(p.playT, out); err != nil {
				log.Fatal(err)
			}
			p.playT = p.playT.Add(blockSamples)
		}
	}

	// Verify: each speaker heard the other two tones, not its own.
	ok := true
	for i, p := range people {
		heard, _ := p.speaker.Bytes()
		x := make([]float64, len(heard))
		for j, v := range heard {
			x[j] = float64(sampleconv.DecodeMuLaw(v))
		}
		fmt.Printf("%-6s hears:", p.name)
		for j, q := range people {
			g := dsp.Goertzel(x, q.freq, rate) / float64(len(x))
			level := 10 * math.Log10(g+1)
			present := level > 75 // real tones ~108 dB; leakage floor ~48 dB
			fmt.Printf("  %.0fHz %5.1fdB(%v)", q.freq, level, present)
			if (j == i) == present {
				ok = false
			}
		}
		fmt.Println()
	}
	if !ok {
		log.Fatal("conference routing wrong")
	}
	fmt.Println("ok")
}
