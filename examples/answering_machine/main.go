// Answering machine: the §8.6 "trivial answering machine" shell script,
// reimplemented as a Go program against the simulated telephone line.
//
// The sequence is exactly the script's: wait for the phone to ring twice,
// answer it, play the outgoing message, record the caller until silence,
// play a thank-you beep, and hang up. A scripted "caller" goroutine plays
// the exchange: it rings the line, speaks (a tone burst stands in for
// speech), punches a Touch-Tone digit, and goes quiet.
package main

import (
	"fmt"
	"log"
	"time"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
)

func main() {
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "phone", Name: "phone0"}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	phone := conn.FindPhoneDevice()
	rate := conn.Devices()[phone].PlaySampleFreq
	if err := conn.SelectEvents(phone, af.MaskAllEvents); err != nil {
		log.Fatal(err)
	}
	if err := conn.Sync(); err != nil {
		log.Fatal(err)
	}

	// The scripted caller.
	go caller(srv)

	// aevents -ringcount 2: wait for the second ring.
	rings := 0
	for rings < 2 {
		ev, err := conn.NextEvent()
		if err != nil {
			log.Fatal(err)
		}
		if ev.Code == af.EventPhoneRing && ev.Detail == 1 {
			rings++
			fmt.Printf("ring %d\n", rings)
		}
	}

	// ahs off: answer.
	if err := conn.HookSwitch(phone, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("answered")

	ac, err := conn.CreateAC(phone, 0, af.ACAttributes{})
	if err != nil {
		log.Fatal(err)
	}

	// aplay -f outgoing_message.snd: a two-second two-tone greeting.
	greeting := make([]byte, 2*rate)
	afutil.TonePair(440, -10, 660, -12, 80, rate, greeting)
	now, _ := ac.GetTime()
	start := now.Add(rate / 10)
	if _, err := ac.PlaySamples(start, greeting); err != nil {
		log.Fatal(err)
	}
	// aplay -f beep.snd.
	beep := make([]byte, rate/4)
	afutil.TonePair(1000, -6, 0, -120, 40, rate, beep)
	beepAt := start.Add(len(greeting))
	if _, err := ac.PlaySamples(beepAt, beep); err != nil {
		log.Fatal(err)
	}
	fmt.Println("played greeting and beep")

	// arecord -silentlevel -35 -silenttime 1 -l 8 -t -0.2: record the
	// caller starting just before the beep ends, until a second of
	// silence or eight seconds pass.
	t := beepAt.Add(len(beep) - rate/5)
	var message []byte
	silentRun := 0.0
	block := rate / 8
	buf := make([]byte, block)
	for len(message) < 8*rate {
		if _, n, err := ac.RecordSamples(t, buf, true); err != nil || n == 0 {
			break
		}
		message = append(message, buf...)
		t = t.Add(block)
		if afutil.PowerMu(buf) < -35 {
			silentRun += float64(block) / float64(rate)
			if silentRun >= 1.0 {
				break
			}
		} else {
			silentRun = 0
		}
	}
	fmt.Printf("recorded %.1f seconds of message\n", float64(len(message))/float64(rate))

	// ahs on: hang up.
	if err := conn.HookSwitch(phone, false); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hung up")

	// Check for any digits the caller punched (e.g. a menu choice).
	for {
		n, err := conn.EventsQueued(af.QueuedAfterReading)
		if err != nil || n == 0 {
			break
		}
		ev, _ := conn.NextEvent()
		if ev != nil && ev.Code == af.EventPhoneDTMF {
			fmt.Printf("caller pressed '%c'\n", ev.Detail)
		}
	}

	power := afutil.PowerMu(message)
	fmt.Printf("message power: %.1f dBm\n", power)
	if power < -40 {
		log.Fatal("answering machine recorded only silence")
	}
	fmt.Println("ok")
}

// caller scripts the far end of the call.
func caller(srv *aserver.Server) {
	line := srv.PhoneLine(0)
	// Two rings, a second apart.
	line.RingPulse()
	time.Sleep(time.Second)
	line.RingPulse()
	// Wait out the greeting and beep (~2.5 s after answer), then talk.
	time.Sleep(3 * time.Second)
	speech := make([]byte, 2*8000)
	afutil.TonePair(300, -12, 520, -14, 200, 8000, speech)
	line.RemoteAudio(speech)
	// Press a digit at the end.
	line.RemoteDigits("3")
	// Then silence: the machine's silence detector ends the recording.
}
