// BenchmarkRouterProxy prices the fleet router's splice: the same raw
// wire round trips against an afd directly and through the router. The
// proxied hot path is a pure byte splice through pooled buffers, so both
// modes must report 0 allocs/op (gated in CI), and the routed round trip
// should stay within ~2x of direct — the router adds two socket hops and
// nothing else.
package audiofile

import (
	"bufio"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"audiofile/aserver"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

// benchRouterConn dials the backend directly or through a router and
// completes the AF handshake, returning the raw wire.
func benchRouterConn(b *testing.B, routed bool) (net.Conn, *bufio.Reader) {
	b.Helper()
	clk := vdev.NewManualClock(8000)
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	bl, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { bl.Close() })
	target := bl.Addr().String()
	if routed {
		router, err := aserver.NewRouter(aserver.RouterOptions{
			Backends:      []string{target},
			ProbeInterval: 100 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(router.Close)
		rl, err := router.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		target = rl.Addr().String()
	}
	nc, err := net.Dial("tcp", target)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { nc.Close() })
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck
	}
	setup := proto.SetupRequest{
		ByteOrder: proto.LittleEndianOrder,
		Major:     proto.ProtocolMajor,
		Minor:     proto.ProtocolMinor,
	}
	if err := setup.Send(nc); err != nil {
		b.Fatal(err)
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	rep, err := proto.ReadSetupReply(br, binary.LittleEndian)
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Success {
		b.Fatalf("setup refused: %s", rep.Reason)
	}
	return nc, br
}

// awaitReply reads messages until a reply with the given sequence.
func benchAwaitReply(b *testing.B, br *bufio.Reader, msg *proto.Message, seq uint16) {
	for {
		if err := proto.ReadMessageInto(br, binary.LittleEndian, msg); err != nil {
			b.Fatal(err)
		}
		if msg.Reply != nil && msg.Reply.Seq == seq {
			return
		}
		if msg.Error != nil && msg.Error.Seq == seq {
			b.Fatalf("request failed: code %d", msg.Error.Code)
		}
	}
}

func BenchmarkRouterProxy(b *testing.B) {
	for _, mode := range []struct {
		name   string
		routed bool
	}{
		{"direct", false},
		{"routed", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// gettime: the minimal round trip — per-message proxy overhead.
			b.Run("gettime", func(b *testing.B) {
				nc, br := benchRouterConn(b, mode.routed)
				var w proto.Writer
				w.Order = binary.LittleEndian
				if err := proto.AppendDeviceReq(&w, proto.OpGetTime, 0); err != nil {
					b.Fatal(err)
				}
				req := w.Buf
				var msg proto.Message
				seq := uint16(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := nc.Write(req); err != nil {
						b.Fatal(err)
					}
					seq++
					benchAwaitReply(b, br, &msg, seq)
				}
			})
			// play8k: one 8 KiB preemptive play chunk per round trip — the
			// bulk splice path the proxied_bytes counters meter.
			b.Run("play8k", func(b *testing.B) {
				const size = 8 << 10
				nc, br := benchRouterConn(b, mode.routed)
				var w proto.Writer
				w.Order = binary.LittleEndian
				err := proto.AppendCreateAC(&w, proto.CreateACReq{
					AC:     1,
					Device: 0,
					Mask:   proto.ACPreemption,
					Attrs:  proto.ACAttributes{Preempt: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nc.Write(w.Buf); err != nil {
					b.Fatal(err)
				}
				seq := uint16(1) // CreateAC consumed sequence 1
				data := make([]byte, size)
				for i := range data {
					data[i] = byte(0x80 + i%64)
				}
				w.Reset()
				// Half a second ahead on a frozen manual clock: always in
				// the buffer window, never parked, rewritten every
				// iteration by preemption.
				err = proto.AppendPlaySamples(&w, proto.PlaySamplesReq{
					AC:   1,
					Time: 4000,
					Data: data,
				})
				if err != nil {
					b.Fatal(err)
				}
				req := w.Buf
				var msg proto.Message
				b.SetBytes(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := nc.Write(req); err != nil {
						b.Fatal(err)
					}
					seq++
					benchAwaitReply(b, br, &msg, seq)
				}
			})
		})
	}
}
