// BenchmarkShardScaling measures aggregate play throughput as root
// devices and clients multiply: N manual-clock CODEC devices, M clients
// over in-process pipes, each streaming preemptive 24 KiB plays (three
// 8 KiB chunks, replies suppressed on all but the last) at a fixed
// near-future device time so nothing ever blocks on audio time.
//
// Under the paper's single-threaded DIA every request from every client
// funnels through one dispatch goroutine, so the aggregate rate is flat
// in the number of devices. With the sharded data plane each root
// device's engine serves its own clients, so the aggregate rate should
// grow with device count (bounded by core count) and the per-request
// ingress cost (channel hops, allocations) drops out of the picture.
package audiofile

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/vdev"
)

// shardRig is an N-device server plus M pipe-connected clients, client i
// bound to device i%N.
type shardRig struct {
	srv *aserver.Server
	acs []*af.AC
}

func newShardRig(b *testing.B, devices, clients int) *shardRig {
	b.Helper()
	specs := make([]aserver.DeviceSpec, devices)
	for i := range specs {
		specs[i] = aserver.DeviceSpec{
			Kind:  "codec",
			Name:  fmt.Sprintf("codec%d", i),
			Clock: vdev.NewManualClock(8000),
		}
	}
	srv, err := aserver.New(aserver.Options{
		Devices: specs,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	r := &shardRig{srv: srv}
	for i := 0; i < clients; i++ {
		conn, err := af.NewConn(srv.DialPipe())
		if err != nil {
			b.Fatal(err)
		}
		// Cleanup runs LIFO: the server closes before the clients, so
		// drop the resulting transport errors silently.
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		b.Cleanup(func() { conn.Close() })
		ac, err := conn.CreateAC(i%devices, af.ACPreemption,
			af.ACAttributes{Preempt: true})
		if err != nil {
			b.Fatal(err)
		}
		r.acs = append(r.acs, ac)
	}
	b.Cleanup(srv.Close)
	return r
}

func BenchmarkShardScaling(b *testing.B) {
	const clients = 8
	const blockBytes = 24 << 10
	// The large rungs (256, 1024) measure the cost of *hosting* a big
	// fleet, not of spreading clients over it: the 8 clients play on the
	// first 8 devices while the other engines tick idle on the wheel.
	// Under the retired goroutine-per-engine design those rungs paid for
	// ~devices timer goroutines; on the wheel they cost shard batches.
	for _, devices := range []int{1, 2, 4, 256, 1024} {
		b.Run(fmt.Sprintf("devs=%d/clients=%d", devices, clients), func(b *testing.B) {
			r := newShardRig(b, devices, clients)
			data := make([]byte, blockBytes)
			for i := range data {
				data[i] = byte(0x80 + i%64)
			}
			// Fixed near-future start: far enough ahead that the whole
			// block fits under the buffer horizon, rewritten every
			// iteration (preemption makes re-plays cheap copies).
			now, err := r.acs[0].GetTime()
			if err != nil {
				b.Fatal(err)
			}
			start := now.Add(4000)
			b.SetBytes(blockBytes)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			var firstErr atomic.Value
			for _, ac := range r.acs {
				wg.Add(1)
				go func(ac *af.AC) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := ac.PlaySamples(start, data); err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
					}
				}(ac)
			}
			wg.Wait()
			if err := firstErr.Load(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
