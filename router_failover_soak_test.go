// Router failover soak: a fleet of three afd backends behind the
// consistent-hash router, a crowd of route-keyed clients streaming
// play/record traffic through it, and a backend killed mid-stream. The
// assertions are the failover contract from the fleet-routing design:
//
//   - Every client of the dead backend resumes on the standby the
//     directory predicts (first live owner in preference order), within
//     the soak's recovery window, and keeps streaming.
//   - No client sees an error above af.SetReconnect: the only failure
//     shape the workload may observe is af.ReconnectedError, after
//     which a GetTime re-anchor resumes the stream.
//   - Clients on surviving backends are untouched: zero resyncs.
//   - Audio contexts replay verbatim across the failover: the replayed
//     AC keeps working (plays, records, attribute changes) on the
//     standby without being re-created by the application.
//   - The router's books balance: failovers_started ==
//     failovers_completed + failovers_abandoned and routes ==
//     closed_client + closed_backend + failovers_started, exactly, once
//     the router is drained; the one-sided forms hold live.
//   - Goroutines settle to baseline after teardown: no leaked pumps,
//     probers, breakers, or client readers.
//
// ROUTER_SEED varies the routing keys (and so the placement pattern);
// CI runs a small seed matrix.
package audiofile

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/netsim"
	"audiofile/internal/vdev"
)

// routerSeed returns the run's placement seed (ROUTER_SEED, default 1).
func routerSeed(t *testing.T) int64 {
	s := os.Getenv("ROUTER_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("ROUTER_SEED=%q: %v", s, err)
	}
	return v
}

// soakBackend is one afd of the simulated fleet: a real-clock server
// listening through a Breaker so the test can crash it.
type soakBackend struct {
	srv *aserver.Server
	brk *netsim.Breaker
}

func newSoakBackend(t *testing.T, name string) *soakBackend {
	t.Helper()
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: name, Clock: vdev.NewRealClock(8000, 0)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	brk := netsim.NewBreaker(inner)
	go srv.Serve(brk) //nolint:errcheck — ends when the breaker closes
	return &soakBackend{srv: srv, brk: brk}
}

// soakClient is one streaming session's loop state and verdict.
type soakClient struct {
	key   string
	owner int // directory placement while all backends are healthy

	mu            sync.Mutex
	plays         int // successful play round trips
	records       int // successful record round trips
	resyncs       int // ReconnectedError occurrences
	playsAfterCut int // successful plays after the kill (victim clients: resumed)
	hardErr       error
}

func (sc *soakClient) note(f func(*soakClient)) {
	sc.mu.Lock()
	f(sc)
	sc.mu.Unlock()
}

func TestRouterFailoverSoak(t *testing.T) {
	const (
		nBackends = 3
		nClients  = 12
		chunk     = 256
	)
	seed := routerSeed(t)
	baseline := runtime.NumGoroutine()

	backends := make([]*soakBackend, nBackends)
	addrs := make([]string, nBackends)
	for i := range backends {
		backends[i] = newSoakBackend(t, fmt.Sprintf("codec%d", i))
		addrs[i] = backends[i].brk.Addr().String()
	}
	router, err := aserver.NewRouter(aserver.RouterOptions{
		Backends:      addrs,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		DialTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := router.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	routerAddr := rl.Addr().String()
	dir := router.Directory()

	// The workload: each client streams short plays (with records and
	// attribute changes sprinkled in) until told to stop. The only
	// tolerated failure is ReconnectedError — anything else is a hard
	// error and fails the soak.
	clients := make([]*soakClient, nClients)
	conns := make([]*af.Conn, nClients)
	acs := make([]*af.AC, nClients)
	for i := range clients {
		key := fmt.Sprintf("session-%d-%d", seed, i)
		clients[i] = &soakClient{key: key, owner: dir.Lookup(key)}
		nc, err := net.Dial("tcp", routerAddr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := af.NewConnRoute(nc, i%2 == 1, key)
		if err != nil {
			t.Fatal(err)
		}
		c.SetIOErrorHandler(func(*af.Conn, error) {})
		sc := clients[i]
		err = c.SetReconnect(af.ReconnectOptions{
			Redial:      func() (net.Conn, error) { return net.Dial("tcp", routerAddr) },
			MaxAttempts: 12,
			Backoff:     10 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			// Idempotent ops (the GetTime anchor) are retried without
			// surfacing ReconnectedError, so the hook is the reliable
			// reconnect observer.
			OnResync: func(*af.Conn) { sc.note(func(s *soakClient) { s.resyncs++ }) },
		})
		if err != nil {
			t.Fatal(err)
		}
		ac, err := c.CreateAC(0, af.ACPreemption|af.ACPlayGain, af.ACAttributes{Preempt: true, PlayGain: -6})
		if err != nil {
			t.Fatal(err)
		}
		conns[i], acs[i] = c, ac
	}

	var cut atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(sc *soakClient, c *af.Conn, ac *af.AC) {
			defer wg.Done()
			data := make([]byte, chunk)
			for j := range data {
				data[j] = byte(j*5 + 1)
			}
			rec := make([]byte, 64)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				// Anchor every play just ahead of live device time so the
				// stream survives arbitrary device-time jumps across a
				// failover without parking.
				now, err := ac.GetTime()
				if err == nil {
					_, err = ac.PlaySamples(now.Add(chunk), data)
				}
				if err == nil && iter%8 == 3 {
					_, _, err = ac.RecordSamples(now, rec, false)
					if err == nil {
						sc.note(func(s *soakClient) { s.records++ })
					}
				}
				if err == nil && iter%32 == 17 {
					err = ac.ChangeAttributes(af.ACPlayGain, af.ACAttributes{PlayGain: -3})
				}
				switch {
				case err == nil:
					sc.note(func(s *soakClient) {
						s.plays++
						if cut.Load() {
							s.playsAfterCut++
						}
					})
				case isReconnected(err):
					// Tolerated: the session was re-established (counted by
					// the OnResync hook); the next iteration re-anchors.
				default:
					sc.note(func(s *soakClient) {
						if s.hardErr == nil {
							s.hardErr = err
						}
					})
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(clients[i], conns[i], acs[i])
	}

	// Phase 1 — warm up: every client must stream before the crash.
	waitFor(t, 10*time.Second, "all clients streaming", func() bool {
		for _, sc := range clients {
			sc.mu.Lock()
			ok := sc.plays >= 3
			sc.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})

	// Phase 2 — kill the most loaded backend mid-stream.
	victim := 0
	counts := make([]int, nBackends)
	for _, sc := range clients {
		counts[sc.owner]++
	}
	for i, n := range counts {
		if n > counts[victim] {
			victim = i
		}
	}
	if counts[victim] == 0 {
		t.Fatalf("seed %d placed no clients on any backend? placement %v", seed, counts)
	}
	victims := counts[victim]
	severed := backends[victim].brk.Kill()
	cut.Store(true)
	t.Logf("seed %d: killed backend %d (%d clients placed, %d conns severed), placement %v",
		seed, victim, victims, severed, counts)

	// Phase 3 — recovery window: every victim client must resume
	// streaming (a successful play after the cut implies its replayed AC
	// works on the standby).
	waitFor(t, 20*time.Second, "victim clients resumed on a standby", func() bool {
		for _, sc := range clients {
			sc.mu.Lock()
			ok := sc.hardErr != nil || sc.playsAfterCut >= 3
			sc.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})

	// Let the fleet settle, then check placement: the victim serves
	// nobody; each survivor serves its original clients plus the victim
	// clients whose next live owner it is, plus the router's prober.
	expected := make([]int, nBackends)
	for _, sc := range clients {
		next := sc.owner
		if next == victim {
			for _, o := range dir.Owners(sc.key, nBackends) {
				if o != victim {
					next = o
					break
				}
			}
		}
		expected[next]++
	}
	waitFor(t, 10*time.Second, "sessions settled on standbys", func() bool {
		for i, b := range backends {
			active := b.srv.Snapshot().ActiveClients
			if i == victim {
				if active != 0 {
					return false
				}
				continue
			}
			// +1 for the router's persistent health-probe session.
			if active != int64(expected[i])+1 {
				return false
			}
		}
		return true
	})

	// Phase 4 — post-failover health: streams keep flowing after resume.
	time.Sleep(300 * time.Millisecond)

	close(stop)
	wg.Wait()

	resumedResyncs := 0
	for i, sc := range clients {
		sc.mu.Lock()
		if sc.hardErr != nil {
			t.Errorf("client %d (%s, owner %d): hard error above SetReconnect: %v",
				i, sc.key, sc.owner, sc.hardErr)
		}
		if sc.owner == victim {
			if sc.resyncs == 0 {
				t.Errorf("client %d on killed backend %d never resynced", i, victim)
			}
			if sc.playsAfterCut < 3 {
				t.Errorf("client %d on killed backend %d did not resume: %d plays after cut",
					i, victim, sc.playsAfterCut)
			}
			resumedResyncs += sc.resyncs
		} else if sc.resyncs != 0 {
			t.Errorf("client %d on surviving backend %d resynced %d times; failover leaked into healthy sessions",
				i, sc.owner, sc.resyncs)
		}
		if sc.records == 0 {
			t.Errorf("client %d recorded nothing", i)
		}
		sc.mu.Unlock()
	}

	// Live one-sided laws while sessions are still up.
	live := router.Snapshot()
	if live.FailoversStarted < live.FailoversCompleted+live.FailoversAbandoned {
		t.Errorf("live law: started %d < completed %d + abandoned %d",
			live.FailoversStarted, live.FailoversCompleted, live.FailoversAbandoned)
	}
	if live.Routes < live.ClosedClient+live.ClosedBackend+live.FailoversStarted {
		t.Errorf("live law: routes %d < closed_client %d + closed_backend %d + started %d",
			live.Routes, live.ClosedClient, live.ClosedBackend, live.FailoversStarted)
	}

	for _, c := range conns {
		c.Close()
	}

	// Drain the router and check the exact conservation laws.
	var snap aserver.RouterSnapshot
	waitFor(t, 10*time.Second, "router drained", func() bool {
		snap = router.Snapshot()
		return snap.SessionsActive == 0
	})
	if snap.FailoversStarted != snap.FailoversCompleted+snap.FailoversAbandoned {
		t.Errorf("failover law: started %d != completed %d + abandoned %d",
			snap.FailoversStarted, snap.FailoversCompleted, snap.FailoversAbandoned)
	}
	if snap.Routes != snap.ClosedClient+snap.ClosedBackend+snap.FailoversStarted {
		t.Errorf("route law: routes %d != closed_client %d + closed_backend %d + failovers_started %d",
			snap.Routes, snap.ClosedClient, snap.ClosedBackend, snap.FailoversStarted)
	}
	// Two survivors stood by, so no failover may have been abandoned,
	// and at least every severed victim session must have started one.
	if snap.FailoversAbandoned != 0 {
		t.Errorf("%d failovers abandoned with live standbys", snap.FailoversAbandoned)
	}
	if snap.FailoversCompleted < uint64(victims) {
		t.Errorf("failovers_completed %d < %d victim sessions", snap.FailoversCompleted, victims)
	}
	for i, b := range snap.Backends {
		if i == victim && b.State != "down" {
			t.Errorf("killed backend %d state %q, want down", i, b.State)
		}
		if i != victim && b.State != "healthy" {
			t.Errorf("surviving backend %d state %q, want healthy", i, b.State)
		}
	}
	t.Logf("seed %d: routes %d resyncs %d | failovers %d/%d/%d closed %d/%d | proxied %d+%d bytes",
		seed, snap.Routes, resumedResyncs,
		snap.FailoversStarted, snap.FailoversCompleted, snap.FailoversAbandoned,
		snap.ClosedClient, snap.ClosedBackend,
		snap.ProxiedBytesC2B, snap.ProxiedBytesB2C)

	router.Close()
	for _, b := range backends {
		b.brk.Close()
		b.srv.Close()
	}

	// Goroutines settle: pumps, probers, backend readers all gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		stack := make([]byte, 1<<20)
		stack = stack[:runtime.Stack(stack, true)]
		t.Errorf("goroutines did not settle: %d > baseline %d\n%s", n, baseline, stack)
	}
}

// isReconnected reports the one error shape the soak tolerates.
func isReconnected(err error) bool {
	var re *af.ReconnectedError
	return errors.As(err, &re)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
