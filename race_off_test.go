//go:build !race

package audiofile

// raceDetectorOn reports whether this test binary was built with the
// race detector; see race_on_test.go.
const raceDetectorOn = false
