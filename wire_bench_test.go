package audiofile

import (
	"testing"

	"audiofile/af"
)

// BenchmarkWireThroughput measures the bulk sample transport end to end
// over real sockets: the full PlaySamples egress path (client request
// marshal, socket, server ingress, play buffer) and the full
// RecordSamples ingress path (record ring, reply marshal, socket, client
// buffer) at a 24 KiB payload — three protocol chunks per call. This is
// the benchmark the scatter-gather wire path is judged by: every copy
// between the device ring buffer and the socket shows up directly in
// MB/s here.
func BenchmarkWireThroughput(b *testing.B) {
	const size = 24 << 10
	for _, cfg := range benchConfigs {
		b.Run(cfg.Name, func(b *testing.B) {
			b.Run("play", func(b *testing.B) {
				r := newRig(b, cfg)
				if err := r.AC.ChangeAttributes(af.ACPreemption,
					af.ACAttributes{Preempt: true}); err != nil {
					b.Fatal(err)
				}
				now, err := r.AC.GetTime()
				if err != nil {
					b.Fatal(err)
				}
				start := now.Add(4000)
				data := make([]byte, size)
				for i := range data {
					data[i] = byte(0x80 + i%64)
				}
				b.SetBytes(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.AC.PlaySamples(start, data); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("record", func(b *testing.B) {
				r := newRig(b, cfg)
				if err := r.PrimeRecord(); err != nil {
					b.Fatal(err)
				}
				now, err := r.AC.GetTime()
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, size)
				start := now.Add(-size)
				b.SetBytes(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, n, err := r.AC.RecordSamples(start, buf, true)
					if err != nil || n != size {
						b.Fatalf("n=%d err=%v", n, err)
					}
				}
			})
		})
	}
}
