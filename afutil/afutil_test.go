package afutil

import (
	"math"
	"testing"
	"testing/quick"

	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

func TestConversionTablesWired(t *testing.T) {
	if ExpU[0xFF] != 0 || CompU[0] == 0 {
		t.Error("µ-law tables missing")
	}
	for i := 0; i < 256; i++ {
		if CvtU2A[i] != sampleconv.EncodeALaw(ExpU[i]) {
			t.Fatalf("CvtU2A[%d] inconsistent", i)
		}
		if CvtA2U[i] != sampleconv.EncodeMuLaw(ExpA[i]) {
			t.Fatalf("CvtA2U[%d] inconsistent", i)
		}
	}
}

func TestPowerTables(t *testing.T) {
	for i := 0; i < 256; i++ {
		lin := float64(ExpU[i])
		if PowerU[i] != lin*lin {
			t.Fatalf("PowerU[%d] = %g, want %g", i, PowerU[i], lin*lin)
		}
		lin = float64(ExpA[i])
		if PowerA[i] != lin*lin {
			t.Fatalf("PowerA[%d] = %g, want %g", i, PowerA[i], lin*lin)
		}
	}
}

func TestSineTables(t *testing.T) {
	if SineFloat[0] != 0 || SineInt[0] != 0 {
		t.Error("sine table does not start at 0")
	}
	if math.Abs(SineFloat[SineSize/4]-1) > 1e-9 {
		t.Errorf("quarter-wave = %g, want 1", SineFloat[SineSize/4])
	}
	if SineInt[SineSize/4] != 32767 {
		t.Errorf("int quarter-wave = %d", SineInt[SineSize/4])
	}
	// Symmetry: sin(x) = -sin(x + pi).
	for i := 0; i < SineSize/2; i++ {
		if math.Abs(SineFloat[i]+SineFloat[i+SineSize/2]) > 1e-9 {
			t.Fatalf("sine asymmetric at %d", i)
		}
	}
}

func TestMixUAndA(t *testing.T) {
	a := sampleconv.EncodeMuLaw(1000)
	b := sampleconv.EncodeMuLaw(2000)
	got := int(sampleconv.DecodeMuLaw(MixU(a, b)))
	if got < 2800 || got > 3200 {
		t.Errorf("MixU(1000, 2000) decodes to %d, want ~3000", got)
	}
	aa := sampleconv.EncodeALaw(1000)
	ba := sampleconv.EncodeALaw(2000)
	got = int(sampleconv.DecodeALaw(MixA(aa, ba)))
	if got < 2700 || got > 3300 {
		t.Errorf("MixA(1000, 2000) decodes to %d, want ~3000", got)
	}
	// Saturation.
	m := sampleconv.EncodeMuLaw(30000)
	if v := sampleconv.DecodeMuLaw(MixU(m, m)); int(v) < 30000 {
		t.Errorf("saturating mix = %d", v)
	}
}

func TestGainTables(t *testing.T) {
	// -6 dB roughly halves a µ-law value.
	tbl := GainTableU(-6)
	in := sampleconv.EncodeMuLaw(8000)
	out := int(sampleconv.DecodeMuLaw(tbl[in]))
	if out < 3700 || out > 4400 {
		t.Errorf("-6 dB of 8000 = %d", out)
	}
	// 0 dB is identity up to companding round trip.
	tbl0 := GainTableU(0)
	for i := 0; i < 256; i++ {
		want := sampleconv.EncodeMuLaw(sampleconv.DecodeMuLaw(byte(i)))
		if tbl0[i] != want {
			t.Fatalf("0 dB table[%#x] = %#x, want %#x", i, tbl0[i], want)
		}
	}
	// A-law table too.
	ta := GainTableA(6)
	inA := sampleconv.EncodeALaw(2000)
	outA := int(sampleconv.DecodeALaw(ta[inA]))
	if outA < 3500 || outA > 4500 {
		t.Errorf("+6 dB of 2000 (A-law) = %d", outA)
	}
	// The table cache returns the same pointer.
	if GainTableU(-6) != tbl {
		t.Error("gain table not cached")
	}
}

func TestGainTablePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GainTableU(31) did not panic")
		}
	}()
	GainTableU(31)
}

func TestMakeGainTableArbitrary(t *testing.T) {
	tbl := MakeGainTableU(-40.0) // outside the precomputed range
	in := sampleconv.EncodeMuLaw(10000)
	out := int(sampleconv.DecodeMuLaw(tbl[in]))
	if out < 60 || out > 140 {
		t.Errorf("-40 dB of 10000 = %d, want ~100", out)
	}
}

func TestSampleSizes(t *testing.T) {
	if SampleSizes[0].Name != "MU255" || SampleSizes[2].Name != "LIN16" {
		t.Errorf("SampleSizes = %+v", SampleSizes)
	}
	if SampleSizes[2].BytesPerUnit != 2 || SampleSizes[2].SampsPerUnit != 1 {
		t.Error("LIN16 framing wrong")
	}
}

func TestSilence(t *testing.T) {
	buf := make([]byte, 8)
	Silence(0, buf)
	if buf[0] != 0xFF {
		t.Error("µ-law silence wrong")
	}
	Silence(2, buf)
	if buf[0] != 0 {
		t.Error("lin16 silence wrong")
	}
}

func TestSingleToneContinuity(t *testing.T) {
	rate := 8000
	a := make([]float64, 100)
	b := make([]float64, 100)
	phase := SingleTone(440, 1000, rate, a, 0)
	SingleTone(440, 1000, rate, b, phase)
	// The junction must not jump more than one sample step of a 440 Hz
	// tone at peak 1000 (~0.35 per sample at the steepest point * margin).
	jump := math.Abs(b[0] - a[99])
	maxStep := 1000 * 2 * math.Pi * 440 / float64(rate) * 1.5
	if jump > maxStep {
		t.Errorf("discontinuity at block boundary: %g > %g", jump, maxStep)
	}
}

func TestSingleToneFrequency(t *testing.T) {
	rate := 8000
	n := 2048
	buf := make([]float64, n)
	SingleTone(1000, 1.0, rate, buf, 0)
	// Count zero crossings: 1000 Hz for 2048/8000 s = 256 ms -> 512 crossings.
	crossings := 0
	for i := 1; i < n; i++ {
		if (buf[i-1] < 0) != (buf[i] < 0) {
			crossings++
		}
	}
	want := 2 * 1000 * n / rate
	if crossings < want-4 || crossings > want+4 {
		t.Errorf("crossings = %d, want ~%d", crossings, want)
	}
}

func TestQuickSingleTonePeak(t *testing.T) {
	f := func(seed uint8) bool {
		freq := 100 + float64(seed)*7
		buf := make([]float64, 512)
		SingleTone(freq, 5000, 8000, buf, 0)
		for _, v := range buf {
			if v > 5000 || v < -5000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTonePairLevels(t *testing.T) {
	rate := 8000
	buf := make([]byte, 8000)
	TonePair(350, -13, 440, -13, 0, rate, buf)
	// Two -13 dBm tones sum to about -10 dBm total power.
	p := PowerMu(buf)
	if math.Abs(p-(-10)) > 0.7 {
		t.Errorf("dialtone power = %g dBm, want ~-10", p)
	}
}

func TestTonePairRamp(t *testing.T) {
	buf := make([]byte, 800)
	TonePair(697, -4, 1209, -2, 80, 8000, buf)
	// The first and last samples are near silence; mid-buffer is hot.
	first := math.Abs(float64(sampleconv.DecodeMuLaw(buf[0])))
	last := math.Abs(float64(sampleconv.DecodeMuLaw(buf[len(buf)-1])))
	var peak float64
	for _, b := range buf[300:500] {
		if v := math.Abs(float64(sampleconv.DecodeMuLaw(b))); v > peak {
			peak = v
		}
	}
	if first > peak/10 || last > peak/10 {
		t.Errorf("ramp ineffective: first=%g last=%g peak=%g", first, last, peak)
	}
}

func TestTonePairDecodableAsDTMF(t *testing.T) {
	// A TonePair burst rendered from the Table 7 DTMF spec must decode.
	rate := 8000
	for _, digit := range []byte("159D") {
		spec, ok := DTMFTone(digit)
		if !ok {
			t.Fatalf("DTMFTone(%c) missing", digit)
		}
		burst := RenderTone(spec, rate)
		det := dsp.NewDTMFDetector(rate)
		lin := make([]int16, len(burst))
		sampleconv.ToLin16(lin, burst, sampleconv.MU255, len(burst))
		got := det.Feed(lin)
		if len(got) != 1 || got[0] != digit {
			t.Errorf("digit %c decoded as %q", digit, got)
		}
	}
}

func TestCallProgressTable(t *testing.T) {
	// Spot-check Table 7 values.
	d := CallProgressTones["dialtone"]
	if d.F1 != 350 || d.F2 != 440 || d.DB1 != -13 || d.TimeOn != 1000 || d.TimeOff != 0 {
		t.Errorf("dialtone = %+v", d)
	}
	b := CallProgressTones["busy"]
	if b.F1 != 480 || b.F2 != 620 || b.TimeOn != 500 || b.TimeOff != 500 {
		t.Errorf("busy = %+v", b)
	}
	rb := CallProgressTones["ringback"]
	if rb.TimeOff != 3000 || rb.DB1 != -19 {
		t.Errorf("ringback = %+v", rb)
	}
	fb := CallProgressTones["fastbusy"]
	if fb.TimeOn != 250 || fb.TimeOff != 250 {
		t.Errorf("fastbusy = %+v", fb)
	}
}

func TestDTMFToneTable(t *testing.T) {
	spec, ok := DTMFTone('5')
	if !ok || spec.F1 != 770 || spec.F2 != 1336 || spec.DB1 != -4 || spec.DB2 != -2 ||
		spec.TimeOn != 50 || spec.TimeOff != 50 {
		t.Errorf("DTMFTone('5') = %+v, %v", spec, ok)
	}
	if _, ok := DTMFTone('x'); ok {
		t.Error("DTMFTone('x') ok")
	}
}

func TestPowerMu(t *testing.T) {
	// Silence.
	sil := make([]byte, 100)
	for i := range sil {
		sil[i] = 0xFF
	}
	if !math.IsInf(PowerMu(sil), -1) {
		t.Error("silence power not -inf")
	}
	if !math.IsInf(PowerMu(nil), -1) {
		t.Error("empty power not -inf")
	}
	// A 0 dBm tone measures 0 dBm.
	buf := make([]byte, 8000)
	TonePair(1000, 0, 1000, -100, 0, 8000, buf)
	if p := PowerMu(buf); math.Abs(p) > 0.5 {
		t.Errorf("0 dBm tone = %g dBm", p)
	}
}

func TestRenderToneCadence(t *testing.T) {
	spec := ToneSpec{F1: 480, DB1: -12, F2: 620, DB2: -12, TimeOn: 500, TimeOff: 500}
	buf := RenderTone(spec, 8000)
	if len(buf) != 8000 {
		t.Fatalf("len = %d, want 8000", len(buf))
	}
	// Off portion is silence.
	for i := 4000; i < 8000; i++ {
		if buf[i] != 0xFF {
			t.Fatalf("off-time byte %d = %#x", i, buf[i])
		}
	}
}
