package afutil

import "audiofile/internal/sampleconv"

// ADPCMCoder compresses and expands the 4-bit ADPCM streams the server's
// compressed conversion module speaks (the SAMPLE_ADPCM32 role of
// Table 2: 4 bits per sample, two samples per byte, stateful in each
// direction). A client playing or recording through an audio context with
// Type ADPCM4 uses one coder per direction; the zero value is the initial
// state the server's module starts from.
type ADPCMCoder = sampleconv.ADPCMCoder

// CompressADPCM compresses linear samples (an even count) with a fresh
// coder, returning the packed bytes. For streaming, keep an ADPCMCoder
// across blocks instead.
func CompressADPCM(samples []int16) []byte {
	var c ADPCMCoder
	out := make([]byte, len(samples)/2)
	c.Encode(out, samples)
	return out
}

// ExpandADPCM expands packed ADPCM bytes with a fresh coder.
func ExpandADPCM(data []byte) []int16 {
	var c ADPCMCoder
	out := make([]int16, 2*len(data))
	c.Decode(out, data)
	return out
}
