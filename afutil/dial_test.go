package afutil_test

import (
	"testing"
	"time"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/vdev"
)

// TestDialPhoneDetectedByLine proves the paper's client-side dialing
// design end to end: AFDialPhone synthesizes Touch-Tone bursts as timed
// play requests; the played audio goes down the (simulated) telephone
// line, whose decoder recognizes the digits and raises DTMF events.
func TestDialPhoneDetectedByLine(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	srv, err := aserver.New(aserver.Options{
		Logf: t.Logf,
		Devices: []aserver.DeviceSpec{
			{Kind: "phone", Name: "phone0", Clock: clk},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.SelectEvents(0, af.MaskPhoneDTMF); err != nil {
		t.Fatal(err)
	}
	if err := c.HookSwitch(0, true); err != nil {
		t.Fatal(err)
	}
	ac, err := c.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}

	const number = "555-1212"
	end, err := afutil.DialPhone(ac, number)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("DialPhone returned zero time")
	}

	// Let the dialing play out on the simulated hardware.
	deadline := time.Now().Add(5 * time.Second)
	var digits []byte
	for len(digits) < 7 && time.Now().Before(deadline) {
		clk.Advance(400)
		srv.Sync()
		for {
			n, err := c.EventsQueued(af.QueuedAfterReading)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			ev, err := c.NextEvent()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Code == af.EventPhoneDTMF {
				digits = append(digits, ev.Detail)
			}
		}
	}
	if string(digits) != "5551212" {
		t.Errorf("line decoded %q, want 5551212", digits)
	}
}
