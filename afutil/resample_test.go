package afutil

import (
	"math"
	"testing"
	"testing/quick"
)

func sine(freq float64, rate, n int, amp float64) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(amp * math.Sin(2*math.Pi*freq*float64(i)/float64(rate)))
	}
	return out
}

func TestResampleIdentity(t *testing.T) {
	in := sine(440, 8000, 800, 8000)
	out := Resample(in, 8000, 8000)
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("identity resample changed data")
		}
	}
	// And it is a copy, not an alias.
	out[0] = 12345
	if in[0] == 12345 {
		t.Error("identity resample aliases input")
	}
}

func TestResampleLength(t *testing.T) {
	in := make([]int16, 8000)
	if got := len(Resample(in, 8000, 44100)); got != 44100 {
		t.Errorf("8k->44.1k length = %d", got)
	}
	if got := len(Resample(in, 8000, 4000)); got != 4000 {
		t.Errorf("8k->4k length = %d", got)
	}
	if Resample(nil, 8000, 44100) != nil {
		t.Error("empty input produced output")
	}
	if Resample(in, 0, 44100) != nil || Resample(in, 8000, 0) != nil {
		t.Error("bad rates produced output")
	}
}

func TestResamplePreservesFrequency(t *testing.T) {
	// A 440 Hz tone at 8 kHz upsampled to 44.1 kHz still has ~440 Hz
	// (measured by zero crossings per second).
	in := sine(440, 8000, 8000, 8000)
	out := Resample(in, 8000, 44100)
	crossings := 0
	for i := 1; i < len(out); i++ {
		if (out[i-1] < 0) != (out[i] < 0) {
			crossings++
		}
	}
	freq := float64(crossings) / 2 / (float64(len(out)) / 44100)
	if math.Abs(freq-440) > 5 {
		t.Errorf("upsampled frequency = %.1f Hz, want ~440", freq)
	}
}

func TestResamplePreservesAmplitude(t *testing.T) {
	in := sine(300, 8000, 8000, 10000)
	out := Resample(in, 8000, 44100)
	var peak int16
	for _, v := range out {
		if v > peak {
			peak = v
		}
	}
	if peak < 9500 || peak > 10050 {
		t.Errorf("peak after resample = %d, want ~10000", peak)
	}
}

func TestResampleDownThenUpRoundTrip(t *testing.T) {
	// Low-frequency content survives 8k -> 4k -> 8k within interpolation
	// error.
	in := sine(200, 8000, 4000, 8000)
	down := Resample(in, 8000, 4000)
	up := Resample(down, 4000, 8000)
	worst := 0
	for i := 100; i < len(up)-100 && i < len(in); i++ {
		d := int(up[i]) - int(in[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 500 {
		t.Errorf("round-trip worst error = %d", worst)
	}
}

func TestQuickResampleBounded(t *testing.T) {
	// Output never exceeds the input's range (linear interpolation is a
	// convex combination).
	f := func(raw []int16, r1, r2 uint16) bool {
		if len(raw) == 0 {
			return true
		}
		srcRate := int(r1%8000) + 100
		dstRate := int(r2%48000) + 100
		var lo, hi int16 = raw[0], raw[0]
		for _, v := range raw {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for _, v := range Resample(raw, srcRate, dstRate) {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResampleStereo(t *testing.T) {
	frames := 800
	in := make([]int16, 2*frames)
	for i := 0; i < frames; i++ {
		in[2*i] = int16(1000)
		in[2*i+1] = int16(-2000)
	}
	out := ResampleStereo(in, 8000, 16000)
	if len(out) != 2*2*frames {
		t.Fatalf("stereo length = %d", len(out))
	}
	for i := 0; i < len(out)/2; i++ {
		if out[2*i] != 1000 || out[2*i+1] != -2000 {
			t.Fatalf("channel bleed at frame %d: (%d, %d)", i, out[2*i], out[2*i+1])
		}
	}
}
