// Package afutil is the AudioFile client utility library (libAFUtil): the
// conversion, mixing, gain, power and sine tables of Table 5, and the
// signal-generation and helper procedures of Table 6 — tone pairs for
// telephony (Table 7), precise sine generation by direct digital
// synthesis, silence, block power measurement, Touch-Tone dialing, and
// the AoD assertion helper.
package afutil

import (
	"fmt"
	"math"
	"os"

	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

// Conversion tables (Table 5). Indexing a table is the idiomatic
// high-speed path for µ-law and A-law processing; converting
// algorithmically is possible but time consuming.
var (
	// ExpU expands µ-law to 16-bit linear (AF_exp_u widened, AF_cvt_u2s).
	ExpU = &sampleconv.MuToLin
	// ExpA expands A-law to 16-bit linear (AF_exp_a widened).
	ExpA = &sampleconv.AToLin
	// CompU compands 16-bit linear (top 14 bits) to µ-law (AF_comp_u).
	CompU = &sampleconv.LinToMu
	// CompA compands 16-bit linear (top 14 bits) to A-law (AF_comp_a).
	CompA = &sampleconv.LinToA
	// CvtU2A translates µ-law to A-law (AF_cvt_u2a).
	CvtU2A = &sampleconv.MuToA
	// CvtA2U translates A-law to µ-law (AF_cvt_a2u).
	CvtA2U = &sampleconv.AToMu
)

// PowerU translates µ-law values to the square of the corresponding
// linear value (AF_power_uf).
var PowerU [256]float64

// PowerA translates A-law values to the square of the corresponding
// linear value (AF_power_af).
var PowerA [256]float64

// SineSize is the length of the sine wave tables.
const SineSize = 1024

// SineInt is a 1024-entry 16-bit integer sine wave table (AF_sine_int).
var SineInt [SineSize]int16

// SineFloat is a 1024-entry floating point sine wave table
// (AF_sine_float).
var SineFloat [SineSize]float64

func init() {
	for i := 0; i < 256; i++ {
		u := float64(sampleconv.MuToLin[i])
		a := float64(sampleconv.AToLin[i])
		PowerU[i] = u * u
		PowerA[i] = a * a
	}
	for i := range SineFloat {
		v := math.Sin(2 * math.Pi * float64(i) / SineSize)
		SineFloat[i] = v
		SineInt[i] = int16(32767 * v)
	}
}

// MixU mixes two µ-law samples with linear-domain saturation (AF_mix_u).
func MixU(a, b byte) byte {
	return sampleconv.EncodeMuLaw(sampleconv.Clamp16(
		int(sampleconv.MuToLin[a]) + int(sampleconv.MuToLin[b])))
}

// MixA mixes two A-law samples with linear-domain saturation (AF_mix_a).
func MixA(a, b byte) byte {
	return sampleconv.EncodeALaw(sampleconv.Clamp16(
		int(sampleconv.AToLin[a]) + int(sampleconv.AToLin[b])))
}

// GainTableRange bounds the precomputed gain tables: -30 dB to +30 dB.
const GainTableRange = 30

var (
	gainTablesU [2*GainTableRange + 1]*[256]byte
	gainTablesA [2*GainTableRange + 1]*[256]byte
)

// MakeGainTableU computes a µ-law-to-µ-law gain translation table for an
// arbitrary gain in dB (AFMakeGainTableU), for gains outside the
// precomputed range or callers short on memory for all 61 tables.
func MakeGainTableU(gainDB float64) *[256]byte {
	return makeGainTable(gainDB, sampleconv.MuToLin[:], sampleconv.EncodeMuLaw)
}

// MakeGainTableA computes an A-law gain translation table
// (AFMakeGainTableA).
func MakeGainTableA(gainDB float64) *[256]byte {
	return makeGainTable(gainDB, sampleconv.AToLin[:], sampleconv.EncodeALaw)
}

func makeGainTable(gainDB float64, exp []int16, comp func(int16) byte) *[256]byte {
	g := math.Pow(10, gainDB/20)
	var t [256]byte
	for i := 0; i < 256; i++ {
		t[i] = comp(sampleconv.Clamp16(int(g * float64(exp[i]))))
	}
	return &t
}

// GainTableU returns the precomputed µ-law gain table for an integer dB
// gain in [-30, +30] (AF_gain_table_u).
func GainTableU(gainDB int) *[256]byte {
	if gainDB < -GainTableRange || gainDB > GainTableRange {
		panic(fmt.Sprintf("afutil: gain %d dB outside table range", gainDB))
	}
	i := gainDB + GainTableRange
	if gainTablesU[i] == nil {
		gainTablesU[i] = MakeGainTableU(float64(gainDB))
	}
	return gainTablesU[i]
}

// GainTableA returns the precomputed A-law gain table for an integer dB
// gain in [-30, +30] (AF_gain_table_a).
func GainTableA(gainDB int) *[256]byte {
	if gainDB < -GainTableRange || gainDB > GainTableRange {
		panic(fmt.Sprintf("afutil: gain %d dB outside table range", gainDB))
	}
	i := gainDB + GainTableRange
	if gainTablesA[i] == nil {
		gainTablesA[i] = MakeGainTableA(float64(gainDB))
	}
	return gainTablesA[i]
}

// SampleType describes the framing of an encoding (AFSampleTypes).
type SampleType struct {
	BitsPerSamp  uint // only a hint
	BytesPerUnit uint
	SampsPerUnit uint
	Name         string
}

// SampleSizes is the datatype information table (AF_sample_sizes),
// indexed by encoding value.
var SampleSizes = func() []SampleType {
	out := make([]SampleType, len(sampleconv.Sizes))
	for i, s := range sampleconv.Sizes {
		out[i] = SampleType{s.BitsPerSamp, s.BytesPerUnit, s.SampsPerUnit, s.Name}
	}
	return out
}()

// Silence fills buf with silence for the given encoding value
// (AFSilence). 0 is µ-law, 1 A-law, 2 lin16, 3 lin32.
func Silence(encoding uint8, buf []byte) {
	sampleconv.Silence(sampleconv.Encoding(encoding), buf)
}

// PowerMu returns the mean power of a µ-law block in dBm relative to the
// digital milliwatt (the apower computation). Silence returns -Inf.
func PowerMu(block []byte) float64 {
	if len(block) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, b := range block {
		sum += PowerU[b]
	}
	return meanSquareDBm(sum / float64(len(block)))
}

// PowerLin16 returns the mean power of a linear block in dBm re the
// digital milliwatt.
func PowerLin16(block []int16) float64 {
	return dsp.PowerDBm(block)
}

func meanSquareDBm(ms float64) float64 {
	if ms == 0 {
		return math.Inf(-1)
	}
	ref := float64(32124) * float64(32124) / 2 / math.Pow(10, 0.316)
	return 10 * math.Log10(ms/ref)
}

// AoD is "Assert Or Die": if the condition is false, print the message
// and exit (the library's common error idiom).
func AoD(cond bool, format string, args ...any) {
	if cond {
		return
	}
	fmt.Fprintf(os.Stderr, format, args...)
	os.Exit(1)
}
