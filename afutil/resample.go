package afutil

// Sample rate conversion. The paper's server design reserved a slot for
// resampling in the conversion modules but shipped without it ("the
// design for resampling is not complete"); as elsewhere, AudioFile leaves
// the work to clients. Resample lets a client prepare 8 kHz material for
// a 44.1/48 kHz device (or vice versa) before playing it.

// Resample converts linear samples from one rate to another by linear
// interpolation, the classic cheap resampler: adequate for speech-grade
// material; bring a polyphase filter for production music paths.
func Resample(src []int16, srcRate, dstRate int) []int16 {
	if srcRate <= 0 || dstRate <= 0 || len(src) == 0 {
		return nil
	}
	if srcRate == dstRate {
		return append([]int16(nil), src...)
	}
	n := int(int64(len(src)) * int64(dstRate) / int64(srcRate))
	if n == 0 {
		n = 1
	}
	out := make([]int16, n)
	step := float64(srcRate) / float64(dstRate)
	pos := 0.0
	for i := range out {
		j := int(pos)
		if j >= len(src)-1 {
			out[i] = src[len(src)-1]
		} else {
			frac := pos - float64(j)
			a, b := float64(src[j]), float64(src[j+1])
			out[i] = int16(a + (b-a)*frac)
		}
		pos += step
	}
	return out
}

// ResampleStereo resamples interleaved stereo linear samples.
func ResampleStereo(src []int16, srcRate, dstRate int) []int16 {
	frames := len(src) / 2
	left := make([]int16, frames)
	right := make([]int16, frames)
	for i := 0; i < frames; i++ {
		left[i] = src[2*i]
		right[i] = src[2*i+1]
	}
	l := Resample(left, srcRate, dstRate)
	r := Resample(right, srcRate, dstRate)
	out := make([]int16, 2*len(l))
	for i := range l {
		out[2*i] = l[i]
		out[2*i+1] = r[i]
	}
	return out
}
