package afutil

import (
	"fmt"

	"audiofile/af"
	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

// Tone generation by direct digital synthesis (§6.2.2): sample values are
// produced by stepping through a wave table at a rate proportional to the
// requested frequency. The requested frequency divided by the sample rate
// gives a phase increment; the accumulated phase indexes the table.

// SingleTone generates a floating point sine tone into buf with the given
// peak value (AFSingleTone). It accepts an initial phase in [0, 1) and
// returns the final phase, so successive calls produce a signal that is
// continuous at block boundaries.
func SingleTone(freq, peak float64, rate int, buf []float64, phase float64) float64 {
	inc := freq / float64(rate)
	for i := range buf {
		idx := int(phase * SineSize)
		buf[i] = peak * SineFloat[idx&(SineSize-1)]
		phase += inc
		if phase >= 1 {
			phase -= 1
		}
	}
	return phase
}

// TonePair generates a µ-law two-tone signal into buf (AFTonePair). The
// two frequencies carry individual power levels in dB relative to the
// digital milliwatt (which is 3.16 dB down from digital clipping).
// gainRamp samples at each end ramp the envelope up and down, reducing
// the frequency splatter of switching the signal on and off.
func TonePair(f1, db1, f2, db2 float64, gainRamp int, rate int, buf []byte) {
	a1 := dsp.AmplitudeForDBm(db1)
	a2 := dsp.AmplitudeForDBm(db2)
	inc1 := f1 / float64(rate)
	inc2 := f2 / float64(rate)
	var p1, p2 float64
	n := len(buf)
	for i := 0; i < n; i++ {
		v := a1*SineFloat[int(p1*SineSize)&(SineSize-1)] +
			a2*SineFloat[int(p2*SineSize)&(SineSize-1)]
		env := 1.0
		if gainRamp > 0 {
			if i < gainRamp {
				env = float64(i) / float64(gainRamp)
			}
			if n-1-i < gainRamp {
				e := float64(n-1-i) / float64(gainRamp)
				if e < env {
					env = e
				}
			}
		}
		buf[i] = sampleconv.EncodeMuLaw(sampleconv.Clamp16(int(env * v)))
		p1 += inc1
		if p1 >= 1 {
			p1 -= 1
		}
		p2 += inc2
		if p2 >= 1 {
			p2 -= 1
		}
	}
}

// ToneSpec is one entry of the telephony tone-pair table (Table 7):
// frequencies in Hz, power levels in dB re the digital milliwatt, and
// cadence in milliseconds. TimeOff 0 is a continuous tone.
type ToneSpec struct {
	Name    string
	F1      float64
	DB1     float64
	F2      float64
	DB2     float64
	TimeOn  int // ms
	TimeOff int // ms
}

// CallProgressTones are the call progress entries of Table 7.
var CallProgressTones = map[string]ToneSpec{
	"dialtone": {"dialtone", 350, -13, 440, -13, 1000, 0},
	"ringback": {"ringback", 440, -19, 480, -19, 1000, 3000},
	"busy":     {"busy", 480, -12, 620, -12, 500, 500},
	"fastbusy": {"fastbusy", 480, -12, 620, -12, 250, 250},
}

// DTMFTone returns the Table 7 entry for a Touch-Tone digit (0-9, *, #,
// A-D): row tone at -4 dB, column tone at -2 dB, 50 ms on, 50 ms off.
func DTMFTone(digit byte) (ToneSpec, bool) {
	lo, hi, ok := dsp.DTMFFreqs(digit)
	if !ok {
		return ToneSpec{}, false
	}
	return ToneSpec{Name: string(digit), F1: lo, DB1: -4, F2: hi, DB2: -2,
		TimeOn: 50, TimeOff: 50}, true
}

// RenderTone renders one on/off cycle of a tone spec as µ-law samples at
// the given rate. With TimeOff 0 it renders one second of continuous
// tone.
func RenderTone(spec ToneSpec, rate int) []byte {
	on := spec.TimeOn * rate / 1000
	off := spec.TimeOff * rate / 1000
	buf := make([]byte, on+off)
	ramp := rate / 200 // 5 ms ramps
	if ramp*2 > on {
		ramp = on / 4
	}
	TonePair(spec.F1, spec.DB1, spec.F2, spec.DB2, ramp, rate, buf[:on])
	for i := on; i < len(buf); i++ {
		buf[i] = 0xFF
	}
	return buf
}

// DialPhone generates the Touch-Tone dialing sequence for a number on a
// telephone device's audio context (AFDialPhone). Digits 0-9, *, #, A-D
// dial; a comma pauses one second; other characters (spaces, hyphens) are
// ignored. Dialing is client-side: the tones are ordinary timed play
// requests, which is how the system meets telephone signaling timing
// without server support (§5.5). It returns the device time just after
// the last tone.
func DialPhone(ac *af.AC, number string) (af.ATime, error) {
	dev := ac.Device
	rate := dev.PlaySampleFreq
	t, err := ac.GetTime()
	if err != nil {
		return 0, err
	}
	// Begin a little in the future so every burst is scheduled exactly.
	t = t.Add(rate / 10)
	for i := 0; i < len(number); i++ {
		ch := number[i]
		if ch == ',' {
			t = t.Add(rate) // one-second pause
			continue
		}
		spec, ok := DTMFTone(ch)
		if !ok {
			continue // punctuation in phone numbers is ignored
		}
		burst := RenderTone(spec, rate)
		if _, err := ac.PlaySamples(t, burst); err != nil {
			return 0, fmt.Errorf("afutil: dialing %q: %w", ch, err)
		}
		t = t.Add(len(burst))
	}
	return t, nil
}
