//go:build race

package audiofile

// raceDetectorOn reports whether this test binary was built with the
// race detector, which slows execution several-fold and serializes much
// of the runtime; timing-sensitive soaks scale their fleets down to
// keep their latency assertions meaningful.
const raceDetectorOn = true
