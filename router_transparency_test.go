// Proxy transparency: a session routed through the fleet router must be
// byte-for-byte indistinguishable from a direct one. The test runs a
// scripted op mix — hot-path plays and records (parked and immediate),
// control ops, property traffic with an event, a protocol error, and a
// broadcast subscription — against a manual-clock server twice per byte
// order (direct, then through a one-backend Router) and compares the
// raw reply streams the client read off the wire.
//
// Determinism is the delicate part: play replies carry the device time
// at completion, so the test may only advance the clock while a parked
// request is registered (or the scripted op has finished). That makes
// every park resolve at its minimal advance count, which pins device
// time — and therefore every timestamp in the reply stream — to the
// same value in all runs.
package audiofile

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/vdev"
)

// recordingConn captures every byte the client reads (the server→client
// reply stream) while passing traffic through untouched.
type recordingConn struct {
	net.Conn
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recordingConn) Read(p []byte) (int, error) {
	n, err := r.Conn.Read(p)
	if n > 0 {
		r.mu.Lock()
		r.buf.Write(p[:n])
		r.mu.Unlock()
	}
	return n, err
}

func (r *recordingConn) recorded() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

// parkedNow sums outstanding parks across devices.
func parkedNow(srv *aserver.Server) int64 {
	var parked int64
	for _, d := range srv.Snapshot().Devices {
		parked += d.ParkedNow
	}
	return parked
}

// advanceThroughParks runs op on its own goroutine and steps the manual
// clock only while op has a request parked on the server. Never
// advancing without a park pending means each park resolves at its
// minimal advance count, so the total advance count — and with it the
// device time stamped into op's replies — is identical on every run.
func advanceThroughParks(t *testing.T, srv *aserver.Server, clk *vdev.ManualClock, op func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- op() }()
	deadline := time.Now().Add(20 * time.Second)
	for {
		// Wait for a park to register or the op to finish; advancing
		// during the gap between two parks would unpin the timestamps.
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("parked op: %v", err)
				}
				return
			default:
			}
			if parkedNow(srv) >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("parked op neither parked nor finished")
			}
			time.Sleep(100 * time.Microsecond)
		}
		clk.Advance(256)
		srv.Sync()
	}
}

// transparencyScript drives one deterministic op mix and returns the
// device time the run ended at (a quick cross-run sanity anchor).
func transparencyScript(t *testing.T, c *af.Conn, srv *aserver.Server, clk *vdev.ManualClock) af.ATime {
	t.Helper()
	pattern := func(n int, seed byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i)*3 + seed
		}
		return b
	}

	// Control-plane prologue: sync ops, async attribute change, atoms.
	start, err := c.GetTime(0)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := c.CreateAC(0, af.ACPreemption, af.ACAttributes{Preempt: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.GetTime(); err != nil {
		t.Fatal(err)
	}
	// A small play well inside the buffer window: replies immediately.
	if _, err := ac.PlaySamples(start, pattern(1024, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ac.ChangeAttributes(af.ACPlayGain, af.ACAttributes{PlayGain: -6}); err != nil {
		t.Fatal(err)
	}
	atom, err := c.InternAtom("AF_TRANSPARENCY", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetAtomName(atom); err != nil {
		t.Fatal(err)
	}
	// Property traffic. Events are deliberately not selected here: every
	// event carries the server host's wall clock (HostSec/HostNsec, §5.2),
	// which no two runs can reproduce byte-for-byte. Event splicing is
	// covered semantically by TestRouterEventDelivery instead.
	if err := c.ChangeProperty(0, atom, atom, 8, af.PropModeReplace, []byte("direct-vs-routed")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListProperties(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetProperty(0, atom, atom, false); err != nil {
		t.Fatal(err)
	}
	// A protocol error must splice through identically too.
	if _, err := c.GetTime(99); err == nil {
		t.Fatal("GetTime on a bogus device succeeded")
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	// Hot path, parked: a vectored play far past the buffer window. The
	// client splits it into 8 KiB chunks whose non-final replies are
	// suppressed; each chunk parks in turn and the barrier advances the
	// clock only while one is parked.
	advanceThroughParks(t, srv, clk, func() error {
		_, err := ac.PlaySamples(start.Add(1024), pattern(24576, 2))
		return err
	})

	// Blocking record: parks until the requested span is in the past.
	rnow, err := c.GetTime(0)
	if err != nil {
		t.Fatal(err)
	}
	advanceThroughParks(t, srv, clk, func() error {
		_, _, err := ac.RecordSamples(rnow, make([]byte, 256), true)
		return err
	})

	// Broadcast: subscribe, feed the device, and step the clock so the
	// monitor cuts chunks into the reply stream, then drain with a Sync
	// (the out-queue is FIFO, so the chunks precede the sync reply).
	sub, _, err := ac.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	bnow, err := c.GetTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.PlaySamples(bnow.Add(256), pattern(2048, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		clk.Advance(256)
		srv.Sync()
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_, ok, err := sub.TryNext()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got++
	}
	if got == 0 {
		t.Fatal("no broadcast chunks reached the subscriber")
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := ac.Free(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	end, err := c.GetTime(0)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

// transparencyRun executes the script against a fresh server, optionally
// through a one-backend router, and returns the captured reply stream.
func transparencyRun(t *testing.T, bigEndian, routed bool) (stream []byte, end af.ATime) {
	t.Helper()
	clk := vdev.NewManualClock(8000)
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	bl, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target := bl.Addr().String()

	if routed {
		router, err := aserver.NewRouter(aserver.RouterOptions{
			Backends:      []string{target},
			ProbeInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer router.Close()
		rl, err := router.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		target = rl.Addr().String()
	}

	nc, err := net.Dial("tcp", target)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingConn{Conn: nc}
	// Both runs carry the same routing key: the backend ignores the
	// setup auth fields, so even the handshake bytes match.
	c, err := af.NewConnRoute(rec, bigEndian, "transparency")
	if err != nil {
		t.Fatal(err)
	}
	c.SetIOErrorHandler(func(*af.Conn, error) {})
	end = transparencyScript(t, c, srv, clk)
	c.Close()
	return rec.recorded(), end
}

// TestRouterProxyTransparency: for each byte order, the reply stream a
// client reads through the router equals the direct stream exactly.
func TestRouterProxyTransparency(t *testing.T) {
	for _, tc := range []struct {
		name      string
		bigEndian bool
	}{
		{"LittleEndian", false},
		{"BigEndian", true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			direct, dEnd := transparencyRun(t, tc.bigEndian, false)
			routed, rEnd := transparencyRun(t, tc.bigEndian, true)
			if dEnd != rEnd {
				t.Fatalf("runs ended at different device times: direct %d, routed %d", dEnd, rEnd)
			}
			if len(direct) == 0 {
				t.Fatal("direct run recorded no reply bytes")
			}
			if !bytes.Equal(direct, routed) {
				i := 0
				for i < len(direct) && i < len(routed) && direct[i] == routed[i] {
					i++
				}
				t.Fatalf("reply streams diverge: direct %d bytes, routed %d bytes, first difference at offset %d",
					len(direct), len(routed), i)
			}
		})
	}
}

// TestRouterEventDelivery: events splice through the router like any
// other backend bytes. (They are excluded from the byte-for-byte
// transparency script because they embed the server host's wall clock.)
func TestRouterEventDelivery(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bl, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	router, err := aserver.NewRouter(aserver.RouterOptions{Backends: []string{bl.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	c, err := af.NewConn(router.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SelectEvents(0, af.MaskPropertyChange); err != nil {
		t.Fatal(err)
	}
	atom, err := c.InternAtom("AF_ROUTED_EVENT", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ChangeProperty(0, atom, atom, 8, af.PropModeReplace, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	ev, err := c.IfEvent(func(e *af.Event) bool { return e.Code == af.EventPropertyChange })
	if err != nil {
		t.Fatal(err)
	}
	if ev.Value != uint32(atom) {
		t.Fatalf("routed event value = %d, want atom %d", ev.Value, atom)
	}
}
