package sampleconv

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allEncodings are the encodings the kernel table covers (ADPCM4 included:
// its kernels must reproduce the scalar pipeline's pass-through/no-op
// behaviour exactly).
var allEncodings = []Encoding{MU255, ALAW, LIN16, LIN32, ADPCM4}

// kernelGains spans the shapes gains take in practice: unity (no-gain
// kernels), attenuation, boost, the device dB range extremes, saturating
// boosts, zero, and values that exercise Q16 rounding.
var kernelGains = []float64{1.0, 0.0, 0.25, 0.5, 0.999, 1.001, 2.0, 4.0,
	31.6227766, 0.0316227766, 100.0, 1e-9}

// randomSampleBuf returns n samples of random data in encoding e, plus the
// byte length used.
func randomSampleBuf(rng *rand.Rand, e Encoding, n int) []byte {
	buf := make([]byte, e.BytesPerSamples(n))
	rng.Read(buf)
	return buf
}

// runBoth runs the kernel table and the reference pipeline on identical
// inputs and returns both dst buffers.
func runBoth(dstEnc, srcEnc Encoding, src, dst []byte, n int, gain float64, mix bool) (got, want []byte) {
	got = append([]byte(nil), dst...)
	want = append([]byte(nil), dst...)
	q := GainQ16(gain)
	SelectKernel(dstEnc, srcEnc, mix, q != GainUnity)(got, src, n, q)
	referenceProcess(want, dstEnc, src, srcEnc, n, q, mix)
	return got, want
}

// TestKernelsMatchReference exhaustively walks every (srcEnc, dstEnc,
// gain, mix) combination with randomized buffers and asserts the selected
// kernel is bit-identical to the retained reference pipeline.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, srcEnc := range allEncodings {
		for _, dstEnc := range allEncodings {
			for _, gain := range kernelGains {
				for _, mix := range []bool{false, true} {
					for trial := 0; trial < 8; trial++ {
						n := 1 + rng.Intn(700)
						src := randomSampleBuf(rng, srcEnc, n)
						dst := randomSampleBuf(rng, dstEnc, n)
						got, want := runBoth(dstEnc, srcEnc, src, dst, n, gain, mix)
						if !bytes.Equal(got, want) {
							t.Fatalf("%v<-%v gain=%g mix=%v n=%d: kernel != reference",
								dstEnc, srcEnc, gain, mix, n)
						}
					}
				}
			}
		}
	}
}

// TestKernelsMatchReferenceQuick drives the same equivalence through
// testing/quick with arbitrary gains and data.
func TestKernelsMatchReferenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(data []byte, gainBits uint32, sel uint8, mix bool) bool {
		srcEnc := allEncodings[int(sel)%len(allEncodings)]
		dstEnc := allEncodings[int(sel/8)%len(allEncodings)]
		// Gain from the mantissa bits, kept in a plausible range.
		gain := float64(gainBits%(1<<20)) / float64(1<<16)
		n := len(data) / 4
		if n == 0 {
			return true
		}
		src := randomSampleBuf(rng, srcEnc, n)
		copy(src, data)
		dst := randomSampleBuf(rng, dstEnc, n)
		got, want := runBoth(dstEnc, srcEnc, src, dst, n, gain, mix)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestProcessMatchesReference checks the public entry point (which does
// its own gain quantization and kernel selection) against the reference.
func TestProcessMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, srcEnc := range allEncodings {
		for _, dstEnc := range allEncodings {
			for _, gain := range kernelGains {
				for _, mix := range []bool{false, true} {
					n := 1 + rng.Intn(300)
					src := randomSampleBuf(rng, srcEnc, n)
					dst := randomSampleBuf(rng, dstEnc, n)
					got := append([]byte(nil), dst...)
					want := append([]byte(nil), dst...)
					Process(got, dstEnc, src, srcEnc, n, gain, mix)
					referenceProcess(want, dstEnc, src, srcEnc, n, GainQ16(gain), mix)
					if !bytes.Equal(got, want) {
						t.Fatalf("Process %v<-%v gain=%g mix=%v: != reference",
							dstEnc, srcEnc, gain, mix)
					}
				}
			}
		}
	}
}

// TestApplyGainMatchesReference checks the in-place gain path (dst and src
// alias) against the reference applied to a copy.
func TestApplyGainMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, e := range allEncodings {
		for _, gain := range kernelGains {
			n := 1 + rng.Intn(300)
			buf := randomSampleBuf(rng, e, n)
			want := append([]byte(nil), buf...)
			ApplyGain(e, buf, n, gain)
			if q := GainQ16(gain); q != GainUnity {
				referenceProcess(want, e, append([]byte(nil), want...), e, n, q, false)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("ApplyGain %v gain=%g: != reference", e, gain)
			}
		}
	}
}

// TestToFromLin16MatchesScalar checks the batch decode/encode primitives
// against the scalar decode16/encode16 loops they replaced.
func TestToFromLin16MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, e := range allEncodings {
		n := 1 + rng.Intn(500)
		src := randomSampleBuf(rng, e, n)
		got := make([]int16, n)
		ToLin16(got, src, e, n)
		for i := 0; i < n; i++ {
			if want := int16(decode16(e, src, i)); got[i] != want {
				t.Fatalf("ToLin16 %v[%d] = %d, want %d", e, i, got[i], want)
			}
		}
		lin := make([]int16, n)
		for i := range lin {
			lin[i] = int16(rng.Intn(65536) - 32768)
		}
		gotB := make([]byte, e.BytesPerSamples(n))
		rng.Read(gotB)
		wantB := append([]byte(nil), gotB...)
		FromLin16(gotB, e, lin, n)
		for i := 0; i < n; i++ {
			encode16(e, wantB, i, int(lin[i]))
		}
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("FromLin16 %v: batch != scalar", e)
		}
	}
}

// TestGainQ16 pins the quantization semantics the engine relies on.
func TestGainQ16(t *testing.T) {
	if GainQ16(1.0) != GainUnity {
		t.Errorf("GainQ16(1.0) = %d", GainQ16(1.0))
	}
	if GainQ16(0.5) != GainUnity/2 {
		t.Errorf("GainQ16(0.5) = %d", GainQ16(0.5))
	}
	// Near-unity gains collapse to unity (within half a Q16 step).
	if GainQ16(1.0+1e-9) != GainUnity {
		t.Errorf("GainQ16(1+1e-9) = %d", GainQ16(1.0+1e-9))
	}
	// Huge gains saturate instead of wrapping.
	if GainQ16(1e12) != math.MaxInt32 {
		t.Errorf("GainQ16(1e12) = %d", GainQ16(1e12))
	}
	if GainQ16(-1e12) != math.MinInt32 {
		t.Errorf("GainQ16(-1e12) = %d", GainQ16(-1e12))
	}
	// ScaleQ16 floors like an arithmetic shift.
	if got := ScaleQ16(-3, GainUnity/2); got != -2 {
		t.Errorf("ScaleQ16(-3, 0.5) = %d, want -2 (floor)", got)
	}
}

// TestMix2DTablesMatchScalar spot-checks the 64 KiB companded mix tables
// against the decode/add/clamp/encode chain they cache, over the full
// byte-pair space.
func TestMix2DTablesMatchScalar(t *testing.T) {
	for d := 0; d < 256; d++ {
		for s := 0; s < 256; s++ {
			wantMu := EncodeMuLaw(Clamp16(int(MuToLin[d]) + int(MuToLin[s])))
			if got := muMixTab[d<<8|s]; got != wantMu {
				t.Fatalf("muMixTab[%#x,%#x] = %#x, want %#x", d, s, got, wantMu)
			}
			wantA := EncodeALaw(Clamp16(int(AToLin[d]) + int(AToLin[s])))
			if got := aMixTab[d<<8|s]; got != wantA {
				t.Fatalf("aMixTab[%#x,%#x] = %#x, want %#x", d, s, got, wantA)
			}
		}
	}
}

// TestSelectKernelInvalidEncoding keeps the reference-fallback path for
// out-of-range encodings alive (the scalar loop treats unknown encodings
// as silent no-ops).
func TestSelectKernelInvalidEncoding(t *testing.T) {
	bad := Encoding(200)
	dst := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), dst...)
	SelectKernel(bad, bad, true, false)(dst, []byte{5, 6, 7, 8}, 4, GainUnity)
	if !bytes.Equal(dst, orig) {
		t.Errorf("invalid-encoding mix mutated dst: %v", dst)
	}
}
