// Package sampleconv implements the digital audio encodings used by
// AudioFile and the conversions among them: the CCITT G.711 µ-law and A-law
// companded telephone formats, 16- and 32-bit linear PCM, and an ADPCM
// compressed type. It also provides the saturating mixing and gain
// primitives the server's output model requires.
//
// µ-law and A-law are eight-bit logarithmically companded formats
// resembling 8-bit floating point, roughly equivalent to 14- and 13-bit
// linear encodings. Conversions to and from linear are table driven, as in
// the paper's utility library: decoding needs a 256-entry table, encoding a
// 16384-entry table indexed by the top bits of the linear value.
package sampleconv

import "fmt"

// Encoding identifies a sample data type (the paper's AEncodeType).
type Encoding uint8

// The encoding types from the AudioFile built-in atoms (Table 2).
const (
	MU255  Encoding = iota // 8-bit µ-law (G.711, US telephony)
	ALAW                   // 8-bit A-law (G.711, European telephony)
	LIN16                  // 16-bit two's complement linear
	LIN32                  // 32-bit two's complement linear
	ADPCM4                 // 4-bit ADPCM (stand-in for the paper's ADPCM32)
	numEncodings
)

// Info describes the framing of an encoding, mirroring the paper's
// AFSampleTypes structure. Encodings with sub-byte samples (ADPCM4) pack
// multiple samples per unit.
type Info struct {
	BitsPerSamp  uint   // only a hint, per the paper
	BytesPerUnit uint   // size of the smallest addressable unit
	SampsPerUnit uint   // samples in one unit
	Name         string // printable name
}

// Sizes is the encoding information table (the paper's AF_sample_sizes).
var Sizes = [numEncodings]Info{
	MU255:  {8, 1, 1, "MU255"},
	ALAW:   {8, 1, 1, "ALAW"},
	LIN16:  {16, 2, 1, "LIN16"},
	LIN32:  {32, 4, 1, "LIN32"},
	ADPCM4: {4, 1, 2, "ADPCM4"},
}

// Valid reports whether e names a known encoding.
func (e Encoding) Valid() bool { return e < numEncodings }

// String returns the encoding's printable name.
func (e Encoding) String() string {
	if !e.Valid() {
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
	return Sizes[e].Name
}

// BytesPerSamples returns the number of bytes occupied by n samples of a
// single channel in encoding e. n must be a multiple of SampsPerUnit.
func (e Encoding) BytesPerSamples(n int) int {
	info := Sizes[e]
	return n / int(info.SampsPerUnit) * int(info.BytesPerUnit)
}

// SamplesPerBytes returns the number of single-channel samples encoded in
// n bytes of encoding e.
func (e Encoding) SamplesPerBytes(n int) int {
	info := Sizes[e]
	return n / int(info.BytesPerUnit) * int(info.SampsPerUnit)
}

// G.711 constants.
const (
	muBias = 0x84  // µ-law bias (132)
	muClip = 32635 // µ-law clipping level before companding

	// MuMax is the largest linear magnitude representable in µ-law.
	MuMax = 32124
	// AMax is the largest linear magnitude representable in A-law.
	AMax = 32256
)

// Decode tables: 256-entry companded-to-linear maps (the paper's AF_exp_u
// and AF_exp_a, widened to 16-bit linear like AF_cvt_u2s).
var (
	MuToLin [256]int16
	AToLin  [256]int16

	// Encode tables: 16384-entry linear-to-companded maps indexed by the top
	// 14 bits of the 16-bit linear value (the paper's AF_comp_u, AF_comp_a;
	// "tables for conversion from linear to µ-law or A-law require 16,384
	// bytes").
	LinToMu [16384]byte
	LinToA  [16384]byte

	// Cross-companding tables (AF_cvt_u2a, AF_cvt_a2u).
	MuToA [256]byte
	AToMu [256]byte
)

func init() {
	for i := 0; i < 256; i++ {
		MuToLin[i] = muLawDecode(byte(i))
		AToLin[i] = aLawDecode(byte(i))
	}
	for i := 0; i < 16384; i++ {
		lin := int16(i << 2) // sign-extend the top 14 bits
		LinToMu[i] = muLawEncode(int(lin))
		LinToA[i] = aLawEncode(int(lin))
	}
	for i := 0; i < 256; i++ {
		MuToA[i] = EncodeALaw(MuToLin[i])
		AToMu[i] = EncodeMuLaw(AToLin[i])
	}
}

// muLawDecode expands one µ-law byte to 16-bit linear.
func muLawDecode(u byte) int16 {
	u = ^u
	t := (int(u&0x0F) << 3) + muBias
	t <<= (u & 0x70) >> 4
	if u&0x80 != 0 {
		return int16(muBias - t)
	}
	return int16(t - muBias)
}

// muLawEncode compands a linear value (full 16-bit range) to µ-law.
func muLawEncode(pcm int) byte {
	var mask int
	pcm >>= 2 // 14-bit magnitude domain
	if pcm < 0 {
		pcm = -pcm
		mask = 0x7F
	} else {
		mask = 0xFF
	}
	if pcm > muClip>>2 {
		pcm = muClip >> 2
	}
	pcm += muBias >> 2
	seg := segment(pcm, muSegEnd[:])
	if seg >= 8 {
		return byte(0x7F ^ mask)
	}
	uval := (seg << 4) | ((pcm >> (seg + 1)) & 0x0F)
	return byte(uval ^ mask)
}

// aLawDecode expands one A-law byte to 16-bit linear.
func aLawDecode(a byte) int16 {
	a ^= 0x55
	t := int(a&0x0F) << 4
	seg := (int(a) & 0x70) >> 4
	switch seg {
	case 0:
		t += 8
	case 1:
		t += 0x108
	default:
		t += 0x108
		t <<= seg - 1
	}
	if a&0x80 != 0 {
		return int16(t)
	}
	return int16(-t)
}

// aLawEncode compands a linear value (full 16-bit range) to A-law.
func aLawEncode(pcm int) byte {
	var mask int
	pcm >>= 3 // 13-bit domain
	if pcm >= 0 {
		mask = 0xD5
	} else {
		mask = 0x55
		pcm = -pcm - 1
	}
	seg := segment(pcm, aSegEnd[:])
	if seg >= 8 {
		return byte(0x7F ^ mask)
	}
	aval := seg << 4
	if seg < 2 {
		aval |= (pcm >> 1) & 0x0F
	} else {
		aval |= (pcm >> seg) & 0x0F
	}
	return byte(aval ^ mask)
}

var muSegEnd = [8]int{0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF}
var aSegEnd = [8]int{0x1F, 0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF}

func segment(val int, table []int) int {
	for i, end := range table {
		if val <= end {
			return i
		}
	}
	return len(table)
}

// DecodeMuLaw expands one µ-law byte to 16-bit linear via table lookup.
func DecodeMuLaw(u byte) int16 { return MuToLin[u] }

// DecodeALaw expands one A-law byte to 16-bit linear via table lookup.
func DecodeALaw(a byte) int16 { return AToLin[a] }

// EncodeMuLaw compands a 16-bit linear value to µ-law via table lookup.
func EncodeMuLaw(pcm int16) byte { return LinToMu[uint16(pcm)>>2] }

// EncodeALaw compands a 16-bit linear value to A-law via table lookup.
func EncodeALaw(pcm int16) byte { return LinToA[uint16(pcm)>>2] }

// SilenceByte returns the byte value representing a silent sample in
// byte-oriented encodings; for multi-byte linear encodings silence is the
// zero value and this returns 0.
func (e Encoding) SilenceByte() byte {
	switch e {
	case MU255:
		return EncodeMuLaw(0) // 0xFF
	case ALAW:
		return EncodeALaw(0) // 0xD5
	default:
		return 0
	}
}

// Silence fills buf with silent sample data in encoding e.
func Silence(e Encoding, buf []byte) {
	b := e.SilenceByte()
	for i := range buf {
		buf[i] = b
	}
}

// Clamp16 saturates a wide sum to the 16-bit linear range.
func Clamp16(v int) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// Clamp32 saturates a wide sum to the 32-bit linear range.
func Clamp32(v int64) int32 {
	if v > 0x7FFFFFFF {
		return 0x7FFFFFFF
	}
	if v < -0x80000000 {
		return -0x80000000
	}
	return int32(v)
}
