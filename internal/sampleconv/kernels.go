package sampleconv

// The batch kernel layer. The server's sample pipeline used to re-decide
// the (srcEnc, dstEnc, gain, mix) shape of a request on every sample,
// dispatching two encoding switches and a float64 multiply per sample
// (the Table 11 mixing penalty). Here that decision is hoisted to one
// table lookup per request: SelectKernel returns a specialized batch
// function that runs a tight, switch-free loop over the whole buffer.
//
// Specializations:
//
//   - same-encoding preemptive copy            -> memcpy
//   - µ-law <-> A-law translation              -> 256-byte tables
//   - µ-law/A-law saturating mix               -> 64 KiB 2-D companded-sum
//     tables (src byte × dst byte -> mixed byte), one load per sample
//   - lin16 mix / gain / gain+mix              -> word loads, integer Q16
//   - µ-law/A-law gain and gain+mix            -> decode-table + Q16 +
//     encode-table loops
//   - everything else (lin32, cross-encoding mixes, ...) -> a two-pass
//     generic kernel: batch-decode into a pooled []int16 scratch, then a
//     per-destination finish loop (still switch-free per sample)
//
// Gain is Q16 fixed point (GainQ16/ScaleQ16): the float64 multiplier is
// quantized once per request and applied with an integer multiply and an
// arithmetic shift. referenceProcess retains the old scalar pipeline
// (with the same Q16 gain) and is the bit-exactness oracle for every
// kernel: property tests assert kernel ≡ reference for all encoding
// pairs, gains, and mix/preempt modes.

import (
	"encoding/binary"
	"math"
	"sync"
)

// Kernel is a specialized batch sample-pipeline step: it moves nsamples
// from src (already in the kernel's source encoding) into dst, applying
// the gain and mix behaviour the kernel was selected for. gainQ16 is the
// Q16 gain multiplier; kernels selected with hasGain=false ignore it.
// dst and src may alias only when they refer to the same samples (the
// in-place ApplyGain case).
type Kernel func(dst, src []byte, nsamples int, gainQ16 int32)

// GainUnity is the Q16 fixed-point representation of unity gain.
const GainUnity = 1 << 16

// GainQ16 quantizes a linear gain multiplier to Q16 fixed point. Gains
// within half a Q16 step of unity collapse to GainUnity (and select the
// no-gain kernels).
func GainQ16(gain float64) int32 {
	if gain == 1.0 {
		return GainUnity
	}
	q := math.Round(gain * GainUnity)
	if q > math.MaxInt32 {
		return math.MaxInt32
	}
	if q < math.MinInt32 {
		return math.MinInt32
	}
	return int32(q)
}

// ScaleQ16 applies a Q16 gain to a linear sample value (arithmetic-shift
// floor; the engine's gain semantics).
func ScaleQ16(v int, q int32) int {
	return int((int64(v) * int64(q)) >> 16)
}

// SelectKernel resolves the batch function for one request shape. It is
// intended to run once per request; the returned kernel is then applied
// to each buffer region without further dispatch. Encodings outside the
// known set fall back to the scalar reference pipeline.
func SelectKernel(dstEnc, srcEnc Encoding, mix, hasGain bool) Kernel {
	if !dstEnc.Valid() || !srcEnc.Valid() {
		return func(dst, src []byte, n int, q int32) {
			referenceProcess(dst, dstEnc, src, srcEnc, n, q, mix)
		}
	}
	return kernels[dstEnc][srcEnc][b2i(mix)][b2i(hasGain)]
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// kernels is the [dstEnc][srcEnc][mix][hasGain] dispatch table, filled by
// init with specialized kernels where they exist and generic two-pass
// kernels elsewhere.
var kernels [numEncodings][numEncodings][2][2]Kernel

// Companded 2-D mix tables: muMixTab[d<<8|s] is the µ-law byte for the
// saturating linear sum of µ-law bytes d and s (likewise aMixTab for
// A-law). 64 KiB each; one lookup replaces two decodes, an add, a clamp,
// and an encode.
var (
	muMixTab [65536]byte
	aMixTab  [65536]byte
)

// referenceProcess is the retained scalar pipeline (the pre-kernel
// Process body, with the float64 gain replaced by the same Q16 gain the
// kernels use). It defines the semantics every kernel must reproduce
// bit-for-bit and serves as the fallback for unknown encodings.
func referenceProcess(dst []byte, dstEnc Encoding, src []byte, srcEnc Encoding, nsamples int, gainQ16 int32, mix bool) int {
	if nsamples <= 0 {
		return 0
	}
	if !mix && gainQ16 == GainUnity && dstEnc == srcEnc {
		n := dstEnc.BytesPerSamples(nsamples)
		copy(dst[:n], src[:n])
		return nsamples
	}
	if !mix && gainQ16 == GainUnity && srcEnc == MU255 && dstEnc == ALAW {
		for i := 0; i < nsamples; i++ {
			dst[i] = MuToA[src[i]]
		}
		return nsamples
	}
	if !mix && gainQ16 == GainUnity && srcEnc == ALAW && dstEnc == MU255 {
		for i := 0; i < nsamples; i++ {
			dst[i] = AToMu[src[i]]
		}
		return nsamples
	}
	for i := 0; i < nsamples; i++ {
		v := decode16(srcEnc, src, i)
		if gainQ16 != GainUnity {
			v = ScaleQ16(v, gainQ16)
		}
		if mix {
			v += decode16(dstEnc, dst, i)
		}
		encode16(dstEnc, dst, i, v)
	}
	return nsamples
}

// --- batch decode/encode primitives (the generic kernel's passes) ---

// decBatch[e] decodes len(lin) samples of src into the 16-bit linear
// domain. ADPCM4 has no linear interpretation here (conversion modules
// decompress before the pipeline); it decodes as zero, as the scalar
// pipeline always has.
var decBatch = [numEncodings]func(lin []int16, src []byte){
	MU255: func(lin []int16, src []byte) {
		for i := range lin {
			lin[i] = MuToLin[src[i]]
		}
	},
	ALAW: func(lin []int16, src []byte) {
		for i := range lin {
			lin[i] = AToLin[src[i]]
		}
	},
	LIN16: func(lin []int16, src []byte) {
		for i := range lin {
			lin[i] = int16(binary.LittleEndian.Uint16(src[2*i:]))
		}
	},
	LIN32: func(lin []int16, src []byte) {
		for i := range lin {
			lin[i] = int16(int32(binary.LittleEndian.Uint32(src[4*i:])) >> 16)
		}
	},
	ADPCM4: func(lin []int16, src []byte) {
		for i := range lin {
			lin[i] = 0
		}
	},
}

// encBatch[e] encodes len(lin) 16-bit linear samples into dst. ADPCM4 is
// a no-op, as encode16 always was for it.
var encBatch = [numEncodings]func(dst []byte, lin []int16){
	MU255: func(dst []byte, lin []int16) {
		for i, v := range lin {
			dst[i] = LinToMu[uint16(v)>>2]
		}
	},
	ALAW: func(dst []byte, lin []int16) {
		for i, v := range lin {
			dst[i] = LinToA[uint16(v)>>2]
		}
	},
	LIN16: func(dst []byte, lin []int16) {
		for i, v := range lin {
			binary.LittleEndian.PutUint16(dst[2*i:], uint16(v))
		}
	},
	LIN32: func(dst []byte, lin []int16) {
		for i, v := range lin {
			binary.LittleEndian.PutUint32(dst[4*i:], uint32(int32(v)<<16))
		}
	},
	ADPCM4: func(dst []byte, lin []int16) {},
}

// finBatch[e] is the generic kernel's second pass: apply gain and mix in
// the wide linear domain and encode into dst. The mode flags are hoisted
// out of the sample loops.
var finBatch = [numEncodings]func(dst []byte, lin []int16, q int32, mix, hasGain bool){
	MU255: func(dst []byte, lin []int16, q int32, mix, hasGain bool) {
		switch {
		case !mix && !hasGain:
			encBatch[MU255](dst, lin)
		case !mix:
			for i, v0 := range lin {
				dst[i] = LinToMu[uint16(Clamp16(ScaleQ16(int(v0), q)))>>2]
			}
		case !hasGain:
			for i, v0 := range lin {
				dst[i] = LinToMu[uint16(Clamp16(int(v0)+int(MuToLin[dst[i]])))>>2]
			}
		default:
			for i, v0 := range lin {
				dst[i] = LinToMu[uint16(Clamp16(ScaleQ16(int(v0), q)+int(MuToLin[dst[i]])))>>2]
			}
		}
	},
	ALAW: func(dst []byte, lin []int16, q int32, mix, hasGain bool) {
		switch {
		case !mix && !hasGain:
			encBatch[ALAW](dst, lin)
		case !mix:
			for i, v0 := range lin {
				dst[i] = LinToA[uint16(Clamp16(ScaleQ16(int(v0), q)))>>2]
			}
		case !hasGain:
			for i, v0 := range lin {
				dst[i] = LinToA[uint16(Clamp16(int(v0)+int(AToLin[dst[i]])))>>2]
			}
		default:
			for i, v0 := range lin {
				dst[i] = LinToA[uint16(Clamp16(ScaleQ16(int(v0), q)+int(AToLin[dst[i]])))>>2]
			}
		}
	},
	LIN16: func(dst []byte, lin []int16, q int32, mix, hasGain bool) {
		switch {
		case !mix && !hasGain:
			encBatch[LIN16](dst, lin)
		case !mix:
			for i, v0 := range lin {
				binary.LittleEndian.PutUint16(dst[2*i:], uint16(Clamp16(ScaleQ16(int(v0), q))))
			}
		case !hasGain:
			for i, v0 := range lin {
				v := int(v0) + int(int16(binary.LittleEndian.Uint16(dst[2*i:])))
				binary.LittleEndian.PutUint16(dst[2*i:], uint16(Clamp16(v)))
			}
		default:
			for i, v0 := range lin {
				v := ScaleQ16(int(v0), q) + int(int16(binary.LittleEndian.Uint16(dst[2*i:])))
				binary.LittleEndian.PutUint16(dst[2*i:], uint16(Clamp16(v)))
			}
		}
	},
	LIN32: func(dst []byte, lin []int16, q int32, mix, hasGain bool) {
		switch {
		case !mix && !hasGain:
			encBatch[LIN32](dst, lin)
		case !mix:
			for i, v0 := range lin {
				s := Clamp16(ScaleQ16(int(v0), q))
				binary.LittleEndian.PutUint32(dst[4*i:], uint32(int32(s)<<16))
			}
		case !hasGain:
			for i, v0 := range lin {
				v := int(v0) + int(int32(binary.LittleEndian.Uint32(dst[4*i:]))>>16)
				binary.LittleEndian.PutUint32(dst[4*i:], uint32(int32(Clamp16(v))<<16))
			}
		default:
			for i, v0 := range lin {
				v := ScaleQ16(int(v0), q) + int(int32(binary.LittleEndian.Uint32(dst[4*i:]))>>16)
				binary.LittleEndian.PutUint32(dst[4*i:], uint32(int32(Clamp16(v))<<16))
			}
		}
	},
	ADPCM4: func(dst []byte, lin []int16, q int32, mix, hasGain bool) {},
}

// linScratch pools the generic kernel's []int16 staging so the streaming
// hot path allocates nothing in steady state.
var linScratch = sync.Pool{New: func() any { return new([]int16) }}

func makeGeneric(dstEnc, srcEnc Encoding, mix, hasGain bool) Kernel {
	dec := decBatch[srcEnc]
	fin := finBatch[dstEnc]
	return func(dst, src []byte, n int, q int32) {
		lp := linScratch.Get().(*[]int16)
		lin := *lp
		if cap(lin) < n {
			lin = make([]int16, n)
		}
		lin = lin[:n]
		dec(lin, src)
		fin(dst, lin, q, mix, hasGain)
		*lp = lin
		linScratch.Put(lp)
	}
}

// --- specialized kernels ---

func makeCopy(e Encoding) Kernel {
	return func(dst, src []byte, n int, q int32) {
		nb := e.BytesPerSamples(n)
		copy(dst[:nb], src[:nb])
	}
}

func makeTranslate(tbl *[256]byte) Kernel {
	return func(dst, src []byte, n int, q int32) {
		for i := 0; i < n; i++ {
			dst[i] = tbl[src[i]]
		}
	}
}

func makeMix2D(tbl *[65536]byte) Kernel {
	return func(dst, src []byte, n int, q int32) {
		_ = dst[:n]
		_ = src[:n]
		for i := 0; i < n; i++ {
			dst[i] = tbl[uint16(dst[i])<<8|uint16(src[i])]
		}
	}
}

// compandTabThreshold is the request length beyond which the companded
// gain kernels precompute a 256-entry gain table (one multiply per
// distinct byte value) instead of multiplying per sample.
const compandTabThreshold = 256

// makeCompandGain builds the µ-law/A-law same-encoding gain kernels
// (with or without mix). The gain is constant across a request, so for
// any non-trivial length the multiply is folded into a per-request
// 256-entry table and the sample loop becomes pure lookups.
func makeCompandGain(dec *[256]int16, enc *[16384]byte, mix bool) Kernel {
	if mix {
		return func(dst, src []byte, n int, q int32) {
			if n >= compandTabThreshold {
				var scaled [256]int32
				for b := range scaled {
					scaled[b] = int32(ScaleQ16(int(dec[b]), q))
				}
				for i := 0; i < n; i++ {
					v := int(scaled[src[i]]) + int(dec[dst[i]])
					dst[i] = enc[uint16(Clamp16(v))>>2]
				}
				return
			}
			for i := 0; i < n; i++ {
				v := ScaleQ16(int(dec[src[i]]), q) + int(dec[dst[i]])
				dst[i] = enc[uint16(Clamp16(v))>>2]
			}
		}
	}
	return func(dst, src []byte, n int, q int32) {
		if n >= compandTabThreshold {
			var tbl [256]byte
			for b := range tbl {
				tbl[b] = enc[uint16(Clamp16(ScaleQ16(int(dec[b]), q)))>>2]
			}
			for i := 0; i < n; i++ {
				dst[i] = tbl[src[i]]
			}
			return
		}
		for i := 0; i < n; i++ {
			dst[i] = enc[uint16(Clamp16(ScaleQ16(int(dec[src[i]]), q)))>>2]
		}
	}
}

func lin16Mix(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		v := int(int16(binary.LittleEndian.Uint16(src[2*i:]))) +
			int(int16(binary.LittleEndian.Uint16(dst[2*i:])))
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(Clamp16(v)))
	}
}

func lin16Gain(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		v := ScaleQ16(int(int16(binary.LittleEndian.Uint16(src[2*i:]))), q)
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(Clamp16(v)))
	}
}

func lin16GainMix(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		v := ScaleQ16(int(int16(binary.LittleEndian.Uint16(src[2*i:]))), q) +
			int(int16(binary.LittleEndian.Uint16(dst[2*i:])))
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(Clamp16(v)))
	}
}

// muToLin16 / linToMu16 and the A-law twins are the hot CODEC<->linear
// conversion kernels (unity gain, preemptive).
func muToLin16(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(MuToLin[src[i]]))
	}
}

func aToLin16(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(AToLin[src[i]]))
	}
}

func lin16ToMu(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		dst[i] = LinToMu[binary.LittleEndian.Uint16(src[2*i:])>>2]
	}
}

func lin16ToA(dst, src []byte, n int, q int32) {
	for i := 0; i < n; i++ {
		dst[i] = LinToA[binary.LittleEndian.Uint16(src[2*i:])>>2]
	}
}

func init() {
	// The 2-D companded mix tables, built to match the reference pipeline
	// exactly: decode both bytes, saturating add, table encode.
	for d := 0; d < 256; d++ {
		for s := 0; s < 256; s++ {
			muMixTab[d<<8|s] = LinToMu[uint16(Clamp16(int(MuToLin[d])+int(MuToLin[s])))>>2]
			aMixTab[d<<8|s] = LinToA[uint16(Clamp16(int(AToLin[d])+int(AToLin[s])))>>2]
		}
	}

	// Generic kernels everywhere, then specialized overrides.
	for de := Encoding(0); de < numEncodings; de++ {
		for se := Encoding(0); se < numEncodings; se++ {
			for _, mix := range []bool{false, true} {
				for _, hasGain := range []bool{false, true} {
					kernels[de][se][b2i(mix)][b2i(hasGain)] = makeGeneric(de, se, mix, hasGain)
				}
			}
		}
		// Same-encoding preemptive unity copy (including ADPCM4, whose
		// opaque bytes pass through untouched).
		kernels[de][de][0][0] = makeCopy(de)
	}

	kernels[ALAW][MU255][0][0] = makeTranslate(&MuToA)
	kernels[MU255][ALAW][0][0] = makeTranslate(&AToMu)

	kernels[MU255][MU255][1][0] = makeMix2D(&muMixTab)
	kernels[ALAW][ALAW][1][0] = makeMix2D(&aMixTab)

	kernels[MU255][MU255][0][1] = makeCompandGain(&MuToLin, &LinToMu, false)
	kernels[MU255][MU255][1][1] = makeCompandGain(&MuToLin, &LinToMu, true)
	kernels[ALAW][ALAW][0][1] = makeCompandGain(&AToLin, &LinToA, false)
	kernels[ALAW][ALAW][1][1] = makeCompandGain(&AToLin, &LinToA, true)

	kernels[LIN16][LIN16][1][0] = lin16Mix
	kernels[LIN16][LIN16][0][1] = lin16Gain
	kernels[LIN16][LIN16][1][1] = lin16GainMix

	kernels[LIN16][MU255][0][0] = muToLin16
	kernels[LIN16][ALAW][0][0] = aToLin16
	kernels[MU255][LIN16][0][0] = lin16ToMu
	kernels[ALAW][LIN16][0][0] = lin16ToA
}
