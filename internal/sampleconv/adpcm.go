package sampleconv

// IMA/DVI ADPCM, 4 bits per sample. The paper lists SAMPLE_ADPCM32 (G.721,
// 32 kb/s at 8 kHz) among its encoding atoms; G.721 is proprietary in
// detail, so this implementation substitutes the freely specified IMA ADPCM
// codec, which has the same rate (4 bits/sample) and the same role: a
// stateful compressed type handled by a per-audio-context conversion module
// in the server. Two samples pack into each byte, low nibble first.

var imaIndexTable = [16]int{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var imaStepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// ADPCMCoder holds the predictor state for one direction of an ADPCM
// stream. The zero value is a valid initial state.
type ADPCMCoder struct {
	predicted int // last predicted sample
	index     int // index into the step table
}

// Reset returns the coder to its initial state.
func (c *ADPCMCoder) Reset() { c.predicted, c.index = 0, 0 }

func (c *ADPCMCoder) encodeSample(s int16) byte {
	step := imaStepTable[c.index]
	diff := int(s) - c.predicted
	var nibble byte
	if diff < 0 {
		nibble = 8
		diff = -diff
	}
	// Quantize the difference against step, step/2, step/4.
	delta := 0
	vpdiff := step >> 3
	if diff >= step {
		nibble |= 4
		diff -= step
		vpdiff += step
	}
	step >>= 1
	if diff >= step {
		nibble |= 2
		diff -= step
		vpdiff += step
	}
	step >>= 1
	if diff >= step {
		nibble |= 1
		vpdiff += step
	}
	_ = delta
	if nibble&8 != 0 {
		c.predicted -= vpdiff
	} else {
		c.predicted += vpdiff
	}
	c.predicted = int(Clamp16(c.predicted))
	c.index += imaIndexTable[nibble]
	if c.index < 0 {
		c.index = 0
	} else if c.index > 88 {
		c.index = 88
	}
	return nibble
}

func (c *ADPCMCoder) decodeSample(nibble byte) int16 {
	step := imaStepTable[c.index]
	vpdiff := step >> 3
	if nibble&4 != 0 {
		vpdiff += step
	}
	if nibble&2 != 0 {
		vpdiff += step >> 1
	}
	if nibble&1 != 0 {
		vpdiff += step >> 2
	}
	if nibble&8 != 0 {
		c.predicted -= vpdiff
	} else {
		c.predicted += vpdiff
	}
	c.predicted = int(Clamp16(c.predicted))
	c.index += imaIndexTable[nibble]
	if c.index < 0 {
		c.index = 0
	} else if c.index > 88 {
		c.index = 88
	}
	return int16(c.predicted)
}

// Encode compresses linear samples into ADPCM nibbles. len(src) must be
// even; dst must hold len(src)/2 bytes. It returns the bytes written.
func (c *ADPCMCoder) Encode(dst []byte, src []int16) int {
	n := len(src) / 2
	for i := 0; i < n; i++ {
		lo := c.encodeSample(src[2*i])
		hi := c.encodeSample(src[2*i+1])
		dst[i] = lo | hi<<4
	}
	return n
}

// Decode expands ADPCM bytes into linear samples. dst must hold
// 2*len(src) samples. It returns the samples written.
func (c *ADPCMCoder) Decode(dst []int16, src []byte) int {
	for i, b := range src {
		dst[2*i] = c.decodeSample(b & 0x0F)
		dst[2*i+1] = c.decodeSample(b >> 4)
	}
	return 2 * len(src)
}
