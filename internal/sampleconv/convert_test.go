package sampleconv

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func lin16Bytes(samples ...int16) []byte {
	buf := make([]byte, 2*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	}
	return buf
}

func lin16Samples(buf []byte) []int16 {
	out := make([]int16, len(buf)/2)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(buf[2*i:]))
	}
	return out
}

func TestSwapBytes(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	SwapBytes(LIN16, b)
	if !bytes.Equal(b, []byte{2, 1, 4, 3}) {
		t.Errorf("lin16 swap = %v", b)
	}
	b = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	SwapBytes(LIN32, b)
	if !bytes.Equal(b, []byte{4, 3, 2, 1, 8, 7, 6, 5}) {
		t.Errorf("lin32 swap = %v", b)
	}
	b = []byte{9, 8}
	SwapBytes(MU255, b)
	if !bytes.Equal(b, []byte{9, 8}) {
		t.Errorf("mu-law swap changed data: %v", b)
	}
}

// TestSwapBytesPartialUnit pins the documented trailing-partial-unit
// behaviour: whole sample units are swapped, and a trailing fragment (an
// odd byte for 16-bit encodings, 1–3 bytes for 32-bit) is left untouched
// rather than being half-swapped or dropped silently.
func TestSwapBytesPartialUnit(t *testing.T) {
	b := []byte{1, 2, 3, 4, 5}
	SwapBytes(LIN16, b)
	if !bytes.Equal(b, []byte{2, 1, 4, 3, 5}) {
		t.Errorf("lin16 partial swap = %v, want [2 1 4 3 5]", b)
	}
	for tail := 1; tail <= 3; tail++ {
		b := []byte{1, 2, 3, 4, 9, 8, 7}[:4+tail]
		want := append([]byte{4, 3, 2, 1}, b[4:]...)
		SwapBytes(LIN32, b)
		if !bytes.Equal(b, want) {
			t.Errorf("lin32 partial swap (tail %d) = %v, want %v", tail, b, want)
		}
	}
	// A buffer smaller than one unit is untouched entirely.
	one := []byte{42}
	SwapBytes(LIN16, one)
	if one[0] != 42 {
		t.Errorf("sub-unit buffer changed: %v", one)
	}
}

// TestSwapBytesAllLengths cross-checks the word-at-a-time implementation
// against a byte-pair reference over every length through several words,
// covering the unrolled body, the scalar tail, and partial units.
func TestSwapBytesAllLengths(t *testing.T) {
	for _, e := range []Encoding{LIN16, LIN32} {
		unit := int(Sizes[e].BytesPerUnit)
		for n := 0; n < 67; n++ {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i + 1)
			}
			want := append([]byte(nil), buf...)
			for i := 0; i+unit <= n; i += unit {
				for j := 0; j < unit/2; j++ {
					want[i+j], want[i+unit-1-j] = want[i+unit-1-j], want[i+j]
				}
			}
			SwapBytes(e, buf)
			if !bytes.Equal(buf, want) {
				t.Fatalf("%v len %d: got %v, want %v", e, n, buf, want)
			}
		}
	}
}

func TestSwapInvolution(t *testing.T) {
	f := func(data []byte) bool {
		for _, e := range []Encoding{LIN16, LIN32} {
			// Trim to a whole number of units.
			unit := int(Sizes[e].BytesPerUnit)
			d := append([]byte(nil), data[:len(data)/unit*unit]...)
			orig := append([]byte(nil), d...)
			SwapBytes(e, d)
			SwapBytes(e, d)
			if !bytes.Equal(d, orig) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessCopyFastPath(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	dst := make([]byte, 4)
	n := Process(dst, MU255, src, MU255, 4, 1.0, false)
	if n != 4 || !bytes.Equal(dst, src) {
		t.Errorf("fast copy: n=%d dst=%v", n, dst)
	}
}

func TestProcessMixLin16(t *testing.T) {
	dst := lin16Bytes(100, -200, 30000)
	src := lin16Bytes(50, -50, 10000)
	Process(dst, LIN16, src, LIN16, 3, 1.0, true)
	got := lin16Samples(dst)
	want := []int16{150, -250, 32767} // last saturates
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mix[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestProcessMixMuLaw(t *testing.T) {
	// Mixing two equal µ-law tones roughly doubles the linear value.
	v := EncodeMuLaw(1000)
	dst := []byte{v}
	src := []byte{v}
	Mix(MU255, dst, src, 1)
	got := int(DecodeMuLaw(dst[0]))
	lin := int(DecodeMuLaw(v))
	if got < 2*lin-200 || got > 2*lin+200 {
		t.Errorf("µ-law mix of %d+%d = %d", lin, lin, got)
	}
}

func TestProcessGain(t *testing.T) {
	dst := make([]byte, 4)
	src := lin16Bytes(1000, -1000)
	Process(dst, LIN16, src, LIN16, 2, 0.5, false)
	got := lin16Samples(dst)
	if got[0] != 500 || got[1] != -500 {
		t.Errorf("gain 0.5: %v", got)
	}
	// Gain that overflows must saturate.
	src = lin16Bytes(30000)
	dst = make([]byte, 2)
	Process(dst, LIN16, src, LIN16, 1, 4.0, false)
	if lin16Samples(dst)[0] != 32767 {
		t.Errorf("gain overflow = %d, want 32767", lin16Samples(dst)[0])
	}
}

func TestConvertMuToLin16(t *testing.T) {
	src := []byte{EncodeMuLaw(5000), EncodeMuLaw(-5000)}
	dst := make([]byte, 4)
	Convert(dst, LIN16, src, MU255, 2)
	got := lin16Samples(dst)
	for i, want := range []int16{DecodeMuLaw(src[0]), DecodeMuLaw(src[1])} {
		if got[i] != want {
			t.Errorf("convert[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestConvertLin16ToMu(t *testing.T) {
	src := lin16Bytes(5000, -5000, 0)
	dst := make([]byte, 3)
	Convert(dst, MU255, src, LIN16, 3)
	want := []byte{EncodeMuLaw(5000), EncodeMuLaw(-5000), EncodeMuLaw(0)}
	if !bytes.Equal(dst, want) {
		t.Errorf("convert = %v, want %v", dst, want)
	}
}

func TestConvertCrossCompandFastPath(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 256)
	Convert(dst, ALAW, src, MU255, 256)
	for i := range src {
		if dst[i] != MuToA[i] {
			t.Errorf("mu->a[%d] = %#x, want %#x", i, dst[i], MuToA[i])
		}
	}
	Convert(dst, MU255, src, ALAW, 256)
	for i := range src {
		if dst[i] != AToMu[i] {
			t.Errorf("a->mu[%d] = %#x, want %#x", i, dst[i], AToMu[i])
		}
	}
}

func TestLin32Conversion(t *testing.T) {
	// lin16 1000 -> lin32 is 1000<<16; back down is 1000.
	src := lin16Bytes(1000)
	dst32 := make([]byte, 4)
	Convert(dst32, LIN32, src, LIN16, 1)
	v32 := int32(binary.LittleEndian.Uint32(dst32))
	if v32 != 1000<<16 {
		t.Errorf("lin16->lin32 = %d, want %d", v32, 1000<<16)
	}
	back := make([]byte, 2)
	Convert(back, LIN16, dst32, LIN32, 1)
	if lin16Samples(back)[0] != 1000 {
		t.Errorf("lin32->lin16 = %d, want 1000", lin16Samples(back)[0])
	}
}

func TestApplyGain(t *testing.T) {
	buf := lin16Bytes(100, -100)
	ApplyGain(LIN16, buf, 2, 2.0)
	got := lin16Samples(buf)
	if got[0] != 200 || got[1] != -200 {
		t.Errorf("ApplyGain: %v", got)
	}
	// Unity gain must not change data.
	orig := append([]byte(nil), buf...)
	ApplyGain(LIN16, buf, 2, 1.0)
	if !bytes.Equal(buf, orig) {
		t.Error("unity gain changed data")
	}
}

func TestToFromLin16(t *testing.T) {
	in := []int16{0, 1, -1, 32767, -32768, 12345}
	enc := make([]byte, 12)
	FromLin16(enc, LIN16, in, len(in))
	out := make([]int16, len(in))
	ToLin16(out, enc, LIN16, len(in))
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("lin16 roundtrip[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

// Property: mixing is commutative in the linear domain for lin16.
func TestQuickMixCommutative(t *testing.T) {
	f := func(a, b int16) bool {
		d1 := lin16Bytes(a)
		s1 := lin16Bytes(b)
		Mix(LIN16, d1, s1, 1)
		d2 := lin16Bytes(b)
		s2 := lin16Bytes(a)
		Mix(LIN16, d2, s2, 1)
		return bytes.Equal(d1, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mixing silence into a buffer leaves lin16 data unchanged.
func TestQuickMixSilenceIdentity(t *testing.T) {
	f := func(a int16) bool {
		d := lin16Bytes(a)
		s := lin16Bytes(0)
		Mix(LIN16, d, s, 1)
		return lin16Samples(d)[0] == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestADPCMRoundTrip(t *testing.T) {
	// A slow sine is tracked closely by ADPCM.
	n := 2048
	src := make([]int16, n)
	for i := range src {
		src[i] = int16(8000 * math.Sin(2*math.Pi*float64(i)/128))
	}
	var enc, dec ADPCMCoder
	comp := make([]byte, n/2)
	enc.Encode(comp, src)
	out := make([]int16, n)
	dec.Decode(out, comp)
	// Skip the adaptation ramp, then require small relative error.
	var worst int
	for i := 256; i < n; i++ {
		d := int(src[i]) - int(out[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 1200 {
		t.Errorf("ADPCM worst error = %d, want <= 1200", worst)
	}
}

func TestADPCMStateReset(t *testing.T) {
	var c ADPCMCoder
	src := []int16{100, 200, 300, 400}
	buf1 := make([]byte, 2)
	c.Encode(buf1, src)
	c.Reset()
	buf2 := make([]byte, 2)
	c.Encode(buf2, src)
	if !bytes.Equal(buf1, buf2) {
		t.Error("Reset did not restore initial state")
	}
}

func TestADPCMDecodeDeterministic(t *testing.T) {
	f := func(data []byte) bool {
		var d1, d2 ADPCMCoder
		o1 := make([]int16, 2*len(data))
		o2 := make([]int16, 2*len(data))
		d1.Decode(o1, data)
		d2.Decode(o2, data)
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
