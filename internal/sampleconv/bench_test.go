package sampleconv

import "testing"

// Substrate benchmarks: the per-sample costs behind the server's mixing
// and conversion paths (the Table 11 mixing penalty originates here).

func benchBuf(n int) ([]byte, []byte) {
	dst := make([]byte, n)
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i*7 + 1)
		dst[i] = byte(i * 3)
	}
	return dst, src
}

func BenchmarkMuLawDecode(b *testing.B) {
	_, src := benchBuf(8192)
	b.SetBytes(8192)
	var sink int16
	for i := 0; i < b.N; i++ {
		for _, v := range src {
			sink += DecodeMuLaw(v)
		}
	}
	_ = sink
}

func BenchmarkMuLawEncode(b *testing.B) {
	b.SetBytes(8192)
	var sink byte
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8192; j++ {
			sink += EncodeMuLaw(int16(j*7 - 28000))
		}
	}
	_ = sink
}

func BenchmarkMixMuLaw(b *testing.B) {
	dst, src := benchBuf(8192)
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mix(MU255, dst, src, 8192)
	}
}

func BenchmarkMixLin16(b *testing.B) {
	dst, src := benchBuf(16384)
	b.SetBytes(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mix(LIN16, dst, src, 8192)
	}
}

// BenchmarkMixMuLawReference is the retained scalar pipeline on the same
// workload as BenchmarkMixMuLaw: the before/after of the kernel layer.
func BenchmarkMixMuLawReference(b *testing.B) {
	dst, src := benchBuf(8192)
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceProcess(dst, MU255, src, MU255, 8192, GainUnity, true)
	}
}

// BenchmarkKernel exercises each specialized kernel shape through
// SelectKernel, with allocation tracking: the streaming hot path must not
// allocate in steady state.
func BenchmarkKernel(b *testing.B) {
	cases := []struct {
		name           string
		dstEnc, srcEnc Encoding
		mix, hasGain   bool
		gain           float64
	}{
		{"mu_mix", MU255, MU255, true, false, 1.0},
		{"a_mix", ALAW, ALAW, true, false, 1.0},
		{"mu_gain", MU255, MU255, false, true, 0.5},
		{"mu_gain_mix", MU255, MU255, true, true, 0.5},
		{"lin16_mix", LIN16, LIN16, true, false, 1.0},
		{"lin16_gain", LIN16, LIN16, false, true, 0.5},
		{"lin16_gain_mix", LIN16, LIN16, true, true, 0.5},
		{"mu_to_a", ALAW, MU255, false, false, 1.0},
		{"mu_to_lin16", LIN16, MU255, false, false, 1.0},
		{"lin16_to_mu", MU255, LIN16, false, false, 1.0},
		{"generic_lin32_mix", LIN32, MU255, true, false, 1.0},
		{"generic_mu_to_lin16_gain_mix", LIN16, MU255, true, true, 0.5},
	}
	const n = 8192
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src := make([]byte, tc.srcEnc.BytesPerSamples(n))
			dst := make([]byte, tc.dstEnc.BytesPerSamples(n))
			for i := range src {
				src[i] = byte(i*7 + 1)
			}
			for i := range dst {
				dst[i] = byte(i * 3)
			}
			q := GainQ16(tc.gain)
			k := SelectKernel(tc.dstEnc, tc.srcEnc, tc.mix, tc.hasGain)
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k(dst, src, n, q)
			}
		})
	}
}

func BenchmarkCopyFastPath(b *testing.B) {
	dst, src := benchBuf(8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		Process(dst, MU255, src, MU255, 8192, 1.0, false)
	}
}

func BenchmarkConvertMuToLin16(b *testing.B) {
	_, src := benchBuf(8192)
	dst := make([]byte, 16384)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		Convert(dst, LIN16, src, MU255, 8192)
	}
}

func BenchmarkGainMuLaw(b *testing.B) {
	dst, _ := benchBuf(8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		ApplyGain(MU255, dst, 8192, 0.5)
	}
}

func BenchmarkADPCMEncode(b *testing.B) {
	src := make([]int16, 8192)
	for i := range src {
		src[i] = int16(i*13 - 28000)
	}
	dst := make([]byte, 4096)
	b.SetBytes(8192)
	var c ADPCMCoder
	for i := 0; i < b.N; i++ {
		c.Encode(dst, src)
	}
}

func BenchmarkADPCMDecode(b *testing.B) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]int16, 8192)
	b.SetBytes(8192)
	var c ADPCMCoder
	for i := 0; i < b.N; i++ {
		c.Decode(dst, src)
	}
}

func BenchmarkSwapBytesLin16(b *testing.B) {
	dst, _ := benchBuf(16384)
	b.SetBytes(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SwapBytes(LIN16, dst)
	}
}

func BenchmarkSwapBytesLin32(b *testing.B) {
	dst, _ := benchBuf(16384)
	b.SetBytes(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SwapBytes(LIN32, dst)
	}
}
