package sampleconv

import "testing"

// Substrate benchmarks: the per-sample costs behind the server's mixing
// and conversion paths (the Table 11 mixing penalty originates here).

func benchBuf(n int) ([]byte, []byte) {
	dst := make([]byte, n)
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i*7 + 1)
		dst[i] = byte(i * 3)
	}
	return dst, src
}

func BenchmarkMuLawDecode(b *testing.B) {
	_, src := benchBuf(8192)
	b.SetBytes(8192)
	var sink int16
	for i := 0; i < b.N; i++ {
		for _, v := range src {
			sink += DecodeMuLaw(v)
		}
	}
	_ = sink
}

func BenchmarkMuLawEncode(b *testing.B) {
	b.SetBytes(8192)
	var sink byte
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8192; j++ {
			sink += EncodeMuLaw(int16(j*7 - 28000))
		}
	}
	_ = sink
}

func BenchmarkMixMuLaw(b *testing.B) {
	dst, src := benchBuf(8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		Mix(MU255, dst, src, 8192)
	}
}

func BenchmarkMixLin16(b *testing.B) {
	dst, src := benchBuf(16384)
	b.SetBytes(16384)
	for i := 0; i < b.N; i++ {
		Mix(LIN16, dst, src, 8192)
	}
}

func BenchmarkCopyFastPath(b *testing.B) {
	dst, src := benchBuf(8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		Process(dst, MU255, src, MU255, 8192, 1.0, false)
	}
}

func BenchmarkConvertMuToLin16(b *testing.B) {
	_, src := benchBuf(8192)
	dst := make([]byte, 16384)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		Convert(dst, LIN16, src, MU255, 8192)
	}
}

func BenchmarkGainMuLaw(b *testing.B) {
	dst, _ := benchBuf(8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		ApplyGain(MU255, dst, 8192, 0.5)
	}
}

func BenchmarkADPCMEncode(b *testing.B) {
	src := make([]int16, 8192)
	for i := range src {
		src[i] = int16(i*13 - 28000)
	}
	dst := make([]byte, 4096)
	b.SetBytes(8192)
	var c ADPCMCoder
	for i := 0; i < b.N; i++ {
		c.Encode(dst, src)
	}
}

func BenchmarkADPCMDecode(b *testing.B) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]int16, 8192)
	b.SetBytes(8192)
	var c ADPCMCoder
	for i := 0; i < b.N; i++ {
		c.Decode(dst, src)
	}
}

func BenchmarkSwapBytesLin16(b *testing.B) {
	dst, _ := benchBuf(16384)
	b.SetBytes(16384)
	for i := 0; i < b.N; i++ {
		SwapBytes(LIN16, dst)
	}
}
