package sampleconv

import (
	"encoding/binary"
	"math/bits"
)

// Sample data in wire and buffer form is a flat byte slice. Multi-byte
// linear samples are stored little-endian inside the server; requests from
// big-endian clients are byte-swapped on ingest and egress (see SwapBytes).

// SwapBytes reverses the byte order of every multi-byte sample unit in buf,
// in place, operating on whole machine words rather than byte pairs. It is
// a no-op for 8-bit encodings.
//
// A trailing partial unit (an odd byte for 16-bit encodings, 1–3 bytes for
// 32-bit) is not a whole sample and is left untouched: there is no byte
// order to reverse until the rest of the sample arrives. Callers framing
// wire data should not hand partial units here expecting them swapped.
func SwapBytes(e Encoding, buf []byte) {
	switch Sizes[e].BytesPerUnit {
	case 2:
		n := len(buf) &^ 1
		i := 0
		// Four samples per iteration: swap adjacent bytes inside a word.
		for ; i+8 <= n; i += 8 {
			v := binary.LittleEndian.Uint64(buf[i:])
			v = (v&0x00FF00FF00FF00FF)<<8 | (v>>8)&0x00FF00FF00FF00FF
			binary.LittleEndian.PutUint64(buf[i:], v)
		}
		for ; i < n; i += 2 {
			binary.LittleEndian.PutUint16(buf[i:],
				bits.ReverseBytes16(binary.LittleEndian.Uint16(buf[i:])))
		}
	case 4:
		n := len(buf) &^ 3
		for i := 0; i < n; i += 4 {
			binary.LittleEndian.PutUint32(buf[i:],
				bits.ReverseBytes32(binary.LittleEndian.Uint32(buf[i:])))
		}
	}
}

// decode16 reads the sample unit at index i of buf (native little-endian)
// and returns it in the 16-bit linear domain. It is the scalar primitive
// behind the reference pipeline and the channel-view paths; bulk code goes
// through the kernels (see kernels.go).
func decode16(e Encoding, buf []byte, i int) int {
	switch e {
	case MU255:
		return int(MuToLin[buf[i]])
	case ALAW:
		return int(AToLin[buf[i]])
	case LIN16:
		return int(int16(binary.LittleEndian.Uint16(buf[2*i:])))
	case LIN32:
		return int(int32(binary.LittleEndian.Uint32(buf[4*i:])) >> 16)
	}
	return 0
}

// encode16 writes a 16-bit-domain linear value as sample i of buf.
func encode16(e Encoding, buf []byte, i int, v int) {
	s := Clamp16(v)
	switch e {
	case MU255:
		buf[i] = EncodeMuLaw(s)
	case ALAW:
		buf[i] = EncodeALaw(s)
	case LIN16:
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	case LIN32:
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(int32(s)<<16))
	}
}

// DecodeSample reads sample unit i of buf (native little-endian) in the
// 16-bit linear domain. It is the per-sample primitive the server's mono
// channel views use to address one channel inside interleaved frames.
func DecodeSample(e Encoding, buf []byte, i int) int { return decode16(e, buf, i) }

// EncodeSample writes a 16-bit-domain linear value as sample unit i of
// buf, saturating.
func EncodeSample(e Encoding, buf []byte, i int, v int) { encode16(e, buf, i, v) }

// Process implements the server's per-request sample pipeline: decode
// nsamples of src (encoding srcEnc) to linear, scale by gain, convert to
// dstEnc, and either mix into dst (saturating add with the existing
// contents) or copy over it (preemptive play). dst and src must hold at
// least nsamples in their respective encodings. It returns the number of
// samples processed.
//
// Gain is a linear multiplier (1.0 = 0 dB), quantized to Q16 fixed point.
// The request shape is resolved once, to a batch kernel, rather than per
// sample; callers that already hold a request-long view should use
// SelectKernel directly and reuse the kernel across buffer regions.
func Process(dst []byte, dstEnc Encoding, src []byte, srcEnc Encoding, nsamples int, gain float64, mix bool) int {
	if nsamples <= 0 {
		return 0
	}
	q := GainQ16(gain)
	SelectKernel(dstEnc, srcEnc, mix, q != GainUnity)(dst, src, nsamples, q)
	return nsamples
}

// Convert translates nsamples from srcEnc to dstEnc with unity gain,
// overwriting dst. It is Process without mixing.
func Convert(dst []byte, dstEnc Encoding, src []byte, srcEnc Encoding, nsamples int) int {
	if nsamples <= 0 {
		return 0
	}
	SelectKernel(dstEnc, srcEnc, false, false)(dst, src, nsamples, GainUnity)
	return nsamples
}

// Mix mixes nsamples of src into dst, both in encoding e, saturating in
// the linear domain (the paper's AF_mix_u / AF_mix_a behaviour).
func Mix(e Encoding, dst, src []byte, nsamples int) {
	if nsamples <= 0 {
		return
	}
	SelectKernel(e, e, true, false)(dst, src, nsamples, GainUnity)
}

// ApplyGain scales nsamples of buf (encoding e) by a linear gain factor in
// place.
func ApplyGain(e Encoding, buf []byte, nsamples int, gain float64) {
	q := GainQ16(gain)
	if q == GainUnity || nsamples <= 0 {
		return
	}
	SelectKernel(e, e, false, true)(buf, buf, nsamples, q)
}

// ToLin16 decodes nsamples of src into dst as 16-bit-domain linear values.
func ToLin16(dst []int16, src []byte, e Encoding, nsamples int) {
	if nsamples <= 0 {
		return
	}
	if e.Valid() {
		decBatch[e](dst[:nsamples], src)
		return
	}
	for i := 0; i < nsamples; i++ {
		dst[i] = int16(decode16(e, src, i))
	}
}

// FromLin16 encodes nsamples of linear values into dst in encoding e.
func FromLin16(dst []byte, e Encoding, src []int16, nsamples int) {
	if nsamples <= 0 {
		return
	}
	if e.Valid() {
		encBatch[e](dst, src[:nsamples])
		return
	}
	for i := 0; i < nsamples; i++ {
		encode16(e, dst, i, int(src[i]))
	}
}
