package sampleconv

import "encoding/binary"

// Sample data in wire and buffer form is a flat byte slice. Multi-byte
// linear samples are stored little-endian inside the server; requests from
// big-endian clients are byte-swapped on ingest and egress (see SwapBytes).

// SwapBytes reverses the byte order of every multi-byte sample unit in buf,
// in place. It is a no-op for 8-bit encodings.
func SwapBytes(e Encoding, buf []byte) {
	switch Sizes[e].BytesPerUnit {
	case 2:
		for i := 0; i+1 < len(buf); i += 2 {
			buf[i], buf[i+1] = buf[i+1], buf[i]
		}
	case 4:
		for i := 0; i+3 < len(buf); i += 4 {
			buf[i], buf[i+3] = buf[i+3], buf[i]
			buf[i+1], buf[i+2] = buf[i+2], buf[i+1]
		}
	}
}

// decode16 reads the sample unit at index i of buf (native little-endian)
// and returns it in the 16-bit linear domain.
func decode16(e Encoding, buf []byte, i int) int {
	switch e {
	case MU255:
		return int(MuToLin[buf[i]])
	case ALAW:
		return int(AToLin[buf[i]])
	case LIN16:
		return int(int16(binary.LittleEndian.Uint16(buf[2*i:])))
	case LIN32:
		return int(int32(binary.LittleEndian.Uint32(buf[4*i:])) >> 16)
	}
	return 0
}

// encode16 writes a 16-bit-domain linear value as sample i of buf.
func encode16(e Encoding, buf []byte, i int, v int) {
	s := Clamp16(v)
	switch e {
	case MU255:
		buf[i] = EncodeMuLaw(s)
	case ALAW:
		buf[i] = EncodeALaw(s)
	case LIN16:
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	case LIN32:
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(int32(s)<<16))
	}
}

// DecodeSample reads sample unit i of buf (native little-endian) in the
// 16-bit linear domain. It is the per-sample primitive the server's mono
// channel views use to address one channel inside interleaved frames.
func DecodeSample(e Encoding, buf []byte, i int) int { return decode16(e, buf, i) }

// EncodeSample writes a 16-bit-domain linear value as sample unit i of
// buf, saturating.
func EncodeSample(e Encoding, buf []byte, i int, v int) { encode16(e, buf, i, v) }

// Process implements the server's per-request sample pipeline: decode
// nsamples of src (encoding srcEnc) to linear, scale by gain, convert to
// dstEnc, and either mix into dst (saturating add with the existing
// contents) or copy over it (preemptive play). dst and src must hold at
// least nsamples in their respective encodings. It returns the number of
// samples processed.
//
// Gain is a linear multiplier (1.0 = 0 dB). The common fast path — same
// encoding, unity gain, preemptive — is a plain copy.
func Process(dst []byte, dstEnc Encoding, src []byte, srcEnc Encoding, nsamples int, gain float64, mix bool) int {
	if nsamples <= 0 {
		return 0
	}
	if !mix && gain == 1.0 && dstEnc == srcEnc {
		n := dstEnc.BytesPerSamples(nsamples)
		copy(dst[:n], src[:n])
		return nsamples
	}
	if !mix && gain == 1.0 && srcEnc == MU255 && dstEnc == ALAW {
		for i := 0; i < nsamples; i++ {
			dst[i] = MuToA[src[i]]
		}
		return nsamples
	}
	if !mix && gain == 1.0 && srcEnc == ALAW && dstEnc == MU255 {
		for i := 0; i < nsamples; i++ {
			dst[i] = AToMu[src[i]]
		}
		return nsamples
	}
	for i := 0; i < nsamples; i++ {
		v := decode16(srcEnc, src, i)
		if gain != 1.0 {
			v = int(float64(v) * gain)
		}
		if mix {
			v += decode16(dstEnc, dst, i)
		}
		encode16(dstEnc, dst, i, v)
	}
	return nsamples
}

// Convert translates nsamples from srcEnc to dstEnc with unity gain,
// overwriting dst. It is Process without mixing.
func Convert(dst []byte, dstEnc Encoding, src []byte, srcEnc Encoding, nsamples int) int {
	return Process(dst, dstEnc, src, srcEnc, nsamples, 1.0, false)
}

// Mix mixes nsamples of src into dst, both in encoding e, saturating in
// the linear domain (the paper's AF_mix_u / AF_mix_a behaviour).
func Mix(e Encoding, dst, src []byte, nsamples int) {
	Process(dst, e, src, e, nsamples, 1.0, true)
}

// ApplyGain scales nsamples of buf (encoding e) by a linear gain factor in
// place.
func ApplyGain(e Encoding, buf []byte, nsamples int, gain float64) {
	if gain == 1.0 {
		return
	}
	for i := 0; i < nsamples; i++ {
		encode16(e, buf, i, int(float64(decode16(e, buf, i))*gain))
	}
}

// ToLin16 decodes nsamples of src into dst as 16-bit-domain linear values.
func ToLin16(dst []int16, src []byte, e Encoding, nsamples int) {
	for i := 0; i < nsamples; i++ {
		dst[i] = int16(decode16(e, src, i))
	}
}

// FromLin16 encodes nsamples of linear values into dst in encoding e.
func FromLin16(dst []byte, e Encoding, src []int16, nsamples int) {
	for i := 0; i < nsamples; i++ {
		encode16(e, dst, i, int(src[i]))
	}
}
