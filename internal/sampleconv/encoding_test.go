package sampleconv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMuLawKnownValues(t *testing.T) {
	// Silence is 0xFF in µ-law (encode of 0 with positive mask).
	if got := EncodeMuLaw(0); got != 0xFF {
		t.Errorf("EncodeMuLaw(0) = %#x, want 0xff", got)
	}
	if got := DecodeMuLaw(0xFF); got != 0 {
		t.Errorf("DecodeMuLaw(0xff) = %d, want 0", got)
	}
	// Maximum magnitude decodes to ±(MuMax).
	if got := DecodeMuLaw(0x80); got != MuMax {
		t.Errorf("DecodeMuLaw(0x80) = %d, want %d", got, MuMax)
	}
	if got := DecodeMuLaw(0x00); got != -MuMax {
		t.Errorf("DecodeMuLaw(0x00) = %d, want %d", got, -MuMax)
	}
}

func TestALawKnownValues(t *testing.T) {
	if got := EncodeALaw(0); got != 0xD5 {
		t.Errorf("EncodeALaw(0) = %#x, want 0xd5", got)
	}
	// 0xD5 ^ 0x55 = 0x80: seg 0, mantissa 0, positive -> +8.
	if got := DecodeALaw(0xD5); got != 8 {
		t.Errorf("DecodeALaw(0xd5) = %d, want 8", got)
	}
	if got := DecodeALaw(0xAA); got != AMax {
		t.Errorf("DecodeALaw(0xaa) = %d, want %d", got, AMax)
	}
}

// Property: decode(encode(x)) is within companding quantization error of x,
// and the error bound grows with magnitude (logarithmic companding).
func TestQuickMuLawRoundTrip(t *testing.T) {
	f := func(x int16) bool {
		y := int(DecodeMuLaw(EncodeMuLaw(x)))
		diff := int(x) - y
		if diff < 0 {
			diff = -diff
		}
		mag := int(x)
		if mag < 0 {
			mag = -mag
		}
		// µ-law worst-case quantization error: half the largest step
		// (256 in the top segment) plus clipping above MuMax.
		bound := mag/16 + 36
		return diff <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickALawRoundTrip(t *testing.T) {
	f := func(x int16) bool {
		y := int(DecodeALaw(EncodeALaw(x)))
		diff := int(x) - y
		if diff < 0 {
			diff = -diff
		}
		mag := int(x)
		if mag < 0 {
			mag = -mag
		}
		bound := mag/16 + 520 // A-law has a larger minimum step (16) and clips at AMax
		return diff <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: encode(decode(b)) == b for every companded byte (the decode
// values are exact codebook centers).
func TestCompandedIdempotent(t *testing.T) {
	for i := 0; i < 256; i++ {
		b := byte(i)
		got := EncodeMuLaw(DecodeMuLaw(b))
		// 0x7F is µ-law "negative zero"; it decodes to 0, which re-encodes
		// as positive zero 0xFF. Every other code round-trips exactly.
		if b == 0x7F {
			if got != 0xFF {
				t.Errorf("µ-law negative zero re-encoded as %#x, want 0xff", got)
			}
			continue
		}
		if got != b {
			t.Errorf("µ-law encode(decode(%#x)) = %#x", b, got)
		}
		if got := EncodeALaw(DecodeALaw(b)); got != b {
			t.Errorf("A-law encode(decode(%#x)) = %#x", b, got)
		}
	}
}

func TestMonotonicDecode(t *testing.T) {
	// Positive µ-law codes 0xFF (zero) down to 0x80 (max) decode to
	// non-decreasing linear values.
	prev := int16(math.MinInt16)
	for code := 0xFF; code >= 0x80; code-- {
		v := DecodeMuLaw(byte(code))
		if v < prev {
			t.Fatalf("µ-law decode not monotonic at %#x: %d < %d", code, v, prev)
		}
		prev = v
	}
}

func TestCrossCompanding(t *testing.T) {
	for i := 0; i < 256; i++ {
		u := byte(i)
		want := EncodeALaw(DecodeMuLaw(u))
		if MuToA[u] != want {
			t.Errorf("MuToA[%#x] = %#x, want %#x", u, MuToA[u], want)
		}
		a := byte(i)
		want = EncodeMuLaw(DecodeALaw(a))
		if AToMu[a] != want {
			t.Errorf("AToMu[%#x] = %#x, want %#x", a, AToMu[a], want)
		}
	}
}

func TestSilence(t *testing.T) {
	buf := make([]byte, 8)
	Silence(MU255, buf)
	for _, b := range buf {
		if b != 0xFF {
			t.Fatalf("µ-law silence byte = %#x, want 0xff", b)
		}
	}
	Silence(LIN16, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("lin16 silence byte = %#x, want 0", b)
		}
	}
	// Silence must decode to (near) zero.
	if v := DecodeMuLaw(0xFF); v != 0 {
		t.Errorf("µ-law silence decodes to %d", v)
	}
	if v := DecodeALaw(0xD5); v != 8 {
		t.Errorf("A-law silence decodes to %d, want 8 (smallest positive)", v)
	}
}

func TestEncodingInfo(t *testing.T) {
	cases := []struct {
		e        Encoding
		nsamp    int
		expBytes int
	}{
		{MU255, 100, 100},
		{ALAW, 100, 100},
		{LIN16, 100, 200},
		{LIN32, 100, 400},
		{ADPCM4, 100, 50},
	}
	for _, c := range cases {
		if got := c.e.BytesPerSamples(c.nsamp); got != c.expBytes {
			t.Errorf("%v.BytesPerSamples(%d) = %d, want %d", c.e, c.nsamp, got, c.expBytes)
		}
		if got := c.e.SamplesPerBytes(c.expBytes); got != c.nsamp {
			t.Errorf("%v.SamplesPerBytes(%d) = %d, want %d", c.e, c.expBytes, got, c.nsamp)
		}
	}
	if Encoding(200).Valid() {
		t.Error("Encoding(200).Valid() = true")
	}
	if MU255.String() != "MU255" {
		t.Errorf("String = %q", MU255.String())
	}
}

func TestClamp(t *testing.T) {
	if Clamp16(40000) != 32767 || Clamp16(-40000) != -32768 || Clamp16(123) != 123 {
		t.Error("Clamp16 wrong")
	}
	if Clamp32(1<<40) != 0x7FFFFFFF || Clamp32(-(1<<40)) != -0x80000000 || Clamp32(-7) != -7 {
		t.Error("Clamp32 wrong")
	}
}
