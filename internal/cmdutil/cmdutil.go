// Package cmdutil holds the few helpers the AudioFile command-line
// clients share: server connection with the standard name resolution and
// default device selection.
package cmdutil

import (
	"fmt"
	"os"

	"audiofile/af"
)

// OpenServer connects to the AudioFile server named on the command line
// (or via AUDIOFILE/DISPLAY), exiting with a message on failure, as the
// C clients do via AoD.
func OpenServer(name string) *af.Conn {
	c, err := af.Open(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: can't open connection: %v\n", os.Args[0], err)
		os.Exit(1)
	}
	return c
}

// PickDevice returns the requested device index, or the first device not
// connected to the telephone when dev is negative — usually the local
// loudspeaker.
func PickDevice(c *af.Conn, dev int) int {
	if dev >= 0 {
		if dev >= len(c.Devices()) {
			fmt.Fprintf(os.Stderr, "%s: no device %d\n", os.Args[0], dev)
			os.Exit(1)
		}
		return dev
	}
	d := c.FindDefaultDevice()
	if d < 0 {
		fmt.Fprintf(os.Stderr, "%s: no non-telephone device\n", os.Args[0])
		os.Exit(1)
	}
	return d
}

// PickPhoneDevice returns the requested device, or the first telephone
// device when dev is negative.
func PickPhoneDevice(c *af.Conn, dev int) int {
	if dev >= 0 {
		return dev
	}
	d := c.FindPhoneDevice()
	if d < 0 {
		fmt.Fprintf(os.Stderr, "%s: no telephone device\n", os.Args[0])
		os.Exit(1)
	}
	return d
}

// Die prints a formatted message and exits.
func Die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
