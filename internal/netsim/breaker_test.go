package netsim

import (
	"net"
	"testing"
	"time"
)

// TestBreakerKillRevive exercises the backend-kill helper: live
// connections sever on Kill, new dials die immediately while dead, and
// Revive restores service on the same address.
func TestBreakerKillRevive(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBreaker(inner)
	defer b.Close()

	// Echo server over the breaker.
	go func() {
		for {
			c, err := b.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						c.Close()
						return
					}
					c.Write(buf[:n]) //nolint:errcheck
				}
			}()
		}
	}()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", b.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	roundTrip := func(c net.Conn) error {
		c.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		if _, err := c.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		_, err := c.Read(buf)
		return err
	}

	c1 := dial()
	defer c1.Close()
	if err := roundTrip(c1); err != nil {
		t.Fatalf("round trip before kill: %v", err)
	}

	if n := b.Kill(); n != 1 {
		t.Fatalf("Kill severed %d conns, want 1", n)
	}
	if !b.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	if err := roundTrip(c1); err == nil {
		t.Fatal("severed connection still round-trips")
	}
	// A dial while dead connects (the port is bound) but dies at once.
	c2 := dial()
	defer c2.Close()
	if err := roundTrip(c2); err == nil {
		t.Fatal("connection accepted while dead still round-trips")
	}

	b.Revive()
	c3 := dial()
	defer c3.Close()
	if err := roundTrip(c3); err != nil {
		t.Fatalf("round trip after revive: %v", err)
	}
	if b.Kills() != 1 {
		t.Fatalf("Kills() = %d, want 1", b.Kills())
	}
}
