package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by a FaultConn write that hit its
// configured reset point; the peer sees the connection close mid-message.
var ErrInjectedReset = errors.New("netsim: injected connection reset")

// FaultConfig describes a deterministic fault schedule for a FaultConn.
// Everything randomized derives from Seed, so a failing test reproduces
// exactly by rerunning with the same seed.
type FaultConfig struct {
	// Seed drives all randomized behavior (fragment sizes, stall
	// placement). Two FaultConns with the same config misbehave
	// identically.
	Seed int64

	// FragmentWrites splits every Write into multiple smaller writes of
	// random size in [1, MaxFragment], exercising the peer's reassembly
	// of messages that arrive in pieces at arbitrary packet boundaries.
	FragmentWrites bool
	// MaxFragment bounds the fragment size; 0 means 7 bytes, small
	// enough to split even request headers.
	MaxFragment int

	// ResetAfterBytes closes the connection (from the peer's point of
	// view, a mid-message reset) once that many bytes have been written.
	// The cut lands wherever the byte count falls — usually inside a
	// message. 0 disables.
	ResetAfterBytes int

	// StallEveryBytes inserts a pause of Stall before the write that
	// crosses each multiple of this many bytes, modeling a peer whose
	// socket stops draining. 0 disables.
	StallEveryBytes int
	Stall           time.Duration
}

// FaultConn wraps a connection and injects the configured faults into
// its write path. Reads pass through untouched: the interesting failure
// modes for a message protocol — partial delivery, mid-message death,
// bursty arrival — are all induced from the sending side.
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	written int
	reset   bool
}

// NewFaultConn wraps inner with deterministic fault injection.
func NewFaultConn(inner net.Conn, cfg FaultConfig) *FaultConn {
	if cfg.MaxFragment <= 0 {
		cfg.MaxFragment = 7
	}
	return &FaultConn{
		Conn: inner,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Write delivers b through the fault schedule: possibly in fragments,
// possibly stalling, and cutting the connection at the configured reset
// point — which lands mid-message whenever the boundary falls inside b.
func (c *FaultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, ErrInjectedReset
	}
	sent := 0
	for sent < len(b) {
		n := len(b) - sent
		if c.cfg.FragmentWrites {
			if f := 1 + c.rng.Intn(c.cfg.MaxFragment); f < n {
				n = f
			}
		}
		if r := c.cfg.ResetAfterBytes; r > 0 && c.written+n >= r {
			// Deliver exactly up to the reset point, then sever.
			n = r - c.written
			if n > 0 {
				if m, err := c.Conn.Write(b[sent : sent+n]); err != nil {
					return sent + m, err
				}
				sent += n
				c.written += n
			}
			c.reset = true
			c.Conn.Close() //nolint:errcheck — the reset is the point
			return sent, fmt.Errorf("after %d bytes: %w", c.written, ErrInjectedReset)
		}
		if s := c.cfg.StallEveryBytes; s > 0 && c.cfg.Stall > 0 {
			if c.written/s != (c.written+n)/s {
				time.Sleep(c.cfg.Stall)
			}
		}
		m, err := c.Conn.Write(b[sent : sent+n])
		sent += m
		c.written += m
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// WrittenBytes reports how many bytes have passed to the inner
// connection (diagnostics for tests).
func (c *FaultConn) WrittenBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}
