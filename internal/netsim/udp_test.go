package netsim

import (
	"encoding/binary"
	"net"
	"os"
	"testing"
	"time"
)

// scriptConn is an in-memory net.PacketConn fed by the test: a queue of
// datagrams for ReadFrom and a capture of everything written. It makes
// the fault-schedule tests fully deterministic — no sockets, no timing.
type scriptConn struct {
	in   chan []byte
	outs [][]byte
}

type scriptAddr struct{}

func (scriptAddr) Network() string { return "script" }
func (scriptAddr) String() string  { return "script" }

func newScriptConn(n int) *scriptConn { return &scriptConn{in: make(chan []byte, n)} }

func (s *scriptConn) ReadFrom(b []byte) (int, net.Addr, error) {
	p, ok := <-s.in
	if !ok {
		return 0, scriptAddr{}, net.ErrClosed
	}
	return copy(b, p), scriptAddr{}, nil
}

func (s *scriptConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	s.outs = append(s.outs, append([]byte(nil), b...))
	return len(b), nil
}

func (s *scriptConn) Close() error                       { return nil }
func (s *scriptConn) LocalAddr() net.Addr                { return scriptAddr{} }
func (s *scriptConn) SetDeadline(time.Time) error        { return nil }
func (s *scriptConn) SetReadDeadline(time.Time) error    { return nil }
func (s *scriptConn) SetWriteDeadline(time.Time) error   { return nil }

func pkt(i int) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(i))
	return b
}

// egressTrace pushes n numbered datagrams through the egress schedule
// and returns the delivered sequence numbers in order.
func egressTrace(cfg PacketFaultConfig, n int) []uint32 {
	inner := newScriptConn(0)
	fc := NewFaultPacketConn(inner, cfg)
	for i := 0; i < n; i++ {
		fc.WriteTo(pkt(i), scriptAddr{}) //nolint:errcheck
	}
	out := make([]uint32, 0, len(inner.outs))
	for _, p := range inner.outs {
		out = append(out, binary.BigEndian.Uint32(p))
	}
	return out
}

// TestSameSeedSameTrace: the whole point of seeding — two runs of an
// identical fault schedule over identical traffic produce identical
// delivered traces, and a different seed produces a different one.
func TestSameSeedSameTrace(t *testing.T) {
	cfg := PacketFaultConfig{
		Seed: 42,
		Egress: PacketFaultRates{
			Loss: 0.2, Dup: 0.2, Reorder: 0.2, ReorderSpan: 3,
			BlackoutEvery: 50, BlackoutLen: 10,
		},
	}
	a := egressTrace(cfg, 500)
	b := egressTrace(cfg, 500)
	if len(a) != len(b) {
		t.Fatalf("same seed, different trace lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at packet %d: %d vs %d", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := egressTrace(cfg, 500)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical 500-packet traces")
	}
}

// TestLossDistribution: configured loss rate holds over 10k packets
// within a tolerance far wider than binomial noise (sd ≈ 46 packets).
func TestLossDistribution(t *testing.T) {
	const n, loss = 10000, 0.3
	got := len(egressTrace(PacketFaultConfig{Seed: 7, Egress: PacketFaultRates{Loss: loss}}, n))
	want := int(n * (1 - loss))
	if got < want-300 || got > want+300 {
		t.Errorf("delivered %d of %d at loss %.2f, want %d ± 300", got, n, loss, want)
	}
}

// TestBlackoutExact: blackouts are count-based, so the delivered count
// is exact, not statistical.
func TestBlackoutExact(t *testing.T) {
	const n = 10000
	trace := egressTrace(PacketFaultConfig{
		Seed:   1,
		Egress: PacketFaultRates{BlackoutEvery: 100, BlackoutLen: 20},
	}, n)
	if len(trace) != 8000 {
		t.Errorf("delivered %d, want exactly 8000 (20%% blackout duty cycle)", len(trace))
	}
	// The first packet of every cycle survives, the last is always dropped.
	seen := make(map[uint32]bool, len(trace))
	for _, s := range trace {
		seen[s] = true
	}
	if !seen[0] || !seen[79] || seen[80] || seen[99] {
		t.Error("blackout did not land on the last 20 packets of each 100-packet cycle")
	}
}

// TestDuplicationAndReorder: duplication creates extra copies (counted),
// reordering preserves the packet multiset while changing order, and the
// per-direction conservation law holds after Close.
func TestDuplicationAndReorder(t *testing.T) {
	const n = 2000
	inner := newScriptConn(0)
	fc := NewFaultPacketConn(inner, PacketFaultConfig{
		Seed:   99,
		Egress: PacketFaultRates{Dup: 0.25, Reorder: 0.25, ReorderSpan: 2},
	})
	for i := 0; i < n; i++ {
		fc.WriteTo(pkt(i), scriptAddr{}) //nolint:errcheck
	}
	fc.Close()
	st := fc.Stats().Egress
	if st.Duplicated < n/8 || st.Duplicated > n/2 {
		t.Errorf("duplicated %d of %d at rate 0.25", st.Duplicated, n)
	}
	if st.Reordered < n/8 || st.Reordered > n/2 {
		t.Errorf("reordered %d of %d at rate 0.25", st.Reordered, n)
	}
	counts := make(map[uint32]int)
	inversions := 0
	last := -1
	for _, p := range inner.outs {
		s := int(binary.BigEndian.Uint32(p))
		counts[uint32(s)]++
		if s < last {
			inversions++
		}
		if s > last {
			last = s
		}
	}
	if inversions == 0 {
		t.Error("reorder rate 0.25 produced a perfectly ordered trace")
	}
	// No loss configured: every packet is delivered at least once except
	// those still held at Close; copies = dups only.
	if uint64(len(inner.outs))+st.DroppedAtClose != uint64(n)+st.Duplicated {
		t.Errorf("delivered %d + dropped-at-close %d != sent %d + duplicated %d",
			len(inner.outs), st.DroppedAtClose, n, st.Duplicated)
	}
	for s, c := range counts {
		if c > 2 {
			t.Errorf("packet %d delivered %d times (max 2 with single dup)", s, c)
		}
	}
	if !fc.Stats().Conserved() {
		t.Errorf("conservation law violated after close: %+v", fc.Stats())
	}
}

// TestIngressFaults drives the read side over a real UDP socket pair:
// loss applies, deadlines pass through, and the surviving datagrams
// arrive intact.
func TestIngressFaults(t *testing.T) {
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFaultPacketConn(inner, PacketFaultConfig{
		Seed:    5,
		Ingress: PacketFaultRates{Loss: 0.5},
	})
	defer fc.Close()
	sender, err := net.Dial("udp", inner.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if _, err := sender.Write(pkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	buf := make([]byte, 64)
	for {
		fc.SetReadDeadline(time.Now().Add(200 * time.Millisecond)) //nolint:errcheck
		ln, _, err := fc.ReadFrom(buf)
		if err != nil {
			if os.IsTimeout(err) {
				break
			}
			t.Fatal(err)
		}
		if ln != 4 {
			t.Fatalf("datagram truncated to %d bytes", ln)
		}
		got++
	}
	if got == 0 || got == n {
		t.Errorf("delivered %d of %d at loss 0.5 — fault layer inert or absolute", got, n)
	}
	st := fc.Stats().Ingress
	if st.Delivered != uint64(got) {
		t.Errorf("Delivered = %d, read %d", st.Delivered, got)
	}
}
