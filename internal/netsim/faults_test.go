package netsim

import (
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// sink is a net.Conn that records the size of every Write it receives,
// so fragmentation tests can compare boundary placement exactly.
type sink struct {
	net.Conn // nil; only Write and Close are used
	writes   []int
	closed   bool
}

func (s *sink) Write(b []byte) (int, error) {
	s.writes = append(s.writes, len(b))
	return len(b), nil
}

func (s *sink) Close() error {
	s.closed = true
	return nil
}

func TestFaultFragmentationDeterministic(t *testing.T) {
	payload := make([]byte, 4096)
	run := func(seed int64) []int {
		s := &sink{}
		fc := NewFaultConn(s, FaultConfig{Seed: seed, FragmentWrites: true, MaxFragment: 16})
		for i := 0; i < 8; i++ {
			if _, err := fc.Write(payload); err != nil {
				t.Fatal(err)
			}
		}
		return s.writes
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fragment boundaries:\n%v\n%v", a, b)
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fragment boundaries")
	}
	for i, n := range a {
		if n < 1 || n > 16 {
			t.Fatalf("fragment %d has size %d, want 1..16", i, n)
		}
	}
	total := 0
	for _, n := range a {
		total += n
	}
	if total != 8*len(payload) {
		t.Fatalf("fragments total %d bytes, want %d", total, 8*len(payload))
	}
}

func TestFaultResetMidMessage(t *testing.T) {
	s := &sink{}
	fc := NewFaultConn(s, FaultConfig{Seed: 1, ResetAfterBytes: 50})
	msg := make([]byte, 100)
	n, err := fc.Write(msg)
	if n != 50 {
		t.Errorf("wrote %d bytes before reset, want 50 (mid-message)", n)
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Errorf("err = %v, want ErrInjectedReset", err)
	}
	if !s.closed {
		t.Error("inner connection not closed at the reset point")
	}
	if _, err := fc.Write([]byte("more")); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("write after reset: err = %v, want ErrInjectedReset", err)
	}
}

// TestFaultResetSeenByPeer runs the reset over a real pipe: the reader
// must receive exactly the bytes before the cut, then EOF — a
// connection dying mid-message.
func TestFaultResetSeenByPeer(t *testing.T) {
	a, b := net.Pipe()
	fc := NewFaultConn(a, FaultConfig{Seed: 7, ResetAfterBytes: 10})
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	_, err := fc.Write(make([]byte, 64))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	select {
	case data := <-got:
		if len(data) != 10 {
			t.Errorf("peer received %d bytes, want 10", len(data))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read did not finish after reset")
	}
}

func TestFaultStall(t *testing.T) {
	s := &sink{}
	const stall = 20 * time.Millisecond
	fc := NewFaultConn(s, FaultConfig{Seed: 1, StallEveryBytes: 100, Stall: stall})
	start := time.Now()
	// 250 bytes in 50-byte writes crosses the 100-byte mark twice.
	for i := 0; i < 5; i++ {
		if _, err := fc.Write(make([]byte, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 2*stall {
		t.Errorf("5 writes took %v, want >= %v from two stalls", el, 2*stall)
	}
}
