package netsim

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
)

// This file is the datagram counterpart of FaultConn: packet-level fault
// injection for UDP protocols. Where FaultConn models a byte stream
// misbehaving (fragmentation, mid-message resets), FaultPacketConn
// models the faults that define datagram networks — whole packets lost,
// duplicated, delivered out of order, or wiped out in bursts — on a
// deterministic schedule derived from a seed, so a failing chaos run
// reproduces exactly.
//
// Reordering is count-based, not time-based: a reordered datagram is
// held back until ReorderSpan later datagrams have passed it, which
// keeps traces identical across machines and race-detector slowdowns.
// Burst blackouts are count-based too: out of every BlackoutEvery
// datagrams in a direction, the last BlackoutLen are dropped, modeling
// the box (or the cable) going away for a stretch.

// PacketFaultRates is one direction's fault schedule.
type PacketFaultRates struct {
	// Loss is the probability in [0, 1] a datagram is silently dropped.
	Loss float64
	// Dup is the probability a datagram is delivered twice.
	Dup float64
	// Reorder is the probability a datagram is held back until
	// ReorderSpan subsequent datagrams have passed it. A held datagram
	// that never sees enough traffic is dropped at Close (counted in
	// DroppedAtClose), like a packet lost in a queue.
	Reorder float64
	// ReorderSpan is how many later datagrams overtake a held one;
	// 0 means 2.
	ReorderSpan int
	// Burst blackout: of every BlackoutEvery datagrams, the last
	// BlackoutLen are dropped. 0 disables.
	BlackoutEvery int
	BlackoutLen   int
}

func (r PacketFaultRates) active() bool {
	return r.Loss > 0 || r.Dup > 0 || r.Reorder > 0 || (r.BlackoutEvery > 0 && r.BlackoutLen > 0)
}

// PacketFaultConfig configures a FaultPacketConn. Ingress applies to
// datagrams arriving via ReadFrom, Egress to datagrams leaving via
// WriteTo; each direction draws from its own seeded stream, so the two
// schedules are independent but both reproducible.
type PacketFaultConfig struct {
	Seed    int64
	Ingress PacketFaultRates
	Egress  PacketFaultRates
}

// PacketDirStats is one direction's packet accounting. The conservation
// law, exact once the conn is closed (Held == 0 by then):
//
//	Seen + Duplicated == Delivered + Dropped + BlackedOut + DroppedAtClose + Held
//
// Every datagram copy that enters the fault layer leaves it through
// exactly one of those doors.
type PacketDirStats struct {
	Seen           uint64 `json:"seen"`            // datagrams entering the fault layer
	Delivered      uint64 `json:"delivered"`       // copies handed through
	Dropped        uint64 `json:"dropped"`         // random loss
	Duplicated     uint64 `json:"duplicated"`      // extra copies created
	Reordered      uint64 `json:"reordered"`       // datagrams held back
	BlackedOut     uint64 `json:"blacked_out"`     // dropped inside a burst blackout
	DroppedAtClose uint64 `json:"dropped_at_close"` // held datagrams discarded at Close
	Held           uint64 `json:"held"`            // currently held back (gauge)
}

// check reports "" when the direction's conservation law holds, else a
// description of the violation.
func (s PacketDirStats) check() bool {
	return s.Seen+s.Duplicated == s.Delivered+s.Dropped+s.BlackedOut+s.DroppedAtClose+s.Held
}

// PacketFaultStats is both directions' accounting.
type PacketFaultStats struct {
	Ingress PacketDirStats `json:"ingress"`
	Egress  PacketDirStats `json:"egress"`
}

// Conserved reports whether both directions obey the packet
// conservation law (chaos tests assert it after Close).
func (s PacketFaultStats) Conserved() bool {
	return s.Ingress.check() && s.Egress.check()
}

// heldPacket is a datagram held back for reordering: it becomes
// deliverable once after reaches zero.
type heldPacket struct {
	data  []byte
	addr  net.Addr
	after int
}

// faultDir is one direction's schedule state. The mutex orders decisions
// so the rng stream, the hold queue, and the counters move together;
// it is never held across a blocking inner read or write.
type faultDir struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rates   PacketFaultRates
	span    int
	held    []heldPacket
	pending []heldPacket

	seen           atomic.Uint64
	delivered      atomic.Uint64
	dropped        atomic.Uint64
	duplicated     atomic.Uint64
	reordered      atomic.Uint64
	blackedOut     atomic.Uint64
	droppedAtClose atomic.Uint64
}

func newFaultDir(rates PacketFaultRates, seed int64) *faultDir {
	span := rates.ReorderSpan
	if span <= 0 {
		span = 2
	}
	return &faultDir{
		rng:   rand.New(rand.NewSource(seed)),
		rates: rates,
		span:  span,
	}
}

// admit runs one arriving datagram through the schedule, appending any
// now-deliverable packets (this one, duplicates, and previously held
// packets whose span expired) to pending. Must be called with d.mu held.
func (d *faultDir) admit(data []byte, addr net.Addr) {
	idx := d.seen.Load()
	d.seen.Add(1)
	// Every passing datagram ages the hold queue, whether or not it
	// survives: a dropped packet still "passed" the held one on the wire.
	for i := 0; i < len(d.held); {
		d.held[i].after--
		if d.held[i].after <= 0 {
			d.pending = append(d.pending, d.held[i])
			d.held = append(d.held[:i], d.held[i+1:]...)
			continue
		}
		i++
	}
	if e, l := d.rates.BlackoutEvery, d.rates.BlackoutLen; e > 0 && l > 0 &&
		int(idx%uint64(e)) >= e-l {
		d.blackedOut.Add(1)
		return
	}
	if d.rates.Loss > 0 && d.rng.Float64() < d.rates.Loss {
		d.dropped.Add(1)
		return
	}
	copies := 1
	if d.rates.Dup > 0 && d.rng.Float64() < d.rates.Dup {
		d.duplicated.Add(1)
		copies = 2
	}
	if d.rates.Reorder > 0 && d.rng.Float64() < d.rates.Reorder {
		d.reordered.Add(1)
		for i := 0; i < copies; i++ {
			d.held = append(d.held, heldPacket{data: data, addr: addr, after: d.span})
		}
		return
	}
	for i := 0; i < copies; i++ {
		d.pending = append(d.pending, heldPacket{data: data, addr: addr})
	}
}

// flushHeld discards everything still held (Close).
func (d *faultDir) flushHeld() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.droppedAtClose.Add(uint64(len(d.held) + len(d.pending)))
	d.held = nil
	d.pending = nil
}

func (d *faultDir) stats() PacketDirStats {
	// Classification counters are read before Seen (and Seen is
	// incremented first at admit), so a live snapshot can under-count the
	// outcomes of the newest packets but never invent copies; the law is
	// checked only on closed conns, where the queues are settled.
	d.mu.Lock()
	held := uint64(len(d.held) + len(d.pending))
	d.mu.Unlock()
	return PacketDirStats{
		Delivered:      d.delivered.Load(),
		Dropped:        d.dropped.Load(),
		Duplicated:     d.duplicated.Load(),
		Reordered:      d.reordered.Load(),
		BlackedOut:     d.blackedOut.Load(),
		DroppedAtClose: d.droppedAtClose.Load(),
		Held:           held,
		Seen:           d.seen.Load(),
	}
}

// FaultPacketConn wraps a net.PacketConn with the configured per-
// direction fault schedule. The lineserver firmware wraps its socket
// with one, which puts both directions of the protocol — requests
// arriving, replies leaving — through the fault layer with a single
// wrapper.
type FaultPacketConn struct {
	net.PacketConn
	in  *faultDir
	out *faultDir

	rmu  sync.Mutex // serializes ReadFrom (single consumer of pending)
	rbuf []byte

	closeOnce sync.Once
}

// NewFaultPacketConn wraps inner with deterministic packet faults.
func NewFaultPacketConn(inner net.PacketConn, cfg PacketFaultConfig) *FaultPacketConn {
	return &FaultPacketConn{
		PacketConn: inner,
		in:         newFaultDir(cfg.Ingress, cfg.Seed),
		out:        newFaultDir(cfg.Egress, cfg.Seed+1),
		rbuf:       make([]byte, 64<<10),
	}
}

// ReadFrom delivers the next surviving ingress datagram: pending packets
// (including released reorder holds and duplicate copies) first, then
// fresh reads from the inner conn pushed through the schedule. Deadlines
// set on the wrapper reach the inner conn unchanged, so a read with no
// surviving traffic still times out normally.
func (c *FaultPacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		c.in.mu.Lock()
		if len(c.in.pending) > 0 {
			p := c.in.pending[0]
			c.in.pending = c.in.pending[1:]
			c.in.delivered.Add(1)
			c.in.mu.Unlock()
			return copy(b, p.data), p.addr, nil
		}
		c.in.mu.Unlock()
		n, addr, err := c.PacketConn.ReadFrom(c.rbuf)
		if err != nil {
			return 0, addr, err
		}
		data := append([]byte(nil), c.rbuf[:n]...)
		c.in.mu.Lock()
		c.in.admit(data, addr)
		c.in.mu.Unlock()
	}
}

// WriteTo pushes a datagram through the egress schedule. Dropped packets
// still report success — that is UDP's contract — and deliverable
// packets (this one, duplicates, released holds) are written in order.
func (c *FaultPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.out.mu.Lock()
	data := append([]byte(nil), b...)
	c.out.admit(data, addr)
	flush := c.out.pending
	c.out.pending = nil
	c.out.mu.Unlock()
	for _, p := range flush {
		if _, err := c.PacketConn.WriteTo(p.data, p.addr); err != nil {
			return len(b), err
		}
		c.out.delivered.Add(1)
	}
	return len(b), nil
}

// Close discards held packets and closes the inner conn.
func (c *FaultPacketConn) Close() error {
	c.closeOnce.Do(func() {
		c.in.flushHeld()
		c.out.flushHeld()
	})
	return c.PacketConn.Close()
}

// Stats snapshots both directions' packet accounting.
func (c *FaultPacketConn) Stats() PacketFaultStats {
	return PacketFaultStats{Ingress: c.in.stats(), Egress: c.out.stats()}
}
