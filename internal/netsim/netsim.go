// Package netsim wraps network connections with injected propagation
// delay and jitter. The paper's evaluation spans six host/network
// configurations (local vs a 10 Mb/s Ethernet between MIPS and Alpha
// workstations); on a single modern host we reproduce the *shape* of that
// spread with a local transport, a TCP loopback transport, and TCP with
// simulated wide-area delays.
package netsim

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Conn adds one-way delay to each direction of an underlying connection:
// bytes written become visible to the peer delay/2 later, and bytes the
// peer sent are delivered delay/2 after arrival, so request/response
// round trips pay the full delay. Jitter adds a uniform random extra per
// transfer.
type Conn struct {
	inner  net.Conn
	oneWay time.Duration
	jitter time.Duration

	wmu    sync.Mutex
	wq     chan packet
	rq     chan packet
	rbuf   []byte
	closed chan struct{}
	once   sync.Once
	rerr   error
	rmu    sync.Mutex

	dmu          sync.Mutex
	readDeadline time.Time
}

type packet struct {
	data []byte
	due  time.Time
	err  error
}

// New wraps inner with a total round-trip delay and per-transfer jitter.
func New(inner net.Conn, rtt, jitter time.Duration) *Conn {
	c := &Conn{
		inner:  inner,
		oneWay: rtt / 2,
		jitter: jitter,
		wq:     make(chan packet, 1024),
		rq:     make(chan packet, 1024),
		closed: make(chan struct{}),
	}
	go c.writePump()
	go c.readPump()
	return c
}

// Dial opens a connection with injected delay.
func Dial(network, addr string, rtt, jitter time.Duration) (*Conn, error) {
	inner, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return New(inner, rtt, jitter), nil
}

func (c *Conn) delay() time.Duration {
	d := c.oneWay
	if c.jitter > 0 {
		d += time.Duration(rand.Int63n(int64(c.jitter)))
	}
	return d
}

func (c *Conn) writePump() {
	for {
		select {
		case p := <-c.wq:
			if wait := time.Until(p.due); wait > 0 {
				time.Sleep(wait)
			}
			if _, err := c.inner.Write(p.data); err != nil {
				return
			}
		case <-c.closed:
			return
		}
	}
}

func (c *Conn) readPump() {
	buf := make([]byte, 64<<10)
	for {
		n, err := c.inner.Read(buf)
		p := packet{due: time.Now().Add(c.delay()), err: err}
		if n > 0 {
			p.data = append([]byte(nil), buf[:n]...)
		}
		select {
		case c.rq <- p:
		case <-c.closed:
			return
		}
		if err != nil {
			return
		}
	}
}

// Write implements net.Conn: data is queued for delayed delivery.
func (c *Conn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	p := packet{data: append([]byte(nil), b...), due: time.Now().Add(c.delay())}
	select {
	case c.wq <- p:
		return len(b), nil
	case <-c.closed:
		return 0, net.ErrClosed
	}
}

// Read implements net.Conn: delivers delayed incoming data in order. A
// read deadline set with SetReadDeadline is honored (with the injected
// delay counted, unlike on the inner connection).
func (c *Conn) Read(b []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		if c.rerr != nil {
			return 0, c.rerr
		}
		var timeout <-chan time.Time
		c.dmu.Lock()
		dl := c.readDeadline
		c.dmu.Unlock()
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			tm := time.NewTimer(d)
			defer tm.Stop()
			timeout = tm.C
		}
		select {
		case p := <-c.rq:
			if wait := time.Until(p.due); wait > 0 {
				time.Sleep(wait)
			}
			c.rbuf = append(c.rbuf, p.data...)
			if p.err != nil {
				c.rerr = p.err
			}
		case <-timeout:
			return 0, os.ErrDeadlineExceeded
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	n := copy(b, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close tears the connection down.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t) //nolint:errcheck
	return c.inner.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dmu.Lock()
	c.readDeadline = t
	c.dmu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
