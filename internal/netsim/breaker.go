package netsim

import (
	"net"
	"sync"
)

// Breaker wraps a net.Listener so a test can kill the process behind it
// without owning a process: Kill severs every connection accepted so
// far and makes the listener refuse (accept-then-close) new ones, which
// is what a crashed-but-port-still-bound or freshly dead backend looks
// like to a dialer; Revive restores normal service. The listener itself
// stays open throughout, so the address remains stable across the
// outage — exactly the failover scenario a router health-checks for.
type Breaker struct {
	inner net.Listener

	mu     sync.Mutex
	dead   bool
	conns  map[net.Conn]struct{}
	kills  int
	closed bool
}

// NewBreaker wraps l.
func NewBreaker(l net.Listener) *Breaker {
	return &Breaker{inner: l, conns: make(map[net.Conn]struct{})}
}

// Accept implements net.Listener. While killed, accepted connections are
// closed immediately (the dial "succeeds", then dies — a half-crashed
// box), so the accept loop never blocks a test.
func (b *Breaker) Accept() (net.Conn, error) {
	for {
		c, err := b.inner.Accept()
		if err != nil {
			return nil, err
		}
		b.mu.Lock()
		if b.dead {
			b.mu.Unlock()
			c.Close()
			continue
		}
		bc := &breakerConn{Conn: c, b: b}
		b.conns[bc] = struct{}{}
		b.mu.Unlock()
		return bc, nil
	}
}

// Close implements net.Listener.
func (b *Breaker) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return b.inner.Close()
}

// Addr implements net.Listener.
func (b *Breaker) Addr() net.Addr { return b.inner.Addr() }

// Kill severs every live connection and refuses new ones until Revive.
// Idempotent; returns the number of connections severed.
func (b *Breaker) Kill() int {
	b.mu.Lock()
	b.dead = true
	b.kills++
	sever := make([]net.Conn, 0, len(b.conns))
	for c := range b.conns {
		sever = append(sever, c)
	}
	clear(b.conns)
	b.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
	return len(sever)
}

// Revive restores normal accepts.
func (b *Breaker) Revive() {
	b.mu.Lock()
	b.dead = false
	b.mu.Unlock()
}

// Killed reports whether the breaker is currently refusing service.
func (b *Breaker) Killed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

// Kills returns how many times Kill has fired.
func (b *Breaker) Kills() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kills
}

// Live returns the number of currently tracked connections.
func (b *Breaker) Live() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.conns)
}

// breakerConn untracks itself on close so Live stays accurate.
type breakerConn struct {
	net.Conn
	b    *Breaker
	once sync.Once
}

func (c *breakerConn) Close() error {
	c.once.Do(func() {
		c.b.mu.Lock()
		delete(c.b.conns, c)
		c.b.mu.Unlock()
	})
	return c.Conn.Close()
}
