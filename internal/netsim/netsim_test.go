package netsim

import (
	"bytes"
	"net"
	"os"
	"testing"
	"time"
)

// echoPair returns a delayed connection to an echo server.
func echoPair(t *testing.T, rtt, jitter time.Duration) net.Conn {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:n]) //nolint:errcheck
				}
			}(c)
		}
	}()
	c, err := Dial("tcp", l.Addr().String(), rtt, jitter)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDataIntegrity(t *testing.T) {
	c := echoPair(t, 2*time.Millisecond, 0)
	msg := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := readFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q", got)
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestOrderingPreserved(t *testing.T) {
	c := echoPair(t, time.Millisecond, time.Millisecond)
	var sent []byte
	for i := 0; i < 50; i++ {
		b := []byte{byte(i), byte(i + 1), byte(i + 2)}
		sent = append(sent, b...)
		if _, err := c.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(sent))
	if _, err := readFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sent) {
		t.Error("jittered stream reordered or corrupted")
	}
}

func TestRTTInjected(t *testing.T) {
	const rtt = 20 * time.Millisecond
	c := echoPair(t, rtt, 0)
	msg := []byte("ping")
	buf := make([]byte, 4)
	// Warm up.
	c.Write(msg)     //nolint:errcheck
	readFull(c, buf) //nolint:errcheck
	start := time.Now()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		c.Write(msg) //nolint:errcheck
		if _, err := readFull(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / rounds
	if per < rtt {
		t.Errorf("round trip %v < injected RTT %v", per, rtt)
	}
	if per > 5*rtt {
		t.Errorf("round trip %v implausibly large vs %v", per, rtt)
	}
}

func TestReadDeadline(t *testing.T) {
	c := echoPair(t, time.Millisecond, 0)
	c.SetReadDeadline(time.Now().Add(10 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 8)
	_, err := c.Read(buf)
	if err != os.ErrDeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	// Clearing the deadline restores blocking reads.
	c.SetReadDeadline(time.Time{}) //nolint:errcheck
	c.Write([]byte("x"))           //nolint:errcheck
	if _, err := c.Read(buf); err != nil {
		t.Errorf("read after clearing deadline: %v", err)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	c := echoPair(t, time.Millisecond, 0)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("read returned nil after close")
		}
	case <-time.After(time.Second):
		t.Error("read did not unblock on close")
	}
}
