package lineserver

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/core"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{Seq: 42, Time: 123456, Fn: FnRecord, Param: 800, Data: []byte{1, 2, 3}}
	got, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || got.Time != 123456 || got.Fn != FnRecord || got.Param != 800 ||
		!bytes.Equal(got.Data, p.Data) {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := Parse([]byte{1, 2}); err == nil {
		t.Error("short packet parsed")
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(seq, tm, param uint32, fn uint8, data []byte) bool {
		p := &Packet{Seq: seq, Time: tm, Fn: fn, Param: param, Data: data}
		got, err := Parse(p.Marshal())
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return got.Seq == seq && got.Time == tm && got.Fn == fn && got.Param == param
		}
		return got.Seq == seq && got.Time == tm && got.Fn == fn && got.Param == param &&
			bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bootBox starts a manual-clock LineServer with a loopback cable and a
// backend connected to it.
func bootBox(t *testing.T) (*Firmware, *Backend, *vdev.ManualClock) {
	t.Helper()
	clk := vdev.NewManualClock(8000)
	lb := vdev.NewLoopback(8192, 1, 0, 0xFF)
	fw, err := NewFirmware(FirmwareConfig{Clock: clk, Sink: lb, Source: lb})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fw.Close)
	b, err := Dial(fw.Addr(), 8000, WithoutExtrapolation(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return fw, b, clk
}

func TestLoopbackPacket(t *testing.T) {
	_, b, _ := bootBox(t)
	payload := []byte("hello lineserver")
	got, ok := b.Loopback(payload)
	if !ok || !bytes.Equal(got, payload) {
		t.Errorf("loopback = %q, %v", got, ok)
	}
}

func TestRegisters(t *testing.T) {
	_, b, _ := bootBox(t)
	if !b.WriteReg(RegOutputGain, 0xABCD) {
		t.Fatal("WriteReg failed")
	}
	v, ok := b.ReadReg(RegOutputGain)
	if !ok || v != 0xABCD {
		t.Errorf("ReadReg = %#x, %v", v, ok)
	}
	if !b.Reset() {
		t.Fatal("Reset failed")
	}
	v, ok = b.ReadReg(RegOutputGain)
	if !ok || v != 0 {
		t.Errorf("register survived reset: %#x", v)
	}
}

func TestTimeTracksDevice(t *testing.T) {
	_, b, clk := bootBox(t)
	clk.Advance(4000)
	if got := b.Time(); got != 4000 {
		t.Errorf("Time = %d, want 4000", got)
	}
}

func TestPlayRecordOverUDP(t *testing.T) {
	_, b, clk := bootBox(t)
	data := make([]byte, 64)
	for i := range data {
		data[i] = sampleconv.EncodeMuLaw(int16(i * 100))
	}
	if n := b.WritePlay(0, data); n != 64 {
		t.Fatalf("WritePlay = %d", n)
	}
	clk.Advance(64)
	b.Time() // sync the box
	buf := make([]byte, 64)
	b.ReadRecord(0, buf)
	if !bytes.Equal(buf, data) {
		t.Errorf("UDP loopback mismatch:\n got %v\nwant %v", buf[:8], data[:8])
	}
}

func TestAudioFileServerOverLineServer(t *testing.T) {
	// The full Als design: an AudioFile core device whose backend is the
	// LineServer across (local) UDP.
	_, b, clk := bootBox(t)
	dev := core.NewDevice(core.Config{
		Name: "als0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
	}, b)
	dev.RecRefCount = 1

	data := make([]byte, 400)
	for i := range data {
		data[i] = sampleconv.EncodeMuLaw(int16(2000 + i*10))
	}
	res := dev.Play(100, data, sampleconv.MU255, 0, false)
	if res.Consumed != 400 || res.Blocked {
		t.Fatalf("Play = %+v", res)
	}
	for i := 0; i < 4; i++ {
		clk.Advance(200)
		dev.Update()
	}
	buf := make([]byte, 400)
	rr := dev.Record(100, buf, sampleconv.MU255, 0)
	if rr.Avail != 400 {
		t.Fatalf("Record avail = %d", rr.Avail)
	}
	if !bytes.Equal(buf, data) {
		t.Error("audio corrupted crossing the LineServer")
	}
}

func TestBufferHitsAvoidDataTraffic(t *testing.T) {
	// "Client play and record requests that can be completely satisfied in
	// the server's buffers are completed without touching the LineServer
	// at all. Only requests that cover the update regions need to go
	// through." In no-extrapolation mode each request still refreshes the
	// time estimate with one loopback ping, so buffered requests cost at
	// most one packet each, while update-region traffic moves data packets.
	fw, b, clk := bootBox(t)
	dev := core.NewDevice(core.Config{
		Name: "als0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
	}, b)
	dev.RecRefCount = 1
	clk.Advance(8000)
	dev.Update()
	before := fw.Packets()
	// A record entirely inside the already-updated server buffer.
	buf := make([]byte, 100)
	dev.Record(7000, buf, sampleconv.MU255, 0)
	// A play far beyond the hardware window (buffered only).
	dev.Play(atime.Add(dev.Now(), 10000), make([]byte, 100), sampleconv.MU255, 0, false)
	cheap := fw.Packets() - before
	if cheap > 2 {
		t.Errorf("buffer-hit requests generated %d packets, want <= 2 time pings", cheap)
	}
	// By contrast, an update pass after time advances must move data.
	before = fw.Packets()
	clk.Advance(2000)
	dev.Update()
	if moved := fw.Packets() - before; moved < 2 {
		t.Errorf("update-region pass generated only %d packets", moved)
	}
}

func TestBackendSurvivesDeadBox(t *testing.T) {
	fw, b, clk := bootBox(t)
	clk.Advance(100)
	b.Time()
	fw.Close()
	// With the box gone, reads deliver silence and writes don't wedge.
	buf := make([]byte, 32)
	if n := b.ReadRecord(0, buf); n != 32 {
		t.Errorf("ReadRecord = %d", n)
	}
	for _, v := range buf {
		if v != 0xFF {
			t.Fatal("dead box returned non-silence")
		}
	}
	b.WritePlay(0, make([]byte, 32))
	if _, ok := b.ReadReg(RegInputGain); ok {
		t.Error("register read succeeded against dead box")
	}
}

// TestBackendDeadClosedTransport: once the backend's socket is closed,
// round trips must fail fast — SetReadDeadline errors are detected
// before the send, so the read can never block without a deadline —
// and the first failure is recorded on Err.
func TestBackendDeadClosedTransport(t *testing.T) {
	fw, b, _ := bootBox(t)
	fw.Close()
	b.Close()

	if err := b.Err(); err != nil {
		t.Fatalf("healthy session already recorded a transport error: %v", err)
	}
	start := time.Now()
	b.Time() // must not hang on a deadline-less read
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("Time on a closed backend took %v", el)
	}
	if b.Err() == nil {
		t.Error("closed transport did not record an error")
	}
	if _, ok := b.Loopback([]byte{1, 2, 3}); ok {
		t.Error("loopback succeeded on a closed transport")
	}
}
