package lineserver

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz targets for the LineServer wire format, alongside the
// proto package's targets for the TCP protocol. `go test` runs the seed
// corpus; `go test -fuzz=FuzzPacket` explores further.

// FuzzPacket drives Parse with arbitrary datagrams. Invariants: never
// panic; every datagram of at least HeaderBytes parses; everything
// shorter errors; re-marshaling reproduces every field (only the three
// header padding bytes after Fn may change — Marshal canonicalizes them
// to zero), and the canonical form is a fixed point of Parse∘Marshal.
func FuzzPacket(f *testing.F) {
	// Seeds: one well-formed instance of each function code, a truncated
	// header, an empty datagram, an oversized body (beyond MaxDataBytes —
	// the parser must take it; bounds are the transport's business), and
	// a header full of sign-bit traps.
	for _, fn := range []uint8{FnPlay, FnRecord, FnReadReg, FnWriteReg, FnLoopback, FnReset} {
		p := &Packet{Seq: 42, Time: 0xFFFF0000, Fn: fn, Param: 7, Data: []byte{1, 2, 3}}
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, HeaderBytes-1))
	f.Add((&Packet{Fn: FnPlay, Data: make([]byte, MaxDataBytes+100)}).Marshal())
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderBytes))
	f.Add(bytes.Repeat([]byte{0x80}, HeaderBytes+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			if len(data) >= HeaderBytes {
				t.Fatalf("%d-byte datagram rejected: %v", len(data), err)
			}
			return
		}
		if len(data) < HeaderBytes {
			t.Fatalf("short datagram (%d bytes) parsed", len(data))
		}
		canon := p.Marshal()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if q.Seq != p.Seq || q.Time != p.Time || q.Fn != p.Fn || q.Param != p.Param ||
			!bytes.Equal(q.Data, p.Data) {
			t.Fatalf("round trip lost fields: %+v != %+v", q, p)
		}
		if again := q.Marshal(); !bytes.Equal(again, canon) {
			t.Fatalf("canonical form not a fixed point:\n in  %x\n out %x", canon, again)
		}
	})
}

// FuzzPacketFields round-trips structured packets through Marshal/Parse
// and pins the wire byte order: the header is big-endian (the 68302's
// native order) no matter the host's, so a little-endian workstation and
// the box agree. The explicit byte checks would catch an accidental
// switch to host order — reading the fields back through the same
// (wrong) codec would not.
func FuzzPacketFields(f *testing.F) {
	f.Add(uint32(1), uint32(2), uint8(FnPlay), uint32(4), []byte("samples"))
	f.Add(uint32(0), uint32(0), uint8(0), uint32(0), []byte{})
	f.Add(^uint32(0), ^uint32(0), uint8(255), ^uint32(0), []byte{0xFF})
	f.Add(uint32(0x80000000), uint32(0x7FFFFFFF), uint8(FnRecord), uint32(0x01020304), []byte{0})

	f.Fuzz(func(t *testing.T, seq, tm uint32, fn uint8, param uint32, data []byte) {
		p := &Packet{Seq: seq, Time: tm, Fn: fn, Param: param, Data: data}
		wire := p.Marshal()
		if len(wire) != HeaderBytes+len(data) {
			t.Fatalf("marshal length %d, want %d", len(wire), HeaderBytes+len(data))
		}
		if binary.BigEndian.Uint32(wire[0:]) != seq ||
			binary.BigEndian.Uint32(wire[4:]) != tm ||
			wire[8] != fn ||
			binary.BigEndian.Uint32(wire[12:]) != param {
			t.Fatalf("header not big-endian on the wire: % x", wire[:HeaderBytes])
		}
		got, err := Parse(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != seq || got.Time != tm || got.Fn != fn || got.Param != param ||
			!bytes.Equal(got.Data, data) {
			t.Fatalf("round trip: %+v != {%d %d %d %d %x}", got, seq, tm, fn, param, data)
		}
	})
}
