package lineserver

import (
	"log"
	"net"
	"sync"
	"time"

	"audiofile/internal/atime"
)

// Backend is the workstation side of the Als server (§7.4.3): a
// core.Backend that drives a LineServer over its private UDP protocol.
// Client requests satisfied by the AudioFile server's own buffers never
// touch the network; only update-region traffic does. Play and record
// packets are never retried ("by then, it is probably too late anyway");
// register accesses are.
type Backend struct {
	mu sync.Mutex

	conn *net.UDPConn
	rate int
	seq  uint32

	timeout time.Duration
	err     error // first transport setup failure (see noteErr)

	// Device time estimation: "the server generates an estimate of the
	// LineServer time from the time stamp of the last LineServer packet
	// and the local server time."
	lastTime    atime.ATime
	lastWhen    time.Time
	extrapolate bool // off for manual-clock tests

	recv []byte
}

// BackendOption configures a Backend.
type BackendOption func(*Backend)

// WithTimeout sets the per-packet reply timeout.
func WithTimeout(d time.Duration) BackendOption {
	return func(b *Backend) { b.timeout = d }
}

// WithoutExtrapolation disables wall-clock time extrapolation; every Time
// call pings the box. Manual-clock tests use this for determinism.
func WithoutExtrapolation() BackendOption {
	return func(b *Backend) { b.extrapolate = false }
}

// Dial connects to a LineServer at a UDP address.
func Dial(addr string, rate int, opts ...BackendOption) (*Backend, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		conn:        conn,
		rate:        rate,
		timeout:     100 * time.Millisecond,
		extrapolate: true,
		recv:        make([]byte, HeaderBytes+MaxDataBytes+64),
	}
	for _, o := range opts {
		o(b)
	}
	// Initial time sync.
	if rep := b.roundTrip(&Packet{Fn: FnLoopback}, 3); rep != nil {
		b.lastTime = atime.ATime(rep.Time)
		b.lastWhen = time.Now()
	}
	return b, nil
}

// Close releases the socket.
func (b *Backend) Close() { b.conn.Close() }

// roundTrip sends a request and waits for its reply, trying up to tries
// times. It returns nil when every attempt timed out. Must be called with
// b.mu held (or before concurrent use).
func (b *Backend) roundTrip(req *Packet, tries int) *Packet {
	for attempt := 0; attempt < tries; attempt++ {
		b.seq++
		req.Seq = b.seq
		// Arm the reply deadline before sending: with no deadline a lost
		// reply would block the read below forever, and arming after the
		// Write leaves a window where the reply can race the deadline.
		if err := b.conn.SetReadDeadline(time.Now().Add(b.timeout)); err != nil {
			b.noteErr(err)
			return nil
		}
		if _, err := b.conn.Write(req.Marshal()); err != nil {
			b.noteErr(err)
			return nil
		}
		for {
			n, err := b.conn.Read(b.recv)
			if err != nil {
				break // timeout: retry or give up
			}
			rep, err := Parse(b.recv[:n])
			if err != nil || rep.Seq != req.Seq {
				continue // stale reply from an earlier attempt
			}
			b.lastTime = atime.ATime(rep.Time)
			b.lastWhen = time.Now()
			return rep
		}
	}
	return nil
}

// noteErr records the first transport failure and logs it once. The
// backend then degrades to its packet-loss behavior (silence, stale
// time estimates) instead of hanging or log-spamming: the box being
// unreachable is normal operation for a UDP peripheral, but a socket
// that cannot even arm a deadline is worth one line.
func (b *Backend) noteErr(err error) {
	if b.err == nil {
		b.err = err
		log.Printf("lineserver: transport error (degrading to loss behavior): %v", err)
	}
}

// Err reports the first transport failure seen by roundTrip, if any.
func (b *Backend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Time implements core.Backend: the estimated LineServer device time.
func (b *Backend) Time() atime.ATime {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.extrapolate {
		age := time.Since(b.lastWhen)
		if age < 250*time.Millisecond {
			return atime.Add(b.lastTime, int(age.Seconds()*float64(b.rate)))
		}
	}
	// Stale (or extrapolation disabled): ping the box.
	if rep := b.roundTrip(&Packet{Fn: FnLoopback}, 2); rep != nil {
		return b.lastTime
	}
	// Unreachable: fall back to the stale estimate.
	if b.extrapolate {
		return atime.Add(b.lastTime, int(time.Since(b.lastWhen).Seconds()*float64(b.rate)))
	}
	return b.lastTime
}

// WritePlay implements core.Backend: push samples into the box's play
// buffer, one MTU-sized packet at a time, no retries.
func (b *Backend) WritePlay(t atime.ATime, data []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	written := 0
	for len(data) > 0 {
		n := len(data)
		if n > MaxDataBytes {
			n = MaxDataBytes
		}
		// One try only: the reply carries just the time, and a lost play
		// packet is not worth retrying.
		b.roundTrip(&Packet{Fn: FnPlay, Time: uint32(t), Data: data[:n]}, 1)
		written += n
		t = atime.Add(t, n)
		data = data[n:]
	}
	return written
}

// ReadRecord implements core.Backend: pull captured samples from the box.
func (b *Backend) ReadRecord(t atime.ATime, buf []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	got := 0
	for got < len(buf) {
		n := len(buf) - got
		if n > MaxDataBytes {
			n = MaxDataBytes
		}
		rep := b.roundTrip(&Packet{Fn: FnRecord, Time: uint32(t), Param: uint32(n)}, 1)
		if rep == nil {
			// Lost: deliver silence for this stretch, no retry.
			for i := 0; i < n; i++ {
				buf[got+i] = 0xFF
			}
		} else {
			copy(buf[got:got+n], rep.Data)
		}
		got += n
		t = atime.Add(t, n)
	}
	return got
}

// HWFrames implements core.Backend.
func (b *Backend) HWFrames() int { return FirmwareFrames }

// ReadReg reads a CODEC register, with retries.
func (b *Backend) ReadReg(reg uint32) (uint32, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep := b.roundTrip(&Packet{Fn: FnReadReg, Param: reg}, 3)
	if rep == nil || len(rep.Data) < 4 {
		return 0, false
	}
	return uint32(rep.Data[0])<<24 | uint32(rep.Data[1])<<16 |
		uint32(rep.Data[2])<<8 | uint32(rep.Data[3]), true
}

// WriteReg writes a CODEC register, with retries.
func (b *Backend) WriteReg(reg, val uint32) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	data := []byte{byte(val >> 24), byte(val >> 16), byte(val >> 8), byte(val)}
	return b.roundTrip(&Packet{Fn: FnWriteReg, Param: reg, Data: data}, 3) != nil
}

// Reset resets the box.
func (b *Backend) Reset() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.roundTrip(&Packet{Fn: FnReset}, 3) != nil
}

// Loopback round-trips a payload (for testing and time sync).
func (b *Backend) Loopback(data []byte) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep := b.roundTrip(&Packet{Fn: FnLoopback, Data: data}, 3)
	if rep == nil {
		return nil, false
	}
	return rep.Data, true
}
