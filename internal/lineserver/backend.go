package lineserver

import (
	"log"
	"net"
	"sync"
	"time"

	"audiofile/internal/atime"
)

// Backend is the workstation side of the Als server (§7.4.3): a
// core.Backend that drives a LineServer over its private UDP protocol.
// Client requests satisfied by the AudioFile server's own buffers never
// touch the network; only update-region traffic does. Play and record
// packets are never retried ("by then, it is probably too late anyway");
// register accesses are.
//
// The transport is hardened against the faults that define UDP: every
// reply is sequence-validated (stale replies to timed-out requests and
// duplicated datagrams are counted and discarded, never adopted), the
// device-time estimate is monotonic under jittered replies, and a
// detect/decide/act health loop (health.go) resynchronizes automatically
// when the box disappears and comes back.
type Backend struct {
	mu sync.Mutex

	conn net.Conn // connected UDP socket
	rate int
	seq  uint32

	timeout time.Duration
	err     error // first transport setup failure (see noteErr)

	// Device time estimation: "the server generates an estimate of the
	// LineServer time from the time stamp of the last LineServer packet
	// and the local server time."
	lastTime    atime.ATime
	lastWhen    time.Time
	extrapolate bool // off for manual-clock tests

	// Monotonicity clamp for Time: jittered and reordered replies must
	// never make the estimate run backwards. A detected clock slip or a
	// completed resync clears monotonicValid, letting the estimate step
	// to the box's new time base (e.g. after a reboot).
	lastReturned   atime.ATime
	monotonicValid bool

	// Reply validation: seenReplies is a ring of recently received reply
	// sequence numbers, so a duplicated datagram — of the live reply or
	// of a stale one — is classified as a duplicate rather than adopted
	// or double-counted as stale.
	seenReplies [16]uint32
	seenCount   int

	recv []byte

	// Self-healing (health.go).
	health         backendHealth
	failThreshold  int
	resyncMaxTries int
	resyncBackoff  time.Duration
	slipThreshold  int

	healCh    chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// BackendOption configures a Backend.
type BackendOption func(*Backend)

// WithTimeout sets the per-packet reply timeout.
func WithTimeout(d time.Duration) BackendOption {
	return func(b *Backend) { b.timeout = d }
}

// WithoutExtrapolation disables wall-clock time extrapolation; every Time
// call pings the box. Manual-clock tests use this for determinism.
func WithoutExtrapolation() BackendOption {
	return func(b *Backend) { b.extrapolate = false }
}

// WithHealthTuning overrides the self-healing knobs: failThreshold
// consecutive round-trip failures escalate to a resync of up to
// attempts tries with backoff between them (doubling, capped). Zero
// values keep the defaults; chaos tests use tiny ones.
func WithHealthTuning(failThreshold, attempts int, backoff time.Duration) BackendOption {
	return func(b *Backend) {
		if failThreshold > 0 {
			b.failThreshold = failThreshold
		}
		if attempts > 0 {
			b.resyncMaxTries = attempts
		}
		if backoff > 0 {
			b.resyncBackoff = backoff
		}
	}
}

// WithSlipThreshold sets the clock-slip detection threshold in frames:
// an accepted reply whose timestamp deviates from the extrapolated
// estimate by more than this counts as a slip (§8.3 generalized).
// Ignored without extrapolation. 0 keeps the default of half a second.
func WithSlipThreshold(frames int) BackendOption {
	return func(b *Backend) {
		if frames > 0 {
			b.slipThreshold = frames
		}
	}
}

// Dial connects to a LineServer at a UDP address.
func Dial(addr string, rate int, opts ...BackendOption) (*Backend, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		conn:           conn,
		rate:           rate,
		timeout:        100 * time.Millisecond,
		extrapolate:    true,
		recv:           make([]byte, HeaderBytes+MaxDataBytes+64),
		failThreshold:  defaultFailThreshold,
		resyncMaxTries: defaultResyncAttempts,
		resyncBackoff:  defaultResyncBackoff,
		healCh:         make(chan struct{}, 1),
		done:           make(chan struct{}),
	}
	for _, o := range opts {
		o(b)
	}
	if b.slipThreshold == 0 {
		b.slipThreshold = rate / 2
	}
	// Initial time sync.
	if rep := b.roundTrip(&Packet{Fn: FnLoopback}, 3); rep != nil {
		b.lastTime = atime.ATime(rep.Time)
		b.lastWhen = time.Now()
	}
	b.wg.Add(1)
	go b.healer()
	return b, nil
}

// Close releases the socket and joins the healer. Safe to call more
// than once; operations after Close fail fast on the closed socket.
func (b *Backend) Close() {
	b.closeOnce.Do(func() {
		close(b.done)
		b.conn.Close()
	})
	b.wg.Wait()
}

// rememberReply records a reply sequence number in the seen ring.
// Must be called with b.mu held.
func (b *Backend) rememberReply(seq uint32) {
	b.seenReplies[b.seenCount%len(b.seenReplies)] = seq
	b.seenCount++
}

// replySeen reports whether seq was received recently. Must be called
// with b.mu held.
func (b *Backend) replySeen(seq uint32) bool {
	n := b.seenCount
	if n > len(b.seenReplies) {
		n = len(b.seenReplies)
	}
	for i := 0; i < n; i++ {
		if b.seenReplies[i] == seq {
			return true
		}
	}
	return false
}

// adoptTime accepts a reply's timestamp as the new estimation base,
// first checking it against the extrapolated estimate for a clock slip
// (detect); a slip releases the monotonicity clamp so Time may step to
// the box's new base (act). Must be called with b.mu held.
func (b *Backend) adoptTime(rep *Packet) {
	now := time.Now()
	if b.extrapolate && !b.lastWhen.IsZero() {
		expected := atime.Add(b.lastTime, int(now.Sub(b.lastWhen).Seconds()*float64(b.rate)))
		if d := atime.Sub(atime.ATime(rep.Time), expected); d > int32(b.slipThreshold) || d < -int32(b.slipThreshold) {
			b.health.slips.Add(1)
			b.monotonicValid = false
		}
	}
	b.lastTime = atime.ATime(rep.Time)
	b.lastWhen = now
}

// roundTrip sends a request and waits for its reply, trying up to tries
// times. It returns nil when every attempt timed out. Every parseable
// reply datagram is classified exactly once — accepted, stale, or
// duplicate — so the books satisfy Replies == Accepted + Stale +
// Duplicate; only an accepted reply (live sequence number and matching
// function code) may update the time estimate. Must be called with
// b.mu held (or before concurrent use).
func (b *Backend) roundTrip(req *Packet, tries int) *Packet {
	h := &b.health
	for attempt := 0; attempt < tries; attempt++ {
		b.seq++
		req.Seq = b.seq
		// Arm the reply deadline before sending: with no deadline a lost
		// reply would block the read below forever, and arming after the
		// Write leaves a window where the reply can race the deadline.
		if err := b.conn.SetReadDeadline(time.Now().Add(b.timeout)); err != nil {
			b.noteErr(err)
			b.noteFailure()
			return nil
		}
		if _, err := b.conn.Write(req.Marshal()); err != nil {
			b.noteErr(err)
			b.noteFailure()
			return nil
		}
		h.requests.Add(1)
		for {
			n, err := b.conn.Read(b.recv)
			if err != nil {
				break // timeout: retry or give up
			}
			rep, err := Parse(b.recv[:n])
			if err != nil {
				h.garbage.Add(1)
				continue
			}
			// The aggregate increments before the classification so the
			// one-sided law Replies >= Accepted+Stale+Duplicate holds in
			// every live snapshot (Stats reads the classes first).
			h.replies.Add(1)
			switch {
			case rep.Seq == req.Seq && rep.Fn == req.Fn:
				h.accepted.Add(1)
				b.rememberReply(rep.Seq)
				b.adoptTime(rep)
				b.noteSuccess()
				return rep
			case b.replySeen(rep.Seq):
				// A duplicated datagram: a copy of a reply we already
				// classified (accepted or stale). Never adopted.
				h.duplicate.Add(1)
			default:
				// A straggler answering an earlier, timed-out request (or
				// a live-sequence reply with the wrong function code).
				// Its payload may be valid for that old request, but its
				// timestamp is old news: discarded, never adopted.
				h.stale.Add(1)
				b.rememberReply(rep.Seq)
			}
		}
	}
	b.noteFailure()
	return nil
}

// noteErr records the first transport failure and logs it once. The
// backend then degrades to its packet-loss behavior (silence, stale
// time estimates) instead of hanging or log-spamming: the box being
// unreachable is normal operation for a UDP peripheral, but a socket
// that cannot even arm a deadline is worth one line.
func (b *Backend) noteErr(err error) {
	if b.err == nil {
		b.err = err
		log.Printf("lineserver: transport error (degrading to loss behavior): %v", err)
	}
}

// Err reports the first transport failure seen by roundTrip, if any.
func (b *Backend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Time implements core.Backend: the estimated LineServer device time.
// The estimate is monotonic: stragglers, duplicated replies, and
// jittered extrapolation can never make it run backwards. Only a
// detected clock slip or a completed resync (the box legitimately has a
// new time base) lets it step.
func (b *Backend) Time() atime.ATime {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.timeEstimateLocked()
	if b.monotonicValid && atime.Before(t, b.lastReturned) {
		return b.lastReturned
	}
	b.lastReturned = t
	b.monotonicValid = true
	return t
}

// timeEstimateLocked is the raw estimate: extrapolate from the last
// accepted reply when fresh, otherwise ping the box, otherwise fall
// back to the stale base.
func (b *Backend) timeEstimateLocked() atime.ATime {
	if b.extrapolate {
		age := time.Since(b.lastWhen)
		if age < 250*time.Millisecond {
			return atime.Add(b.lastTime, int(age.Seconds()*float64(b.rate)))
		}
	}
	// Stale (or extrapolation disabled): ping the box.
	if rep := b.roundTrip(&Packet{Fn: FnLoopback}, 2); rep != nil {
		return b.lastTime
	}
	// Unreachable: fall back to the stale estimate.
	if b.extrapolate {
		return atime.Add(b.lastTime, int(time.Since(b.lastWhen).Seconds()*float64(b.rate)))
	}
	return b.lastTime
}

// WritePlay implements core.Backend: push samples into the box's play
// buffer, one MTU-sized packet at a time, no retries.
func (b *Backend) WritePlay(t atime.ATime, data []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	written := 0
	for len(data) > 0 {
		n := len(data)
		if n > MaxDataBytes {
			n = MaxDataBytes
		}
		// One try only: the reply carries just the time, and a lost play
		// packet is not worth retrying.
		if b.roundTrip(&Packet{Fn: FnPlay, Time: uint32(t), Data: data[:n]}, 1) == nil {
			// Unacknowledged: the packet (or its ack) is gone. The box may
			// still have it, but for gap accounting we assume the worst.
			b.health.playLostBytes.Add(uint64(n))
		}
		written += n
		t = atime.Add(t, n)
		data = data[n:]
	}
	return written
}

// ReadRecord implements core.Backend: pull captured samples from the box.
func (b *Backend) ReadRecord(t atime.ATime, buf []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	got := 0
	for got < len(buf) {
		n := len(buf) - got
		if n > MaxDataBytes {
			n = MaxDataBytes
		}
		rep := b.roundTrip(&Packet{Fn: FnRecord, Time: uint32(t), Param: uint32(n)}, 1)
		if rep == nil {
			// Lost: deliver silence for this stretch, no retry.
			for i := 0; i < n; i++ {
				buf[got+i] = 0xFF
			}
			b.health.recSilenceBytes.Add(uint64(n))
		} else {
			c := copy(buf[got:got+n], rep.Data)
			// A short reply (truncated in transit) silence-fills its tail
			// rather than leaking whatever the caller's buffer held.
			for i := c; i < n; i++ {
				buf[got+i] = 0xFF
			}
			if c < n {
				b.health.recSilenceBytes.Add(uint64(n - c))
			}
		}
		got += n
		t = atime.Add(t, n)
	}
	return got
}

// HWFrames implements core.Backend.
func (b *Backend) HWFrames() int { return FirmwareFrames }

// ReadReg reads a CODEC register, with retries.
func (b *Backend) ReadReg(reg uint32) (uint32, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep := b.roundTrip(&Packet{Fn: FnReadReg, Param: reg}, 3)
	if rep == nil || len(rep.Data) < 4 {
		return 0, false
	}
	return uint32(rep.Data[0])<<24 | uint32(rep.Data[1])<<16 |
		uint32(rep.Data[2])<<8 | uint32(rep.Data[3]), true
}

// WriteReg writes a CODEC register, with retries.
func (b *Backend) WriteReg(reg, val uint32) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	data := []byte{byte(val >> 24), byte(val >> 16), byte(val >> 8), byte(val)}
	return b.roundTrip(&Packet{Fn: FnWriteReg, Param: reg, Data: data}, 3) != nil
}

// Reset resets the box.
func (b *Backend) Reset() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.roundTrip(&Packet{Fn: FnReset}, 3) != nil
}

// Loopback round-trips a payload (for testing and time sync).
func (b *Backend) Loopback(data []byte) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep := b.roundTrip(&Packet{Fn: FnLoopback, Data: data}, 3)
	if rep == nil {
		return nil, false
	}
	return rep.Data, true
}
