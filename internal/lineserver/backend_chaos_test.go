package lineserver

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedBox is a raw UDP responder the test drives packet by packet:
// for every request the script decides exactly which datagrams go back —
// none (a dead box), the real reply, stale replies to other sequence
// numbers, duplicates, or garbage. It bypasses Firmware so tests can
// forge the precise wire conditions the backend must survive.
type scriptedBox struct {
	pc net.PacketConn
}

func startScriptedBox(t *testing.T, handle func(req *Packet) []*Packet) *scriptedBox {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	box := &scriptedBox{pc: pc}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, HeaderBytes+MaxDataBytes+64)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			req, err := Parse(buf[:n])
			if err != nil {
				continue
			}
			for _, rep := range handle(req) {
				pc.WriteTo(rep.Marshal(), from) //nolint:errcheck
			}
		}
	}()
	return box
}

func (b *scriptedBox) addr() string { return b.pc.LocalAddr().String() }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRoundTripDiscardsStaleAndDuplicate: the regression for the silent
// failure path in roundTrip. The box answers a request with a stale
// reply (a straggler for a request the backend never made live), a
// byte-identical duplicate of it, and only then the real reply. The
// stale datagrams carry a poisoned timestamp; the old code would have
// adopted the first one as the answer.
func TestRoundTripDiscardsStaleAndDuplicate(t *testing.T) {
	const poisonTime = 0x7fffffff
	var armed atomic.Bool
	box := startScriptedBox(t, func(req *Packet) []*Packet {
		if req.Fn == FnLoopback && armed.Load() && len(req.Data) > 0 {
			stale := &Packet{Seq: 0xdeadbeef, Time: poisonTime, Fn: FnLoopback, Data: []byte("old news")}
			real := &Packet{Seq: req.Seq, Time: 2000, Fn: FnLoopback, Data: req.Data}
			return []*Packet{stale, stale, real}
		}
		return []*Packet{{Seq: req.Seq, Time: 3000, Fn: req.Fn, Data: req.Data}}
	})

	b, err := Dial(box.addr(), 8000, WithoutExtrapolation(), WithTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	armed.Store(true)
	got, ok := b.Loopback([]byte("live"))
	armed.Store(false)
	if !ok || !bytes.Equal(got, []byte("live")) {
		t.Fatalf("Loopback through stale noise = %q, %v", got, ok)
	}

	// Two more round trips drain any stale datagrams that arrived after
	// the accept, then refresh the time base from a clean reply.
	b.Loopback(nil)
	if got := b.Time(); got != 3000 {
		t.Errorf("Time = %d after stale replies carrying %d; poisoned timestamp adopted", got, poisonTime)
	}

	st := b.Stats()
	if st.Stale == 0 {
		t.Error("stale reply not counted")
	}
	if st.Duplicate == 0 {
		t.Error("duplicated reply not counted")
	}
	if st.Replies != st.Accepted+st.Stale+st.Duplicate {
		t.Errorf("reply law broken at rest: replies %d != accepted %d + stale %d + duplicate %d",
			st.Replies, st.Accepted, st.Stale, st.Duplicate)
	}
}

// TestDelayedReplyToTimedOutRequest: the ISSUE's exact scenario — a
// reply to an earlier, timed-out request arrives (twice) just before the
// retry's reply. The backend must not mistake either copy for the live
// answer.
func TestDelayedReplyToTimedOutRequest(t *testing.T) {
	var withheld atomic.Uint32 // seq of the request we sat on
	var armed atomic.Bool
	box := startScriptedBox(t, func(req *Packet) []*Packet {
		if req.Fn != FnLoopback || !armed.Load() {
			return []*Packet{{Seq: req.Seq, Time: 500, Fn: req.Fn, Data: req.Data}}
		}
		if withheld.CompareAndSwap(0, req.Seq) {
			return nil // first try: the box is slow; no reply before the timeout
		}
		// The retry arrives: first the delayed reply to the old request —
		// duplicated in transit — then the real one.
		delayed := &Packet{Seq: withheld.Load(), Time: 999999, Fn: FnLoopback, Data: []byte("delayed")}
		return []*Packet{delayed, delayed, {Seq: req.Seq, Time: 1000, Fn: FnLoopback, Data: req.Data}}
	})

	b, err := Dial(box.addr(), 8000, WithoutExtrapolation(), WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	armed.Store(true)
	got, ok := b.Loopback([]byte("retry me"))
	armed.Store(false)
	if !ok || !bytes.Equal(got, []byte("retry me")) {
		t.Fatalf("Loopback through delayed duplicate = %q, %v", got, ok)
	}
	b.Loopback(nil) // drain any copy that landed after the accept

	st := b.Stats()
	if st.Stale == 0 {
		t.Error("delayed reply to the timed-out request not counted stale")
	}
	if st.Duplicate == 0 {
		t.Error("duplicated delayed reply not counted duplicate")
	}
	if got := b.Time(); got != 500 && got != 1000 {
		t.Errorf("Time = %d; delayed reply's timestamp adopted", got)
	}
}

// TestResyncAbandoned: a dead box escalates healthy→suspect→resyncing,
// every recovery attempt fails, and the resync is abandoned (state
// down). The resync conservation law is exact once the backend closes.
func TestResyncAbandoned(t *testing.T) {
	var alive atomic.Bool
	alive.Store(true)
	box := startScriptedBox(t, func(req *Packet) []*Packet {
		if !alive.Load() {
			return nil
		}
		return []*Packet{{Seq: req.Seq, Time: 100, Fn: req.Fn, Data: req.Data}}
	})

	b, err := Dial(box.addr(), 8000,
		WithoutExtrapolation(),
		WithTimeout(20*time.Millisecond),
		WithHealthTuning(2, 3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.State() != StateHealthy {
		t.Fatalf("fresh backend state = %s", b.State())
	}

	// Two failed round trips cross the threshold; the healer's three
	// attempts all fail against the dead box.
	alive.Store(false)
	b.Loopback(nil)
	b.Loopback(nil)
	waitFor(t, "state down after abandoned resync", func() bool { return b.State() == StateDown })

	b.Close()
	st := b.Stats()
	if st.ResyncsStarted != 1 || st.ResyncsAbandoned != 1 || st.ResyncsCompleted != 0 {
		t.Errorf("dead-box resync: started %d completed %d abandoned %d, want 1/0/1",
			st.ResyncsStarted, st.ResyncsCompleted, st.ResyncsAbandoned)
	}
	if st.ResyncAttempts != 3 {
		t.Errorf("resync attempts = %d, want 3", st.ResyncAttempts)
	}
	var sawDown bool
	for _, ev := range b.Events() {
		if ev.From == StateResyncing && ev.To == StateDown {
			sawDown = true
		}
	}
	if !sawDown {
		t.Errorf("event log missing resyncing→down: %+v", b.Events())
	}
}

// TestResyncCompletes: the box dies long enough to trigger a resync and
// comes back while the healer is retrying; the resync completes and the
// backend returns to healthy on its own.
func TestResyncCompletes(t *testing.T) {
	var alive atomic.Bool
	alive.Store(true)
	box := startScriptedBox(t, func(req *Packet) []*Packet {
		if !alive.Load() {
			return nil
		}
		return []*Packet{{Seq: req.Seq, Time: 100, Fn: req.Fn, Data: req.Data}}
	})

	// Enough attempts that the box is guaranteed to be back before the
	// healer gives up (it revives microseconds after the escalation).
	b, err := Dial(box.addr(), 8000,
		WithoutExtrapolation(),
		WithTimeout(20*time.Millisecond),
		WithHealthTuning(2, 200, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	alive.Store(false)
	b.Loopback(nil)
	b.Loopback(nil)
	alive.Store(true)
	waitFor(t, "resync completion after revival", func() bool {
		st := b.Stats()
		return st.ResyncsCompleted >= 1 && st.State == StateHealthy
	})

	b.Close()
	st := b.Stats()
	if st.ResyncsStarted != st.ResyncsCompleted+st.ResyncsAbandoned {
		t.Errorf("resync law broken after close: started %d != completed %d + abandoned %d",
			st.ResyncsStarted, st.ResyncsCompleted, st.ResyncsAbandoned)
	}
	var sawHealed bool
	for _, ev := range b.Events() {
		if ev.From == StateResyncing && ev.To == StateHealthy {
			sawHealed = true
		}
	}
	if !sawHealed {
		t.Errorf("event log missing resyncing→healthy: %+v", b.Events())
	}
}

// TestSpontaneousRecovery: a backend whose resync was abandoned (state
// down) recovers on the next successful round trip, without another
// resync being started.
func TestSpontaneousRecovery(t *testing.T) {
	var alive atomic.Bool
	alive.Store(true)
	box := startScriptedBox(t, func(req *Packet) []*Packet {
		if !alive.Load() {
			return nil
		}
		return []*Packet{{Seq: req.Seq, Time: 100, Fn: req.Fn, Data: req.Data}}
	})
	b, err := Dial(box.addr(), 8000,
		WithoutExtrapolation(),
		WithTimeout(20*time.Millisecond),
		WithHealthTuning(2, 1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// One-attempt healer against a dead box: straight to down.
	alive.Store(false)
	b.Loopback(nil)
	b.Loopback(nil)
	waitFor(t, "state down", func() bool { return b.State() == StateDown })

	// The network heals before any new escalation: one good op recovers.
	alive.Store(true)
	if _, ok := b.Loopback([]byte("back")); !ok {
		t.Fatal("loopback against revived box failed")
	}
	if got := b.State(); got != StateHealthy {
		t.Errorf("state after successful op = %s, want healthy", got)
	}
	if st := b.Stats(); st.ResyncsStarted != 1 {
		t.Errorf("spontaneous recovery started %d resyncs, want the original 1 only", st.ResyncsStarted)
	}
}
