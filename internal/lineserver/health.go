package lineserver

import (
	"sync"
	"sync/atomic"
	"time"
)

// Self-healing (ROADMAP item 5): the backend runs a detect/decide/act
// loop over the health of its UDP peer, in the style of the
// Self-Healing Audio System's recovery cycle, generalizing the paper's
// §8.3 clock-slip resynchronization to the whole transport.
//
//   - detect: every round trip classifies its outcome. A run of
//     FailThreshold consecutive round-trip failures means the box (or
//     the path to it) is gone, not just a lost packet; an accepted
//     reply whose timestamp is further than SlipThreshold frames from
//     the extrapolated estimate means the box's clock stepped (a
//     reboot, a firmware stall).
//   - decide: crossing the failure threshold moves the backend from
//     healthy to suspect and wakes the healer exactly once; a slip is
//     acted on inline (the new time base is adopted and the
//     monotonicity clamp released).
//   - act: the healer resynchronizes — re-Reset plus device-time
//     re-establishment — with bounded exponential backoff. Success
//     returns the backend to healthy; exhausting the attempts abandons
//     the resync (state "down") until a fresh failure run re-arms it.
//
// Every transition is counted and recorded as an event, and the
// counters obey exact conservation laws once the backend is closed:
//
//	Replies == Accepted + Stale + Duplicate
//	ResyncsStarted == ResyncsCompleted + ResyncsAbandoned
//
// In a live snapshot both are one-sided (Replies >= the sum,
// ResyncsStarted >= the sum): the aggregate counter is incremented
// first and read last.

// Health states.
const (
	StateHealthy   = "healthy"
	StateSuspect   = "suspect"   // failure threshold crossed, healer waking
	StateResyncing = "resyncing" // healer mid-recovery
	StateDown      = "down"      // resync abandoned; degraded until re-armed
)

var stateNames = []string{StateHealthy, StateSuspect, StateResyncing, StateDown}

const (
	stateHealthy = iota
	stateSuspect
	stateResyncing
	stateDown
)

// Default tuning; WithHealthTuning overrides (tests use tiny values).
const (
	defaultFailThreshold  = 3
	defaultResyncAttempts = 4
	defaultResyncBackoff  = 25 * time.Millisecond
	maxResyncBackoff      = 500 * time.Millisecond
)

// HealthEvent is one recorded detect/decide/act transition.
type HealthEvent struct {
	When   time.Time `json:"when"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	Reason string    `json:"reason"`
}

// backendHealth carries the state machine and the counters. Counters
// are atomics so Stats never takes the transport mutex (which a round
// trip may hold for a full timeout); events live under their own small
// mutex for the same reason.
type backendHealth struct {
	state       atomic.Int32
	consecFails atomic.Int64

	requests  atomic.Uint64 // datagrams sent
	replies   atomic.Uint64 // parseable reply datagrams received
	accepted  atomic.Uint64 // replies matching the live request
	stale     atomic.Uint64 // replies to earlier (timed-out) requests
	duplicate atomic.Uint64 // copies of replies already seen
	garbage   atomic.Uint64 // unparseable datagrams
	timeouts  atomic.Uint64 // round trips that exhausted every try
	slips     atomic.Uint64 // clock-slip detections on accepted replies

	resyncsStarted   atomic.Uint64
	resyncsCompleted atomic.Uint64
	resyncsAbandoned atomic.Uint64
	resyncAttempts   atomic.Uint64 // individual recovery round trips

	recSilenceBytes atomic.Uint64 // record bytes delivered as silence
	playLostBytes   atomic.Uint64 // play bytes whose packet went unacknowledged

	evMu   sync.Mutex
	events []HealthEvent
}

// maxEvents bounds the transition log; it is a diagnostic ring, not a
// durable history.
const maxEvents = 64

// setState records a transition and its event. Reason-free state reads
// go through state.Load directly.
func (h *backendHealth) setState(to int32, reason string) {
	from := h.state.Swap(to)
	if from == to {
		return
	}
	h.evMu.Lock()
	if len(h.events) >= maxEvents {
		copy(h.events, h.events[1:])
		h.events = h.events[:maxEvents-1]
	}
	h.events = append(h.events, HealthEvent{
		When: time.Now(), From: stateNames[from], To: stateNames[to], Reason: reason,
	})
	h.evMu.Unlock()
}

// BackendStats is the exported health snapshot: what afd -stats embeds
// per lineserver device and astat renders and law-checks.
type BackendStats struct {
	State       string `json:"state"`
	ConsecFails int64  `json:"consec_fails"`

	Requests  uint64 `json:"requests"`
	Replies   uint64 `json:"replies"`
	Accepted  uint64 `json:"accepted"`
	Stale     uint64 `json:"stale"`
	Duplicate uint64 `json:"duplicate"`
	Garbage   uint64 `json:"garbage"`
	Timeouts  uint64 `json:"timeouts"`
	Slips     uint64 `json:"slips"`

	ResyncsStarted   uint64 `json:"resyncs_started"`
	ResyncsCompleted uint64 `json:"resyncs_completed"`
	ResyncsAbandoned uint64 `json:"resyncs_abandoned"`
	ResyncAttempts   uint64 `json:"resync_attempts"`

	RecSilenceBytes uint64 `json:"rec_silence_bytes"`
	PlayLostBytes   uint64 `json:"play_lost_bytes"`

	Events []HealthEvent `json:"events,omitempty"`
}

// Stats snapshots the health counters without touching the transport
// mutex. Read order makes the one-sided laws hold in every live
// snapshot: outcome classifications first, their aggregates last
// (the increments happen in the opposite order).
func (b *Backend) Stats() BackendStats {
	h := &b.health
	s := BackendStats{
		Accepted:         h.accepted.Load(),
		Stale:            h.stale.Load(),
		Duplicate:        h.duplicate.Load(),
		Garbage:          h.garbage.Load(),
		Timeouts:         h.timeouts.Load(),
		Slips:            h.slips.Load(),
		ResyncsCompleted: h.resyncsCompleted.Load(),
		ResyncsAbandoned: h.resyncsAbandoned.Load(),
		ResyncAttempts:   h.resyncAttempts.Load(),
		RecSilenceBytes:  h.recSilenceBytes.Load(),
		PlayLostBytes:    h.playLostBytes.Load(),
		ConsecFails:      h.consecFails.Load(),
	}
	// Aggregates last (see the law comment above).
	s.Replies = h.replies.Load()
	s.ResyncsStarted = h.resyncsStarted.Load()
	s.Requests = h.requests.Load()
	s.State = stateNames[h.state.Load()]
	h.evMu.Lock()
	s.Events = append([]HealthEvent(nil), h.events...)
	h.evMu.Unlock()
	return s
}

// Events returns the recorded health transitions.
func (b *Backend) Events() []HealthEvent {
	b.health.evMu.Lock()
	defer b.health.evMu.Unlock()
	return append([]HealthEvent(nil), b.health.events...)
}

// State returns the current health state name.
func (b *Backend) State() string { return stateNames[b.health.state.Load()] }

// noteFailure records one fully failed round trip (detect) and decides
// whether to arm the healer. Called with b.mu held.
func (b *Backend) noteFailure() {
	h := &b.health
	h.timeouts.Add(1)
	if h.consecFails.Add(1) < int64(b.failThreshold) {
		return
	}
	// Threshold crossed: healthy and down states escalate to suspect;
	// an in-flight resync keeps failing on its own schedule.
	if s := h.state.Load(); s == stateHealthy || s == stateDown {
		h.consecFails.Store(0)
		h.setState(stateSuspect, "failure threshold")
		select {
		case b.healCh <- struct{}{}:
		default:
		}
	}
}

// noteSuccess records an accepted round trip. A success while suspect or
// down is a spontaneous recovery (the network healed before we acted).
// Called with b.mu held.
func (b *Backend) noteSuccess() {
	h := &b.health
	h.consecFails.Store(0)
	if s := h.state.Load(); s == stateSuspect || s == stateDown {
		h.setState(stateHealthy, "recovered")
	}
}

// healer is the act stage: it waits for an escalation, then
// resynchronizes with bounded backoff. One goroutine per backend,
// joined by Close; a resync interrupted by Close counts as abandoned so
// the conservation law stays exact.
func (b *Backend) healer() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case <-b.healCh:
		}
		if b.health.state.Load() != stateSuspect {
			continue // stale escalation: an op already recovered us
		}
		b.health.resyncsStarted.Add(1)
		b.health.setState(stateResyncing, "resync start")
		completed := false
		aborted := false
		backoff := b.resyncBackoff
		for attempt := 0; attempt < b.resyncMaxTries; attempt++ {
			if attempt > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-b.done:
					t.Stop()
					aborted = true
				case <-t.C:
				}
				if backoff *= 2; backoff > maxResyncBackoff {
					backoff = maxResyncBackoff
				}
			}
			if aborted {
				break
			}
			b.health.resyncAttempts.Add(1)
			b.mu.Lock()
			ok := b.reestablishLocked()
			b.mu.Unlock()
			if ok {
				completed = true
				break
			}
		}
		b.health.consecFails.Store(0)
		if completed {
			b.mu.Lock()
			b.monotonicValid = false // the box may have rebooted; let time step
			b.mu.Unlock()
			b.health.resyncsCompleted.Add(1)
			b.health.setState(stateHealthy, "resync complete")
		} else {
			b.health.resyncsAbandoned.Add(1)
			reason := "resync abandoned"
			if aborted {
				reason = "resync aborted by close"
			}
			b.health.setState(stateDown, reason)
			if aborted {
				return
			}
		}
	}
}

// reestablishLocked is one recovery attempt: re-Reset the box, then
// re-establish the device-time base with a loopback ping (the accepted
// reply refreshes lastTime/lastWhen inside roundTrip). Single tries —
// the healer's backoff loop is the retry policy here.
func (b *Backend) reestablishLocked() bool {
	if b.roundTrip(&Packet{Fn: FnReset}, 1) == nil {
		return false
	}
	return b.roundTrip(&Packet{Fn: FnLoopback}, 1) != nil
}
