package lineserver

import (
	"net"
	"sync"

	"audiofile/internal/atime"
	"audiofile/internal/netsim"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// FirmwareFrames is the LineServer buffer depth: "2048 samples, or 1/4
// second at 8 kHz".
const FirmwareFrames = 2048

// FirmwareConfig describes a simulated LineServer box.
type FirmwareConfig struct {
	Rate   int           // 0 means 8000
	Clock  vdev.Clock    // nil means a RealClock
	Sink   vdev.PlaySink // nil discards (the box's speaker jack)
	Source vdev.RecordSource
	Addr   string // UDP listen address; "" means 127.0.0.1:0

	// Faults, when non-nil, wraps the box's socket with deterministic
	// seeded packet-fault injection (loss, duplication, reordering,
	// burst blackouts). A single wrapper at the firmware's socket puts
	// the whole protocol through the fault layer: requests arriving are
	// its ingress, replies leaving are its egress.
	Faults *netsim.PacketFaultConfig
}

// Firmware simulates the LineServer's firmware: "two threads of control: a
// network thread and an update thread". The update side is the virtual
// CODEC device; the network thread loops reading request packets,
// processing them, and sending the reply back. The LineServer only sends
// packets as replies to requests.
type Firmware struct {
	mu   sync.Mutex
	dev    *vdev.Device
	regs   map[uint32]uint32
	pc     net.PacketConn
	faults *netsim.FaultPacketConn // nil without fault injection

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Stats for tests.
	packets uint64
}

// NewFirmware boots a simulated LineServer on a UDP socket.
func NewFirmware(cfg FirmwareConfig) (*Firmware, error) {
	if cfg.Rate == 0 {
		cfg.Rate = 8000
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	var faults *netsim.FaultPacketConn
	if cfg.Faults != nil {
		faults = netsim.NewFaultPacketConn(pc, *cfg.Faults)
		pc = faults
	}
	f := &Firmware{
		dev: vdev.New(vdev.Config{
			Name: "lineserver", Rate: cfg.Rate, Enc: sampleconv.MU255, Channels: 1,
			HWFrames: FirmwareFrames, Clock: cfg.Clock, Sink: cfg.Sink, Source: cfg.Source,
		}),
		regs:   make(map[uint32]uint32),
		pc:     pc,
		faults: faults,
		done:   make(chan struct{}),
	}
	f.wg.Add(1)
	go f.networkThread()
	return f, nil
}

// Addr returns the firmware's UDP address.
func (f *Firmware) Addr() string { return f.pc.LocalAddr().String() }

// Faults returns the fault-injection layer, or nil when the box was
// booted without one. Chaos tests use it to read packet accounting.
func (f *Firmware) Faults() *netsim.FaultPacketConn { return f.faults }

// Packets returns how many request packets the box has processed.
func (f *Firmware) Packets() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.packets
}

// Close shuts the box down. It is safe to call more than once.
func (f *Firmware) Close() {
	f.closeOnce.Do(func() {
		close(f.done)
		f.pc.Close()
	})
	f.wg.Wait()
}

// networkThread reads requests, processes them against the CODEC, and
// replies. All requests generate replies consisting of the original
// command header with the time updated to the current device time, plus
// data bytes if applicable.
func (f *Firmware) networkThread() {
	defer f.wg.Done()
	buf := make([]byte, HeaderBytes+MaxDataBytes+64)
	for {
		n, from, err := f.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-f.done:
				return
			default:
				continue
			}
		}
		req, err := Parse(buf[:n])
		if err != nil {
			continue // garbage on the wire; a real box drops it too
		}
		rep := f.process(req)
		f.pc.WriteTo(rep.Marshal(), from) //nolint:errcheck — UDP, no retry
	}
}

// process executes one request against the device and builds the reply.
func (f *Firmware) process(req *Packet) *Packet {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.packets++
	rep := &Packet{Seq: req.Seq, Fn: req.Fn, Param: req.Param}
	switch req.Fn {
	case FnPlay:
		f.dev.Sync()
		f.dev.WritePlay(atime.ATime(req.Time), req.Data)
	case FnRecord:
		f.dev.Sync()
		n := int(req.Param)
		if n > MaxDataBytes {
			n = MaxDataBytes
		}
		data := make([]byte, n)
		f.dev.ReadRecord(atime.ATime(req.Time), data)
		rep.Data = data
	case FnReadReg:
		var v [4]byte
		val := f.regs[req.Param]
		v[0] = byte(val >> 24)
		v[1] = byte(val >> 16)
		v[2] = byte(val >> 8)
		v[3] = byte(val)
		rep.Data = v[:]
	case FnWriteReg:
		if len(req.Data) >= 4 {
			f.regs[req.Param] = uint32(req.Data[0])<<24 | uint32(req.Data[1])<<16 |
				uint32(req.Data[2])<<8 | uint32(req.Data[3])
		}
	case FnLoopback:
		rep.Data = req.Data // a loopback request returns the original packet
	case FnReset:
		f.regs = make(map[uint32]uint32)
	}
	rep.Time = uint32(f.dev.Time())
	return rep
}
