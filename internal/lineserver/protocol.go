// Package lineserver reproduces the LineServer: the paper's detached
// Ethernet audio peripheral (§4.4, §7.4.3). The real LineServer was a
// 68302 box with an 8 kHz ISDN CODEC and small (2048-sample) play and
// record buffers, driven by an AudioFile server running on a nearby
// workstation over a private UDP protocol with six packet types. Here the
// "firmware" runs as an in-process simulator bound to a real UDP socket,
// and Backend is the workstation side: a core.Backend that keeps the
// AudioFile server's buffers consistent with the remote device, estimates
// device time from reply timestamps, retries register accesses but never
// play or record ("by then, it is probably too late anyway").
package lineserver

import (
	"encoding/binary"
	"fmt"
)

// Function codes: the six packet types of §7.4.3.
const (
	FnPlay     = 1 // play samples
	FnRecord   = 2 // record samples
	FnReadReg  = 3 // read CODEC registers
	FnWriteReg = 4 // write CODEC registers
	FnLoopback = 5 // loopback (for testing)
	FnReset    = 6 // reset
)

// CODEC register numbers.
const (
	RegInputGain  = 1
	RegOutputGain = 2
)

// HeaderBytes is the packet header size. "Request and reply packets have
// the same format, with four header fields: sequence number, audio time,
// function code, and parameter. Any extra bytes after the header are
// considered data bytes."
const HeaderBytes = 16

// MaxDataBytes bounds sample payload per packet (inside one Ethernet
// frame, as the original used).
const MaxDataBytes = 1400

// Packet is one LineServer protocol message.
type Packet struct {
	Seq   uint32
	Time  uint32 // audio device time
	Fn    uint8
	Param uint32
	Data  []byte
}

// Marshal serializes the packet.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, HeaderBytes+len(p.Data))
	be := binary.BigEndian // the 68302 is big-endian
	be.PutUint32(buf[0:], p.Seq)
	be.PutUint32(buf[4:], p.Time)
	buf[8] = p.Fn
	be.PutUint32(buf[12:], p.Param)
	copy(buf[HeaderBytes:], p.Data)
	return buf
}

// Parse deserializes a packet.
func Parse(buf []byte) (*Packet, error) {
	if len(buf) < HeaderBytes {
		return nil, fmt.Errorf("lineserver: short packet (%d bytes)", len(buf))
	}
	be := binary.BigEndian
	p := &Packet{
		Seq:   be.Uint32(buf[0:]),
		Time:  be.Uint32(buf[4:]),
		Fn:    buf[8],
		Param: be.Uint32(buf[12:]),
	}
	if len(buf) > HeaderBytes {
		p.Data = append([]byte(nil), buf[HeaderBytes:]...)
	}
	return p, nil
}
