package lineserver

import (
	"math/rand"
	"testing"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/netsim"
	"audiofile/internal/vdev"
)

// Property tests for Backend.Time under a jittering transport: replies
// duplicated and reordered (a reordered reply is an old timestamp
// arriving late). The properties:
//
//   - Monotonic: the estimate never runs backwards, in wrapped time,
//     no matter which stragglers arrive.
//   - Bounded drift: the estimate never runs ahead of the device's true
//     clock by more than the extrapolation window allows.
//
// Both modes are covered: WithoutExtrapolation (every call pings; a
// manual clock gives an exact upper bound) and extrapolation (a real
// clock; drift is bounded against the test's own wall clock).

// jitterFaults is the reply-path schedule: duplicates and reorder holds
// but no loss, so every request is eventually answered and old
// timestamps keep arriving late.
func jitterFaults(seed int64) *netsim.PacketFaultConfig {
	return &netsim.PacketFaultConfig{
		Seed: seed,
		Egress: netsim.PacketFaultRates{
			Dup: 0.3, Reorder: 0.3, ReorderSpan: 1,
		},
	}
}

func TestTimeMonotonicNoExtrapolation(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	fw, err := NewFirmware(FirmwareConfig{Clock: clk, Faults: jitterFaults(1993)})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	b, err := Dial(fw.Addr(), 8000, WithoutExtrapolation(), WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rng := rand.New(rand.NewSource(7))
	last := b.Time()
	for i := 0; i < 150; i++ {
		clk.Advance(rng.Intn(400))
		got := b.Time()
		if atime.Before(got, last) {
			t.Fatalf("iteration %d: Time ran backwards %d -> %d", i, last, got)
		}
		// Without extrapolation the estimate is always a timestamp some
		// reply actually carried, so it can never pass the device clock.
		if now := clk.Ticks(); atime.After(got, now) {
			t.Fatalf("iteration %d: Time %d ahead of device clock %d", i, got, now)
		}
		last = got
	}
	if st := b.Stats(); st.Stale == 0 && st.Duplicate == 0 {
		t.Error("jitter schedule produced no stale or duplicate replies; the property was not exercised")
	}
}

func TestTimeMonotonicBoundedDriftExtrapolated(t *testing.T) {
	clk := vdev.NewRealClock(8000, 0)
	fw, err := NewFirmware(FirmwareConfig{Clock: clk, Faults: jitterFaults(2026)})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	b, err := Dial(fw.Addr(), 8000, WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Reference: the backend's first estimate plus wall time at 8 kHz.
	// The tolerance covers reply latency, extrapolation granularity, and
	// scheduler noise far beyond what CI exhibits.
	const tolerance = 8000 // one second of frames
	start := time.Now()
	base := b.Time()
	last := base
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		time.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
		got := b.Time()
		if atime.Before(got, last) {
			t.Fatalf("iteration %d: extrapolated Time ran backwards %d -> %d", i, last, got)
		}
		expect := atime.Add(base, int(time.Since(start).Seconds()*8000))
		if d := atime.Sub(got, expect); d > tolerance || d < -tolerance {
			t.Fatalf("iteration %d: Time %d drifted %d frames from wall-clock reference %d", i, got, d, expect)
		}
		last = got
	}
}
