package phonesim

import (
	"testing"

	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

func drainKinds(l *Line) []Event { return l.DrainEvents() }

func TestHookEvents(t *testing.T) {
	l := NewLine(8000)
	l.SetHook(true)
	l.SetHook(true) // no duplicate event
	l.SetHook(false)
	evs := drainKinds(l)
	if len(evs) != 2 || evs[0] != (Event{EvHook, 1}) || evs[1] != (Event{EvHook, 0}) {
		t.Errorf("events = %+v", evs)
	}
	if l.OffHook() {
		t.Error("OffHook after hang up")
	}
}

func TestRingAndAnswer(t *testing.T) {
	l := NewLine(8000)
	l.RingPulse()
	l.RingPulse()
	if !l.Ringing() {
		t.Fatal("not ringing")
	}
	l.SetHook(true) // answer
	if l.Ringing() {
		t.Error("still ringing after answer")
	}
	evs := drainKinds(l)
	// ring on, ring on, hook off, ring off
	want := []Event{{EvRing, 1}, {EvRing, 1}, {EvHook, 1}, {EvRing, 0}}
	if len(evs) != len(want) {
		t.Fatalf("events = %+v", evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	// An answered line cannot ring.
	l.RingPulse()
	if len(drainKinds(l)) != 0 {
		t.Error("ring pulse on answered line produced an event")
	}
}

func TestStopRinging(t *testing.T) {
	l := NewLine(8000)
	l.RingPulse()
	l.StopRinging()
	evs := drainKinds(l)
	if len(evs) != 2 || evs[1] != (Event{EvRing, 0}) {
		t.Errorf("events = %+v", evs)
	}
	l.StopRinging() // idempotent
	if len(drainKinds(l)) != 0 {
		t.Error("second StopRinging produced an event")
	}
}

func TestLoopCurrentEvents(t *testing.T) {
	l := NewLine(8000)
	l.SetExtensionHook(true)
	if !l.LoopCurrent() {
		t.Error("no loop current with extension off hook")
	}
	l.SetExtensionHook(false)
	evs := drainKinds(l)
	if len(evs) != 2 || evs[0] != (Event{EvLoop, 1}) || evs[1] != (Event{EvLoop, 0}) {
		t.Errorf("events = %+v", evs)
	}
}

func TestRemoteDigitsDetected(t *testing.T) {
	l := NewLine(8000)
	l.SetHook(true)
	drainKinds(l)
	l.RemoteDigits("42#")
	evs := drainKinds(l)
	var digits []byte
	for _, ev := range evs {
		if ev.Kind == EvDTMF {
			digits = append(digits, ev.Detail)
		}
	}
	if string(digits) != "42#" {
		t.Errorf("decoded %q, want \"42#\"", digits)
	}
}

func TestLocalDialingDetected(t *testing.T) {
	// Audio played by the device (tone dialing) is decoded by the line.
	l := NewLine(8000)
	l.SetHook(true)
	drainKinds(l)
	lo, hi, _ := dsp.DTMFFreqs('7')
	burst := synthPair(8000, lo, hi, 400)
	sil := make([]byte, 400)
	for i := range sil {
		sil[i] = 0xFF
	}
	l.Play(0, burst)
	l.Play(400, sil)
	evs := drainKinds(l)
	if len(evs) != 1 || evs[0].Kind != EvDTMF || evs[0].Detail != '7' {
		t.Errorf("events = %+v, want one DTMF '7'", evs)
	}
}

func TestRecordHearsRemoteAudioOnlyOffHook(t *testing.T) {
	l := NewLine(8000)
	tone := make([]byte, 64)
	for i := range tone {
		tone[i] = sampleconv.EncodeMuLaw(5000)
	}
	l.RemoteAudio(tone)
	buf := make([]byte, 64)
	l.Fill(0, buf) // on hook: silence, audio stays queued... until hangup
	for i, b := range buf {
		if b != 0xFF {
			t.Fatalf("on-hook byte %d = %#x", i, b)
		}
	}
	l.SetHook(true)
	l.RemoteAudio(tone)
	l.Fill(0, buf)
	if buf[0] == 0xFF {
		t.Error("off-hook record heard silence")
	}
	// Partial fill pads with silence.
	big := make([]byte, 256)
	l.Fill(0, big)
	if big[255] != 0xFF {
		t.Error("tail not padded with silence")
	}
}

func TestHangupFlushesAudio(t *testing.T) {
	l := NewLine(8000)
	l.SetHook(true)
	l.RemoteAudio(make([]byte, 100))
	l.SetHook(false)
	l.SetHook(true)
	buf := make([]byte, 100)
	l.Fill(0, buf)
	for i, b := range buf {
		if b != 0xFF {
			t.Fatalf("stale audio survived hangup at %d: %#x", i, b)
		}
	}
}
