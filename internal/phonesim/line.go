// Package phonesim simulates an analog telephone line and the LoFi
// telephone line interface: hookswitch relay, ring and loop-current
// detection, and Touch-Tone decoding. It stands in for the paper's
// telephone hardware: the same five protocol events emerge from the same
// stimuli — an incoming call rings the line, digits (dialed locally by
// playing tone pairs, or sent by the remote caller) produce DTMF events,
// and hook transitions on either end produce hookswitch and loop-current
// events.
package phonesim

import (
	"sync"

	"audiofile/internal/atime"
	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

// EventKind identifies a line event, mirroring the four telephone protocol
// events.
type EventKind int

// Line event kinds.
const (
	EvRing EventKind = iota // Detail: 1 ring started, 0 ring stopped
	EvDTMF                  // Detail: the decoded digit
	EvLoop                  // Detail: 1 loop current present, 0 absent
	EvHook                  // Detail: 1 off hook, 0 on hook
)

// Event is one line state change. The device time is attached by the DDA
// when it drains the queue.
type Event struct {
	Kind   EventKind
	Detail byte
}

// A Line is a simulated telephone line. It implements vdev.PlaySink and
// vdev.RecordSource, so it plugs into a virtual CODEC device as its
// "analog side": audio the device plays goes down the line (and through
// the DTMF decoder), and audio on the line (injected by the simulated
// remote party) is what the device records. All methods are safe for
// concurrent use; the device side runs in the server loop while the
// exchange side (Remote* methods) may be driven by tests or a scripted
// caller.
type Line struct {
	mu sync.Mutex

	rate    int
	offHook bool // our hookswitch relay state
	ringing bool
	// remoteOffHook models the extension phone sharing the line; loop
	// current flows when it is off hook.
	remoteOffHook bool

	outDet *dsp.DTMFDetector // hears audio we transmit (local dialing)
	inDet  *dsp.DTMFDetector // hears audio from the far end

	incoming []byte // queued far-end audio (µ-law), consumed by Fill

	events []Event
}

// NewLine creates a line for an 8 kHz µ-law CODEC device.
func NewLine(rate int) *Line {
	return &Line{
		rate:   rate,
		outDet: dsp.NewDTMFDetector(rate),
		inDet:  dsp.NewDTMFDetector(rate),
	}
}

func (l *Line) push(ev Event) {
	l.events = append(l.events, ev)
}

// DrainEvents removes and returns all pending line events.
func (l *Line) DrainEvents() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	evs := l.events
	l.events = nil
	return evs
}

// --- device side (driven by the server) ---

// Play implements vdev.PlaySink: audio our device transmits onto the line.
// The Touch-Tone decoder listens here, so client-side tone dialing (the
// library's AFDialPhone) is really detected.
func (l *Line) Play(_ atime.ATime, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lin := make([]int16, len(data))
	sampleconv.ToLin16(lin, data, sampleconv.MU255, len(data))
	for _, d := range l.outDet.Feed(lin) {
		l.push(Event{Kind: EvDTMF, Detail: d})
	}
}

// Fill implements vdev.RecordSource: audio our device hears from the line.
// Off hook it is the far end's audio; on hook the line is quiet.
func (l *Line) Fill(_ atime.ATime, buf []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	if l.offHook {
		n = copy(buf, l.incoming)
		l.incoming = l.incoming[n:]
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0xFF // µ-law silence
	}
}

// SetHook operates the hookswitch relay (the HookSwitch request). Going
// off hook answers a ringing call.
func (l *Line) SetHook(offHook bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.offHook == offHook {
		return
	}
	l.offHook = offHook
	d := byte(0)
	if offHook {
		d = 1
	}
	l.push(Event{Kind: EvHook, Detail: d})
	if offHook && l.ringing {
		l.ringing = false
		l.push(Event{Kind: EvRing, Detail: 0})
	}
	if !offHook {
		// Hanging up flushes any queued far-end audio.
		l.incoming = nil
	}
}

// OffHook reports the hookswitch state (QueryPhone).
func (l *Line) OffHook() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offHook
}

// LoopCurrent reports whether loop current is present: the extension
// phone is off hook (QueryPhone).
func (l *Line) LoopCurrent() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.remoteOffHook
}

// Ringing reports whether the line is currently ringing.
func (l *Line) Ringing() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ringing
}

// --- exchange side (the simulated outside world) ---

// RingPulse delivers one ring cadence pulse from the exchange: a ring
// event each time the bell fires. The first pulse of a call also marks
// the line ringing.
func (l *Line) RingPulse() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.offHook {
		return // can't ring an answered line
	}
	l.ringing = true
	l.push(Event{Kind: EvRing, Detail: 1})
}

// StopRinging marks the caller giving up.
func (l *Line) StopRinging() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ringing {
		l.ringing = false
		l.push(Event{Kind: EvRing, Detail: 0})
	}
}

// RemoteAudio queues µ-law audio from the far end; the device records it
// (when off hook) and the line's decoder scans it for the caller's digits.
func (l *Line) RemoteAudio(mulaw []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.incoming = append(l.incoming, mulaw...)
	lin := make([]int16, len(mulaw))
	sampleconv.ToLin16(lin, mulaw, sampleconv.MU255, len(mulaw))
	for _, d := range l.inDet.Feed(lin) {
		l.push(Event{Kind: EvDTMF, Detail: d})
	}
}

// RemoteDigits is a convenience that synthesizes Touch-Tone bursts for
// each digit (50 ms on, 50 ms off, per Table 7) and feeds them through
// RemoteAudio, as a caller punching keys would.
func (l *Line) RemoteDigits(digits string) {
	for _, d := range []byte(digits) {
		lo, hi, ok := dsp.DTMFFreqs(d)
		if !ok {
			continue
		}
		on := synthPair(l.rate, lo, hi, l.rate/20)
		off := make([]byte, l.rate/20)
		for i := range off {
			off[i] = 0xFF
		}
		l.RemoteAudio(on)
		l.RemoteAudio(off)
	}
}

// SetExtensionHook models the extension phone on the same line going off
// or on hook, which starts or stops loop current.
func (l *Line) SetExtensionHook(offHook bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.remoteOffHook == offHook {
		return
	}
	l.remoteOffHook = offHook
	d := byte(0)
	if offHook {
		d = 1
	}
	l.push(Event{Kind: EvLoop, Detail: d})
}

// synthPair renders n samples of a two-tone µ-law burst at DTMF levels.
func synthPair(rate int, lo, hi float64, n int) []byte {
	loAmp := dsp.AmplitudeForDBm(-4)
	hiAmp := dsp.AmplitudeForDBm(-2)
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		v := loAmp*sin2pi(lo*float64(i)/float64(rate)) +
			hiAmp*sin2pi(hi*float64(i)/float64(rate))
		out[i] = sampleconv.EncodeMuLaw(sampleconv.Clamp16(int(v)))
	}
	return out
}

func sin2pi(x float64) float64 {
	return dsp.Sin2Pi(x)
}
