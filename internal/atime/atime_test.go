package atime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperExamples(t *testing.T) {
	// The paper's 8000 samples/second example.
	var a ATime = 100
	b := Add(a, 8000)
	if !After(b, a) {
		t.Errorf("After(%d, %d) = false, want true", b, a)
	}
	if !Before(a, b) {
		t.Errorf("Before(%d, %d) = false, want true", a, b)
	}
	if Sub(b, a) != 8000 {
		t.Errorf("Sub = %d, want 8000", Sub(b, a))
	}
}

func TestWrapAround(t *testing.T) {
	// b is just past the wrap point; a is just before it.
	a := ATime(math.MaxUint32 - 5)
	b := Add(a, 10) // wraps to 4
	if b != 4 {
		t.Fatalf("Add wrapped to %d, want 4", b)
	}
	if !After(b, a) {
		t.Errorf("After across wrap = false, want true")
	}
	if Sub(b, a) != 10 {
		t.Errorf("Sub across wrap = %d, want 10", Sub(b, a))
	}
}

func TestHalfRangeBoundary(t *testing.T) {
	var a ATime = 1000
	q := Add(a, HalfRange) // the division point
	// Exactly half the range away is "before" by the int32 rule:
	// int32(q-a) = math.MinInt32 < 0.
	if After(q, a) {
		t.Errorf("After(q, a) = true at the division point, want false")
	}
	almost := Add(a, HalfRange-1)
	if !After(almost, a) {
		t.Errorf("After(a+2^31-1, a) = false, want true")
	}
}

func TestMinMaxClamp(t *testing.T) {
	var a, b ATime = 100, 200
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max wrong")
	}
	if Clamp(50, a, b) != a {
		t.Error("Clamp below wrong")
	}
	if Clamp(250, a, b) != b {
		t.Error("Clamp above wrong")
	}
	if Clamp(150, a, b) != 150 {
		t.Error("Clamp inside wrong")
	}
}

func TestSecondsTicks(t *testing.T) {
	if got := SecondsToTicks(4, 8000); got != 32000 {
		t.Errorf("SecondsToTicks(4, 8000) = %d, want 32000", got)
	}
	if got := TicksToSeconds(32000, 8000); got != 4.0 {
		t.Errorf("TicksToSeconds = %v, want 4", got)
	}
	if got := SecondsToTicks(0.5, 48000); got != 24000 {
		t.Errorf("SecondsToTicks(0.5, 48000) = %d, want 24000", got)
	}
}

func TestCorrespondence(t *testing.T) {
	// Clock A: 8 kHz, clock B: 48 kHz, observed together at (1000, 5000).
	c := Correspondence{Ta: 1000, Tb: 5000, Ra: 8000, Rb: 48000}
	// One second later on A is 8000 ticks; on B it is 48000 ticks.
	tb := c.AtoB(Add(1000, 8000))
	if tb != Add(5000, 48000) {
		t.Errorf("AtoB = %d, want %d", tb, Add(5000, 48000))
	}
	ta := c.BtoA(Add(5000, 48000))
	if ta != Add(1000, 8000) {
		t.Errorf("BtoA = %d, want %d", ta, Add(1000, 8000))
	}
}

func TestCorrespondenceDrift(t *testing.T) {
	// Two nominal 8 kHz clocks, one 100 ppm fast. After a nominal hour the
	// conversion should differ by about 0.36 s (2880 ticks).
	c := Correspondence{Ta: 0, Tb: 0, Ra: 8000, Rb: 8000.8}
	tb := c.AtoB(8000 * 3600)
	drift := Sub(tb, 8000*3600)
	if drift < 2800 || drift > 2960 {
		t.Errorf("drift = %d ticks, want ~2880", drift)
	}
}

// Property: for any a and any displacement 0 < d < 2^31, a+d is after a.
func TestQuickAfterAdd(t *testing.T) {
	f := func(a uint32, d uint32) bool {
		dd := d % (HalfRange - 1)
		if dd == 0 {
			dd = 1
		}
		return After(Add(ATime(a), int(dd)), ATime(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Before and After are antisymmetric except at equality and the
// exact half-range point.
func TestQuickAntisymmetry(t *testing.T) {
	f := func(a, b uint32) bool {
		ta, tb := ATime(a), ATime(b)
		d := uint32(tb - ta)
		if d == 0 || d == HalfRange {
			return !After(ta, tb) || !After(tb, ta)
		}
		return After(ta, tb) != After(tb, ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub(Add(t, n), t) == n for |n| < 2^31.
func TestQuickSubAdd(t *testing.T) {
	f := func(a uint32, n int32) bool {
		return Sub(Add(ATime(a), int(n)), ATime(a)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: correspondence round-trips within rounding error.
func TestQuickCorrespondenceRoundTrip(t *testing.T) {
	c := Correspondence{Ta: 12345, Tb: 67890, Ra: 8000, Rb: 44100}
	f := func(off int32) bool {
		// Keep the offset small enough that float rounding stays tiny.
		off %= 1 << 24
		ta := Add(c.Ta, int(off))
		back := c.BtoA(c.AtoB(ta))
		d := Sub(back, ta)
		return d >= -8 && d <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
