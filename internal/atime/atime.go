// Package atime implements AudioFile device time: a 32-bit unsigned counter
// that increments once per sample period and wraps on overflow.
//
// Because the counter wraps, two times cannot be compared directly. All
// possible values are divided into equally sized "past" and "future" regions
// relative to a reference time t: any time from t clockwise to t+2^31 is
// after t, and the other half circle is before t. Comparisons are made with
// two's complement subtraction, exactly as the paper prescribes:
//
//	if ((int)(b - a) > 0)  /* time b is later than time a */
//
// Time values are specific to a particular audio device; there is no
// absolute reference. Callers must not compare times separated by close to
// 2^31 samples (about 12 hours at 48 kHz, 3 days at 8 kHz).
package atime

// ATime is an audio device time in sample ticks. It wraps modulo 2^32.
type ATime uint32

// HalfRange is the boundary between "past" and "future" relative to a
// reference time: t+HalfRange is the division point q in the paper's
// circular diagram.
const HalfRange = 1 << 31

// After reports whether b is strictly later than a in wrapped time.
func After(b, a ATime) bool { return int32(b-a) > 0 }

// Before reports whether b is strictly earlier than a in wrapped time.
func Before(b, a ATime) bool { return int32(b-a) < 0 }

// Sub returns the signed distance b-a in sample ticks. The result is
// positive when b is later than a and negative when earlier.
func Sub(b, a ATime) int32 { return int32(b - a) }

// Add returns t advanced by n ticks; n may be negative.
func Add(t ATime, n int) ATime { return t + ATime(int32(n)) }

// Min returns the earlier of a and b.
func Min(a, b ATime) ATime {
	if Before(a, b) {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b ATime) ATime {
	if After(a, b) {
		return a
	}
	return b
}

// Clamp limits t to the inclusive wrapped interval [lo, hi]. It assumes
// lo is not after hi.
func Clamp(t, lo, hi ATime) ATime {
	if Before(t, lo) {
		return lo
	}
	if After(t, hi) {
		return hi
	}
	return t
}

// SecondsToTicks converts a duration in seconds to sample ticks at the
// given sampling rate, rounding toward zero.
func SecondsToTicks(sec float64, rate int) int {
	return int(sec * float64(rate))
}

// TicksToSeconds converts a tick count to seconds at the given rate.
func TicksToSeconds(ticks int, rate int) float64 {
	return float64(ticks) / float64(rate)
}

// Correspondence relates two device clocks, following the paper's formula
//
//	t_b = T_b + R_b * ((t_a - T_a) / R_a)
//
// where (Ta, Tb) are values of clocks A and B observed "at the same time"
// and Ra, Rb are their rates in ticks per second. The relationship is
// approximate: crystal rates are never known exactly, but the conversion is
// good enough for scheduling across devices.
type Correspondence struct {
	Ta, Tb ATime   // simultaneous observations of the two clocks
	Ra, Rb float64 // clock rates in ticks/second
}

// AtoB converts a time on clock A to the corresponding time on clock B.
func (c Correspondence) AtoB(ta ATime) ATime {
	dt := float64(Sub(ta, c.Ta)) / c.Ra
	return Add(c.Tb, int(dt*c.Rb))
}

// BtoA converts a time on clock B to the corresponding time on clock A.
func (c Correspondence) BtoA(tb ATime) ATime {
	dt := float64(Sub(tb, c.Tb)) / c.Rb
	return Add(c.Ta, int(dt*c.Ra))
}
