package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	n := 16
	re := make([]float64, n)
	im := make([]float64, n)
	re[0] = 1
	FFT(re, im, false)
	for k := 0; k < n; k++ {
		if math.Abs(re[k]-1) > 1e-12 || math.Abs(im[k]) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = (%g, %g), want (1, 0)", k, re[k], im[k])
		}
	}
}

func TestFFTSineBin(t *testing.T) {
	// A sine at exactly bin 5 concentrates all energy there.
	n := 64
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = math.Sin(2 * math.Pi * 5 * float64(i) / float64(n))
	}
	FFT(re, im, false)
	mag := func(k int) float64 { return math.Hypot(re[k], im[k]) }
	if mag(5) < float64(n)/2-1e-9 {
		t.Errorf("bin 5 magnitude = %g, want %g", mag(5), float64(n)/2)
	}
	for k := 0; k <= n/2; k++ {
		if k == 5 {
			continue
		}
		if mag(k) > 1e-9 {
			t.Errorf("leakage at bin %d: %g", k, mag(k))
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := 128
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		s := seed
		for i := range re {
			s = s*6364136223846793005 + 1442695040888963407
			orig[i] = float64(int16(s >> 48))
			re[i] = orig[i]
		}
		FFT(re, im, false)
		FFT(re, im, true)
		for i := range re {
			if math.Abs(re[i]/float64(n)-orig[i]) > 1e-6*math.Max(1, math.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// Sum of |x|^2 equals sum of |X|^2 / N.
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.1*float64(i)) + 0.5*math.Cos(0.37*float64(i))
	}
	var timeE float64
	for _, v := range x {
		timeE += v * v
	}
	re := append([]float64(nil), x...)
	im := make([]float64, n)
	FFT(re, im, false)
	var freqE float64
	for k := range re {
		freqE += re[k]*re[k] + im[k]*im[k]
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE) > 1e-6*timeE {
		t.Errorf("Parseval: time %g vs freq %g", timeE, freqE)
	}
}

func TestFFTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two FFT did not panic")
		}
	}()
	FFT(make([]float64, 12), make([]float64, 12), false)
}

func TestPowerSpectrum(t *testing.T) {
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	ps := PowerSpectrum(x)
	if len(ps) != n/2+1 {
		t.Fatalf("len = %d, want %d", len(ps), n/2+1)
	}
	best := 0
	for k := range ps {
		if ps[k] > ps[best] {
			best = k
		}
	}
	if best != 8 {
		t.Errorf("peak bin = %d, want 8", best)
	}
}

func TestWindows(t *testing.T) {
	for _, w := range []Window{Hamming, Hanning, Triangular} {
		x := make([]float64, 33)
		for i := range x {
			x[i] = 1
		}
		w.Apply(x)
		mid := x[16]
		if mid < 0.9 {
			t.Errorf("window %d center = %g, want near 1", w, mid)
		}
		if x[0] > 0.1 || x[32] > 0.1 {
			t.Errorf("window %d edges = %g, %g, want near 0", w, x[0], x[32])
		}
		// Symmetry.
		for i := 0; i < 16; i++ {
			if math.Abs(x[i]-x[32-i]) > 1e-12 {
				t.Errorf("window %d asymmetric at %d", w, i)
			}
		}
	}
	// Rectangular leaves data alone.
	x := []float64{1, 2, 3}
	Rectangular.Apply(x)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("rectangular window modified data")
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	n := 256
	rate := 8000.0
	freq := rate * 10 / float64(n) // exactly bin 10
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	g := Goertzel(x, freq, rate)
	ps := PowerSpectrum(x)
	if math.Abs(g-ps[10]) > 1e-6*ps[10] {
		t.Errorf("Goertzel = %g, FFT bin = %g", g, ps[10])
	}
}

func TestGoertzelSelectivity(t *testing.T) {
	n := 205
	rate := 8000.0
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 697 * float64(i) / rate)
	}
	at := Goertzel(x, 697, rate)
	off := Goertzel(x, 1209, rate)
	if at < 100*off {
		t.Errorf("Goertzel selectivity: on=%g off=%g", at, off)
	}
}

func TestPowerDBm(t *testing.T) {
	// A full-scale sine is +3.16 dBm (the digital clipping level).
	n := 8000
	x := make([]int16, n)
	for i := range x {
		x[i] = int16(32124 * math.Sin(2*math.Pi*440*float64(i)/8000))
	}
	p := PowerDBm(x)
	if math.Abs(p-3.16) > 0.1 {
		t.Errorf("full-scale sine power = %g dBm, want ~3.16", p)
	}
	// Silence is -inf.
	if !math.IsInf(PowerDBm(make([]int16, 100)), -1) {
		t.Error("silence power not -inf")
	}
	if !math.IsInf(PowerDBm(nil), -1) {
		t.Error("empty power not -inf")
	}
}

func TestAmplitudeForDBm(t *testing.T) {
	// Round trip: a sine at the computed amplitude measures the target dBm.
	for _, dbm := range []float64{0, -13, -30, 3.16} {
		amp := AmplitudeForDBm(dbm)
		n := 8000
		x := make([]int16, n)
		for i := range x {
			x[i] = int16(amp * math.Sin(2*math.Pi*1000*float64(i)/8000))
		}
		p := PowerDBm(x)
		if math.Abs(p-dbm) > 0.1 {
			t.Errorf("dbm %g: measured %g", dbm, p)
		}
	}
}

func TestDTMFFreqs(t *testing.T) {
	lo, hi, ok := DTMFFreqs('5')
	if !ok || lo != 770 || hi != 1336 {
		t.Errorf("DTMFFreqs('5') = %g, %g, %v", lo, hi, ok)
	}
	lo, hi, ok = DTMFFreqs('#')
	if !ok || lo != 941 || hi != 1477 {
		t.Errorf("DTMFFreqs('#') = %g, %g, %v", lo, hi, ok)
	}
	if _, _, ok := DTMFFreqs('x'); ok {
		t.Error("DTMFFreqs('x') ok = true")
	}
}

func synthDTMF(digit byte, rate, n int, amp float64) []int16 {
	lo, hi, _ := DTMFFreqs(digit)
	out := make([]int16, n)
	for i := range out {
		v := amp * (math.Sin(2*math.Pi*lo*float64(i)/float64(rate)) +
			0.8*math.Sin(2*math.Pi*hi*float64(i)/float64(rate)))
		out[i] = int16(v)
	}
	return out
}

func TestDTMFDetectAllDigits(t *testing.T) {
	rate := 8000
	for _, digit := range []byte("0123456789*#ABCD") {
		d := NewDTMFDetector(rate)
		var got []byte
		// 50 ms tone, 50 ms silence, as in Table 7.
		got = append(got, d.Feed(synthDTMF(digit, rate, 400, 8000))...)
		got = append(got, d.Feed(make([]int16, 400))...)
		if len(got) != 1 || got[0] != digit {
			t.Errorf("digit %c: detected %q", digit, got)
		}
	}
}

func TestDTMFRejectsSingleTone(t *testing.T) {
	rate := 8000
	d := NewDTMFDetector(rate)
	x := make([]int16, 800)
	for i := range x {
		x[i] = int16(8000 * math.Sin(2*math.Pi*697*float64(i)/float64(rate)))
	}
	if got := d.Feed(x); len(got) != 0 {
		t.Errorf("single tone decoded as %q", got)
	}
}

func TestDTMFRejectsSpeechlikeNoise(t *testing.T) {
	rate := 8000
	d := NewDTMFDetector(rate)
	x := make([]int16, 1600)
	s := int64(42)
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = int16(s >> 50)
	}
	if got := d.Feed(x); len(got) != 0 {
		t.Errorf("noise decoded as %q", got)
	}
}

func TestDTMFHeldToneReportsOnce(t *testing.T) {
	rate := 8000
	d := NewDTMFDetector(rate)
	got := d.Feed(synthDTMF('7', rate, 4000, 8000)) // 500 ms held
	if len(got) != 1 || got[0] != '7' {
		t.Errorf("held tone: %q", got)
	}
}

func TestDTMFSequence(t *testing.T) {
	rate := 8000
	d := NewDTMFDetector(rate)
	var got []byte
	for _, digit := range []byte("18005551212") {
		got = append(got, d.Feed(synthDTMF(digit, rate, 400, 8000))...)
		got = append(got, d.Feed(make([]int16, 400))...)
	}
	if string(got) != "18005551212" {
		t.Errorf("sequence decoded as %q", got)
	}
}
