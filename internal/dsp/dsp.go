// Package dsp provides the signal-processing primitives AudioFile's
// clients and telephony simulation need: an iterative radix-2 FFT, window
// functions, the Goertzel single-bin DFT used for DTMF detection, and
// block power measurement relative to the CCITT digital milliwatt.
package dsp

import "math"

// FFT computes the in-place radix-2 decimation-in-time FFT of re/im.
// len(re) == len(im) must be a power of two. With inverse set, it computes
// the unscaled inverse transform (callers divide by N).
func FFT(re, im []float64, inverse bool) {
	n := len(re)
	if n != len(im) {
		panic("dsp: FFT length mismatch")
	}
	if n == 0 || n&(n-1) != 0 {
		panic("dsp: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		for base := 0; base < n; base += size {
			for k := 0; k < half; k++ {
				ang := step * float64(k)
				wr, wi := math.Cos(ang), math.Sin(ang)
				i := base + k
				j := i + half
				tr := wr*re[j] - wi*im[j]
				ti := wr*im[j] + wi*re[j]
				re[j] = re[i] - tr
				im[j] = im[i] - ti
				re[i] += tr
				im[i] += ti
			}
		}
	}
}

// PowerSpectrum returns |X_k|^2 for k = 0..N/2 of the real signal x.
// len(x) must be a power of two.
func PowerSpectrum(x []float64) []float64 {
	n := len(x)
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x)
	FFT(re, im, false)
	out := make([]float64, n/2+1)
	for k := range out {
		out[k] = re[k]*re[k] + im[k]*im[k]
	}
	return out
}

// Window identifies a window function, as selectable in the afft client.
type Window int

const (
	Rectangular Window = iota // no windowing
	Hamming
	Hanning
	Triangular
)

// Apply multiplies x by the window function in place.
func (w Window) Apply(x []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	switch w {
	case Hamming:
		for i := range x {
			x[i] *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		}
	case Hanning:
		for i := range x {
			x[i] *= 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		}
	case Triangular:
		for i := range x {
			x[i] *= 1 - math.Abs(float64(2*i-(n-1))/float64(n-1))
		}
	}
}

// Goertzel measures the squared magnitude of the DFT bin nearest freq in
// the block x sampled at rate Hz. It is the classic single-bin detector
// used for DTMF decoding.
func Goertzel(x []float64, freq, rate float64) float64 {
	k := math.Round(float64(len(x)) * freq / rate)
	w := 2 * math.Pi * k / float64(len(x))
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}

// Digital milliwatt reference. The paper's power levels are in dB relative
// to the digital milliwatt, which is 3.16 dB below the digital clipping
// level (full-scale sine). For a full-scale sine of peak A, mean square is
// A^2/2; the milliwatt reference is that divided by 10^0.316.
const clipPeak = 32124 // µ-law digital clipping level in the 16-bit domain

var dmwRef = (float64(clipPeak) * float64(clipPeak) / 2) / math.Pow(10, 0.316)

// PowerDBm returns the mean power of the linear block x in dBm relative to
// the digital milliwatt. An all-silence block returns -inf.
func PowerDBm(x []int16) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, v := range x {
		f := float64(v)
		sum += f * f
	}
	ms := sum / float64(len(x))
	if ms == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ms/dmwRef)
}

// AmplitudeForDBm returns the peak amplitude of a sine wave whose power is
// the given level in dBm re the digital milliwatt.
func AmplitudeForDBm(dbm float64) float64 {
	ms := dmwRef * math.Pow(10, dbm/10)
	return math.Sqrt(2 * ms)
}

// Sin2Pi returns sin(2πx).
func Sin2Pi(x float64) float64 { return math.Sin(2 * math.Pi * x) }
