package dsp

import "math"

// DTMF detection. The LoFi hardware had a Touch-Tone decoding circuit; the
// simulated telephone line reproduces it in software with Goertzel
// detectors over short blocks of the outgoing (or incoming) audio stream.

// DTMF row and column frequencies in Hz (Table 7).
var (
	DTMFRows = [4]float64{697, 770, 852, 941}
	DTMFCols = [4]float64{1209, 1336, 1477, 1633}
)

// dtmfKeys[row][col] is the digit for a row/column frequency pair.
var dtmfKeys = [4][4]byte{
	{'1', '2', '3', 'A'},
	{'4', '5', '6', 'B'},
	{'7', '8', '9', 'C'},
	{'*', '0', '#', 'D'},
}

// DTMFFreqs returns the low and high tone frequencies for a digit, and
// whether the digit is valid. Valid digits are 0-9, *, #, A-D.
func DTMFFreqs(digit byte) (low, high float64, ok bool) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if dtmfKeys[r][c] == digit {
				return DTMFRows[r], DTMFCols[c], true
			}
		}
	}
	return 0, 0, false
}

// DTMFDetector decodes Touch-Tone digits from a stream of linear samples.
// Feed it blocks with Feed; decoded digits (with at least one block of
// inter-digit silence, so held tones report once) come back from Feed.
type DTMFDetector struct {
	rate      int
	block     []float64
	n         int
	lastDigit byte // currently detected digit, 0 if none
}

// DTMFBlock is the detector block size in samples; at 8 kHz it is ~13 ms,
// short enough to catch 50 ms Touch-Tone bursts.
const DTMFBlock = 105

// NewDTMFDetector returns a detector for the given sampling rate.
func NewDTMFDetector(rate int) *DTMFDetector {
	return &DTMFDetector{rate: rate, block: make([]float64, DTMFBlock)}
}

// Feed pushes linear samples into the detector and returns any digits
// whose onset was detected in this data.
func (d *DTMFDetector) Feed(samples []int16) []byte {
	var digits []byte
	for _, s := range samples {
		d.block[d.n] = float64(s)
		d.n++
		if d.n == len(d.block) {
			d.n = 0
			digit := d.classify()
			if digit != 0 && digit != d.lastDigit {
				digits = append(digits, digit)
			}
			d.lastDigit = digit
		}
	}
	return digits
}

// classify examines one block and returns the DTMF digit present, or 0.
func (d *DTMFDetector) classify() byte {
	rate := float64(d.rate)
	var rowPow, colPow [4]float64
	var total float64
	for i := 0; i < 4; i++ {
		rowPow[i] = Goertzel(d.block, DTMFRows[i], rate)
		colPow[i] = Goertzel(d.block, DTMFCols[i], rate)
		total += rowPow[i] + colPow[i]
	}
	ri, ci := maxIndex(rowPow), maxIndex(colPow)
	rp, cp := rowPow[ri], colPow[ci]
	// Both tones must dominate: together they should carry nearly all the
	// energy in the eight detector bins, and each must be well above the
	// block noise floor.
	if total == 0 || (rp+cp)/total < 0.85 {
		return 0
	}
	// Absolute threshold: reject near-silence. A -30 dBm tone at 8 kHz has
	// block energy far above this.
	if rp < 1e6 || cp < 1e6 {
		return 0
	}
	// Twist check: the two tones must be within ~8 dB of each other.
	ratio := rp / cp
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > math.Pow(10, 0.8) {
		return 0
	}
	return dtmfKeys[ri][ci]
}

func maxIndex(p [4]float64) int {
	best := 0
	for i := 1; i < 4; i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}
