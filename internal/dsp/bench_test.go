package dsp

import (
	"math"
	"testing"
)

// Benchmarks for the signal-processing substrate behind afft (real-time
// spectrogram budget) and the telephone line's DTMF decoder.

func benchSignal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.05*float64(i)) + 0.3*math.Sin(0.31*float64(i))
	}
	return x
}

func BenchmarkFFT256(b *testing.B)  { benchFFT(b, 256) }
func BenchmarkFFT1024(b *testing.B) { benchFFT(b, 1024) }

func benchFFT(b *testing.B, n int) {
	x := benchSignal(n)
	re := make([]float64, n)
	im := make([]float64, n)
	b.SetBytes(int64(8 * n))
	for i := 0; i < b.N; i++ {
		copy(re, x)
		for j := range im {
			im[j] = 0
		}
		FFT(re, im, false)
	}
}

func BenchmarkGoertzel(b *testing.B) {
	x := benchSignal(205)
	b.SetBytes(8 * 205)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Goertzel(x, 697, 8000)
	}
	_ = sink
}

func BenchmarkDTMFDetectorFeed(b *testing.B) {
	// One second of audio through the line decoder: the per-update cost
	// the simulated telephone hardware pays.
	d := NewDTMFDetector(8000)
	x := make([]int16, 8000)
	for i := range x {
		x[i] = int16(8000 * math.Sin(2*math.Pi*697*float64(i)/8000))
	}
	b.SetBytes(8000)
	for i := 0; i < b.N; i++ {
		d.Feed(x)
	}
}

func BenchmarkHammingWindow(b *testing.B) {
	x := benchSignal(512)
	b.SetBytes(8 * 512)
	for i := 0; i < b.N; i++ {
		Hamming.Apply(x)
	}
}

func BenchmarkPowerDBm(b *testing.B) {
	x := make([]int16, 8000)
	for i := range x {
		x[i] = int16(i%4000 - 2000)
	}
	b.SetBytes(16000)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += PowerDBm(x)
	}
	_ = sink
}
