package timerwheel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect returns a fire func that records fire times on ch.
func collect(ch chan time.Time) func(time.Time, time.Duration) {
	return func(now time.Time, _ time.Duration) { ch <- now }
}

func TestTimerFiresOnceNeverEarly(t *testing.T) {
	w := New(Config{Shards: 2, Slots: 64, Granularity: time.Millisecond})
	defer w.Stop()
	ch := make(chan time.Time, 1)
	tm := w.NewTimer(0, collect(ch))
	start := time.Now()
	deadline := start.Add(20 * time.Millisecond)
	tm.Arm(deadline)
	select {
	case fired := <-ch:
		// Rounded up to the slot boundary: never early (allow scheduler
		// noise of one granule on the late side plus CI jitter).
		if fired.Before(deadline.Add(-time.Millisecond)) {
			t.Fatalf("fired %v before deadline %v", fired, deadline)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	select {
	case <-ch:
		t.Fatal("timer fired twice")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestArmEarlierPromotes(t *testing.T) {
	w := New(Config{Shards: 1, Slots: 64, Granularity: time.Millisecond})
	defer w.Stop()
	ch := make(chan time.Time, 1)
	tm := w.NewTimer(0, collect(ch))
	// Park far in the future (in the overflow heap), then promote to
	// near-now; the shard must wake for the new deadline.
	tm.Arm(time.Now().Add(10 * time.Second))
	tm.Arm(time.Now().Add(10 * time.Millisecond))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("promoted timer did not fire at the earlier deadline")
	}
}

func TestStopCancels(t *testing.T) {
	w := New(Config{Shards: 1, Slots: 64, Granularity: time.Millisecond})
	defer w.Stop()
	var fired atomic.Int32
	tm := w.NewTimer(0, func(time.Time, time.Duration) { fired.Add(1) })
	tm.Arm(time.Now().Add(20 * time.Millisecond))
	tm.Stop()
	time.Sleep(60 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("stopped timer fired %d times", n)
	}
	// A stopped timer can be re-armed.
	tm.Arm(time.Now().Add(5 * time.Millisecond))
	time.Sleep(60 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("re-armed timer fired %d times, want 1", n)
	}
}

// TestOverflowCascade arms timers beyond the ring horizon and checks
// they cascade into the ring and fire at (not before) their deadlines.
func TestOverflowCascade(t *testing.T) {
	// 8 slots × 1ms = 8ms horizon; 50ms deadlines start in overflow.
	w := New(Config{Shards: 1, Slots: 8, Granularity: time.Millisecond})
	defer w.Stop()
	const n = 32
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	var early atomic.Int32
	for i := 0; i < n; i++ {
		d := time.Duration(20+i) * time.Millisecond
		deadline := start.Add(d)
		tm := w.NewTimer(i, func(now time.Time, _ time.Duration) {
			if now.Before(deadline.Add(-time.Millisecond)) {
				early.Add(1)
			}
			wg.Done()
		})
		tm.Arm(deadline)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("overflow timers did not all fire")
	}
	if e := early.Load(); e != 0 {
		t.Fatalf("%d overflow timers fired early", e)
	}
}

// TestBatching arms many timers on one shard at the same deadline and
// checks they arrive as few large batches, not singletons.
func TestBatching(t *testing.T) {
	var batches []int
	var mu sync.Mutex
	w := New(Config{Shards: 1, Slots: 64, Granularity: 5 * time.Millisecond,
		OnBatch: func(n int) { mu.Lock(); batches = append(batches, n); mu.Unlock() }})
	defer w.Stop()
	const n = 100
	var wg sync.WaitGroup
	wg.Add(n)
	deadline := time.Now().Add(30 * time.Millisecond)
	for i := 0; i < n; i++ {
		tm := w.NewTimer(0, func(time.Time, time.Duration) { wg.Done() })
		tm.Arm(deadline)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	max := 0
	for _, b := range batches {
		if b > max {
			max = b
		}
	}
	if max < n/2 {
		t.Fatalf("largest batch %d of %d same-deadline timers; wheel is not batching", max, n)
	}
}

// TestChurnRace hammers Arm/Stop from many goroutines while the wheel
// fires, for the race detector.
func TestChurnRace(t *testing.T) {
	w := New(Config{Shards: 4, Slots: 32, Granularity: time.Millisecond})
	defer w.Stop()
	var fired atomic.Int64
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tm := w.NewTimer(g, func(time.Time, time.Duration) { fired.Add(1) })
			for i := 0; i < 300; i++ {
				tm.Arm(time.Now().Add(time.Duration(rng.Intn(4)) * time.Millisecond))
				if rng.Intn(4) == 0 {
					tm.Stop()
				}
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	if fired.Load() == 0 {
		t.Fatal("no timers fired under churn")
	}
}

// TestRearmFromFire re-arms a timer from its own fire callback — the
// periodic-update shape — and checks the cadence holds.
func TestRearmFromFire(t *testing.T) {
	w := New(Config{Shards: 1, Slots: 64, Granularity: time.Millisecond})
	defer w.Stop()
	done := make(chan struct{})
	var n int
	var tm *Timer
	tm = w.NewTimer(0, func(now time.Time, _ time.Duration) {
		n++
		if n == 10 {
			close(done)
			return
		}
		tm.Arm(now.Add(2 * time.Millisecond))
	})
	tm.Arm(time.Now().Add(2 * time.Millisecond))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("periodic timer stalled after %d fires", n)
	}
}
