// Package timerwheel implements a sharded hierarchical timer wheel: the
// periodic-update clockwork for a server with thousands of devices.
//
// The problem it replaces: one timer goroutine per audio device. At four
// devices that is idiomatic Go; at four thousand PBX lines it is four
// thousand goroutines waking independently, each paying its own
// time.Now(), timer re-arm, and scheduler round trip. The wheel inverts
// the structure: timers are passive entries owned by a small fixed set
// of shards, each shard is one goroutine that sleeps until its earliest
// deadline and fires every entry due at that tick in one batch, reading
// the clock once.
//
// Hierarchy: each shard keeps a ring of coarse slots (the wheel proper)
// covering a near-future horizon, plus an overflow heap for deadlines
// beyond it. Arming within the horizon is O(1) list insertion into the
// deadline's slot; far deadlines sit in the heap and are promoted into
// the ring as the cursor approaches — the classic two-level cascade.
// Entries in one slot share a deadline bucket and fire together, which
// is exactly the batching the update plane wants: every device due in
// the same granule is handed to the worker pool as one tick.
//
// Timers never fire early: a deadline is rounded *up* to the next slot
// boundary, so a timer fires at most one granularity late (plus tick
// lag under load, which the owner can observe via the overdue argument).
//
// Lock ordering: Arm/Stop take only the owning shard's lock and are
// safe to call while holding any caller-side lock; fire callbacks run
// on the shard goroutine with no wheel locks held, so a callback may
// acquire caller-side locks or re-arm freely, but must not block for
// long — park handoff to a worker pool is the intended shape.
package timerwheel

import (
	"runtime"
	"sync"
	"time"
)

// Config sizes a Wheel. Zero values select defaults.
type Config struct {
	// Shards is the number of independent wheel shards (one goroutine
	// each). Default: GOMAXPROCS/4, clamped to [1, 8].
	Shards int
	// Slots is the ring size per shard. With Granularity it sets the
	// horizon (Slots × Granularity) beyond which entries overflow to
	// the heap. Default 512.
	Slots int
	// Granularity is the slot width: deadlines are coalesced to this
	// quantum and fire at most one granule late. Default 1ms — fine
	// enough for the precise parked-request wake-ups the dispatcher
	// schedules, coarse enough that a thousand devices on the same
	// update cadence land in a handful of batches.
	Granularity time.Duration

	// OnBatch, if set, observes the size of every non-empty fire batch
	// (entries fired by one shard tick). Called on shard goroutines.
	OnBatch func(n int)

	// FireBatch, if set, replaces the per-timer fire loop: one shard tick
	// hands the whole due batch to this hook in one call, on the shard
	// goroutine, with no wheel locks held. The hook owns delivering each
	// entry — typically dispatching homogeneous timers (identified via
	// Timer.Payload) as one group and calling Timer.Fire for the rest.
	// The slice is shard-owned scratch: the hook must not retain it.
	FireBatch func(now time.Time, due []*Timer)
}

// A Timer is one schedulable entry. Create with Wheel.NewTimer, then
// Arm/Stop freely from any goroutine. The fire callback runs on the
// owning shard's goroutine.
type Timer struct {
	fire func(now time.Time, overdue time.Duration)
	sh   *shard

	// Payload is an opaque owner tag a FireBatch hook can use to sort due
	// entries into groups (the update scheduler stores the owning engine
	// here). Set it before the first Arm; the wheel never touches it.
	Payload any

	// Guarded by sh.mu.
	when    int64  // deadline, ns since wheel epoch
	dueWhen int64  // when as of collection into the due batch (see Lateness)
	slotNum int64  // absolute slot number while in the ring; -1 otherwise
	heapIdx int    // index in the overflow heap; -1 otherwise
	next    *Timer // ring-slot list links
	prev    *Timer
}

// Wheel is a set of shards sharing an epoch. Timers are assigned to
// shards by key at creation and never migrate.
type Wheel struct {
	epoch   time.Time
	granule int64 // ns
	shards  []*shard
	done      chan struct{}
	wg        sync.WaitGroup
	onBatch   func(n int)
	fireBatch func(now time.Time, due []*Timer)
}

type shard struct {
	w *Wheel

	mu       sync.Mutex
	slots    []*Timer // slot index -> head of that slot's timer list
	cursor   int64    // last processed absolute slot number
	ringLen  int      // timers resident in the ring
	overflow []*Timer // min-heap on when, for deadlines past the horizon
	// nextWake is the absolute ns deadline the shard goroutine is
	// currently sleeping toward (maxInt64 = idle). Armers poke the
	// goroutine only when they beat it, so re-arms to later deadlines
	// cost one lock and no wakeup.
	nextWake int64

	wake chan struct{}
	due  []*Timer // scratch: collected under mu, fired outside it
}

const maxInt64 = int64(1<<63 - 1)

// New builds and starts a wheel.
func New(cfg Config) *Wheel {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0) / 4
		if cfg.Shards < 1 {
			cfg.Shards = 1
		}
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 512
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = time.Millisecond
	}
	w := &Wheel{
		epoch:     time.Now(),
		granule:   cfg.Granularity.Nanoseconds(),
		done:      make(chan struct{}),
		onBatch:   cfg.OnBatch,
		fireBatch: cfg.FireBatch,
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			w:        w,
			slots:    make([]*Timer, cfg.Slots),
			nextWake: maxInt64,
			wake:     make(chan struct{}, 1),
		}
		w.shards = append(w.shards, sh)
		w.wg.Add(1)
		go sh.run()
	}
	return w
}

// Shards reports the shard count (the wheel's goroutine inventory).
func (w *Wheel) Shards() int { return len(w.shards) }

// Stop terminates the shard goroutines. Armed timers are abandoned;
// no fire callback runs after Stop returns.
func (w *Wheel) Stop() {
	close(w.done)
	w.wg.Wait()
}

// NewTimer creates an unarmed timer on the shard selected by key
// (stable modulo assignment, so related timers can share or avoid a
// shard). fire runs on the shard goroutine each time the timer
// expires; overdue is how far past the deadline the tick ran.
func (w *Wheel) NewTimer(key int, fire func(now time.Time, overdue time.Duration)) *Timer {
	if key < 0 {
		key = -key
	}
	return &Timer{
		fire:    fire,
		sh:      w.shards[key%len(w.shards)],
		slotNum: -1,
		heapIdx: -1,
	}
}

// Arm schedules (or reschedules) the timer for when. An earlier
// deadline promotes the timer — the wheel wakes the shard if the new
// deadline beats the one it is sleeping toward; a later deadline just
// moves the entry. Arming an already-fired timer re-registers it.
func (t *Timer) Arm(when time.Time) {
	sh := t.sh
	ns := when.Sub(sh.w.epoch).Nanoseconds()
	sh.mu.Lock()
	sh.removeLocked(t)
	t.when = ns
	sh.insertLocked(t)
	poke := ns < sh.nextWake
	sh.mu.Unlock()
	if poke {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// Lateness reports how far past the timer's armed deadline now is. It
// reads the deadline snapshot taken under the shard lock when the entry
// was collected into the due batch, so it is safe from a FireBatch hook
// even if the owner concurrently re-arms the timer (an addTaskLocked
// promotion racing the fire), and it reports the deadline this fire is
// actually for, not the re-armed one.
func (t *Timer) Lateness(now time.Time) time.Duration {
	return time.Duration(now.Sub(t.sh.w.epoch).Nanoseconds() - t.dueWhen)
}

// Fire invokes the timer's callback as the wheel would have, with the
// overdue argument derived from the armed deadline. A FireBatch hook
// calls this for due entries it does not handle as a group.
func (t *Timer) Fire(now time.Time) {
	t.fire(now, t.Lateness(now))
}

// Stop cancels the timer if armed. A concurrent fire that already
// collected the timer may still run; owners that care use their own
// state (the scheduler's dedupe flag) to discard stale fires.
func (t *Timer) Stop() {
	t.sh.mu.Lock()
	t.sh.removeLocked(t)
	t.sh.mu.Unlock()
}

// --- shard internals (all *Locked methods require sh.mu) ---

// insertLocked places t (with t.when set) into the ring if its slot is
// within the horizon, else into the overflow heap. Deadlines are
// rounded up to the next slot boundary so timers never fire early.
func (sh *shard) insertLocked(t *Timer) {
	g := sh.w.granule
	sn := (t.when + g - 1) / g
	if sn <= sh.cursor {
		sn = sh.cursor + 1 // already due: next tick fires it
	}
	if sn-sh.cursor < int64(len(sh.slots)) {
		idx := sn % int64(len(sh.slots))
		t.slotNum = sn
		t.prev = nil
		t.next = sh.slots[idx]
		if t.next != nil {
			t.next.prev = t
		}
		sh.slots[idx] = t
		sh.ringLen++
	} else {
		sh.heapPushLocked(t)
	}
}

// removeLocked detaches t from the ring or heap if armed; idempotent.
func (sh *shard) removeLocked(t *Timer) {
	if t.slotNum >= 0 {
		if t.prev != nil {
			t.prev.next = t.next
		} else {
			sh.slots[t.slotNum%int64(len(sh.slots))] = t.next
		}
		if t.next != nil {
			t.next.prev = t.prev
		}
		t.next, t.prev = nil, nil
		t.slotNum = -1
		sh.ringLen--
	} else if t.heapIdx >= 0 {
		sh.heapRemoveLocked(t.heapIdx)
	}
}

// advanceLocked moves the cursor to cover now, collecting every due
// timer into sh.due (ring slots in deadline order, then newly due
// overflow entries) and cascading overflow entries that entered the
// horizon into the ring.
func (sh *shard) advanceLocked(now int64) {
	target := now / sh.w.granule
	for sh.cursor < target {
		sh.cursor++
		if sh.ringLen == 0 && len(sh.overflow) == 0 {
			sh.cursor = target // nothing armed: skip ahead
			break
		}
		idx := sh.cursor % int64(len(sh.slots))
		for t := sh.slots[idx]; t != nil; {
			next := t.next
			// Invariant: a ring slot holds exactly one absolute slot
			// number (inserts are bounded to the horizon), so the whole
			// list is due.
			t.next, t.prev = nil, nil
			t.slotNum = -1
			sh.ringLen--
			t.dueWhen = t.when
			sh.due = append(sh.due, t)
			t = next
		}
		sh.slots[idx] = nil
	}
	// Cascade: overflow entries now inside the horizon drop into the
	// ring; entries already due join the batch directly.
	horizon := sh.cursor + int64(len(sh.slots))
	for len(sh.overflow) > 0 {
		g := sh.w.granule
		top := sh.overflow[0]
		sn := (top.when + g - 1) / g
		if sn >= horizon {
			break
		}
		sh.heapRemoveLocked(0)
		if sn <= sh.cursor {
			top.dueWhen = top.when
			sh.due = append(sh.due, top)
		} else {
			sh.insertLocked(top)
		}
	}
}

// nextDeadlineLocked returns the earliest armed deadline in ns, or
// maxInt64 when the shard is idle.
func (sh *shard) nextDeadlineLocked() int64 {
	best := maxInt64
	if len(sh.overflow) > 0 {
		best = sh.overflow[0].when
	}
	if sh.ringLen > 0 {
		n := int64(len(sh.slots))
		for sn := sh.cursor + 1; sn <= sh.cursor+n; sn++ {
			if t := sh.slots[sn%n]; t != nil {
				// Slot deadline = slot boundary; entries in it were
				// rounded up to sn, so the slot's fire time bounds them.
				if d := sn * sh.w.granule; d < best {
					best = d
				}
				break
			}
		}
	}
	return best
}

// run is the shard goroutine: sleep to the earliest deadline, fire the
// due batch, repeat. One time.Now() read per tick.
func (sh *shard) run() {
	defer sh.w.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Since(sh.w.epoch).Nanoseconds()
		sh.mu.Lock()
		sh.advanceLocked(now)
		next := sh.nextDeadlineLocked()
		sh.nextWake = next
		due := sh.due
		sh.mu.Unlock()

		if len(due) > 0 {
			if ob := sh.w.onBatch; ob != nil {
				ob(len(due))
			}
			nowT := sh.w.epoch.Add(time.Duration(now))
			if fb := sh.w.fireBatch; fb != nil {
				fb(nowT, due)
				for i := range due {
					due[i] = nil
				}
			} else {
				for i, t := range due {
					t.fire(nowT, time.Duration(now-t.dueWhen))
					due[i] = nil
				}
			}
			sh.due = due[:0]
			// Firing may have re-armed into the past; loop to collect.
			continue
		}

		d := time.Hour
		if next != maxInt64 {
			d = time.Duration(next - now)
			if d < 0 {
				d = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-sh.wake:
		case <-sh.w.done:
			return
		}
	}
}

// --- overflow heap (hand-rolled to keep Arm allocation-free) ---

func (sh *shard) heapPushLocked(t *Timer) {
	sh.overflow = append(sh.overflow, t)
	i := len(sh.overflow) - 1
	t.heapIdx = i
	sh.heapUpLocked(i)
}

func (sh *shard) heapRemoveLocked(i int) {
	h := sh.overflow
	n := len(h) - 1
	h[i].heapIdx = -1
	if i != n {
		h[i] = h[n]
		h[i].heapIdx = i
	}
	h[n] = nil
	sh.overflow = h[:n]
	if i < n {
		sh.heapDownLocked(i)
		sh.heapUpLocked(i)
	}
}

func (sh *shard) heapUpLocked(i int) {
	h := sh.overflow
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].when <= h[i].when {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		h[parent].heapIdx = parent
		h[i].heapIdx = i
		i = parent
	}
}

func (sh *shard) heapDownLocked(i int) {
	h := sh.overflow
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1].when < h[c].when {
			c++
		}
		if h[i].when <= h[c].when {
			break
		}
		h[i], h[c] = h[c], h[i]
		h[i].heapIdx = i
		h[c].heapIdx = c
		i = c
	}
}
