package e2etest

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/sampleconv"
	"audiofile/internal/sndfile"
	"audiofile/internal/vdev"
)

func init() {
	contribBins = []string{"audiofile/cmd/radio", "audiofile/cmd/abiff"}
}

var contribBins []string

func buildContrib(t *testing.T) {
	t.Helper()
	args := append([]string{"build", "-o", binDir + "/"}, contribBins...)
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("building contrib clients: %v\n%s", err, out)
	}
}

func freeUDPPort(t *testing.T) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()
	return addr
}

func TestRadioStdinToReceiver(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	buildContrib(t)
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Sink: speaker}})
	addr := freeUDPPort(t)

	// Receiver first (unicast listen), then transmit a one-second tone
	// from stdin in 50 ms datagrams.
	recvDone := make(chan error, 1)
	recvCmd := exec.Command(bin("radio"), "-recv", "-a", w.addr, "-addr", addr, "-n", "20",
		"-delay", "0.2")
	recvCmd.Stderr = os.Stderr
	if err := recvCmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { recvDone <- recvCmd.Wait() }()
	time.Sleep(200 * time.Millisecond) // let it bind

	tone, _ := run(t, nil, "atone", "-f", "880", "-p", "-8", "-l", "1")
	sendCmd := exec.Command(bin("radio"), "-send", "-stdin", "-addr", addr, "-n", "20")
	sendCmd.Stdin = strings.NewReader(tone)
	if out, err := sendCmd.CombinedOutput(); err != nil {
		t.Fatalf("radio -send: %v\n%s", err, out)
	}

	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatalf("radio -recv: %v", err)
		}
	case <-time.After(10 * time.Second):
		recvCmd.Process.Kill() //nolint:errcheck
		t.Fatal("receiver did not finish")
	}
	// Give the playout delay time to drain to the speaker.
	time.Sleep(1500 * time.Millisecond)
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -25 {
		t.Errorf("radio speaker heard only %.1f dBm", p)
	}
}

func TestAbiffChimesOnNewMail(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	buildContrib(t)
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Sink: speaker}})

	mbox := filepath.Join(t.TempDir(), "mbox")
	if err := os.WriteFile(mbox, []byte("From old\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin("abiff"), "-a", w.addr, "-f", mbox,
		"-poll", "100ms", "-n", "1")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	f, err := os.OpenFile(mbox, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "From new-sender\nSubject: hi\n\nbody")
	f.Close()

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("abiff: %v", err)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatal("abiff never noticed the mail")
	}
	if !strings.Contains(out.String(), "new mail") {
		t.Errorf("abiff output: %q", out.String())
	}
	time.Sleep(800 * time.Millisecond) // chime plays out
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -25 {
		t.Errorf("chime heard at only %.1f dBm", p)
	}
}

func TestAbrowsePlaysSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	args := append([]string{"build", "-o", binDir + "/"}, "audiofile/cmd/abrowse")
	if out, err := exec.Command("go", args...).CombinedOutput(); err != nil {
		t.Fatalf("building abrowse: %v\n%s", err, out)
	}
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Sink: speaker}})

	// A directory with one playable clip (µ-law WAV) and one decoy.
	dir := t.TempDir()
	tone, _ := run(t, nil, "atone", "-f", "700", "-p", "-8", "-l", "0.4")
	f, err := os.Create(filepath.Join(dir, "clip.wav"))
	if err != nil {
		t.Fatal(err)
	}
	snd := &sndfile.Sound{
		Info: sndfile.Info{Encoding: sampleconv.MU255, Rate: 8000, Channels: 1},
		Data: []byte(tone),
	}
	if err := sndfile.WriteWAV(f, snd); err != nil {
		t.Fatal(err)
	}
	f.Close()
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not audio"), 0o644) //nolint:errcheck

	// -list mode shows the clip with its metadata.
	out, _ := run(t, nil, "abrowse", "-list", dir)
	if !strings.Contains(out, "clip.wav") || !strings.Contains(out, "MU255") ||
		strings.Contains(out, "notes.txt") {
		t.Fatalf("abrowse -list:\n%s", out)
	}

	// Interactive mode: select entry 0, then quit.
	out, _ = run(t, []byte("0\nq\n"), "abrowse", "-a", w.addr, dir)
	if !strings.Contains(out, "clip.wav") {
		t.Fatalf("abrowse interactive:\n%s", out)
	}
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -14 {
		t.Errorf("abrowse playback heard at %.1f dBm", p)
	}
}
