// Package e2etest drives the built client binaries end to end against an
// in-process server over a real Unix socket: the closest thing to a human
// running the paper's out-of-the-box clients.
package e2etest

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/sampleconv"
	"audiofile/internal/sndfile"
	"audiofile/internal/vdev"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "afbin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	cmd := exec.Command("go", "build", "-o", dir+"/",
		"audiofile/cmd/aplay", "audiofile/cmd/arecord", "audiofile/cmd/atone",
		"audiofile/cmd/apower", "audiofile/cmd/aset", "audiofile/cmd/ahs",
		"audiofile/cmd/aphone", "audiofile/cmd/aevents", "audiofile/cmd/alsatoms",
		"audiofile/cmd/aprop", "audiofile/cmd/afft", "audiofile/cmd/apass",
		"audiofile/cmd/ahost", "audiofile/cmd/astat")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building clients:", err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func bin(name string) string { return filepath.Join(binDir, name) }

// world is a server listening on a Unix socket, with captured devices.
type world struct {
	srv     *aserver.Server
	addr    string // -a argument for clients
	speaker *vdev.CaptureSink
}

func newWorld(t *testing.T, devs []aserver.DeviceSpec) *world {
	t.Helper()
	srv, err := aserver.New(aserver.Options{Devices: devs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	sock := filepath.Join(t.TempDir(), "af.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	return &world{srv: srv, addr: "unix:" + sock}
}

func run(t *testing.T, stdin []byte, name string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin(name), args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestAtoneIntoAplay(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Sink: speaker}})

	tone, _ := run(t, nil, "atone", "-f", "440", "-p", "-6", "-l", "0.5")
	if len(tone) != 4000 {
		t.Fatalf("atone produced %d bytes, want 4000", len(tone))
	}
	run(t, []byte(tone), "aplay", "-a", w.addr, "-f", "-t", "0.05")

	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -12 || p > -3 {
		t.Errorf("speaker heard %.1f dBm, want ~-6", p)
	}
}

func TestArecordIntoApower(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	mic := vdev.SineSource{Freq: 1000, Amp: float64(int(8000)), Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Source: mic}})

	rec, _ := run(t, nil, "arecord", "-a", w.addr, "-l", "0.5")
	if len(rec) != 4000 {
		t.Fatalf("arecord produced %d bytes, want 4000", len(rec))
	}
	pow, _ := run(t, []byte(rec), "apower")
	lines := strings.Fields(strings.TrimSpace(pow))
	if len(lines) != 4 {
		t.Fatalf("apower printed %d values, want 4: %q", len(lines), pow)
	}
	var v float64
	fmt.Sscanf(lines[2], "%f", &v) //nolint:errcheck
	// A sine of peak 8000 is about -8.9 dBm re the digital milliwatt.
	if v < -11 || v > -7 {
		t.Errorf("apower block = %v dBm, want ~-8.9", v)
	}
}

func TestArecordSilenceStop(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}})
	start := time.Now()
	rec, _ := run(t, nil, "arecord", "-a", w.addr, "-s",
		"-silentlevel", "-40", "-silenttime", "0.4", "-l", "5")
	if time.Since(start) > 3*time.Second {
		t.Error("silence detector did not stop the recording early")
	}
	if len(rec) == 0 || len(rec) > 2*8000 {
		t.Errorf("recorded %d bytes", len(rec))
	}
}

func TestAsetReportsAndSets(t *testing.T) {
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}})
	run(t, nil, "aset", "-a", w.addr, "-og", "-12", "-ig", "6")
	out, _ := run(t, nil, "aset", "-a", w.addr)
	if !strings.Contains(out, "output gain -12 dB") || !strings.Contains(out, "input gain 6 dB") {
		t.Errorf("aset output:\n%s", out)
	}
	if !strings.Contains(out, "8000 Hz, MU255") {
		t.Errorf("device description missing: %s", out)
	}
}

func TestTelephoneClients(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "phone", Name: "phone0"}})

	out, _ := run(t, nil, "ahs", "-a", w.addr, "query")
	if !strings.Contains(out, "on hook") {
		t.Errorf("query = %q", out)
	}
	run(t, nil, "ahs", "-a", w.addr, "off")
	out, _ = run(t, nil, "ahs", "-a", w.addr, "query")
	if !strings.Contains(out, "off hook") {
		t.Errorf("query after off = %q", out)
	}

	// Dial; afterwards the property is set and the line decoded digits.
	run(t, nil, "aphone", "-a", w.addr, "411")
	out, _ = run(t, nil, "aprop", "-a", w.addr)
	if !strings.Contains(out, `LAST_NUMBER_DIALED(STRING) = "411"`) {
		t.Errorf("aprop = %q", out)
	}
	run(t, nil, "ahs", "-a", w.addr, "on")
}

func TestAeventsRingcount(t *testing.T) {
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "phone", Name: "phone0"}})
	go func() {
		time.Sleep(300 * time.Millisecond)
		w.srv.PhoneLine(0).RingPulse()
		time.Sleep(200 * time.Millisecond)
		w.srv.PhoneLine(0).RingPulse()
	}()
	out, _ := run(t, nil, "aevents", "-a", w.addr, "-ringcount", "2")
	if strings.Count(out, "ring started") != 2 {
		t.Errorf("aevents output:\n%s", out)
	}
}

func TestAlsatomsAndAprop(t *testing.T) {
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}})
	out, _ := run(t, nil, "alsatoms", "-a", w.addr)
	if !strings.Contains(out, "STRING") || !strings.Contains(out, "LAST_NUMBER_DIALED") {
		t.Errorf("alsatoms:\n%s", out)
	}
	run(t, nil, "aprop", "-a", w.addr, "-set", "MY_NOTE", "hello world")
	out, _ = run(t, nil, "aprop", "-a", w.addr)
	if !strings.Contains(out, `MY_NOTE(STRING) = "hello world"`) {
		t.Errorf("aprop:\n%s", out)
	}
	run(t, nil, "aprop", "-a", w.addr, "-delete", "MY_NOTE")
	out, _ = run(t, nil, "aprop", "-a", w.addr)
	if strings.Contains(out, "MY_NOTE") {
		t.Errorf("property survived deletion:\n%s", out)
	}
}

func TestAhostListing(t *testing.T) {
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}})
	out, _ := run(t, nil, "ahost", "-a", w.addr, "+10.9.8.7")
	if !strings.Contains(out, "10.9.8.7") {
		t.Errorf("ahost after add:\n%s", out)
	}
	out, _ = run(t, nil, "ahost", "-a", w.addr, "--", "-10.9.8.7")
	if strings.Contains(out, "10.9.8.7") {
		t.Errorf("ahost after remove:\n%s", out)
	}
}

func TestAfftSineDemo(t *testing.T) {
	out, _ := run(t, nil, "afft", "-sine", "-blocks", "5", "-width", "32")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("afft printed %d lines, want 5", len(lines))
	}
	for i, l := range lines {
		if len(l) != 32 {
			t.Errorf("line %d width %d, want 32", i, len(l))
		}
		if strings.TrimLeft(l, " ") == "" {
			t.Errorf("line %d is blank — no spectral energy", i)
		}
	}
}

func TestAfftFromPipe(t *testing.T) {
	tone, _ := run(t, nil, "atone", "-f", "1200", "-l", "0.5")
	out, _ := run(t, []byte(tone), "afft", "-file", "-", "-blocks", "3", "-width", "40")
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 3 {
		t.Errorf("afft from pipe:\n%s", out)
	}
}

func TestApassBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	mic := vdev.SineSource{Freq: 700, Amp: 6000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	w := newWorld(t, []aserver.DeviceSpec{
		{Kind: "codec", Name: "mic", Source: mic},
		{Kind: "codec", Name: "spkr", Sink: speaker},
	})
	run(t, nil, "apass", "-ia", w.addr, "-oa", w.addr, "-id", "0", "-od", "1", "-n", "8")
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -30 {
		t.Errorf("apass speaker heard only %.1f dBm", p)
	}
}

func TestArecordWavIntoAplay(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	mic := vdev.SineSource{Freq: 600, Amp: 8000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	w := newWorld(t, []aserver.DeviceSpec{
		{Kind: "codec", Name: "mic", Source: mic},
		{Kind: "codec", Name: "spkr", Sink: speaker},
	})

	// Record half a second to a self-describing WAV file...
	wav := filepath.Join(t.TempDir(), "clip.wav")
	run(t, nil, "arecord", "-a", w.addr, "-d", "0", "-l", "0.5", "-wav", wav)
	st, err := os.Stat(wav)
	if err != nil || st.Size() < 4000 {
		t.Fatalf("wav file: %v (%d bytes)", err, st.Size())
	}
	// ...then play it back through the second device; aplay sniffs the
	// container, checks the format against the device, and plays.
	run(t, nil, "aplay", "-a", w.addr, "-d", "1", "-f", wav)
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -13 {
		t.Errorf("wav round trip heard at %.1f dBm", p)
	}
}

func TestAplayRejectsMismatchedContainer(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}})
	// A lin16 stereo WAV cannot play on the µ-law mono codec.
	wav := filepath.Join(t.TempDir(), "bad.wav")
	f, err := os.Create(wav)
	if err != nil {
		t.Fatal(err)
	}
	snd := &sndfile.Sound{
		Info: sndfile.Info{Encoding: sampleconv.LIN16, Rate: 44100, Channels: 2},
		Data: make([]byte, 1024),
	}
	if err := sndfile.WriteWAV(f, snd); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cmd := exec.Command(bin("aplay"), "-a", w.addr, wav)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("mismatched container accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "device") {
		t.Errorf("unhelpful error: %s", out)
	}
}

func TestAstatAgainstStatsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	w := newWorld(t, []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}})
	sl, err := w.srv.ListenStats("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sl.Close() })

	// Generate real play traffic first so the scrape has counters to show.
	tone, _ := run(t, nil, "atone", "-f", "440", "-l", "0.3")
	run(t, []byte(tone), "aplay", "-a", w.addr, "-f", "-t", "0.05")

	out, _ := run(t, nil, "astat", "-a", sl.Addr().String(), "-once")
	if !strings.Contains(out, "codec0") {
		t.Errorf("astat output missing device name:\n%s", out)
	}
	if !strings.Contains(out, "connects 1") || !strings.Contains(out, "disconnects 1") {
		t.Errorf("astat output missing the aplay session's connect/disconnect:\n%s", out)
	}
	// The device line carries cumulative play bytes; 0.3 s at 8 kHz
	// µ-law is 2400 bytes.
	fields := strings.Fields(lineWith(out, "codec0"))
	if len(fields) < 2 || fields[1] != "2400" {
		t.Errorf("astat device line play-bytes = %v, want 2400:\n%s", fields, out)
	}
}

// lineWith returns the first output line containing substr.
func lineWith(out, substr string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}
