package core

import (
	"math/rand"
	"testing"

	"audiofile/internal/atime"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// Model-based test: a reference implementation of the output model of
// §2.2 — an infinite timeline where play requests land (discard-past,
// gain, mix-or-preempt, silence elsewhere) — checked against the real
// buffering engine (server buffers + update task + simulated hardware)
// over randomized operation sequences.

// timelineModel is the reference: a sparse map from device time to the
// µ-law byte the speaker must emit at that tick.
type timelineModel struct {
	data map[uint32]byte
}

func newTimelineModel() *timelineModel {
	return &timelineModel{data: make(map[uint32]byte)}
}

func (m *timelineModel) at(t atime.ATime) byte {
	if b, ok := m.data[uint32(t)]; ok {
		return b
	}
	return 0xFF // silence
}

// play applies a play request exactly as the engine's pipeline defines:
// frames before "now" are discarded; each surviving sample is decoded,
// gain-scaled (with the engine's Q16 fixed-point gain), then mixed with
// or copied over what is already scheduled.
func (m *timelineModel) play(now, start atime.ATime, data []byte, gainDB int, preempt bool) {
	q := gainQ16For(gainDB)
	for i, b := range data {
		ft := atime.Add(start, i)
		if atime.Before(ft, now) {
			continue
		}
		v := int(sampleconv.DecodeMuLaw(b))
		if q != sampleconv.GainUnity {
			v = sampleconv.ScaleQ16(v, q)
		}
		if !preempt {
			v += int(sampleconv.DecodeMuLaw(m.at(ft)))
		}
		m.data[uint32(ft)] = sampleconv.EncodeMuLaw(sampleconv.Clamp16(v))
	}
}

func TestModelRandomizedPlaySequences(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := vdev.NewManualClock(8000)
			sink := &vdev.CaptureSink{}
			hw := vdev.New(vdev.Config{
				Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
				HWFrames: 256, Clock: clk, Sink: sink,
			})
			dev := NewDevice(Config{
				Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
				BufSeconds: 1, // 8192-frame buffer keeps the test fast
			}, hw)
			model := newTimelineModel()

			var maxEnd atime.ATime
			for op := 0; op < 120; op++ {
				switch rng.Intn(3) {
				case 0: // time passes (at most the hw window per step)
					clk.Advance(rng.Intn(200))
					dev.Update()
				default: // a play request
					now := dev.Time()
					// Offsets span past, immediate, and comfortably-future
					// cases but stay inside the buffer horizon.
					offset := rng.Intn(2200) - 150
					n := 1 + rng.Intn(300)
					data := make([]byte, n)
					for i := range data {
						data[i] = byte(rng.Intn(256))
						if data[i] == 0x7F {
							data[i] = 0xFF // avoid µ-law negative zero ambiguity
						}
					}
					gains := []int{-6, 0, 6}
					gainDB := gains[rng.Intn(len(gains))]
					preempt := rng.Intn(3) == 0
					start := atime.Add(now, offset)
					res := dev.Play(start, data, sampleconv.MU255, gainDB, preempt)
					if res.Blocked {
						t.Fatalf("op %d unexpectedly blocked (offset %d, n %d)", op, offset, n)
					}
					// The model applies the same request against the same
					// "now" the engine used.
					model.play(res.Now, start, data, gainDB, preempt)
					if end := atime.Add(start, n); atime.After(end, maxEnd) {
						maxEnd = end
					}
				}
			}
			// Drain everything to the speaker.
			for atime.Before(dev.Now(), atime.Add(maxEnd, 256)) {
				clk.Advance(200)
				dev.Update()
			}

			got, start := sink.Bytes()
			mismatches := 0
			for i, b := range got {
				ft := atime.Add(start, i)
				want := model.at(ft)
				if b != want {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("seed %d: t=%d speaker=%#x model=%#x", seed, uint32(ft), b, want)
					}
				}
			}
			if mismatches > 5 {
				t.Errorf("seed %d: %d total mismatches over %d frames", seed, mismatches, len(got))
			}
		})
	}
}
