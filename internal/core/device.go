// Package core implements the heart of the AudioFile server: the
// per-device buffering engine of §7.2. Each abstract audio device keeps
// roughly four seconds of future playback and recent record data in
// circular buffers indexed by device time, kept consistent with the
// (simulated) hardware by a periodic update task, with write-through for
// requests that land in the update regions, mix-by-default/preempt-on-
// request output, and the timeLastValid silence-fill optimization.
package core

import (
	"math"

	"audiofile/internal/atime"
	"audiofile/internal/ring"
	"audiofile/internal/sampleconv"
)

// Backend is the device-dependent hardware interface: what the DDA needs
// from real or simulated audio hardware. internal/vdev.Device implements
// it directly; the LineServer backend implements it over UDP.
type Backend interface {
	// Time synchronizes hardware state and returns the current device time.
	Time() atime.ATime
	// WritePlay pushes frame data into the hardware play buffer.
	WritePlay(t atime.ATime, data []byte) int
	// ReadRecord pulls captured frame data from the hardware.
	ReadRecord(t atime.ATime, buf []byte) int
	// HWFrames is the hardware buffer depth in frames.
	HWFrames() int
}

// Config describes an abstract audio device as exposed to clients (§5.4).
type Config struct {
	Name       string
	Type       uint8 // proto.DevCodec etc.
	Rate       int
	Enc        sampleconv.Encoding
	Channels   int
	BufSeconds float64 // server buffer depth; 0 means 4 seconds

	NumInputs       int
	NumOutputs      int
	InputsFromPhone uint32
	OutputsToPhone  uint32
}

// Device is the device-independent server's view of one audio device: the
// paper's AudioDeviceRec. It is not safe for concurrent use: the server
// serializes all access to a root device (and its views) behind that
// device's engine lock — see the "Threading model" section of DESIGN.md.
type Device struct {
	Cfg     Config
	Index   int
	backend Backend

	playBuf *ring.Ring
	recBuf  *ring.Ring

	frameBytes int
	bufFrames  int // power of two
	silence    byte

	// Time bookkeeping (§7.3.2). now is the paper's time0.
	now                atime.ATime
	timeNextUpdate     atime.ATime // hardware play buffer consistent through this
	timeLastValid      atime.ATime // last valid playback sample written by any client
	timeRecLastUpdated atime.ATime // record buffer consistent through this

	// RecRefCount counts audio contexts that have recorded; the record
	// update only runs when it is positive (§7.4.1 optimization).
	RecRefCount int

	// IO counts sample-frame flow through the buffering engine. Root
	// devices own the counters (views account into their parent's);
	// they are guarded by the device's engine lock, like all other
	// device state, and the metrics snapshot reads them under it.
	IO IOStats

	// Master gain and I/O control state.
	inputGainDB    int
	outputGainDB   int
	inputsEnabled  uint32
	outputsEnabled uint32

	// Views are per-channel sub-devices (the HiFi mono left/right devices)
	// sharing this device's buffers. A view's parent points here.
	parent  *Device
	chanOff int // first channel of the view within the parent's frames
	chanCnt int

	scratch []byte // update-task staging buffer

	// Underruns counts play frames that missed the hardware window
	// because the update task ran too late.
	Underruns uint64
}

// IOStats are the per-device conservation counters: every frame a
// PlaySamples request delivers is either discarded (scheduled in the
// past) or buffered, so FramesAccepted == FramesBuffered +
// FramesDiscarded holds at every engine-lock release — the invariant
// the metrics tests assert. FramesPreempted counts previously valid
// buffered frames overwritten by a preempting play (they were counted
// as buffered but never reach the DAC with their original content).
type IOStats struct {
	FramesAccepted  uint64 // play frames consumed from requests
	FramesBuffered  uint64 // play frames mixed or copied into the play buffer
	FramesDiscarded uint64 // play frames dropped because they were scheduled in the past
	FramesPreempted uint64 // valid buffered frames overwritten by preempting plays
	FramesRecorded  uint64 // record frames delivered to clients
}

// MSUpdate is the nominal periodic update interval in milliseconds.
const MSUpdate = 100

// NewDevice creates a device over a hardware backend. The server buffer
// holds at least BufSeconds of audio, rounded up to a power of two frames.
func NewDevice(cfg Config, b Backend) *Device {
	if cfg.BufSeconds == 0 {
		cfg.BufSeconds = 4
	}
	if cfg.NumInputs == 0 {
		cfg.NumInputs = 1
	}
	if cfg.NumOutputs == 0 {
		cfg.NumOutputs = 1
	}
	fb := cfg.Enc.BytesPerSamples(1) * cfg.Channels
	frames := ring.RoundFrames(int(cfg.BufSeconds * float64(cfg.Rate)))
	d := &Device{
		Cfg:            cfg,
		backend:        b,
		frameBytes:     fb,
		bufFrames:      frames,
		silence:        cfg.Enc.SilenceByte(),
		playBuf:        ring.New(frames, fb),
		recBuf:         ring.New(frames, fb),
		chanCnt:        cfg.Channels,
		scratch:        make([]byte, b.HWFrames()*fb),
		inputsEnabled:  (1 << cfg.NumInputs) - 1,
		outputsEnabled: (1 << cfg.NumOutputs) - 1,
	}
	d.playBuf.Fill(0, frames, d.silence)
	d.recBuf.Fill(0, frames, d.silence)
	// The bring-up fill is not operational silence; the counters start
	// at zero so PlaySilenceFilled reports only gaps inserted later.
	d.playBuf.ResetFilledFrames()
	d.recBuf.ResetFilledFrames()
	t := b.Time()
	d.now = t
	// The freshly initialized hardware ring holds silence for the whole
	// window [t, t+HWFrames), so the update region starts covered: client
	// plays landing inside it write through immediately.
	d.timeNextUpdate = atime.Add(t, b.HWFrames())
	d.timeLastValid = t
	d.timeRecLastUpdated = t
	return d
}

// NewChannelView creates a mono (or narrower) sub-device over channels
// [chanOff, chanOff+channels) of parent, sharing its buffers and time, as
// the Alofi server builds left/right devices on top of the stereo buffers.
func NewChannelView(name string, devType uint8, parent *Device, chanOff, channels int) *Device {
	cfg := parent.Cfg
	cfg.Name = name
	cfg.Type = devType
	cfg.Channels = channels
	return &Device{
		Cfg:        cfg,
		backend:    parent.backend,
		parent:     parent,
		chanOff:    chanOff,
		chanCnt:    channels,
		frameBytes: parent.frameBytes,
		bufFrames:  parent.bufFrames,
		silence:    parent.silence,
	}
}

// root returns the buffer-owning device (itself, or a view's parent).
func (d *Device) root() *Device {
	if d.parent != nil {
		return d.parent
	}
	return d
}

// IsView reports whether d is a channel view of another device.
func (d *Device) IsView() bool { return d.parent != nil }

// Parent returns the buffer-owning parent of a view, or nil.
func (d *Device) Parent() *Device { return d.parent }

// BufFrames returns the server buffer depth in frames.
func (d *Device) BufFrames() int { return d.root().bufFrames }

// FrameBytes returns one frame of the underlying device in bytes.
func (d *Device) FrameBytes() int { return d.root().frameBytes }

// ViewFrameBytes returns the bytes per frame as seen by clients of this
// device (its own channel count, not the parent's).
func (d *Device) ViewFrameBytes() int {
	return d.Cfg.Enc.BytesPerSamples(1) * d.chanCnt
}

// Backend exposes the hardware backend (for DDA-specific control).
func (d *Device) Backend() Backend { return d.backend }

// Now returns the server's view of device time as of the last refresh.
func (d *Device) Now() atime.ATime { return d.root().now }

// PendingPlayFrames reports how many play frames past the device's
// current time clients have scheduled: the distance from now to the last
// valid playback sample written. Zero means the play ring has been
// consumed to the device tail — nothing buffered remains unheard, the
// condition a graceful drain waits for.
func (d *Device) PendingPlayFrames() int {
	r := d.root()
	n := int(atime.Sub(r.timeLastValid, r.now))
	if n < 0 {
		return 0
	}
	return n
}

// Time refreshes the time register from the hardware and returns it
// (the paper's CODEC_UPDATE_TIME).
func (d *Device) Time() atime.ATime {
	r := d.root()
	r.now = r.backend.Time()
	return r.now
}

// gainFactor converts a dB value to a linear multiplier.
func gainFactor(db int) float64 {
	if db == 0 {
		return 1.0
	}
	return math.Pow(10, float64(db)/20)
}

// gainQ16Tab caches the Q16 quantization of gainFactor over the dB range
// requests actually use, so the play/record hot path never calls math.Pow.
var gainQ16Tab [129]int32

func init() {
	for db := -64; db <= 64; db++ {
		gainQ16Tab[db+64] = sampleconv.GainQ16(gainFactor(db))
	}
}

// gainQ16For resolves a request's dB gain to the engine's Q16 multiplier.
func gainQ16For(db int) int32 {
	if db >= -64 && db <= 64 {
		return gainQ16Tab[db+64]
	}
	return sampleconv.GainQ16(gainFactor(db))
}

// Stats returns the root device's conservation counters. Call under the
// owning engine's lock for a consistent read.
func (d *Device) Stats() IOStats { return d.root().IO }

// PlaySilenceFilled returns the frames of silence inserted into the play
// buffer to cover gaps between requests (§7.4.1's fill-only-when-needed
// path). Call under the owning engine's lock.
func (d *Device) PlaySilenceFilled() uint64 { return d.root().playBuf.FilledFrames() }

// RecSilenceFilled returns the frames of silence written into the record
// buffer for spans the hardware no longer held. Call under the owning
// engine's lock.
func (d *Device) RecSilenceFilled() uint64 { return d.root().recBuf.FilledFrames() }

// InputGain returns the master input gain in dB.
func (d *Device) InputGain() int { return d.root().inputGainDB }

// OutputGain returns the master output gain in dB.
func (d *Device) OutputGain() int { return d.root().outputGainDB }

// SetInputGain sets the master input gain in dB.
func (d *Device) SetInputGain(db int) { d.root().inputGainDB = db }

// SetOutputGain sets the master output gain (volume) in dB.
func (d *Device) SetOutputGain(db int) { d.root().outputGainDB = db }

// EnableInputs sets bits in the enabled-inputs mask.
func (d *Device) EnableInputs(mask uint32) { d.root().inputsEnabled |= mask }

// DisableInputs clears bits in the enabled-inputs mask.
func (d *Device) DisableInputs(mask uint32) { d.root().inputsEnabled &^= mask }

// EnableOutputs sets bits in the enabled-outputs mask.
func (d *Device) EnableOutputs(mask uint32) { d.root().outputsEnabled |= mask }

// DisableOutputs clears bits in the enabled-outputs mask.
func (d *Device) DisableOutputs(mask uint32) { d.root().outputsEnabled &^= mask }

// InputsEnabled returns the enabled-inputs mask.
func (d *Device) InputsEnabled() uint32 { return d.root().inputsEnabled }

// OutputsEnabled returns the enabled-outputs mask.
func (d *Device) OutputsEnabled() uint32 { return d.root().outputsEnabled }
