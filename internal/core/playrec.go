package core

import (
	"audiofile/internal/atime"
	"audiofile/internal/sampleconv"
)

// PlayResult reports how a play request was handled.
type PlayResult struct {
	Consumed int         // frames consumed (discarded-as-past + buffered)
	Blocked  bool        // frames remain that fall beyond the buffer horizon
	Now      atime.ATime // device time after handling
}

// Play handles a PlaySamples request against this device (or view). data
// holds frames in the client's encoding enc with the view's channel count,
// already in native byte order. gainDB is the audio context's play gain,
// preempt its preemption flag.
//
// Per the output model (§2.2): data scheduled for the past is silently
// discarded; data within the buffer window is converted, gain-adjusted and
// mixed (or copied, when preempting) into the play buffer; data beyond the
// window is left for the caller to retry later (Blocked).
func (d *Device) Play(start atime.ATime, data []byte, enc sampleconv.Encoding, gainDB int, preempt bool) PlayResult {
	r := d.root()
	now := r.backend.Time()
	r.now = now
	vfb := enc.BytesPerSamples(1) * d.chanCnt // client frame size
	total := len(data) / vfb
	consumed := 0

	// Discard the portion scheduled for the past.
	if atime.Before(start, now) {
		skip := int(atime.Sub(now, start))
		if skip >= total {
			r.IO.FramesAccepted += uint64(total)
			r.IO.FramesDiscarded += uint64(total)
			return PlayResult{Consumed: total, Now: now}
		}
		r.IO.FramesDiscarded += uint64(skip)
		consumed += skip
		data = data[skip*vfb:]
		start = now
		total -= skip
	}

	// The play buffer is usable through now + bufFrames - hwFrames: the
	// frames nearest the horizon must stay clear for the update task's
	// hardware window (§7.2: the buffer ends at the time of the last
	// update plus the buffer size).
	bufEnd := atime.Add(now, r.bufFrames-r.backend.HWFrames())
	n := total
	if atime.After(atime.Add(start, n), bufEnd) {
		n = int(atime.Sub(bufEnd, start))
		if n < 0 {
			n = 0
		}
	}

	if n > 0 {
		// Silence-fill the gap between the last valid sample and this
		// request (§7.4.1): only when absolutely necessary.
		if atime.After(start, r.timeLastValid) {
			fillFrom := atime.Max(r.timeLastValid, atime.Add(start, -r.bufFrames))
			if gap := int(atime.Sub(start, fillFrom)); gap > 0 {
				r.playBuf.Fill(fillFrom, gap, r.silence)
			}
		}
		// The request's pipeline shape — encodings, Q16 gain, mix or copy —
		// is resolved to batch kernels once here, then reused across every
		// buffer region the request touches.
		q := gainQ16For(gainDB)
		hasGain := q != sampleconv.GainUnity
		kCopy := sampleconv.SelectKernel(r.Cfg.Enc, enc, false, hasGain)
		if preempt {
			// Valid frames in [start, timeLastValid) are overwritten, not
			// mixed: account the preempted samples the old data loses.
			if ov := int(atime.Sub(r.timeLastValid, start)); ov > 0 {
				if ov > n {
					ov = n
				}
				r.IO.FramesPreempted += uint64(ov)
			}
			d.blitPlay(start, n, data, enc, q, false, kCopy)
		} else {
			kMix := sampleconv.SelectKernel(r.Cfg.Enc, enc, true, hasGain)
			// Samples before timeLastValid mix with existing data; samples
			// after it are copied (nothing valid is there).
			mixN := n
			if atime.After(atime.Add(start, n), r.timeLastValid) {
				mixN = int(atime.Sub(r.timeLastValid, start))
				if mixN < 0 {
					mixN = 0
				}
			}
			if mixN > 0 {
				d.blitPlay(start, mixN, data, enc, q, true, kMix)
			}
			if mixN < n {
				d.blitPlay(atime.Add(start, mixN), n-mixN, data[mixN*vfb:], enc, q, false, kCopy)
			}
		}
		if end := atime.Add(start, n); atime.After(end, r.timeLastValid) {
			r.timeLastValid = end
		}
		// Write-through: the part of the request that falls inside the
		// update region [now, timeNextUpdate) must reach the hardware
		// immediately; the periodic task has already passed it by.
		if r.outputsEnabled != 0 && atime.Before(start, r.timeNextUpdate) {
			wn := int(atime.Sub(r.timeNextUpdate, start))
			if wn > n {
				wn = n
			}
			r.pushToHW(start, wn)
		}
		r.IO.FramesBuffered += uint64(n)
		consumed += n
	}
	r.IO.FramesAccepted += uint64(consumed)
	return PlayResult{Consumed: consumed, Blocked: n < total, Now: now}
}

// blitPlay converts nframes of client samples into the play buffer region
// starting at t. For a full-width device it applies the request's batch
// kernel k to the packed regions; for a channel view it touches only the
// view's channels inside each frame.
func (d *Device) blitPlay(t atime.ATime, nframes int, src []byte, enc sampleconv.Encoding, q int32, mix bool, k sampleconv.Kernel) {
	r := d.root()
	a, b := r.playBuf.Region(t, nframes)
	if d.parent == nil {
		ch := r.Cfg.Channels
		na := len(a) / r.frameBytes
		k(a, src, na*ch, q)
		if b != nil {
			k(b, src[enc.BytesPerSamples(na*ch):], (nframes-na)*ch, q)
		}
		return
	}
	// Channel view: strided per-sample processing.
	d.blitView(a, b, src, enc, q, mix, true)
}

// blitView moves samples between a view's packed client data and the
// parent's interleaved frames. toBuf selects direction: true converts src
// (client data) into the buffer regions; false extracts buffer samples
// into src (which is then the destination, used by Record). Strided
// access defeats the batch kernels, but the gain is still the engine's
// Q16 fixed point rather than a per-sample float multiply.
func (d *Device) blitView(a, b []byte, client []byte, enc sampleconv.Encoding, q int32, mix, toBuf bool) {
	r := d.root()
	devEnc := r.Cfg.Enc
	devCh := r.Cfg.Channels
	hasGain := q != sampleconv.GainUnity
	frame := 0
	for _, region := range [][]byte{a, b} {
		if region == nil {
			continue
		}
		rf := len(region) / r.frameBytes
		for i := 0; i < rf; i++ {
			for c := 0; c < d.chanCnt; c++ {
				bufIdx := i*devCh + d.chanOff + c
				cliIdx := (frame+i)*d.chanCnt + c
				if toBuf {
					v := sampleconv.DecodeSample(enc, client, cliIdx)
					if hasGain {
						v = sampleconv.ScaleQ16(v, q)
					}
					if mix {
						v += sampleconv.DecodeSample(devEnc, region, bufIdx)
					}
					sampleconv.EncodeSample(devEnc, region, bufIdx, v)
				} else {
					v := sampleconv.DecodeSample(devEnc, region, bufIdx)
					if hasGain {
						v = sampleconv.ScaleQ16(v, q)
					}
					sampleconv.EncodeSample(enc, client, cliIdx, v)
				}
			}
		}
		frame += rf
	}
}

// RecordResult reports how a record request was handled.
type RecordResult struct {
	Avail int         // frames delivered into dst (from the request start)
	Now   atime.ATime // device time after handling
}

// Record handles a RecordSamples request: it fills dst (client encoding
// enc, view channel count) with up to nframes frames starting at start.
// Frames older than the buffer window read as silence (§2.3); frames up to
// "now" come from the record buffer; frames in the future are not
// delivered — the caller blocks or returns short according to the
// request's block flag.
func (d *Device) Record(start atime.ATime, dst []byte, enc sampleconv.Encoding, gainDB int) RecordResult {
	r := d.root()
	now := r.backend.Time()
	r.now = now
	vfb := enc.BytesPerSamples(1) * d.chanCnt // client frame size
	want := len(dst) / vfb

	avail := want
	if atime.After(atime.Add(start, want), now) {
		avail = int(atime.Sub(now, start))
		if avail < 0 {
			avail = 0
		}
	}
	if avail == 0 {
		return RecordResult{Avail: 0, Now: now}
	}
	// Bring the record buffer up to date if the request needs data newer
	// than the last record update.
	if atime.After(atime.Add(start, avail), r.timeRecLastUpdated) {
		r.recUpdate(now)
	}

	q := gainQ16For(gainDB)
	oldest := atime.Add(now, -r.bufFrames)
	// Silence for the portion older than the buffer.
	pre := 0
	if atime.Before(start, oldest) {
		pre = int(atime.Sub(oldest, start))
		if pre > avail {
			pre = avail
		}
		sampleconv.Silence(enc, dst[:pre*vfb])
		start = atime.Add(start, pre)
	}
	n := avail - pre
	if n > 0 {
		out := dst[pre*vfb:]
		a, b := r.recBuf.Region(start, n)
		if d.parent == nil {
			// One kernel selection per request, reused for both regions.
			k := sampleconv.SelectKernel(enc, r.Cfg.Enc, false, q != sampleconv.GainUnity)
			ch := r.Cfg.Channels
			na := len(a) / r.frameBytes
			k(out, a, na*ch, q)
			k(out[enc.BytesPerSamples(na*ch):], b, (n-na)*ch, q)
		} else {
			d.blitView(a, b, out, enc, q, false, false)
		}
	}
	r.IO.FramesRecorded += uint64(avail)
	return RecordResult{Avail: avail, Now: now}
}

// TapMix fills dst (client encoding enc, view channel count) with the
// device's final play mix — what the DAC consumes — starting at start,
// clamped to frames that have already passed device time. It is the
// read side of the server's broadcast channel: the engine taps the mix
// once per chunk per output format and fans the encoded bytes out to
// every subscriber by reference.
//
// Unlike Record it touches no record-path state (no RecRefCount, no
// record update, no IO counters — broadcast keeps its own metrics), so
// a device with zero recording clients can host a channel for free.
// Frames older than the buffer window and frames past the last valid
// playback sample (never written by any client, so the hardware region
// is silence-backfilled) read as silence.
func (d *Device) TapMix(start atime.ATime, dst []byte, enc sampleconv.Encoding, gainDB int) RecordResult {
	r := d.root()
	now := r.backend.Time()
	r.now = now
	vfb := enc.BytesPerSamples(1) * d.chanCnt // client frame size
	want := len(dst) / vfb

	avail := want
	if atime.After(atime.Add(start, want), now) {
		avail = int(atime.Sub(now, start))
		if avail < 0 {
			avail = 0
		}
	}
	if avail == 0 {
		return RecordResult{Avail: 0, Now: now}
	}

	q := gainQ16For(gainDB)
	oldest := atime.Add(now, -r.bufFrames)
	// Silence for the portion older than the buffer.
	pre := 0
	if atime.Before(start, oldest) {
		pre = int(atime.Sub(oldest, start))
		if pre > avail {
			pre = avail
		}
		sampleconv.Silence(enc, dst[:pre*vfb])
		start = atime.Add(start, pre)
	}
	n := avail - pre
	// Silence for the portion past the last valid playback sample.
	if post := int(atime.Sub(atime.Add(start, n), r.timeLastValid)); post > 0 {
		if post > n {
			post = n
		}
		sampleconv.Silence(enc, dst[(pre+n-post)*vfb:(pre+n)*vfb])
		n -= post
	}
	if n > 0 {
		out := dst[pre*vfb:]
		a, b := r.playBuf.Region(start, n)
		if d.parent == nil {
			k := sampleconv.SelectKernel(enc, r.Cfg.Enc, false, q != sampleconv.GainUnity)
			ch := r.Cfg.Channels
			na := len(a) / r.frameBytes
			k(out, a, na*ch, q)
			k(out[enc.BytesPerSamples(na*ch):], b, (n-na)*ch, q)
		} else {
			d.blitView(a, b, out, enc, q, false, false)
		}
	}
	return RecordResult{Avail: avail, Now: now}
}
