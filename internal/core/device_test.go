package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"audiofile/internal/atime"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// codecRig is a codec device over manual-clock virtual hardware with a
// capture sink, the standard test fixture.
type codecRig struct {
	clk  *vdev.ManualClock
	sink *vdev.CaptureSink
	hw   *vdev.Device
	dev  *Device
}

func newCodecRig(t *testing.T, src vdev.RecordSource) *codecRig {
	t.Helper()
	clk := vdev.NewManualClock(8000)
	sink := &vdev.CaptureSink{}
	hw := vdev.New(vdev.Config{
		Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 1024, Clock: clk, Sink: sink, Source: src,
	})
	dev := NewDevice(Config{
		Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
	}, hw)
	return &codecRig{clk: clk, sink: sink, hw: hw, dev: dev}
}

// run advances the clock by n ticks in update-task-sized steps, running
// the device update after each step, as the periodic task would.
func (r *codecRig) run(n int) {
	step := 800 // 100 ms at 8 kHz
	for n > 0 {
		c := step
		if c > n {
			c = n
		}
		r.clk.Advance(c)
		r.dev.Update()
		n -= c
	}
}

func put16(b []byte, v int16) {
	binary.LittleEndian.PutUint16(b, uint16(v))
}

func muBytes(vals ...int16) []byte {
	out := make([]byte, len(vals))
	for i, v := range vals {
		out[i] = sampleconv.EncodeMuLaw(v)
	}
	return out
}

func TestDeviceDefaults(t *testing.T) {
	r := newCodecRig(t, nil)
	if r.dev.BufFrames() != 32768 { // 4 s at 8 kHz rounded to 2^15
		t.Errorf("BufFrames = %d, want 32768", r.dev.BufFrames())
	}
	if r.dev.FrameBytes() != 1 || r.dev.ViewFrameBytes() != 1 {
		t.Error("frame sizes wrong")
	}
	if r.dev.IsView() || r.dev.Parent() != nil {
		t.Error("root device claims to be a view")
	}
	if r.dev.InputsEnabled() != 1 || r.dev.OutputsEnabled() != 1 {
		t.Error("default I/O masks wrong")
	}
}

func TestPlayReachesHardwareOnTime(t *testing.T) {
	r := newCodecRig(t, nil)
	data := muBytes(1000, 2000, 3000, 4000)
	res := r.dev.Play(100, data, sampleconv.MU255, 0, false)
	if res.Consumed != 4 || res.Blocked {
		t.Fatalf("Play = %+v", res)
	}
	r.run(200)
	got, start := r.sink.Bytes()
	if start != 0 {
		t.Fatalf("sink start = %d", start)
	}
	if !bytes.Equal(got[100:104], data) {
		t.Errorf("played %v, want %v", got[100:104], data)
	}
	// Everything around it is silence.
	for i, b := range got[:100] {
		if b != 0xFF {
			t.Errorf("pre-roll byte %d = %#x, want silence", i, b)
		}
	}
	for i, b := range got[104:] {
		if b != 0xFF {
			t.Errorf("post-roll byte %d = %#x, want silence", 104+i, b)
		}
	}
}

func TestPlayPastDiscarded(t *testing.T) {
	r := newCodecRig(t, nil)
	r.run(1000)
	// Schedule 10 frames starting 5 in the past: 5 discarded, 5 play.
	data := muBytes(1, 2, 3, 4, 5, 1000, 1001, 1002, 1003, 1004)
	res := r.dev.Play(atime.Add(r.dev.Now(), -5), data, sampleconv.MU255, 0, false)
	if res.Consumed != 10 || res.Blocked {
		t.Fatalf("Play = %+v", res)
	}
	r.run(100)
	got, _ := r.sink.Bytes()
	if !bytes.Equal(got[1000:1005], data[5:]) {
		t.Errorf("played %v, want %v", got[1000:1005], data[5:])
	}
}

func TestPlayBeyondHorizonBlocks(t *testing.T) {
	r := newCodecRig(t, nil)
	far := atime.Add(r.dev.Now(), r.dev.BufFrames()) // beyond buffer
	res := r.dev.Play(far, muBytes(1, 2, 3), sampleconv.MU255, 0, false)
	if !res.Blocked || res.Consumed != 0 {
		t.Errorf("far-future play = %+v, want blocked", res)
	}
	// After time advances, the same request completes.
	r.run(2048)
	res = r.dev.Play(far, muBytes(1, 2, 3), sampleconv.MU255, 0, false)
	if res.Blocked {
		t.Errorf("play still blocked after time advanced: %+v", res)
	}
}

func TestMixingTwoClients(t *testing.T) {
	r := newCodecRig(t, nil)
	a := muBytes(4000, 4000, 4000, 4000)
	b := muBytes(2000, 2000, 2000, 2000)
	r.dev.Play(200, a, sampleconv.MU255, 0, false)
	r.dev.Play(200, b, sampleconv.MU255, 0, false)
	r.run(300)
	got, _ := r.sink.Bytes()
	for i := 200; i < 204; i++ {
		v := int(sampleconv.DecodeMuLaw(got[i]))
		if v < 5600 || v > 6500 {
			t.Errorf("mixed sample %d = %d, want ~6000", i, v)
		}
	}
}

func TestPreemptOverwrites(t *testing.T) {
	r := newCodecRig(t, nil)
	r.dev.Play(200, muBytes(4000, 4000, 4000, 4000), sampleconv.MU255, 0, false)
	r.dev.Play(200, muBytes(500, 500, 500, 500), sampleconv.MU255, 0, true)
	r.run(300)
	got, _ := r.sink.Bytes()
	for i := 200; i < 204; i++ {
		v := int(sampleconv.DecodeMuLaw(got[i]))
		if v < 400 || v > 600 {
			t.Errorf("preempted sample %d = %d, want ~500", i, v)
		}
	}
}

func TestPlayGain(t *testing.T) {
	r := newCodecRig(t, nil)
	// -6 dB halves the amplitude (within µ-law quantization).
	r.dev.Play(100, muBytes(8000, 8000), sampleconv.MU255, -6, false)
	r.run(200)
	got, _ := r.sink.Bytes()
	v := int(sampleconv.DecodeMuLaw(got[100]))
	if v < 3700 || v > 4400 {
		t.Errorf("gained sample = %d, want ~4000", v)
	}
}

func TestMasterOutputGain(t *testing.T) {
	r := newCodecRig(t, nil)
	r.dev.SetOutputGain(-6)
	if r.dev.OutputGain() != -6 {
		t.Fatal("OutputGain not set")
	}
	r.dev.Play(100, muBytes(8000, 8000), sampleconv.MU255, 0, false)
	r.run(200)
	got, _ := r.sink.Bytes()
	v := int(sampleconv.DecodeMuLaw(got[100]))
	if v < 3700 || v > 4400 {
		t.Errorf("master-gained sample = %d, want ~4000", v)
	}
}

func TestDisabledOutputPlaysSilence(t *testing.T) {
	r := newCodecRig(t, nil)
	r.dev.DisableOutputs(1)
	r.dev.Play(100, muBytes(8000, 8000), sampleconv.MU255, 0, false)
	r.run(200)
	got, _ := r.sink.Bytes()
	for i, b := range got {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x with outputs disabled", i, b)
		}
	}
	r.dev.EnableOutputs(1)
	if r.dev.OutputsEnabled() != 1 {
		t.Error("EnableOutputs failed")
	}
}

func TestSilenceBetweenRequests(t *testing.T) {
	// Two disjoint play requests: the gap must be silence even though the
	// buffer held stale data (silence-fill via timeLastValid).
	r := newCodecRig(t, nil)
	r.dev.Play(100, muBytes(9000, 9000), sampleconv.MU255, 0, false)
	r.dev.Play(300, muBytes(9000, 9000), sampleconv.MU255, 0, false)
	r.run(400)
	got, _ := r.sink.Bytes()
	for i := 102; i < 300; i++ {
		if got[i] != 0xFF {
			t.Fatalf("gap byte %d = %#x, want silence", i, got[i])
		}
	}
	if got[300] == 0xFF || got[100] == 0xFF {
		t.Error("request data missing")
	}
}

func TestContiguousPlayback(t *testing.T) {
	// The aplay pattern: consecutive blocks, each scheduled on the heels
	// of the previous; output must be gapless.
	r := newCodecRig(t, nil)
	tp := atime.Add(r.dev.Now(), 80)
	start := tp
	var want []byte
	for blk := 0; blk < 20; blk++ {
		data := make([]byte, 160)
		for i := range data {
			data[i] = sampleconv.EncodeMuLaw(int16(1000 + blk*100 + i))
		}
		res := r.dev.Play(tp, data, sampleconv.MU255, 0, false)
		if res.Consumed != 160 || res.Blocked {
			t.Fatalf("block %d: %+v", blk, res)
		}
		tp = atime.Add(tp, 160)
		want = append(want, data...)
		r.run(160)
	}
	r.run(200)
	got, _ := r.sink.Bytes()
	if !bytes.Equal(got[uint32(start):uint32(start)+uint32(len(want))], want) {
		t.Error("contiguous playback corrupted")
	}
}

func TestRecordFromSine(t *testing.T) {
	src := vdev.SineSource{Freq: 440, Amp: 8000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	r := newCodecRig(t, src)
	r.dev.RecRefCount = 1
	r.run(8000)
	now := r.dev.Now()
	buf := make([]byte, 800)
	res := r.dev.Record(atime.Add(now, -800), buf, sampleconv.MU255, 0)
	if res.Avail != 800 {
		t.Fatalf("Avail = %d, want 800", res.Avail)
	}
	// The signal should have substantial energy (not silence).
	var energy float64
	for _, b := range buf {
		v := float64(sampleconv.DecodeMuLaw(b))
		energy += v * v
	}
	if energy/800 < 1e6 {
		t.Errorf("recorded energy too low: %g", energy/800)
	}
}

func TestRecordDistantPastIsSilence(t *testing.T) {
	src := vdev.SineSource{Freq: 440, Amp: 8000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	r := newCodecRig(t, src)
	r.dev.RecRefCount = 1
	r.run(r.dev.BufFrames() + 16000)
	buf := make([]byte, 100)
	res := r.dev.Record(100, buf, sampleconv.MU255, 0) // long gone
	if res.Avail != 100 {
		t.Fatalf("Avail = %d, want 100 (silence delivered immediately)", res.Avail)
	}
	for i, b := range buf {
		if b != 0xFF {
			t.Errorf("distant-past byte %d = %#x, want silence", i, b)
		}
	}
}

func TestRecordFutureNotDelivered(t *testing.T) {
	r := newCodecRig(t, nil)
	r.run(1000)
	buf := make([]byte, 100)
	res := r.dev.Record(atime.Add(r.dev.Now(), 50), buf, sampleconv.MU255, 0)
	if res.Avail != 0 {
		t.Errorf("future record Avail = %d, want 0", res.Avail)
	}
	// Straddling now: only the past half is available.
	res = r.dev.Record(atime.Add(r.dev.Now(), -50), buf, sampleconv.MU255, 0)
	if res.Avail != 50 {
		t.Errorf("straddling record Avail = %d, want 50", res.Avail)
	}
}

func TestRecordOnDemandWithoutUpdateTask(t *testing.T) {
	// A record request triggers its own record update even when the
	// periodic task never ran the record side (RecRefCount was 0).
	src := vdev.SineSource{Freq: 440, Amp: 8000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	r := newCodecRig(t, src)
	r.clk.Advance(500)
	buf := make([]byte, 400)
	res := r.dev.Record(100, buf, sampleconv.MU255, 0)
	if res.Avail != 400 {
		t.Fatalf("Avail = %d, want 400", res.Avail)
	}
	var energy float64
	for _, b := range buf {
		v := float64(sampleconv.DecodeMuLaw(b))
		energy += v * v
	}
	if energy/400 < 1e6 {
		t.Error("on-demand record returned silence")
	}
}

func TestLoopbackThroughServerBuffers(t *testing.T) {
	// Full path: play -> hw -> loopback cable -> hw record -> record.
	clk := vdev.NewManualClock(8000)
	lb := vdev.NewLoopback(4096, 1, 0, 0xFF)
	hw := vdev.New(vdev.Config{
		Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 1024, Clock: clk, Sink: lb, Source: lb,
	})
	dev := NewDevice(Config{Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1}, hw)
	dev.RecRefCount = 1
	data := muBytes(1000, 2000, 3000, 4000, 5000)
	dev.Play(100, data, sampleconv.MU255, 0, false)
	for i := 0; i < 4; i++ {
		clk.Advance(200)
		dev.Update()
	}
	buf := make([]byte, 5)
	res := dev.Record(100, buf, sampleconv.MU255, 0)
	if res.Avail != 5 {
		t.Fatalf("Avail = %d", res.Avail)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("loopback recorded %v, want %v", buf, data)
	}
}

func TestEncodingConversionOnPlay(t *testing.T) {
	// Client plays lin16 into a µ-law device.
	r := newCodecRig(t, nil)
	lin := make([]byte, 8)
	for i := 0; i < 4; i++ {
		put16(lin[2*i:], 6000)
	}
	r.dev.Play(100, lin, sampleconv.LIN16, 0, false)
	r.run(200)
	got, _ := r.sink.Bytes()
	v := int(sampleconv.DecodeMuLaw(got[100]))
	if v < 5700 || v > 6300 {
		t.Errorf("converted sample = %d, want ~6000", v)
	}
}

func TestInputGainOnRecord(t *testing.T) {
	src := vdev.SineSource{Freq: 440, Amp: 4000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	r := newCodecRig(t, src)
	r.dev.SetInputGain(6)
	if r.dev.InputGain() != 6 {
		t.Fatal("InputGain not set")
	}
	r.dev.RecRefCount = 1
	r.run(2000)
	buf := make([]byte, 800)
	r.dev.Record(atime.Add(r.dev.Now(), -800), buf, sampleconv.MU255, 0)
	var peak int
	for _, b := range buf {
		v := int(sampleconv.DecodeMuLaw(b))
		if v > peak {
			peak = v
		}
	}
	if peak < 7000 || peak > 8800 {
		t.Errorf("peak with +6 dB input gain = %d, want ~8000", peak)
	}
}

func TestDisabledInputRecordsSilence(t *testing.T) {
	src := vdev.SineSource{Freq: 440, Amp: 8000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	r := newCodecRig(t, src)
	r.dev.DisableInputs(1)
	r.dev.RecRefCount = 1
	r.run(2000)
	buf := make([]byte, 400)
	r.dev.Record(atime.Add(r.dev.Now(), -400), buf, sampleconv.MU255, 0)
	for i, b := range buf {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x with inputs disabled", i, b)
		}
	}
}

func TestUnderrunAccounting(t *testing.T) {
	r := newCodecRig(t, nil)
	// Schedule valid data, then jump the clock far past it without letting
	// the update task push it in time (single giant step).
	r.dev.Play(2000, make([]byte, 1000), sampleconv.MU255, 0, false)
	r.clk.Advance(8000)
	r.dev.Update()
	if r.dev.Underruns == 0 {
		t.Error("no underruns recorded after a missed deadline")
	}
}

func TestStereoDeviceAndMonoViews(t *testing.T) {
	clk := vdev.NewManualClock(44100)
	sink := &vdev.CaptureSink{}
	hw := vdev.New(vdev.Config{
		Name: "hifi", Rate: 44100, Enc: sampleconv.LIN16, Channels: 2,
		HWFrames: 4096, Clock: clk, Sink: sink, Source: nil,
	})
	stereo := NewDevice(Config{Name: "hifi", Rate: 44100, Enc: sampleconv.LIN16, Channels: 2}, hw)
	left := NewChannelView("hifiL", 2, stereo, 0, 1)
	right := NewChannelView("hifiR", 2, stereo, 1, 1)
	if !left.IsView() || left.Parent() != stereo {
		t.Fatal("view wiring wrong")
	}
	if left.ViewFrameBytes() != 2 || stereo.ViewFrameBytes() != 4 {
		t.Fatal("view frame bytes wrong")
	}

	// Play distinct mono signals into each channel.
	lData := make([]byte, 8)
	rData := make([]byte, 8)
	for i := 0; i < 4; i++ {
		put16(lData[2*i:], 1111)
		put16(rData[2*i:], -2222)
	}
	if res := left.Play(100, lData, sampleconv.LIN16, 0, false); res.Consumed != 4 {
		t.Fatalf("left play %+v", res)
	}
	if res := right.Play(100, rData, sampleconv.LIN16, 0, false); res.Consumed != 4 {
		t.Fatalf("right play %+v", res)
	}
	clk.Advance(200)
	stereo.Update()
	got, _ := sink.Bytes()
	// Frame 100 is at byte offset 400 (4 bytes per stereo frame).
	l := int16(binary.LittleEndian.Uint16(got[400:]))
	rch := int16(binary.LittleEndian.Uint16(got[402:]))
	if l != 1111 || rch != -2222 {
		t.Errorf("stereo frame = (%d, %d), want (1111, -2222)", l, rch)
	}
}

func TestMonoViewMixesWithStereoClient(t *testing.T) {
	clk := vdev.NewManualClock(44100)
	sink := &vdev.CaptureSink{}
	hw := vdev.New(vdev.Config{
		Name: "hifi", Rate: 44100, Enc: sampleconv.LIN16, Channels: 2,
		HWFrames: 4096, Clock: clk, Sink: sink,
	})
	stereo := NewDevice(Config{Name: "hifi", Rate: 44100, Enc: sampleconv.LIN16, Channels: 2}, hw)
	left := NewChannelView("hifiL", 2, stereo, 0, 1)

	sData := make([]byte, 16) // 4 stereo frames of (1000, 2000)
	for i := 0; i < 4; i++ {
		put16(sData[4*i:], 1000)
		put16(sData[4*i+2:], 2000)
	}
	stereo.Play(100, sData, sampleconv.LIN16, 0, false)
	lData := make([]byte, 8) // 4 mono frames of 500 mixed into left
	for i := 0; i < 4; i++ {
		put16(lData[2*i:], 500)
	}
	left.Play(100, lData, sampleconv.LIN16, 0, false)
	clk.Advance(200)
	stereo.Update()
	got, _ := sink.Bytes()
	l := int16(binary.LittleEndian.Uint16(got[400:]))
	rch := int16(binary.LittleEndian.Uint16(got[402:]))
	if l != 1500 || rch != 2000 {
		t.Errorf("mixed stereo frame = (%d, %d), want (1500, 2000)", l, rch)
	}
}

func TestRecordStraddlingBufferTail(t *testing.T) {
	// Request partly older than the buffer: silence prefix + data suffix.
	src := vdev.SineSource{Freq: 1000, Amp: 8000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	r := newCodecRig(t, src)
	r.dev.RecRefCount = 1
	total := r.dev.BufFrames() + 4000
	r.run(total)
	now := r.dev.Now()
	oldest := atime.Add(now, -r.dev.BufFrames())
	buf := make([]byte, 200)
	res := r.dev.Record(atime.Add(oldest, -100), buf, sampleconv.MU255, 0)
	if res.Avail != 200 {
		t.Fatalf("Avail = %d", res.Avail)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0xFF {
			t.Fatalf("pre-window byte %d not silence", i)
		}
	}
	var energy float64
	for _, b := range buf[100:] {
		v := float64(sampleconv.DecodeMuLaw(b))
		energy += v * v
	}
	if energy/100 < 1e5 {
		t.Error("in-window data missing")
	}
}
