package core

import (
	"audiofile/internal/atime"
	"audiofile/internal/sampleconv"
)

// Update is the body of the periodic update task (§7.2, Figure 5): it
// advances the server's time register, moves the next batch of playback
// data from the server buffer into the hardware buffer (applying the
// master output gain), and — when any context is recording — moves new
// record data from the hardware into the server buffer. Views share their
// parent's update.
func (d *Device) Update() {
	r := d.root()
	now := r.backend.Time()
	r.now = now
	hw := r.backend.HWFrames()
	horizon := atime.Add(now, hw)

	// Account underruns: frames that slid into the past since the last
	// update without having been pushed, while valid client data covered
	// them.
	if atime.Before(r.timeNextUpdate, now) {
		missedEnd := atime.Min(now, r.timeLastValid)
		if atime.After(missedEnd, r.timeNextUpdate) {
			r.Underruns += uint64(atime.Sub(missedEnd, r.timeNextUpdate))
		}
		r.timeNextUpdate = now
	}

	// Play side: only runs while timeLastValid is in the future relative
	// to device time (the play-update optimization); the hardware backfills
	// silence on its own for uncovered regions.
	if r.outputsEnabled != 0 && atime.After(r.timeLastValid, r.timeNextUpdate) {
		end := atime.Min(horizon, r.timeLastValid)
		if n := int(atime.Sub(end, r.timeNextUpdate)); n > 0 {
			r.pushToHW(r.timeNextUpdate, n)
		}
	}
	r.timeNextUpdate = horizon

	// Record side: only runs when a context is recording.
	if r.RecRefCount > 0 {
		r.recUpdate(now)
	}
}

// pushToHW copies n frames starting at t from the play buffer to the
// hardware, applying the master output gain.
func (r *Device) pushToHW(t atime.ATime, n int) {
	maxChunk := len(r.scratch) / r.frameBytes
	gain := gainFactor(r.outputGainDB)
	for n > 0 {
		c := n
		if c > maxChunk {
			c = maxChunk
		}
		buf := r.scratch[:c*r.frameBytes]
		r.playBuf.ReadAt(t, buf)
		if gain != 1.0 {
			sampleconv.ApplyGain(r.Cfg.Enc, buf, c*r.Cfg.Channels, gain)
		}
		r.backend.WritePlay(t, buf)
		t = atime.Add(t, c)
		n -= c
	}
}

// recUpdate makes the record buffer consistent through now: data since
// timeRecLastUpdated is pulled from the hardware (with the master input
// gain applied); any span the small hardware buffer no longer holds is
// filled with silence.
func (r *Device) recUpdate(now atime.ATime) {
	start := r.timeRecLastUpdated
	span := int(atime.Sub(now, start))
	if span <= 0 {
		return
	}
	hw := r.backend.HWFrames()
	if span > r.bufFrames {
		// Older data would overwrite itself in the ring; skip ahead.
		start = atime.Add(now, -r.bufFrames)
		span = r.bufFrames
	}
	if span > hw {
		// The hardware only retains the last hw frames; the rest is gone.
		lost := span - hw
		fillFrom := start
		for lost > 0 {
			c := lost
			if c > r.bufFrames {
				c = r.bufFrames
			}
			r.recBuf.Fill(fillFrom, c, r.silence)
			fillFrom = atime.Add(fillFrom, c)
			lost -= c
		}
		start = atime.Add(now, -hw)
		span = hw
	}
	gain := gainFactor(r.inputGainDB)
	maxChunk := len(r.scratch) / r.frameBytes
	for span > 0 {
		c := span
		if c > maxChunk {
			c = maxChunk
		}
		buf := r.scratch[:c*r.frameBytes]
		if r.inputsEnabled == 0 {
			for i := range buf {
				buf[i] = r.silence
			}
		} else {
			r.backend.ReadRecord(start, buf)
			if gain != 1.0 {
				sampleconv.ApplyGain(r.Cfg.Enc, buf, c*r.Cfg.Channels, gain)
			}
		}
		r.recBuf.WriteAt(start, buf)
		start = atime.Add(start, c)
		span -= c
	}
	r.timeRecLastUpdated = now
}
