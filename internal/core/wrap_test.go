package core

import (
	"bytes"
	"math"
	"testing"

	"audiofile/internal/atime"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// TestPlayRecordAcrossTimeWrap runs the whole engine across the 2^32
// device-time wrap: requests scheduled to straddle the wrap must play and
// record exactly as anywhere else on the circle.
func TestPlayRecordAcrossTimeWrap(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	clk.Set(atime.ATime(math.MaxUint32 - 2000)) // 2000 ticks before wrap
	lb := vdev.NewLoopback(4096, 1, 0, 0xFF)
	hw := vdev.New(vdev.Config{
		Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 1024, Clock: clk, Sink: lb, Source: lb,
	})
	dev := NewDevice(Config{Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1}, hw)
	dev.RecRefCount = 1

	start := atime.Add(dev.Time(), 1000) // 1000 ticks before the wrap point
	data := make([]byte, 2000)           // spans the wrap by 1000 ticks
	for i := range data {
		data[i] = sampleconv.EncodeMuLaw(int16(1000 + i))
	}
	res := dev.Play(start, data, sampleconv.MU255, 0, false)
	if res.Consumed != 2000 || res.Blocked {
		t.Fatalf("Play across wrap = %+v", res)
	}
	for i := 0; i < 8; i++ {
		clk.Advance(500)
		dev.Update()
	}
	if uint32(dev.Now()) > 3000000000 {
		t.Fatalf("device time did not wrap: %d", dev.Now())
	}
	buf := make([]byte, 2000)
	rr := dev.Record(start, buf, sampleconv.MU255, 0)
	if rr.Avail != 2000 {
		t.Fatalf("Record across wrap avail = %d", rr.Avail)
	}
	if !bytes.Equal(buf, data) {
		for i := range buf {
			if buf[i] != data[i] {
				t.Fatalf("first wrap mismatch at %d: %#x != %#x", i, buf[i], data[i])
			}
		}
	}
}

// TestGetTimeNearWrap verifies the comparison arithmetic the engine uses
// near the wrap: a time just after the wrap reads as "after" one just
// before it.
func TestGetTimeNearWrap(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	clk.Set(atime.ATime(math.MaxUint32 - 10))
	hw := vdev.New(vdev.Config{
		Name: "c", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 64, Clock: clk,
	})
	dev := NewDevice(Config{Name: "c", Rate: 8000, Enc: sampleconv.MU255, Channels: 1}, hw)
	before := dev.Time()
	clk.Advance(20)
	after := dev.Time()
	if !atime.After(after, before) {
		t.Errorf("time %d not after %d across the wrap", after, before)
	}
	if atime.Sub(after, before) != 20 {
		t.Errorf("Sub across wrap = %d", atime.Sub(after, before))
	}
}
