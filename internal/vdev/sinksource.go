package vdev

import (
	"math"
	"sync"

	"audiofile/internal/atime"
	"audiofile/internal/ring"
	"audiofile/internal/sampleconv"
)

// DiscardSink throws played samples away (a speaker in an empty room).
type DiscardSink struct{}

// Play implements PlaySink.
func (DiscardSink) Play(atime.ATime, []byte) {}

// FuncSink adapts a function to the PlaySink interface.
type FuncSink func(t atime.ATime, data []byte)

// Play implements PlaySink.
func (f FuncSink) Play(t atime.ATime, data []byte) { f(t, data) }

// FuncSource adapts a function to the RecordSource interface.
type FuncSource func(t atime.ATime, buf []byte)

// Fill implements RecordSource.
func (f FuncSource) Fill(t atime.ATime, buf []byte) { f(t, buf) }

// SilenceSource records an open microphone in a silent room.
type SilenceSource struct{ Byte byte }

// Fill implements RecordSource.
func (s SilenceSource) Fill(_ atime.ATime, buf []byte) {
	for i := range buf {
		buf[i] = s.Byte
	}
}

// CaptureSink accumulates played samples for inspection by tests. It keeps
// at most Max bytes (0 means unlimited) and is safe for concurrent reads.
type CaptureSink struct {
	Max int

	mu    sync.Mutex
	buf   []byte
	start atime.ATime
	set   bool
}

// Play implements PlaySink.
func (c *CaptureSink) Play(t atime.ATime, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.set {
		c.start, c.set = t, true
	}
	c.buf = append(c.buf, data...)
	if c.Max > 0 && len(c.buf) > c.Max {
		over := len(c.buf) - c.Max
		c.buf = c.buf[over:]
		c.start = atime.Add(c.start, over) // approximate: callers use frame-sized Max
	}
}

// Bytes returns a copy of the captured data and the device time of its
// first byte's frame.
func (c *CaptureSink) Bytes() ([]byte, atime.ATime) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf...), c.start
}

// SineSource records a continuous sine wave, phase-locked to device time
// so the captured signal is deterministic.
type SineSource struct {
	Freq float64 // Hz
	Amp  float64 // peak amplitude in the 16-bit linear domain
	Rate int
	Enc  sampleconv.Encoding
	Ch   int
}

// Fill implements RecordSource.
func (s SineSource) Fill(t atime.ATime, buf []byte) {
	fb := s.Enc.BytesPerSamples(1) * s.Ch
	n := len(buf) / fb
	w := 2 * math.Pi * s.Freq / float64(s.Rate)
	for i := 0; i < n; i++ {
		v := int(s.Amp * math.Sin(w*float64(uint32(atime.Add(t, i)))))
		frame := buf[i*fb : (i+1)*fb]
		for c := 0; c < s.Ch; c++ {
			switch s.Enc {
			case sampleconv.MU255:
				frame[c] = sampleconv.EncodeMuLaw(sampleconv.Clamp16(v))
			case sampleconv.ALAW:
				frame[c] = sampleconv.EncodeALaw(sampleconv.Clamp16(v))
			case sampleconv.LIN16:
				s16 := sampleconv.Clamp16(v)
				frame[2*c] = byte(s16)
				frame[2*c+1] = byte(uint16(s16) >> 8)
			default:
				// LIN32 in the 16-bit domain shifted up.
				s32 := int32(sampleconv.Clamp16(v)) << 16
				frame[4*c] = byte(s32)
				frame[4*c+1] = byte(uint32(s32) >> 8)
				frame[4*c+2] = byte(uint32(s32) >> 16)
				frame[4*c+3] = byte(uint32(s32) >> 24)
			}
		}
	}
}

// Loopback wires a device's output back to its input with a fixed delay,
// like a patch cable from line-out to line-in. It implements both PlaySink
// and RecordSource. The internal ring must cover the device's hardware
// ring plus the delay.
type Loopback struct {
	mu         sync.Mutex
	ring       *ring.Ring
	frameBytes int
	delay      int
	silence    byte
	written    atime.ATime
	wrSet      bool
}

// NewLoopback creates a loopback path. frames must be a power of two large
// enough to span the device's hardware ring plus delayFrames.
func NewLoopback(frames, frameBytes, delayFrames int, silence byte) *Loopback {
	l := &Loopback{
		ring:       ring.New(frames, frameBytes),
		frameBytes: frameBytes,
		delay:      delayFrames,
		silence:    silence,
	}
	l.ring.Fill(0, frames, silence)
	return l
}

// Play implements PlaySink: output samples enter the cable.
func (l *Loopback) Play(t atime.ATime, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring.WriteAt(t, data)
	end := atime.Add(t, len(data)/l.frameBytes)
	if !l.wrSet || atime.After(end, l.written) {
		l.written, l.wrSet = end, true
	}
}

// Fill implements RecordSource: the microphone hears the cable delayed.
func (l *Loopback) Fill(t atime.ATime, buf []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	src := atime.Add(t, -l.delay)
	n := len(buf) / l.frameBytes
	for i := 0; i < n; i++ {
		ft := atime.Add(src, i)
		out := buf[i*l.frameBytes : (i+1)*l.frameBytes]
		if !l.wrSet || !atime.Before(ft, l.written) ||
			atime.Before(ft, atime.Add(l.written, -l.ring.Frames())) {
			for j := range out {
				out[j] = l.silence
			}
			continue
		}
		l.ring.ReadAt(ft, out)
	}
}
