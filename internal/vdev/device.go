package vdev

import (
	"fmt"

	"audiofile/internal/atime"
	"audiofile/internal/ring"
	"audiofile/internal/sampleconv"
)

// PlaySink consumes samples the simulated DAC emits. Play is called with
// monotonically increasing start times and frame data in the device's
// native encoding.
type PlaySink interface {
	Play(t atime.ATime, data []byte)
}

// RecordSource produces the samples the simulated ADC captures. Fill must
// write exactly len(buf) bytes of frame data for the block starting at t.
type RecordSource interface {
	Fill(t atime.ATime, buf []byte)
}

// Config describes a virtual audio device.
type Config struct {
	Name     string
	Rate     int                 // sampling frequency in Hz
	Enc      sampleconv.Encoding // native hardware sample type
	Channels int                 // interleaved channels per frame
	HWFrames int                 // hardware ring size in frames (power of two)
	Clock    Clock               // sample counter; nil means a RealClock at Rate
	Sink     PlaySink            // nil means discard
	Source   RecordSource        // nil means silence
}

// Device is a simulated audio device: the hardware the device-dependent
// server (DDA) drives. Its methods are the operations the LoFi DSP
// firmware offered the host — read the time counter, write the play ring,
// read the record ring — plus Sync, which stands in for the per-sample
// interrupt routine: it advances hardware state to the clock's current
// tick, delivering play data to the sink (backfilling silence behind the
// DAC, as the firmware does) and filling the record ring from the source.
//
// A Device is not safe for concurrent use; the server's single-threaded
// main loop owns it.
type Device struct {
	cfg        Config
	clock      Clock
	hwPlay     *ring.Ring
	hwRec      *ring.Ring
	frameBytes int
	silence    byte

	now       atime.ATime // hardware state is consistent through now
	playValid atime.ATime // play ring holds host data through playValid

	playedFrames uint64 // frames delivered from host-written data
	silentFrames uint64 // frames delivered as backfilled silence
	recFrames    uint64 // frames captured into the record ring
}

// New creates a virtual device. It panics on invalid configuration
// (programming error), mirroring hardware bring-up assertions.
func New(cfg Config) *Device {
	if cfg.Rate <= 0 || cfg.Channels <= 0 {
		panic(fmt.Sprintf("vdev: bad config %+v", cfg))
	}
	if cfg.HWFrames == 0 {
		cfg.HWFrames = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = NewRealClock(cfg.Rate, 0)
	}
	if cfg.Sink == nil {
		cfg.Sink = DiscardSink{}
	}
	fb := cfg.Enc.BytesPerSamples(1) * cfg.Channels
	d := &Device{
		cfg:        cfg,
		clock:      cfg.Clock,
		hwPlay:     ring.New(cfg.HWFrames, fb),
		hwRec:      ring.New(cfg.HWFrames, fb),
		frameBytes: fb,
		silence:    cfg.Enc.SilenceByte(),
	}
	if cfg.Source == nil {
		cfg.Source = SilenceSource{Byte: d.silence}
		d.cfg.Source = cfg.Source
	}
	d.now = d.clock.Ticks()
	d.playValid = d.now
	// The DSP firmware initializes its buffers to silence before enabling
	// interrupts.
	d.hwPlay.Fill(0, cfg.HWFrames, d.silence)
	d.hwRec.Fill(0, cfg.HWFrames, d.silence)
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Rate returns the sampling frequency in Hz.
func (d *Device) Rate() int { return d.cfg.Rate }

// Encoding returns the native hardware sample type.
func (d *Device) Encoding() sampleconv.Encoding { return d.cfg.Enc }

// Channels returns the interleaved channel count.
func (d *Device) Channels() int { return d.cfg.Channels }

// FrameBytes returns the size of one frame (all channels) in bytes.
func (d *Device) FrameBytes() int { return d.frameBytes }

// HWFrames returns the hardware ring size in frames.
func (d *Device) HWFrames() int { return d.hwPlay.Frames() }

// Clock returns the device's sample clock.
func (d *Device) Clock() Clock { return d.clock }

// Stats returns cumulative frame counters: host-supplied frames played,
// silence frames played, and frames recorded.
func (d *Device) Stats() (played, silent, recorded uint64) {
	return d.playedFrames, d.silentFrames, d.recFrames
}

// Time synchronizes hardware state with the clock and returns the current
// device time.
func (d *Device) Time() atime.ATime {
	d.Sync()
	return d.now
}

// Now returns the device time as of the last Sync without touching the
// clock.
func (d *Device) Now() atime.ATime { return d.now }

// Sync advances the simulated hardware to the clock's current tick: frames
// that the DAC consumed since the last Sync are delivered to the sink (and
// their ring slots backfilled with silence), and the ADC's frames are
// pulled from the source into the record ring.
func (d *Device) Sync() {
	target := d.clock.Ticks()
	for atime.Before(d.now, target) {
		n := int(atime.Sub(target, d.now))
		if n > d.hwPlay.Frames() {
			n = d.hwPlay.Frames()
		}
		d.syncChunk(n)
	}
}

func (d *Device) syncChunk(n int) {
	start := d.now
	// Deliver play data to the sink.
	a, b := d.hwPlay.Region(start, n)
	d.cfg.Sink.Play(start, a)
	if b != nil {
		d.cfg.Sink.Play(atime.Add(start, len(a)/d.frameBytes), b)
	}
	// Account valid vs backfilled frames.
	valid := int(atime.Sub(d.playValid, start))
	if valid < 0 {
		valid = 0
	} else if valid > n {
		valid = n
	}
	d.playedFrames += uint64(valid)
	d.silentFrames += uint64(n - valid)
	// Backfill the consumed region with silence.
	d.hwPlay.Fill(start, n, d.silence)
	if atime.Before(d.playValid, atime.Add(start, n)) {
		d.playValid = atime.Add(start, n)
	}
	// Capture record data from the source.
	ra, rb := d.hwRec.Region(start, n)
	d.cfg.Source.Fill(start, ra)
	if rb != nil {
		d.cfg.Source.Fill(atime.Add(start, len(ra)/d.frameBytes), rb)
	}
	d.recFrames += uint64(n)
	d.now = atime.Add(start, n)
}

// WritePlay copies host frame data into the hardware play ring for the
// block starting at t. Frames that fall before the current device time or
// beyond the ring horizon (now + HWFrames) are discarded; it returns the
// number of frames accepted.
func (d *Device) WritePlay(t atime.ATime, data []byte) int {
	n := len(data) / d.frameBytes
	horizon := atime.Add(d.now, d.hwPlay.Frames())
	// Clip the block to [now, horizon).
	if atime.Before(t, d.now) {
		skip := int(atime.Sub(d.now, t))
		if skip >= n {
			return 0
		}
		t = d.now
		data = data[skip*d.frameBytes:]
		n -= skip
	}
	if !atime.Before(t, horizon) {
		return 0
	}
	if room := int(atime.Sub(horizon, t)); n > room {
		n = room
	}
	d.hwPlay.WriteAt(t, data[:n*d.frameBytes])
	if end := atime.Add(t, n); atime.After(end, d.playValid) {
		d.playValid = end
	}
	return n
}

// ReadRecord copies captured frame data for the block starting at t into
// buf. Frames outside the recorded window [now - HWFrames, now) read as
// silence; it returns the number of valid frames delivered.
func (d *Device) ReadRecord(t atime.ATime, buf []byte) int {
	n := len(buf) / d.frameBytes
	oldest := atime.Add(d.now, -d.hwRec.Frames())
	valid := 0
	for i := 0; i < n; i++ {
		ft := atime.Add(t, i)
		out := buf[i*d.frameBytes : (i+1)*d.frameBytes]
		if atime.Before(ft, oldest) || !atime.Before(ft, d.now) {
			for j := range out {
				out[j] = d.silence
			}
			continue
		}
		d.hwRec.ReadAt(ft, out)
		valid++
	}
	return valid
}
