// Package vdev simulates the audio hardware the AudioFile server drives: a
// sample-rate clock, small "hardware" play and record rings (the analogue
// of the LoFi DSP's shared-memory buffers), a sink consuming played
// samples, and a source producing recorded samples.
//
// The paper's servers keep a per-device time register consistent with a
// hardware counter; here the counter is a Clock, either derived from the
// host monotonic clock (RealClock, optionally skewed by some ppm to model
// crystal tolerance) or advanced explicitly (ManualClock, used by tests and
// benchmarks so no experiment has to wait on wall time).
package vdev

import (
	"sync"
	"time"

	"audiofile/internal/atime"
)

// Clock is a hardware sample counter for one audio device.
type Clock interface {
	// Ticks returns the current value of the sample counter.
	Ticks() atime.ATime
	// Rate returns the nominal sampling rate in Hz.
	Rate() int
}

// RealClock derives the sample counter from the host monotonic clock. A
// nonzero ppm models crystal frequency error (positive runs fast).
type RealClock struct {
	start time.Time
	rate  int
	scale float64
}

// NewRealClock returns a clock at the given rate, skewed by ppm parts per
// million.
func NewRealClock(rate int, ppm float64) *RealClock {
	return &RealClock{start: time.Now(), rate: rate, scale: float64(rate) * (1 + ppm/1e6)}
}

// Ticks implements Clock.
func (c *RealClock) Ticks() atime.ATime {
	return atime.ATime(uint64(time.Since(c.start).Seconds() * c.scale))
}

// Rate implements Clock.
func (c *RealClock) Rate() int { return c.rate }

// ManualClock is a sample counter advanced explicitly by the test or
// benchmark harness. It is safe for concurrent use.
type ManualClock struct {
	mu   sync.Mutex
	t    atime.ATime
	rate int
}

// NewManualClock returns a manual clock at the given rate, starting at 0.
func NewManualClock(rate int) *ManualClock {
	return &ManualClock{rate: rate}
}

// Ticks implements Clock.
func (c *ManualClock) Ticks() atime.ATime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Rate implements Clock.
func (c *ManualClock) Rate() int { return c.rate }

// Advance moves the clock forward n ticks.
func (c *ManualClock) Advance(n int) {
	c.mu.Lock()
	c.t = atime.Add(c.t, n)
	c.mu.Unlock()
}

// Set jumps the clock to an absolute tick value.
func (c *ManualClock) Set(t atime.ATime) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}
