package vdev

import (
	"bytes"
	"testing"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/sampleconv"
)

func newTestDevice(clk *ManualClock, sink PlaySink, src RecordSource) *Device {
	return New(Config{
		Name: "codec0", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 64, Clock: clk, Sink: sink, Source: src,
	})
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(8000)
	if c.Ticks() != 0 || c.Rate() != 8000 {
		t.Fatal("bad initial clock state")
	}
	c.Advance(100)
	if c.Ticks() != 100 {
		t.Errorf("Ticks = %d, want 100", c.Ticks())
	}
	c.Set(5)
	if c.Ticks() != 5 {
		t.Errorf("after Set, Ticks = %d", c.Ticks())
	}
}

func TestRealClockAdvances(t *testing.T) {
	c := NewRealClock(8000, 0)
	t0 := c.Ticks()
	time.Sleep(20 * time.Millisecond)
	t1 := c.Ticks()
	d := atime.Sub(t1, t0)
	// 20 ms at 8 kHz is 160 ticks; allow generous scheduling slop.
	if d < 100 || d > 8000 {
		t.Errorf("real clock advanced %d ticks over 20ms, want ~160", d)
	}
}

func TestRealClockSkew(t *testing.T) {
	fast := NewRealClock(1000000, 100000) // 10% fast for a visible effect
	slow := NewRealClock(1000000, 0)
	time.Sleep(10 * time.Millisecond)
	df := uint32(fast.Ticks())
	ds := uint32(slow.Ticks())
	if df <= ds {
		t.Errorf("skewed clock not faster: fast=%d slow=%d", df, ds)
	}
}

func TestDeviceAttributes(t *testing.T) {
	d := newTestDevice(NewManualClock(8000), nil, nil)
	if d.Name() != "codec0" || d.Rate() != 8000 || d.Encoding() != sampleconv.MU255 ||
		d.Channels() != 1 || d.FrameBytes() != 1 || d.HWFrames() != 64 {
		t.Errorf("bad attributes: %s %d %v %d %d %d",
			d.Name(), d.Rate(), d.Encoding(), d.Channels(), d.FrameBytes(), d.HWFrames())
	}
}

func TestPlayReachesSink(t *testing.T) {
	clk := NewManualClock(8000)
	sink := &CaptureSink{}
	d := newTestDevice(clk, sink, nil)
	data := []byte{1, 2, 3, 4}
	if n := d.WritePlay(0, data); n != 4 {
		t.Fatalf("WritePlay accepted %d, want 4", n)
	}
	clk.Advance(4)
	d.Sync()
	got, start := sink.Bytes()
	if start != 0 || !bytes.Equal(got, data) {
		t.Errorf("sink got %v at %d, want %v at 0", got, start, data)
	}
	played, silent, rec := d.Stats()
	if played != 4 || silent != 0 || rec != 4 {
		t.Errorf("stats = %d/%d/%d, want 4/0/4", played, silent, rec)
	}
}

func TestUnfedDeviceEmitsSilence(t *testing.T) {
	clk := NewManualClock(8000)
	sink := &CaptureSink{}
	d := newTestDevice(clk, sink, nil)
	clk.Advance(10)
	d.Sync()
	got, _ := sink.Bytes()
	for i, b := range got {
		if b != 0xFF { // µ-law silence
			t.Fatalf("byte %d = %#x, want µ-law silence 0xff", i, b)
		}
	}
	played, silent, _ := d.Stats()
	if played != 0 || silent != 10 {
		t.Errorf("stats played/silent = %d/%d, want 0/10", played, silent)
	}
}

func TestConsumedRegionBackfilled(t *testing.T) {
	clk := NewManualClock(8000)
	sink := &CaptureSink{}
	d := newTestDevice(clk, sink, nil)
	d.WritePlay(0, []byte{1, 2, 3, 4})
	clk.Advance(4)
	d.Sync()
	// Advance a whole ring revolution: the same slots must now be silence.
	clk.Advance(64)
	d.Sync()
	got, _ := sink.Bytes()
	for i := 4; i < len(got); i++ {
		if got[i] != 0xFF {
			t.Fatalf("stale data at %d: %#x", i, got[i])
		}
	}
}

func TestWritePlayClipsPast(t *testing.T) {
	clk := NewManualClock(8000)
	sink := &CaptureSink{}
	d := newTestDevice(clk, sink, nil)
	clk.Advance(10)
	d.Sync()
	// Write 6 frames starting 4 in the past: only frames 10,11 survive.
	n := d.WritePlay(6, []byte{1, 2, 3, 4, 5, 6})
	if n != 2 {
		t.Fatalf("accepted %d frames, want 2", n)
	}
	clk.Advance(2)
	d.Sync()
	got, _ := sink.Bytes()
	want := append(bytes.Repeat([]byte{0xFF}, 10), 5, 6)
	if !bytes.Equal(got, want) {
		t.Errorf("sink got %v, want %v", got, want)
	}
}

func TestWritePlayClipsFuture(t *testing.T) {
	clk := NewManualClock(8000)
	d := newTestDevice(clk, nil, nil)
	// Ring is 64 frames; a 100-frame write is clipped to 64.
	if n := d.WritePlay(0, make([]byte, 100)); n != 64 {
		t.Errorf("accepted %d frames, want 64", n)
	}
	// A write entirely beyond the horizon is rejected.
	if n := d.WritePlay(64, []byte{1}); n != 0 {
		t.Errorf("beyond-horizon write accepted %d frames", n)
	}
}

func TestRecordFromSource(t *testing.T) {
	clk := NewManualClock(8000)
	var counter byte
	src := FuncSource(func(_ atime.ATime, buf []byte) {
		for i := range buf {
			counter++
			buf[i] = counter
		}
	})
	d := newTestDevice(clk, nil, src)
	clk.Advance(8)
	d.Sync()
	buf := make([]byte, 8)
	if n := d.ReadRecord(0, buf); n != 8 {
		t.Fatalf("ReadRecord valid = %d, want 8", n)
	}
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(buf, want) {
		t.Errorf("recorded %v, want %v", buf, want)
	}
}

func TestRecordOutsideWindowIsSilence(t *testing.T) {
	clk := NewManualClock(8000)
	d := newTestDevice(clk, nil, SineSource{Freq: 1000, Amp: 10000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1})
	clk.Advance(200) // more than the 64-frame ring
	d.Sync()
	buf := make([]byte, 4)
	// Too old.
	if n := d.ReadRecord(0, buf); n != 0 {
		t.Errorf("too-old read valid = %d, want 0", n)
	}
	for _, b := range buf {
		if b != 0xFF {
			t.Errorf("too-old read returned %#x, want silence", b)
		}
	}
	// Future.
	if n := d.ReadRecord(300, buf); n != 0 {
		t.Errorf("future read valid = %d, want 0", n)
	}
}

func TestSineSourceDeterministic(t *testing.T) {
	s := SineSource{Freq: 440, Amp: 8000, Rate: 8000, Enc: sampleconv.LIN16, Ch: 2}
	a := make([]byte, 64)
	b := make([]byte, 64)
	s.Fill(100, a)
	s.Fill(100, b)
	if !bytes.Equal(a, b) {
		t.Error("SineSource not deterministic for same time")
	}
	// Stereo: both channels identical.
	if a[0] != a[2] || a[1] != a[3] {
		t.Error("stereo channels differ")
	}
}

func TestLoopbackPath(t *testing.T) {
	clk := NewManualClock(8000)
	lb := NewLoopback(256, 1, 0, 0xFF)
	d := New(Config{
		Name: "loop", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 64, Clock: clk, Sink: lb, Source: lb,
	})
	data := []byte{10, 20, 30, 40}
	d.WritePlay(0, data)
	clk.Advance(4)
	d.Sync()
	buf := make([]byte, 4)
	d.ReadRecord(0, buf)
	if !bytes.Equal(buf, data) {
		t.Errorf("loopback recorded %v, want %v", buf, data)
	}
}

func TestLoopbackDelay(t *testing.T) {
	clk := NewManualClock(8000)
	lb := NewLoopback(256, 1, 2, 0xFF)
	d := New(Config{
		Name: "loop", Rate: 8000, Enc: sampleconv.MU255, Channels: 1,
		HWFrames: 64, Clock: clk, Sink: lb, Source: lb,
	})
	d.WritePlay(0, []byte{10, 20, 30, 40})
	clk.Advance(6)
	d.Sync()
	buf := make([]byte, 6)
	d.ReadRecord(0, buf)
	want := []byte{0xFF, 0xFF, 10, 20, 30, 40}
	if !bytes.Equal(buf, want) {
		t.Errorf("delayed loopback recorded %v, want %v", buf, want)
	}
}

func TestSyncAcrossLargeGap(t *testing.T) {
	// Advancing far beyond the hardware ring must not wedge or corrupt.
	clk := NewManualClock(8000)
	sink := &CaptureSink{Max: 128}
	d := newTestDevice(clk, sink, nil)
	clk.Advance(1000)
	d.Sync()
	if d.Now() != 1000 {
		t.Errorf("Now = %d, want 1000", d.Now())
	}
	_, silent, rec := d.Stats()
	if silent != 1000 || rec != 1000 {
		t.Errorf("stats silent/rec = %d/%d, want 1000/1000", silent, rec)
	}
}

func TestTimeSyncs(t *testing.T) {
	clk := NewManualClock(8000)
	d := newTestDevice(clk, nil, nil)
	clk.Advance(42)
	if got := d.Time(); got != 42 {
		t.Errorf("Time = %d, want 42", got)
	}
}

func TestFuncSinkAndSource(t *testing.T) {
	var sunk []byte
	sink := FuncSink(func(_ atime.ATime, data []byte) {
		sunk = append(sunk, data...)
	})
	src := FuncSource(func(_ atime.ATime, buf []byte) {
		for i := range buf {
			buf[i] = 0x42
		}
	})
	clk := NewManualClock(8000)
	d := newTestDevice(clk, sink, src)
	d.WritePlay(0, []byte{1, 2, 3})
	clk.Advance(3)
	d.Sync()
	if !bytes.Equal(sunk, []byte{1, 2, 3}) {
		t.Errorf("FuncSink got %v", sunk)
	}
	buf := make([]byte, 3)
	d.ReadRecord(0, buf)
	if !bytes.Equal(buf, []byte{0x42, 0x42, 0x42}) {
		t.Errorf("FuncSource gave %v", buf)
	}
}

func TestCaptureSinkMax(t *testing.T) {
	s := &CaptureSink{Max: 8}
	s.Play(0, []byte{1, 2, 3, 4, 5, 6})
	s.Play(6, []byte{7, 8, 9, 10})
	got, start := s.Bytes()
	if len(got) != 8 {
		t.Fatalf("kept %d bytes, want 8", len(got))
	}
	if !bytes.Equal(got, []byte{3, 4, 5, 6, 7, 8, 9, 10}) {
		t.Errorf("kept %v", got)
	}
	if start != 2 {
		t.Errorf("start = %d, want 2", start)
	}
}

func TestDeviceConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	New(Config{Rate: 0, Channels: 1})
}
