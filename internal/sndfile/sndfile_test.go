package sndfile

import (
	"bytes"
	"testing"
	"testing/quick"

	"audiofile/internal/sampleconv"
)

func sample(enc sampleconv.Encoding, rate, ch, frames int) *Sound {
	fb := enc.BytesPerSamples(1) * ch
	data := make([]byte, frames*fb)
	for i := range data {
		data[i] = byte(i * 7)
	}
	return &Sound{Info: Info{Encoding: enc, Rate: rate, Channels: ch}, Data: data}
}

func TestAURoundTrip(t *testing.T) {
	for _, enc := range []sampleconv.Encoding{sampleconv.MU255, sampleconv.ALAW, sampleconv.LIN16, sampleconv.LIN32} {
		s := sample(enc, 8000, 1, 64)
		var buf bytes.Buffer
		if err := WriteAU(&buf, s); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got, err := ReadAU(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if got.Encoding != enc || got.Rate != 8000 || got.Channels != 1 {
			t.Errorf("%v: info = %+v", enc, got.Info)
		}
		if !bytes.Equal(got.Data, s.Data) {
			t.Errorf("%v: data mismatch", enc)
		}
	}
}

func TestWAVRoundTrip(t *testing.T) {
	for _, enc := range []sampleconv.Encoding{sampleconv.MU255, sampleconv.ALAW, sampleconv.LIN16, sampleconv.LIN32} {
		s := sample(enc, 44100, 2, 64)
		var buf bytes.Buffer
		if err := WriteWAV(&buf, s); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got, err := ReadWAV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if got.Encoding != enc || got.Rate != 44100 || got.Channels != 2 {
			t.Errorf("%v: info = %+v", enc, got.Info)
		}
		if !bytes.Equal(got.Data, s.Data) {
			t.Errorf("%v: data mismatch", enc)
		}
	}
}

func TestSniff(t *testing.T) {
	s := sample(sampleconv.MU255, 8000, 1, 32)
	var au, wav bytes.Buffer
	WriteAU(&au, s)
	WriteWAV(&wav, s)
	got, err := Read(bytes.NewReader(au.Bytes()))
	if err != nil || got.Encoding != sampleconv.MU255 {
		t.Errorf("AU sniff: %v %v", got, err)
	}
	got, err = Read(bytes.NewReader(wav.Bytes()))
	if err != nil || got.Encoding != sampleconv.MU255 {
		t.Errorf("WAV sniff: %v %v", got, err)
	}
	if _, err := Read(bytes.NewReader([]byte("rawwwdataaa"))); err != ErrUnknownFormat {
		t.Errorf("raw sniff err = %v", err)
	}
}

func TestFramesAndDuration(t *testing.T) {
	s := sample(sampleconv.LIN16, 8000, 2, 4000)
	if s.Frames() != 4000 {
		t.Errorf("Frames = %d", s.Frames())
	}
	if s.Duration() != 0.5 {
		t.Errorf("Duration = %g", s.Duration())
	}
}

func TestWAVSkipsUnknownChunks(t *testing.T) {
	s := sample(sampleconv.LIN16, 8000, 1, 16)
	var buf bytes.Buffer
	WriteWAV(&buf, s)
	// Splice a LIST chunk between fmt and data.
	raw := buf.Bytes()
	var out bytes.Buffer
	out.Write(raw[:36])
	out.Write([]byte{'L', 'I', 'S', 'T', 5, 0, 0, 0, 'x', 'y', 'z', 'z', 'y', 0}) // odd size + pad
	out.Write(raw[36:])
	// Fix the RIFF size.
	b := out.Bytes()
	b[4] = byte(len(b) - 8)
	got, err := ReadWAV(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, s.Data) {
		t.Error("data corrupted by chunk skipping")
	}
}

func TestTruncatedFiles(t *testing.T) {
	s := sample(sampleconv.LIN16, 8000, 1, 64)
	var au bytes.Buffer
	WriteAU(&au, s)
	for _, n := range []int{0, 3, 10, 30} {
		if _, err := ReadAU(bytes.NewReader(au.Bytes()[:n])); err == nil {
			t.Errorf("truncated AU (%d bytes) did not error", n)
		}
	}
	var wav bytes.Buffer
	WriteWAV(&wav, s)
	for _, n := range []int{0, 3, 11, 20, 43} {
		if _, err := ReadWAV(bytes.NewReader(wav.Bytes()[:n])); err == nil {
			t.Errorf("truncated WAV (%d bytes) did not error", n)
		}
	}
}

func TestBadHeaders(t *testing.T) {
	if _, err := ReadAU(bytes.NewReader(make([]byte, 64))); err != ErrUnknownFormat {
		t.Errorf("zero AU header err = %v", err)
	}
	if _, err := ReadWAV(bytes.NewReader(make([]byte, 64))); err != ErrUnknownFormat {
		t.Errorf("zero WAV header err = %v", err)
	}
}

// Property: arbitrary byte payloads survive an AU round trip for µ-law.
func TestQuickAUPayload(t *testing.T) {
	f := func(data []byte) bool {
		s := &Sound{Info: Info{Encoding: sampleconv.MU255, Rate: 8000, Channels: 1}, Data: data}
		var buf bytes.Buffer
		if err := WriteAU(&buf, s); err != nil {
			return false
		}
		got, err := ReadAU(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		return bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: fuzzing the readers never panics.
func TestQuickNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("reader panicked")
			}
		}()
		ReadAU(bytes.NewReader(data))  //nolint:errcheck
		ReadWAV(bytes.NewReader(data)) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
