// Package sndfile reads and writes the sound file formats the AudioFile
// clients handle: raw sample data (all aplay handled in 1993), plus the
// Sun/NeXT .au and Microsoft RIFF/WAVE self-describing formats the paper
// lists as a desirable extension ("it would be appropriate to extend
// aplay to handle a variety of popular sound file formats").
package sndfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"audiofile/internal/sampleconv"
)

// Info describes decoded sound data.
type Info struct {
	Encoding sampleconv.Encoding
	Rate     int
	Channels int
}

// Sound is decoded sound data with its format. Data is in the native
// little-endian layout used throughout the system.
type Sound struct {
	Info
	Data []byte
}

// Frames returns the number of sample frames in the sound.
func (s *Sound) Frames() int {
	fb := s.Encoding.BytesPerSamples(1) * s.Channels
	if fb == 0 {
		return 0
	}
	return len(s.Data) / fb
}

// Duration returns the playing time in seconds.
func (s *Sound) Duration() float64 {
	if s.Rate == 0 {
		return 0
	}
	return float64(s.Frames()) / float64(s.Rate)
}

const (
	auMagic = 0x2e736e64 // ".snd"
	riffTag = 0x46464952 // "RIFF" little-endian
	waveTag = 0x45564157 // "WAVE"
	fmtTag  = 0x20746d66 // "fmt "
	dataTag = 0x61746164 // "data"
)

// AU encoding codes.
const (
	auMuLaw = 1
	auLin16 = 3
	auLin32 = 5
	auALaw  = 27
)

// WAVE format codes.
const (
	wavePCM   = 1
	waveALaw  = 6
	waveMuLaw = 7
)

// ErrUnknownFormat reports data in no recognizable container.
var ErrUnknownFormat = errors.New("sndfile: unknown format")

// ReadAU decodes a Sun/NeXT .au stream.
func ReadAU(r io.Reader) (*Sound, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	be := binary.BigEndian
	if be.Uint32(hdr[0:]) != auMagic {
		return nil, ErrUnknownFormat
	}
	offset := be.Uint32(hdr[4:])
	size := be.Uint32(hdr[8:])
	encoding := be.Uint32(hdr[12:])
	rate := be.Uint32(hdr[16:])
	channels := be.Uint32(hdr[20:])
	if offset < 24 || channels == 0 || channels > 16 {
		return nil, fmt.Errorf("sndfile: bad AU header (offset %d, channels %d)", offset, channels)
	}
	if _, err := io.CopyN(io.Discard, r, int64(offset-24)); err != nil {
		return nil, err
	}
	var data []byte
	var err error
	if size == 0xFFFFFFFF {
		data, err = io.ReadAll(r)
	} else {
		data = make([]byte, size)
		_, err = io.ReadFull(r, data)
	}
	if err != nil {
		return nil, err
	}
	s := &Sound{Info: Info{Rate: int(rate), Channels: int(channels)}, Data: data}
	switch encoding {
	case auMuLaw:
		s.Encoding = sampleconv.MU255
	case auALaw:
		s.Encoding = sampleconv.ALAW
	case auLin16:
		s.Encoding = sampleconv.LIN16
		sampleconv.SwapBytes(sampleconv.LIN16, s.Data) // AU is big-endian
	case auLin32:
		s.Encoding = sampleconv.LIN32
		sampleconv.SwapBytes(sampleconv.LIN32, s.Data)
	default:
		return nil, fmt.Errorf("sndfile: unsupported AU encoding %d", encoding)
	}
	return s, nil
}

// WriteAU encodes a sound as a Sun/NeXT .au stream.
func WriteAU(w io.Writer, s *Sound) error {
	var enc uint32
	data := s.Data
	switch s.Encoding {
	case sampleconv.MU255:
		enc = auMuLaw
	case sampleconv.ALAW:
		enc = auALaw
	case sampleconv.LIN16:
		enc = auLin16
		data = append([]byte(nil), data...)
		sampleconv.SwapBytes(sampleconv.LIN16, data)
	case sampleconv.LIN32:
		enc = auLin32
		data = append([]byte(nil), data...)
		sampleconv.SwapBytes(sampleconv.LIN32, data)
	default:
		return fmt.Errorf("sndfile: cannot write encoding %v as AU", s.Encoding)
	}
	var hdr [24]byte
	be := binary.BigEndian
	be.PutUint32(hdr[0:], auMagic)
	be.PutUint32(hdr[4:], 24)
	be.PutUint32(hdr[8:], uint32(len(data)))
	be.PutUint32(hdr[12:], enc)
	be.PutUint32(hdr[16:], uint32(s.Rate))
	be.PutUint32(hdr[20:], uint32(s.Channels))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadWAV decodes a RIFF/WAVE stream (PCM, µ-law, or A-law).
func ReadWAV(r io.Reader) (*Sound, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != riffTag || le.Uint32(hdr[8:]) != waveTag {
		return nil, ErrUnknownFormat
	}
	var s *Sound
	var format, bits uint16
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF && s != nil {
				break
			}
			return nil, err
		}
		tag := le.Uint32(chunk[0:])
		size := le.Uint32(chunk[4:])
		switch tag {
		case fmtTag:
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, err
			}
			if size < 16 {
				return nil, fmt.Errorf("sndfile: short fmt chunk")
			}
			format = le.Uint16(body[0:])
			channels := le.Uint16(body[2:])
			rate := le.Uint32(body[4:])
			bits = le.Uint16(body[14:])
			s = &Sound{Info: Info{Rate: int(rate), Channels: int(channels)}}
		case dataTag:
			if s == nil {
				return nil, fmt.Errorf("sndfile: data chunk before fmt")
			}
			s.Data = make([]byte, size)
			if _, err := io.ReadFull(r, s.Data); err != nil {
				return nil, err
			}
			switch {
			case format == wavePCM && bits == 16:
				s.Encoding = sampleconv.LIN16
			case format == wavePCM && bits == 32:
				s.Encoding = sampleconv.LIN32
			case format == waveMuLaw:
				s.Encoding = sampleconv.MU255
			case format == waveALaw:
				s.Encoding = sampleconv.ALAW
			default:
				return nil, fmt.Errorf("sndfile: unsupported WAVE format %d/%d bits", format, bits)
			}
			return s, nil
		default:
			// Skip unknown chunks (and their pad byte).
			if _, err := io.CopyN(io.Discard, r, int64(size+size%2)); err != nil {
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("sndfile: no data chunk")
}

// WriteWAV encodes a sound as a RIFF/WAVE stream.
func WriteWAV(w io.Writer, s *Sound) error {
	var format uint16
	var bits uint16
	switch s.Encoding {
	case sampleconv.MU255:
		format, bits = waveMuLaw, 8
	case sampleconv.ALAW:
		format, bits = waveALaw, 8
	case sampleconv.LIN16:
		format, bits = wavePCM, 16
	case sampleconv.LIN32:
		format, bits = wavePCM, 32
	default:
		return fmt.Errorf("sndfile: cannot write encoding %v as WAV", s.Encoding)
	}
	le := binary.LittleEndian
	blockAlign := int(bits) / 8 * s.Channels
	hdr := make([]byte, 44)
	le.PutUint32(hdr[0:], riffTag)
	le.PutUint32(hdr[4:], uint32(36+len(s.Data)))
	le.PutUint32(hdr[8:], waveTag)
	le.PutUint32(hdr[12:], fmtTag)
	le.PutUint32(hdr[16:], 16)
	le.PutUint16(hdr[20:], format)
	le.PutUint16(hdr[22:], uint16(s.Channels))
	le.PutUint32(hdr[24:], uint32(s.Rate))
	le.PutUint32(hdr[28:], uint32(s.Rate*blockAlign))
	le.PutUint16(hdr[32:], uint16(blockAlign))
	le.PutUint16(hdr[34:], bits)
	le.PutUint32(hdr[36:], dataTag)
	le.PutUint32(hdr[40:], uint32(len(s.Data)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(s.Data)
	return err
}

// Read sniffs the stream's magic and decodes AU or WAV; raw data is not
// sniffable and must be read directly.
func Read(r io.ReadSeeker) (*Sound, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch {
	case binary.BigEndian.Uint32(magic[:]) == auMagic:
		return ReadAU(r)
	case binary.LittleEndian.Uint32(magic[:]) == riffTag:
		return ReadWAV(r)
	}
	return nil, ErrUnknownFormat
}
