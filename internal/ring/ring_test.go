package ring

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"audiofile/internal/atime"
)

func TestRoundFrames(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 4, 1000: 1024, 32000: 32768, 65536: 65536}
	for in, want := range cases {
		if got := RoundFrames(in); got != want {
			t.Errorf("RoundFrames(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, bad := range []struct{ frames, fb int }{{3, 1}, {0, 1}, {-4, 1}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", bad.frames, bad.fb)
				}
			}()
			New(bad.frames, bad.fb)
		}()
	}
}

func TestWriteReadSimple(t *testing.T) {
	r := New(16, 2)
	data := []byte{1, 2, 3, 4, 5, 6}
	r.WriteAt(4, data)
	got := make([]byte, 6)
	r.ReadAt(4, got)
	if !bytes.Equal(got, data) {
		t.Errorf("read back %v, want %v", got, data)
	}
}

func TestWrapWithinRing(t *testing.T) {
	r := New(8, 1)
	data := []byte{10, 11, 12, 13}
	r.WriteAt(6, data) // occupies offsets 6,7,0,1
	got := make([]byte, 4)
	r.ReadAt(6, got)
	if !bytes.Equal(got, data) {
		t.Errorf("wrap read %v, want %v", got, data)
	}
	// Also readable frame by frame at wrapped offsets.
	one := make([]byte, 1)
	r.ReadAt(6+2, one)
	if one[0] != 12 {
		t.Errorf("frame at t=8 is %d, want 12", one[0])
	}
}

func TestTimeWrapContinuity(t *testing.T) {
	// Writing across the 2^32 device-time wrap must be continuous because
	// the capacity is a power of two.
	r := New(16, 1)
	start := atime.ATime(math.MaxUint32 - 3)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.WriteAt(start, data)
	got := make([]byte, 8)
	r.ReadAt(start, got)
	if !bytes.Equal(got, data) {
		t.Errorf("time-wrap read %v, want %v", got, data)
	}
	// The frame at t=0 (4 frames after start) must be data[4].
	one := make([]byte, 1)
	r.ReadAt(0, one)
	if one[0] != 5 {
		t.Errorf("frame at wrap = %d, want 5", one[0])
	}
}

func TestRegionSlices(t *testing.T) {
	r := New(8, 2)
	a, b := r.Region(0, 8)
	if len(a) != 16 || b != nil {
		t.Errorf("full region from 0: len(a)=%d b=%v", len(a), b)
	}
	a, b = r.Region(6, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Errorf("wrapped region: len(a)=%d len(b)=%d, want 4/4", len(a), len(b))
	}
	// Region slices alias storage: writing through them is visible to ReadAt.
	a[0] = 99
	got := make([]byte, 2)
	r.ReadAt(6, got)
	if got[0] != 99 {
		t.Error("region slice does not alias ring storage")
	}
}

func TestRegionPanicsOnOversize(t *testing.T) {
	r := New(8, 1)
	defer func() {
		if recover() == nil {
			t.Error("oversized Region did not panic")
		}
	}()
	r.Region(0, 9)
}

func TestFill(t *testing.T) {
	r := New(8, 2)
	for i := 0; i < 16; i++ {
		a, _ := r.Region(0, 8)
		a[i] = byte(i + 1)
	}
	r.Fill(6, 4, 0xAA) // wraps
	got := make([]byte, 8)
	r.ReadAt(6, got)
	for i, v := range got {
		if v != 0xAA {
			t.Errorf("fill[%d] = %#x, want 0xaa", i, v)
		}
	}
	// Frames before the filled region are untouched.
	got = make([]byte, 2)
	r.ReadAt(5, got)
	if got[0] == 0xAA && got[1] == 0xAA {
		t.Error("fill overwrote frame before region")
	}
}

// Property: data written at time t is read back identically at t, for any
// t, as long as it fits in the ring.
func TestQuickRoundTrip(t *testing.T) {
	r := New(64, 2)
	f := func(start uint32, data []byte) bool {
		n := len(data) / 2 * 2
		if n > r.Bytes() {
			n = r.Bytes()
		}
		d := data[:n]
		r.WriteAt(atime.ATime(start), d)
		got := make([]byte, n)
		r.ReadAt(atime.ATime(start), got)
		return bytes.Equal(got, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two writes to disjoint time regions (within capacity) don't
// interfere.
func TestQuickDisjointWrites(t *testing.T) {
	r := New(64, 1)
	f := func(start uint32, a, b byte) bool {
		t0 := atime.ATime(start)
		r.WriteAt(t0, []byte{a, a, a, a})
		r.WriteAt(t0+4, []byte{b, b, b, b})
		got := make([]byte, 8)
		r.ReadAt(t0, got)
		for i := 0; i < 4; i++ {
			if got[i] != a || got[4+i] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
