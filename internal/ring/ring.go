// Package ring implements the circular, device-time-indexed sample buffers
// at the heart of the AudioFile server: the ~4 second per-device play and
// record buffers, and the small "hardware" rings inside the simulated audio
// devices.
//
// A ring holds a fixed, power-of-two number of frames (a frame is one
// sample tick across all channels). Frame f of the audio timeline lives at
// ring offset f & (frames-1); because the capacity divides 2^32, the
// mapping stays continuous when device time wraps, exactly like the
// DSP56001 circular addressing the paper relies on.
package ring

import (
	"fmt"

	"audiofile/internal/atime"
)

// Ring is a time-indexed circular buffer of sample frames.
type Ring struct {
	buf        []byte
	frames     uint32 // power of two
	mask       uint32
	frameBytes int

	// filled counts frames written by Fill over the ring's lifetime —
	// for the server's play buffer that is exactly the silence-filled
	// sample count the observability layer reports. Plain (not atomic):
	// a Ring is single-owner, guarded by its device's engine lock; the
	// metrics snapshot reads it under the same lock.
	filled uint64
}

// RoundFrames rounds n up to the next power of two (minimum 2).
func RoundFrames(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a ring holding the given number of frames, each frameBytes
// long. frames must be a power of two.
func New(frames, frameBytes int) *Ring {
	if frames <= 0 || frames&(frames-1) != 0 {
		panic(fmt.Sprintf("ring: frames %d is not a power of two", frames))
	}
	if frameBytes <= 0 {
		panic("ring: frameBytes must be positive")
	}
	return &Ring{
		buf:        make([]byte, frames*frameBytes),
		frames:     uint32(frames),
		mask:       uint32(frames - 1),
		frameBytes: frameBytes,
	}
}

// Frames returns the ring capacity in frames.
func (r *Ring) Frames() int { return int(r.frames) }

// FrameBytes returns the size of one frame in bytes.
func (r *Ring) FrameBytes() int { return r.frameBytes }

// Bytes returns the total buffer size in bytes.
func (r *Ring) Bytes() int { return len(r.buf) }

// Region returns the storage for nframes frames starting at time t as at
// most two contiguous byte slices (two when the region wraps the end of
// the buffer). nframes must not exceed the ring capacity. The slices alias
// the ring's storage: callers may read, overwrite, or mix in place.
func (r *Ring) Region(t atime.ATime, nframes int) (a, b []byte) {
	if nframes < 0 || uint32(nframes) > r.frames {
		panic(fmt.Sprintf("ring: region of %d frames exceeds capacity %d", nframes, r.frames))
	}
	start := uint32(t) & r.mask
	first := r.frames - start
	if uint32(nframes) <= first {
		off := int(start) * r.frameBytes
		return r.buf[off : off+nframes*r.frameBytes], nil
	}
	off := int(start) * r.frameBytes
	a = r.buf[off : off+int(first)*r.frameBytes]
	b = r.buf[:(nframes-int(first))*r.frameBytes]
	return a, b
}

// WriteAt copies frame data into the ring starting at time t. len(data)
// must be a whole number of frames and at most the ring size.
func (r *Ring) WriteAt(t atime.ATime, data []byte) {
	n := len(data) / r.frameBytes
	a, b := r.Region(t, n)
	copy(a, data)
	if b != nil {
		copy(b, data[len(a):])
	}
}

// ReadAt copies frame data out of the ring starting at time t into buf.
// len(buf) must be a whole number of frames and at most the ring size.
func (r *Ring) ReadAt(t atime.ATime, buf []byte) {
	n := len(buf) / r.frameBytes
	a, b := r.Region(t, n)
	copy(buf, a)
	if b != nil {
		copy(buf[len(a):], b)
	}
}

// Fill writes the byte value v over nframes frames starting at time t
// (used for silence fill).
func (r *Ring) Fill(t atime.ATime, nframes int, v byte) {
	a, b := r.Region(t, nframes)
	for i := range a {
		a[i] = v
	}
	for i := range b {
		b[i] = v
	}
	r.filled += uint64(nframes)
}

// FilledFrames returns the cumulative number of frames written by Fill.
func (r *Ring) FilledFrames() uint64 { return r.filled }

// ResetFilledFrames zeroes the fill counter. Device bring-up fills the
// whole ring with silence once; resetting afterwards keeps the counter
// meaning "silence inserted during operation".
func (r *Ring) ResetFilledFrames() { r.filled = 0 }
