package metrics

import (
	"testing"
	"time"
)

// BenchmarkMetricsHotPath is the allocation gate for the observation
// path: the exact sequence a hot request performs (counter add, gauge
// touch, two histogram observations) must be allocation-free. CI fails
// on any BenchmarkMetrics* line reporting >0 allocs/op.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	reqs := r.Counter("requests")
	depth := r.Gauge("depth")
	lat := r.Histogram("latency_ns")
	size := r.Histogram("bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs.Inc()
		depth.Add(1)
		lat.ObserveDuration(time.Duration(i) * time.Nanosecond)
		size.Observe(int64(i & 0xFFFF))
		depth.Add(-1)
	}
}

// BenchmarkMetricsObserve isolates a single histogram observation.
func BenchmarkMetricsObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
