package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1000 -> bucket 10.
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0+1+2+3+1000+0 {
		t.Fatalf("sum = %d, want 1006", s.Sum)
	}
	want := map[uint8]uint64{0: 2, 1: 1, 2: 2, 10: 1} // -5 clamps to 0
	got := map[uint8]uint64{}
	for _, b := range s.Buckets {
		got[b.Bit] = b.Count
	}
	for bit, n := range want {
		if got[bit] != n {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", bit, got[bit], n, s)
		}
	}
}

func TestHistogramClampsHugeValues(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Bit != NumBuckets-1 {
		t.Fatalf("huge value not clamped into last bucket: %+v", s)
	}
	if s.Sum != 1<<62 {
		t.Fatalf("sum should be exact even for clamped values: %d", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 7, upper bound 127
	}
	h.Observe(100000) // bucket 17, upper bound 131071
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 127 {
		t.Errorf("p50 = %d, want 127", q)
	}
	if q := s.Quantile(0.99); q != 127 {
		t.Errorf("p99 = %d, want 127 (99 of 100 observations are 100)", q)
	}
	if m := s.Max(); m != 131071 {
		t.Errorf("max = %d, want 131071", m)
	}
	if mean := s.Mean(); mean < 1000 || mean > 1200 {
		t.Errorf("mean = %f, want ~1099", mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const gor, per = 8, 1000
	for i := 0; i < gor; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.ObserveDuration(time.Duration(j) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != gor*per {
		t.Fatalf("count = %d, want %d", got, gor*per)
	}
}

func TestRegistryExpvar(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("server.requests")
	g := r.Gauge("server.clients")
	h := r.Histogram("dispatch.play_ns")
	c.Add(3)
	g.Set(2)
	h.Observe(1500)

	var buf bytes.Buffer
	if err := r.WriteExpvar(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, buf.String())
	}
	if m["server.requests"].(float64) != 3 {
		t.Errorf("requests = %v", m["server.requests"])
	}
	if m["server.clients"].(float64) != 2 {
		t.Errorf("clients = %v", m["server.clients"])
	}
	hist, ok := m["dispatch.play_ns"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Errorf("histogram = %v", m["dispatch.play_ns"])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Counter("x")
}

func TestSnapshotRoundTripsJSON(t *testing.T) {
	var h Histogram
	h.Observe(12)
	h.Observe(40000)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s HistogramSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Count != 2 || s.Sum != 40012 || len(s.Buckets) != 2 {
		t.Fatalf("round trip lost data: %+v", s)
	}
}
