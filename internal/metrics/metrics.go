// Package metrics is the server's zero-allocation observability core:
// atomic counters, gauges, and fixed-bucket histograms that the hot
// paths (dispatch, engine locks, the wire writer) update without
// allocating, plus a registry that names every metric once at startup
// so export endpoints can walk them.
//
// The design splits cost asymmetrically. Observation — the operation
// that runs per request, per lock acquisition, per writev — is a handful
// of atomic adds on pre-registered structs reached through direct
// pointers: no map lookups, no interface boxing, no time formatting.
// Export — the operation that runs when a human or a poller asks — walks
// the registry, snapshots each metric, and may allocate freely.
//
// Histograms use fixed power-of-two buckets: a value v lands in bucket
// bits.Len64(v), so bucket i covers [2^(i-1), 2^i). That turns Observe
// into one BSR instruction plus three atomic adds, needs no bucket
// configuration per metric, and still answers the questions an operator
// asks of latency and size distributions (median, tail, max order of
// magnitude).
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (it may go down).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the fixed histogram bucket count. Bucket i counts values
// v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 counts
// zeros. 40 buckets cover up to ~5.5e11 — about nine minutes of
// nanoseconds or half a terabyte of bytes; larger values clamp into the
// last bucket (Sum still accumulates them exactly).
const NumBuckets = 40

// Histogram is a fixed-bucket power-of-two histogram. Observe is
// allocation-free and safe from any goroutine.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
}

// ObserveN records n observations of the same value v with one bucket
// update — the batched form the dispatcher uses when a run of requests
// shares a measurement (per-request latency of a coalesced batch). It is
// exactly equivalent to calling Observe(v) n times.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	h.buckets[b].Add(n)
	h.sum.Add(uint64(v) * n)
	h.count.Add(n)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram state. The copy is not atomic across
// buckets — concurrent observations may straddle it — but every bucket
// read is itself atomic, so the result is never torn, and Count is read
// before the buckets so Count <= sum(Buckets) always holds for
// invariant-style checks.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Bit: uint8(i), Count: n})
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket: Count values v with
// bits.Len64(v) == Bit (upper bound 2^Bit - 1).
type Bucket struct {
	Bit   uint8  `json:"bit"`
	Count uint64 `json:"n"`
}

// HistogramSnapshot is the exportable state of a Histogram. Only
// non-empty buckets are carried, so idle metrics marshal small.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// UpperBound returns the largest value bucket bit can hold.
func UpperBound(bit uint8) uint64 {
	if bit == 0 {
		return 0
	}
	return 1<<bit - 1
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// top of the first bucket at which the cumulative count reaches
// q*Count. With power-of-two buckets the answer is exact to within 2x.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return UpperBound(b.Bit)
		}
	}
	return UpperBound(s.Buckets[len(s.Buckets)-1].Bit)
}

// Max returns an upper bound for the largest observed value.
func (s HistogramSnapshot) Max() uint64 {
	if len(s.Buckets) == 0 {
		return 0
	}
	return UpperBound(s.Buckets[len(s.Buckets)-1].Bit)
}

// Registry names metrics for export. Registration happens once at
// startup and allocates; the returned pointers are then used directly by
// the hot paths. A Registry is safe for concurrent registration and
// export, though the expected pattern is register-then-run.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

type entry struct {
	name string
	v    any // *Counter, *Gauge, or *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a new counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(name, c)
	return c
}

// Gauge registers and returns a new gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.add(name, g)
	return g
}

// Histogram registers and returns a new histogram under name.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.add(name, h)
	return h
}

func (r *Registry) add(name string, v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.name == name {
			panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
		}
	}
	r.entries = append(r.entries, entry{name, v})
}

// Do calls fn for every registered metric in name order.
func (r *Registry) Do(fn func(name string, v any)) {
	r.mu.Lock()
	es := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	for _, e := range es {
		fn(e.name, e.v)
	}
}

// WriteExpvar writes the registry as one flat JSON object in the format
// of net/http's /debug/vars: {"name": value, ...}. Counters and gauges
// render as numbers; histograms as {"count":..,"sum":..,"mean":..,
// "p50":..,"p99":..,"max":..}.
func (r *Registry) WriteExpvar(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("{")
	first := true
	r.Do(func(name string, v any) {
		if !first {
			pr(",\n")
		}
		first = false
		pr("%q: ", name)
		switch m := v.(type) {
		case *Counter:
			pr("%d", m.Load())
		case *Gauge:
			pr("%d", m.Load())
		case *Histogram:
			s := m.Snapshot()
			pr(`{"count": %d, "sum": %d, "mean": %.1f, "p50": %d, "p99": %d, "max": %d}`,
				s.Count, s.Sum, s.Mean(), s.Quantile(0.5), s.Quantile(0.99), s.Max())
		default:
			pr("null")
		}
	})
	pr("}\n")
	return err
}
