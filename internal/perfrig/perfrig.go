// Package perfrig builds the measurement fixtures shared by the root
// benchmarks and the afperf harness: an in-process AudioFile server with
// a manual-clock CODEC device (so nothing ever waits on wall time), and a
// client connection over a choice of transports standing in for the
// paper's six host configurations — local Unix socket, TCP loopback, and
// TCP with injected round-trip delay.
package perfrig

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/netsim"
	"audiofile/internal/vdev"
)

// Config selects the transport between client and server.
type Config struct {
	Name      string        // label in reports
	Transport string        // "pipe", "unix", or "tcp"
	RTT       time.Duration // injected round-trip delay (tcp only)
	Jitter    time.Duration
	// HiFi adds a 44.1 kHz stereo device (index 1) for high-rate tests.
	HiFi bool
}

// StandardConfigs are the analogues of the paper's configurations:
// in-process and Unix-socket stand in for "local client & server"; TCP
// loopback for "networked on one Ethernet"; the delayed variants for
// slower or wider networks.
func StandardConfigs() []Config {
	return []Config{
		{Name: "local (unix)", Transport: "unix"},
		{Name: "local (pipe)", Transport: "pipe"},
		{Name: "net (tcp)", Transport: "tcp"},
		{Name: "net (tcp+1ms)", Transport: "tcp", RTT: time.Millisecond},
		{Name: "net (tcp+4ms)", Transport: "tcp", RTT: 4 * time.Millisecond},
	}
}

// Rig is one server+client measurement fixture.
type Rig struct {
	Srv  *aserver.Server
	Conn *af.Conn
	Clk  *vdev.ManualClock
	AC   *af.AC

	dir string
}

// New builds a rig for a config. The CODEC device's clock is manual: the
// harness advances it explicitly, so requests are pure request/response
// and measurements are not polluted by waiting on audio time.
func New(cfg Config) (*Rig, error) {
	clk := vdev.NewManualClock(8000)
	devs := []aserver.DeviceSpec{
		{Kind: "codec", Name: "codec0", Clock: clk, Loopback: true},
	}
	if cfg.HiFi {
		devs = append(devs, aserver.DeviceSpec{Kind: "hifi", Name: "hifi0",
			Clock: vdev.NewManualClock(44100)})
	}
	srv, err := aserver.New(aserver.Options{
		Devices: devs,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	r := &Rig{Srv: srv, Clk: clk}

	var nc net.Conn
	switch cfg.Transport {
	case "pipe":
		nc = srv.DialPipe()
	case "unix":
		dir, err := os.MkdirTemp("", "afperf")
		if err != nil {
			srv.Close()
			return nil, err
		}
		r.dir = dir
		path := filepath.Join(dir, "af.sock")
		if _, err := srv.Listen("unix", path); err != nil {
			srv.Close()
			return nil, err
		}
		nc, err = net.Dial("unix", path)
		if err != nil {
			srv.Close()
			return nil, err
		}
	case "tcp":
		l, err := srv.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, err
		}
		if cfg.RTT > 0 || cfg.Jitter > 0 {
			nc, err = netsim.Dial("tcp", l.Addr().String(), cfg.RTT, cfg.Jitter)
		} else {
			nc, err = net.Dial("tcp", l.Addr().String())
		}
		if err != nil {
			srv.Close()
			return nil, err
		}
	default:
		srv.Close()
		return nil, fmt.Errorf("perfrig: unknown transport %q", cfg.Transport)
	}
	conn, err := af.NewConn(nc)
	if err != nil {
		srv.Close()
		return nil, err
	}
	r.Conn = conn
	ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		conn.Close()
		srv.Close()
		return nil, err
	}
	r.AC = ac
	return r, nil
}

// Close tears the rig down.
func (r *Rig) Close() {
	r.Conn.Close()
	r.Srv.Close()
	if r.dir != "" {
		os.RemoveAll(r.dir) //nolint:errcheck
	}
}

// PrimeRecord marks the context recording and advances device time far
// enough that the whole record buffer holds valid (captured) data, so
// record requests for the recent past hit in the buffer and never block.
func (r *Rig) PrimeRecord() error {
	now, err := r.AC.GetTime()
	if err != nil {
		return err
	}
	if _, _, err := r.AC.RecordSamples(now.Add(-4), make([]byte, 4), false); err != nil {
		return err
	}
	// Walk time forward one hardware window at a time, updating after
	// each step, until the 4-second buffer has been filled twice over.
	for i := 0; i < 150; i++ {
		r.Clk.Advance(512)
		r.Srv.Sync()
	}
	return nil
}

// Advance moves device time and runs a server update (for open-loop
// tests).
func (r *Rig) Advance(frames int) {
	r.Clk.Advance(frames)
	r.Srv.Sync()
}
