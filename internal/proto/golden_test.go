package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Wire-level golden tests for the two bulk sample messages. The split
// marshal entry points (PutReplyHeader, AppendPlaySamplesHeader) exist so
// the scatter-gather paths can stamp headers around payloads produced in
// place; these tests pin the wire form in both byte orders and prove the
// split marshal is byte-identical to the staged one.

var wireOrders = []struct {
	name  string
	order binary.ByteOrder
}{
	{"little", binary.LittleEndian},
	{"big", binary.BigEndian},
}

func TestRecordReplyWireGolden(t *testing.T) {
	payload := []byte{0x10, 0x20, 0x30, 0x40, 0x50} // 5 bytes: exercises the pad
	rep := Reply{Seq: 0x0102, Time: 0x11223344, Aux: uint32(len(payload))}
	golden := map[string][]byte{
		"little": {
			MsgReply, 0, // type, data
			0x02, 0x01, // seq
			0x02, 0x00, 0x00, 0x00, // extra length / 4 (Pad4(5) = 8)
			0x44, 0x33, 0x22, 0x11, // time
			0x05, 0x00, 0x00, 0x00, // aux = delivered byte count
			0x10, 0x20, 0x30, 0x40, 0x50, 0, 0, 0, // payload + pad
		},
		"big": {
			MsgReply, 0,
			0x01, 0x02,
			0x00, 0x00, 0x00, 0x02,
			0x11, 0x22, 0x33, 0x44,
			0x00, 0x00, 0x00, 0x05,
			0x10, 0x20, 0x30, 0x40, 0x50, 0, 0, 0,
		},
	}
	for _, o := range wireOrders {
		t.Run(o.name, func(t *testing.T) {
			// Staged marshal through the Writer.
			w := &Writer{Order: o.order}
			r := rep
			r.Extra = payload
			r.Encode(w)
			if !bytes.Equal(w.Buf, golden[o.name]) {
				t.Errorf("Encode:\n got % x\nwant % x", w.Buf, golden[o.name])
			}
			// Scatter-gather marshal: payload written in place first, header
			// stamped after, as the server's record egress does.
			buf := make([]byte, ReplyHeaderBytes+Pad4(len(payload)))
			copy(buf[ReplyHeaderBytes:], payload)
			PutReplyHeader(o.order, buf, &rep, len(payload))
			if !bytes.Equal(buf, golden[o.name]) {
				t.Errorf("PutReplyHeader:\n got % x\nwant % x", buf, golden[o.name])
			}
			// Round trip through the ordinary reader.
			var m Message
			if err := ReadMessageInto(bytes.NewReader(buf), o.order, &m); err != nil {
				t.Fatal(err)
			}
			if m.Reply == nil || m.Reply.Seq != rep.Seq || m.Reply.Time != rep.Time ||
				m.Reply.Aux != rep.Aux || !bytes.Equal(m.Reply.Extra, buf[ReplyHeaderBytes:]) {
				t.Errorf("round trip mismatch: %+v", m.Reply)
			}
			// Round trip through the direct reader: the payload must land in
			// the caller's buffer, not the scratch message.
			dst := make([]byte, len(payload))
			var md Message
			if err := ReadMessageDirect(bytes.NewReader(buf), o.order, &md, rep.Seq, dst); err != nil {
				t.Fatal(err)
			}
			if md.Reply == nil || &md.Reply.Extra[0] != &dst[0] {
				t.Error("direct read did not alias the destination buffer")
			}
			if !bytes.Equal(dst, payload) {
				t.Errorf("direct read: got % x, want % x", dst, payload)
			}
		})
	}
}

func TestBroadcastWireGolden(t *testing.T) {
	payload := []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80} // 2 units
	bd := BroadcastData{Enc: 3, BigEndianData: true, Seq: 0x0102, Time: 0x11223344, Channel: 0x0A0B0C0D}
	golden := map[string][]byte{
		"little": {
			MsgBroadcast, 3 | BroadcastFlagBigEndian,
			0x02, 0x01, // seq
			0x02, 0x00, 0x00, 0x00, // data length / 4
			0x44, 0x33, 0x22, 0x11, // time
			0x0D, 0x0C, 0x0B, 0x0A, // ac
			0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80,
		},
		"big": {
			MsgBroadcast, 3 | BroadcastFlagBigEndian,
			0x01, 0x02,
			0x00, 0x00, 0x00, 0x02,
			0x11, 0x22, 0x33, 0x44,
			0x0A, 0x0B, 0x0C, 0x0D,
			0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80,
		},
	}
	for _, o := range wireOrders {
		t.Run(o.name, func(t *testing.T) {
			// Staged marshal through the Writer.
			w := &Writer{Order: o.order}
			b := bd
			b.Data = payload
			b.Encode(w)
			if !bytes.Equal(w.Buf, golden[o.name]) {
				t.Errorf("Encode:\n got % x\nwant % x", w.Buf, golden[o.name])
			}
			// Scatter-gather marshal: payload encoded in place first, header
			// stamped after, as the server's channel pump does.
			buf := make([]byte, BroadcastHeaderBytes+len(payload))
			copy(buf[BroadcastHeaderBytes:], payload)
			PutBroadcastHeader(o.order, buf, &bd, len(payload))
			if !bytes.Equal(buf, golden[o.name]) {
				t.Errorf("PutBroadcastHeader:\n got % x\nwant % x", buf, golden[o.name])
			}
			// Round trip through the reader, interleaved with a reply to
			// prove the stream stays framed.
			w2 := &Writer{Order: o.order}
			w2.Bytes(buf)
			(&Reply{Seq: 7, Time: 1}).Encode(w2)
			rd := bytes.NewReader(w2.Buf)
			var m Message
			if err := ReadMessageInto(rd, o.order, &m); err != nil {
				t.Fatal(err)
			}
			got := m.Broadcast
			if got == nil || got.Enc != bd.Enc || !got.BigEndianData || got.Seq != bd.Seq ||
				got.Time != bd.Time || got.Channel != bd.Channel || !bytes.Equal(got.Data, payload) {
				t.Errorf("round trip mismatch: %+v", got)
			}
			if err := ReadMessageInto(rd, o.order, &m); err != nil || m.Reply == nil || m.Reply.Seq != 7 {
				t.Fatalf("following reply misframed: %v %+v", err, m.Reply)
			}
			if m.Broadcast != nil {
				t.Error("Broadcast pointer not cleared by next read")
			}
		})
	}
}

func TestSubscribeRequestRoundTrip(t *testing.T) {
	for _, o := range wireOrders {
		w := &Writer{Order: o.order}
		if err := AppendSubscribe(w, 42); err != nil {
			t.Fatal(err)
		}
		if w.Buf[0] != OpSubscribe || len(w.Buf) != 8 {
			t.Fatalf("%s: subscribe wire form % x", o.name, w.Buf)
		}
		r := NewReader(o.order, w.Buf[4:])
		if ac := DecodeACReq(r); ac != 42 || r.Err != nil {
			t.Errorf("%s: decode = %d err %v", o.name, ac, r.Err)
		}
		w.Reset()
		if err := AppendUnsubscribe(w, 7); err != nil {
			t.Fatal(err)
		}
		if w.Buf[0] != OpUnsubscribe {
			t.Errorf("%s: unsubscribe op = %d", o.name, w.Buf[0])
		}
		r = NewReader(o.order, w.Buf[4:])
		if ac := DecodeACReq(r); ac != 7 || r.Err != nil {
			t.Errorf("%s: decode = %d err %v", o.name, ac, r.Err)
		}
	}
}

func TestPlayRequestWireGolden(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6} // 6 bytes: exercises the pad
	q := PlaySamplesReq{AC: 7, Time: 0x0A0B0C0D, Flags: SampleFlagSuppressReply}
	golden := map[string][]byte{
		"little": {
			OpPlaySamples, SampleFlagSuppressReply,
			0x06, 0x00, // length/4: (16 + Pad4(6)) / 4
			0x07, 0x00, 0x00, 0x00, // AC
			0x0D, 0x0C, 0x0B, 0x0A, // time
			0x06, 0x00, 0x00, 0x00, // NBytes
			1, 2, 3, 4, 5, 6, 0, 0, // data + pad
		},
		"big": {
			OpPlaySamples, SampleFlagSuppressReply,
			0x00, 0x06,
			0x00, 0x00, 0x00, 0x07,
			0x0A, 0x0B, 0x0C, 0x0D,
			0x00, 0x00, 0x00, 0x06,
			1, 2, 3, 4, 5, 6, 0, 0,
		},
	}
	for _, o := range wireOrders {
		t.Run(o.name, func(t *testing.T) {
			// Staged marshal: data copied through the request buffer.
			w := &Writer{Order: o.order}
			qd := q
			qd.Data = data
			if err := AppendPlaySamples(w, qd); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w.Buf, golden[o.name]) {
				t.Errorf("AppendPlaySamples:\n got % x\nwant % x", w.Buf, golden[o.name])
			}
			// Scatter-gather marshal: header alone, then the caller's data
			// and pad as separate slices, as the client's vectored play does.
			hw := &Writer{Order: o.order}
			if err := AppendPlaySamplesHeader(hw, q, len(data)); err != nil {
				t.Fatal(err)
			}
			gathered := append([]byte(nil), hw.Buf...)
			gathered = append(gathered, data...)
			for len(gathered)%4 != 0 {
				gathered = append(gathered, 0)
			}
			if !bytes.Equal(gathered, golden[o.name]) {
				t.Errorf("AppendPlaySamplesHeader:\n got % x\nwant % x", gathered, golden[o.name])
			}
			// Aligned payloads need no pad; the two marshals must still agree.
			w.Reset()
			qd.Data = data[:4]
			if err := AppendPlaySamples(w, qd); err != nil {
				t.Fatal(err)
			}
			hw.Reset()
			if err := AppendPlaySamplesHeader(hw, q, 4); err != nil {
				t.Fatal(err)
			}
			gathered = append(append([]byte(nil), hw.Buf...), data[:4]...)
			if !bytes.Equal(gathered, w.Buf) {
				t.Errorf("aligned payload:\n staged % x\ngather % x", w.Buf, gathered)
			}
		})
	}
}

func TestAppendPlaySamplesHeaderOversized(t *testing.T) {
	w := &Writer{Order: binary.LittleEndian}
	w.U8(0xAA) // pre-existing queued byte must survive a failed append
	if err := AppendPlaySamplesHeader(w, PlaySamplesReq{}, MaxRequestBytes); err == nil {
		t.Fatal("expected error for oversized request")
	}
	if len(w.Buf) != 1 || w.Buf[0] != 0xAA {
		t.Errorf("failed append modified the buffer: % x", w.Buf)
	}
}
