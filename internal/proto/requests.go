package proto

import "fmt"

// Request bodies. The client library appends requests to a Writer with
// the Append* helpers; the server parses bodies with the Decode* helpers,
// whose Reader is positioned just after the 4-byte request header. The
// extension byte of each request header carries per-request flags and is
// handled at the framing layer.

// ACAttributes is the audio-context attribute block used by CreateAC and
// ChangeACAttributes. The mask selects which fields are meaningful.
type ACAttributes struct {
	PlayGain int16 // play gain in dB, applied before mixing
	RecGain  int16 // record gain in dB (applied on the record path)
	Preempt  uint8 // nonzero: play requests overwrite instead of mix
	Endian   uint8 // default sample-data byte order: 0 little, 1 big
	Type     uint8 // sample encoding (sampleconv.Encoding)
	Channels uint8 // sample channels
}

func (a *ACAttributes) encode(w *Writer) {
	w.I16(a.PlayGain)
	w.I16(a.RecGain)
	w.U8(a.Preempt)
	w.U8(a.Endian)
	w.U8(a.Type)
	w.U8(a.Channels)
}

func (a *ACAttributes) decode(r *Reader) {
	a.PlayGain = r.I16()
	a.RecGain = r.I16()
	a.Preempt = r.U8()
	a.Endian = r.U8()
	a.Type = r.U8()
	a.Channels = r.U8()
}

// --- SelectEvents ---

// SelectEventsReq selects which events the client wants from a device.
type SelectEventsReq struct {
	Device uint32
	Mask   uint32
}

// AppendSelectEvents appends a SelectEvents request.
func AppendSelectEvents(w *Writer, q SelectEventsReq) error {
	off := w.BeginRequest(OpSelectEvents, 0)
	w.U32(q.Device)
	w.U32(q.Mask)
	return w.EndRequest(off)
}

// DecodeSelectEvents parses a SelectEvents body.
func DecodeSelectEvents(r *Reader) (q SelectEventsReq) {
	q.Device = r.U32()
	q.Mask = r.U32()
	return
}

// --- CreateAC / ChangeACAttributes / FreeAC ---

// CreateACReq creates an audio context. The client allocates the AC id
// from its private counter; ids are scoped to the connection.
type CreateACReq struct {
	AC     uint32
	Device uint32
	Mask   uint32
	Attrs  ACAttributes
}

// AppendCreateAC appends a CreateAC request.
func AppendCreateAC(w *Writer, q CreateACReq) error {
	off := w.BeginRequest(OpCreateAC, 0)
	w.U32(q.AC)
	w.U32(q.Device)
	w.U32(q.Mask)
	q.Attrs.encode(w)
	return w.EndRequest(off)
}

// DecodeCreateAC parses a CreateAC body.
func DecodeCreateAC(r *Reader) (q CreateACReq) {
	q.AC = r.U32()
	q.Device = r.U32()
	q.Mask = r.U32()
	q.Attrs.decode(r)
	return
}

// ChangeACReq changes attributes of an existing audio context.
type ChangeACReq struct {
	AC    uint32
	Mask  uint32
	Attrs ACAttributes
}

// AppendChangeAC appends a ChangeACAttributes request.
func AppendChangeAC(w *Writer, q ChangeACReq) error {
	off := w.BeginRequest(OpChangeACAttributes, 0)
	w.U32(q.AC)
	w.U32(q.Mask)
	q.Attrs.encode(w)
	return w.EndRequest(off)
}

// DecodeChangeAC parses a ChangeACAttributes body.
func DecodeChangeAC(r *Reader) (q ChangeACReq) {
	q.AC = r.U32()
	q.Mask = r.U32()
	q.Attrs.decode(r)
	return
}

// AppendFreeAC appends a FreeAC request.
func AppendFreeAC(w *Writer, ac uint32) error {
	off := w.BeginRequest(OpFreeAC, 0)
	w.U32(ac)
	return w.EndRequest(off)
}

// --- Subscribe / Unsubscribe (broadcast-channel extension) ---

// AppendSubscribe appends a Subscribe request: the audio context joins
// its device's broadcast channel and starts receiving BroadcastData
// messages in the context's encoding. The reply Time is the device time
// of the subscription's first chunk.
func AppendSubscribe(w *Writer, ac uint32) error {
	off := w.BeginRequest(OpSubscribe, 0)
	w.U32(ac)
	return w.EndRequest(off)
}

// AppendUnsubscribe appends an Unsubscribe request for an audio context.
func AppendUnsubscribe(w *Writer, ac uint32) error {
	off := w.BeginRequest(OpUnsubscribe, 0)
	w.U32(ac)
	return w.EndRequest(off)
}

// DecodeACReq parses a body that is a single audio-context id: FreeAC,
// Subscribe, Unsubscribe.
func DecodeACReq(r *Reader) uint32 { return r.U32() }

// --- PlaySamples / RecordSamples ---

// PlaySamplesReq plays sample data at a device time. Flags travel in the
// extension byte: SampleFlagBigEndian describes Data's byte order,
// SampleFlagSuppressReply asks the server not to send the usual time reply
// (used for all but the last chunk of a long play).
type PlaySamplesReq struct {
	AC    uint32
	Time  uint32
	Flags uint8
	Data  []byte
}

// AppendPlaySamples appends a PlaySamples request.
func AppendPlaySamples(w *Writer, q PlaySamplesReq) error {
	off := w.BeginRequest(OpPlaySamples, q.Flags)
	w.U32(q.AC)
	w.U32(q.Time)
	w.U32(uint32(len(q.Data)))
	w.Bytes(q.Data)
	return w.EndRequest(off)
}

// PlayHeaderBytes is the wire size of a PlaySamples request up to its
// sample payload: the 4-byte request header plus AC, Time, and NBytes.
const PlayHeaderBytes = 16

// AppendPlaySamplesHeader appends only the header of a PlaySamples
// request carrying n payload bytes (q.Data is ignored). It is the
// scatter-gather half of AppendPlaySamples: the caller ships the header,
// its n sample bytes, and Pad4(n)-n zero bytes as separate slices of one
// vectored write, so the payload is never copied through the request
// buffer. Nothing is appended on error.
func AppendPlaySamplesHeader(w *Writer, q PlaySamplesReq, n int) error {
	total := PlayHeaderBytes + Pad4(n)
	if n < 0 || total > MaxRequestBytes {
		return fmt.Errorf("proto: request length %d exceeds maximum %d", total, MaxRequestBytes)
	}
	w.U8(OpPlaySamples)
	w.U8(q.Flags)
	w.U16(uint16(total / 4))
	w.U32(q.AC)
	w.U32(q.Time)
	w.U32(uint32(n))
	return nil
}

// DecodePlaySamples parses a PlaySamples body. Data aliases the request
// buffer.
func DecodePlaySamples(r *Reader, flags uint8) (q PlaySamplesReq) {
	q.Flags = flags
	q.AC = r.U32()
	q.Time = r.U32()
	n := int(r.U32())
	q.Data = r.BytesRef(n)
	return
}

// RecordSamplesReq records NBytes of sample data starting at a device
// time. SampleFlagNoBlock in the extension byte selects the non-blocking
// variant; SampleFlagBigEndian requests big-endian reply data.
type RecordSamplesReq struct {
	AC     uint32
	Time   uint32
	NBytes uint32
	Flags  uint8
}

// AppendRecordSamples appends a RecordSamples request.
func AppendRecordSamples(w *Writer, q RecordSamplesReq) error {
	off := w.BeginRequest(OpRecordSamples, q.Flags)
	w.U32(q.AC)
	w.U32(q.Time)
	w.U32(q.NBytes)
	return w.EndRequest(off)
}

// DecodeRecordSamples parses a RecordSamples body.
func DecodeRecordSamples(r *Reader, flags uint8) (q RecordSamplesReq) {
	q.Flags = flags
	q.AC = r.U32()
	q.Time = r.U32()
	q.NBytes = r.U32()
	return
}

// --- Simple device requests ---

// AppendDeviceReq appends a request whose body is a single device number:
// GetTime, QueryPhone, DisablePassThrough, ListProperties.
func AppendDeviceReq(w *Writer, op uint8, device uint32) error {
	off := w.BeginRequest(op, 0)
	w.U32(device)
	return w.EndRequest(off)
}

// DecodeDeviceReq parses a single-device body.
func DecodeDeviceReq(r *Reader) uint32 { return r.U32() }

// PassThroughReq connects the inputs and outputs of two audio devices
// (the LoFi CODEC pass-through feature).
type PassThroughReq struct {
	Device uint32
	Other  uint32
}

// AppendEnablePassThrough appends an EnablePassThrough request.
func AppendEnablePassThrough(w *Writer, q PassThroughReq) error {
	off := w.BeginRequest(OpEnablePassThrough, 0)
	w.U32(q.Device)
	w.U32(q.Other)
	return w.EndRequest(off)
}

// DecodePassThrough parses an EnablePassThrough body.
func DecodePassThrough(r *Reader) (q PassThroughReq) {
	q.Device = r.U32()
	q.Other = r.U32()
	return
}

// --- Telephony ---

// HookSwitchReq sets the hookswitch state of a telephone device.
type HookSwitchReq struct {
	Device uint32
	State  uint8 // HookOn or HookOff
}

// AppendHookSwitch appends a HookSwitch request.
func AppendHookSwitch(w *Writer, q HookSwitchReq) error {
	off := w.BeginRequest(OpHookSwitch, q.State)
	w.U32(q.Device)
	return w.EndRequest(off)
}

// FlashHookReq flashes the hookswitch for a duration in milliseconds.
type FlashHookReq struct {
	Device     uint32
	DurationMs uint32
}

// AppendFlashHook appends a FlashHook request.
func AppendFlashHook(w *Writer, q FlashHookReq) error {
	off := w.BeginRequest(OpFlashHook, 0)
	w.U32(q.Device)
	w.U32(q.DurationMs)
	return w.EndRequest(off)
}

// DecodeFlashHook parses a FlashHook body.
func DecodeFlashHook(r *Reader) (q FlashHookReq) {
	q.Device = r.U32()
	q.DurationMs = r.U32()
	return
}

// --- Gain and I/O control ---

// GainReq sets a device input or output gain in dB.
type GainReq struct {
	Device uint32
	Gain   int32
}

// AppendGainReq appends a SetInputGain or SetOutputGain request.
func AppendGainReq(w *Writer, op uint8, q GainReq) error {
	off := w.BeginRequest(op, 0)
	w.U32(q.Device)
	w.I32(q.Gain)
	return w.EndRequest(off)
}

// DecodeGainReq parses a gain body.
func DecodeGainReq(r *Reader) (q GainReq) {
	q.Device = r.U32()
	q.Gain = r.I32()
	return
}

// DeviceMaskReq enables or disables inputs or outputs by mask.
type DeviceMaskReq struct {
	Device uint32
	Mask   uint32
}

// AppendDeviceMaskReq appends an Enable/DisableInput/Output request.
func AppendDeviceMaskReq(w *Writer, op uint8, q DeviceMaskReq) error {
	off := w.BeginRequest(op, 0)
	w.U32(q.Device)
	w.U32(q.Mask)
	return w.EndRequest(off)
}

// DecodeDeviceMaskReq parses an input/output mask body.
func DecodeDeviceMaskReq(r *Reader) (q DeviceMaskReq) {
	q.Device = r.U32()
	q.Mask = r.U32()
	return
}

// --- Access control ---

// AppendSetAccessControl appends a SetAccessControl request; enable rides
// in the extension byte.
func AppendSetAccessControl(w *Writer, enable bool) error {
	ext := uint8(0)
	if enable {
		ext = 1
	}
	off := w.BeginRequest(OpSetAccessControl, ext)
	return w.EndRequest(off)
}

// HostEntry is one entry in the host access list.
type HostEntry struct {
	Family uint16 // FamilyInternet, FamilyInternet6, FamilyLocal
	Addr   []byte
}

// ChangeHostsReq adds or removes a host from the access list; the mode
// (HostInsert or HostDelete) rides in the extension byte.
type ChangeHostsReq struct {
	Mode uint8
	Host HostEntry
}

// AppendChangeHosts appends a ChangeHosts request.
func AppendChangeHosts(w *Writer, q ChangeHostsReq) error {
	off := w.BeginRequest(OpChangeHosts, q.Mode)
	w.U16(q.Host.Family)
	w.U16(uint16(len(q.Host.Addr)))
	w.Bytes(q.Host.Addr)
	return w.EndRequest(off)
}

// DecodeChangeHosts parses a ChangeHosts body.
func DecodeChangeHosts(r *Reader, mode uint8) (q ChangeHostsReq) {
	q.Mode = mode
	q.Host.Family = r.U16()
	n := int(r.U16())
	q.Host.Addr = append([]byte(nil), r.BytesRef(n)...)
	return
}

// EncodeHostList serializes a host list into a ListHosts reply's extra
// data.
func EncodeHostList(w *Writer, hosts []HostEntry) {
	for _, h := range hosts {
		w.U16(h.Family)
		w.U16(uint16(len(h.Addr)))
		w.Bytes(h.Addr)
		w.Pad()
	}
}

// DecodeHostList parses n host entries from a ListHosts reply.
func DecodeHostList(r *Reader, n int) []HostEntry {
	hosts := make([]HostEntry, 0, n)
	for i := 0; i < n; i++ {
		var h HostEntry
		h.Family = r.U16()
		alen := int(r.U16())
		h.Addr = append([]byte(nil), r.BytesRef(alen)...)
		r.SkipPad()
		hosts = append(hosts, h)
	}
	return hosts
}

// --- Atoms and properties ---

// InternAtomReq interns a string, allocating a unique id. OnlyIfExists
// rides in the extension byte.
type InternAtomReq struct {
	OnlyIfExists bool
	Name         string
}

// AppendInternAtom appends an InternAtom request.
func AppendInternAtom(w *Writer, q InternAtomReq) error {
	ext := uint8(0)
	if q.OnlyIfExists {
		ext = 1
	}
	off := w.BeginRequest(OpInternAtom, ext)
	w.U16(uint16(len(q.Name)))
	w.Skip(2)
	w.String4(q.Name)
	return w.EndRequest(off)
}

// DecodeInternAtom parses an InternAtom body.
func DecodeInternAtom(r *Reader, ext uint8) (q InternAtomReq) {
	q.OnlyIfExists = ext != 0
	n := int(r.U16())
	r.Skip(2)
	q.Name = r.String4(n)
	return
}

// AppendGetAtomName appends a GetAtomName request.
func AppendGetAtomName(w *Writer, atom uint32) error {
	off := w.BeginRequest(OpGetAtomName, 0)
	w.U32(atom)
	return w.EndRequest(off)
}

// ChangePropertyReq stores named, typed data on a device.
type ChangePropertyReq struct {
	Device   uint32
	Property uint32 // atom
	Type     uint32 // atom
	Format   uint8  // 8, 16, or 32 bits per item
	Mode     uint8  // PropModeReplace/Prepend/Append
	Data     []byte
}

// AppendChangeProperty appends a ChangeProperty request.
func AppendChangeProperty(w *Writer, q ChangePropertyReq) error {
	off := w.BeginRequest(OpChangeProperty, q.Mode)
	w.U32(q.Device)
	w.U32(q.Property)
	w.U32(q.Type)
	w.U8(q.Format)
	w.Skip(3)
	w.U32(uint32(len(q.Data)))
	w.Bytes(q.Data)
	return w.EndRequest(off)
}

// DecodeChangeProperty parses a ChangeProperty body. Data aliases the
// request buffer.
func DecodeChangeProperty(r *Reader, mode uint8) (q ChangePropertyReq) {
	q.Mode = mode
	q.Device = r.U32()
	q.Property = r.U32()
	q.Type = r.U32()
	q.Format = r.U8()
	r.Skip(3)
	n := int(r.U32())
	q.Data = r.BytesRef(n)
	return
}

// DeletePropertyReq removes a property from a device.
type DeletePropertyReq struct {
	Device   uint32
	Property uint32
}

// AppendDeleteProperty appends a DeleteProperty request.
func AppendDeleteProperty(w *Writer, q DeletePropertyReq) error {
	off := w.BeginRequest(OpDeleteProperty, 0)
	w.U32(q.Device)
	w.U32(q.Property)
	return w.EndRequest(off)
}

// DecodeDeleteProperty parses a DeleteProperty body.
func DecodeDeleteProperty(r *Reader) (q DeletePropertyReq) {
	q.Device = r.U32()
	q.Property = r.U32()
	return
}

// GetPropertyReq retrieves a property; with Delete set the property is
// removed after a successful full read, as in X.
type GetPropertyReq struct {
	Device   uint32
	Property uint32
	Type     uint32 // AtomNone matches any type
	Delete   bool
}

// AppendGetProperty appends a GetProperty request.
func AppendGetProperty(w *Writer, q GetPropertyReq) error {
	ext := uint8(0)
	if q.Delete {
		ext = 1
	}
	off := w.BeginRequest(OpGetProperty, ext)
	w.U32(q.Device)
	w.U32(q.Property)
	w.U32(q.Type)
	return w.EndRequest(off)
}

// DecodeGetProperty parses a GetProperty body.
func DecodeGetProperty(r *Reader, ext uint8) (q GetPropertyReq) {
	q.Delete = ext != 0
	q.Device = r.U32()
	q.Property = r.U32()
	q.Type = r.U32()
	return
}

// --- Housekeeping ---

// AppendEmptyReq appends a request with no body: NoOperation,
// SyncConnection, ListHosts, ListExtensions, DisableGainControl, etc.
func AppendEmptyReq(w *Writer, op, ext uint8) error {
	off := w.BeginRequest(op, ext)
	return w.EndRequest(off)
}

// QueryExtensionReq asks whether a named extension is present.
type QueryExtensionReq struct {
	Name string
}

// AppendQueryExtension appends a QueryExtension request.
func AppendQueryExtension(w *Writer, q QueryExtensionReq) error {
	off := w.BeginRequest(OpQueryExtension, 0)
	w.U16(uint16(len(q.Name)))
	w.Skip(2)
	w.String4(q.Name)
	return w.EndRequest(off)
}

// DecodeQueryExtension parses a QueryExtension body.
func DecodeQueryExtension(r *Reader) (q QueryExtensionReq) {
	n := int(r.U16())
	r.Skip(2)
	q.Name = r.String4(n)
	return
}
