// Package proto defines the AudioFile wire protocol: the 37 protocol
// requests of Table 1, replies, errors, the five event types, connection
// setup, and the built-in atoms of Table 2.
//
// The protocol is modeled on the X Window System protocol, as the paper's
// implementation was. Control and audio data are multiplexed over a single
// reliable byte-stream connection. Every request has a 4-byte header: a
// one-byte opcode, a one-byte opcode extension (per-request flags), and a
// 16-bit length in 32-bit units, limiting requests to 262144 bytes. All
// fields are naturally aligned and requests are padded to a 32-bit
// boundary.
//
// At connection setup the client declares its byte order ('l' or 'B'); the
// server byte-swaps protocol fields for opposite-order clients. Sample
// data carries its own per-request endian flag.
//
// Server-to-client traffic is a stream of 16-byte-header-plus-payload
// replies, and fixed 32-byte errors and events, distinguished by the first
// byte: 0 = error, 1 = reply, else an event code.
package proto

// Protocol version exchanged at connection setup.
const (
	ProtocolMajor = 2 // "AF2R2" era
	ProtocolMinor = 0
)

// Byte-order bytes sent first at connection setup.
const (
	LittleEndianOrder = 'l'
	BigEndianOrder    = 'B'
)

// MaxRequestBytes is the longest possible request (16-bit length field in
// 32-bit units).
const MaxRequestBytes = 1 << 18

// ChunkBytes is the client library's chunking threshold: play and record
// requests longer than this many sample-data bytes are broken into pieces
// so that no single request takes very long for the server to process.
const ChunkBytes = 8192

// Request opcodes (Table 1).
const (
	OpSelectEvents       = 1
	OpCreateAC           = 2
	OpChangeACAttributes = 3
	OpFreeAC             = 4
	OpPlaySamples        = 5
	OpRecordSamples      = 6
	OpGetTime            = 7
	OpQueryPhone         = 8
	OpEnablePassThrough  = 9
	OpDisablePassThrough = 10
	OpHookSwitch         = 11
	OpFlashHook          = 12
	OpEnableGainControl  = 13
	OpDisableGainControl = 14
	OpDialPhone          = 15 // obsolete, do not use
	OpSetInputGain       = 16
	OpSetOutputGain      = 17
	OpQueryInputGain     = 18
	OpQueryOutputGain    = 19
	OpEnableInput        = 20
	OpEnableOutput       = 21
	OpDisableInput       = 22
	OpDisableOutput      = 23
	OpSetAccessControl   = 24
	OpChangeHosts        = 25
	OpListHosts          = 26
	OpInternAtom         = 27
	OpGetAtomName        = 28
	OpChangeProperty     = 29
	OpDeleteProperty     = 30
	OpGetProperty        = 31
	OpListProperties     = 32
	OpNoOperation        = 33
	OpSyncConnection     = 34
	OpQueryExtension     = 35
	OpListExtensions     = 36
	OpKillClient         = 37
	NumRequests          = 37 // "There are 37 requests in the AudioFile protocol."

	// Broadcast-channel extension requests (not in Table 1): subscribe an
	// audio context to the server-side broadcast of its device's play mix.
	OpSubscribe   = 38
	OpUnsubscribe = 39

	MaxOpcode = 39
)

// RequestName maps an opcode to its protocol name.
var RequestName = map[uint8]string{
	OpSelectEvents:       "SelectEvents",
	OpCreateAC:           "CreateAC",
	OpChangeACAttributes: "ChangeACAttributes",
	OpFreeAC:             "FreeAC",
	OpPlaySamples:        "PlaySamples",
	OpRecordSamples:      "RecordSamples",
	OpGetTime:            "GetTime",
	OpQueryPhone:         "QueryPhone",
	OpEnablePassThrough:  "EnablePassThrough",
	OpDisablePassThrough: "DisablePassThrough",
	OpHookSwitch:         "HookSwitch",
	OpFlashHook:          "FlashHook",
	OpEnableGainControl:  "EnableGainControl",
	OpDisableGainControl: "DisableGainControl",
	OpDialPhone:          "DialPhone",
	OpSetInputGain:       "SetInputGain",
	OpSetOutputGain:      "SetOutputGain",
	OpQueryInputGain:     "QueryInputGain",
	OpQueryOutputGain:    "QueryOutputGain",
	OpEnableInput:        "EnableInput",
	OpEnableOutput:       "EnableOutput",
	OpDisableInput:       "DisableInput",
	OpDisableOutput:      "DisableOutput",
	OpSetAccessControl:   "SetAccessControl",
	OpChangeHosts:        "ChangeHosts",
	OpListHosts:          "ListHosts",
	OpInternAtom:         "InternAtom",
	OpGetAtomName:        "GetAtomName",
	OpChangeProperty:     "ChangeProperty",
	OpDeleteProperty:     "DeleteProperty",
	OpGetProperty:        "GetProperty",
	OpListProperties:     "ListProperties",
	OpNoOperation:        "NoOperation",
	OpSyncConnection:     "SyncConnection",
	OpQueryExtension:     "QueryExtension",
	OpListExtensions:     "ListExtensions",
	OpKillClient:         "KillClient",
	OpSubscribe:          "Subscribe",
	OpUnsubscribe:        "Unsubscribe",
}

// Error codes carried in error messages.
const (
	ErrRequest        = 1  // bad opcode
	ErrValue          = 2  // parameter out of range
	ErrDevice         = 3  // no such audio device
	ErrAC             = 4  // no such audio context
	ErrAtom           = 5  // no such atom
	ErrAccess         = 6  // access control violation
	ErrLength         = 7  // request length wrong
	ErrMatch          = 8  // parameter mismatch (e.g. telephony op on non-phone)
	ErrAlloc          = 9  // server out of resources
	ErrImplementation = 10 // unimplemented request
	ErrOverload       = 11 // client evicted: send queue over budget or write deadline missed
	ErrDrain          = 12 // server draining: graceful shutdown in progress
	ErrRedirect       = 13 // session rerouted: a fleet router moved it to another backend; redial to be re-placed
)

// IsGoodbye reports whether an error code is a connection-scoped goodbye:
// the server (or a router fronting it) announcing that it is about to
// close the transport, rather than a per-request failure. Overload and
// Drain are terminal for the session; Redirect invites the client to
// redial and be placed on a replacement backend.
func IsGoodbye(code uint8) bool {
	return code == ErrOverload || code == ErrDrain || code == ErrRedirect
}

// RouteAuthName marks a setup request whose AuthData carries a routing
// key for a fleet router (cmd/arouter): the router hashes the key onto
// its backend directory to place the session. Backends ignore the auth
// fields, so a routed setup forwards to any afd unchanged.
const RouteAuthName = "af-route"

// ErrorName maps an error code to a descriptive string (AFGetErrorText).
var ErrorName = map[uint8]string{
	ErrRequest:        "BadRequest: bad request code",
	ErrValue:          "BadValue: integer parameter out of range",
	ErrDevice:         "BadDevice: no such audio device",
	ErrAC:             "BadAC: no such audio context",
	ErrAtom:           "BadAtom: no such atom",
	ErrAccess:         "BadAccess: access control violation",
	ErrLength:         "BadLength: request length incorrect",
	ErrMatch:          "BadMatch: parameter mismatch",
	ErrAlloc:          "BadAlloc: insufficient resources",
	ErrImplementation: "BadImplementation: server does not implement request",
	ErrOverload:       "Overload: client evicted, send queue over budget",
	ErrDrain:          "Drain: server shutting down",
	ErrRedirect:       "Redirect: session rerouted to another backend",
}

// Server-to-client message type bytes.
const (
	MsgError = 0
	MsgReply = 1
	// MsgBroadcast heads an unsolicited broadcast-data message (a chunk
	// of a subscribed channel's audio). Chosen above the event code range
	// so pre-extension readers never see it.
	MsgBroadcast = 7
)

// Event codes. "Only five event types are currently defined: four for
// telephone control and one for interclient communications."
const (
	EventPhoneRing       = 2
	EventPhoneDTMF       = 3
	EventPhoneLoop       = 4
	EventPhoneHookSwitch = 5
	EventPropertyChange  = 6
	MinEventCode         = EventPhoneRing
	MaxEventCode         = EventPropertyChange
)

// EventName maps event codes to names.
var EventName = map[uint8]string{
	EventPhoneRing:       "PhoneRing",
	EventPhoneDTMF:       "PhoneDTMF",
	EventPhoneLoop:       "PhoneLoop",
	EventPhoneHookSwitch: "PhoneHookSwitch",
	EventPropertyChange:  "PropertyChange",
}

// Event selection mask bits (SelectEvents).
const (
	MaskPhoneRing       = 1 << 0
	MaskPhoneDTMF       = 1 << 1
	MaskPhoneLoop       = 1 << 2
	MaskPhoneHookSwitch = 1 << 3
	MaskPropertyChange  = 1 << 4
	MaskAllEvents       = MaskPhoneRing | MaskPhoneDTMF | MaskPhoneLoop |
		MaskPhoneHookSwitch | MaskPropertyChange
)

// EventMaskFor returns the SelectEvents mask bit for an event code.
func EventMaskFor(code uint8) uint32 {
	switch code {
	case EventPhoneRing:
		return MaskPhoneRing
	case EventPhoneDTMF:
		return MaskPhoneDTMF
	case EventPhoneLoop:
		return MaskPhoneLoop
	case EventPhoneHookSwitch:
		return MaskPhoneHookSwitch
	case EventPropertyChange:
		return MaskPropertyChange
	}
	return 0
}

// PlaySamples/RecordSamples extension-byte flags.
const (
	SampleFlagBigEndian     = 1 << 0 // sample data is big-endian
	SampleFlagSuppressReply = 1 << 1 // play: do not send the time reply
	SampleFlagNoBlock       = 1 << 2 // record: return what is available now
)

// Audio context attribute mask bits (CreateAC / ChangeACAttributes).
const (
	ACPlayGain   = 1 << 0
	ACRecordGain = 1 << 1
	ACPreemption = 1 << 2
	ACEncoding   = 1 << 3
	ACEndian     = 1 << 4
	ACChannels   = 1 << 5
)

// Hookswitch states.
const (
	HookOn  = 0 // on hook (idle / hang up)
	HookOff = 1 // off hook (answering or originating)
)

// ChangeHosts modes.
const (
	HostInsert = 0
	HostDelete = 1
)

// Host address families.
const (
	FamilyInternet  = 0       // IPv4, 4 address bytes
	FamilyInternet6 = 6       // IPv6, 16 address bytes
	FamilyLocal     = 256 - 2 // local (Unix-domain) connections
)

// ChangeProperty modes.
const (
	PropModeReplace = 0
	PropModePrepend = 1
	PropModeAppend  = 2
)

// Device types exposed in the connection setup block.
const (
	DevCodec = 0 // 8 kHz telephone-quality CODEC
	DevHiFi  = 1 // high-fidelity stereo device
	DevMono  = 2 // mono channel of a stereo device
	DevPhone = 3 // CODEC wired to a telephone line interface
)

// Built-in atoms (Table 2). Client-interned atoms are allocated above
// AtomLastPredefined.
const (
	AtomNone uint32 = 0

	AtomATOM      uint32 = 1
	AtomCARDINAL  uint32 = 2
	AtomINTEGER   uint32 = 3
	AtomSTRING    uint32 = 4
	AtomAC        uint32 = 5
	AtomDEVICE    uint32 = 6
	AtomTIME      uint32 = 7
	AtomMASK      uint32 = 8
	AtomTELEPHONE uint32 = 9
	AtomCOPYRIGHT uint32 = 10
	AtomFILENAME  uint32 = 11

	AtomSampleMU255    uint32 = 12
	AtomSampleALAW     uint32 = 13
	AtomSampleLIN16    uint32 = 14
	AtomSampleLIN32    uint32 = 15
	AtomSampleADPCM32  uint32 = 16
	AtomSampleADPCM24  uint32 = 17
	AtomSampleCELP1016 uint32 = 18
	AtomSampleCELP1015 uint32 = 19

	AtomLastNumberDialed uint32 = 20

	AtomLastPredefined uint32 = 20
)

// BuiltinAtomNames maps predefined atom ids to their names, in order.
var BuiltinAtomNames = []string{
	1:  "ATOM",
	2:  "CARDINAL",
	3:  "INTEGER",
	4:  "STRING",
	5:  "AC",
	6:  "DEVICE",
	7:  "TIME",
	8:  "MASK",
	9:  "TELEPHONE",
	10: "COPYRIGHT",
	11: "FILENAME",
	12: "SAMPLE_MU255",
	13: "SAMPLE_ALAW",
	14: "SAMPLE_LIN16",
	15: "SAMPLE_LIN32",
	16: "SAMPLE_ADPCM32",
	17: "SAMPLE_ADPCM24",
	18: "SAMPLE_CELP1016",
	19: "SAMPLE_CELP1015",
	20: "LAST_NUMBER_DIALED",
}

// Pad4 returns n rounded up to a multiple of 4.
func Pad4(n int) int { return (n + 3) &^ 3 }
