package proto

import (
	"encoding/binary"
	"io"
)

// Server-to-client messages.
//
// A reply is a 16-byte header plus padded extra data:
//
//	[1][data][seq:2][extraLen/4:4][time:4][aux:4] extra...
//
// Errors and events are fixed 32-byte messages distinguished by the first
// byte (0 = error, otherwise the event code).

// ReplyHeaderBytes is the fixed size of a reply header.
const ReplyHeaderBytes = 16

// EventBytes is the fixed size of error and event messages. "As in X,
// events have a fixed size."
const EventBytes = 32

// Reply is a generic protocol reply. Time carries the device time for
// audio requests (the paper returns device time from play and record as a
// convenience); Aux carries a second 32-bit datum where a request needs
// one; anything longer travels in Extra.
type Reply struct {
	Data  uint8
	Seq   uint16
	Time  uint32
	Aux   uint32
	Extra []byte
}

// Encode appends the reply to w.
func (p *Reply) Encode(w *Writer) {
	w.U8(MsgReply)
	w.U8(p.Data)
	w.U16(p.Seq)
	w.U32(uint32(Pad4(len(p.Extra)) / 4))
	w.U32(p.Time)
	w.U32(p.Aux)
	w.Bytes(p.Extra)
	w.Pad()
}

// ErrorMsg is a protocol error message.
type ErrorMsg struct {
	Code     uint8
	Seq      uint16
	BadValue uint32
	MajorOp  uint8
}

// Encode appends the error to w.
func (e *ErrorMsg) Encode(w *Writer) {
	w.U8(MsgError)
	w.U8(e.Code)
	w.U16(e.Seq)
	w.U32(e.BadValue)
	w.U8(e.MajorOp)
	w.Skip(EventBytes - 9)
}

// Event is a protocol event. Per §5.2, all device events carry both the
// audio device time and the server host's clock time, for synchronizing
// with other media on the same host.
type Event struct {
	Code     uint8 // EventPhoneRing .. EventPropertyChange
	Detail   uint8 // e.g. the DTMF digit, or hook/ring/loop state
	Seq      uint16
	Device   uint32
	Time     uint32 // audio device time
	HostSec  uint32 // server host clock
	HostNsec uint32
	Value    uint32 // e.g. the changed property atom
}

// Encode appends the event to w.
func (e *Event) Encode(w *Writer) {
	w.U8(e.Code)
	w.U8(e.Detail)
	w.U16(e.Seq)
	w.U32(e.Device)
	w.U32(e.Time)
	w.U32(e.HostSec)
	w.U32(e.HostNsec)
	w.U32(e.Value)
	w.Skip(EventBytes - 24)
}

// Message is one server-to-client message: exactly one of Reply, Error, or
// Event is non-nil.
type Message struct {
	Reply *Reply
	Error *ErrorMsg
	Event *Event
}

// ReadMessage reads the next server-to-client message from the stream.
func ReadMessage(rd io.Reader, order binary.ByteOrder) (*Message, error) {
	var first [1]byte
	if _, err := io.ReadFull(rd, first[:]); err != nil {
		return nil, err
	}
	switch first[0] {
	case MsgReply:
		var hdr [ReplyHeaderBytes - 1]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, err
		}
		p := &Reply{
			Data: hdr[0],
			Seq:  order.Uint16(hdr[1:]),
			Time: order.Uint32(hdr[7:]),
			Aux:  order.Uint32(hdr[11:]),
		}
		extraLen := int(order.Uint32(hdr[3:])) * 4
		if extraLen > 0 {
			p.Extra = make([]byte, extraLen)
			if _, err := io.ReadFull(rd, p.Extra); err != nil {
				return nil, err
			}
		}
		return &Message{Reply: p}, nil
	case MsgError:
		var rest [EventBytes - 1]byte
		if _, err := io.ReadFull(rd, rest[:]); err != nil {
			return nil, err
		}
		return &Message{Error: &ErrorMsg{
			Code:     rest[0],
			Seq:      order.Uint16(rest[1:]),
			BadValue: order.Uint32(rest[3:]),
			MajorOp:  rest[7],
		}}, nil
	default:
		var rest [EventBytes - 1]byte
		if _, err := io.ReadFull(rd, rest[:]); err != nil {
			return nil, err
		}
		return &Message{Event: &Event{
			Code:     first[0],
			Detail:   rest[0],
			Seq:      order.Uint16(rest[1:]),
			Device:   order.Uint32(rest[3:]),
			Time:     order.Uint32(rest[7:]),
			HostSec:  order.Uint32(rest[11:]),
			HostNsec: order.Uint32(rest[15:]),
			Value:    order.Uint32(rest[19:]),
		}}, nil
	}
}
