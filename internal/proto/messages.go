package proto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Server-to-client messages.
//
// A reply is a 16-byte header plus padded extra data:
//
//	[1][data][seq:2][extraLen/4:4][time:4][aux:4] extra...
//
// Errors and events are fixed 32-byte messages distinguished by the first
// byte (0 = error, otherwise the event code).

// ReplyHeaderBytes is the fixed size of a reply header.
const ReplyHeaderBytes = 16

// EventBytes is the fixed size of error and event messages. "As in X,
// events have a fixed size."
const EventBytes = 32

// Reply is a generic protocol reply. Time carries the device time for
// audio requests (the paper returns device time from play and record as a
// convenience); Aux carries a second 32-bit datum where a request needs
// one; anything longer travels in Extra.
type Reply struct {
	Data  uint8
	Seq   uint16
	Time  uint32
	Aux   uint32
	Extra []byte
}

// Encode appends the reply to w.
func (p *Reply) Encode(w *Writer) {
	off := len(w.Buf)
	w.Skip(ReplyHeaderBytes)
	PutReplyHeader(w.Order, w.Buf[off:], p, len(p.Extra))
	w.Bytes(p.Extra)
	w.Pad()
}

// PutReplyHeader writes a reply's fixed 16-byte header into hdr for a
// payload of extraLen bytes that the caller marshals (and pads to a
// 32-bit boundary) itself. It is the scatter-gather half of Encode: the
// server's record path converts samples straight into the wire message
// after the header, so the payload never exists anywhere else.
func PutReplyHeader(order binary.ByteOrder, hdr []byte, p *Reply, extraLen int) {
	hdr[0] = MsgReply
	hdr[1] = p.Data
	order.PutUint16(hdr[2:4], p.Seq)
	order.PutUint32(hdr[4:8], uint32(Pad4(extraLen)/4))
	order.PutUint32(hdr[8:12], p.Time)
	order.PutUint32(hdr[12:16], p.Aux)
}

// BroadcastHeaderBytes is the fixed size of a broadcast-data header:
//
//	[7][enc|flags][seq:2][nunits:4][time:4][channel:4] payload...
//
// The payload is exactly nunits 32-bit units of sample data — broadcast
// chunks are always cut on a 32-bit boundary, so unlike replies there is
// no separate byte count and no pad.
const BroadcastHeaderBytes = 16

// BroadcastFlagBigEndian marks big-endian sample data in a broadcast
// header's encoding byte (the low 7 bits carry the encoding).
const BroadcastFlagBigEndian = 0x80

// BroadcastData is one chunk of a subscribed channel's audio, pushed by
// the server without a matching request. Seq is a per-channel chunk
// counter (a gap means the server clamped a backlog); Time is the device
// time of the first sample. Channel identifies the broadcast channel by
// its device index — not by audio context id, because one encoded message
// is shared by every subscriber of the (device, format) group and their
// context ids differ.
type BroadcastData struct {
	Enc           uint8 // sample encoding (sampleconv.Encoding)
	BigEndianData bool
	Seq           uint16
	Time          uint32
	Channel       uint32 // device index of the broadcast channel
	Data          []byte
}

// Encode appends the broadcast message to w. Data must be a multiple of
// 4 bytes, as the server's channel pump guarantees.
func (b *BroadcastData) Encode(w *Writer) {
	off := len(w.Buf)
	w.Skip(BroadcastHeaderBytes)
	PutBroadcastHeader(w.Order, w.Buf[off:], b, len(b.Data))
	w.Bytes(b.Data)
}

// PutBroadcastHeader writes a broadcast message's fixed 16-byte header
// into hdr for a payload of dataLen bytes (a multiple of 4) that the
// caller marshals in place, mirroring PutReplyHeader: the server encodes
// the chunk straight into the pooled wire message after the header.
func PutBroadcastHeader(order binary.ByteOrder, hdr []byte, b *BroadcastData, dataLen int) {
	hdr[0] = MsgBroadcast
	enc := b.Enc
	if b.BigEndianData {
		enc |= BroadcastFlagBigEndian
	}
	hdr[1] = enc
	order.PutUint16(hdr[2:4], b.Seq)
	order.PutUint32(hdr[4:8], uint32(dataLen/4))
	order.PutUint32(hdr[8:12], b.Time)
	order.PutUint32(hdr[12:16], b.Channel)
}

// ErrorMsg is a protocol error message.
type ErrorMsg struct {
	Code     uint8
	Seq      uint16
	BadValue uint32
	MajorOp  uint8
}

// Encode appends the error to w.
func (e *ErrorMsg) Encode(w *Writer) {
	w.U8(MsgError)
	w.U8(e.Code)
	w.U16(e.Seq)
	w.U32(e.BadValue)
	w.U8(e.MajorOp)
	w.Skip(EventBytes - 9)
}

// Event is a protocol event. Per §5.2, all device events carry both the
// audio device time and the server host's clock time, for synchronizing
// with other media on the same host.
type Event struct {
	Code     uint8 // EventPhoneRing .. EventPropertyChange
	Detail   uint8 // e.g. the DTMF digit, or hook/ring/loop state
	Seq      uint16
	Device   uint32
	Time     uint32 // audio device time
	HostSec  uint32 // server host clock
	HostNsec uint32
	Value    uint32 // e.g. the changed property atom
}

// Encode appends the event to w.
func (e *Event) Encode(w *Writer) {
	w.U8(e.Code)
	w.U8(e.Detail)
	w.U16(e.Seq)
	w.U32(e.Device)
	w.U32(e.Time)
	w.U32(e.HostSec)
	w.U32(e.HostNsec)
	w.U32(e.Value)
	w.Skip(EventBytes - 24)
}

// Message is one server-to-client message: exactly one of Reply, Error,
// Event, or Broadcast is non-nil.
type Message struct {
	Reply     *Reply
	Error     *ErrorMsg
	Event     *Event
	Broadcast *BroadcastData

	// Inline storage used by ReadMessageInto so a reused Message reads
	// the steady-state reply stream without allocating. The exported
	// pointers above refer into it (valid until the next ReadMessageInto).
	reply   Reply
	errm    ErrorMsg
	event   Event
	bcast   BroadcastData
	extra   []byte               // reusable Extra/Data backing store
	scratch [EventBytes - 1]byte // header read buffer (kept here so it never escapes)
}

// ReadMessage reads the next server-to-client message from the stream.
func ReadMessage(rd io.Reader, order binary.ByteOrder) (*Message, error) {
	m := new(Message)
	if err := ReadMessageInto(rd, order, m); err != nil {
		return nil, err
	}
	return m, nil
}

// MaxReplyExtraBytes bounds the declared extra length of a reply the
// client library will accept: comfortably larger than any legitimate
// reply (a record payload tops out at MaxRequestBytes), small enough
// that a corrupt or hostile length field cannot force an absurd
// allocation.
const MaxReplyExtraBytes = 1 << 24

// ReadMessageInto reads the next server-to-client message into m, reusing
// m's inline storage — including the Extra capacity left by a previous
// reply — so a caller that keeps one Message per connection reads the
// reply stream allocation-free. The message's Reply/Error/Event (and any
// Extra bytes) are only valid until the next call with the same m.
func ReadMessageInto(rd io.Reader, order binary.ByteOrder, m *Message) error {
	return readMessage(rd, order, m, 0, nil)
}

// ReadMessageDirect is ReadMessageInto with a zero-copy reply path: when
// the next message is a reply whose sequence number is wantSeq, its extra
// payload is read with io.ReadFull straight into extraDst (the returned
// Reply.Extra aliases extraDst) instead of m's scratch storage. Payload
// beyond len(extraDst) — normally just the 32-bit-boundary pad — is read
// and discarded. Messages with other sequence numbers, errors, and events
// take the ordinary path and leave extraDst untouched.
func ReadMessageDirect(rd io.Reader, order binary.ByteOrder, m *Message, wantSeq uint16, extraDst []byte) error {
	return readMessage(rd, order, m, wantSeq, extraDst)
}

func readMessage(rd io.Reader, order binary.ByteOrder, m *Message, wantSeq uint16, extraDst []byte) error {
	m.Reply, m.Error, m.Event, m.Broadcast = nil, nil, nil, nil
	if _, err := io.ReadFull(rd, m.scratch[:1]); err != nil {
		return err
	}
	first := m.scratch[0]
	switch first {
	case MsgReply:
		hdr := m.scratch[1:ReplyHeaderBytes]
		if _, err := io.ReadFull(rd, hdr); err != nil {
			return err
		}
		m.reply = Reply{
			Data: hdr[0],
			Seq:  order.Uint16(hdr[1:]),
			Time: order.Uint32(hdr[7:]),
			Aux:  order.Uint32(hdr[11:]),
		}
		extraLen := int(order.Uint32(hdr[3:])) * 4
		if extraLen > MaxReplyExtraBytes {
			return fmt.Errorf("proto: reply extra length %d exceeds maximum %d", extraLen, MaxReplyExtraBytes)
		}
		if extraLen > 0 {
			if extraDst != nil && m.reply.Seq == wantSeq {
				n := extraLen
				if n > len(extraDst) {
					n = len(extraDst)
				}
				if _, err := io.ReadFull(rd, extraDst[:n]); err != nil {
					return err
				}
				m.reply.Extra = extraDst[:n]
				if extraLen > n {
					if _, err := io.CopyN(io.Discard, rd, int64(extraLen-n)); err != nil {
						if err == io.EOF {
							err = io.ErrUnexpectedEOF
						}
						return err
					}
				}
			} else {
				if cap(m.extra) < extraLen {
					m.extra = make([]byte, extraLen)
				}
				m.reply.Extra = m.extra[:extraLen]
				if _, err := io.ReadFull(rd, m.reply.Extra); err != nil {
					return err
				}
			}
		}
		m.Reply = &m.reply
		return nil
	case MsgBroadcast:
		hdr := m.scratch[1:BroadcastHeaderBytes]
		if _, err := io.ReadFull(rd, hdr); err != nil {
			return err
		}
		m.bcast = BroadcastData{
			Enc:           hdr[0] &^ BroadcastFlagBigEndian,
			BigEndianData: hdr[0]&BroadcastFlagBigEndian != 0,
			Seq:           order.Uint16(hdr[1:]),
			Time:          order.Uint32(hdr[7:]),
			Channel:       order.Uint32(hdr[11:]),
		}
		dataLen := int(order.Uint32(hdr[3:])) * 4
		if dataLen > MaxReplyExtraBytes {
			return fmt.Errorf("proto: broadcast data length %d exceeds maximum %d", dataLen, MaxReplyExtraBytes)
		}
		if dataLen > 0 {
			if cap(m.extra) < dataLen {
				m.extra = make([]byte, dataLen)
			}
			m.bcast.Data = m.extra[:dataLen]
			if _, err := io.ReadFull(rd, m.bcast.Data); err != nil {
				return err
			}
		}
		m.Broadcast = &m.bcast
		return nil
	case MsgError:
		rest := m.scratch[:EventBytes-1]
		if _, err := io.ReadFull(rd, rest); err != nil {
			return err
		}
		m.errm = ErrorMsg{
			Code:     rest[0],
			Seq:      order.Uint16(rest[1:]),
			BadValue: order.Uint32(rest[3:]),
			MajorOp:  rest[7],
		}
		m.Error = &m.errm
		return nil
	default:
		rest := m.scratch[:EventBytes-1]
		if _, err := io.ReadFull(rd, rest); err != nil {
			return err
		}
		m.event = Event{
			Code:     first,
			Detail:   rest[0],
			Seq:      order.Uint16(rest[1:]),
			Device:   order.Uint32(rest[3:]),
			Time:     order.Uint32(rest[7:]),
			HostSec:  order.Uint32(rest[11:]),
			HostNsec: order.Uint32(rest[15:]),
			Value:    order.Uint32(rest[19:]),
		}
		m.Event = &m.event
		return nil
	}
}
