package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz targets for the wire parsers. `go test` runs the seed
// corpus; `go test -fuzz=FuzzX` explores further.

func FuzzReadMessage(f *testing.F) {
	// Seed with one well-formed instance of each message class.
	w := &Writer{Order: binary.LittleEndian}
	(&Reply{Data: 1, Seq: 2, Time: 3, Aux: 4, Extra: []byte{1, 2, 3, 4}}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...))
	w.Reset()
	(&ErrorMsg{Code: ErrDevice, Seq: 9}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...))
	w.Reset()
	(&Event{Code: EventPhoneRing, Detail: 1}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...))
	w.Reset()
	(&BroadcastData{Enc: 1, Seq: 5, Time: 6, Channel: 7, Data: []byte{1, 2, 3, 4}}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{MsgBroadcast, 0x81, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}) // truncated, absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine. Cap the declared extra length
		// effect by construction: ReadMessage allocates extraLen*4, so
		// reject inputs that would ask for absurd allocations the same way
		// a production reader would be wrapped with a limit.
		if len(data) >= 8 && (data[0] == MsgReply || data[0] == MsgBroadcast) {
			extra := binary.LittleEndian.Uint32(data[4:8])
			if extra > 1<<16 {
				return
			}
		}
		msg, err := ReadMessage(bytes.NewReader(data), binary.LittleEndian)
		if err == nil && msg == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

// FuzzReadMessageDirect drives the zero-copy reply reader with truncated
// and length-corrupted inputs. Unlike FuzzReadMessage it does not cap the
// declared extra length by hand: the reader's own MaxReplyExtraBytes
// guard must reject oversized claims before allocating.
func FuzzReadMessageDirect(f *testing.F) {
	w := &Writer{Order: binary.LittleEndian}
	(&Reply{Seq: 1, Aux: 8, Extra: []byte{1, 2, 3, 4, 5, 6, 7, 8}}).Encode(w)
	whole := append([]byte(nil), w.Buf...)
	f.Add(whole, uint16(1), 8)
	f.Add(whole, uint16(2), 8) // seq mismatch: scratch path
	f.Add(whole, uint16(1), 3) // dst shorter than payload: tail discarded
	for cut := 1; cut < len(whole); cut += 5 {
		f.Add(append([]byte(nil), whole[:cut]...), uint16(1), 8) // truncated
	}
	over := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(over[4:8], 1<<30) // absurd declared length
	f.Add(over, uint16(1), 8)
	// Typed goodbye errors (Overload eviction, Drain shutdown) arriving in
	// the middle of a direct read: the reader must route them out as Error
	// messages, never confuse them with the awaited reply.
	w.Reset()
	(&ErrorMsg{Code: ErrOverload, Seq: 1, BadValue: 1 << 20}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...), uint16(1), 8)
	w.Reset()
	(&ErrorMsg{Code: ErrDrain, Seq: 3}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...), uint16(1), 0)
	// A broadcast chunk arriving mid-read must route out like an event,
	// never be confused with the awaited reply.
	w.Reset()
	(&BroadcastData{Enc: 1, Seq: 2, Channel: 4, Data: []byte{9, 9, 9, 9}}).Encode(w)
	f.Add(append([]byte(nil), w.Buf...), uint16(1), 8)
	f.Fuzz(func(t *testing.T, data []byte, seq uint16, dstLen int) {
		if dstLen < 0 || dstLen > 1<<16 {
			return
		}
		if len(data) >= 8 && data[0] == MsgBroadcast {
			if binary.LittleEndian.Uint32(data[4:8]) > 1<<16 {
				return
			}
		}
		dst := make([]byte, dstLen)
		var m Message
		err := ReadMessageDirect(bytes.NewReader(data), binary.LittleEndian, &m, seq, dst)
		if err == nil && m.Reply == nil && m.Error == nil && m.Event == nil && m.Broadcast == nil {
			t.Fatal("no message and no error")
		}
		if m.Reply != nil && len(m.Reply.Extra) > 0 && m.Reply.Seq == seq && dstLen > 0 {
			if len(m.Reply.Extra) > dstLen {
				t.Fatalf("direct read overran dst: %d > %d", len(m.Reply.Extra), dstLen)
			}
		}
	})
}

// FuzzErrorReply round-trips the fixed-size error message through its
// encoder and the message reader: every field must survive intact, and
// the wire image must be exactly one error-message frame. The typed
// overload/drain goodbye errors ride this format, so corrupting it
// would strand evicted clients without a reason.
func FuzzErrorReply(f *testing.F) {
	f.Add(uint8(ErrOverload), uint16(7), uint32(300_000), uint8(OpGetTime))
	f.Add(uint8(ErrDrain), uint16(0), uint32(0), uint8(0))
	f.Add(uint8(ErrValue), uint16(65535), uint32(0xFFFFFFFF), uint8(255))
	f.Fuzz(func(t *testing.T, code uint8, seq uint16, badValue uint32, major uint8) {
		in := ErrorMsg{Code: code, Seq: seq, BadValue: badValue, MajorOp: major}
		for _, order := range []binary.ByteOrder{binary.LittleEndian, binary.BigEndian} {
			w := &Writer{Order: order}
			in.Encode(w)
			if len(w.Buf)%4 != 0 {
				t.Fatalf("error message not 32-bit aligned: %d bytes", len(w.Buf))
			}
			msg, err := ReadMessage(bytes.NewReader(w.Buf), order)
			if err != nil {
				t.Fatalf("round trip (%v): %v", order, err)
			}
			if msg.Error == nil {
				t.Fatal("round trip produced a non-error message")
			}
			if got := *msg.Error; got != in {
				t.Fatalf("round trip (%v): got %+v, want %+v", order, got, in)
			}
		}
	})
}

func FuzzReadSetupRequest(f *testing.F) {
	var buf bytes.Buffer
	(&SetupRequest{ByteOrder: 'l', Major: 2, AuthName: "COOKIE", AuthData: []byte{1}}).Send(&buf) //nolint:errcheck
	f.Add(buf.Bytes())
	f.Add([]byte{'B', 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, err := ReadSetupRequest(bytes.NewReader(data))
		if err == nil && s == nil {
			t.Fatal("nil setup with nil error")
		}
	})
}

func FuzzReadSetupReply(f *testing.F) {
	var buf bytes.Buffer
	rep := &SetupReply{Success: true, Major: 2, Vendor: "v",
		Devices: []DeviceDesc{{Index: 0, Name: "d", PlaySampleFreq: 8000}}}
	rep.Send(&buf, binary.LittleEndian) //nolint:errcheck
	f.Add(buf.Bytes())
	buf.Reset()
	(&SetupReply{Success: false, Reason: "nope"}).Send(&buf, binary.LittleEndian) //nolint:errcheck
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadSetupReply(bytes.NewReader(data), binary.LittleEndian) //nolint:errcheck
	})
}
