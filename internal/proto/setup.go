package proto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// SetupRequest is the first message a client sends: its byte order, the
// protocol version it speaks, and authentication data, exactly as in the
// X Window System.
type SetupRequest struct {
	ByteOrder byte // LittleEndianOrder or BigEndianOrder
	Major     uint16
	Minor     uint16
	AuthName  string
	AuthData  []byte
}

// Send serializes the setup request onto the stream.
func (s *SetupRequest) Send(wr io.Writer) error {
	order, err := OrderFor(s.ByteOrder)
	if err != nil {
		return err
	}
	w := &Writer{Order: order}
	w.U8(s.ByteOrder)
	w.U8(0)
	w.U16(s.Major)
	w.U16(s.Minor)
	w.U16(uint16(len(s.AuthName)))
	w.U16(uint16(len(s.AuthData)))
	w.Skip(2) // pad header to 12 bytes
	w.String4(s.AuthName)
	w.Bytes(s.AuthData)
	w.Pad()
	_, err = wr.Write(w.Buf)
	return err
}

// ReadSetupRequest parses a setup request from the stream and returns it
// with the client's byte order.
func ReadSetupRequest(rd io.Reader) (*SetupRequest, binary.ByteOrder, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, nil, err
	}
	order, err := OrderFor(hdr[0])
	if err != nil {
		return nil, nil, err
	}
	s := &SetupRequest{
		ByteOrder: hdr[0],
		Major:     order.Uint16(hdr[2:]),
		Minor:     order.Uint16(hdr[4:]),
	}
	nameLen := int(order.Uint16(hdr[6:]))
	dataLen := int(order.Uint16(hdr[8:]))
	rest := make([]byte, Pad4(nameLen)+Pad4(dataLen))
	if _, err := io.ReadFull(rd, rest); err != nil {
		return nil, nil, err
	}
	s.AuthName = string(rest[:nameLen])
	s.AuthData = append([]byte(nil), rest[Pad4(nameLen):Pad4(nameLen)+dataLen]...)
	return s, order, nil
}

// DeviceDesc describes one abstract audio device in the setup reply: the
// attributes of §5.4 — sampling rates, native sample types, channel
// counts, buffer sizes, and the input/output and telephone-connection
// masks.
type DeviceDesc struct {
	Index           uint8
	Type            uint8 // DevCodec, DevHiFi, DevMono, DevPhone
	PlaySampleFreq  uint32
	PlayBufType     uint8 // sampleconv.Encoding value
	PlayNchannels   uint8
	PlayNSamplesBuf uint32
	RecSampleFreq   uint32
	RecBufType      uint8
	RecNchannels    uint8
	RecNSamplesBuf  uint32
	NumberOfInputs  uint8
	NumberOfOutputs uint8
	InputsFromPhone uint32
	OutputsToPhone  uint32
	Name            string
}

func (d *DeviceDesc) encode(w *Writer) {
	w.U8(d.Index)
	w.U8(d.Type)
	w.U8(uint8(len(d.Name)))
	w.U8(0)
	w.U32(d.PlaySampleFreq)
	w.U8(d.PlayBufType)
	w.U8(d.PlayNchannels)
	w.Skip(2)
	w.U32(d.PlayNSamplesBuf)
	w.U32(d.RecSampleFreq)
	w.U8(d.RecBufType)
	w.U8(d.RecNchannels)
	w.Skip(2)
	w.U32(d.RecNSamplesBuf)
	w.U8(d.NumberOfInputs)
	w.U8(d.NumberOfOutputs)
	w.Skip(2)
	w.U32(d.InputsFromPhone)
	w.U32(d.OutputsToPhone)
	w.String4(d.Name)
}

func (d *DeviceDesc) decode(r *Reader) {
	d.Index = r.U8()
	d.Type = r.U8()
	nameLen := int(r.U8())
	r.Skip(1)
	d.PlaySampleFreq = r.U32()
	d.PlayBufType = r.U8()
	d.PlayNchannels = r.U8()
	r.Skip(2)
	d.PlayNSamplesBuf = r.U32()
	d.RecSampleFreq = r.U32()
	d.RecBufType = r.U8()
	d.RecNchannels = r.U8()
	r.Skip(2)
	d.RecNSamplesBuf = r.U32()
	d.NumberOfInputs = r.U8()
	d.NumberOfOutputs = r.U8()
	r.Skip(2)
	d.InputsFromPhone = r.U32()
	d.OutputsToPhone = r.U32()
	d.Name = r.String4(nameLen)
}

// SetupReply is the server's response to connection setup.
type SetupReply struct {
	Success bool
	Reason  string // when Success is false
	Major   uint16
	Minor   uint16
	Vendor  string
	Devices []DeviceDesc
}

// Send serializes the setup reply in the client's byte order.
func (s *SetupReply) Send(wr io.Writer, order binary.ByteOrder) error {
	w := &Writer{Order: order}
	if s.Success {
		w.U8(1)
		w.U8(0)
	} else {
		w.U8(0)
		w.U8(uint8(len(s.Reason)))
	}
	w.U16(s.Major)
	w.U16(s.Minor)
	lenOff := w.Len()
	w.U16(0) // additional length in 4-byte units, patched below
	if !s.Success {
		w.String4(s.Reason)
	} else {
		w.U16(uint16(len(s.Vendor)))
		w.U8(uint8(len(s.Devices)))
		w.U8(0)
		w.String4(s.Vendor)
		for i := range s.Devices {
			s.Devices[i].encode(w)
		}
	}
	order.PutUint16(w.Buf[lenOff:], uint16((w.Len()-8)/4))
	_, err := wr.Write(w.Buf)
	return err
}

// ReadSetupReply parses a setup reply from the stream.
func ReadSetupReply(rd io.Reader, order binary.ByteOrder) (*SetupReply, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, err
	}
	s := &SetupReply{
		Success: hdr[0] == 1,
		Major:   order.Uint16(hdr[2:]),
		Minor:   order.Uint16(hdr[4:]),
	}
	extra := make([]byte, int(order.Uint16(hdr[6:]))*4)
	if _, err := io.ReadFull(rd, extra); err != nil {
		return nil, err
	}
	r := NewReader(order, extra)
	if !s.Success {
		s.Reason = r.String4(int(hdr[1]))
		return s, r.Err
	}
	vendorLen := int(r.U16())
	ndev := int(r.U8())
	r.Skip(1)
	s.Vendor = r.String4(vendorLen)
	s.Devices = make([]DeviceDesc, ndev)
	for i := range s.Devices {
		s.Devices[i].decode(r)
	}
	if r.Err != nil {
		return nil, fmt.Errorf("proto: bad setup reply: %w", r.Err)
	}
	return s, nil
}
