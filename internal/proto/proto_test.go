package proto

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"
)

var orders = []struct {
	name  string
	b     byte
	order binary.ByteOrder
}{
	{"little", LittleEndianOrder, binary.LittleEndian},
	{"big", BigEndianOrder, binary.BigEndian},
}

func TestRequestTableComplete(t *testing.T) {
	// "There are 37 requests in the AudioFile protocol." (Table 1)
	if NumRequests != 37 {
		t.Errorf("NumRequests = %d, want 37", NumRequests)
	}
	for op := uint8(1); op <= MaxOpcode; op++ {
		if RequestName[op] == "" {
			t.Errorf("opcode %d has no name", op)
		}
	}
	// Table 1 plus the broadcast-channel extension pair.
	if len(RequestName) != MaxOpcode {
		t.Errorf("RequestName has %d entries, want %d", len(RequestName), MaxOpcode)
	}
	if OpSubscribe <= NumRequests || OpUnsubscribe <= NumRequests {
		t.Error("extension opcodes collide with Table 1")
	}
}

func TestEventTable(t *testing.T) {
	// "Only five event types are currently defined: four for telephone
	// control and one for interclient communications."
	if MaxEventCode-MinEventCode+1 != 5 {
		t.Error("event code range is not 5 events")
	}
	phone := 0
	for code := uint8(MinEventCode); code <= MaxEventCode; code++ {
		if EventName[code] == "" {
			t.Errorf("event %d has no name", code)
		}
		if EventMaskFor(code) == 0 {
			t.Errorf("event %d has no mask bit", code)
		}
		if code != EventPropertyChange {
			phone++
		}
	}
	if phone != 4 {
		t.Errorf("%d telephone events, want 4", phone)
	}
	if EventMaskFor(0) != 0 {
		t.Error("EventMaskFor(0) != 0")
	}
}

func TestBuiltinAtoms(t *testing.T) {
	// Table 2: 11 primitive types, 8 encoding types, 1 property.
	if AtomLastPredefined != 20 {
		t.Errorf("AtomLastPredefined = %d, want 20", AtomLastPredefined)
	}
	want := map[uint32]string{
		AtomATOM:             "ATOM",
		AtomSTRING:           "STRING",
		AtomTELEPHONE:        "TELEPHONE",
		AtomSampleMU255:      "SAMPLE_MU255",
		AtomSampleCELP1015:   "SAMPLE_CELP1015",
		AtomLastNumberDialed: "LAST_NUMBER_DIALED",
	}
	for id, name := range want {
		if BuiltinAtomNames[id] != name {
			t.Errorf("atom %d = %q, want %q", id, BuiltinAtomNames[id], name)
		}
	}
}

func TestPad4(t *testing.T) {
	for in, want := range map[int]int{0: 0, 1: 4, 3: 4, 4: 4, 5: 8, 8: 8} {
		if got := Pad4(in); got != want {
			t.Errorf("Pad4(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestOrderFor(t *testing.T) {
	if o, err := OrderFor('l'); err != nil || o != binary.LittleEndian {
		t.Error("OrderFor('l') wrong")
	}
	if o, err := OrderFor('B'); err != nil || o != binary.BigEndian {
		t.Error("OrderFor('B') wrong")
	}
	if _, err := OrderFor('x'); err == nil {
		t.Error("OrderFor('x') did not fail")
	}
}

func TestSetupRoundTrip(t *testing.T) {
	for _, o := range orders {
		t.Run(o.name, func(t *testing.T) {
			req := &SetupRequest{
				ByteOrder: o.b,
				Major:     ProtocolMajor,
				Minor:     ProtocolMinor,
				AuthName:  "MIT-MAGIC-COOKIE-1",
				AuthData:  []byte{1, 2, 3, 4, 5},
			}
			var buf bytes.Buffer
			if err := req.Send(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len()%4 != 0 {
				t.Errorf("setup request not padded: %d bytes", buf.Len())
			}
			got, order, err := ReadSetupRequest(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if order != o.order {
				t.Errorf("order = %v, want %v", order, o.order)
			}
			if !reflect.DeepEqual(got, req) {
				t.Errorf("round trip:\n got %+v\nwant %+v", got, req)
			}
		})
	}
}

func TestSetupReplyRoundTrip(t *testing.T) {
	devs := []DeviceDesc{
		{
			Index: 0, Type: DevPhone, Name: "phone0",
			PlaySampleFreq: 8000, PlayBufType: 0, PlayNchannels: 1, PlayNSamplesBuf: 32768,
			RecSampleFreq: 8000, RecBufType: 0, RecNchannels: 1, RecNSamplesBuf: 32768,
			NumberOfInputs: 1, NumberOfOutputs: 1, InputsFromPhone: 1, OutputsToPhone: 1,
		},
		{
			Index: 1, Type: DevHiFi, Name: "hifi",
			PlaySampleFreq: 44100, PlayBufType: 2, PlayNchannels: 2, PlayNSamplesBuf: 262144,
			RecSampleFreq: 44100, RecBufType: 2, RecNchannels: 2, RecNSamplesBuf: 262144,
			NumberOfInputs: 2, NumberOfOutputs: 2,
		},
	}
	for _, o := range orders {
		t.Run(o.name, func(t *testing.T) {
			rep := &SetupReply{
				Success: true,
				Major:   ProtocolMajor, Minor: ProtocolMinor,
				Vendor:  "audiofile reproduction",
				Devices: append([]DeviceDesc(nil), devs...),
			}
			var buf bytes.Buffer
			if err := rep.Send(&buf, o.order); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSetupReply(&buf, o.order)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, rep) {
				t.Errorf("round trip:\n got %+v\nwant %+v", got, rep)
			}
		})
	}
}

func TestSetupReplyFailure(t *testing.T) {
	rep := &SetupReply{Success: false, Reason: "access denied", Major: 2, Minor: 0}
	var buf bytes.Buffer
	if err := rep.Send(&buf, binary.LittleEndian); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSetupReply(&buf, binary.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if got.Success || got.Reason != "access denied" {
		t.Errorf("got %+v", got)
	}
}

// parseHeader reads a request header from buf.
func parseHeader(t *testing.T, order binary.ByteOrder, buf []byte) (op, ext uint8, body *Reader) {
	t.Helper()
	if len(buf) < 4 {
		t.Fatal("short request")
	}
	n := int(order.Uint16(buf[2:4])) * 4
	if n != len(buf) {
		t.Fatalf("header length %d != buffer %d", n, len(buf))
	}
	return buf[0], buf[1], NewReader(order, buf[4:])
}

func TestRequestRoundTrips(t *testing.T) {
	for _, o := range orders {
		t.Run(o.name, func(t *testing.T) {
			w := &Writer{Order: o.order}

			w.Reset()
			if err := AppendSelectEvents(w, SelectEventsReq{Device: 3, Mask: MaskAllEvents}); err != nil {
				t.Fatal(err)
			}
			op, _, r := parseHeader(t, o.order, w.Buf)
			if op != OpSelectEvents {
				t.Errorf("op = %d", op)
			}
			if q := DecodeSelectEvents(r); q.Device != 3 || q.Mask != MaskAllEvents || r.Err != nil {
				t.Errorf("SelectEvents decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			cr := CreateACReq{AC: 7, Device: 1, Mask: ACPlayGain | ACPreemption,
				Attrs: ACAttributes{PlayGain: -12, RecGain: 3, Preempt: 1, Endian: 1, Type: 2, Channels: 2}}
			if err := AppendCreateAC(w, cr); err != nil {
				t.Fatal(err)
			}
			op, _, r = parseHeader(t, o.order, w.Buf)
			if op != OpCreateAC {
				t.Errorf("op = %d", op)
			}
			if q := DecodeCreateAC(r); !reflect.DeepEqual(q, cr) || r.Err != nil {
				t.Errorf("CreateAC decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			ch := ChangeACReq{AC: 7, Mask: ACRecordGain, Attrs: ACAttributes{RecGain: -6}}
			if err := AppendChangeAC(w, ch); err != nil {
				t.Fatal(err)
			}
			_, _, r = parseHeader(t, o.order, w.Buf)
			if q := DecodeChangeAC(r); !reflect.DeepEqual(q, ch) || r.Err != nil {
				t.Errorf("ChangeAC decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			data := []byte{1, 2, 3, 4, 5} // odd length exercises padding
			pr := PlaySamplesReq{AC: 7, Time: 123456, Flags: SampleFlagSuppressReply, Data: data}
			if err := AppendPlaySamples(w, pr); err != nil {
				t.Fatal(err)
			}
			if len(w.Buf)%4 != 0 {
				t.Error("play request not padded")
			}
			op, ext, r := parseHeader(t, o.order, w.Buf)
			if op != OpPlaySamples || ext != SampleFlagSuppressReply {
				t.Errorf("op/ext = %d/%d", op, ext)
			}
			if q := DecodePlaySamples(r, ext); q.AC != 7 || q.Time != 123456 || !bytes.Equal(q.Data, data) || r.Err != nil {
				t.Errorf("PlaySamples decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			rr := RecordSamplesReq{AC: 7, Time: 99, NBytes: 4096, Flags: SampleFlagNoBlock}
			if err := AppendRecordSamples(w, rr); err != nil {
				t.Fatal(err)
			}
			op, ext, r = parseHeader(t, o.order, w.Buf)
			if op != OpRecordSamples {
				t.Errorf("op = %d", op)
			}
			if q := DecodeRecordSamples(r, ext); !reflect.DeepEqual(q, rr) || r.Err != nil {
				t.Errorf("RecordSamples decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			if err := AppendDeviceReq(w, OpGetTime, 2); err != nil {
				t.Fatal(err)
			}
			op, _, r = parseHeader(t, o.order, w.Buf)
			if op != OpGetTime || DecodeDeviceReq(r) != 2 || r.Err != nil {
				t.Error("GetTime decode failed")
			}

			w.Reset()
			if err := AppendGainReq(w, OpSetOutputGain, GainReq{Device: 1, Gain: -30}); err != nil {
				t.Fatal(err)
			}
			_, _, r = parseHeader(t, o.order, w.Buf)
			if q := DecodeGainReq(r); q.Device != 1 || q.Gain != -30 || r.Err != nil {
				t.Errorf("GainReq decode: %+v", q)
			}

			w.Reset()
			if err := AppendChangeHosts(w, ChangeHostsReq{Mode: HostInsert,
				Host: HostEntry{Family: FamilyInternet, Addr: []byte{10, 0, 0, 1}}}); err != nil {
				t.Fatal(err)
			}
			op, ext, r = parseHeader(t, o.order, w.Buf)
			if op != OpChangeHosts {
				t.Errorf("op = %d", op)
			}
			if q := DecodeChangeHosts(r, ext); q.Mode != HostInsert ||
				q.Host.Family != FamilyInternet || !bytes.Equal(q.Host.Addr, []byte{10, 0, 0, 1}) {
				t.Errorf("ChangeHosts decode: %+v", q)
			}

			w.Reset()
			if err := AppendInternAtom(w, InternAtomReq{OnlyIfExists: true, Name: "MY_ATOM"}); err != nil {
				t.Fatal(err)
			}
			op, ext, r = parseHeader(t, o.order, w.Buf)
			if op != OpInternAtom {
				t.Errorf("op = %d", op)
			}
			if q := DecodeInternAtom(r, ext); !q.OnlyIfExists || q.Name != "MY_ATOM" || r.Err != nil {
				t.Errorf("InternAtom decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			cp := ChangePropertyReq{Device: 0, Property: AtomLastNumberDialed, Type: AtomSTRING,
				Format: 8, Mode: PropModeReplace, Data: []byte("6175551212")}
			if err := AppendChangeProperty(w, cp); err != nil {
				t.Fatal(err)
			}
			op, ext, r = parseHeader(t, o.order, w.Buf)
			if op != OpChangeProperty {
				t.Errorf("op = %d", op)
			}
			if q := DecodeChangeProperty(r, ext); q.Property != cp.Property || q.Type != cp.Type ||
				q.Format != 8 || !bytes.Equal(q.Data, cp.Data) || r.Err != nil {
				t.Errorf("ChangeProperty decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			gp := GetPropertyReq{Device: 0, Property: AtomLastNumberDialed, Type: AtomNone, Delete: true}
			if err := AppendGetProperty(w, gp); err != nil {
				t.Fatal(err)
			}
			_, ext, r = parseHeader(t, o.order, w.Buf)
			if q := DecodeGetProperty(r, ext); !reflect.DeepEqual(q, gp) || r.Err != nil {
				t.Errorf("GetProperty decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			if err := AppendQueryExtension(w, QueryExtensionReq{Name: "SHAPE"}); err != nil {
				t.Fatal(err)
			}
			_, _, r = parseHeader(t, o.order, w.Buf)
			if q := DecodeQueryExtension(r); q.Name != "SHAPE" || r.Err != nil {
				t.Errorf("QueryExtension decode: %+v err %v", q, r.Err)
			}

			w.Reset()
			if err := AppendEmptyReq(w, OpNoOperation, 0); err != nil {
				t.Fatal(err)
			}
			if len(w.Buf) != 4 {
				t.Errorf("NoOperation length = %d, want 4 (shortest possible request)", len(w.Buf))
			}
		})
	}
}

func TestMessageRoundTrips(t *testing.T) {
	for _, o := range orders {
		t.Run(o.name, func(t *testing.T) {
			w := &Writer{Order: o.order}
			rep := &Reply{Data: 5, Seq: 1000, Time: 0xDEADBEEF, Aux: 42, Extra: []byte{9, 8, 7, 6}}
			rep.Encode(w)
			em := &ErrorMsg{Code: ErrDevice, Seq: 1001, BadValue: 77, MajorOp: OpGetTime}
			em.Encode(w)
			ev := &Event{Code: EventPhoneDTMF, Detail: '5', Seq: 1001, Device: 0,
				Time: 12345, HostSec: 1000000, HostNsec: 500, Value: 3}
			ev.Encode(w)

			rd := bytes.NewReader(w.Buf)
			m, err := ReadMessage(rd, o.order)
			if err != nil || m.Reply == nil {
				t.Fatalf("reply: %v %+v", err, m)
			}
			if !reflect.DeepEqual(m.Reply, rep) {
				t.Errorf("reply round trip:\n got %+v\nwant %+v", m.Reply, rep)
			}
			m, err = ReadMessage(rd, o.order)
			if err != nil || m.Error == nil {
				t.Fatalf("error: %v %+v", err, m)
			}
			if !reflect.DeepEqual(m.Error, em) {
				t.Errorf("error round trip:\n got %+v\nwant %+v", m.Error, em)
			}
			m, err = ReadMessage(rd, o.order)
			if err != nil || m.Event == nil {
				t.Fatalf("event: %v %+v", err, m)
			}
			if !reflect.DeepEqual(m.Event, ev) {
				t.Errorf("event round trip:\n got %+v\nwant %+v", m.Event, ev)
			}
			if rd.Len() != 0 {
				t.Errorf("%d bytes left over", rd.Len())
			}
		})
	}
}

func TestErrorAndEventFixedSize(t *testing.T) {
	w := &Writer{Order: binary.LittleEndian}
	(&ErrorMsg{}).Encode(w)
	if len(w.Buf) != EventBytes {
		t.Errorf("error size = %d, want %d", len(w.Buf), EventBytes)
	}
	w.Reset()
	(&Event{Code: EventPhoneRing}).Encode(w)
	if len(w.Buf) != EventBytes {
		t.Errorf("event size = %d, want %d", len(w.Buf), EventBytes)
	}
	w.Reset()
	(&Reply{}).Encode(w)
	if len(w.Buf) != ReplyHeaderBytes {
		t.Errorf("bare reply size = %d, want %d", len(w.Buf), ReplyHeaderBytes)
	}
}

func TestHostListRoundTrip(t *testing.T) {
	hosts := []HostEntry{
		{Family: FamilyInternet, Addr: []byte{127, 0, 0, 1}},
		{Family: FamilyInternet6, Addr: bytes.Repeat([]byte{0xAB}, 16)},
		{Family: FamilyLocal, Addr: []byte("unix")},
	}
	for _, o := range orders {
		w := &Writer{Order: o.order}
		EncodeHostList(w, hosts)
		r := NewReader(o.order, w.Buf)
		got := DecodeHostList(r, len(hosts))
		if r.Err != nil || !reflect.DeepEqual(got, hosts) {
			t.Errorf("%s: host list round trip: %+v err %v", o.name, got, r.Err)
		}
	}
}

func TestMaxRequestLength(t *testing.T) {
	// "The length field limits the longest request to 262144 bytes."
	w := &Writer{Order: binary.LittleEndian}
	big := make([]byte, MaxRequestBytes)
	err := AppendPlaySamples(w, PlaySamplesReq{Data: big})
	if err == nil {
		t.Error("oversized request did not error")
	}
	w.Reset()
	ok := make([]byte, MaxRequestBytes-16)
	if err := AppendPlaySamples(w, PlaySamplesReq{Data: ok}); err != nil {
		t.Errorf("max-size request errored: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(binary.LittleEndian, []byte{1, 2})
	_ = r.U32() // overrun
	if r.Err == nil {
		t.Fatal("no error after overrun")
	}
	if v := r.U8(); v != 0 {
		t.Errorf("read after error = %d, want 0", v)
	}
	if b := r.BytesRef(1); b != nil {
		t.Error("BytesRef after error != nil")
	}
}

// Property: any byte soup fed to ReadMessage either errors or yields
// exactly one well-formed message without panicking.
func TestQuickReadMessageNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("ReadMessage panicked")
			}
		}()
		_, _ = ReadMessage(bytes.NewReader(data), binary.LittleEndian)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
