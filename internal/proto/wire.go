package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShort reports a truncated or over-read message.
var ErrShort = errors.New("proto: message too short")

// OrderFor returns the binary.ByteOrder for a setup byte-order byte.
func OrderFor(b byte) (binary.ByteOrder, error) {
	switch b {
	case LittleEndianOrder:
		return binary.LittleEndian, nil
	case BigEndianOrder:
		return binary.BigEndian, nil
	}
	return nil, fmt.Errorf("proto: bad byte-order byte %#x", b)
}

// Writer serializes protocol messages in a chosen byte order. The zero
// value with an Order set is ready to use; Buf grows as needed.
type Writer struct {
	Order binary.ByteOrder
	Buf   []byte
}

// Reset truncates the buffer, retaining capacity.
func (w *Writer) Reset() { w.Buf = w.Buf[:0] }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.Buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

// U16 appends a 16-bit value. The two wire orders are open-coded: passing
// a stack array through the ByteOrder interface forces it to escape, which
// would cost a heap allocation on every append.
func (w *Writer) U16(v uint16) {
	if w.Order == binary.ByteOrder(binary.BigEndian) {
		w.Buf = append(w.Buf, byte(v>>8), byte(v))
	} else {
		w.Buf = append(w.Buf, byte(v), byte(v>>8))
	}
}

// U32 appends a 32-bit value.
func (w *Writer) U32(v uint32) {
	if w.Order == binary.ByteOrder(binary.BigEndian) {
		w.Buf = append(w.Buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		w.Buf = append(w.Buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// I16 appends a signed 16-bit value.
func (w *Writer) I16(v int16) { w.U16(uint16(v)) }

// I32 appends a signed 32-bit value.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// Bytes appends raw bytes.
func (w *Writer) Bytes(b []byte) { w.Buf = append(w.Buf, b...) }

// String4 appends a string padded with zero bytes to a 4-byte boundary.
func (w *Writer) String4(s string) {
	w.Buf = append(w.Buf, s...)
	for len(w.Buf)%4 != 0 {
		w.Buf = append(w.Buf, 0)
	}
}

// Pad appends zero bytes to a 4-byte boundary.
func (w *Writer) Pad() {
	for len(w.Buf)%4 != 0 {
		w.Buf = append(w.Buf, 0)
	}
}

// Skip appends n zero bytes.
func (w *Writer) Skip(n int) {
	for i := 0; i < n; i++ {
		w.Buf = append(w.Buf, 0)
	}
}

// BeginRequest appends a request header with a length placeholder and
// returns its offset for EndRequest.
func (w *Writer) BeginRequest(op, ext uint8) int {
	off := len(w.Buf)
	w.U8(op)
	w.U8(ext)
	w.U16(0) // patched by EndRequest
	return off
}

// EndRequest pads the request to a 32-bit boundary and patches the header
// length field. It returns an error if the request exceeds the protocol
// maximum.
func (w *Writer) EndRequest(off int) error {
	w.Pad()
	n := len(w.Buf) - off
	if n > MaxRequestBytes {
		return fmt.Errorf("proto: request length %d exceeds maximum %d", n, MaxRequestBytes)
	}
	w.Order.PutUint16(w.Buf[off+2:off+4], uint16(n/4))
	return nil
}

// Reader deserializes protocol messages. Reads past the end set a sticky
// error and return zero values, so parse code can validate once at the end.
type Reader struct {
	Order binary.ByteOrder
	Buf   []byte
	Pos   int
	Err   error
}

// NewReader returns a reader over buf in the given order.
func NewReader(order binary.ByteOrder, buf []byte) *Reader {
	return &Reader{Order: order, Buf: buf}
}

func (r *Reader) fail() {
	if r.Err == nil {
		r.Err = ErrShort
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.Buf) - r.Pos }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.Err != nil || r.Pos+1 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := r.Buf[r.Pos]
	r.Pos++
	return v
}

// U16 reads a 16-bit value.
func (r *Reader) U16() uint16 {
	if r.Err != nil || r.Pos+2 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := r.Order.Uint16(r.Buf[r.Pos:])
	r.Pos += 2
	return v
}

// U32 reads a 32-bit value.
func (r *Reader) U32() uint32 {
	if r.Err != nil || r.Pos+4 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := r.Order.Uint32(r.Buf[r.Pos:])
	r.Pos += 4
	return v
}

// I16 reads a signed 16-bit value.
func (r *Reader) I16() int16 { return int16(r.U16()) }

// I32 reads a signed 32-bit value.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// BytesRef returns n bytes without copying; the slice aliases the buffer.
func (r *Reader) BytesRef(n int) []byte {
	if r.Err != nil || n < 0 || r.Pos+n > len(r.Buf) {
		r.fail()
		return nil
	}
	b := r.Buf[r.Pos : r.Pos+n]
	r.Pos += n
	return b
}

// String4 reads an n-byte string and skips its padding to a 4-byte
// boundary.
func (r *Reader) String4(n int) string {
	b := r.BytesRef(n)
	r.SkipPad()
	return string(b)
}

// Skip advances past n bytes.
func (r *Reader) Skip(n int) {
	if r.Err != nil || n < 0 || r.Pos+n > len(r.Buf) {
		r.fail()
		return
	}
	r.Pos += n
}

// SkipPad advances to the next 4-byte boundary.
func (r *Reader) SkipPad() {
	for r.Pos%4 != 0 {
		r.Skip(1)
	}
}
