package af

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"audiofile/internal/proto"
)

// Transparent reconnection. An AudioFile session is mostly replayable
// state: the handshake is stateless, audio context ids are allocated by
// the client, and the library mirrors every context's attributes
// locally. So when the transport dies under an operation, the library
// can redial with backoff, re-handshake, recreate the live contexts
// verbatim, and either retry (idempotent operations: GetTime) or
// surface a typed ReconnectedError (streaming operations, whose device
// time base moved across the restart — the caller resynchronizes via
// GetTime or the OnResync hook and resumes).
//
// What does NOT survive a reconnect: buffered unflushed requests (never
// acknowledged, dropped), server-side coder state for compressed (ADPCM)
// contexts (the stream realigns at the next block, audible as a brief
// glitch), event selections, and properties.

// ReconnectOptions configures transparent reconnection; see
// Conn.SetReconnect.
type ReconnectOptions struct {
	// Redial opens a replacement transport. nil redials the address the
	// connection was Opened with (connections made by NewConn over a
	// custom transport must supply it).
	Redial func() (net.Conn, error)
	// MaxAttempts bounds redial attempts per failure (default 5).
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling per
	// attempt (default 50ms) up to MaxBackoff (default 2s). The first
	// attempt is immediate.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// OnResync, if set, runs (without the connection lock) after every
	// successful reconnect: the hook for streaming clients to re-read
	// device time and reanchor their stream.
	OnResync func(*Conn)
}

// SetReconnect enables transparent reconnection-with-backoff. While a
// reconnect is in progress the connection lock is held, so concurrent
// operations wait for its outcome.
func (c *Conn) SetReconnect(o ReconnectOptions) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if o.Redial == nil {
		if c.network == "" {
			return errors.New("af: SetReconnect: connection was not made by Open; supply Redial")
		}
		network, addr := c.network, c.addr
		o.Redial = func() (net.Conn, error) { return net.Dial(network, addr) }
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 5
	}
	if o.Backoff == 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 2 * time.Second
	}
	c.reconnect = &o
	return nil
}

// ReconnectedError reports that the transport failed mid-operation and
// the session was re-established. The operation itself did not complete
// (or its completion is unknown); the caller should resynchronize device
// time and resume. Err is the transport failure that triggered the
// reconnect.
type ReconnectedError struct {
	Err error
}

func (e *ReconnectedError) Error() string {
	return fmt.Sprintf("af: reconnected after connection failure: %v", e.Err)
}

func (e *ReconnectedError) Unwrap() error { return e.Err }

// ServerClosedError reports that the server deliberately closed the
// session with a typed notice — an Overload eviction, a Drain shutdown,
// or a router Redirect — rather than the transport failing on its own.
// Code is the proto.Err* code from the server's final message. With
// reconnection enabled a Redirect never surfaces (the library redials
// and is re-placed); Overload and Drain always do.
type ServerClosedError struct {
	Code uint8
	Err  error // the transport error that followed the notice
}

func (e *ServerClosedError) Error() string {
	return fmt.Sprintf("af: server closed the connection: %s", GetErrorText(e.Code))
}

func (e *ServerClosedError) Unwrap() error { return e.Err }

// shouldReconnect reports whether err warrants a reconnection attempt:
// reconnection is enabled, the connection is not deliberately closed,
// and the failure is the transport dying — a protocol error is the
// server answering, not a reason to redial. A typed goodbye is
// redirect-aware: a Redirect notice (a fleet router moving the session
// to a replacement backend) is an invitation to redial, while Overload
// and Drain are deliberate terminations that redialing would only
// bounce against. c.mu held.
func (c *Conn) shouldReconnect(err error) bool {
	if c.reconnect == nil || c.closed || err == nil {
		return false
	}
	var pe *ProtoError
	if errors.As(err, &pe) {
		return false
	}
	var sce *ServerClosedError
	if errors.As(err, &sce) {
		return sce.Code == proto.ErrRedirect
	}
	return true
}

// reconnectLocked re-establishes the session with backoff: redial,
// handshake, replay the live audio contexts, sync. c.mu held throughout
// (including the backoff sleeps).
func (c *Conn) reconnectLocked() error {
	r := c.reconnect
	if r == nil {
		return errClosed
	}
	backoff := r.Backoff
	var lastErr error
	for attempt := 0; attempt < r.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > r.MaxBackoff {
				backoff = r.MaxBackoff
			}
		}
		nc, err := r.Redial()
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.resetOnto(nc); err != nil {
			nc.Close()
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("af: reconnect failed after %d attempts: %w", r.MaxAttempts, lastErr)
}

// resetOnto rebuilds the session over a fresh transport: handshake with
// the connection's byte order, swap the transport in, replay CreateAC
// for every live context (ids are client-allocated and attributes are
// mirrored locally, so the replay is verbatim), then one sync round trip
// so any replay error surfaces here rather than later. c.mu held.
func (c *Conn) resetOnto(nc net.Conn) error {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck
	}
	ob := byte(proto.LittleEndianOrder)
	if c.order == binary.ByteOrder(binary.BigEndian) {
		ob = proto.BigEndianOrder
	}
	// The routing key is replayed verbatim: after a router-initiated
	// failover the redial lands on the router again, and the same key
	// must drive the directory lookup that places the session on the
	// replacement backend.
	setup := routedSetup(ob, c.route)
	if err := setup.Send(nc); err != nil {
		return fmt.Errorf("af: reconnect setup: %w", err)
	}
	rep, err := proto.ReadSetupReply(nc, c.order)
	if err != nil {
		return fmt.Errorf("af: reconnect setup reply: %w", err)
	}
	if !rep.Success {
		return fmt.Errorf("af: reconnect refused: %s", rep.Reason)
	}
	// The session state assumes the same server configuration: the
	// existing Device pointers (held by live ACs) must stay valid, so the
	// server must still export at least the devices we knew about.
	if len(rep.Devices) < len(c.devices) {
		return fmt.Errorf("af: reconnect: server exports %d devices, session had %d",
			len(rep.Devices), len(c.devices))
	}
	c.conn = nc
	c.br.Reset(nc)
	c.w.Reset()
	c.sentSeq = 0
	c.ioErr = nil
	c.closeNotice = 0
	// Subscriptions do not survive a reconnect (like event selections):
	// the new session has no server-side channel state, so the listener
	// re-subscribes after resynchronizing.
	for _, s := range c.subs {
		s.closed = true
		s.queue = nil
		s.ac.sub = nil
	}
	clear(c.subs)
	// Replay the live contexts in id order with a full mask: the mirrored
	// Attributes are the complete context state.
	ids := make([]uint32, 0, len(c.acs))
	for id := range c.acs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	const fullMask = ACPlayGain | ACRecordGain | ACPreemption | ACEncoding | ACEndian | ACChannels
	for _, id := range ids {
		a := c.acs[id]
		err := proto.AppendCreateAC(&c.w, proto.CreateACReq{
			AC:     a.id,
			Device: uint32(a.Device.Index),
			Mask:   fullMask,
			Attrs:  wireAttrs(a.Attributes),
		})
		if err != nil {
			return err
		}
		c.sentSeq++
	}
	return c.syncLocked()
}
