package af_test

import (
	"bytes"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// rig is a full-stack test fixture: an in-process server with
// manual-clock simulated devices, reachable over a real Unix socket.
//
// Devices: 0 phone0 (telephone codec), 1 codec0 (loopback), 2 hifi0
// (stereo loopback), 3 hifi0L, 4 hifi0R.
type rig struct {
	srv      *aserver.Server
	codecClk *vdev.ManualClock
	hifiClk  *vdev.ManualClock
	phoneClk *vdev.ManualClock
	addr     string
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		codecClk: vdev.NewManualClock(8000),
		hifiClk:  vdev.NewManualClock(44100),
		phoneClk: vdev.NewManualClock(8000),
	}
	srv, err := aserver.New(aserver.Options{
		Vendor: "test",
		Logf:   t.Logf,
		Devices: []aserver.DeviceSpec{
			{Kind: "phone", Name: "phone0", Clock: r.phoneClk},
			{Kind: "codec", Name: "codec0", Clock: r.codecClk, Loopback: true},
			{Kind: "hifi", Name: "hifi0", Clock: r.hifiClk, Loopback: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.srv = srv
	t.Cleanup(srv.Close)
	r.addr = filepath.Join(t.TempDir(), "af.sock")
	if _, err := srv.Listen("unix", r.addr); err != nil {
		t.Fatal(err)
	}
	return r
}

// dial opens a client connection to the rig's server.
func (r *rig) dial(t *testing.T) *af.Conn {
	t.Helper()
	nc, err := net.Dial("unix", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := af.NewConn(nc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// step advances the codec clock by n ticks in hardware-window-sized steps
// with a server update after each, like wall time passing.
func (r *rig) step(n int) {
	for n > 0 {
		c := 512
		if c > n {
			c = n
		}
		r.codecClk.Advance(c)
		r.phoneClk.Advance(c)
		r.hifiClk.Advance(c * 44100 / 8000)
		r.srv.Sync()
		n -= c
	}
}

// primeRecording issues a tiny non-blocking record so the context counts
// as recording and the server's periodic record update runs from now on.
// Per §7.4.1, the record update only runs for devices with recording
// contexts, which "breaks clients that start up and immediately want to
// start recording in the past" — tests that step far ahead must prime.
func primeRecording(t *testing.T, ac *af.AC) {
	t.Helper()
	now, err := ac.GetTime()
	if err != nil {
		t.Fatal(err)
	}
	fb := 4 // enough for any encoding/channels used in these tests
	if _, _, err := ac.RecordSamples(now.Add(-fb), make([]byte, fb), false); err != nil {
		t.Fatal(err)
	}
}

func muTone(vals ...int16) []byte {
	out := make([]byte, len(vals))
	for i, v := range vals {
		out[i] = sampleconv.EncodeMuLaw(v)
	}
	return out
}

func TestSetupAndDeviceList(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	if c.Vendor() != "test" {
		t.Errorf("vendor = %q", c.Vendor())
	}
	devs := c.Devices()
	if len(devs) != 5 {
		t.Fatalf("got %d devices, want 5", len(devs))
	}
	if !devs[0].IsPhone() || devs[0].Name != "phone0" || devs[0].Type != af.DevPhone {
		t.Errorf("device 0 = %+v", devs[0])
	}
	if devs[1].IsPhone() || devs[1].PlaySampleFreq != 8000 || devs[1].PlayBufType != af.MU255 {
		t.Errorf("device 1 = %+v", devs[1])
	}
	if devs[2].Type != af.DevHiFi || devs[2].PlayNchannels != 2 || devs[2].PlayBufType != af.LIN16 {
		t.Errorf("device 2 = %+v", devs[2])
	}
	if devs[3].Type != af.DevMono || devs[4].Type != af.DevMono {
		t.Errorf("mono views = %+v / %+v", devs[3], devs[4])
	}
	if c.FindDefaultDevice() != 1 {
		t.Errorf("FindDefaultDevice = %d, want 1", c.FindDefaultDevice())
	}
	if c.FindPhoneDevice() != 0 {
		t.Errorf("FindPhoneDevice = %d, want 0", c.FindPhoneDevice())
	}
	// The server buffer size attribute is about 4 seconds.
	if devs[1].PlayNSamplesBuf != 32768 {
		t.Errorf("codec buffer = %d samples, want 32768", devs[1].PlayNSamplesBuf)
	}
}

func TestGetTime(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	r.codecClk.Advance(12345)
	got, err := c.GetTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12345 {
		t.Errorf("GetTime = %d, want 12345", got)
	}
	// Bad device yields a protocol error on this synchronous call.
	if _, err := c.GetTime(99); err == nil {
		t.Error("GetTime(99) did not fail")
	} else if pe, ok := err.(*af.ProtoError); !ok || pe.Code != 3 /* ErrDevice */ {
		t.Errorf("error = %v", err)
	}
}

func TestPlayRecordLoopback(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, err := c.CreateAC(1, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	now, err := ac.GetTime()
	if err != nil {
		t.Fatal(err)
	}
	start := now.Add(100)
	data := muTone(1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000)
	if _, err := ac.PlaySamples(start, data); err != nil {
		t.Fatal(err)
	}
	r.step(300)
	buf := make([]byte, len(data))
	_, n, err := ac.RecordSamples(start, buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("recorded %d bytes, want %d", n, len(buf))
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("loopback mismatch:\n got %v\nwant %v", buf, data)
	}
}

func TestSilenceWhereNothingPlayed(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, 0, af.ACAttributes{})
	r.step(500)
	buf := make([]byte, 100)
	_, n, err := ac.RecordSamples(100, buf, true)
	if err != nil || n != 100 {
		t.Fatal(err, n)
	}
	for i, b := range buf {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x, want µ-law silence", i, b)
		}
	}
}

func TestPlayChunkingLargeRequest(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, 0, af.ACAttributes{})
	primeRecording(t, ac)
	// 20000 bytes = 2.5 chunks at 8 KiB.
	data := make([]byte, 20000)
	for i := range data {
		data[i] = sampleconv.EncodeMuLaw(int16(i%8000 - 4000))
	}
	now, _ := ac.GetTime()
	start := now.Add(50)
	if _, err := ac.PlaySamples(start, data); err != nil {
		t.Fatal(err)
	}
	r.step(22000)
	buf := make([]byte, len(data))
	_, n, err := ac.RecordSamples(start, buf, true)
	if err != nil || n != len(buf) {
		t.Fatal(err, n)
	}
	if !bytes.Equal(buf, data) {
		for i := range buf {
			if buf[i] != data[i] {
				t.Fatalf("first mismatch at %d: %#x != %#x", i, buf[i], data[i])
			}
		}
	}
}

func TestRecordNonBlockingPartial(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, 0, af.ACAttributes{})
	r.step(200)
	now, _ := ac.GetTime()
	buf := make([]byte, 100)
	// Start 50 in the past: only 50 bytes are available right now.
	_, n, err := ac.RecordSamples(now.Add(-50), buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("non-blocking record returned %d bytes, want 50", n)
	}
}

func TestRecordBlockingWaitsForData(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, 0, af.ACAttributes{})
	r.step(100)
	now, _ := ac.GetTime()

	doneCh := make(chan struct{})
	var n int
	go func() {
		defer close(doneCh)
		_, n, _ = ac.RecordSamples(now, make([]byte, 400), true)
	}()
	// The record must not complete until time advances past now+400.
	select {
	case <-doneCh:
		t.Fatal("blocking record returned before data existed")
	case <-time.After(50 * time.Millisecond):
	}
	r.step(600)
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("blocking record never completed")
	}
	if n != 400 {
		t.Errorf("recorded %d bytes, want 400", n)
	}
}

func TestRequestsQueueBehindBlockedRecord(t *testing.T) {
	// FIFO semantics: while a blocking record is parked, later requests
	// on the same connection wait their turn.
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, 0, af.ACAttributes{})
	r.step(100)
	now, _ := ac.GetTime()

	type result struct {
		n   int
		t2  af.ATime
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		_, n, err := ac.RecordSamples(now, make([]byte, 200), true)
		t2, err2 := c.GetTime(1)
		if err == nil {
			err = err2
		}
		resCh <- result{n, t2, err}
	}()
	time.Sleep(50 * time.Millisecond)
	r.step(400)
	select {
	case res := <-resCh:
		if res.err != nil || res.n != 200 {
			t.Fatalf("%+v", res)
		}
		if res.t2 < 400 {
			t.Errorf("GetTime after blocked record = %d", res.t2)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never completed")
	}
}

func TestMixingTwoConnections(t *testing.T) {
	r := newRig(t)
	c1 := r.dial(t)
	c2 := r.dial(t)
	ac1, _ := c1.CreateAC(1, 0, af.ACAttributes{})
	ac2, _ := c2.CreateAC(1, 0, af.ACAttributes{})
	now, _ := ac1.GetTime()
	start := now.Add(100)
	tone := muTone(3000, 3000, 3000, 3000)
	if _, err := ac1.PlaySamples(start, tone); err != nil {
		t.Fatal(err)
	}
	if _, err := ac2.PlaySamples(start, tone); err != nil {
		t.Fatal(err)
	}
	r.step(300)
	buf := make([]byte, 4)
	ac1.RecordSamples(start, buf, true)
	for i := range buf {
		v := int(sampleconv.DecodeMuLaw(buf[i]))
		if v < 5500 || v > 6600 {
			t.Errorf("mixed sample %d = %d, want ~6000", i, v)
		}
	}
}

func TestPreemptionAcrossConnections(t *testing.T) {
	r := newRig(t)
	c1 := r.dial(t)
	c2 := r.dial(t)
	ac1, _ := c1.CreateAC(1, 0, af.ACAttributes{})
	ac2, _ := c2.CreateAC(1, proto_ACPreemption, af.ACAttributes{Preempt: true})
	now, _ := ac1.GetTime()
	start := now.Add(100)
	ac1.PlaySamples(start, muTone(8000, 8000, 8000, 8000))
	c1.Sync()
	ac2.PlaySamples(start, muTone(500, 500, 500, 500))
	r.step(300)
	buf := make([]byte, 4)
	ac1.RecordSamples(start, buf, true)
	v := int(sampleconv.DecodeMuLaw(buf[0]))
	if v < 400 || v > 600 {
		t.Errorf("preempted sample = %d, want ~500", v)
	}
}

const proto_ACPreemption = af.ACPreemption

func TestPlayGainAttribute(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, af.ACPlayGain, af.ACAttributes{PlayGain: -6})
	now, _ := ac.GetTime()
	start := now.Add(100)
	ac.PlaySamples(start, muTone(8000, 8000))
	r.step(300)
	buf := make([]byte, 2)
	ac.RecordSamples(start, buf, true)
	v := int(sampleconv.DecodeMuLaw(buf[0]))
	if v < 3600 || v > 4500 {
		t.Errorf("gained sample = %d, want ~4000", v)
	}
	// ChangeACAttributes back to 0 dB.
	if err := ac.ChangeAttributes(af.ACPlayGain, af.ACAttributes{PlayGain: 0}); err != nil {
		t.Fatal(err)
	}
	now, _ = ac.GetTime()
	start2 := now.Add(100)
	ac.PlaySamples(start2, muTone(8000, 8000))
	r.step(300)
	ac.RecordSamples(start2, buf, true)
	v = int(sampleconv.DecodeMuLaw(buf[0]))
	if v < 7500 || v > 8500 {
		t.Errorf("post-change sample = %d, want ~8000", v)
	}
}

func TestBigEndianClient(t *testing.T) {
	r := newRig(t)
	nc, err := net.Dial("unix", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := af.NewConnOrder(nc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Devices()) != 5 {
		t.Fatalf("BE client saw %d devices", len(c.Devices()))
	}
	// Play lin16 stereo on the hifi loopback with big-endian sample data.
	ac, err := c.CreateAC(2, af.ACEndian, af.ACAttributes{BigEndian: true})
	if err != nil {
		t.Fatal(err)
	}
	primeRecording(t, ac)
	now, err := ac.GetTime()
	if err != nil {
		t.Fatal(err)
	}
	start := now.Add(500)
	// 4 stereo frames, big-endian int16 pattern.
	frames := []int16{100, -100, 2000, -2000, 30000, -30000, 1, -1}
	data := make([]byte, 16)
	for i, v := range frames {
		data[2*i] = byte(uint16(v) >> 8) // big endian
		data[2*i+1] = byte(uint16(v))
	}
	if _, err := ac.PlaySamples(start, data); err != nil {
		t.Fatal(err)
	}
	r.step(2000)
	buf := make([]byte, 16)
	_, n, err := ac.RecordSamples(start, buf, true)
	if err != nil || n != 16 {
		t.Fatal(err, n)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("BE round trip mismatch:\n got %v\nwant %v", buf, data)
	}
}

func TestPhoneEventsAndControl(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	if err := c.SelectEvents(0, af.MaskAllEvents); err != nil {
		t.Fatal(err)
	}
	c.Sync()

	line := r.srv.PhoneLine(0)
	line.RingPulse()
	r.srv.Sync()
	ev, err := c.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Code != af.EventPhoneRing || ev.Detail != 1 || ev.Device != 0 {
		t.Fatalf("event = %+v, want ring on device 0", ev)
	}

	// Answer: hookswitch event plus ring-stopped event.
	if err := c.HookSwitch(0, true); err != nil {
		t.Fatal(err)
	}
	ev, _ = c.NextEvent()
	if ev.Code != af.EventPhoneHookSwitch || ev.Detail != 1 {
		t.Fatalf("event = %+v, want hook off", ev)
	}
	ev, _ = c.NextEvent()
	if ev.Code != af.EventPhoneRing || ev.Detail != 0 {
		t.Fatalf("event = %+v, want ring stopped", ev)
	}

	offHook, loop, err := c.QueryPhone(0)
	if err != nil || !offHook || loop {
		t.Fatalf("QueryPhone = %v %v %v", offHook, loop, err)
	}

	// Remote caller punches digits; DTMF events arrive.
	line.RemoteDigits("12")
	r.srv.Sync()
	var digits []byte
	for i := 0; i < 2; i++ {
		ev, err := c.NextEvent()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Code == af.EventPhoneDTMF {
			digits = append(digits, ev.Detail)
		}
	}
	if string(digits) != "12" {
		t.Errorf("digits = %q", digits)
	}

	// Loop current from the extension phone.
	line.SetExtensionHook(true)
	r.srv.Sync()
	ev, _ = c.NextEvent()
	if ev.Code != af.EventPhoneLoop || ev.Detail != 1 {
		t.Fatalf("event = %+v, want loop on", ev)
	}

	// Hang up.
	c.HookSwitch(0, false)
	ev, _ = c.NextEvent()
	if ev.Code != af.EventPhoneHookSwitch || ev.Detail != 0 {
		t.Fatalf("event = %+v, want hook on", ev)
	}

	// Telephony requests against a non-phone device are BadMatch, seen at
	// the next synchronous request as an async error.
	var asyncErr atomic.Value
	c.SetErrorHandler(func(_ *af.Conn, pe *af.ProtoError) { asyncErr.Store(pe) })
	c.HookSwitch(1, true)
	c.Sync()
	if pe, _ := asyncErr.Load().(*af.ProtoError); pe == nil || pe.Code != 8 /* ErrMatch */ {
		t.Errorf("async error = %v", asyncErr.Load())
	}
}

func TestEventsNotDeliveredUnselected(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	r.srv.PhoneLine(0).RingPulse()
	r.srv.Sync()
	n, err := c.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("unselected client got %d events", n)
	}
}

func TestAtoms(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	// Built-in atom resolves by name to its predefined id.
	a, err := c.InternAtom("STRING", false)
	if err != nil || a != af.AtomSTRING {
		t.Fatalf("InternAtom(STRING) = %v, %v", a, err)
	}
	name, err := c.GetAtomName(af.AtomLastNumberDialed)
	if err != nil || name != "LAST_NUMBER_DIALED" {
		t.Fatalf("GetAtomName = %q, %v", name, err)
	}
	// New atom.
	a1, err := c.InternAtom("MY_THING", false)
	if err != nil || a1 == 0 {
		t.Fatal(a1, err)
	}
	a2, _ := c.InternAtom("MY_THING", false)
	if a2 != a1 {
		t.Errorf("re-intern = %d, want %d", a2, a1)
	}
	// onlyIfExists.
	if a, _ := c.InternAtom("NOT_THERE", true); a != af.AtomNone {
		t.Errorf("onlyIfExists returned %d", a)
	}
	// Atoms are server-global: a second client sees the same id.
	c2 := r.dial(t)
	a3, _ := c2.InternAtom("MY_THING", true)
	if a3 != a1 {
		t.Errorf("cross-client atom = %d, want %d", a3, a1)
	}
	// Bad atom name lookup errors.
	if _, err := c.GetAtomName(9999); err == nil {
		t.Error("GetAtomName(9999) did not fail")
	}
}

func TestProperties(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	watcher := r.dial(t)
	watcher.SelectEvents(0, af.MaskPropertyChange)
	watcher.Sync()

	err := c.ChangeProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, 8,
		af.PropModeReplace, []byte("6175551212"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.GetProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != af.AtomSTRING || v.Format != 8 || string(v.Data) != "6175551212" {
		t.Errorf("GetProperty = %+v", v)
	}

	// The watcher gets a PropertyChange event.
	ev, err := watcher.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Code != af.EventPropertyChange || af.Atom(ev.Value) != af.AtomLastNumberDialed {
		t.Errorf("event = %+v", ev)
	}

	// Append mode.
	c.ChangeProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, 8, af.PropModeAppend, []byte("#9"))
	v, _ = c.GetProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, false)
	if string(v.Data) != "6175551212#9" {
		t.Errorf("append = %q", v.Data)
	}
	// Prepend mode.
	c.ChangeProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, 8, af.PropModePrepend, []byte("1-"))
	v, _ = c.GetProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, false)
	if string(v.Data) != "1-6175551212#9" {
		t.Errorf("prepend = %q", v.Data)
	}

	// Type mismatch: data withheld, actual type reported.
	v, _ = c.GetProperty(0, af.AtomLastNumberDialed, af.AtomINTEGER, false)
	if v.Type != af.AtomSTRING || v.Data != nil {
		t.Errorf("mismatch get = %+v", v)
	}

	// ListProperties.
	atoms, err := c.ListProperties(0)
	if err != nil || len(atoms) != 1 || atoms[0] != af.AtomLastNumberDialed {
		t.Errorf("ListProperties = %v, %v", atoms, err)
	}

	// Get with delete.
	v, _ = c.GetProperty(0, af.AtomLastNumberDialed, af.AtomNone, true)
	if string(v.Data) != "1-6175551212#9" {
		t.Errorf("get-delete = %q", v.Data)
	}
	v, _ = c.GetProperty(0, af.AtomLastNumberDialed, af.AtomNone, false)
	if v.Type != af.AtomNone {
		t.Errorf("deleted property still there: %+v", v)
	}

	// DeleteProperty on a property set again.
	c.ChangeProperty(0, af.AtomLastNumberDialed, af.AtomSTRING, 8, af.PropModeReplace, []byte("x"))
	c.DeleteProperty(0, af.AtomLastNumberDialed)
	c.Sync()
	if atoms, _ := c.ListProperties(0); len(atoms) != 0 {
		t.Errorf("property survived delete: %v", atoms)
	}
}

func TestGainControls(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	if err := c.SetOutputGain(1, -12); err != nil {
		t.Fatal(err)
	}
	cur, minG, maxG, err := c.QueryOutputGain(1)
	if err != nil || cur != -12 || minG != -30 || maxG != 30 {
		t.Fatalf("QueryOutputGain = %d %d %d %v", cur, minG, maxG, err)
	}
	c.SetInputGain(1, 6)
	cur, _, _, _ = c.QueryInputGain(1)
	if cur != 6 {
		t.Errorf("input gain = %d, want 6", cur)
	}
	// Out-of-range gain produces an async error.
	var got atomic.Value
	c.SetErrorHandler(func(_ *af.Conn, pe *af.ProtoError) { got.Store(pe) })
	c.SetOutputGain(1, 99)
	c.Sync()
	if pe, _ := got.Load().(*af.ProtoError); pe == nil || pe.Code != 2 /* ErrValue */ {
		t.Errorf("async error = %v", got.Load())
	}
}

func TestAccessControl(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	enabled, hosts, err := c.ListHosts()
	if err != nil {
		t.Fatal(err)
	}
	if enabled {
		t.Error("access control enabled by default")
	}
	if len(hosts) != 2 {
		t.Errorf("default host list = %v", hosts)
	}
	if err := c.AddHost(af.HostEntry{Family: af.FamilyInternet, Addr: []byte{10, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	c.SetAccessControl(true)
	enabled, hosts, _ = c.ListHosts()
	if !enabled || len(hosts) != 3 {
		t.Errorf("after add: enabled=%v hosts=%v", enabled, hosts)
	}
	c.RemoveHost(af.HostEntry{Family: af.FamilyInternet, Addr: []byte{10, 1, 2, 3}})
	_, hosts, _ = c.ListHosts()
	if len(hosts) != 2 {
		t.Errorf("after remove: %v", hosts)
	}
	c.SetAccessControl(false)
	c.Sync()
}

func TestAccessControlRefusesTCP(t *testing.T) {
	r := newRig(t)
	l, err := r.srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcpAddr := l.Addr().String()

	// Reachable before lockdown.
	nc, err := net.Dial("tcp", tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := af.NewConn(nc)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Remove the loopback entries and enable access control.
	_, hosts, _ := c1.ListHosts()
	for _, h := range hosts {
		c1.RemoveHost(h)
	}
	c1.SetAccessControl(true)
	c1.Sync()

	nc2, err := net.Dial("tcp", tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.NewConn(nc2); err == nil {
		t.Error("connection allowed despite empty access list")
	}

	// Unix connections are always allowed.
	c3 := r.dial(t)
	if _, err := c3.GetTime(1); err != nil {
		t.Errorf("unix connection rejected: %v", err)
	}
}

func TestHousekeepingRequests(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	if err := c.NoOp(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	present, err := c.QueryExtension("TELEPHONE-2")
	if err != nil || present {
		t.Errorf("QueryExtension = %v, %v", present, err)
	}
	exts, err := c.ListExtensions()
	if err != nil || len(exts) != 0 {
		t.Errorf("ListExtensions = %v, %v", exts, err)
	}
	// Synchronous mode round-trips every request.
	c.Synchronize(true)
	if err := c.NoOp(); err != nil {
		t.Fatal(err)
	}
	c.Synchronize(false)
}

func TestFreeACAndUseAfterFree(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	ac, _ := c.CreateAC(1, 0, af.ACAttributes{})
	if err := ac.Free(); err != nil {
		t.Fatal(err)
	}
	// Playing on a freed AC produces a BadAC protocol error.
	_, err := ac.PlaySamples(0, muTone(1))
	if pe, ok := err.(*af.ProtoError); !ok || pe.Code != 4 /* ErrAC */ {
		t.Errorf("play on freed AC: %v", err)
	}
}

func TestPassThrough(t *testing.T) {
	// Audio arriving on the phone line is patched through to the local
	// codec device (and audible on its sink).
	sink := &vdev.CaptureSink{}
	phoneClk := vdev.NewManualClock(8000)
	codecClk := vdev.NewManualClock(8000)
	srv, err := aserver.New(aserver.Options{
		Logf: t.Logf,
		Devices: []aserver.DeviceSpec{
			{Kind: "phone", Name: "phone0", Clock: phoneClk},
			{Kind: "codec", Name: "codec0", Clock: codecClk, Sink: sink},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cc := srv.DialPipe()
	c, err := af.NewConn(cc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.HookSwitch(0, true) // answer so the line audio is audible
	if err := c.EnablePassThrough(0, 1); err != nil {
		t.Fatal(err)
	}
	c.Sync()

	tone := make([]byte, 1600)
	for i := range tone {
		tone[i] = sampleconv.EncodeMuLaw(int16(6000))
	}
	srv.PhoneLine(0).RemoteAudio(tone)
	for i := 0; i < 10; i++ {
		phoneClk.Advance(400)
		codecClk.Advance(400)
		srv.Sync()
	}
	got, _ := sink.Bytes()
	var hot int
	for _, b := range got {
		if v := sampleconv.DecodeMuLaw(b); v > 4000 {
			hot++
		}
	}
	if hot < 1000 {
		t.Errorf("pass-through delivered %d hot samples of %d, want >= 1000", hot, len(got))
	}

	// Mismatched devices are rejected.
	var asyncErr atomic.Value
	c.SetErrorHandler(func(_ *af.Conn, pe *af.ProtoError) { asyncErr.Store(pe) })
	c.EnablePassThrough(0, 0)
	c.Sync()
	if pe, _ := asyncErr.Load().(*af.ProtoError); pe == nil || pe.Code != 8 {
		t.Errorf("self pass-through error = %v", asyncErr.Load())
	}
}

func TestMonoViewsOverProtocol(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	acL, err := c.CreateAC(3, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	acS, _ := c.CreateAC(2, 0, af.ACAttributes{})
	primeRecording(t, acS)
	now, _ := acL.GetTime()
	start := now.Add(1000)
	// Mono lin16 frames for the left channel.
	data := make([]byte, 8)
	for i := 0; i < 4; i++ {
		data[2*i] = 0x39
		data[2*i+1] = 0x05 // 0x0539 = 1337
	}
	if _, err := acL.PlaySamples(start, data); err != nil {
		t.Fatal(err)
	}
	r.step(3000)
	// Record from the stereo device: left carries the tone, right silence.
	buf := make([]byte, 16)
	_, n, err := acS.RecordSamples(start, buf, true)
	if err != nil || n != 16 {
		t.Fatal(err, n)
	}
	for i := 0; i < 4; i++ {
		l := int16(uint16(buf[4*i]) | uint16(buf[4*i+1])<<8)
		rv := int16(uint16(buf[4*i+2]) | uint16(buf[4*i+3])<<8)
		if l != 1337 || rv != 0 {
			t.Errorf("frame %d = (%d, %d), want (1337, 0)", i, l, rv)
		}
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	r := newRig(t)
	const N = 8
	errCh := make(chan error, N)
	for i := 0; i < N; i++ {
		go func(i int) {
			nc, err := net.Dial("unix", r.addr)
			if err != nil {
				errCh <- err
				return
			}
			c, err := af.NewConn(nc)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			ac, err := c.CreateAC(1, 0, af.ACAttributes{})
			if err != nil {
				errCh <- err
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := c.GetTime(1); err != nil {
					errCh <- err
					return
				}
				now, _ := ac.GetTime()
				if _, err := ac.PlaySamples(now.Add(100+i), muTone(100, 200, 300)); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(i)
	}
	go func() {
		for i := 0; i < 40; i++ {
			r.step(100)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < N; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
