package af

import (
	"testing"
	"testing/quick"
)

func TestResolveName(t *testing.T) {
	cases := []struct {
		in      string
		network string
		addr    string
		wantErr bool
	}{
		{":0", "unix", "/tmp/.AFunix/AF0", false},
		{":3", "unix", "/tmp/.AFunix/AF3", false},
		{"unix:7", "unix", "/tmp/.AFunix/AF7", false},
		{"unix:/var/run/af.sock", "unix", "/var/run/af.sock", false},
		{"tcp:somehost:9999", "tcp", "somehost:9999", false},
		{"myhost:0", "tcp", "myhost:7000", false},
		{"myhost:2", "tcp", "myhost:7002", false},
		{"a.b.example:1", "tcp", "a.b.example:7001", false},
		{"nonsense", "", "", true},
		{"host:xyz", "", "", true},
	}
	for _, c := range cases {
		network, addr, err := resolveName(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("resolveName(%q) did not fail (got %s %s)", c.in, network, addr)
			}
			continue
		}
		if err != nil {
			t.Errorf("resolveName(%q): %v", c.in, err)
			continue
		}
		if network != c.network || addr != c.addr {
			t.Errorf("resolveName(%q) = %s %s, want %s %s", c.in, network, addr, c.network, c.addr)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	var a ATime = 100
	b := a.Add(50)
	if !TimeAfter(b, a) || TimeBefore(b, a) {
		t.Error("ordering wrong")
	}
	if TimeSub(b, a) != 50 {
		t.Errorf("TimeSub = %d", TimeSub(b, a))
	}
	// Wrap-around.
	big := ATime(0xFFFFFFF0)
	after := big.Add(32)
	if !TimeAfter(after, big) {
		t.Error("ordering across wrap wrong")
	}
	if after.Add(-32) != big {
		t.Error("negative Add wrong")
	}
}

func TestQuickTimeAddSub(t *testing.T) {
	f := func(a uint32, n int32) bool {
		return TimeSub(ATime(a).Add(int(n)), ATime(a)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodingMeta(t *testing.T) {
	if MU255.String() != "MU255" || ADPCM4.String() != "ADPCM4" {
		t.Error("encoding names wrong")
	}
	if Encoding(77).String() == "" {
		t.Error("unknown encoding has empty name")
	}
	if LIN16.BytesPerUnit() != 2 || LIN32.BytesPerUnit() != 4 || MU255.BytesPerUnit() != 1 {
		t.Error("BytesPerUnit wrong")
	}
}

func TestDeviceIsPhone(t *testing.T) {
	d := Device{}
	if d.IsPhone() {
		t.Error("empty device is phone")
	}
	d.InputsFromPhone = 1
	if !d.IsPhone() {
		t.Error("phone-input device not phone")
	}
}

func TestGetErrorText(t *testing.T) {
	if GetErrorText(3) == "" || GetErrorText(200) == "" {
		t.Error("empty error text")
	}
	pe := &ProtoError{Code: 3, MajorOp: 7, BadValue: 42}
	if pe.Error() == "" {
		t.Error("empty ProtoError message")
	}
	pe = &ProtoError{Code: 111, MajorOp: 222}
	if pe.Error() == "" {
		t.Error("unknown codes produced empty message")
	}
}
