// Package af is the AudioFile client library: the Go counterpart of the
// paper's AFlib (Tables 3 and 4). It is the sole interface to the
// AudioFile protocol: connection management, audio contexts, timed play
// and record, the event queue, device and telephone control, access
// control, and atoms and properties.
//
// The library mirrors the C API's structure while following Go
// conventions: AFOpenAudioConn is Open, AFPlaySamples is AC.PlaySamples,
// and so on. Requests that need no reply are buffered and sent lazily;
// synchronous requests flush the queue and wait. Play and record requests
// longer than 8 KiB are broken into chunks so no single request occupies
// the server for long, with the play time reply suppressed on all but the
// final chunk.
//
// A Conn serializes all operations with an internal lock; like Xlib, the
// library is designed for the single-threaded client model, but concurrent
// use is safe (operations simply serialize).
package af

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"

	"audiofile/internal/proto"
)

// ATime is an audio device time in sample ticks: a 32-bit counter that
// increments once per sample period and wraps. See TimeAfter/TimeBefore
// for ordering and Add for arithmetic.
type ATime uint32

// TimeAfter reports whether b is later than a in wrapped device time.
func TimeAfter(b, a ATime) bool { return int32(b-a) > 0 }

// TimeBefore reports whether b is earlier than a in wrapped device time.
func TimeBefore(b, a ATime) bool { return int32(b-a) < 0 }

// TimeSub returns the signed tick distance b-a.
func TimeSub(b, a ATime) int32 { return int32(b - a) }

// Add returns t advanced by n ticks (n may be negative).
func (t ATime) Add(n int) ATime { return t + ATime(int32(n)) }

// Encoding identifies a sample data type, matching the server's device
// and audio-context sample types.
type Encoding uint8

// Sample encodings (Table 2's SAMPLE_* atoms).
const (
	MU255  Encoding = 0 // 8-bit µ-law
	ALAW   Encoding = 1 // 8-bit A-law
	LIN16  Encoding = 2 // 16-bit linear
	LIN32  Encoding = 3 // 32-bit linear
	ADPCM4 Encoding = 4 // 4-bit ADPCM (compressed; two samples per byte)
)

// String returns the encoding's name.
func (e Encoding) String() string {
	switch e {
	case MU255:
		return "MU255"
	case ALAW:
		return "ALAW"
	case LIN16:
		return "LIN16"
	case LIN32:
		return "LIN32"
	case ADPCM4:
		return "ADPCM4"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// BytesPerUnit returns the bytes occupied by one sample.
func (e Encoding) BytesPerUnit() int {
	switch e {
	case LIN16:
		return 2
	case LIN32:
		return 4
	default:
		return 1
	}
}

// ProtoError is a protocol error returned by the server.
type ProtoError struct {
	Code     uint8  // proto error code
	Seq      uint16 // sequence number of the failing request
	BadValue uint32
	MajorOp  uint8
}

// Error implements the error interface (AFGetErrorText).
func (e *ProtoError) Error() string {
	name := proto.ErrorName[e.Code]
	if name == "" {
		name = fmt.Sprintf("error code %d", e.Code)
	}
	op := proto.RequestName[e.MajorOp]
	if op == "" {
		op = fmt.Sprintf("opcode %d", e.MajorOp)
	}
	return fmt.Sprintf("af: %s (request %s, value %#x)", name, op, e.BadValue)
}

// GetErrorText translates a protocol error code into a string.
func GetErrorText(code uint8) string {
	if s, ok := proto.ErrorName[code]; ok {
		return s
	}
	return fmt.Sprintf("unknown error code %d", code)
}

// Device describes one server audio device (§5.4's attributes).
type Device struct {
	Index           int
	Type            uint8 // DevCodec, DevHiFi, DevMono, DevPhone
	Name            string
	PlaySampleFreq  int
	PlayBufType     Encoding
	PlayNchannels   int
	PlayNSamplesBuf int // server play buffer size in samples
	RecSampleFreq   int
	RecBufType      Encoding
	RecNchannels    int
	RecNSamplesBuf  int
	NumberOfInputs  int
	NumberOfOutputs int
	InputsFromPhone uint32
	OutputsToPhone  uint32
}

// Device types.
const (
	DevCodec = proto.DevCodec
	DevHiFi  = proto.DevHiFi
	DevMono  = proto.DevMono
	DevPhone = proto.DevPhone
)

// IsPhone reports whether any of the device's inputs or outputs connect
// to a telephone line.
func (d *Device) IsPhone() bool {
	return d.InputsFromPhone != 0 || d.OutputsToPhone != 0
}

// Event is a protocol event delivered to the client (§5.2). All device
// events carry both the audio device time and the server host's clock
// time.
type Event struct {
	Code     uint8 // EventPhoneRing .. EventPropertyChange
	Detail   uint8 // DTMF digit, hook/ring/loop state
	Device   int
	Time     ATime
	HostSec  uint32
	HostNsec uint32
	Value    uint32 // changed property atom for PropertyChange
}

// Event codes.
const (
	EventPhoneRing       = proto.EventPhoneRing
	EventPhoneDTMF       = proto.EventPhoneDTMF
	EventPhoneLoop       = proto.EventPhoneLoop
	EventPhoneHookSwitch = proto.EventPhoneHookSwitch
	EventPropertyChange  = proto.EventPropertyChange
)

// Event selection masks for SelectEvents.
const (
	MaskPhoneRing       = proto.MaskPhoneRing
	MaskPhoneDTMF       = proto.MaskPhoneDTMF
	MaskPhoneLoop       = proto.MaskPhoneLoop
	MaskPhoneHookSwitch = proto.MaskPhoneHookSwitch
	MaskPropertyChange  = proto.MaskPropertyChange
	MaskAllEvents       = proto.MaskAllEvents
)

// Conn is a connection to an AudioFile server: the AFAudioConn.
type Conn struct {
	mu sync.Mutex

	conn  net.Conn
	br    *bufio.Reader
	order binary.ByteOrder
	name  string

	// network/addr is the redial target captured by Open; empty for
	// connections made over a caller-supplied transport (NewConn).
	network, addr string

	// route is the routing key sent in the setup request's auth fields
	// (proto.RouteAuthName) when the server is a fleet router; it is
	// replayed on every reconnect so a redirected session is re-placed
	// by the same directory lookup. Empty for direct connections.
	route string

	// rmsg is the reusable incoming-message buffer: the reply stream is
	// read into it without allocating. Its contents (including any Extra
	// bytes) are only valid until the next read, so anything handed to
	// the application is copied out first.
	rmsg proto.Message

	w       proto.Writer // outgoing request buffer
	sentSeq uint16       // sequence number of the last request buffered

	// pvec and hdrEnds are the reusable scatter-gather state for large
	// play requests (AC.playVectored): the iovec list handed to the
	// kernel, and the end offsets of the chunk headers inside w.Buf.
	// wvec is the net.Buffers view consumed by WriteTo; it lives on the
	// Conn so taking its address does not allocate per write.
	pvec    [][]byte
	hdrEnds []int
	wvec    net.Buffers

	events []*Event

	vendor  string
	devices []Device

	nextACID uint32
	// acs tracks the live audio contexts by id, so a reconnect can
	// recreate them (ids are client-allocated; attributes are mirrored).
	acs map[uint32]*AC
	// subs routes pushed broadcast chunks by channel id (device index);
	// see subscribe.go.
	subs map[uint32]*Subscription

	synchronous bool
	afterFunc   func(*Conn)

	errHandler   func(*Conn, *ProtoError)
	ioErrHandler func(*Conn, error)

	// reconnect enables transparent reconnection (see SetReconnect);
	// closeNotice records a connection-scoped typed error the server sent
	// before closing (Overload eviction, Drain shutdown), so the
	// transport failure that follows is surfaced as a ServerClosedError.
	reconnect   *ReconnectOptions
	closeNotice uint8

	ioErr  error
	closed bool
}

// BasePort is the TCP port of server number 0; server :n listens on
// BasePort+n, as the X convention uses 6000+n.
const BasePort = 7000

// unixDirFor returns the Unix socket rendezvous directory.
func unixSocketPath(display int) string {
	return fmt.Sprintf("/tmp/.AFunix/AF%d", display)
}

// Open connects to an AudioFile server: the AFOpenAudioConn call. The
// server is chosen by name, or the AUDIOFILE environment variable, or the
// DISPLAY variable as a convenient fallback (the user's workstation
// usually has both audio and graphics).
//
// Name forms: "host:n" connects via TCP to port BasePort+n; ":n" or
// "unix:n" via the local socket /tmp/.AFunix/AFn; "tcp:host:port" and
// "unix:/path" name transports explicitly. A "#key" suffix on any form
// sets a routing key for a fleet router (see OpenRoute): "router:0#studio"
// asks the router at router:0 to place the session by the key "studio".
func Open(name string) (*Conn, error) {
	if name == "" {
		name = os.Getenv("AUDIOFILE")
	}
	if name == "" {
		name = os.Getenv("DISPLAY")
	}
	if name == "" {
		return nil, fmt.Errorf("af: no server name and no AUDIOFILE or DISPLAY environment variable")
	}
	display := name
	route := ""
	if i := strings.LastIndexByte(name, '#'); i >= 0 {
		name, route = name[:i], name[i+1:]
	}
	network, addr, err := resolveName(name)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("af: can't open connection to %s: %w", name, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Interactive request/reply traffic: never let Nagle hold a small
		// request behind an unacknowledged flush.
		tc.SetNoDelay(true) //nolint:errcheck
	}
	c, err := NewConnRoute(conn, false, route)
	if err != nil {
		return nil, err
	}
	c.name = display
	c.network, c.addr = network, addr
	return c, nil
}

// OpenRoute is Open with an explicit routing key, equivalent to a "#key"
// suffix on the server name. The key travels in the setup request's auth
// fields; a fleet router (cmd/arouter) hashes it onto its backend
// directory to choose the afd that serves the session, and a direct afd
// ignores it.
func OpenRoute(name, route string) (*Conn, error) {
	if route == "" {
		return Open(name)
	}
	return Open(name + "#" + route)
}

// resolveName parses a server name into a dialable address.
func resolveName(name string) (network, addr string, err error) {
	var host string
	var disp int
	switch {
	case len(name) > 5 && name[:5] == "unix:" && name[5] == '/':
		return "unix", name[5:], nil
	case len(name) > 4 && name[:4] == "tcp:":
		return "tcp", name[4:], nil
	}
	if n, _ := fmt.Sscanf(name, ":%d", &disp); n == 1 {
		return "unix", unixSocketPath(disp), nil
	}
	if n, _ := fmt.Sscanf(name, "unix:%d", &disp); n == 1 {
		return "unix", unixSocketPath(disp), nil
	}
	if n, _ := fmt.Sscanf(name, "%s", &host); n == 1 {
		// host:n
		for i := len(name) - 1; i >= 0; i-- {
			if name[i] == ':' {
				host = name[:i]
				if _, err := fmt.Sscanf(name[i+1:], "%d", &disp); err != nil {
					return "", "", fmt.Errorf("af: bad display number in %q", name)
				}
				return "tcp", fmt.Sprintf("%s:%d", host, BasePort+disp), nil
			}
		}
	}
	return "", "", fmt.Errorf("af: can't parse server name %q", name)
}

// NewConn performs the AudioFile handshake over an existing transport
// connection (useful for in-process pipes and custom transports).
func NewConn(conn net.Conn) (*Conn, error) {
	return NewConnOrder(conn, false)
}

// NewConnOrder is NewConn with an explicit wire byte order; bigEndian
// exercises the server's byte-swapping path, as a client on an
// opposite-order machine would.
func NewConnOrder(conn net.Conn, bigEndian bool) (*Conn, error) {
	return NewConnRoute(conn, bigEndian, "")
}

// routedSetup builds the setup request for a handshake, carrying the
// routing key in the auth fields when one is set (proto.RouteAuthName).
func routedSetup(byteOrder byte, route string) proto.SetupRequest {
	s := proto.SetupRequest{
		ByteOrder: byteOrder,
		Major:     proto.ProtocolMajor,
		Minor:     proto.ProtocolMinor,
	}
	if route != "" {
		s.AuthName = proto.RouteAuthName
		s.AuthData = []byte(route)
	}
	return s
}

// NewConnRoute is NewConnOrder with a routing key for a fleet router;
// see OpenRoute. The key is replayed on reconnect, so failover keeps the
// session's directory placement.
func NewConnRoute(conn net.Conn, bigEndian bool, route string) (*Conn, error) {
	ob := byte(proto.LittleEndianOrder)
	var order binary.ByteOrder = binary.LittleEndian
	if bigEndian {
		ob = proto.BigEndianOrder
		order = binary.BigEndian
	}
	setup := routedSetup(ob, route)
	if err := setup.Send(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("af: setup: %w", err)
	}
	rep, err := proto.ReadSetupReply(conn, order)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("af: setup reply: %w", err)
	}
	if !rep.Success {
		conn.Close()
		return nil, fmt.Errorf("af: connection refused: %s", rep.Reason)
	}
	c := &Conn{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 64<<10),
		order:    order,
		name:     conn.RemoteAddr().String(),
		route:    route,
		w:        proto.Writer{Order: order},
		vendor:   rep.Vendor,
		nextACID: 1,
		acs:      make(map[uint32]*AC),
		subs:     make(map[uint32]*Subscription),
	}
	for _, d := range rep.Devices {
		c.devices = append(c.devices, Device{
			Index:           int(d.Index),
			Type:            d.Type,
			Name:            d.Name,
			PlaySampleFreq:  int(d.PlaySampleFreq),
			PlayBufType:     Encoding(d.PlayBufType),
			PlayNchannels:   int(d.PlayNchannels),
			PlayNSamplesBuf: int(d.PlayNSamplesBuf),
			RecSampleFreq:   int(d.RecSampleFreq),
			RecBufType:      Encoding(d.RecBufType),
			RecNchannels:    int(d.RecNchannels),
			RecNSamplesBuf:  int(d.RecNSamplesBuf),
			NumberOfInputs:  int(d.NumberOfInputs),
			NumberOfOutputs: int(d.NumberOfOutputs),
			InputsFromPhone: d.InputsFromPhone,
			OutputsToPhone:  d.OutputsToPhone,
		})
	}
	return c, nil
}

// Close flushes pending requests and closes the connection
// (AFCloseAudioConn).
func (c *Conn) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.flushLocked() //nolint:errcheck
	c.closed = true
	c.conn.Close()
}

// Name returns the server name used to open the connection
// (AFAudioConnName).
func (c *Conn) Name() string { return c.name }

// Vendor returns the server's identification string.
func (c *Conn) Vendor() string { return c.vendor }

// Devices returns the audio devices the server exported at setup.
func (c *Conn) Devices() []Device { return c.devices }

// FindDefaultDevice returns the index of the lowest-numbered device not
// connected to the telephone — usually the local loudspeaker — or -1.
func (c *Conn) FindDefaultDevice() int {
	for _, d := range c.devices {
		if !d.IsPhone() {
			return d.Index
		}
	}
	return -1
}

// FindPhoneDevice returns the index of the first telephone device, or -1.
func (c *Conn) FindPhoneDevice() int {
	for _, d := range c.devices {
		if d.IsPhone() {
			return d.Index
		}
	}
	return -1
}

// SetErrorHandler installs a handler for protocol errors that arrive
// asynchronously (for requests with no reply). The default logs to
// standard error.
func (c *Conn) SetErrorHandler(h func(*Conn, *ProtoError)) {
	c.mu.Lock()
	c.errHandler = h
	c.mu.Unlock()
}

// SetIOErrorHandler installs a handler for fatal transport errors. The
// default prints and exits, as the C library does.
func (c *Conn) SetIOErrorHandler(h func(*Conn, error)) {
	c.mu.Lock()
	c.ioErrHandler = h
	c.mu.Unlock()
}

// Synchronize enables or disables synchronous mode: with it on, every
// request round-trips immediately (useful when debugging).
func (c *Conn) Synchronize(on bool) {
	c.mu.Lock()
	c.synchronous = on
	c.mu.Unlock()
}

// SetAfterFunction installs a hook run after every buffered request, the
// AFSetAfterFunction mechanism. The hook runs with the connection lock
// held.
func (c *Conn) SetAfterFunction(fn func(*Conn)) {
	c.mu.Lock()
	c.afterFunc = fn
	c.mu.Unlock()
}
