package af_test

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"audiofile/af"
)

// TestServerSurvivesGarbage: random bytes after a valid setup must not
// crash or wedge the server; well-behaved clients keep working.
func TestServerSurvivesGarbage(t *testing.T) {
	r := newRig(t)
	good := r.dial(t)

	for seed := 0; seed < 5; seed++ {
		nc, err := net.Dial("unix", r.addr)
		if err != nil {
			t.Fatal(err)
		}
		// Valid setup first so the garbage lands on the dispatcher.
		setup := []byte{'l', 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		if _, err := nc.Write(setup); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		junk := make([]byte, 512)
		rng.Read(junk)
		nc.Write(junk) //nolint:errcheck
		nc.Close()
	}

	// Also garbage at the handshake itself.
	nc, err := net.Dial("unix", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("GET / HTTP/1.1\r\n\r\n")) //nolint:errcheck
	nc.Close()

	// The well-behaved client is unaffected.
	if _, err := good.GetTime(1); err != nil {
		t.Fatalf("good client broken after garbage: %v", err)
	}
}

// TestServerSurvivesTruncatedRequest: a request header promising more
// body than ever arrives just hangs that one connection until it closes.
func TestServerSurvivesTruncatedRequest(t *testing.T) {
	r := newRig(t)
	nc, err := net.Dial("unix", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	setup := []byte{'l', 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	nc.Write(setup) //nolint:errcheck
	// Drain the setup reply.
	hdr := make([]byte, 8)
	readFullDeadline(t, nc, hdr)
	extra := make([]byte, int(binary.LittleEndian.Uint16(hdr[6:]))*4)
	readFullDeadline(t, nc, extra)
	// Header says 1000 words; send only the header.
	req := []byte{7 /*GetTime*/, 0, 0xE8, 0x03}
	nc.Write(req) //nolint:errcheck
	time.Sleep(50 * time.Millisecond)
	nc.Close()

	good := r.dial(t)
	if _, err := good.GetTime(1); err != nil {
		t.Fatalf("server wedged by truncated request: %v", err)
	}
}

func readFullDeadline(t *testing.T, nc net.Conn, buf []byte) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	total := 0
	for total < len(buf) {
		n, err := nc.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	nc.SetReadDeadline(time.Time{}) //nolint:errcheck
}

// TestAbruptDisconnectsUnderLoad: clients that vanish mid-conversation
// (including with a blocking record parked) release their resources.
func TestAbruptDisconnectsUnderLoad(t *testing.T) {
	r := newRig(t)
	r.step(200)
	for i := 0; i < 10; i++ {
		nc, err := net.Dial("unix", r.addr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := af.NewConn(nc)
		if err != nil {
			t.Fatal(err)
		}
		c.SetIOErrorHandler(func(*af.Conn, error) {}) // the kill is deliberate
		ac, err := c.CreateAC(1, 0, af.ACAttributes{})
		if err != nil {
			t.Fatal(err)
		}
		now, _ := ac.GetTime()
		// Park a blocking record in the far future, then slam the door.
		go ac.RecordSamples(now.Add(8000), make([]byte, 100), true) //nolint:errcheck
		time.Sleep(10 * time.Millisecond)
		nc.Close()
	}
	time.Sleep(50 * time.Millisecond)
	// The device's record reference count must have been released: a
	// fresh client sees a healthy server.
	good := r.dial(t)
	ac, _ := good.CreateAC(1, 0, af.ACAttributes{})
	if _, err := ac.GetTime(); err != nil {
		t.Fatal(err)
	}
	r.srv.Do(func() {
		root := r.srv.Device(1)
		if root.RecRefCount != 0 {
			t.Errorf("RecRefCount leaked: %d", root.RecRefCount)
		}
	})
}

// TestSlowReaderDisconnected: a client that never reads while the server
// has a queue of messages for it gets dropped instead of blocking the
// single-threaded loop.
func TestSlowReaderDisconnected(t *testing.T) {
	r := newRig(t)
	nc, err := net.Dial("unix", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := af.NewConn(nc)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := c.CreateAC(1, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	_ = ac
	// Flood the server with non-suppressed play requests whose replies we
	// never read. Eventually the outgoing queue overflows and the server
	// cuts the connection; the writes then fail. Either way the loop stays
	// healthy.
	dead := false
	for i := 0; i < 100000 && !dead; i++ {
		raw := make([]byte, 16)
		raw[0] = 7 // GetTime
		binary.LittleEndian.PutUint16(raw[2:], 2)
		binary.LittleEndian.PutUint32(raw[4:], 1)
		nc.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		if _, err := nc.Write(raw[:8]); err != nil {
			dead = true
		}
	}
	nc.Close()
	good := r.dial(t)
	if _, err := good.GetTime(1); err != nil {
		t.Fatalf("server wedged by slow reader: %v", err)
	}
}
