package af_test

import (
	"testing"
	"time"

	"audiofile/af"
)

// ringTwiceAndDTMF injects a small scripted event sequence on the phone
// line: ring, ring, digit '5'.
func ringTwiceAndDTMF(r *rig) {
	line := r.srv.PhoneLine(0)
	line.RingPulse()
	line.RingPulse()
	line.RemoteDigits("5")
	r.srv.Sync()
}

func selectPhone(t *testing.T, c *af.Conn) {
	t.Helper()
	if err := c.SelectEvents(0, af.MaskAllEvents); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsQueuedModes(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	selectPhone(t, c)
	// Nothing yet.
	if n, _ := c.EventsQueued(af.QueuedAlready); n != 0 {
		t.Fatalf("QueuedAlready = %d before events", n)
	}
	ringTwiceAndDTMF(r)
	// QueuedAlready still sees nothing (no reads happened).
	if n, _ := c.EventsQueued(af.QueuedAlready); n != 0 {
		t.Fatalf("QueuedAlready = %d, want 0 (no read yet)", n)
	}
	// QueuedAfterReading pulls what has arrived.
	deadline := time.Now().Add(2 * time.Second)
	n := 0
	for n < 3 && time.Now().Before(deadline) {
		var err error
		n, err = c.EventsQueued(af.QueuedAfterReading)
		if err != nil {
			t.Fatal(err)
		}
	}
	if n != 3 {
		t.Fatalf("QueuedAfterReading = %d, want 3", n)
	}
	// Now QueuedAlready agrees.
	if got, _ := c.EventsQueued(af.QueuedAlready); got != 3 {
		t.Fatalf("QueuedAlready after reading = %d", got)
	}
	// Pending (flush + read) also agrees.
	if got, _ := c.Pending(); got != 3 {
		t.Fatalf("Pending = %d", got)
	}
}

func TestIfEventBlocksUntilMatch(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	selectPhone(t, c)
	type result struct {
		ev  *af.Event
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		ev, err := c.IfEvent(func(ev *af.Event) bool {
			return ev.Code == af.EventPhoneDTMF
		})
		resCh <- result{ev, err}
	}()
	select {
	case <-resCh:
		t.Fatal("IfEvent returned before any event")
	case <-time.After(50 * time.Millisecond):
	}
	ringTwiceAndDTMF(r)
	select {
	case res := <-resCh:
		if res.err != nil || res.ev.Detail != '5' {
			t.Fatalf("IfEvent = %+v, %v", res.ev, res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("IfEvent never matched")
	}
	// The two ring events are still queued; the DTMF one was removed.
	n, _ := c.EventsQueued(af.QueuedAlready)
	if n != 2 {
		t.Fatalf("queue after IfEvent = %d, want 2", n)
	}
}

func TestCheckIfEventNonBlocking(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	selectPhone(t, c)
	// Nothing there: returns nil without blocking.
	start := time.Now()
	ev, err := c.CheckIfEvent(func(*af.Event) bool { return true })
	if err != nil || ev != nil {
		t.Fatalf("CheckIfEvent = %+v, %v", ev, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("CheckIfEvent blocked")
	}
	ringTwiceAndDTMF(r)
	// Poll until the events arrive.
	deadline := time.Now().Add(2 * time.Second)
	for ev == nil && time.Now().Before(deadline) {
		ev, err = c.CheckIfEvent(func(ev *af.Event) bool {
			return ev.Code == af.EventPhoneRing
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if ev == nil {
		t.Fatal("CheckIfEvent never found the ring")
	}
}

func TestPeekIfEventLeavesQueue(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	selectPhone(t, c)
	ringTwiceAndDTMF(r)
	ev, err := c.PeekIfEvent(func(ev *af.Event) bool {
		return ev.Code == af.EventPhoneDTMF
	})
	if err != nil || ev == nil || ev.Detail != '5' {
		t.Fatalf("PeekIfEvent = %+v, %v", ev, err)
	}
	// Still in the queue: NextEvent eventually delivers it.
	var got *af.Event
	for i := 0; i < 3; i++ {
		e, err := c.NextEvent()
		if err != nil {
			t.Fatal(err)
		}
		if e.Code == af.EventPhoneDTMF {
			got = e
		}
	}
	if got == nil {
		t.Fatal("peeked event vanished from the queue")
	}
}

func TestEventsCarryBothClocks(t *testing.T) {
	// §5.2: device events contain both the audio device time and the
	// server host's clock time.
	r := newRig(t)
	c := r.dial(t)
	selectPhone(t, c)
	r.step(4000) // advance device time before the event
	r.srv.PhoneLine(0).RingPulse()
	r.srv.Sync()
	ev, err := c.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Time < 4000 {
		t.Errorf("event device time = %d, want >= 4000", ev.Time)
	}
	if ev.HostSec == 0 {
		t.Error("event host clock missing")
	}
	// The host clock is near now.
	if d := time.Now().Unix() - int64(ev.HostSec); d < 0 || d > 60 {
		t.Errorf("host clock off by %d s", d)
	}
}

func TestFlashHook(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	selectPhone(t, c)
	if err := c.HookSwitch(0, true); err != nil {
		t.Fatal(err)
	}
	ev, _ := c.NextEvent()
	if ev.Code != af.EventPhoneHookSwitch || ev.Detail != 1 {
		t.Fatalf("expected off-hook event, got %+v", ev)
	}
	// Flash: a brief on-hook pulse, then back off hook.
	if err := c.FlashHook(0, 30); err != nil {
		t.Fatal(err)
	}
	ev, _ = c.NextEvent()
	if ev.Code != af.EventPhoneHookSwitch || ev.Detail != 0 {
		t.Fatalf("expected flash-down event, got %+v", ev)
	}
	ev, err := c.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Code != af.EventPhoneHookSwitch || ev.Detail != 1 {
		t.Fatalf("expected flash-up event, got %+v", ev)
	}
	offHook, _, _ := c.QueryPhone(0)
	if !offHook {
		t.Error("line not off hook after flash")
	}

	// Flashing an on-hook line is a BadMatch.
	c.HookSwitch(0, false)
	c.NextEvent() //nolint:errcheck — drain the hang-up event
	var got error
	c.SetErrorHandler(func(_ *af.Conn, pe *af.ProtoError) { got = pe })
	c.FlashHook(0, 30)
	c.Sync()
	if pe, ok := got.(*af.ProtoError); !ok || pe.Code != 8 {
		t.Errorf("flash on hook error = %v", got)
	}
}
