package af

import (
	"fmt"

	"audiofile/internal/proto"
)

// Device I/O control, gain control, telephony, and access control
// (Tables 3 and 4).

// asyncDeviceReq buffers a device-only request.
func (c *Conn) asyncDeviceReq(op uint8, device int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendDeviceReq(&c.w, op, uint32(device)); err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// asyncMaskReq buffers a device+mask request.
func (c *Conn) asyncMaskReq(op uint8, device int, mask uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendDeviceMaskReq(&c.w, op, proto.DeviceMaskReq{
		Device: uint32(device), Mask: mask,
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// EnableInput enables device inputs by mask (AFEnableInput).
func (c *Conn) EnableInput(device int, mask uint32) error {
	return c.asyncMaskReq(proto.OpEnableInput, device, mask)
}

// DisableInput disables device inputs by mask (AFDisableInput).
func (c *Conn) DisableInput(device int, mask uint32) error {
	return c.asyncMaskReq(proto.OpDisableInput, device, mask)
}

// EnableOutput enables device outputs by mask (AFEnableOutput).
func (c *Conn) EnableOutput(device int, mask uint32) error {
	return c.asyncMaskReq(proto.OpEnableOutput, device, mask)
}

// DisableOutput disables device outputs by mask (AFDisableOutput).
func (c *Conn) DisableOutput(device int, mask uint32) error {
	return c.asyncMaskReq(proto.OpDisableOutput, device, mask)
}

// SetInputGain sets a device's master input gain in dB (AFSetInputGain).
func (c *Conn) SetInputGain(device int, gainDB int) error {
	return c.setGain(proto.OpSetInputGain, device, gainDB)
}

// SetOutputGain sets a device's output gain — the volume control — in dB
// (AFSetOutputGain).
func (c *Conn) SetOutputGain(device int, gainDB int) error {
	return c.setGain(proto.OpSetOutputGain, device, gainDB)
}

func (c *Conn) setGain(op uint8, device, gainDB int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendGainReq(&c.w, op, proto.GainReq{
		Device: uint32(device), Gain: int32(gainDB),
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// QueryInputGain returns the current, minimum and maximum input gain of a
// device in dB (AFQueryInputGain).
func (c *Conn) QueryInputGain(device int) (cur, min, max int, err error) {
	return c.queryGain(proto.OpQueryInputGain, device)
}

// QueryOutputGain returns the current, minimum and maximum output gain of
// a device in dB (AFQueryOutputGain).
func (c *Conn) QueryOutputGain(device int) (cur, min, max int, err error) {
	return c.queryGain(proto.OpQueryOutputGain, device)
}

func (c *Conn) queryGain(op uint8, device int) (cur, min, max int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err = proto.AppendDeviceReq(&c.w, op, uint32(device)); err != nil {
		return
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return
	}
	r := proto.NewReader(c.order, rep.Extra)
	cur = int(int32(rep.Aux))
	min = int(r.I32())
	max = int(r.I32())
	return
}

// --- Telephony ---

// HookSwitch sets the hookswitch state of a telephone device
// (AFHookSwitch): offHook true answers or originates; false hangs up.
func (c *Conn) HookSwitch(device int, offHook bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	state := uint8(proto.HookOn)
	if offHook {
		state = proto.HookOff
	}
	err := proto.AppendHookSwitch(&c.w, proto.HookSwitchReq{
		Device: uint32(device), State: state,
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// FlashHook flashes the hookswitch for the given duration in milliseconds
// (AFFlashHook); 0 uses the server default.
func (c *Conn) FlashHook(device int, durationMs int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendFlashHook(&c.w, proto.FlashHookReq{
		Device: uint32(device), DurationMs: uint32(durationMs),
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// QueryPhone returns a telephone device's hookswitch and loop-current
// state (AFQueryPhone).
func (c *Conn) QueryPhone(device int) (offHook, loopCurrent bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err = proto.AppendDeviceReq(&c.w, proto.OpQueryPhone, uint32(device)); err != nil {
		return
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return
	}
	return rep.Data != 0, rep.Aux != 0, nil
}

// EnablePassThrough connects the inputs and outputs of two audio devices
// directly inside the server (AFEnablePassThrough) — the LoFi telephone/
// local-audio patch.
func (c *Conn) EnablePassThrough(device, other int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendEnablePassThrough(&c.w, proto.PassThroughReq{
		Device: uint32(device), Other: uint32(other),
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// DisablePassThrough removes a pass-through connection
// (AFDisablePassThrough).
func (c *Conn) DisablePassThrough(device int) error {
	return c.asyncDeviceReq(proto.OpDisablePassThrough, device)
}

// --- Access control ---

// HostEntry identifies one host in the server access list.
type HostEntry struct {
	Family uint16 // FamilyInternet, FamilyInternet6 or FamilyLocal
	Addr   []byte
}

// Host address families.
const (
	FamilyInternet  = proto.FamilyInternet
	FamilyInternet6 = proto.FamilyInternet6
	FamilyLocal     = proto.FamilyLocal
)

// SetAccessControl enables or disables host access control
// (AFSetAccessControl; AFEnableAccessControl / AFDisableAccessControl).
func (c *Conn) SetAccessControl(enable bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendSetAccessControl(&c.w, enable); err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// AddHost adds a host to the access list (AFAddHost).
func (c *Conn) AddHost(h HostEntry) error {
	return c.changeHost(proto.HostInsert, h)
}

// RemoveHost removes a host from the access list (AFRemoveHost).
func (c *Conn) RemoveHost(h HostEntry) error {
	return c.changeHost(proto.HostDelete, h)
}

// AddHosts adds several hosts to the access list (AFAddHosts).
func (c *Conn) AddHosts(hs []HostEntry) error {
	for _, h := range hs {
		if err := c.AddHost(h); err != nil {
			return err
		}
	}
	return nil
}

// RemoveHosts removes several hosts from the access list (AFRemoveHosts).
func (c *Conn) RemoveHosts(hs []HostEntry) error {
	for _, h := range hs {
		if err := c.RemoveHost(h); err != nil {
			return err
		}
	}
	return nil
}

func (c *Conn) changeHost(mode uint8, h HostEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendChangeHosts(&c.w, proto.ChangeHostsReq{
		Mode: mode,
		Host: proto.HostEntry{Family: h.Family, Addr: h.Addr},
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// ListHosts returns the access list and whether access control is
// currently enforced (AFListHosts).
func (c *Conn) ListHosts() (enabled bool, hosts []HostEntry, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err = proto.AppendEmptyReq(&c.w, proto.OpListHosts, 0); err != nil {
		return
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return
	}
	r := proto.NewReader(c.order, rep.Extra)
	wire := proto.DecodeHostList(r, int(rep.Aux))
	if r.Err != nil {
		return false, nil, fmt.Errorf("af: bad ListHosts reply: %w", r.Err)
	}
	for _, h := range wire {
		// h.Addr aliases the connection's reusable reply buffer; copy it
		// out for the caller.
		hosts = append(hosts, HostEntry{Family: h.Family, Addr: append([]byte(nil), h.Addr...)})
	}
	return rep.Data != 0, hosts, nil
}

// --- Extensions and housekeeping ---

// QueryExtension asks whether a named protocol extension is present
// (AFQueryExtension). No extensions are implemented today.
func (c *Conn) QueryExtension(name string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendQueryExtension(&c.w, proto.QueryExtensionReq{Name: name}); err != nil {
		return false, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return false, err
	}
	return rep.Data != 0, nil
}

// ListExtensions returns the names of present protocol extensions
// (AFListExtensions).
func (c *Conn) ListExtensions() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendEmptyReq(&c.w, proto.OpListExtensions, 0); err != nil {
		return nil, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, rep.Data)
	r := proto.NewReader(c.order, rep.Extra)
	for i := 0; i < int(rep.Data); i++ {
		n := int(r.U8())
		names = append(names, r.String4(n))
	}
	return names, nil
}
