package af_test

import (
	"math"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/internal/sampleconv"
)

// TestADPCMPlayPath: a client plays ADPCM-compressed audio through a
// context with Type ADPCM4; the server's conversion module decompresses
// it into the device buffers, so recording the same interval as µ-law
// recovers the tone.
func TestADPCMPlayPath(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	adpcm, err := c.CreateAC(1, af.ACEncoding, af.ACAttributes{Type: af.ADPCM4})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := c.CreateAC(1, 0, af.ACAttributes{})
	primeRecording(t, plain)

	// A 1 kHz tone, compressed client-side.
	n := 1600
	lin := make([]int16, n)
	for i := range lin {
		lin[i] = int16(8000 * math.Sin(2*math.Pi*1000*float64(i)/8000))
	}
	comp := afutil.CompressADPCM(lin)
	if len(comp) != n/2 {
		t.Fatalf("compressed %d bytes, want %d", len(comp), n/2)
	}

	now, _ := adpcm.GetTime()
	start := now.Add(200)
	if _, err := adpcm.PlaySamples(start, comp); err != nil {
		t.Fatal(err)
	}
	r.step(2400)

	buf := make([]byte, n)
	_, got, err := plain.RecordSamples(start, buf, true)
	if err != nil || got != n {
		t.Fatal(err, got)
	}
	// The decompressed tone should be close to the original (ADPCM keeps
	// tracking error small after its adaptation ramp).
	var energy, noise float64
	for i := 400; i < n; i++ {
		v := float64(sampleconv.DecodeMuLaw(buf[i]))
		energy += v * v
		d := v - float64(lin[i])
		noise += d * d
	}
	if energy < 1e6 {
		t.Fatal("ADPCM play produced silence")
	}
	snr := 10 * math.Log10(energy/noise)
	if snr < 10 {
		t.Errorf("ADPCM play SNR = %.1f dB, want > 10", snr)
	}
}

// TestADPCMRecordPath: recording through an ADPCM context returns
// compressed bytes (half a byte per sample) that expand to the signal the
// device captured.
func TestADPCMRecordPath(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	plain, _ := c.CreateAC(1, 0, af.ACAttributes{})
	primeRecording(t, plain)

	// Put a known tone on the loopback via a plain µ-law play.
	n := 1600
	tone := make([]byte, n)
	for i := range tone {
		tone[i] = sampleconv.EncodeMuLaw(int16(6000 * math.Sin(2*math.Pi*500*float64(i)/8000)))
	}
	now, _ := plain.GetTime()
	start := now.Add(200)
	if _, err := plain.PlaySamples(start, tone); err != nil {
		t.Fatal(err)
	}
	r.step(2400)

	adpcm, err := c.CreateAC(1, af.ACEncoding, af.ACAttributes{Type: af.ADPCM4})
	if err != nil {
		t.Fatal(err)
	}
	comp := make([]byte, n/2) // n frames of ADPCM
	_, got, err := adpcm.RecordSamples(start, comp, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != n/2 {
		t.Fatalf("recorded %d compressed bytes, want %d", got, n/2)
	}
	lin := afutil.ExpandADPCM(comp)
	var energy, noise float64
	for i := 400; i < n; i++ {
		want := float64(sampleconv.DecodeMuLaw(tone[i]))
		gotV := float64(lin[i])
		energy += want * want
		d := gotV - want
		noise += d * d
	}
	snr := 10 * math.Log10(energy/noise)
	if snr < 10 {
		t.Errorf("ADPCM record SNR = %.1f dB, want > 10", snr)
	}
}

// TestADPCMBlockingRecord: the compressed path honors blocking semantics.
func TestADPCMBlockingRecord(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	adpcm, err := c.CreateAC(1, af.ACEncoding, af.ACAttributes{Type: af.ADPCM4})
	if err != nil {
		t.Fatal(err)
	}
	r.step(200)
	now, _ := adpcm.GetTime()
	doneCh := make(chan int, 1)
	go func() {
		_, got, _ := adpcm.RecordSamples(now, make([]byte, 100), true) // 200 frames
		doneCh <- got
	}()
	select {
	case <-doneCh:
		t.Fatal("compressed blocking record returned early")
	default:
	}
	r.step(400)
	select {
	case got := <-doneCh:
		if got != 100 {
			t.Errorf("got %d bytes, want 100", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("compressed blocking record never completed")
	}
}

// TestADPCMRejectedOnStereo: the conversion module is mono-only; a stereo
// device rejects the encoding with BadMatch.
func TestADPCMRejectedOnStereo(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	var gotErr error
	c.SetErrorHandler(func(_ *af.Conn, pe *af.ProtoError) { gotErr = pe })
	if _, err := c.CreateAC(2, af.ACEncoding, af.ACAttributes{Type: af.ADPCM4}); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	pe, ok := gotErr.(*af.ProtoError)
	if !ok || pe.Code != 8 /* ErrMatch */ {
		t.Errorf("stereo ADPCM error = %v", gotErr)
	}
}
