package af

import (
	"audiofile/internal/proto"
)

// Event queue handling (§6.1.4): the library filters events out of the
// server stream onto a private queue, interspersed with replies on the
// same connection.

// Queued modes for EventsQueued. Polling is a flush boundary (see
// pollMessage), so AfterReading and AfterFlush both drain the output
// buffer before probing; only QueuedAlready is guaranteed wire-silent.
const (
	QueuedAlready      = 0 // only count events already read
	QueuedAfterReading = 1 // also read anything available without blocking
	QueuedAfterFlush   = 2 // flush the output buffer, then as AfterReading
)

// SelectEvents registers interest in event classes on a device
// (AFSelectEvents). mask is a bitwise OR of the Mask* constants.
func (c *Conn) SelectEvents(device int, mask uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendSelectEvents(&c.w, proto.SelectEventsReq{
		Device: uint32(device), Mask: mask,
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// Pending returns the number of events received but not yet processed
// (AFPending). It flushes the output buffer and reads anything available.
func (c *Conn) Pending() (int, error) {
	return c.EventsQueued(QueuedAfterFlush)
}

// EventsQueued checks the event queue per the given mode
// (AFEventsQueued).
func (c *Conn) EventsQueued(mode int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mode == QueuedAlready {
		return len(c.events), nil
	}
	if mode == QueuedAfterFlush {
		if err := c.flushLocked(); err != nil {
			return len(c.events), err
		}
	}
	for {
		msg, ok, err := c.pollMessage()
		if err != nil {
			return len(c.events), err
		}
		if !ok {
			return len(c.events), nil
		}
		c.dispatchAsync(msg)
	}
}

// NextEvent returns the next event, flushing the output buffer and
// blocking until one arrives (AFNextEvent).
func (c *Conn) NextEvent() (*Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.events) == 0 {
		if err := c.flushLocked(); err != nil {
			return nil, err
		}
		msg, err := c.readMessage()
		if err != nil {
			return nil, err
		}
		c.dispatchAsync(msg)
	}
	ev := c.events[0]
	c.events = c.events[1:]
	return ev, nil
}

// IfEvent blocks until an event satisfying the predicate is found,
// removes it from the queue, and returns it (AFIfEvent).
func (c *Conn) IfEvent(pred func(*Event) bool) (*Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if ev := c.takeMatching(pred); ev != nil {
			return ev, nil
		}
		if err := c.flushLocked(); err != nil {
			return nil, err
		}
		msg, err := c.readMessage()
		if err != nil {
			return nil, err
		}
		c.dispatchAsync(msg)
	}
}

// CheckIfEvent removes and returns a matching queued event without
// blocking; it reads whatever is available first (AFCheckIfEvent).
func (c *Conn) CheckIfEvent(pred func(*Event) bool) (*Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	for {
		if ev := c.takeMatching(pred); ev != nil {
			return ev, nil
		}
		msg, ok, err := c.pollMessage()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		c.dispatchAsync(msg)
	}
}

// PeekIfEvent blocks until a matching event is queued and returns it
// without removing it (AFPeekIfEvent).
func (c *Conn) PeekIfEvent(pred func(*Event) bool) (*Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for _, ev := range c.events {
			if pred(ev) {
				return ev, nil
			}
		}
		if err := c.flushLocked(); err != nil {
			return nil, err
		}
		msg, err := c.readMessage()
		if err != nil {
			return nil, err
		}
		c.dispatchAsync(msg)
	}
}

// takeMatching removes and returns the first queued event satisfying
// pred, or nil.
func (c *Conn) takeMatching(pred func(*Event) bool) *Event {
	for i, ev := range c.events {
		if pred(ev) {
			c.events = append(c.events[:i], c.events[i+1:]...)
			return ev
		}
	}
	return nil
}
