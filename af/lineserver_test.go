package af_test

import (
	"bytes"
	"testing"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/lineserver"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// TestLineServerDeviceOverProtocol runs the full Als stack (§7.4.3): an
// AudioFile client talks the AudioFile protocol to a server whose audio
// device is a LineServer box reached over its private UDP protocol.
func TestLineServerDeviceOverProtocol(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	lb := vdev.NewLoopback(8192, 1, 0, 0xFF)
	fw, err := lineserver.NewFirmware(lineserver.FirmwareConfig{
		Clock: clk, Sink: lb, Source: lb,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	srv, err := aserver.New(aserver.Options{
		Logf: t.Logf,
		Devices: []aserver.DeviceSpec{
			{Kind: "lineserver", Name: "als0", Addr: fw.Addr(), LSNoExtrapolate: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	devs := c.Devices()
	if len(devs) != 1 || devs[0].Name != "als0" || devs[0].PlaySampleFreq != 8000 {
		t.Fatalf("devices = %+v", devs)
	}

	ac, err := c.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	// Prime recording so the periodic updates pull record data.
	now, _ := ac.GetTime()
	ac.RecordSamples(now.Add(-4), make([]byte, 4), false) //nolint:errcheck

	data := make([]byte, 400)
	for i := range data {
		data[i] = sampleconv.EncodeMuLaw(int16(3000 + 10*i))
	}
	start := now.Add(100)
	if _, err := ac.PlaySamples(start, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clk.Advance(200)
		srv.Sync()
	}
	buf := make([]byte, 400)
	_, n, err := ac.RecordSamples(start, buf, true)
	if err != nil || n != 400 {
		t.Fatal(err, n)
	}
	if !bytes.Equal(buf, data) {
		t.Error("audio corrupted across the LineServer protocol stack")
	}
	if fw.Packets() == 0 {
		t.Error("no UDP packets reached the box")
	}
}
