package af_test

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestDispatcherStructuredFuzz sends thousands of well-framed requests
// with random opcodes (valid and invalid) and random bodies. The server
// must answer every one with a reply, an error, or nothing — never crash,
// never desynchronize — and a SyncConnection afterwards must still round
// trip.
func TestDispatcherStructuredFuzz(t *testing.T) {
	r := newRig(t)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nc, err := net.Dial("unix", r.addr)
		if err != nil {
			t.Fatal(err)
		}
		// Raw handshake.
		setup := []byte{'l', 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		if _, err := nc.Write(setup); err != nil {
			t.Fatal(err)
		}
		hdr := make([]byte, 8)
		readFullDeadline(t, nc, hdr)
		extra := make([]byte, int(binary.LittleEndian.Uint16(hdr[6:]))*4)
		readFullDeadline(t, nc, extra)

		// Drain server messages in the background so the out queue never
		// fills; we don't interpret them.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			buf := make([]byte, 64<<10)
			for {
				nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
				if _, err := nc.Read(buf); err != nil {
					return
				}
			}
		}()

		for i := 0; i < 3000; i++ {
			op := uint8(rng.Intn(48)) // includes invalid opcodes
			ext := uint8(rng.Intn(256))
			bodyWords := rng.Intn(16)
			req := make([]byte, 4+4*bodyWords)
			req[0] = op
			req[1] = ext
			binary.LittleEndian.PutUint16(req[2:], uint16(len(req)/4))
			rng.Read(req[4:])
			// Small field values hit real devices/ACs more often.
			if len(req) >= 8 && rng.Intn(2) == 0 {
				binary.LittleEndian.PutUint32(req[4:], uint32(rng.Intn(6)))
			}
			if _, err := nc.Write(req); err != nil {
				t.Fatalf("seed %d req %d: %v", seed, i, err)
			}
		}
		nc.Close()
		<-drained
	}

	// The server is still sane.
	good := r.dial(t)
	if err := good.Sync(); err != nil {
		t.Fatalf("server unhealthy after fuzz: %v", err)
	}
	if _, err := good.GetTime(1); err != nil {
		t.Fatalf("GetTime after fuzz: %v", err)
	}
}
