package af_test

import (
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
)

// TestFairnessUnderBulkTraffic checks §7.1's fairness goal: one client
// streaming large play requests must not prevent the server from serving
// another client. The client library's 8 KiB chunking means no single
// request occupies the single-threaded dispatcher for long, so the second
// client's round trips stay bounded.
func TestFairnessUnderBulkTraffic(t *testing.T) {
	r := newRig(t)
	bulk := r.dial(t)
	interactive := r.dial(t)

	bac, err := bulk.CreateAC(1, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	now, err := bac.GetTime()
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	bulkDone := make(chan struct{})
	go func() {
		defer close(bulkDone)
		// 24 KiB blocks, rewritten at a fixed future region so the bulk
		// client never blocks on time.
		data := make([]byte, 24<<10)
		start := now.Add(4000)
		for !stop.Load() {
			if _, err := bac.PlaySamples(start, data); err != nil {
				return
			}
		}
	}()

	// Let the bulk stream get going.
	time.Sleep(20 * time.Millisecond)
	var worst time.Duration
	for i := 0; i < 200; i++ {
		t0 := time.Now()
		if _, err := interactive.GetTime(1); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	stop.Store(true)
	<-bulkDone

	// The paper's fairness bar: round-robin service with chunked requests
	// keeps other clients responsive. 100 ms is over a thousand times the
	// per-chunk cost — failures here mean the loop wedged, not jitter.
	if worst > 100*time.Millisecond {
		t.Errorf("interactive GetTime worst latency %v under bulk load", worst)
	}
}
