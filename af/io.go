package af

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"audiofile/internal/proto"
)

// Low-level request and reply machinery. All functions here require
// c.mu held.

// errClosed reports use of a closed connection.
var errClosed = errors.New("af: connection closed")

// finishReq runs the post-request hooks: synchronous mode and the after
// function.
func (c *Conn) finishReq() error {
	if c.afterFunc != nil {
		c.afterFunc(c)
	}
	if c.synchronous {
		return c.syncLocked()
	}
	return nil
}

// flushLocked writes the buffered requests to the server (AFFlush).
func (c *Conn) flushLocked() error {
	if c.ioErr != nil {
		return c.ioErr
	}
	if c.closed {
		return errClosed
	}
	if len(c.w.Buf) == 0 {
		return nil
	}
	_, err := c.conn.Write(c.w.Buf)
	c.w.Reset()
	if err != nil {
		return c.ioError(err)
	}
	return nil
}

// Flush sends all buffered requests to the server.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// ioError records a fatal transport error and invokes the I/O error
// handler. If the server announced why it was closing the session (an
// Overload eviction or Drain shutdown notice), the transport failure is
// wrapped in a ServerClosedError carrying that code.
func (c *Conn) ioError(err error) error {
	if c.ioErr == nil {
		if c.closeNotice != 0 {
			err = &ServerClosedError{Code: c.closeNotice, Err: err}
		}
		c.ioErr = fmt.Errorf("af: connection error: %w", err)
		if c.ioErrHandler != nil {
			c.ioErrHandler(c, c.ioErr)
		} else {
			fmt.Fprintf(os.Stderr, "%v\n", c.ioErr)
		}
	}
	return c.ioErr
}

// readMessage reads the next server message, blocking.
func (c *Conn) readMessage() (*proto.Message, error) {
	if c.ioErr != nil {
		return nil, c.ioErr
	}
	if err := proto.ReadMessageInto(c.br, c.order, &c.rmsg); err != nil {
		return nil, c.ioError(err)
	}
	return &c.rmsg, nil
}

// pollMessage reads one message if any data is ready, without blocking
// for more than a millisecond for the first byte. Polling is a flush
// boundary, like awaiting a reply: any write-combined requests still in
// the output buffer go to the wire first (in one write), so a client
// can never poll for the effect of a request it has not yet sent.
func (c *Conn) pollMessage() (*proto.Message, bool, error) {
	if err := c.flushLocked(); err != nil {
		return nil, false, err
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		// A transport that cannot arm a deadline would turn the probe
		// below into a blocking read; fail the poll instead.
		return nil, false, c.ioError(err)
	}
	_, err := c.br.ReadByte()
	// Clear the deadline before anything else: a connection left with the
	// stale 1ms deadline would spuriously time out every later blocking
	// read. A failure here poisons the connection the same way.
	clearErr := c.conn.SetReadDeadline(time.Time{})
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if clearErr != nil {
				return nil, false, c.ioError(clearErr)
			}
			return nil, false, nil
		}
		return nil, false, c.ioError(err)
	}
	if clearErr != nil {
		return nil, false, c.ioError(clearErr)
	}
	// Put the probe byte back and parse from the buffered reader itself:
	// UnreadByte is always valid immediately after ReadByte, and it avoids
	// building a two-reader chain (and two allocations) per poll.
	if err := c.br.UnreadByte(); err != nil {
		return nil, false, c.ioError(err)
	}
	if err := proto.ReadMessageInto(c.br, c.order, &c.rmsg); err != nil {
		return nil, false, c.ioError(err)
	}
	return &c.rmsg, true, nil
}

// dispatchAsync handles a message that is not the awaited reply: events
// join the queue; errors go to the error handler.
func (c *Conn) dispatchAsync(msg *proto.Message) {
	switch {
	case msg.Event != nil:
		c.events = append(c.events, eventFromWire(msg.Event))
	case msg.Broadcast != nil:
		c.deliverBroadcast(msg.Broadcast)
	case msg.Error != nil:
		if proto.IsGoodbye(msg.Error.Code) {
			// A connection-scoped goodbye, not a per-request failure: the
			// server is about to close the transport. Remember why, so the
			// error the next operation hits is typed (ServerClosedError) —
			// and, for a Redirect, so the reconnect machinery knows the
			// close is an invitation to redial, not an eviction.
			c.closeNotice = msg.Error.Code
			return
		}
		pe := protoErrFromWire(msg.Error)
		if c.errHandler != nil {
			// The handler runs with the connection lock held; it must not
			// call back into the Conn (as in Xlib).
			c.errHandler(c, pe)
		} else {
			fmt.Fprintf(os.Stderr, "%v\n", pe)
		}
	case msg.Reply != nil:
		// A reply nobody is waiting for indicates a library bug or a
		// confused server; drop it loudly.
		fmt.Fprintf(os.Stderr, "af: unexpected reply (seq %d)\n", msg.Reply.Seq)
	}
}

func eventFromWire(ev *proto.Event) *Event {
	return &Event{
		Code:     ev.Code,
		Detail:   ev.Detail,
		Device:   int(ev.Device),
		Time:     ATime(ev.Time),
		HostSec:  ev.HostSec,
		HostNsec: ev.HostNsec,
		Value:    ev.Value,
	}
}

func protoErrFromWire(e *proto.ErrorMsg) *ProtoError {
	return &ProtoError{Code: e.Code, Seq: e.Seq, BadValue: e.BadValue, MajorOp: e.MajorOp}
}

// awaitReply flushes and reads until the reply (or error) for the request
// with the given sequence number arrives.
func (c *Conn) awaitReply(seq uint16) (*proto.Reply, error) {
	return c.awaitReplyDirect(seq, nil)
}

// awaitReplyDirect is awaitReply with a zero-copy destination: when dst is
// non-nil, the awaited reply's sample payload is read from the socket
// straight into dst (the returned Reply.Extra aliases dst) instead of
// passing through the connection's scratch message. Other messages
// arriving first — events, errors, replies to earlier requests — take the
// ordinary path and leave dst untouched.
func (c *Conn) awaitReplyDirect(seq uint16, dst []byte) (*proto.Reply, error) {
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	for {
		if c.ioErr != nil {
			return nil, c.ioErr
		}
		if err := proto.ReadMessageDirect(c.br, c.order, &c.rmsg, seq, dst); err != nil {
			return nil, c.ioError(err)
		}
		msg := &c.rmsg
		if msg.Reply != nil && msg.Reply.Seq == seq {
			return msg.Reply, nil
		}
		if msg.Error != nil && msg.Error.Seq == seq && !proto.IsGoodbye(msg.Error.Code) {
			return nil, protoErrFromWire(msg.Error)
		}
		// Overload/Drain/Redirect goodbyes are connection-scoped even when
		// their sequence number matches the awaited request; dispatchAsync
		// records them and the loop runs on to the transport close that
		// follows.
		c.dispatchAsync(msg)
	}
}

// writeVectored ships the queued request bytes plus caller-owned sample
// slices in one vectored write (writev on TCP and Unix sockets), then
// resets the request buffer. Large play payloads go to the kernel
// straight from the caller's slice; they are never copied into the
// library's buffer. The vector is consumed by the write.
func (c *Conn) writeVectored(vec [][]byte) error {
	if c.ioErr != nil {
		return c.ioErr
	}
	if c.closed {
		return errClosed
	}
	// WriteTo consumes the view (advancing and dropping entries), so hand
	// it a throwaway alias of vec; the backing list stays reusable.
	c.wvec = vec
	_, err := c.wvec.WriteTo(c.conn)
	c.wvec = nil
	c.w.Reset()
	if err != nil {
		return c.ioError(err)
	}
	return nil
}

// syncLocked performs a round-trip no-op (AFSync): it flushes the output
// buffer and waits for the server to process everything sent so far,
// surfacing any queued asynchronous errors along the way.
func (c *Conn) syncLocked() error {
	if err := proto.AppendEmptyReq(&c.w, proto.OpSyncConnection, 0); err != nil {
		return err
	}
	c.sentSeq++
	_, err := c.awaitReply(c.sentSeq)
	return err
}

// Sync flushes the request queue and waits until the server has processed
// every request (AFSync / AFSynchronize's underlying call).
func (c *Conn) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncLocked()
}

// NoOp sends a non-blocking NoOperation request (AFNoOp).
func (c *Conn) NoOp() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendEmptyReq(&c.w, proto.OpNoOperation, 0); err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}
