package af

import (
	"encoding/binary"
	"fmt"

	"audiofile/internal/proto"
)

// ACAttributes is the client-side audio context attribute record
// (AFSetACAttributes). Which fields matter is selected by a mask.
type ACAttributes struct {
	PlayGain int  // dB, applied before mixing
	RecGain  int  // dB, applied on the record path
	Preempt  bool // play requests overwrite rather than mix
	// BigEndian declares that this context's sample data is big-endian on
	// the wire; the default is little-endian.
	BigEndian bool
	Type      Encoding // sample encoding
	Channels  int      // samples per frame
}

// Attribute mask bits for CreateAC and ChangeACAttributes.
const (
	ACPlayGain   = proto.ACPlayGain
	ACRecordGain = proto.ACRecordGain
	ACPreemption = proto.ACPreemption
	ACEncoding   = proto.ACEncoding
	ACEndian     = proto.ACEndian
	ACChannels   = proto.ACChannels
)

// AC is an audio context (§5.6): the binding of a device with play/record
// parameters under which samples are played and recorded.
type AC struct {
	conn *Conn
	id   uint32

	// Device is the audio device this context plays and records on.
	Device *Device

	// Attributes mirrors the server-side context, maintained locally.
	Attributes ACAttributes

	// sub is the context's live broadcast subscription, if any
	// (subscribe.go). Guarded by conn.mu.
	sub *Subscription

	freed bool
}

func wireAttrs(a ACAttributes) proto.ACAttributes {
	endian := uint8(0)
	if a.BigEndian {
		endian = 1
	}
	preempt := uint8(0)
	if a.Preempt {
		preempt = 1
	}
	return proto.ACAttributes{
		PlayGain: int16(a.PlayGain),
		RecGain:  int16(a.RecGain),
		Preempt:  preempt,
		Endian:   endian,
		Type:     uint8(a.Type),
		Channels: uint8(a.Channels),
	}
}

// CreateAC creates an audio context on a device (AFCreateAC). The masked
// attribute fields override the device defaults. CreateAC is
// asynchronous; errors surface via the error handler or the next
// synchronous call.
func (c *Conn) CreateAC(device int, mask uint32, attrs ACAttributes) (*AC, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if device < 0 || device >= len(c.devices) {
		return nil, fmt.Errorf("af: no device %d", device)
	}
	dev := &c.devices[device]
	ac := &AC{
		conn:   c,
		id:     c.nextACID,
		Device: dev,
		Attributes: ACAttributes{
			Type:     dev.PlayBufType,
			Channels: dev.PlayNchannels,
		},
	}
	c.nextACID++
	applyMask(&ac.Attributes, mask, attrs)
	err := proto.AppendCreateAC(&c.w, proto.CreateACReq{
		AC:     ac.id,
		Device: uint32(device),
		Mask:   mask,
		Attrs:  wireAttrs(attrs),
	})
	if err != nil {
		return nil, err
	}
	c.sentSeq++
	if err := c.finishReq(); err != nil {
		return nil, err
	}
	c.acs[ac.id] = ac
	return ac, nil
}

func applyMask(dst *ACAttributes, mask uint32, src ACAttributes) {
	if mask&ACPlayGain != 0 {
		dst.PlayGain = src.PlayGain
	}
	if mask&ACRecordGain != 0 {
		dst.RecGain = src.RecGain
	}
	if mask&ACPreemption != 0 {
		dst.Preempt = src.Preempt
	}
	if mask&ACEncoding != 0 {
		dst.Type = src.Type
	}
	if mask&ACEndian != 0 {
		dst.BigEndian = src.BigEndian
	}
	if mask&ACChannels != 0 {
		dst.Channels = src.Channels
	}
}

// ChangeAttributes modifies masked fields of the context
// (AFChangeACAttributes).
func (ac *AC) ChangeAttributes(mask uint32, attrs ACAttributes) error {
	c := ac.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	applyMask(&ac.Attributes, mask, attrs)
	err := proto.AppendChangeAC(&c.w, proto.ChangeACReq{
		AC:    ac.id,
		Mask:  mask,
		Attrs: wireAttrs(attrs),
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// Free releases the context's server resources (AFFreeAC).
func (ac *AC) Free() error {
	c := ac.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if ac.freed {
		return nil
	}
	ac.freed = true
	delete(c.acs, ac.id)
	if ac.sub != nil {
		// The server unsubscribes as part of freeing the context; drop the
		// local routing so in-flight chunks are discarded, not misdelivered.
		ac.sub.detachLocked()
	}
	if err := proto.AppendFreeAC(&c.w, ac.id); err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// framesToBytes converts a frame count to wire bytes under this context.
// ADPCM packs two samples per byte (mono only).
func (ac *AC) framesToBytes(frames int) int {
	if ac.Attributes.Type == ADPCM4 {
		return frames / 2
	}
	return frames * ac.Attributes.Type.BytesPerUnit() * ac.Attributes.Channels
}

// bytesToFrames converts wire bytes to a frame count under this context.
func (ac *AC) bytesToFrames(n int) int {
	if ac.Attributes.Type == ADPCM4 {
		return 2 * n
	}
	fb := ac.Attributes.Type.BytesPerUnit() * ac.Attributes.Channels
	return n / fb
}

// frameBytes returns the wire size of one whole sample unit under this
// context (one frame, or one packed ADPCM byte holding two frames).
func (ac *AC) frameBytes() int {
	if ac.Attributes.Type == ADPCM4 {
		return 1
	}
	return ac.Attributes.Type.BytesPerUnit() * ac.Attributes.Channels
}

// sampleFlags returns the per-request endian flag for this context.
func (ac *AC) sampleFlags() uint8 {
	if ac.Attributes.BigEndian {
		return proto.SampleFlagBigEndian
	}
	return 0
}

// playVectorBytes is the payload size at which PlaySamples switches to
// the scatter-gather path: below it, copying into the request buffer is
// cheaper than assembling an iovec list.
const playVectorBytes = 2048

// padZero supplies the 32-bit-boundary pad for unaligned payloads.
var padZero [4]byte

// PlaySamples plays a block of samples starting at the given device time
// (AFPlaySamples). Data scheduled for the past is discarded by the
// server; data in the near future is buffered; data beyond the server's
// buffer blocks until it fits. Long blocks are sent in 8 KiB chunks with
// the reply suppressed on all but the last, so the call costs one round
// trip. Large blocks go to the kernel scatter-gather, straight from the
// caller's slice. It returns the current device time.
func (ac *AC) PlaySamples(t ATime, data []byte) (ATime, error) {
	c := ac.conn
	var onResync func(*Conn)
	defer func() {
		if onResync != nil {
			onResync(c)
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	now, err := ac.playSamplesLocked(t, data)
	if c.shouldReconnect(err) {
		if rerr := c.reconnectLocked(); rerr == nil {
			onResync = c.reconnect.OnResync
			// The device time base moved across the restart; the caller
			// must reanchor before resuming, so no transparent retry.
			return now, &ReconnectedError{Err: err}
		}
	}
	return now, err
}

func (ac *AC) playSamplesLocked(t ATime, data []byte) (ATime, error) {
	c := ac.conn
	fb := ac.frameBytes()
	chunk := proto.ChunkBytes / fb * fb
	if chunk == 0 {
		chunk = fb
	}
	if len(data) >= playVectorBytes {
		return ac.playVectored(t, data, chunk)
	}
	for off := 0; ; {
		n := len(data) - off
		last := true
		if n > chunk {
			n, last = chunk, false
		}
		flags := ac.sampleFlags()
		if !last {
			flags |= proto.SampleFlagSuppressReply
		}
		err := proto.AppendPlaySamples(&c.w, proto.PlaySamplesReq{
			AC:    ac.id,
			Time:  uint32(t),
			Flags: flags,
			Data:  data[off : off+n],
		})
		if err != nil {
			return 0, err
		}
		c.sentSeq++
		if last {
			rep, err := c.awaitReply(c.sentSeq)
			if err != nil {
				return 0, err
			}
			return ATime(rep.Time), nil
		}
		t = t.Add(ac.bytesToFrames(n))
		off += n
	}
}

// playVectored ships a large play request scatter-gather: the chunk
// headers are marshaled into the request buffer, but the sample data
// reaches the kernel as iovecs pointing straight at the caller's slice —
// it is never copied into the library. One vectored write carries any
// previously queued requests, every chunk header, and every chunk body.
func (ac *AC) playVectored(t ATime, data []byte, chunk int) (ATime, error) {
	c := ac.conn
	seq0 := c.sentSeq
	base := len(c.w.Buf)
	c.hdrEnds = c.hdrEnds[:0]
	for off := 0; off < len(data); {
		n := len(data) - off
		last := n <= chunk
		if !last {
			n = chunk
		}
		flags := ac.sampleFlags()
		if !last {
			flags |= proto.SampleFlagSuppressReply
		}
		err := proto.AppendPlaySamplesHeader(&c.w, proto.PlaySamplesReq{
			AC:    ac.id,
			Time:  uint32(t),
			Flags: flags,
		}, n)
		if err != nil {
			c.w.Buf = c.w.Buf[:base]
			c.sentSeq = seq0
			return 0, err
		}
		c.sentSeq++
		c.hdrEnds = append(c.hdrEnds, len(c.w.Buf))
		t = t.Add(ac.bytesToFrames(n))
		off += n
	}
	lastSeq := c.sentSeq
	// Build the iovec list only after every header is in place: appending
	// may grow (and so move) the request buffer, which would invalidate
	// slices taken earlier.
	vec := c.pvec[:0]
	prev := 0
	for i, he := range c.hdrEnds {
		vec = append(vec, c.w.Buf[prev:he])
		prev = he
		off := i * chunk
		n := len(data) - off
		if n > chunk {
			n = chunk
		}
		vec = append(vec, data[off:off+n])
		if pad := proto.Pad4(n) - n; pad > 0 {
			vec = append(vec, padZero[:pad])
		}
	}
	c.pvec = vec
	if err := c.writeVectored(vec); err != nil {
		return 0, err
	}
	rep, err := c.awaitReply(lastSeq)
	if err != nil {
		return 0, err
	}
	return ATime(rep.Time), nil
}

// RecordSamples records len(buf) bytes of samples beginning at the given
// device time (AFRecordSamples). With block true the call returns only
// once all requested data has been captured; otherwise it returns
// whatever is immediately available. It returns the current device time
// and the number of bytes stored into buf.
//
// Long requests are chunked at 8 KiB, as in the C library, but the
// chunks are pipelined: every request is issued up front in one flush,
// then the replies are consumed in order, each payload read from the
// socket straight into buf. A large record costs one round trip instead
// of one per chunk, and the sample data is copied exactly once — kernel
// socket buffer to buf.
//
// Because replies are read directly, a short (non-blocking) chunk's
// 32-bit-boundary pad lands in buf inside the requested chunk region,
// just past the returned byte count.
func (ac *AC) RecordSamples(t ATime, buf []byte, block bool) (ATime, int, error) {
	c := ac.conn
	var onResync func(*Conn)
	defer func() {
		if onResync != nil {
			onResync(c)
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	now, total, err := ac.recordSamplesLocked(t, buf, block)
	if c.shouldReconnect(err) {
		if rerr := c.reconnectLocked(); rerr == nil {
			onResync = c.reconnect.OnResync
			return now, total, &ReconnectedError{Err: err}
		}
	}
	return now, total, err
}

func (ac *AC) recordSamplesLocked(t ATime, buf []byte, block bool) (ATime, int, error) {
	c := ac.conn
	fb := ac.frameBytes()
	chunk := proto.ChunkBytes / fb * fb
	if chunk == 0 {
		chunk = fb
	}
	flags := ac.sampleFlags()
	if !block {
		flags |= proto.SampleFlagNoBlock
	}
	seq0 := c.sentSeq
	nchunks := 0
	for off := 0; off < len(buf); off += chunk {
		n := len(buf) - off
		if n > chunk {
			n = chunk
		}
		err := proto.AppendRecordSamples(&c.w, proto.RecordSamplesReq{
			AC:     ac.id,
			Time:   uint32(t.Add(ac.bytesToFrames(off))),
			NBytes: uint32(n),
			Flags:  flags,
		})
		if err != nil {
			return 0, 0, err
		}
		c.sentSeq++
		nchunks++
	}
	total := 0
	now := ATime(0)
	short := false // a chunk came back partial: discard the rest
	var firstErr error
	for i := 0; i < nchunks; i++ {
		off := i * chunk
		n := len(buf) - off
		if n > chunk {
			n = chunk
		}
		var dst []byte
		if !short && firstErr == nil {
			dst = buf[off : off+n]
		}
		rep, err := c.awaitReplyDirect(seq0+uint16(i)+1, dst)
		if err != nil {
			if _, ok := err.(*ProtoError); !ok {
				return now, total, err // transport failure: replies are gone
			}
			if firstErr == nil {
				firstErr = err
			}
			continue // drain the remaining pipelined replies
		}
		if short || firstErr != nil {
			continue // data past the short chunk was never asked for
		}
		got := min(int(rep.Aux), len(rep.Extra))
		now = ATime(rep.Time)
		total += got
		if got < n {
			short = true // non-blocking record ran out of captured data
		}
	}
	return now, total, firstErr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GetTime returns the current device time of the context's device
// (AFGetTime).
func (ac *AC) GetTime() (ATime, error) {
	return ac.conn.GetTime(ac.Device.Index)
}

// GetTime returns the current device time of a device (AFGetTime).
// GetTime is idempotent, so with reconnection enabled (SetReconnect) a
// transport failure is retried transparently on the new session.
func (c *Conn) GetTime(device int) (ATime, error) {
	var onResync func(*Conn)
	defer func() {
		if onResync != nil {
			onResync(c)
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	t, err := c.getTimeLocked(device)
	if c.shouldReconnect(err) {
		if rerr := c.reconnectLocked(); rerr == nil {
			onResync = c.reconnect.OnResync
			return c.getTimeLocked(device)
		}
	}
	return t, err
}

func (c *Conn) getTimeLocked(device int) (ATime, error) {
	if err := proto.AppendDeviceReq(&c.w, proto.OpGetTime, uint32(device)); err != nil {
		return 0, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return 0, err
	}
	return ATime(rep.Time), nil
}

// binaryOrder exposes the connection's wire byte order (for clients that
// pre-encode linear sample data themselves).
func (c *Conn) binaryOrder() binary.ByteOrder { return c.order }
