package af_test

// Reconnect tests: kill the server under a live connection, restart it
// on the same address, and hold the library to its reconnection
// contract — idempotent operations retry transparently, streaming
// operations surface a typed ReconnectedError after the session is
// rebuilt (audio contexts replayed verbatim), and a server that closes
// the session deliberately (Drain) surfaces a typed ServerClosedError.

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

// startServer serves one codec device on a unix socket at path,
// retrying the bind briefly in case a just-closed predecessor has not
// yet released the address.
func startServer(t *testing.T, path string) *aserver.Server {
	t.Helper()
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = srv.Listen("unix", path)
		if err == nil {
			return srv
		}
		if time.Now().After(deadline) {
			srv.Close()
			t.Fatalf("listen %s: %v", path, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReconnectGetTimeTransparent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "AFsock")
	srv1 := startServer(t, path)
	conn, err := af.Open("unix:" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	resyncs := 0
	if err := conn.SetReconnect(af.ReconnectOptions{
		OnResync: func(*af.Conn) { resyncs++ },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.GetTime(0); err != nil {
		t.Fatalf("GetTime before restart: %v", err)
	}

	srv1.Close()
	srv2 := startServer(t, path)
	defer srv2.Close()

	// GetTime is idempotent: the transport failure must be absorbed by a
	// redial and a transparent retry on the rebuilt session.
	if _, err := conn.GetTime(0); err != nil {
		t.Fatalf("GetTime across restart: %v", err)
	}
	if resyncs != 1 {
		t.Errorf("OnResync fired %d times, want 1", resyncs)
	}
	// The rebuilt session stays healthy.
	if err := conn.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReconnectStreamingReturnsTypedError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "AFsock")
	srv1 := startServer(t, path)
	conn, err := af.Open("unix:" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	resyncs := 0
	if err := conn.SetReconnect(af.ReconnectOptions{
		OnResync: func(*af.Conn) { resyncs++ },
	}); err != nil {
		t.Fatal(err)
	}
	ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	now, err := ac.GetTime()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.PlaySamples(now.Add(256), data); err != nil {
		t.Fatalf("play before restart: %v", err)
	}

	srv1.Close()
	srv2 := startServer(t, path)
	defer srv2.Close()

	// A streaming operation must NOT retry transparently — the device
	// time base moved across the restart — but it must reconnect and say
	// so with a typed error the caller can branch on.
	_, err = ac.PlaySamples(now.Add(512), data)
	var re *af.ReconnectedError
	if !errors.As(err, &re) {
		t.Fatalf("play across restart: got %v, want ReconnectedError", err)
	}
	if resyncs != 1 {
		t.Errorf("OnResync fired %d times, want 1", resyncs)
	}

	// The context was replayed during the reconnect: after resyncing
	// device time, the same AC plays on the new server without any
	// client-side re-setup.
	now, err = ac.GetTime()
	if err != nil {
		t.Fatalf("resync GetTime: %v", err)
	}
	if _, err := ac.PlaySamples(now.Add(256), data); err != nil {
		t.Fatalf("play after reconnect: %v", err)
	}
	if err := conn.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReconnectFailsWhenServerStaysDown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "AFsock")
	srv := startServer(t, path)
	conn, err := af.Open("unix:" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	if err := conn.SetReconnect(af.ReconnectOptions{
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// No replacement server: the retries must exhaust and the original
	// transport error must come back, not a reconnect artifact.
	if _, err := conn.GetTime(0); err == nil {
		t.Fatal("GetTime succeeded with no server")
	}
	var re *af.ReconnectedError
	if errors.As(err, &re) {
		t.Fatalf("got ReconnectedError %v with no server to reconnect to", err)
	}
}

func TestServerClosedErrorOnDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "AFsock")
	srv := startServer(t, path)
	defer srv.Close()
	conn, err := af.Open("unix:" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	if _, err := conn.GetTime(0); err != nil {
		t.Fatal(err)
	}

	// Drain sends the typed goodbye (Drain) and closes the transport.
	srv.Drain(time.Second)

	// The next read finds the goodbye, then the close; the library must
	// fold both into one typed error naming the server's reason.
	_, err = conn.Pending()
	var sce *af.ServerClosedError
	if !errors.As(err, &sce) {
		t.Fatalf("got %v, want ServerClosedError", err)
	}
	if sce.Code != proto.ErrDrain {
		t.Errorf("close code %d, want ErrDrain (%d)", sce.Code, proto.ErrDrain)
	}
}

func TestSetReconnectRequiresRedialForCustomTransport(t *testing.T) {
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A pipe connection has no address to redial; the library must say
	// so rather than silently disabling reconnection.
	if err := conn.SetReconnect(af.ReconnectOptions{}); err == nil {
		t.Fatal("SetReconnect accepted a connection with no redial target")
	}
}
