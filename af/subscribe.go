package af

import (
	"errors"
	"fmt"

	"audiofile/internal/proto"
)

// Broadcast channel subscriptions. A subscription turns the connection
// into a listener on a server-side channel: the server taps the device's
// final play mix, encodes it once per wire format, and pushes the chunks
// to every subscriber without a matching request. The library filters
// broadcast messages out of the server stream onto a per-subscription
// queue, exactly as it does for events.

// Chunk is one pushed block of channel audio, in the subscription
// context's encoding and channel count. Seq is the channel's chunk
// counter: consecutive values mean gap-free audio; a jump means chunks
// were dropped (locally, see Subscription.Dropped, or by a server
// backlog clamp, which keeps Seq contiguous but jumps Time).
type Chunk struct {
	Seq  uint16
	Time ATime // device time of the first sample
	Data []byte
}

// maxQueuedChunks bounds a subscription's local queue. A listener that
// stops calling Next loses the oldest chunks first and can see the gap
// in Seq and Dropped; the connection itself never stops reading.
const maxQueuedChunks = 256

// Subscription is a live attachment to a broadcast channel, created by
// AC.Subscribe. Like the rest of the library it serializes through the
// connection lock; Next blocks reading the connection, so a typical
// listener dedicates a goroutine to it.
type Subscription struct {
	conn    *Conn
	ac      *AC
	channel uint32 // routing key: the channel's device index

	// Guarded by conn.mu.
	queue   []Chunk
	dropped uint64 // chunks discarded because the queue was full
	closed  bool
}

// errUnsubscribed reports use of a closed subscription.
var errUnsubscribed = errors.New("af: subscription closed")

// Subscribe attaches the audio context to its device's broadcast channel
// (AFSubscribe) and returns the live subscription plus the device time
// at which the stream starts. The pushed chunks arrive in the context's
// encoding and channel count; compressed (ADPCM) contexts cannot
// subscribe, and a connection may hold at most one subscription per
// device.
func (ac *AC) Subscribe() (*Subscription, ATime, error) {
	c := ac.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if ac.sub != nil && !ac.sub.closed {
		return nil, 0, fmt.Errorf("af: context already subscribed")
	}
	if err := proto.AppendSubscribe(&c.w, ac.id); err != nil {
		return nil, 0, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return nil, 0, err
	}
	// The reply's Aux is the channel id (device index) the server stamps
	// into every broadcast header; route incoming chunks by it.
	sub := &Subscription{conn: c, ac: ac, channel: rep.Aux}
	c.subs[sub.channel] = sub
	ac.sub = sub
	return sub, ATime(rep.Time), nil
}

// Next returns the next pushed chunk, flushing the output buffer and
// blocking until one arrives (the broadcast counterpart of NextEvent).
// The returned chunk's Data is owned by the caller.
func (s *Subscription) Next() (Chunk, error) {
	c := s.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(s.queue) == 0 {
		if s.closed {
			return Chunk{}, errUnsubscribed
		}
		if err := c.flushLocked(); err != nil {
			return Chunk{}, err
		}
		msg, err := c.readMessage()
		if err != nil {
			return Chunk{}, err
		}
		c.dispatchAsync(msg)
	}
	ch := s.queue[0]
	s.queue = s.queue[1:]
	return ch, nil
}

// TryNext returns a queued chunk without blocking, after reading
// whatever the server has already pushed. ok is false when no chunk is
// available.
func (s *Subscription) TryNext() (ch Chunk, ok bool, err error) {
	c := s.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return Chunk{}, false, err
	}
	for len(s.queue) == 0 {
		if s.closed {
			return Chunk{}, false, errUnsubscribed
		}
		msg, got, err := c.pollMessage()
		if err != nil {
			return Chunk{}, false, err
		}
		if !got {
			return Chunk{}, false, nil
		}
		c.dispatchAsync(msg)
	}
	ch = s.queue[0]
	s.queue = s.queue[1:]
	return ch, true, nil
}

// Dropped returns the number of chunks discarded locally because the
// subscription's queue overflowed (the listener fell more than
// maxQueuedChunks behind).
func (s *Subscription) Dropped() uint64 {
	s.conn.mu.Lock()
	defer s.conn.mu.Unlock()
	return s.dropped
}

// Unsubscribe detaches from the channel (AFUnsubscribe). Chunks already
// queued are discarded; the call round-trips so no further broadcasts
// for this subscription are in flight when it returns.
func (s *Subscription) Unsubscribe() error {
	c := s.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return nil
	}
	s.detachLocked()
	if err := proto.AppendUnsubscribe(&c.w, s.ac.id); err != nil {
		return err
	}
	c.sentSeq++
	_, err := c.awaitReply(c.sentSeq)
	return err
}

// detachLocked tears down the client-side subscription state. c.mu held.
func (s *Subscription) detachLocked() {
	s.closed = true
	s.queue = nil
	delete(s.conn.subs, s.channel)
	if s.ac.sub == s {
		s.ac.sub = nil
	}
}

// deliverBroadcast routes a pushed chunk to its subscription, copying
// the payload out of the connection's reusable message storage. Called
// from dispatchAsync with c.mu held.
func (c *Conn) deliverBroadcast(b *proto.BroadcastData) {
	s := c.subs[b.Channel]
	if s == nil || s.closed {
		return // unsubscribed while chunks were in flight
	}
	if len(s.queue) >= maxQueuedChunks {
		s.queue = s.queue[1:]
		s.dropped++
	}
	data := make([]byte, len(b.Data))
	copy(data, b.Data)
	s.queue = append(s.queue, Chunk{Seq: b.Seq, Time: ATime(b.Time), Data: data})
}
