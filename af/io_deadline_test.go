package af_test

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
)

// deadlineFailConn makes SetReadDeadline fail on demand. The poll path
// (Pending / EventsQueued / CheckIfEvent) arms a short read deadline
// before its probe read; if arming silently fails, the probe becomes a
// blocking read and the "non-blocking" call hangs until the server
// happens to send something.
type deadlineFailConn struct {
	net.Conn
	fail atomic.Bool
}

var errDeadlineBroken = errors.New("deadline unsupported")

func (c *deadlineFailConn) SetReadDeadline(t time.Time) error {
	if c.fail.Load() {
		return errDeadlineBroken
	}
	return c.Conn.SetReadDeadline(t)
}

func TestPollSurfacesDeadlineError(t *testing.T) {
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0"}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	fc := &deadlineFailConn{Conn: srv.DialPipe()}
	conn, err := af.NewConn(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})

	// Healthy transport: Pending polls and returns without events.
	if n, err := conn.Pending(); err != nil || n != 0 {
		t.Fatalf("Pending on healthy conn = %d, %v", n, err)
	}

	// Broken transport: the poll must return the deadline error instead
	// of falling through to an unbounded blocking read.
	fc.fail.Store(true)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Pending()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errDeadlineBroken) {
			t.Errorf("Pending error = %v, want wrapped %v", err, errDeadlineBroken)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pending hung on a transport whose SetReadDeadline fails")
	}
}
