package af

import (
	"fmt"

	"audiofile/internal/proto"
)

// Atoms and properties (§5.9): the inter-client communication machinery
// adopted from X. Atoms are unique integer handles for strings;
// properties are named, typed data stored on devices.

// Atom is a unique id for an interned string.
type Atom uint32

// Predefined atoms (Table 2).
const (
	AtomNone             = Atom(proto.AtomNone)
	AtomATOM             = Atom(proto.AtomATOM)
	AtomCARDINAL         = Atom(proto.AtomCARDINAL)
	AtomINTEGER          = Atom(proto.AtomINTEGER)
	AtomSTRING           = Atom(proto.AtomSTRING)
	AtomAC               = Atom(proto.AtomAC)
	AtomDEVICE           = Atom(proto.AtomDEVICE)
	AtomTIME             = Atom(proto.AtomTIME)
	AtomMASK             = Atom(proto.AtomMASK)
	AtomTELEPHONE        = Atom(proto.AtomTELEPHONE)
	AtomCOPYRIGHT        = Atom(proto.AtomCOPYRIGHT)
	AtomFILENAME         = Atom(proto.AtomFILENAME)
	AtomLastNumberDialed = Atom(proto.AtomLastNumberDialed)
)

// Property change modes.
const (
	PropModeReplace = proto.PropModeReplace
	PropModePrepend = proto.PropModePrepend
	PropModeAppend  = proto.PropModeAppend
)

// InternAtom returns the atom for a name, interning it unless
// onlyIfExists is set (AFInternAtom). With onlyIfExists and no such atom,
// it returns AtomNone.
func (c *Conn) InternAtom(name string, onlyIfExists bool) (Atom, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendInternAtom(&c.w, proto.InternAtomReq{
		OnlyIfExists: onlyIfExists, Name: name,
	})
	if err != nil {
		return 0, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return 0, err
	}
	return Atom(rep.Aux), nil
}

// GetAtomName returns the string an atom stands for (AFGetAtomName).
func (c *Conn) GetAtomName(a Atom) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendGetAtomName(&c.w, uint32(a)); err != nil {
		return "", err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return "", err
	}
	r := proto.NewReader(c.order, rep.Extra)
	n := int(r.U16())
	r.Skip(2)
	name := r.String4(n)
	if r.Err != nil {
		return "", fmt.Errorf("af: bad GetAtomName reply: %w", r.Err)
	}
	return name, nil
}

// ChangeProperty stores (or extends) a property on a device
// (AFChangeProperty). format is 8, 16 or 32 bits per item.
func (c *Conn) ChangeProperty(device int, prop, typ Atom, format uint8, mode uint8, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendChangeProperty(&c.w, proto.ChangePropertyReq{
		Device:   uint32(device),
		Property: uint32(prop),
		Type:     uint32(typ),
		Format:   format,
		Mode:     mode,
		Data:     data,
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// DeleteProperty removes a property from a device (AFDeleteProperty).
func (c *Conn) DeleteProperty(device int, prop Atom) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendDeleteProperty(&c.w, proto.DeletePropertyReq{
		Device:   uint32(device),
		Property: uint32(prop),
	})
	if err != nil {
		return err
	}
	c.sentSeq++
	return c.finishReq()
}

// PropertyValue is the result of GetProperty.
type PropertyValue struct {
	Type   Atom
	Format uint8
	Data   []byte
}

// GetProperty retrieves a property's value (AFGetProperty). With typ not
// AtomNone and a stored type mismatch, Data is nil and Type reports the
// actual type. With del set, a successful full read deletes the property.
// A missing property returns Type AtomNone.
func (c *Conn) GetProperty(device int, prop, typ Atom, del bool) (PropertyValue, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := proto.AppendGetProperty(&c.w, proto.GetPropertyReq{
		Device:   uint32(device),
		Property: uint32(prop),
		Type:     uint32(typ),
		Delete:   del,
	})
	if err != nil {
		return PropertyValue{}, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return PropertyValue{}, err
	}
	r := proto.NewReader(c.order, rep.Extra)
	v := PropertyValue{Format: rep.Data}
	v.Type = Atom(r.U32())
	n := int(r.U32())
	if n > 0 {
		v.Data = append([]byte(nil), r.BytesRef(n)...)
	}
	if r.Err != nil {
		return PropertyValue{}, fmt.Errorf("af: bad GetProperty reply: %w", r.Err)
	}
	return v, nil
}

// ListProperties returns the atoms of the properties on a device
// (AFListProperties).
func (c *Conn) ListProperties(device int) ([]Atom, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.AppendDeviceReq(&c.w, proto.OpListProperties, uint32(device)); err != nil {
		return nil, err
	}
	c.sentSeq++
	rep, err := c.awaitReply(c.sentSeq)
	if err != nil {
		return nil, err
	}
	r := proto.NewReader(c.order, rep.Extra)
	atoms := make([]Atom, 0, rep.Aux)
	for i := 0; i < int(rep.Aux); i++ {
		atoms = append(atoms, Atom(r.U32()))
	}
	if r.Err != nil {
		return nil, fmt.Errorf("af: bad ListProperties reply: %w", r.Err)
	}
	return atoms, nil
}
