package af

// Clock correspondence. "One can establish a correspondence between two
// clocks" (§2.1): given simultaneous observations (Ta, Tb) of two device
// clocks and their nominal rates, times convert between the clock domains
// well enough for scheduling — AudioFile supplies the low-level timing
// information and leaves the conversion policy to clients.

// Correspondence relates the device times of two audio devices (possibly
// on different servers) using the paper's formula
//
//	t_b = T_b + R_b * ((t_a - T_a) / R_a)
type Correspondence struct {
	Ta, Tb ATime   // values of the two clocks observed "at the same time"
	Ra, Rb float64 // rates of advance in ticks per second
}

// NewCorrespondence samples both devices' times back to back and pairs
// them. The two GetTime round trips are not simultaneous, so the pairing
// carries transport-latency error — fine for scheduling, per §2.1's
// "approximate relationship which is good enough".
func NewCorrespondence(a *AC, b *AC) (Correspondence, error) {
	ta, err := a.GetTime()
	if err != nil {
		return Correspondence{}, err
	}
	tb, err := b.GetTime()
	if err != nil {
		return Correspondence{}, err
	}
	return Correspondence{
		Ta: ta, Tb: tb,
		Ra: float64(a.Device.PlaySampleFreq),
		Rb: float64(b.Device.PlaySampleFreq),
	}, nil
}

// AtoB converts a device-A time to the corresponding device-B time.
func (c Correspondence) AtoB(ta ATime) ATime {
	dt := float64(TimeSub(ta, c.Ta)) / c.Ra
	return c.Tb.Add(int(dt * c.Rb))
}

// BtoA converts a device-B time to the corresponding device-A time.
func (c Correspondence) BtoA(tb ATime) ATime {
	dt := float64(TimeSub(tb, c.Tb)) / c.Rb
	return c.Ta.Add(int(dt * c.Ra))
}
