package af_test

import (
	"encoding/binary"
	"net"
	"testing"

	"audiofile/af"
	"audiofile/internal/proto"
)

// TestVersionMismatchRefused: a client announcing the wrong protocol
// major is refused at setup with a reason.
func TestVersionMismatchRefused(t *testing.T) {
	r := newRig(t)
	nc, err := net.Dial("unix", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	setup := proto.SetupRequest{
		ByteOrder: proto.LittleEndianOrder,
		Major:     99, Minor: 0,
	}
	if err := setup.Send(nc); err != nil {
		t.Fatal(err)
	}
	rep, err := proto.ReadSetupReply(nc, binary.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success {
		t.Fatal("version 99 accepted")
	}
	if rep.Reason == "" {
		t.Error("refusal carries no reason")
	}
	if rep.Major != proto.ProtocolMajor {
		t.Errorf("refusal reports server version %d", rep.Major)
	}
}

// TestCorrespondenceAcrossDevices: schedule by converting time between
// the 8 kHz codec clock and the 44.1 kHz hifi clock.
func TestCorrespondenceAcrossDevices(t *testing.T) {
	r := newRig(t)
	c := r.dial(t)
	codec, err := c.CreateAC(1, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	hifi, err := c.CreateAC(2, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	r.step(800) // both clocks advance in their own units

	corr, err := af.NewCorrespondence(codec, hifi)
	if err != nil {
		t.Fatal(err)
	}
	// One second in codec ticks maps to one second in hifi ticks.
	ta := corr.Ta.Add(8000)
	tb := corr.AtoB(ta)
	if d := af.TimeSub(tb, corr.Tb); d < 44090 || d > 44110 {
		t.Errorf("1 s on codec maps to %d hifi ticks, want ~44100", d)
	}
	// Round trip returns within rounding error.
	back := corr.BtoA(tb)
	if d := af.TimeSub(back, ta); d < -2 || d > 2 {
		t.Errorf("round trip error = %d ticks", d)
	}
	// The rig's clocks advance in lockstep (step() scales them), so a
	// converted "now" lands near the other device's actual now.
	nowA, _ := codec.GetTime()
	nowB, _ := hifi.GetTime()
	pred := corr.AtoB(nowA)
	if d := af.TimeSub(pred, nowB); d < -4420 || d > 4420 { // within 100 ms
		t.Errorf("converted now off by %d hifi ticks", d)
	}
}
