// Overload soak test: one server versus a mixed population of
// fault-injected clients — fragmented writers, mid-message resets,
// stalling transports, and a wedged consumer that floods requests and
// never reads a reply — for a simulated minute of device time on a
// manual clock. The assertions are the overload-protection contract:
// the wedged client is evicted within its allowance while healthy
// clients play on, no engine lock is ever held for longer than one
// device update period, pooled ingress frames stay under the ceiling,
// and every conservation law (frames, parks, and the close-reason
// accounting of disconnects) holds exactly once the dust settles.
// Deterministic fault schedules (fixed seeds) and the manual clock keep
// the run reproducible; CI runs it twice under -race.
package audiofile

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/core"
	"audiofile/internal/netsim"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

func TestOverloadSoak(t *testing.T) {
	const (
		rate          = 8000
		simMinute     = 60 * rate // frames of simulated device time
		clientBudget  = 32 << 10
		frameCeiling  = 16 << 20
		evictGrace    = 100 * time.Millisecond
		fragClients   = 3
		resetClients  = 2
		stallClients  = 2
		// Enough that the flood's reply stream (16 bytes per GetTime)
		// overflows any kernel socket buffering: with TCP autotuning the
		// send buffer can absorb several MB before user-space queueing —
		// and thus the eviction policy — sees a single byte. Eviction cuts
		// the flood long before this count in the expected case, so the
		// number only bounds the pathological no-eviction path.
		floodRequests = 400_000
	)

	clk := vdev.NewManualClock(rate)
	srv, err := aserver.New(aserver.Options{
		Devices:           []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:              func(string, ...any) {},
		ClientQueueBytes:  clientBudget,
		EvictGrace:        evictGrace,
		FrameBytesCeiling: frameCeiling,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	addr := l.Addr().String()

	// Clock stepper: drives device time and keeps stepping until both the
	// workload is done and a full simulated minute has elapsed, so every
	// park and buffered frame can resolve.
	var advanced atomic.Int64
	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.Advance(256)
			advanced.Add(256)
			srv.Sync()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	t.Cleanup(stepWG.Wait)

	// Budget watcher: the pooled-frame gauge must stay under the ceiling
	// at every instant, not just at the end.
	var maxFrameBytes atomic.Int64
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if fb := srv.Snapshot().FrameBytesInFlight; fb > maxFrameBytes.Load() {
				maxFrameBytes.Store(fb)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	t.Cleanup(watchWG.Wait)
	// Cleanups run LIFO: stop closes first, then both waiters join.
	t.Cleanup(func() { close(stop) })

	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}
	dialFault := func(cfg netsim.FaultConfig) net.Conn {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			return nil
		}
		return netsim.NewFaultConn(nc, cfg)
	}

	var wg sync.WaitGroup

	// Fragmented clients: correct sessions over a transport that splits
	// every write at arbitrary boundaries. Their operations must all
	// succeed despite the churn around them.
	for i := 0; i < fragClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc := dialFault(netsim.FaultConfig{Seed: int64(1000 + i), FragmentWrites: true, MaxFragment: 7})
			if fc == nil {
				return
			}
			conn, err := af.NewConn(fc)
			if err != nil {
				fail(fmt.Errorf("fragmented setup: %w", err))
				return
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
			if err != nil {
				fail(err)
				return
			}
			data := make([]byte, 1024)
			for j := 0; j < 40; j++ {
				now, err := ac.GetTime()
				if err != nil {
					fail(fmt.Errorf("fragmented client %d GetTime %d: %w", i, j, err))
					return
				}
				if _, err := ac.PlaySamples(now.Add(512), data); err != nil {
					fail(fmt.Errorf("fragmented client %d play %d: %w", i, j, err))
					return
				}
			}
		}(i)
	}

	// Reset clients: the transport dies mid-message at a deterministic
	// byte count. Whatever they manage before the cut is fine; the server
	// must account their teardown.
	for i := 0; i < resetClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc := dialFault(netsim.FaultConfig{Seed: int64(i), ResetAfterBytes: 400 + 100*i})
			if fc == nil {
				return
			}
			conn, err := af.NewConn(fc)
			if err != nil {
				return // cut landed in setup
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
			if err != nil {
				return
			}
			data := make([]byte, 2048)
			for j := 0; j < 20; j++ {
				now, err := ac.GetTime()
				if err != nil {
					return
				}
				if _, err := ac.PlaySamples(now.Add(512), data); err != nil {
					return
				}
			}
		}(i)
	}

	// Stalling clients: the write path pauses periodically, modeling a
	// congested peer. Slow, but still correct — they must not be evicted
	// (their own sends stall; the server's queue to them stays small).
	for i := 0; i < stallClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc := dialFault(netsim.FaultConfig{
				Seed: int64(2000 + i), StallEveryBytes: 4096, Stall: 2 * time.Millisecond})
			if fc == nil {
				return
			}
			conn, err := af.NewConn(fc)
			if err != nil {
				fail(fmt.Errorf("stall setup: %w", err))
				return
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
			if err != nil {
				fail(err)
				return
			}
			data := make([]byte, 4096)
			for j := 0; j < 10; j++ {
				now, err := ac.GetTime()
				if err != nil {
					fail(fmt.Errorf("stall client %d GetTime %d: %w", i, j, err))
					return
				}
				if _, err := ac.PlaySamples(now.Add(1024), data); err != nil {
					fail(fmt.Errorf("stall client %d play %d: %w", i, j, err))
					return
				}
			}
		}(i)
	}

	// The wedged consumer: floods pipelined GetTime requests over raw TCP
	// and never reads a single reply. Its receive buffer is pinned small so
	// the kernel cannot absorb the reply stream on its behalf: the staged
	// replies must pile up in its per-client send queue, cross the byte
	// budget, and the policy must evict it; the flood ends when the server
	// resets the transport under it. Bursts of back-to-back requests per
	// write are exactly the ingress-run shape the batching path coalesces,
	// so this also pins that staged egress obeys the queued-byte budget.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer nc.Close()
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetReadBuffer(4096) //nolint:errcheck
		}
		setup := proto.SetupRequest{
			ByteOrder: proto.LittleEndianOrder,
			Major:     proto.ProtocolMajor,
			Minor:     proto.ProtocolMinor,
		}
		if err := setup.Send(nc); err != nil {
			fail(fmt.Errorf("flooder setup: %w", err))
			return
		}
		if _, err := proto.ReadSetupReply(nc, binary.LittleEndian); err != nil {
			fail(fmt.Errorf("flooder setup reply: %w", err))
			return
		}
		var w proto.Writer
		w.Order = binary.LittleEndian
		const burst = 64
		for i := 0; i < burst; i++ {
			proto.AppendDeviceReq(&w, proto.OpGetTime, 0) //nolint:errcheck
		}
		for i := 0; i < floodRequests; i += burst {
			if _, err := nc.Write(w.Buf); err != nil {
				return // evicted: the expected outcome
			}
		}
		// Never read; wait for the server to cut the transport.
		nc.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
		var buf [1]byte
		for {
			if _, err := nc.Read(buf[:]); err != nil {
				return
			}
		}
	}()

	// The canary: one healthy client on a clean transport whose every
	// operation must succeed while everything above is happening.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := af.NewConn(srv.DialPipe())
		if err != nil {
			fail(err)
			return
		}
		defer conn.Close()
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			fail(err)
			return
		}
		data := make([]byte, 512)
		buf := make([]byte, 256)
		for j := 0; j < 100; j++ {
			now, err := ac.GetTime()
			if err != nil {
				fail(fmt.Errorf("canary GetTime %d: %w", j, err))
				return
			}
			if _, err := ac.PlaySamples(now.Add(1024), data); err != nil {
				fail(fmt.Errorf("canary play %d: %w", j, err))
				return
			}
			if j%5 == 0 {
				if _, _, err := ac.RecordSamples(now, buf, true); err != nil {
					fail(fmt.Errorf("canary record %d: %w", j, err))
					return
				}
			}
		}
	}()

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}

	// Let the full simulated minute elapse before settling, so the run
	// covers sustained operation, not just the workload burst.
	for advanced.Load() < simMinute {
		time.Sleep(time.Millisecond)
	}

	s := drainSnapshot(t, srv)
	checkConservation(t, s)

	// The wedged consumer must have been evicted, and every disconnect —
	// evictions included — must be classified exactly once.
	if s.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1 (the wedged consumer)", s.Evictions)
	}
	if sum := s.Evictions + s.Sheds + s.Drains + s.ClientCloses; s.Disconnects != sum {
		t.Errorf("disconnects %d != evictions %d + sheds %d + drains %d + client closes %d",
			s.Disconnects, s.Evictions, s.Sheds, s.Drains, s.ClientCloses)
	}

	// Resource invariants: queued bytes and pooled frames return to zero
	// once the clients are gone, and the in-flight frame gauge never
	// crossed the configured ceiling during the run.
	if s.QueuedBytes != 0 {
		t.Errorf("queued bytes %d after drain, want 0", s.QueuedBytes)
	}
	if s.FrameBytesInFlight != 0 {
		t.Errorf("frame bytes in flight %d after drain, want 0", s.FrameBytesInFlight)
	}
	if mfb := maxFrameBytes.Load(); mfb > frameCeiling {
		t.Errorf("pooled frame bytes peaked at %d, over the %d ceiling", mfb, frameCeiling)
	}

	// Real-time health: no engine lock was ever held for longer than one
	// device update period — a wedged or evicted client must never stall
	// the data plane that other clients share.
	updatePeriod := uint64(core.MSUpdate * time.Millisecond)
	for _, d := range s.Devices {
		if mx := d.LockHoldNs.Max(); mx >= updatePeriod {
			t.Errorf("device %d: engine lock held up to %dns, update period is %dns",
				d.Index, mx, updatePeriod)
		}
	}
}
