// Router overload regression: the per-client overload policy (byte
// budget + eviction) must keep working when the wedged client sits
// behind the fleet router instead of on a direct connection. The router
// forwards backpressure instead of absorbing it: its backend→client
// pump writes under a rolling stall deadline, so a client that stops
// reading stalls the pump, the router stops draining the backend, the
// backend's per-client queue crosses its budget, and the backend evicts
// the session — while a canary client on the same router and backend
// streams unharmed. A deliberate eviction must NOT be misread as a
// backend death: the router's confirm probe sees the backend answering,
// so failovers_started stays zero and the close is classified as a
// plain session close.
package audiofile

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

func TestRouterOverloadEviction(t *testing.T) {
	const (
		rate         = 8000
		clientBudget = 32 << 10
		evictGrace   = 100 * time.Millisecond
		// The reply stream must overflow kernel socket buffering on BOTH
		// hops (backend→router and router→client) before user-space
		// queueing — and thus the eviction policy — sees backpressure.
		floodRequests = 800_000
	)

	clk := vdev.NewManualClock(rate)
	srv, err := aserver.New(aserver.Options{
		Devices:          []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:             func(string, ...any) {},
		ClientQueueBytes: clientBudget,
		EvictGrace:       evictGrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	router, err := aserver.NewRouter(aserver.RouterOptions{
		Backends:      []string{bl.Addr().String()},
		ProbeInterval: 25 * time.Millisecond,
		// The stall backstop must lose the race against the backend's
		// eviction policy — this test is about the BACKEND evicting the
		// flooder, with the router merely forwarding backpressure. Under
		// the race detector the backend needs several seconds to push
		// its reply queue over budget, so the backstop sits well beyond
		// that; it only matters for a wedged client whose backend never
		// acts at all.
		ClientWriteStall: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := router.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	routerAddr := rl.Addr().String()

	// Clock stepper so canary parks resolve.
	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.Advance(256)
			srv.Sync()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var failMu sync.Mutex
	var failErr error
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}

	// The wedged consumer, through the router: floods pipelined GetTime
	// requests and never reads a reply. Its receive buffer is pinned
	// small so the kernel cannot drain the reply stream for it.
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		nc, err := net.Dial("tcp", routerAddr)
		if err != nil {
			fail(err)
			return
		}
		defer nc.Close()
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetReadBuffer(4096) //nolint:errcheck
		}
		setup := proto.SetupRequest{
			ByteOrder: proto.LittleEndianOrder,
			Major:     proto.ProtocolMajor,
			Minor:     proto.ProtocolMinor,
		}
		if err := setup.Send(nc); err != nil {
			fail(fmt.Errorf("flooder setup: %w", err))
			return
		}
		if _, err := proto.ReadSetupReply(nc, binary.LittleEndian); err != nil {
			fail(fmt.Errorf("flooder setup reply: %w", err))
			return
		}
		var w proto.Writer
		w.Order = binary.LittleEndian
		const burst = 64
		for i := 0; i < burst; i++ {
			proto.AppendDeviceReq(&w, proto.OpGetTime, 0) //nolint:errcheck
		}
		for i := 0; i < floodRequests; i += burst {
			if _, err := nc.Write(w.Buf); err != nil {
				return // cut by the eviction: the expected outcome
			}
		}
		// Never read; wait for the reset to reach us.
		nc.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		var buf [1]byte
		for {
			if _, err := nc.Read(buf[:]); err != nil {
				return
			}
		}
	}()

	// The canary: a routed client whose every operation must succeed
	// while the flooder is being strangled next door.
	var canaryOps atomic.Int64
	var canaryWG sync.WaitGroup
	canaryWG.Add(1)
	go func() {
		defer canaryWG.Done()
		conn, err := af.NewConn(router.DialPipe())
		if err != nil {
			fail(err)
			return
		}
		defer conn.Close()
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
		if err != nil {
			fail(err)
			return
		}
		data := make([]byte, 512)
		buf := make([]byte, 256)
		for j := 0; j < 100; j++ {
			now, err := ac.GetTime()
			if err != nil {
				fail(fmt.Errorf("canary GetTime %d: %w", j, err))
				return
			}
			if _, err := ac.PlaySamples(now.Add(1024), data); err != nil {
				fail(fmt.Errorf("canary play %d: %w", j, err))
				return
			}
			if j%5 == 0 {
				if _, _, err := ac.RecordSamples(now, buf, true); err != nil {
					fail(fmt.Errorf("canary record %d: %w", j, err))
					return
				}
			}
			canaryOps.Add(1)
		}
	}()

	waitDone := func(what string, wg *sync.WaitGroup, timeout time.Duration) {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(timeout):
			t.Fatalf("%s did not finish in %v", what, timeout)
		}
	}
	waitDone("flooder", &floodWG, 60*time.Second)
	waitDone("canary", &canaryWG, 60*time.Second)
	close(stop)
	stepWG.Wait()

	failMu.Lock()
	if failErr != nil {
		t.Fatalf("workload error: %v", failErr)
	}
	failMu.Unlock()
	if n := canaryOps.Load(); n != 100 {
		t.Errorf("canary completed %d/100 iterations", n)
	}

	// Router drained (both the flooder and the canary are gone).
	var rs aserver.RouterSnapshot
	waitFor(t, 10*time.Second, "router drained", func() bool {
		rs = router.Snapshot()
		return rs.SessionsActive == 0
	})
	// A deliberate eviction is not a failover: the confirm probe found
	// the backend alive, so every close is a plain classification.
	if rs.FailoversStarted != 0 {
		t.Errorf("failovers_started = %d after a deliberate eviction, want 0", rs.FailoversStarted)
	}
	if rs.FailoversStarted != rs.FailoversCompleted+rs.FailoversAbandoned {
		t.Errorf("failover law: started %d != completed %d + abandoned %d",
			rs.FailoversStarted, rs.FailoversCompleted, rs.FailoversAbandoned)
	}
	if rs.Routes != rs.ClosedClient+rs.ClosedBackend+rs.FailoversStarted {
		t.Errorf("route law: routes %d != closed_client %d + closed_backend %d + failovers_started %d",
			rs.Routes, rs.ClosedClient, rs.ClosedBackend, rs.FailoversStarted)
	}
	router.Close()

	// The backend must have evicted the flooder, and its own books —
	// including the close-reason accounting — must balance exactly.
	s := drainSnapshot(t, srv)
	if s.Evictions < 1 {
		t.Errorf("backend evictions = %d, want >= 1 (the wedged flooder)", s.Evictions)
	}
	checkConservation(t, s)
	t.Logf("evictions %d | router routes %d closed %d/%d | canary ops %d",
		s.Evictions, rs.Routes, rs.ClosedClient, rs.ClosedBackend, canaryOps.Load())

	bl.Close()
	srv.Close()
}
