// End-to-end coverage for the stats endpoint: run a play/record workload
// against a manual-clock server, scrape the HTTP endpoint while it runs,
// and force an underrun by jumping device time past the hardware window
// — the scraped JSON must show the underrun and preemption counters
// moving and the conservation laws holding.
package audiofile

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/vdev"
)

func scrapeStats(t *testing.T, url string) aserver.Snapshot {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var snap aserver.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return snap
}

func TestStatsEndpoint(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	sl, err := srv.ListenStats("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sl.Close() })
	statsURL := "http://" + sl.Addr().String() + "/stats"

	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})

	// Scrapers race the workload: every snapshot taken mid-flight must
	// already satisfy the conservation laws (they are read under the
	// engine lock, never torn).
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := scrapeStats(t, statsURL)
			for _, d := range s.Devices {
				if d.FramesAccepted != d.FramesBuffered+d.FramesDiscarded {
					t.Errorf("mid-workload snapshot torn: accepted %d != buffered %d + discarded %d",
						d.FramesAccepted, d.FramesBuffered, d.FramesDiscarded)
					return
				}
			}
		}
	}()

	mixer, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	preemptor, err := conn.CreateAC(0, af.ACPreemption, af.ACAttributes{Preempt: true})
	if err != nil {
		t.Fatal(err)
	}

	now, err := mixer.GetTime()
	if err != nil {
		t.Fatal(err)
	}
	// 4096 frames of audio from t=now, then a preempting play over the
	// first half of it: 2048 valid frames are overwritten.
	if _, err := mixer.PlaySamples(now, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := preemptor.PlaySamples(now, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	// A short non-blocking record so the record counters move.
	if _, _, err := mixer.RecordSamples(now, make([]byte, 64), false); err != nil {
		t.Fatal(err)
	}

	// Force an underrun: jump device time far past the hardware window
	// (1024 frames) while 4096 frames of valid client data were queued.
	// The update task finds frames that slid into the past unplayed.
	clk.Advance(8192)
	srv.Sync()

	close(stop)
	scrapeWG.Wait()

	s := scrapeStats(t, statsURL)
	if len(s.Devices) != 1 {
		t.Fatalf("devices = %d, want 1", len(s.Devices))
	}
	d := s.Devices[0]
	if d.Underruns == 0 {
		t.Error("underruns did not move after device-time jump over queued audio")
	}
	if d.FramesPreempted == 0 {
		t.Error("preempted frames did not move after a preempting overlap play")
	}
	if want := uint64(4096 + 2048); d.PlayBytes != want || d.FramesAccepted != want {
		t.Errorf("play bytes %d / frames accepted %d, want %d", d.PlayBytes, d.FramesAccepted, want)
	}
	if d.FramesPreempted != 2048 {
		t.Errorf("frames preempted = %d, want 2048 (the overwritten overlap)", d.FramesPreempted)
	}
	if d.Underruns != 3072 {
		// 4096 valid frames, 1024 already written through to the
		// hardware window at play time.
		t.Errorf("underruns = %d, want 3072", d.Underruns)
	}
	if s.DispatchPlayNs.Count != 2 || s.DispatchRecordNs.Count != 1 {
		t.Errorf("dispatch counts play=%d record=%d, want 2 and 1",
			s.DispatchPlayNs.Count, s.DispatchRecordNs.Count)
	}
	checkConservation(t, s)

	// The expvar view must be valid JSON carrying the same counters.
	resp, err := http.Get("http://" + sl.Addr().String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, body)
	}
	if v, ok := vars["dev.0.play_bytes"].(float64); !ok || uint64(v) != 4096+2048 {
		t.Errorf("expvar dev.0.play_bytes = %v, want %d", vars["dev.0.play_bytes"], 4096+2048)
	}
	if _, ok := vars["dispatch.play_ns"].(map[string]any); !ok {
		t.Errorf("expvar dispatch.play_ns missing or not an object: %v", vars["dispatch.play_ns"])
	}
}
