// The PBX soak: 512 simulated telephone lines on one server, every line
// ringing with a full cadence while protocol clients watch. The test
// pins the property the timer-wheel update plane must preserve from the
// per-engine-goroutine design: no ring-cadence edge is ever missed or
// duplicated — each line's pulses and its final ring-stop arrive at the
// clients exactly once and in order — and the wheel services a
// 512-engine fleet with tick lag well under one update interval.
package audiofile

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
)

func TestPBXRingCadenceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("512-line soak in -short mode")
	}
	const (
		pulses   = 3 // ring(1) edges per line, then one ring(0) stop edge
		watchers = 4
	)
	lines := 512
	if raceDetectorOn {
		// The race detector slows the whole process several-fold, so on a
		// small machine a 512-line exchange starves the wheel shards of
		// CPU and the tick-lag assertion measures the runtime, not the
		// scheduler. A quarter fleet keeps every correctness property
		// (exact cadence edges per line) and a meaningful lag budget.
		lines = 128
	}
	specs := make([]aserver.DeviceSpec, lines)
	for i := range specs {
		specs[i] = aserver.DeviceSpec{
			Kind:       "phone",
			Name:       fmt.Sprintf("line%d", i),
			BufSeconds: 1,
		}
	}
	srv, err := aserver.New(aserver.Options{
		Devices: specs,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Each watcher owns lines w, w+watchers, ... and must observe every
	// edge on its lines: pulses ring(1) then one ring(0), in order.
	type result struct {
		w   int
		err error
	}
	results := make(chan result, watchers)
	var wg sync.WaitGroup
	for w := 0; w < watchers; w++ {
		conn, err := af.NewConn(srv.DialPipe())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		defer conn.Close()
		// Event selection is by device index, so watchers cover lines
		// past the setup reply's 255-device advertisement horizon.
		for l := w; l < lines; l += watchers {
			if err := conn.SelectEvents(l, af.MaskPhoneRing); err != nil {
				t.Fatal(err)
			}
		}
		// SelectEvents is asynchronous (buffered client-side, applied by the
		// control loop); sync before any line rings so a first-pulse drain
		// cannot race the mask registration and silently skip this watcher.
		if err := conn.Sync(); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, conn *af.Conn) {
			defer wg.Done()
			results <- result{w, watchRings(conn, w, watchers, lines, pulses)}
		}(w, conn)
	}

	// The exchange: every line rings its full cadence. Pulse rounds are
	// spaced so distinct pulses cannot be coalesced by the line (each
	// pulse is its own event regardless, but spacing also spreads the
	// event load across many update ticks).
	for p := 0; p < pulses; p++ {
		for l := 0; l < lines; l++ {
			srv.PhoneLine(l).RingPulse()
		}
		time.Sleep(30 * time.Millisecond)
	}
	for l := 0; l < lines; l++ {
		srv.PhoneLine(l).StopRinging()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("watchers did not observe every ring edge within 30s")
	}
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("watcher %d: %v", r.w, r.err)
		}
	}

	// The fleet's scheduling health: 512 engines on the wheel, and the
	// 99th-percentile fire still lands within one update interval of its
	// deadline (the phone CODEC interval is 64ms).
	snap := srv.Snapshot()
	if snap.SchedTickLagNs.Count == 0 {
		t.Fatal("no tick-lag observations; the wheel did not drive the fleet")
	}
	interval := 64 * time.Millisecond
	budget := interval
	if raceDetectorOn && runtime.NumCPU() < 4 {
		// Quarter-scaling the fleet (above) is not enough when the race
		// build has one or two cores: the server loop, the watchers, and
		// the wheel shards all time-share a starved CPU and the p99
		// measures the Go scheduler, not the wheel. Keep the assertion —
		// a wedged wheel still fails — but give it the headroom the
		// hardware denies rather than a budget the machine cannot meet.
		budget = 8 * interval
	}
	if p99 := time.Duration(snap.SchedTickLagNs.Quantile(0.99)); p99 >= budget {
		t.Fatalf("tick lag p99 %v >= budget %v (update interval %v) at %d lines",
			p99, budget, interval, lines)
	}
	if snap.SchedOverdueTasks < 0 || snap.SchedWorkersBusy < 0 {
		t.Fatalf("scheduler gauges went negative: overdue=%d busy=%d",
			snap.SchedOverdueTasks, snap.SchedWorkersBusy)
	}
}

// watchRings consumes ring events until every line owned by watcher w
// has completed its cadence, enforcing exact per-line edge sequence:
// `pulses` ring-start edges (detail 1) followed by one ring-stop
// (detail 0), nothing missing, nothing extra, never out of order.
func watchRings(conn *af.Conn, w, watchers, lines, pulses int) error {
	type lineState struct {
		starts  int
		stopped bool
	}
	states := make(map[int]*lineState)
	remaining := 0
	for l := w; l < lines; l += watchers {
		states[l] = &lineState{}
		remaining++
	}
	for remaining > 0 {
		ev, err := conn.NextEvent()
		if err != nil {
			return err
		}
		if ev.Code != af.EventPhoneRing {
			return fmt.Errorf("unexpected event code %d on line %d", ev.Code, ev.Device)
		}
		st := states[ev.Device]
		if st == nil {
			return fmt.Errorf("event for line %d not owned by this watcher", ev.Device)
		}
		switch ev.Detail {
		case 1:
			if st.stopped {
				return fmt.Errorf("line %d: ring-start after ring-stop", ev.Device)
			}
			st.starts++
			if st.starts > pulses {
				return fmt.Errorf("line %d: %d ring-start edges, cadence has %d",
					ev.Device, st.starts, pulses)
			}
		case 0:
			if st.starts != pulses {
				return fmt.Errorf("line %d: ring-stop after %d of %d pulses — a cadence edge was missed",
					ev.Device, st.starts, pulses)
			}
			if st.stopped {
				return fmt.Errorf("line %d: duplicate ring-stop", ev.Device)
			}
			st.stopped = true
			remaining--
		default:
			return fmt.Errorf("line %d: ring detail %d", ev.Device, ev.Detail)
		}
	}
	return nil
}
