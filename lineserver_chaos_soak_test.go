// Lineserver chaos soak: the networked DDA versus a hostile datagram
// network. A matrix of seeded fault profiles — clean, random loss,
// duplication+reordering, burst blackouts, and everything at once — is
// injected at the simulated box's socket while a play/record workload
// streams simulated minutes of audio across the UDP protocol on a
// manual clock. The assertions are the resilience contract from
// ROADMAP item 5:
//
//   - Audio flows gap-bounded: a floor on the fraction delivered intact
//     and a ceiling on the longest all-silence run, per profile.
//   - Silence, never garbage: every delivered byte is either the exact
//     pattern played or µ-law silence (0xFF). Stale and duplicated
//     replies must not corrupt audio.
//   - The backend never wedges: the whole profile completes under a
//     watchdog, timeouts notwithstanding.
//   - The books balance exactly once the backend is closed:
//     replies == accepted + stale + duplicate and resyncs_started ==
//     resyncs_completed + resyncs_abandoned; live snapshots satisfy the
//     one-sided forms throughout. The fault layer's own packet
//     accounting (netsim) must conserve too.
//   - Goroutines settle back to the baseline after close: no leaked
//     healer, firmware, or fault-layer goroutines.
//
// CHAOS_SEED selects the fault schedule (CI runs a small seed matrix);
// CHAOS_SUMMARY, when set, appends a per-profile recovery-counter
// summary for the build artifact.
package audiofile

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"audiofile/aserver"
	"audiofile/internal/atime"
	"audiofile/internal/lineserver"
	"audiofile/internal/netsim"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// chaosProfile is one cell of the fault matrix.
type chaosProfile struct {
	name    string
	ingress netsim.PacketFaultRates // requests arriving at the box
	egress  netsim.PacketFaultRates // replies leaving the box

	minIntact   float64 // floor on the intact-audio fraction
	maxGapIters int     // ceiling on consecutive all-silence iterations
	wantResyncs bool    // profile must push the backend through a resync
	wantStale   bool    // profile must produce stale or duplicate replies
}

var chaosMatrix = []chaosProfile{
	{
		name:      "clean",
		minIntact: 0.90, maxGapIters: 20,
	},
	{
		name:    "lossy",
		ingress: netsim.PacketFaultRates{Loss: 0.25},
		egress:  netsim.PacketFaultRates{Loss: 0.25},
		// Intact needs the play request and the whole record round trip
		// to survive: roughly (1-p)^3 ≈ 0.42 at p=0.25.
		minIntact: 0.15, maxGapIters: 100,
	},
	{
		name:      "dup-reorder",
		ingress:   netsim.PacketFaultRates{Dup: 0.3, Reorder: 0.3, ReorderSpan: 2},
		egress:    netsim.PacketFaultRates{Dup: 0.3, Reorder: 0.3, ReorderSpan: 2},
		minIntact: 0.20, maxGapIters: 100,
		wantStale: true,
	},
	{
		name:    "blackout",
		ingress: netsim.PacketFaultRates{BlackoutEvery: 150, BlackoutLen: 40},
		egress:  netsim.PacketFaultRates{BlackoutEvery: 200, BlackoutLen: 30},
		// Repeated 40-packet deaf spells must drive the health loop
		// through suspect → resyncing and back.
		minIntact: 0.25, maxGapIters: 180,
		wantResyncs: true,
	},
	{
		name:      "hostile",
		ingress:   netsim.PacketFaultRates{Loss: 0.15, Dup: 0.15, Reorder: 0.15, ReorderSpan: 2, BlackoutEvery: 250, BlackoutLen: 40},
		egress:    netsim.PacketFaultRates{Loss: 0.15, Dup: 0.15, Reorder: 0.15, ReorderSpan: 2},
		minIntact: 0.05, maxGapIters: 250,
		wantResyncs: true, wantStale: true,
	},
}

// chaosSeed returns the run's fault-schedule seed (CHAOS_SEED, default 1).
func chaosSeed(t *testing.T) int64 {
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// chaosResult is what the driver goroutine hands back to the test
// goroutine (which owns all assertions).
type chaosResult struct {
	intact    uint64 // bytes delivered matching the played pattern
	silent    uint64 // bytes delivered as µ-law silence
	corrupt   uint64 // bytes that are neither — must be zero
	maxGap    int    // longest run of all-silence iterations
	liveLawOK bool   // one-sided laws held in every live snapshot
}

func TestLineserverChaosSoak(t *testing.T) {
	const (
		rate      = 8000
		chunk     = 256             // frames (and bytes: µ-law mono) per iteration
		soakIters = 940             // ≈ 30 simulated seconds per profile
		rtTimeout = 4 * time.Millisecond
	)
	seed := chaosSeed(t)

	for pi, p := range chaosMatrix {
		p := p
		t.Run(p.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			clk := vdev.NewManualClock(rate)
			lb := vdev.NewLoopback(8192, 1, 0, 0xFF)
			fw, err := lineserver.NewFirmware(lineserver.FirmwareConfig{
				Clock: clk, Sink: lb, Source: lb,
				Faults: &netsim.PacketFaultConfig{
					Seed:    seed + int64(pi)*1000,
					Ingress: p.ingress,
					Egress:  p.egress,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			b, err := lineserver.Dial(fw.Addr(), rate,
				lineserver.WithoutExtrapolation(),
				lineserver.WithTimeout(rtTimeout),
				lineserver.WithHealthTuning(3, 6, time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}

			// The driver streams audio; the test goroutine is the watchdog.
			// A wedge anywhere in the backend shows up as the driver never
			// finishing.
			done := make(chan chaosResult, 1)
			go func() {
				var res chaosResult
				res.liveLawOK = true
				gap := 0
				buf := make([]byte, chunk)
				data := make([]byte, chunk)
				for i := 0; i < soakIters; i++ {
					tw := atime.ATime(uint32(i * chunk))
					for j := range data {
						// Canonical µ-law bytes, never silence (0xFF).
						data[j] = sampleconv.EncodeMuLaw(int16(1000 + ((i+j)%64)*100))
					}
					b.WritePlay(tw, data)
					clk.Advance(chunk)
					b.Time() // sync the box past the window
					b.ReadRecord(tw, buf)
					iterIntact := 0
					for j := range buf {
						switch buf[j] {
						case data[j]:
							res.intact++
							iterIntact++
						case 0xFF:
							res.silent++
						default:
							res.corrupt++
						}
					}
					if iterIntact == 0 {
						if gap++; gap > res.maxGap {
							res.maxGap = gap
						}
					} else {
						gap = 0
					}
					// Sprinkle register traffic (the retried op class) and
					// check the one-sided laws on a live snapshot.
					if i%64 == 32 {
						b.WriteReg(lineserver.RegOutputGain, uint32(i))
						b.ReadReg(lineserver.RegOutputGain)
						st := b.Stats()
						if st.Replies < st.Accepted+st.Stale+st.Duplicate ||
							st.ResyncsStarted < st.ResyncsCompleted+st.ResyncsAbandoned {
							res.liveLawOK = false
						}
					}
				}
				done <- res
			}()

			var res chaosResult
			select {
			case res = <-done:
			case <-time.After(90 * time.Second):
				stack := make([]byte, 1<<20)
				stack = stack[:runtime.Stack(stack, true)]
				t.Fatalf("backend wedged: profile %q did not finish %d iterations in 90s\n%s",
					p.name, soakIters, stack)
			}

			b.Close()
			st := b.Stats()
			faults := fw.Faults().Stats()
			fw.Close()

			total := res.intact + res.silent + res.corrupt
			intactFrac := float64(res.intact) / float64(total)
			t.Logf("profile %s seed %d: intact %.3f silent %.3f maxGap %d | req %d rep %d (ok %d stale %d dup %d) timeouts %d resyncs %d/%d/%d",
				p.name, seed, intactFrac, float64(res.silent)/float64(total), res.maxGap,
				st.Requests, st.Replies, st.Accepted, st.Stale, st.Duplicate,
				st.Timeouts, st.ResyncsStarted, st.ResyncsCompleted, st.ResyncsAbandoned)

			// Silence, never garbage.
			if res.corrupt != 0 {
				t.Errorf("%d corrupted bytes: stale or duplicated data leaked into audio", res.corrupt)
			}
			// Gap-bounded audio.
			if intactFrac < p.minIntact {
				t.Errorf("intact audio fraction %.3f < floor %.3f", intactFrac, p.minIntact)
			}
			if res.maxGap > p.maxGapIters {
				t.Errorf("longest silence gap %d iterations > ceiling %d", res.maxGap, p.maxGapIters)
			}
			// Conservation, exact after close.
			if st.Replies != st.Accepted+st.Stale+st.Duplicate {
				t.Errorf("reply law: replies %d != accepted %d + stale %d + duplicate %d",
					st.Replies, st.Accepted, st.Stale, st.Duplicate)
			}
			if st.ResyncsStarted != st.ResyncsCompleted+st.ResyncsAbandoned {
				t.Errorf("resync law: started %d != completed %d + abandoned %d",
					st.ResyncsStarted, st.ResyncsCompleted, st.ResyncsAbandoned)
			}
			if !res.liveLawOK {
				t.Error("one-sided conservation law violated in a live snapshot")
			}
			if !faults.Conserved() {
				t.Errorf("netsim packet accounting does not conserve: %+v", faults)
			}
			// Profile-specific health expectations.
			if p.wantResyncs && st.ResyncsStarted == 0 {
				t.Error("profile expected to trigger resyncs; none started")
			}
			if p.wantStale && st.Stale+st.Duplicate == 0 {
				t.Error("profile expected stale/duplicate replies; none classified")
			}
			if p.name != "clean" && st.Timeouts == 0 {
				t.Error("faulty profile recorded no timeouts; fault layer inert?")
			}

			// Goroutines settle: healer, firmware network thread, and the
			// fault layer must all be gone.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > baseline {
				stack := make([]byte, 1<<20)
				stack = stack[:runtime.Stack(stack, true)]
				t.Errorf("goroutines did not settle: %d > baseline %d\n%s", n, baseline, stack)
			}

			chaosSummary(t, fmt.Sprintf(
				"profile=%s seed=%d intact=%.3f max_gap=%d requests=%d replies=%d accepted=%d stale=%d duplicate=%d garbage=%d timeouts=%d slips=%d resyncs_started=%d resyncs_completed=%d resyncs_abandoned=%d resync_attempts=%d rec_silence_bytes=%d play_lost_bytes=%d state=%s\n",
				p.name, seed, intactFrac, res.maxGap,
				st.Requests, st.Replies, st.Accepted, st.Stale, st.Duplicate, st.Garbage,
				st.Timeouts, st.Slips, st.ResyncsStarted, st.ResyncsCompleted,
				st.ResyncsAbandoned, st.ResyncAttempts, st.RecSilenceBytes, st.PlayLostBytes,
				st.State))
		})
	}
}

// chaosSummary appends one line to the CHAOS_SUMMARY file (the CI build
// artifact), when configured.
func chaosSummary(t *testing.T, line string) {
	path := os.Getenv("CHAOS_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("chaos summary: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(line); err != nil {
		t.Logf("chaos summary: %v", err)
	}
}

// TestLineserverStatsExported: the backend's health counters must ride
// the afd -stats pipeline — a server with a lineserver device exposes
// them in its snapshot, satisfying the laws astat checks.
func TestLineserverStatsExported(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	fw, err := lineserver.NewFirmware(lineserver.FirmwareConfig{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fw.Close)

	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "lineserver", Name: "als0", Addr: fw.Addr(), LSNoExtrapolate: true}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	sl, err := srv.ListenStats("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sl.Close() })

	snap := scrapeStats(t, "http://"+sl.Addr().String()+"/stats")
	var ls *lineserver.BackendStats
	for _, d := range snap.Devices {
		if d.Lineserver != nil {
			ls = d.Lineserver
		}
	}
	if ls == nil {
		t.Fatal("no device in the snapshot carries lineserver health stats")
	}
	if ls.Requests == 0 || ls.Accepted == 0 {
		t.Errorf("lineserver stats empty over a live box: %+v", ls)
	}
	if ls.State != lineserver.StateHealthy {
		t.Errorf("state over a healthy box = %s", ls.State)
	}
	if ls.Replies < ls.Accepted+ls.Stale+ls.Duplicate {
		t.Errorf("exported snapshot breaks the reply law: %+v", ls)
	}
	if ls.ResyncsStarted < ls.ResyncsCompleted+ls.ResyncsAbandoned {
		t.Errorf("exported snapshot breaks the resync law: %+v", ls)
	}
}
