module audiofile

go 1.22
