// Concurrency tests for the sharded data plane: a multi-device,
// multi-client stress mix (including abrupt disconnects while a request
// is parked), a pinning test for per-connection FIFO ordering across the
// control and data planes, and a regression test for control-plane timer
// re-arming under sustained request load. All of these are meant to run
// under -race in CI.
package audiofile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

// TestShardStress runs a mixed Play/Record/GetTime workload from many
// clients across several root devices while a stepper advances the
// device clocks, with a subset of clients abruptly dropping their
// transport in the middle of a blocked (parked) record. The test's
// assertions are mostly implicit: no data race, no deadlock, no error on
// a surviving client, and a healthy server afterwards.
func TestShardStress(t *testing.T) {
	const devices = 3
	const healthy = 8
	const killers = 4
	const iters = 50

	clocks := make([]*vdev.ManualClock, devices)
	specs := make([]aserver.DeviceSpec, devices)
	for i := range specs {
		clocks[i] = vdev.NewManualClock(8000)
		specs[i] = aserver.DeviceSpec{
			Kind:     "codec",
			Name:     fmt.Sprintf("codec%d", i),
			Clock:    clocks[i],
			Loopback: true,
		}
	}
	srv, err := aserver.New(aserver.Options{Devices: specs, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	// Stepper: device time marches on while the clients hammer the
	// engines, resolving parked requests as it goes.
	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, clk := range clocks {
				clk.Advance(256)
			}
			srv.Sync()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	t.Cleanup(stepWG.Wait)
	t.Cleanup(func() { close(stop) })

	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	var wg sync.WaitGroup
	// Healthy clients: a mixed op stream that must never error.
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := af.NewConn(srv.DialPipe())
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			var attrs af.ACAttributes
			mask := uint32(0)
			if i%2 == 0 {
				mask, attrs.Preempt = af.ACPreemption, true
			}
			ac, err := conn.CreateAC(i%devices, mask, attrs)
			if err != nil {
				fail(err)
				return
			}
			data := make([]byte, 4096)
			buf := make([]byte, 256)
			for j := 0; j < iters; j++ {
				now, err := ac.GetTime()
				if err != nil {
					fail(err)
					return
				}
				switch j % 3 {
				case 0:
					if _, err := ac.PlaySamples(now.Add(1024), data); err != nil {
						fail(err)
						return
					}
				case 1:
					// Blocking record slightly ahead of the clock: parks on
					// the engine until the stepper catches up.
					if _, _, err := ac.RecordSamples(now, buf, true); err != nil {
						fail(err)
						return
					}
				case 2:
					if _, err := ac.GetTime(); err != nil {
						fail(err)
						return
					}
				}
			}
		}(i)
	}

	// Killer clients: park a record that the stepper will not reach for a
	// long time, then drop the raw transport. The server must tear down
	// the park (releasing its pinned buffers and reader) via the
	// unregister path without disturbing anyone else.
	for i := 0; i < killers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc := srv.DialPipe()
			conn, err := af.NewConn(nc)
			if err != nil {
				fail(err)
				return
			}
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(i%devices, 0, af.ACAttributes{})
			if err != nil {
				fail(err)
				return
			}
			now, err := ac.GetTime()
			if err != nil {
				fail(err)
				return
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				// Far enough ahead that the park is still live when the
				// transport drops; the error from the dead pipe is expected.
				buf := make([]byte, 256)
				ac.RecordSamples(now.Add(10_000_000), buf, true) //nolint:errcheck
			}()
			time.Sleep(5 * time.Millisecond)
			nc.Close()
			<-done
		}(i)
	}

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}

	// The server must still be fully functional: fresh client, every
	// device answers, and a round trip drains cleanly.
	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	for d := 0; d < devices; d++ {
		if _, err := conn.GetTime(d); err != nil {
			t.Fatalf("device %d unhealthy after stress: %v", d, err)
		}
	}
	if err := conn.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossPlaneFIFO pins per-connection FIFO ordering across the two
// planes: hot requests (GetTime) dispatch inline on the reader goroutine
// while control requests (SyncConnection) round-trip through the server
// loop, and replies must still come back in exact submission order. The
// test speaks the wire protocol directly so it can pipeline the whole
// interleaved batch in one write.
func TestCrossPlaneFIFO(t *testing.T) {
	const pairs = 64
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	nc := srv.DialPipe()
	defer nc.Close()
	setup := &proto.SetupRequest{
		ByteOrder: proto.LittleEndianOrder,
		Major:     proto.ProtocolMajor,
		Minor:     proto.ProtocolMinor,
	}
	if err := setup.Send(nc); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(nc)
	rep, err := proto.ReadSetupReply(rd, binary.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("setup refused: %s", rep.Reason)
	}

	// Read replies concurrently with the pipelined write (net.Pipe is
	// unbuffered), recording the order the sequence numbers come back in.
	seqs := make(chan uint16, 2*pairs)
	readErr := make(chan error, 1)
	go func() {
		defer close(seqs)
		for i := 0; i < 2*pairs; i++ {
			msg, err := proto.ReadMessage(rd, binary.LittleEndian)
			if err != nil {
				readErr <- err
				return
			}
			if msg.Reply == nil {
				readErr <- fmt.Errorf("message %d is not a reply: %+v", i, msg)
				return
			}
			seqs <- msg.Reply.Seq
		}
	}()

	w := &proto.Writer{Order: binary.LittleEndian}
	for i := 0; i < pairs; i++ {
		if err := proto.AppendDeviceReq(w, proto.OpGetTime, 0); err != nil {
			t.Fatal(err)
		}
		if err := proto.AppendEmptyReq(w, proto.OpSyncConnection, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(w.Buf); err != nil {
		t.Fatal(err)
	}

	want := uint16(1)
	for seq := range seqs {
		if seq != want {
			t.Fatalf("reply out of order: got seq %d, want %d", seq, want)
		}
		want++
	}
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if want != 2*pairs+1 {
		t.Fatalf("got %d replies, want %d", want-1, 2*pairs)
	}
}

// TestLoopRearm is the regression test for control-plane timer re-arming:
// a task scheduled on the loop (the FlashHook re-hook, 30 ms out) must
// fire promptly even while the request channel never goes idle. The old
// loop only re-armed its timer when the request channel drained, so a
// busy control plane could delay scheduled work indefinitely.
func TestLoopRearm(t *testing.T) {
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "phone", Name: "phone0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	dial := func() *af.Conn {
		c, err := af.NewConn(srv.DialPipe())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		c.SetIOErrorHandler(func(*af.Conn, error) {})
		return c
	}

	c := dial()
	if err := c.SelectEvents(0, af.MaskAllEvents); err != nil {
		t.Fatal(err)
	}
	if err := c.HookSwitch(0, true); err != nil {
		t.Fatal(err)
	}
	if ev, err := c.NextEvent(); err != nil || ev.Code != af.EventPhoneHookSwitch || ev.Detail != 1 {
		t.Fatalf("off-hook event = %+v, %v", ev, err)
	}

	// Flood the control plane from a second connection so the request
	// channel stays hot for the whole flash window.
	flood := dial()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := flood.Sync(); err != nil {
				return
			}
		}
	}()
	defer wg.Wait()
	defer close(stop)

	start := time.Now()
	if err := c.FlashHook(0, 30); err != nil {
		t.Fatal(err)
	}
	type evOrErr struct {
		ev  *af.Event
		err error
	}
	events := make(chan evOrErr, 2)
	go func() {
		for i := 0; i < 2; i++ {
			ev, err := c.NextEvent()
			events <- evOrErr{ev, err}
			if err != nil {
				return
			}
		}
	}()
	wantDetail := []uint8{0, 1} // flash down, then back up 30 ms later
	for _, want := range wantDetail {
		select {
		case e := <-events:
			if e.err != nil {
				t.Fatal(e.err)
			}
			if e.ev.Code != af.EventPhoneHookSwitch || e.ev.Detail != want {
				t.Fatalf("event = %+v, want hook switch detail %d", e.ev, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("hook event (detail %d) never arrived under load", want)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("re-hook took %v under load; the loop timer is not re-arming", elapsed)
	}
}
