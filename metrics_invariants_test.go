// Metrics invariant tests: run the shard-stress workload shapes and then
// hold the observability layer to its conservation laws. The laws are
// exact, not statistical — every frame a play request delivers is either
// buffered or discarded, every park started is completed or discarded,
// every connect is matched by a disconnect once the clients are gone —
// so any drift here means a counter has lost its single owner. Run under
// -race in CI alongside the stress tests.
package audiofile

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/netsim"
	"audiofile/internal/vdev"
)

// drainSnapshot polls until every client is gone (connects ==
// disconnects, no parks outstanding) and returns the settled snapshot.
// Client teardown is asynchronous — the reader exits, then the loop
// unregisters — so the counters converge shortly after the last Close.
func drainSnapshot(t *testing.T, srv *aserver.Server) aserver.Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := srv.Snapshot()
		parked := int64(0)
		for _, d := range s.Devices {
			parked += d.ParkedNow
		}
		if s.Connects == s.Disconnects && s.ActiveClients == 0 && parked == 0 {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not drain: connects=%d disconnects=%d active=%d parked=%d",
				s.Connects, s.Disconnects, s.ActiveClients, parked)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkConservation asserts the per-device frame and park accounting
// laws on a drained snapshot.
func checkConservation(t *testing.T, s aserver.Snapshot) {
	t.Helper()
	for _, d := range s.Devices {
		if d.FramesAccepted != d.FramesBuffered+d.FramesDiscarded {
			t.Errorf("device %d: accepted %d != buffered %d + discarded %d",
				d.Index, d.FramesAccepted, d.FramesBuffered, d.FramesDiscarded)
		}
		if d.FramesPreempted > d.FramesBuffered {
			t.Errorf("device %d: preempted %d > buffered %d",
				d.Index, d.FramesPreempted, d.FramesBuffered)
		}
		if d.ParksStarted != d.ParksCompleted+d.ParksDiscarded {
			t.Errorf("device %d: parks started %d != completed %d + discarded %d",
				d.Index, d.ParksStarted, d.ParksCompleted, d.ParksDiscarded)
		}
		// Broadcast encode-once: each chunk is encoded at least once per
		// live wire format, never zero (a chunk with no encodes would mean
		// the pump cut time-slices for nobody). One-sided because the
		// format population can change between chunks.
		if d.BcastChunks > 0 && d.BcastEncodes < d.BcastChunks {
			t.Errorf("device %d: broadcast encodes %d < chunks %d",
				d.Index, d.BcastEncodes, d.BcastChunks)
		}
		if d.BcastSubs != 0 {
			t.Errorf("device %d: %d subscriptions outstanding after drain", d.Index, d.BcastSubs)
		}
	}
	dispatched := s.DispatchPlayNs.Count + s.DispatchRecordNs.Count +
		s.DispatchGetTimeNs.Count + s.DispatchControlNs.Count
	if s.Requests != dispatched {
		t.Errorf("requests %d != dispatch observations %d", s.Requests, dispatched)
	}
	// Batching: every request is retired by exactly one dispatch batch
	// (standalone and control dispatches count as a batch of one), so on a
	// drained snapshot the batch sizes sum back to the request count.
	if s.Requests != s.DispatchBatch.Sum {
		t.Errorf("requests %d != dispatch batch sizes sum %d", s.Requests, s.DispatchBatch.Sum)
	}
}

// TestMetricsConservation runs the full stress mix — several devices,
// preempting and mixing players, blocking records resolved by a clock
// stepper, and killer clients that drop their transport mid-park — then
// asserts every conservation law on the drained counters.
func TestMetricsConservation(t *testing.T) {
	const devices = 3
	const healthy = 8
	const killers = 4
	const iters = 50

	clocks := make([]*vdev.ManualClock, devices)
	specs := make([]aserver.DeviceSpec, devices)
	for i := range specs {
		clocks[i] = vdev.NewManualClock(8000)
		specs[i] = aserver.DeviceSpec{
			Kind:  "codec",
			Name:  fmt.Sprintf("codec%d", i),
			Clock: clocks[i],
		}
	}
	srv, err := aserver.New(aserver.Options{Devices: specs, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, clk := range clocks {
				clk.Advance(256)
			}
			srv.Sync()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	t.Cleanup(stepWG.Wait)
	t.Cleanup(func() { close(stop) })

	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	var wg sync.WaitGroup
	var playBytesSent [devices]atomic.Uint64
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := af.NewConn(srv.DialPipe())
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			var attrs af.ACAttributes
			mask := uint32(0)
			if i%2 == 0 {
				mask, attrs.Preempt = af.ACPreemption, true
			}
			dev := i % devices
			ac, err := conn.CreateAC(dev, mask, attrs)
			if err != nil {
				fail(err)
				return
			}
			data := make([]byte, 4096)
			buf := make([]byte, 256)
			for j := 0; j < iters; j++ {
				now, err := ac.GetTime()
				if err != nil {
					fail(err)
					return
				}
				switch j % 3 {
				case 0:
					if _, err := ac.PlaySamples(now.Add(1024), data); err != nil {
						fail(err)
						return
					}
					playBytesSent[dev].Add(uint64(len(data)))
				case 1:
					if _, _, err := ac.RecordSamples(now, buf, true); err != nil {
						fail(err)
						return
					}
				case 2:
					if _, err := ac.GetTime(); err != nil {
						fail(err)
						return
					}
				}
			}
		}(i)
	}

	// Killer clients: park a record far in the future, then cut the
	// transport. Their parks must drain as discarded, not completed.
	for i := 0; i < killers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc := srv.DialPipe()
			conn, err := af.NewConn(nc)
			if err != nil {
				fail(err)
				return
			}
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(i%devices, 0, af.ACAttributes{})
			if err != nil {
				fail(err)
				return
			}
			now, err := ac.GetTime()
			if err != nil {
				fail(err)
				return
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				buf := make([]byte, 256)
				ac.RecordSamples(now.Add(10_000_000), buf, true) //nolint:errcheck
			}()
			time.Sleep(5 * time.Millisecond)
			nc.Close()
			<-done
		}(i)
	}

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}

	s := drainSnapshot(t, srv)
	checkConservation(t, s)

	// The workload must actually have moved the counters it claims to
	// conserve, or the laws hold vacuously.
	for _, d := range s.Devices {
		if d.FramesAccepted == 0 {
			t.Errorf("device %d: no frames accepted; workload did not exercise play", d.Index)
		}
		if d.FramesRecorded == 0 {
			t.Errorf("device %d: no frames recorded", d.Index)
		}
		// MU255 mono: one byte per frame, and no play in this mix ever
		// aborts mid-park, so wire bytes in equal frames accepted.
		if want := playBytesSent[d.Index].Load(); d.PlayBytes != want || d.FramesAccepted != want {
			t.Errorf("device %d: play bytes %d / frames accepted %d, want %d (bytes sent)",
				d.Index, d.PlayBytes, d.FramesAccepted, want)
		}
	}
	if s.DispatchPlayNs.Count == 0 || s.DispatchRecordNs.Count == 0 || s.DispatchGetTimeNs.Count == 0 {
		t.Error("hot dispatch histograms did not all move")
	}
	killed := uint64(0)
	for _, d := range s.Devices {
		killed += d.ParksDiscarded
	}
	if killed < killers {
		t.Errorf("parks discarded %d < killer clients %d", killed, killers)
	}
}

// TestMetricsFaultInjectedClients drives the server through netsim's
// deterministic fault layer over real TCP: clients whose writes arrive
// fragmented at arbitrary boundaries must see a fully correct session,
// and clients whose connection resets mid-message must be torn down
// cleanly — the conservation laws and the connect/disconnect balance
// hold either way.
func TestMetricsFaultInjectedClients(t *testing.T) {
	srv, err := aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	dialFault := func(cfg netsim.FaultConfig) net.Conn {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return netsim.NewFaultConn(nc, cfg)
	}

	var wg sync.WaitGroup
	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	// Fragmented clients: every wire byte arrives in 1..7 byte pieces
	// (splitting even the 4-byte request headers); the session must be
	// indistinguishable from a clean transport.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc := dialFault(netsim.FaultConfig{Seed: int64(1000 + i), FragmentWrites: true, MaxFragment: 7})
			conn, err := af.NewConn(fc)
			if err != nil {
				fail(fmt.Errorf("fragmented setup: %w", err))
				return
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
			if err != nil {
				fail(err)
				return
			}
			data := make([]byte, 1024)
			for j := 0; j < 20; j++ {
				now, err := ac.GetTime()
				if err != nil {
					fail(err)
					return
				}
				if _, err := ac.PlaySamples(now.Add(512), data); err != nil {
					fail(err)
					return
				}
			}
			if err := conn.Sync(); err != nil {
				fail(err)
			}
		}(i)
	}

	// Reset clients: the connection dies at a byte count chosen to land
	// inside a play request's payload. The server must unwind the
	// half-read message and unregister the client; the expected client-
	// side error is the injected reset itself.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc := dialFault(netsim.FaultConfig{Seed: int64(i), ResetAfterBytes: 300 + 50*i})
			conn, err := af.NewConn(fc)
			if err != nil {
				return // reset landed inside setup; also a valid cut
			}
			defer conn.Close()
			conn.SetIOErrorHandler(func(*af.Conn, error) {})
			ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
			if err != nil {
				return
			}
			data := make([]byte, 4096)
			for j := 0; j < 10; j++ {
				now, err := ac.GetTime()
				if err != nil {
					return
				}
				if _, err := ac.PlaySamples(now.Add(512), data); err != nil {
					return
				}
			}
		}(i)
	}

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}

	s := drainSnapshot(t, srv)
	checkConservation(t, s)
	if s.Connects < 4 {
		t.Errorf("connects = %d, want at least the 4 fragmented clients", s.Connects)
	}

	// The server must still serve a clean client.
	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	if _, err := conn.GetTime(0); err != nil {
		t.Fatalf("server unhealthy after fault injection: %v", err)
	}
	if err := conn.Sync(); err != nil {
		t.Fatal(err)
	}
}
