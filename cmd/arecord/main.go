// arecord is the AudioFile record client (§8.2): it reads samples from
// the server and writes them to a file or standard output.
//
//	arecord [-a server] [-d device] [-l length] [-t time] \
//	        [-silentlevel dB] [-silenttime s] [-printpower] [-au|-wav] [file]
//
// Because the server is always listening, a negative -t records from the
// recent past: recording can start "before" arecord begins execution,
// which is why voice applications need no get-ready beep.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/internal/cmdutil"
	"audiofile/internal/sampleconv"
	"audiofile/internal/sndfile"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "audio device to record from (default: first non-telephone device)")
	length := flag.Float64("l", -1, "length of sound to record, in seconds (default: unbounded)")
	toffset := flag.Float64("t", 0.125, "seconds in the future to start recording (negative records the past)")
	silentLevel := flag.Float64("silentlevel", -60, "level in dBm below which sound is deemed silent")
	silentTime := flag.Float64("silenttime", 3.0, "seconds of silence that end the recording")
	useSilence := flag.Bool("s", false, "stop after -silenttime seconds below -silentlevel")
	printPower := flag.Bool("printpower", false, "print input power in dBm per block on stderr")
	asAU := flag.Bool("au", false, "write a Sun .au file instead of raw data")
	asWAV := flag.Bool("wav", false, "write a RIFF .wav file instead of raw data")
	flag.Parse()

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := cmdutil.PickDevice(conn, *device)
	d := conn.Devices()[dev]

	out := os.Stdout
	if flag.NArg() > 0 {
		f, err := os.Create(flag.Arg(0))
		if err != nil {
			cmdutil.Die("arecord: %v", err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	ac, err := conn.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		cmdutil.Die("arecord: %v", err)
	}
	srate := d.RecSampleFreq
	ssize := d.RecBufType.BytesPerUnit() * d.RecNchannels

	nsamples := -1
	if *length >= 0 {
		nsamples = int(*length * float64(srate))
	}

	var collected []byte // only kept when writing a container format
	container := *asAU || *asWAV

	// Establish the initial time and schedule the first record per -t.
	t, err := ac.GetTime()
	if err != nil {
		cmdutil.Die("arecord: %v", err)
	}
	t = t.Add(int(*toffset * float64(srate)))

	bufFrames := srate / 8 // 125 ms blocks, 8 per second as in the paper
	buf := make([]byte, bufFrames*ssize)
	silentRun := 0.0
	for nsamples != 0 {
		nb := bufFrames
		if nsamples > 0 && nsamples < nb {
			nb = nsamples
		}
		_, got, err := ac.RecordSamples(t, buf[:nb*ssize], true)
		if err != nil {
			cmdutil.Die("arecord: %v", err)
		}
		t = t.Add(got / ssize)
		if nsamples > 0 {
			nsamples -= got / ssize
		}
		if container {
			collected = append(collected, buf[:got]...)
		} else {
			if _, err := w.Write(buf[:got]); err != nil {
				cmdutil.Die("arecord: write: %v", err)
			}
			// Keep the pipeline latency down, as the paper's fflush does.
			w.Flush() //nolint:errcheck
		}
		if *printPower || *useSilence {
			pow := blockPower(d.RecBufType, buf[:got])
			if *printPower {
				fmt.Fprintf(os.Stderr, "%.1f dBm\n", pow)
			}
			if *useSilence {
				if pow < *silentLevel {
					silentRun += float64(got/ssize) / float64(srate)
					if silentRun >= *silentTime {
						break
					}
				} else {
					silentRun = 0
				}
			}
		}
	}

	if container {
		snd := &sndfile.Sound{
			Info: sndfile.Info{
				Encoding: sampleconv.Encoding(d.RecBufType),
				Rate:     srate,
				Channels: d.RecNchannels,
			},
			Data: collected,
		}
		var werr error
		if *asAU {
			werr = sndfile.WriteAU(w, snd)
		} else {
			werr = sndfile.WriteWAV(w, snd)
		}
		if werr != nil {
			cmdutil.Die("arecord: %v", werr)
		}
	}
}

// blockPower measures a block's power in dBm re the digital milliwatt.
func blockPower(enc af.Encoding, block []byte) float64 {
	switch enc {
	case af.MU255:
		return afutil.PowerMu(block)
	default:
		n := len(block) / 2
		lin := make([]int16, n)
		sampleconv.ToLin16(lin, block, sampleconv.LIN16, n)
		return afutil.PowerLin16(lin)
	}
}
