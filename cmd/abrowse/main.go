// abrowse is a sound file browser (§9.6's abrowse/xplay, sans toolkit):
// it lists a directory of sound files with their formats and durations,
// and plays selections through the AudioFile server.
//
//	abrowse [-a server] [-d device] [-list] [dir]
//
// Without -list it reads selections (file numbers) from standard input
// and plays each, the terminal equivalent of the Tk browser.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"audiofile/af"
	"audiofile/internal/cmdutil"
	"audiofile/internal/sndfile"
)

type entry struct {
	name string
	snd  *sndfile.Sound
}

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "audio device")
	listOnly := flag.Bool("list", false, "list the directory and exit")
	flag.Parse()
	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}

	entries := scan(dir)
	if len(entries) == 0 {
		cmdutil.Die("abrowse: no sound files in %s", dir)
	}
	for i, e := range entries {
		fmt.Printf("%3d  %-30s %6s %6d Hz %dch %6.2fs\n",
			i, e.name, encName(e.snd.Encoding), e.snd.Rate, e.snd.Channels, e.snd.Duration())
	}
	if *listOnly {
		return
	}

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := cmdutil.PickDevice(conn, *device)
	d := conn.Devices()[dev]

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("enter a number to play, q to quit:")
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "q" || text == "quit" {
			return
		}
		i, err := strconv.Atoi(text)
		if err != nil || i < 0 || i >= len(entries) {
			fmt.Println("?")
			continue
		}
		if err := play(conn, dev, d, entries[i].snd); err != nil {
			fmt.Printf("abrowse: %v\n", err)
		}
	}
}

// scan reads the directory's recognizable sound files.
func scan(dir string) []entry {
	des, err := os.ReadDir(dir)
	if err != nil {
		cmdutil.Die("abrowse: %v", err)
	}
	var out []entry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		snd, err := sndfile.Read(f)
		f.Close()
		if err != nil {
			continue // raw or unrecognized
		}
		out = append(out, entry{name: de.Name(), snd: snd})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func encName(e interface{ String() string }) string { return e.String() }

// play sends a decoded sound to the server, checking formats.
func play(conn *af.Conn, dev int, d af.Device, snd *sndfile.Sound) error {
	if int(snd.Encoding) != int(d.PlayBufType) || snd.Channels != d.PlayNchannels {
		return fmt.Errorf("file is %v/%dch but device is %v/%dch",
			snd.Encoding, snd.Channels, d.PlayBufType, d.PlayNchannels)
	}
	ac, err := conn.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		return err
	}
	defer ac.Free() //nolint:errcheck
	now, err := ac.GetTime()
	if err != nil {
		return err
	}
	end := now.Add(d.PlaySampleFreq/10 + snd.Frames())
	if _, err := ac.PlaySamples(now.Add(d.PlaySampleFreq/10), snd.Data); err != nil {
		return err
	}
	// Wait for it to finish, so selections play one after another.
	for {
		cur, err := ac.GetTime()
		if err != nil {
			return err
		}
		if !af.TimeBefore(cur, end) {
			return nil
		}
		time.Sleep(time.Duration(af.TimeSub(end, cur)) * time.Second /
			time.Duration(d.PlaySampleFreq) / 2)
	}
}
