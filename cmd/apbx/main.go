// apbx is a PBX/IVR workload generator: the thousand-line telephone
// scenario the sharded update plane exists for. It hosts an in-process
// AudioFile server whose device complement is N simulated telephone
// lines, then plays both sides of every call:
//
//   - The exchange side drives each line's phonesim directly, as the
//     outside world would: ring cadence pulses until the line is
//     answered, Touch-Tone digits for the IVR menu, and a hangup wait.
//   - The agent side speaks the AudioFile protocol over in-process
//     connections: it selects ring/DTMF/hook events, answers with
//     HookSwitch, navigates the menu from decoded DTMF events, and
//     hangs up. Lines within the protocol's 255-device setup horizon
//     also run media: a greeting played through an AC and an
//     answering-machine record that parks server-side until the audio
//     exists.
//
// Every line is a root device with its own engine, so lines = engines:
// apbx is a direct load test of the timer wheel + update scheduler
// (goroutine inventory, tick lag, batch sizes), reported from the
// server's metrics snapshot at the end of the run.
//
//	apbx [-lines N] [-agents M] [-calls C] [-digits D] [-ring-every T]
//	     [-update-shards S] [-update-workers W] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"audiofile/af"
	"audiofile/aserver"
	"audiofile/internal/cmdutil"
)

// mediaHorizon is the setup reply's uint8 device-count ceiling: lines at
// or past it are reachable by index (events, hookswitch) but cannot
// carry an AC, so they run the no-media call flow.
const mediaHorizon = 255

func main() {
	lines := flag.Int("lines", 1000, "simulated telephone lines (one root device + engine each)")
	agents := flag.Int("agents", 8, "agent connections sharing the lines")
	calls := flag.Int("calls", 1, "calls to complete per line")
	digits := flag.Int("digits", 3, "IVR menu digits the caller punches per call")
	ringEvery := flag.Duration("ring-every", 150*time.Millisecond, "ring cadence pulse period (accelerated; US cadence is 6s)")
	updateShards := flag.Int("update-shards", 0, "timer-wheel shards (0 = auto)")
	updateWorkers := flag.Int("update-workers", 0, "update workers (0 = auto)")
	mediaEvery := flag.Int("media-every", 16, "run the media leg (greeting + answering-machine record) on every Nth answered line; 0 disables")
	verbose := flag.Bool("v", false, "log call progress")
	flag.Parse()
	if *lines < 1 || *agents < 1 || *calls < 1 {
		cmdutil.Die("apbx: -lines, -agents, and -calls must be positive")
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "apbx: "+format+"\n", args...)
		}
	}

	specs := make([]aserver.DeviceSpec, *lines)
	for i := range specs {
		specs[i] = aserver.DeviceSpec{
			Kind: "phone",
			Name: fmt.Sprintf("line%d", i),
			// A PBX line needs seconds of buffer for nothing; keep the
			// thousand-line fleet's memory honest.
			BufSeconds: 1,
		}
	}
	baseline := runtime.NumGoroutine()
	srv, err := aserver.New(aserver.Options{
		Vendor:        "audiofile-go apbx",
		Devices:       specs,
		Logf:          logf,
		UpdateShards:  *updateShards,
		UpdateWorkers: *updateWorkers,
	})
	if err != nil {
		cmdutil.Die("apbx: %v", err)
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "apbx: %d lines up, +%d goroutines over baseline\n",
		*lines, runtime.NumGoroutine()-baseline)

	pbx := &pbx{
		srv: srv, logf: logf,
		lines: *lines, calls: *calls, digits: *digits,
		ringEvery: *ringEvery, mediaEvery: *mediaEvery,
	}
	start := time.Now()
	if err := pbx.run(*agents); err != nil {
		cmdutil.Die("apbx: %v", err)
	}
	elapsed := time.Since(start)

	snap := srv.Snapshot()
	fmt.Printf("apbx: %d calls on %d lines in %.2fs (%d media legs, %d digits decoded)\n",
		pbx.completed.Load(), *lines, elapsed.Seconds(),
		pbx.mediaLegs.Load(), pbx.digitsSeen.Load())
	fmt.Printf("  update plane: %d shards, %d workers, %d engine runs\n",
		snap.SchedShards, snap.SchedWorkers, snap.SchedEngineRuns)
	fmt.Printf("  tick lag: p50 %v  p99 %v  max %v (n=%d)\n",
		time.Duration(snap.SchedTickLagNs.Quantile(0.50)),
		time.Duration(snap.SchedTickLagNs.Quantile(0.99)),
		time.Duration(snap.SchedTickLagNs.Max()), snap.SchedTickLagNs.Count)
	fmt.Printf("  batch size: p50 %d  p99 %d  max %d\n",
		snap.SchedBatchSize.Quantile(0.50),
		snap.SchedBatchSize.Quantile(0.99), snap.SchedBatchSize.Max())
	busy := time.Duration(snap.SchedWorkerBusyNs)
	util := float64(busy) / (float64(elapsed) * float64(snap.SchedWorkers)) * 100
	fmt.Printf("  worker busy: %v total (%.1f%% utilization)\n", busy, util)
	var parks, completedParks uint64
	for _, d := range snap.Devices {
		parks += d.ParksStarted
		completedParks += d.ParksCompleted
	}
	fmt.Printf("  parks: %d started, %d completed\n", parks, completedParks)
}

// pbx owns the run: shared config plus the counters both sides bump.
type pbx struct {
	srv        *aserver.Server
	logf       func(string, ...any)
	lines      int
	calls      int
	digits     int
	ringEvery  time.Duration
	mediaEvery int

	completed  atomic.Int64 // calls hung up by an agent
	mediaLegs  atomic.Int64 // greeting+record legs run
	digitsSeen atomic.Int64 // DTMF events agents decoded
}

// run drives every line through its calls: agent goroutines service
// events while exchange goroutines originate calls. Returns when every
// call has completed.
func (p *pbx) run(agents int) error {
	var wg sync.WaitGroup
	errCh := make(chan error, agents+1)
	for a := 0; a < agents; a++ {
		conn, err := af.NewConn(p.srv.DialPipe())
		if err != nil {
			return err
		}
		conn.SetIOErrorHandler(func(*af.Conn, error) {})
		defer conn.Close()
		// Line l belongs to agent l%agents. Event selection is by device
		// index and is not bounded by the advertised device table, so
		// agents watch lines past the 255-device setup horizon too.
		for l := a; l < p.lines; l += agents {
			if err := conn.SelectEvents(l,
				af.MaskPhoneRing|af.MaskPhoneDTMF|af.MaskPhoneHookSwitch); err != nil {
				return err
			}
		}
		wg.Add(1)
		go func(a int, conn *af.Conn) {
			defer wg.Done()
			if err := p.agent(a, agents, conn); err != nil {
				errCh <- fmt.Errorf("agent %d: %w", a, err)
			}
		}(a, conn)
	}

	// The exchange: one goroutine per batch of lines originates ring
	// cadence and punches digits once answered.
	const exchangeWorkers = 32
	var exWG sync.WaitGroup
	for w := 0; w < exchangeWorkers; w++ {
		exWG.Add(1)
		go func(w int) {
			defer exWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for l := w; l < p.lines; l += exchangeWorkers {
				if err := p.exchangeLine(l, rng); err != nil {
					errCh <- fmt.Errorf("exchange line %d: %w", l, err)
					return
				}
			}
		}(w)
	}
	exWG.Wait()

	// All calls originated and hung up; agents exit once each has seen
	// its share of completions. Give them a moment to drain trailing
	// events, then close the server to unblock any agent still reading.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("agents did not finish: %d/%d calls completed",
			p.completed.Load(), int64(p.lines*p.calls))
	}
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// exchangeLine originates p.calls calls on line l: ring until answered,
// punch the menu digits, wait for the agent to hang up.
func (p *pbx) exchangeLine(l int, rng *rand.Rand) error {
	line := p.srv.PhoneLine(l)
	if line == nil {
		return fmt.Errorf("no phone line behind device %d", l)
	}
	for call := 0; call < p.calls; call++ {
		// Ring cadence: a pulse per period until the agent answers.
		deadline := time.Now().Add(30 * time.Second)
		for !line.OffHook() {
			if time.Now().After(deadline) {
				return fmt.Errorf("call %d never answered", call)
			}
			line.RingPulse()
			time.Sleep(p.ringEvery)
		}
		// Answered: the caller punches the IVR menu. RemoteDigits
		// synthesizes real Touch-Tone audio; the line's decoder turns it
		// back into DTMF events for the agent.
		menu := make([]byte, p.digits)
		for i := range menu {
			menu[i] = byte('0' + rng.Intn(10))
		}
		line.RemoteDigits(string(menu))
		// Wait for the agent to hang up before the next call.
		for line.OffHook() {
			if time.Now().After(deadline) {
				return fmt.Errorf("call %d never hung up", call)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// agent services events for its lines: answer on ring, count menu
// digits, run the media leg on eligible lines, hang up when the menu is
// done.
func (p *pbx) agent(a, agents int, conn *af.Conn) error {
	type callState struct {
		inCall bool
		digits int
	}
	states := make(map[int]*callState)
	remaining := 0
	for l := a; l < p.lines; l += agents {
		states[l] = &callState{}
		remaining += p.calls
	}
	var mediaWG sync.WaitGroup
	defer mediaWG.Wait()
	for remaining > 0 {
		ev, err := conn.NextEvent()
		if err != nil {
			return err
		}
		st := states[ev.Device]
		if st == nil {
			continue
		}
		switch ev.Code {
		case af.EventPhoneRing:
			if ev.Detail == 0 || st.inCall {
				break
			}
			st.inCall = true
			st.digits = 0
			// HookSwitch is asynchronous; flush so the answer is not
			// stuck in the write buffer while we wait for the next event.
			if err := conn.HookSwitch(ev.Device, true); err != nil {
				return err
			}
			if err := conn.Flush(); err != nil {
				return err
			}
			if p.mediaEvery > 0 && ev.Device < mediaHorizon && ev.Device%p.mediaEvery == 0 {
				mediaWG.Add(1)
				go func(dev int) {
					defer mediaWG.Done()
					if err := p.mediaLeg(dev); err != nil {
						p.logf("media leg line %d: %v", dev, err)
					} else {
						p.mediaLegs.Add(1)
					}
				}(ev.Device)
			}
		case af.EventPhoneDTMF:
			if !st.inCall {
				break
			}
			p.digitsSeen.Add(1)
			st.digits++
			if st.digits >= p.digits {
				if err := conn.HookSwitch(ev.Device, false); err != nil {
					return err
				}
				if err := conn.Flush(); err != nil {
					return err
				}
				st.inCall = false
				remaining--
				p.completed.Add(1)
			}
		}
	}
	return nil
}

// mediaLeg is the answering-machine path on its own connection (a
// parked blocking record must not stall the agent's event stream, which
// shares per-connection FIFO order with every other line it watches):
// play a greeting, then block recording caller audio that does not
// exist yet — the park the scheduler has to wake precisely.
func (p *pbx) mediaLeg(dev int) error {
	mc, err := af.NewConn(p.srv.DialPipe())
	if err != nil {
		return err
	}
	defer mc.Close()
	mc.SetIOErrorHandler(func(*af.Conn, error) {})
	ac, err := mc.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		return err
	}
	now, err := ac.GetTime()
	if err != nil {
		return err
	}
	// Greeting: 100 ms of µ-law "speech" into the near future.
	greeting := make([]byte, 800)
	for i := range greeting {
		greeting[i] = byte(0x90 + (i>>3)%32)
	}
	if _, err := ac.PlaySamples(now.Add(400), greeting); err != nil {
		return err
	}
	// Answering machine: record 100 ms starting now+50ms. The tail does
	// not exist yet, so the request parks server-side and resumes off
	// the engine's wheel timer as the line clock advances.
	buf := make([]byte, 800)
	if _, _, err := ac.RecordSamples(now.Add(400), buf, true); err != nil {
		return err
	}
	return ac.Free()
}
