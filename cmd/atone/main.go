// atone is a stdio-based µ-law signal generator (§9.6): it writes a sine
// wave of a specified frequency and power level to standard output.
// "atone | aplay" is a useful technique for setting playback levels.
//
//	atone [-f freq] [-p dBm] [-l seconds] [-r rate] [-pair f2,dB2]
package main

import (
	"bufio"
	"flag"
	"math"
	"os"

	"audiofile/afutil"
	"audiofile/internal/cmdutil"
	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

func main() {
	freq := flag.Float64("f", 1000, "frequency in Hz")
	power := flag.Float64("p", 0, "power level in dBm re the digital milliwatt")
	length := flag.Float64("l", 1.0, "duration in seconds (0 = forever)")
	rate := flag.Int("r", 8000, "sampling rate in Hz")
	f2 := flag.Float64("f2", 0, "second tone frequency (0 = single tone)")
	p2 := flag.Float64("p2", 0, "second tone power in dBm")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	blockFrames := *rate / 8
	total := -1
	if *length > 0 {
		total = int(*length * float64(*rate))
	}
	// Phase accumulators persist across blocks so the stream is
	// continuous at block boundaries (the AFSingleTone contract).
	var phase1, phase2 float64
	amp1 := dsp.AmplitudeForDBm(*power)
	amp2 := dsp.AmplitudeForDBm(*p2)
	t1 := make([]float64, blockFrames)
	t2 := make([]float64, blockFrames)
	buf := make([]byte, blockFrames)
	for total != 0 {
		n := blockFrames
		if total > 0 && total < n {
			n = total
		}
		phase1 = afutil.SingleTone(*freq, amp1, *rate, t1[:n], phase1)
		if *f2 > 0 {
			phase2 = afutil.SingleTone(*f2, amp2, *rate, t2[:n], phase2)
		}
		for i := 0; i < n; i++ {
			v := t1[i]
			if *f2 > 0 {
				v += t2[i]
			}
			buf[i] = sampleconv.EncodeMuLaw(sampleconv.Clamp16(int(math.Round(v))))
		}
		if _, err := out.Write(buf[:n]); err != nil {
			cmdutil.Die("atone: %v", err)
		}
		if total > 0 {
			total -= n
		}
	}
}
