// ahs provides telephone hookswitch control (§8.4): "ahs off" takes the
// telephone off hook, answering or beginning a call; "ahs on" places it
// back on hook, terminating the call.
//
//	ahs [-a server] [-d device] on|off|query|flash
package main

import (
	"flag"
	"fmt"

	"audiofile/internal/cmdutil"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "telephone device (default: first phone device)")
	flashMs := flag.Int("ms", 0, "flash duration in milliseconds (flash only; 0 = server default)")
	flag.Parse()
	if flag.NArg() != 1 {
		cmdutil.Die("usage: ahs [-a server] [-d device] on|off|query|flash")
	}

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := cmdutil.PickPhoneDevice(conn, *device)

	switch flag.Arg(0) {
	case "on": // on hook: hang up
		if err := conn.HookSwitch(dev, false); err != nil {
			cmdutil.Die("ahs: %v", err)
		}
	case "off": // off hook: answer or originate
		if err := conn.HookSwitch(dev, true); err != nil {
			cmdutil.Die("ahs: %v", err)
		}
	case "flash":
		if err := conn.FlashHook(dev, *flashMs); err != nil {
			cmdutil.Die("ahs: %v", err)
		}
	case "query":
		offHook, loop, err := conn.QueryPhone(dev)
		if err != nil {
			cmdutil.Die("ahs: %v", err)
		}
		state := "on hook"
		if offHook {
			state = "off hook"
		}
		lc := "no loop current"
		if loop {
			lc = "loop current present"
		}
		fmt.Printf("%s, %s\n", state, lc)
	default:
		cmdutil.Die("ahs: unknown command %q", flag.Arg(0))
	}
	if err := conn.Sync(); err != nil {
		cmdutil.Die("ahs: %v", err)
	}
}
