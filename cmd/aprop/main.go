// aprop displays and modifies properties attached to AudioFile devices
// (§8.5), and can track changes to them, the inter-client communication
// mechanism of §5.9.
//
//	aprop [-a server] [-d device]                 # list properties
//	aprop [-a server] [-d device] -set NAME value # set a STRING property
//	aprop [-a server] [-d device] -delete NAME
//	aprop [-a server] [-d device] -watch          # report changes
package main

import (
	"flag"
	"fmt"

	"audiofile/af"
	"audiofile/internal/cmdutil"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", 0, "device whose properties to use")
	set := flag.String("set", "", "set a STRING property to the next argument")
	del := flag.String("delete", "", "delete a property")
	watch := flag.Bool("watch", false, "watch for property changes")
	flag.Parse()

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := *device

	if *set != "" {
		if flag.NArg() != 1 {
			cmdutil.Die("usage: aprop -set NAME value")
		}
		atom, err := conn.InternAtom(*set, false)
		if err != nil {
			cmdutil.Die("aprop: %v", err)
		}
		err = conn.ChangeProperty(dev, atom, af.AtomSTRING, 8, af.PropModeReplace,
			[]byte(flag.Arg(0)))
		if err != nil {
			cmdutil.Die("aprop: %v", err)
		}
		if err := conn.Sync(); err != nil {
			cmdutil.Die("aprop: %v", err)
		}
		return
	}
	if *del != "" {
		atom, err := conn.InternAtom(*del, true)
		if err != nil || atom == af.AtomNone {
			cmdutil.Die("aprop: no such property %q", *del)
		}
		if err := conn.DeleteProperty(dev, atom); err != nil {
			cmdutil.Die("aprop: %v", err)
		}
		if err := conn.Sync(); err != nil {
			cmdutil.Die("aprop: %v", err)
		}
		return
	}
	if *watch {
		if err := conn.SelectEvents(dev, af.MaskPropertyChange); err != nil {
			cmdutil.Die("aprop: %v", err)
		}
		for {
			ev, err := conn.NextEvent()
			if err != nil {
				cmdutil.Die("aprop: %v", err)
			}
			if ev.Code != af.EventPropertyChange {
				continue
			}
			name, _ := conn.GetAtomName(af.Atom(ev.Value))
			if ev.Detail == 1 {
				fmt.Printf("%s deleted\n", name)
				continue
			}
			v, err := conn.GetProperty(dev, af.Atom(ev.Value), af.AtomNone, false)
			if err != nil {
				continue
			}
			fmt.Printf("%s = %q\n", name, v.Data)
		}
	}

	// Default: list all properties with values.
	atoms, err := conn.ListProperties(dev)
	if err != nil {
		cmdutil.Die("aprop: %v", err)
	}
	for _, a := range atoms {
		name, _ := conn.GetAtomName(a)
		v, err := conn.GetProperty(dev, a, af.AtomNone, false)
		if err != nil {
			continue
		}
		tname, _ := conn.GetAtomName(v.Type)
		if v.Type == af.AtomSTRING {
			fmt.Printf("%s(%s) = %q\n", name, tname, v.Data)
		} else {
			fmt.Printf("%s(%s) = %x\n", name, tname, v.Data)
		}
	}
}
