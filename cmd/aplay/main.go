// aplay is the primary AudioFile play client (§8.1): it reads digital
// audio from a file or standard input and sends it to the server for
// playback at precisely scheduled device times.
//
//	aplay [-a server] [-d device] [-t time] [-g gain] [-f] [-b|-e little] [file]
//
// Raw data is passed to the server untouched — aplay needs no
// modification to work with any fixed-size encoding or channel count; the
// user must pick a device whose format matches. Self-describing .au and
// .wav files are decoded and checked against the device (the extension
// the paper calls appropriate).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"audiofile/af"
	"audiofile/internal/cmdutil"
	"audiofile/internal/sndfile"
)

func main() {
	server := flag.String("a", "", "AudioFile server (default $AUDIOFILE or $DISPLAY)")
	device := flag.Int("d", -1, "audio device to play through (default: first non-telephone device)")
	toffset := flag.Float64("t", 0.1, "seconds in the future to start playing (negative discards)")
	gain := flag.Int("g", 0, "play gain in dB, applied before mixing")
	flush := flag.Bool("f", false, "wait until the last sound has played before exiting")
	bigEnd := flag.Bool("b", false, "sample data in the file is big-endian")
	flag.Parse()

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := cmdutil.PickDevice(conn, *device)
	d := conn.Devices()[dev]

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			cmdutil.Die("aplay: %v", err)
		}
		defer f.Close()
		in = f
	}

	attrs := af.ACAttributes{PlayGain: *gain, BigEndian: *bigEnd}
	mask := uint32(af.ACPlayGain | af.ACEndian)

	var reader io.Reader = in
	// Sniff self-describing formats when reading from a file.
	if flag.NArg() > 0 {
		if snd, err := sndfile.Read(in); err == nil {
			if int(snd.Encoding) != int(d.PlayBufType) || snd.Channels != d.PlayNchannels {
				cmdutil.Die("aplay: file is %v/%dch but device %s is %v/%dch",
					snd.Encoding, snd.Channels, d.Name, d.PlayBufType, d.PlayNchannels)
			}
			if snd.Rate != d.PlaySampleFreq {
				fmt.Fprintf(os.Stderr, "aplay: warning: file rate %d != device rate %d\n",
					snd.Rate, d.PlaySampleFreq)
			}
			playBytes(conn, dev, mask, attrs, *toffset, *flush, d, &sliceReader{snd.Data})
			return
		}
		// Raw file: rewind and stream as-is.
		if _, err := in.Seek(0, io.SeekStart); err != nil {
			cmdutil.Die("aplay: %v", err)
		}
		reader = in
	}
	playBytes(conn, dev, mask, attrs, *toffset, *flush, d, reader)
}

// playBytes is the aplay inner loop (§8.1.2): establish the current
// device time, schedule the first block a little in the future, then
// schedule each successive block directly on the heels of the previous
// one so playback is continuous. Flow control is the server's: once its
// buffers hold about four seconds, PlaySamples blocks.
func playBytes(conn *af.Conn, dev int, mask uint32, attrs af.ACAttributes,
	toffset float64, flush bool, d af.Device, in io.Reader) {
	ac, err := conn.CreateAC(dev, mask, attrs)
	if err != nil {
		cmdutil.Die("aplay: %v", err)
	}
	srate := d.PlaySampleFreq
	ssize := int(d.PlayBufType.BytesPerUnit()) * d.PlayNchannels

	const bufFrames = 4000
	buf := make([]byte, bufFrames*ssize)

	// Pre-read the first buffer-full so the file-read latency does not
	// fall between GetTime and the first PlaySamples.
	n, err := io.ReadFull(in, buf)
	if n == 0 {
		if err != nil && err != io.EOF {
			cmdutil.Die("aplay: read: %v", err)
		}
		return
	}

	// Control-C must halt playback "on a dime": without special handling
	// the buffered audio in the server would keep playing for seconds
	// after exit, so the handler erases the future audio with preemptive
	// silence (§8.1.2).
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)

	t, err := ac.GetTime()
	if err != nil {
		cmdutil.Die("aplay: %v", err)
	}
	start := t.Add(int(toffset * float64(srate)))
	tp := start
	nact := t
	interrupted := false
	for {
		n -= n % ssize
		if n > 0 {
			nact, err = ac.PlaySamples(tp, buf[:n])
			if err != nil {
				cmdutil.Die("aplay: %v", err)
			}
			tp = tp.Add(n / ssize)
		}
		select {
		case <-sigCh:
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		n, err = io.ReadFull(in, buf)
		if n == 0 {
			break
		}
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			cmdutil.Die("aplay: read: %v", err)
		}
	}
	if interrupted {
		// Erase the audio still buffered in the server by writing
		// preemptive silence from "now" (nact) through tp.
		for i := range buf {
			buf[i] = 0
		}
		afSilence(d.PlayBufType, buf)
		if err := ac.ChangeAttributes(af.ACPreemption, af.ACAttributes{Preempt: true}); err == nil {
			for af.TimeBefore(nact, tp) {
				n := int(af.TimeSub(tp, nact)) * ssize
				if n > len(buf) {
					n = len(buf)
				}
				act, err := ac.PlaySamples(nact, buf[:n])
				if err != nil {
					break
				}
				nact = nact.Add(n / ssize)
				_ = act
			}
		}
		os.Exit(130)
	}
	if flush {
		// Wait until the buffered audio has all played out.
		for {
			now, err := ac.GetTime()
			if err != nil {
				cmdutil.Die("aplay: %v", err)
			}
			if !af.TimeBefore(now, tp) {
				break
			}
			remain := af.TimeSub(tp, now)
			time.Sleep(time.Duration(remain) * time.Second / time.Duration(srate) / 2)
		}
	}
}

type sliceReader struct{ data []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.data)
	s.data = s.data[n:]
	return n, nil
}

// afSilence fills buf with silence for the encoding (µ-law 0xff,
// otherwise zeros).
func afSilence(e af.Encoding, buf []byte) {
	b := byte(0)
	switch e {
	case af.MU255:
		b = 0xFF
	case af.ALAW:
		b = 0xD5
	}
	for i := range buf {
		buf[i] = b
	}
}
