// radio is the network audio broadcast client pair of §9.6: radio_mcast
// transmits audio using multicast (or unicast/broadcast) UDP, and many
// receivers run radio_recv to listen in — the original relayed radio
// broadcasts into parts of the building with poor reception.
//
//	radio -send [-a server | -stdin | -channel] [-addr 239.9.9.9:5004] [-rate 8000]
//	radio -recv [-a server] [-addr 239.9.9.9:5004] [-delay 0.3]
//
// Audio travels as µ-law datagrams with a sequence number and sender
// sample index. The receiver schedules each datagram at receiver device
// time using the sender's sample indices relative to the first packet
// heard, plus a fixed anti-jitter delay — explicit client control of time
// makes lost or reordered datagrams a non-event: their interval simply
// plays as whatever else arrived, or silence.
//
// With -channel the sender relays the server's broadcast channel (the
// device's play mix, pushed by the server) instead of recording: what
// every client is playing on the device goes out over the air. At exit
// (or SIGINT) the receiver reports how the network treated the stream:
// datagrams received, lost (sequence gaps), late (scheduled behind the
// receiver's device time, so they played partly as silence), and the
// minimum/average scheduling slack — how far ahead of the device each
// datagram was scheduled, the headroom the -delay budget actually left.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/signal"

	"audiofile/af"
	"audiofile/internal/cmdutil"
)

const hdrBytes = 12 // magic u32, seq u32, sampleIndex u32

const magic = 0x41465230 // "AFR0"

func main() {
	send := flag.Bool("send", false, "transmit audio")
	recv := flag.Bool("recv", false, "receive and play audio")
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "audio device")
	addr := flag.String("addr", "239.9.9.9:5004", "group or host:port to use")
	useStdin := flag.Bool("stdin", false, "send: read µ-law audio from stdin instead of recording")
	channel := flag.Bool("channel", false, "send: relay the device's broadcast channel instead of recording")
	rate := flag.Int("rate", 8000, "sample rate for -stdin sends")
	delay := flag.Float64("delay", 0.3, "recv: anti-jitter playout delay in seconds")
	blocks := flag.Int("n", -1, "number of blocks to send/receive before exiting")
	flag.Parse()

	switch {
	case *send == *recv:
		cmdutil.Die("radio: exactly one of -send or -recv required")
	case *useStdin && *channel:
		cmdutil.Die("radio: -stdin and -channel are mutually exclusive")
	case *send:
		doSend(*server, *device, *addr, *useStdin, *channel, *rate, *blocks)
	case *recv:
		doRecv(*server, *device, *addr, *delay, *blocks)
	}
}

func doSend(server string, device int, addr string, useStdin, channel bool, rate, blocks int) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	defer conn.Close()

	var next func(buf []byte) (int, bool) // fills a block, reports ok
	switch {
	case useStdin:
		next = func(buf []byte) (int, bool) {
			n, err := io.ReadFull(os.Stdin, buf)
			if n == 0 || (err != nil && err != io.ErrUnexpectedEOF) {
				return n, n > 0
			}
			return n, true
		}
	case channel:
		// Relay the broadcast channel: the server pushes the device's play
		// mix, already encoded, so the sender never records and never
		// competes with the clients whose audio it is relaying.
		c := cmdutil.OpenServer(server)
		defer c.Close()
		dev := cmdutil.PickDevice(c, device)
		rate = c.Devices()[dev].PlaySampleFreq
		ac, err := c.CreateAC(dev, 0, af.ACAttributes{})
		if err != nil {
			cmdutil.Die("radio: %v", err)
		}
		sub, _, err := ac.Subscribe()
		if err != nil {
			cmdutil.Die("radio: subscribe: %v", err)
		}
		var pending []byte
		next = func(buf []byte) (int, bool) {
			for len(pending) < len(buf) {
				ch, err := sub.Next()
				if err != nil {
					if len(pending) > 0 {
						n := copy(buf, pending)
						pending = pending[:0]
						return n, true
					}
					return 0, false
				}
				pending = append(pending, ch.Data...)
			}
			n := copy(buf, pending)
			pending = pending[:copy(pending, pending[n:])]
			return n, true
		}
	default:
		c := cmdutil.OpenServer(server)
		defer c.Close()
		dev := cmdutil.PickDevice(c, device)
		rate = c.Devices()[dev].RecSampleFreq
		ac, err := c.CreateAC(dev, 0, af.ACAttributes{})
		if err != nil {
			cmdutil.Die("radio: %v", err)
		}
		t, err := ac.GetTime()
		if err != nil {
			cmdutil.Die("radio: %v", err)
		}
		next = func(buf []byte) (int, bool) {
			_, n, err := ac.RecordSamples(t, buf, true)
			if err != nil {
				return 0, false
			}
			t = t.Add(n)
			return n, true
		}
	}

	block := rate / 20 // 50 ms datagrams
	pkt := make([]byte, hdrBytes+block)
	seq := uint32(0)
	sampleIndex := uint32(0)
	for i := 0; blocks < 0 || i < blocks; i++ {
		n, ok := next(pkt[hdrBytes : hdrBytes+block])
		if !ok {
			return
		}
		binary.BigEndian.PutUint32(pkt[0:], magic)
		binary.BigEndian.PutUint32(pkt[4:], seq)
		binary.BigEndian.PutUint32(pkt[8:], sampleIndex)
		if _, err := conn.Write(pkt[:hdrBytes+n]); err != nil {
			cmdutil.Die("radio: send: %v", err)
		}
		seq++
		sampleIndex += uint32(n)
		if n < block {
			return // stdin drained
		}
	}
}

func doRecv(server string, device int, addr string, delay float64, blocks int) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	var pc *net.UDPConn
	if ua.IP.IsMulticast() {
		pc, err = net.ListenMulticastUDP("udp", nil, ua)
	} else {
		pc, err = net.ListenUDP("udp", ua)
	}
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	defer pc.Close()

	c := cmdutil.OpenServer(server)
	defer c.Close()
	dev := cmdutil.PickDevice(c, device)
	rate := c.Devices()[dev].PlaySampleFreq
	ac, err := c.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}

	// SIGINT closes the socket; the read loop breaks and the stats print
	// on the way out, same as a normal -n exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		pc.Close()
	}()

	// Network-treatment accounting, reported at exit: lost is sequence
	// gaps, late is datagrams scheduled behind device time (their missed
	// prefix played as silence), and slack is how many samples ahead of
	// device time each datagram landed — the anti-jitter headroom left.
	var (
		pkts, lost, late int64
		slackSum         int64
		slackMin         = int64(math.MaxInt64)
	)

	buf := make([]byte, 64<<10)
	var base af.ATime // receiver device time of the sender's sample 0
	haveBase := false
	var baseIndex, nextSeq uint32
	for i := 0; blocks < 0 || i < blocks; i++ {
		n, _, err := pc.ReadFromUDP(buf)
		if err != nil {
			break // socket closed (SIGINT) or gone
		}
		if n < hdrBytes || binary.BigEndian.Uint32(buf[0:]) != magic {
			continue
		}
		seq := binary.BigEndian.Uint32(buf[4:])
		sampleIndex := binary.BigEndian.Uint32(buf[8:])
		data := buf[hdrBytes:n]
		now, err := ac.GetTime()
		if err != nil {
			cmdutil.Die("radio: %v", err)
		}
		if !haveBase {
			base = now.Add(int(delay * float64(rate)))
			baseIndex = sampleIndex
			nextSeq = seq
			haveBase = true
		}
		if d := int32(seq - nextSeq); d > 0 {
			lost += int64(d)
		}
		nextSeq = seq + 1
		at := base.Add(int(int32(sampleIndex - baseIndex)))
		slack := int64(int32(uint32(at) - uint32(now)))
		pkts++
		slackSum += slack
		if slack < slackMin {
			slackMin = slack
		}
		if slack < 0 {
			late++
		}
		if _, err := ac.PlaySamples(at, data); err != nil {
			cmdutil.Die("radio: %v", err)
		}
	}

	if pkts == 0 {
		fmt.Fprintln(os.Stderr, "radio: no datagrams received")
		return
	}
	toMS := func(samples int64) float64 { return float64(samples) * 1000 / float64(rate) }
	fmt.Fprintf(os.Stderr,
		"radio: %d datagrams, %d lost, %d late; scheduling slack min %.1fms avg %.1fms (delay budget %.0fms)\n",
		pkts, lost, late, toMS(slackMin), toMS(slackSum/pkts), delay*1000)
}
