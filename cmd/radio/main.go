// radio is the network audio broadcast client pair of §9.6: radio_mcast
// transmits audio using multicast (or unicast/broadcast) UDP, and many
// receivers run radio_recv to listen in — the original relayed radio
// broadcasts into parts of the building with poor reception.
//
//	radio -send [-a server | -stdin] [-addr 239.9.9.9:5004] [-rate 8000]
//	radio -recv [-a server] [-addr 239.9.9.9:5004] [-delay 0.3]
//
// Audio travels as µ-law datagrams with a sequence number and sender
// sample index. The receiver schedules each datagram at receiver device
// time using the sender's sample indices relative to the first packet
// heard, plus a fixed anti-jitter delay — explicit client control of time
// makes lost or reordered datagrams a non-event: their interval simply
// plays as whatever else arrived, or silence.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"audiofile/af"
	"audiofile/internal/cmdutil"
)

const hdrBytes = 12 // magic u32, seq u32, sampleIndex u32

const magic = 0x41465230 // "AFR0"

func main() {
	send := flag.Bool("send", false, "transmit audio")
	recv := flag.Bool("recv", false, "receive and play audio")
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "audio device")
	addr := flag.String("addr", "239.9.9.9:5004", "group or host:port to use")
	useStdin := flag.Bool("stdin", false, "send: read µ-law audio from stdin instead of recording")
	rate := flag.Int("rate", 8000, "sample rate for -stdin sends")
	delay := flag.Float64("delay", 0.3, "recv: anti-jitter playout delay in seconds")
	blocks := flag.Int("n", -1, "number of blocks to send/receive before exiting")
	flag.Parse()

	switch {
	case *send == *recv:
		cmdutil.Die("radio: exactly one of -send or -recv required")
	case *send:
		doSend(*server, *device, *addr, *useStdin, *rate, *blocks)
	case *recv:
		doRecv(*server, *device, *addr, *delay, *blocks)
	}
}

func doSend(server string, device int, addr string, useStdin bool, rate, blocks int) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	defer conn.Close()

	var next func(buf []byte) (int, bool) // fills a block, reports ok
	if useStdin {
		next = func(buf []byte) (int, bool) {
			n, err := io.ReadFull(os.Stdin, buf)
			if n == 0 || (err != nil && err != io.ErrUnexpectedEOF) {
				return n, n > 0
			}
			return n, true
		}
	} else {
		c := cmdutil.OpenServer(server)
		defer c.Close()
		dev := cmdutil.PickDevice(c, device)
		rate = c.Devices()[dev].RecSampleFreq
		ac, err := c.CreateAC(dev, 0, af.ACAttributes{})
		if err != nil {
			cmdutil.Die("radio: %v", err)
		}
		t, err := ac.GetTime()
		if err != nil {
			cmdutil.Die("radio: %v", err)
		}
		next = func(buf []byte) (int, bool) {
			_, n, err := ac.RecordSamples(t, buf, true)
			if err != nil {
				return 0, false
			}
			t = t.Add(n)
			return n, true
		}
	}

	block := rate / 20 // 50 ms datagrams
	pkt := make([]byte, hdrBytes+block)
	seq := uint32(0)
	sampleIndex := uint32(0)
	for i := 0; blocks < 0 || i < blocks; i++ {
		n, ok := next(pkt[hdrBytes : hdrBytes+block])
		if !ok {
			return
		}
		binary.BigEndian.PutUint32(pkt[0:], magic)
		binary.BigEndian.PutUint32(pkt[4:], seq)
		binary.BigEndian.PutUint32(pkt[8:], sampleIndex)
		if _, err := conn.Write(pkt[:hdrBytes+n]); err != nil {
			cmdutil.Die("radio: send: %v", err)
		}
		seq++
		sampleIndex += uint32(n)
		if n < block {
			return // stdin drained
		}
	}
}

func doRecv(server string, device int, addr string, delay float64, blocks int) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	var pc *net.UDPConn
	if ua.IP.IsMulticast() {
		pc, err = net.ListenMulticastUDP("udp", nil, ua)
	} else {
		pc, err = net.ListenUDP("udp", ua)
	}
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}
	defer pc.Close()

	c := cmdutil.OpenServer(server)
	defer c.Close()
	dev := cmdutil.PickDevice(c, device)
	rate := c.Devices()[dev].PlaySampleFreq
	ac, err := c.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		cmdutil.Die("radio: %v", err)
	}

	buf := make([]byte, 64<<10)
	var base af.ATime // receiver device time of the sender's sample 0
	haveBase := false
	var baseIndex uint32
	for i := 0; blocks < 0 || i < blocks; i++ {
		n, _, err := pc.ReadFromUDP(buf)
		if err != nil {
			cmdutil.Die("radio: recv: %v", err)
		}
		if n < hdrBytes || binary.BigEndian.Uint32(buf[0:]) != magic {
			continue
		}
		sampleIndex := binary.BigEndian.Uint32(buf[8:])
		data := buf[hdrBytes:n]
		if !haveBase {
			now, err := ac.GetTime()
			if err != nil {
				cmdutil.Die("radio: %v", err)
			}
			base = now.Add(int(delay * float64(rate)))
			baseIndex = sampleIndex
			haveBase = true
		}
		at := base.Add(int(int32(sampleIndex - baseIndex)))
		if _, err := ac.PlaySamples(at, data); err != nil {
			cmdutil.Die("radio: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "radio: done")
}
