// arouter is the AudioFile fleet router: an AF-protocol front tier that
// places each incoming session on one of a fleet of afd backends via a
// consistent-hash device directory, splices the session bytes with no
// per-chunk allocations, health-checks the backends with GetTime probes,
// and on a backend death redirects the session's client to a standby
// with a typed goodbye that af.SetReconnect turns into a transparent
// failover (the client replays its audio contexts on the replacement).
//
//	arouter -backend host:7000,host2:7000 [-n display] [-tcp] [-stats addr]
//
// Clients pick their placement key with the "#key" suffix of the server
// name (af.OpenRoute): aplay -af router:0#studio-3 hashes "studio-3"
// onto the backend ring. Keyless sessions spread by client address.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"audiofile/aserver"
	"audiofile/internal/cmdutil"
)

func main() {
	display := flag.Int("n", 0, "router number: Unix socket /tmp/.AFunix/AF<n>, TCP port 7000+<n>")
	tcp := flag.Bool("tcp", false, "also listen on TCP")
	backends := flag.String("backend", "", "comma-separated backend afd addresses (host:port TCP, or /path Unix socket); required")
	names := flag.String("names", "", "comma-separated stable directory names for the backends (default: the addresses)")
	replicas := flag.Int("replicas", 0, "virtual points per backend on the hash ring (0 = default)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period per backend")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "health-probe round-trip timeout")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a suspect backend is marked down")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "backend dial timeout for new sessions")
	clientStall := flag.Duration("client-stall", 30*time.Second, "rolling write deadline toward clients; a client that stops reading this long loses its session")
	statsAddr := flag.String("stats", "", "serve metrics (/stats JSON, /debug/vars expvar) on this address; off by default")
	verbose := flag.Bool("verbose", false, "log routing and health transitions")
	flag.Parse()

	if *backends == "" {
		cmdutil.Die("arouter: -backend is required (e.g. -backend host1:7000,host2:7000)")
	}
	opts := aserver.RouterOptions{
		Backends:         splitList(*backends),
		Replicas:         *replicas,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailThreshold:    *failThreshold,
		DialTimeout:      *dialTimeout,
		ClientWriteStall: *clientStall,
	}
	if *names != "" {
		opts.Names = splitList(*names)
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	r, err := aserver.NewRouter(opts)
	if err != nil {
		cmdutil.Die("arouter: %v", err)
	}
	defer r.Close()

	if *statsAddr != "" {
		sl, err := r.ListenStats(*statsAddr)
		if err != nil {
			cmdutil.Die("arouter: stats listener: %v", err)
		}
		fmt.Fprintf(os.Stderr, "arouter: stats on http://%s/stats\n", sl.Addr())
	}

	sockDir := "/tmp/.AFunix"
	if err := os.MkdirAll(sockDir, 0o777); err != nil {
		cmdutil.Die("arouter: %v", err)
	}
	sockPath := filepath.Join(sockDir, fmt.Sprintf("AF%d", *display))
	os.Remove(sockPath) //nolint:errcheck — stale socket from a previous run
	if _, err := r.Listen("unix", sockPath); err != nil {
		cmdutil.Die("arouter: %v", err)
	}
	fmt.Fprintf(os.Stderr, "arouter: listening on %s", sockPath)
	if *tcp {
		addr := fmt.Sprintf(":%d", 7000+*display)
		if _, err := r.Listen("tcp", addr); err != nil {
			cmdutil.Die("arouter: %v", err)
		}
		fmt.Fprintf(os.Stderr, " and tcp%s", addr)
	}
	fmt.Fprintf(os.Stderr, ", fronting %d backends\n", len(opts.Backends))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	os.Remove(sockPath) //nolint:errcheck
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
