// ahost manages the server's host access list (§8.5), the rudimentary
// privacy and security control: which machines may connect.
//
//	ahost [-a server]               # list access state
//	ahost [-a server] +10.1.2.3     # allow a host
//	ahost [-a server] -10.1.2.3     # disallow a host
//	ahost [-a server] on|off        # enable/disable access control
package main

import (
	"flag"
	"fmt"
	"net"

	"audiofile/af"
	"audiofile/internal/cmdutil"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	flag.Parse()

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()

	for _, arg := range flag.Args() {
		switch {
		case arg == "on":
			if err := conn.SetAccessControl(true); err != nil {
				cmdutil.Die("ahost: %v", err)
			}
		case arg == "off":
			if err := conn.SetAccessControl(false); err != nil {
				cmdutil.Die("ahost: %v", err)
			}
		case arg[0] == '+' || arg[0] == '-':
			h, err := parseHost(arg[1:])
			if err != nil {
				cmdutil.Die("ahost: %v", err)
			}
			if arg[0] == '+' {
				err = conn.AddHost(h)
			} else {
				err = conn.RemoveHost(h)
			}
			if err != nil {
				cmdutil.Die("ahost: %v", err)
			}
		default:
			cmdutil.Die("ahost: unknown argument %q", arg)
		}
	}
	if err := conn.Sync(); err != nil {
		cmdutil.Die("ahost: %v", err)
	}

	enabled, hosts, err := conn.ListHosts()
	if err != nil {
		cmdutil.Die("ahost: %v", err)
	}
	if enabled {
		fmt.Println("access control enabled; only these hosts may connect:")
	} else {
		fmt.Println("access control disabled; any host may connect (list when enabled):")
	}
	for _, h := range hosts {
		switch h.Family {
		case af.FamilyInternet, af.FamilyInternet6:
			fmt.Printf("  %s\n", net.IP(h.Addr))
		case af.FamilyLocal:
			fmt.Printf("  local:%s\n", h.Addr)
		default:
			fmt.Printf("  family %d: %x\n", h.Family, h.Addr)
		}
	}
}

func parseHost(s string) (af.HostEntry, error) {
	ip := net.ParseIP(s)
	if ip == nil {
		// Resolve a hostname.
		ips, err := net.LookupIP(s)
		if err != nil || len(ips) == 0 {
			return af.HostEntry{}, fmt.Errorf("can't resolve %q", s)
		}
		ip = ips[0]
	}
	if v4 := ip.To4(); v4 != nil {
		return af.HostEntry{Family: af.FamilyInternet, Addr: v4}, nil
	}
	return af.HostEntry{Family: af.FamilyInternet6, Addr: ip}, nil
}
