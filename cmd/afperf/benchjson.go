package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Machine-readable benchmark results. parseBench converts the textual
// output of `go test -bench` (or the committed bench_output.txt) into a
// JSON summary, so CI can publish numbers that tooling can diff without
// scraping the test log.

// benchResult is one benchmark line in the JSON summary.
type benchResult struct {
	Pkg         string  `json:"pkg,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// benchSummary is the top-level JSON document.
type benchSummary struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// parseBench reads go-test benchmark output and returns the summary.
func parseBench(rd io.Reader) (*benchSummary, error) {
	s := &benchSummary{Benchmarks: []benchResult{}}
	pkg := ""
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark... SKIP" line
		}
		r := benchResult{Pkg: pkg, Name: fields[0], Iterations: iters}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		s.Benchmarks = append(s.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// writeBenchJSON parses the benchmark text file at in and writes the JSON
// summary to out ("-" for stdout).
func writeBenchJSON(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := parseBench(f)
	if err != nil {
		return err
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
