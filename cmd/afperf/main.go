// afperf regenerates the paper's evaluation (Section 10): every table and
// figure, printed as paper-style rows. Like the paper, functions are
// timed by measuring the time to complete many iterations and averaging.
//
//	afperf [-exp all|fig10|fig11|fig12|fig13|table10|table11|table12|cpu] [-iters n]
//	afperf -parsebench bench_output.txt [-benchjson BENCH_server.json]
//
// The second form converts `go test -bench` output into a machine-readable
// JSON summary (ns/op, MB/s, B/op, allocs/op per benchmark) for CI
// artifacts and regression tooling.
//
// The six MIPS/Alpha host configurations become transport configurations
// on one host (see DESIGN.md): in-process pipe and Unix socket for the
// local cases, TCP loopback for the networked ones, and TCP with injected
// delay for slower wires. Absolute numbers are decades faster than the
// paper's; the shapes — who wins, where the chunking steps fall, mixing
// slower than preempt — are the reproduction targets.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/cmdutil"
	"audiofile/internal/perfrig"
)

var (
	iters  = flag.Int("iters", 1000, "iterations per measurement (the paper used 1000)")
	quick  = flag.Bool("quick", false, "fewer iterations and configurations")
	expSel = flag.String("exp", "all", "experiment: all|fig10|fig11|fig12|fig13|table10|table11|table12|cpu")

	parsebench = flag.String("parsebench", "", "parse `go test -bench` output from this file and emit JSON instead of running experiments")
	benchjson  = flag.String("benchjson", "BENCH_server.json", "output path for -parsebench JSON (\"-\" for stdout)")
)

func main() {
	flag.Parse()
	if *parsebench != "" {
		if err := writeBenchJSON(*parsebench, *benchjson); err != nil {
			cmdutil.Die("afperf: %v", err)
		}
		return
	}
	if *quick && *iters == 1000 {
		*iters = 100
	}
	configs := perfrig.StandardConfigs()
	if *quick {
		configs = configs[:3]
	}
	run := func(name string, fn func([]perfrig.Config)) {
		if *expSel == "all" || *expSel == name ||
			(strings.HasPrefix(name, "fig") && *expSel == "table"+name[3:]) {
			fn(configs)
		}
	}
	switch *expSel {
	case "all", "fig10", "fig11", "fig12", "fig13", "table10", "table11", "table12", "cpu":
	default:
		cmdutil.Die("afperf: unknown experiment %q", *expSel)
	}

	fmt.Printf("afperf: %d iterations per point\n\n", *iters)
	run("fig10", fig10)
	if *expSel == "all" || *expSel == "fig11" || *expSel == "table10" {
		fig11table10(configs)
	}
	if *expSel == "all" || *expSel == "fig12" || *expSel == "fig13" || *expSel == "table11" {
		fig1213table11(configs)
	}
	run("table12", table12)
	if *expSel == "all" || *expSel == "cpu" {
		cpuUsage()
	}
}

func newRig(cfg perfrig.Config) *perfrig.Rig {
	r, err := perfrig.New(cfg)
	if err != nil {
		cmdutil.Die("afperf: %v", err)
	}
	return r
}

// measure times fn over n iterations and returns the per-iteration time.
func measure(n int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

// fig10 reproduces Figure 10: AFGetTime() function timings.
func fig10(configs []perfrig.Config) {
	fmt.Println("Figure 10: AFGetTime() round-trip time")
	fmt.Println("  (paper: 0.8 ms local MIPS, ~2.5 ms networked MIPS/MIPS)")
	fmt.Printf("  %-16s %12s\n", "configuration", "time/call")
	for _, cfg := range configs {
		r := newRig(cfg)
		n := *iters
		if cfg.RTT > 0 && n > 200 {
			n = 200 // delay-injected configs are slow by construction
		}
		d := measure(n, func() {
			if _, err := r.Conn.GetTime(0); err != nil {
				cmdutil.Die("afperf: %v", err)
			}
		})
		fmt.Printf("  %-16s %12s\n", cfg.Name, d.Round(time.Microsecond))
		r.Close()
	}
	fmt.Println()
}

var recordSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
var playSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 24 << 10}

// fig11table10 reproduces Figure 11 (AFRecordSamples timings) and
// Table 10 (record throughput from the slope).
func fig11table10(configs []perfrig.Config) {
	fmt.Println("Figure 11: AFRecordSamples() timings (requests hit the record buffer)")
	fmt.Println("  (paper: base overhead + linear cost, jumps at 8 KiB chunk boundaries)")
	fmt.Printf("  %-16s", "configuration")
	for _, s := range recordSizes {
		fmt.Printf(" %9s", sizeLabel(s))
	}
	fmt.Println()
	type row struct {
		cfg   perfrig.Config
		times []time.Duration
	}
	var rows []row
	for _, cfg := range configs {
		if cfg.RTT > 0 {
			continue // data-transfer figures use the undelayed transports
		}
		r := newRig(cfg)
		if err := r.PrimeRecord(); err != nil {
			cmdutil.Die("afperf: %v", err)
		}
		now, _ := r.AC.GetTime()
		var times []time.Duration
		fmt.Printf("  %-16s", cfg.Name)
		for _, size := range recordSizes {
			buf := make([]byte, size)
			start := now.Add(-size)
			n := *iters
			if size >= 32<<10 {
				n = n/4 + 1
			}
			d := measure(n, func() {
				if _, got, err := r.AC.RecordSamples(start, buf, true); err != nil || got != size {
					cmdutil.Die("afperf: record %d: got %d err %v", size, got, err)
				}
			})
			times = append(times, d)
			fmt.Printf(" %9s", d.Round(time.Microsecond))
		}
		fmt.Println()
		rows = append(rows, row{cfg, times})
		r.Close()
	}
	fmt.Println()
	fmt.Println("Table 10: Record throughput (slope between 8 KiB and 64 KiB)")
	fmt.Println("  (paper: 4400 KB/s local alpha .. 580 KB/s mips/mips)")
	fmt.Printf("  %-16s %14s\n", "configuration", "KB/sec")
	for _, rw := range rows {
		i8, i64 := indexOf(recordSizes, 8<<10), indexOf(recordSizes, 64<<10)
		dt := rw.times[i64] - rw.times[i8]
		if dt <= 0 {
			dt = time.Nanosecond
		}
		tput := float64(recordSizes[i64]-recordSizes[i8]) / dt.Seconds() / 1024
		fmt.Printf("  %-16s %14.0f\n", rw.cfg.Name, tput)
	}
	fmt.Println()
}

// fig1213table11 reproduces Figures 12 and 13 (preemptive and mixing
// AFPlaySamples timings) and Table 11 (play throughput for both modes).
func fig1213table11(configs []perfrig.Config) {
	type row struct {
		cfg     perfrig.Config
		preempt []time.Duration
		mix     []time.Duration
	}
	var rows []row
	for _, cfg := range configs {
		if cfg.RTT > 0 {
			continue
		}
		rw := row{cfg: cfg}
		for _, preempt := range []bool{true, false} {
			r := newRig(cfg)
			if preempt {
				if err := r.AC.ChangeAttributes(af.ACPreemption, af.ACAttributes{Preempt: true}); err != nil {
					cmdutil.Die("afperf: %v", err)
				}
			}
			now, _ := r.AC.GetTime()
			start := now.Add(4000)
			for _, size := range playSizes {
				data := make([]byte, size)
				for i := range data {
					data[i] = byte(0x80 + i%64)
				}
				d := measure(*iters, func() {
					if _, err := r.AC.PlaySamples(start, data); err != nil {
						cmdutil.Die("afperf: %v", err)
					}
				})
				if preempt {
					rw.preempt = append(rw.preempt, d)
				} else {
					rw.mix = append(rw.mix, d)
				}
			}
			r.Close()
		}
		rows = append(rows, rw)
	}

	for _, fig := range []struct {
		title string
		pick  func(row) []time.Duration
	}{
		{"Figure 12: Preemptive AFPlaySamples() timings (replies suppressed; near-linear)",
			func(r row) []time.Duration { return r.preempt }},
		{"Figure 13: Mixing AFPlaySamples() timings (server mixing cost visible)",
			func(r row) []time.Duration { return r.mix }},
	} {
		fmt.Println(fig.title)
		fmt.Printf("  %-16s", "configuration")
		for _, s := range playSizes {
			fmt.Printf(" %9s", sizeLabel(s))
		}
		fmt.Println()
		for _, rw := range rows {
			fmt.Printf("  %-16s", rw.cfg.Name)
			for _, d := range fig.pick(rw) {
				fmt.Printf(" %9s", d.Round(time.Microsecond))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("Table 11: Play throughput (slope between 1 KiB and 16 KiB)")
	fmt.Println("  (paper: preempt always faster than mixing; e.g. alpha 5500 vs 2500 KB/s)")
	fmt.Printf("  %-16s %12s %12s\n", "configuration", "Mix KB/s", "Preempt KB/s")
	i1, i16 := indexOf(playSizes, 1<<10), indexOf(playSizes, 16<<10)
	for _, rw := range rows {
		mixT := slopeTput(playSizes[i1], playSizes[i16], rw.mix[i1], rw.mix[i16])
		preT := slopeTput(playSizes[i1], playSizes[i16], rw.preempt[i1], rw.preempt[i16])
		fmt.Printf("  %-16s %12.0f %12.0f\n", rw.cfg.Name, mixT, preT)
	}
	fmt.Println()
}

// table12 reproduces Table 12: the open-loop record/play loopback
// iteration time of §10.1.4.
func table12(configs []perfrig.Config) {
	fmt.Println("Table 12: Open-loop record/play loopback iteration")
	fmt.Println("  (paper: 0.87 ms local alpha .. 3.45 ms mips/mips)")
	fmt.Printf("  %-16s %12s\n", "configuration", "time/iter")
	for _, cfg := range configs {
		r := newRig(cfg)
		if err := r.PrimeRecord(); err != nil {
			cmdutil.Die("afperf: %v", err)
		}
		next, _ := r.AC.GetTime()
		buf := make([]byte, 8000)
		n := *iters
		if cfg.RTT > 0 && n > 200 {
			n = 200
		}
		d := measure(n, func() {
			r.Clk.Advance(160)
			now, got, err := r.AC.RecordSamples(next, buf[:160], false)
			if err != nil {
				cmdutil.Die("afperf: %v", err)
			}
			if got > 0 {
				if _, err := r.AC.PlaySamples(next.Add(4000), buf[:got]); err != nil {
					cmdutil.Die("afperf: %v", err)
				}
			}
			next = now
		})
		fmt.Printf("  %-16s %12s\n", cfg.Name, d.Round(time.Microsecond))
		r.Close()
	}
	fmt.Println()
}

// cpuUsage reproduces §10.2: process CPU while the server is quiescent
// versus while streaming audio in real time. (Client and server share
// the process here, so the figure bounds the paper's server-only load
// from above.)
func cpuUsage() {
	fmt.Println("CPU usage (§10.2): process CPU while quiescent vs streaming")
	fmt.Println("  (paper: quiescent server ~0%; CODEC clients a few percent of a 1993 CPU)")

	window := 2 * time.Second
	if *quick {
		window = time.Second
	}

	// Quiescent: a real-time server with no clients doing anything.
	func() {
		r, err := perfrig.New(perfrig.Config{Name: "idle", Transport: "pipe"})
		if err != nil {
			cmdutil.Die("afperf: %v", err)
		}
		defer r.Close()
		pct := cpuPercentOver(window, func() { time.Sleep(window) })
		fmt.Printf("  %-28s %6.2f%%\n", "quiescent server", pct)
	}()

	// Streaming: an aplay-style client pushing a continuous 8 kHz CODEC
	// stream against a real-time clock.
	func() {
		srv, conn, ac := realtimeRig()
		defer srv()
		defer conn.Close()
		rate := 8000
		tone := make([]byte, rate/4)
		afutil.TonePair(440, -13, 550, -13, 0, rate, tone)
		now, _ := ac.GetTime()
		t := now.Add(rate / 4)
		pct := cpuPercentOver(window, func() {
			deadline := time.Now().Add(window)
			for time.Now().Before(deadline) {
				if _, err := ac.PlaySamples(t, tone); err != nil {
					cmdutil.Die("afperf: %v", err)
				}
				t = t.Add(len(tone))
				// The server's 4 s buffer gives way more slack than this
				// pacing needs; sleep roughly one block.
				time.Sleep(time.Duration(len(tone)) * time.Second / time.Duration(rate) / 2)
			}
		})
		fmt.Printf("  %-28s %6.2f%%\n", "8 kHz CODEC play stream", pct)
	}()
	fmt.Println()
}

// realtimeRig builds a real-clock server + client for the CPU test.
func realtimeRig() (closeFn func(), conn *af.Conn, ac *af.AC) {
	srv, err := perfrigRealtime()
	if err != nil {
		cmdutil.Die("afperf: %v", err)
	}
	conn, err = af.NewConn(srv.DialPipe())
	if err != nil {
		cmdutil.Die("afperf: %v", err)
	}
	ac, err = conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		cmdutil.Die("afperf: %v", err)
	}
	return srv.Close, conn, ac
}

// perfrigRealtime builds a real-clock single-codec server for the CPU
// streaming test.
func perfrigRealtime() (*aserver.Server, error) {
	return aserver.New(aserver.Options{
		Devices: []aserver.DeviceSpec{{Kind: "codec", Name: "codec0", Loopback: true}},
		Logf:    func(string, ...any) {},
	})
}

func sizeLabel(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return len(xs) - 1
}

func slopeTput(s1, s2 int, t1, t2 time.Duration) float64 {
	dt := t2 - t1
	if dt <= 0 {
		dt = time.Nanosecond
	}
	return float64(s2-s1) / dt.Seconds() / 1024
}

// cpuPercentOver runs fn and returns the process CPU consumed during it
// as a percentage of one core's wall time.
func cpuPercentOver(window time.Duration, fn func()) float64 {
	before := processCPU()
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	used := processCPU() - before
	if elapsed <= 0 {
		return 0
	}
	return 100 * used.Seconds() / elapsed.Seconds()
}

// processCPU reads the process's cumulative user+system CPU time from
// /proc/self/stat (fields 14 and 15, in clock ticks).
func processCPU() time.Duration {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	// The comm field can contain spaces; skip past the closing paren.
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(s[i+1:])
	// After ')', field 0 is state; utime is field 11, stime field 12.
	if len(fields) < 13 {
		return 0
	}
	var utime, stime int64
	fmt.Sscanf(fields[11], "%d", &utime) //nolint:errcheck
	fmt.Sscanf(fields[12], "%d", &stime) //nolint:errcheck
	const hz = 100                       // USER_HZ on Linux
	return time.Duration(utime+stime) * time.Second / hz
}
