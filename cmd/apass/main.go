// apass records from a device on one AudioFile server and, after a small
// controlled delay, plays back on a device of another (§8.3). It is not a
// teleconferencing application, but it solves teleconferencing's
// fundamental problems: communicating with multiple audio servers,
// managing end-to-end delay, and managing multiple clock domains.
//
//	apass [-ia server] [-oa server] [-id dev] [-od dev] [-delay s] \
//	      [-aj s] [-buffering s] [-gain dB] [-log] [-n blocks]
//
// The end-to-end delay is packetization + transport + anti-jitter. apass
// tracks the drift between the transmit and receive sample clocks by
// watching the receiver-side slack, and resynchronizes (with an audible
// blip) when it leaves the ±aj tolerance band.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"audiofile/af"
	"audiofile/internal/cmdutil"
)

func main() {
	inServer := flag.String("ia", "", "server to record from (default $AUDIOFILE)")
	outServer := flag.String("oa", "", "server to play to (default $AUDIOFILE)")
	inDev := flag.Int("id", -1, "input device (default: first non-telephone)")
	outDev := flag.Int("od", -1, "output device (default: first non-telephone)")
	delay := flag.Float64("delay", 0.3, "record-to-playback delay in seconds (min buffering+aj, max 3.0)")
	aj := flag.Float64("aj", 0.1, "anti-jitter tolerance for clock drift, in seconds (0..1)")
	buffering := flag.Float64("buffering", 0.2, "per-operation block size in seconds (0.1..0.5)")
	gain := flag.Int("gain", 0, "playback gain in dB (-30..30)")
	logFlag := flag.Bool("log", false, "log resynchronizations on standard output")
	blocks := flag.Int("n", -1, "number of blocks to pass before exiting (default: forever)")
	paramFile := flag.String("f", "", "re-read delay/buffering/aj/gain from this file on SIGUSR1")
	flag.Parse()

	if *buffering < 0.1 {
		*buffering = 0.1
	}
	if *buffering > 0.5 {
		*buffering = 0.5
	}
	if *aj < 0 {
		*aj = 0
	}
	if *aj > 1 {
		*aj = 1
	}
	if *delay < *buffering+*aj {
		*delay = *buffering + *aj
	}
	if *delay > 3.0 {
		*delay = 3.0
	}

	faud := cmdutil.OpenServer(*inServer)
	defer faud.Close()
	taud := faud
	if *outServer != "" && *outServer != *inServer {
		taud = cmdutil.OpenServer(*outServer)
		defer taud.Close()
	}

	fdev := cmdutil.PickDevice(faud, *inDev)
	tdev := cmdutil.PickDevice(taud, *outDev)

	params := Params{
		Delay: *delay, AJ: *aj, Buffering: *buffering, Gain: *gain,
		Log: *logFlag, Blocks: *blocks, Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *paramFile != "" {
		// §8.3.1: another process (a Tk panel, EMACS keybindings) can
		// retune a running apass by rewriting the file and sending
		// SIGUSR1 — a multi-process way to act multi-threaded.
		reload := make(chan Update, 1)
		params.Reload = reload
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, syscall.SIGUSR1)
		go func() {
			for range sigCh {
				if u, err := ReadParamFile(*paramFile); err == nil {
					select {
					case reload <- u:
					default:
					}
				} else {
					fmt.Fprintf(os.Stderr, "apass: %v\n", err)
				}
			}
		}()
	}
	n, err := Pass(faud, taud, fdev, tdev, params)
	if err != nil {
		cmdutil.Die("apass: %v", err)
	}
	if *logFlag {
		fmt.Printf("apass: %d blocks passed\n", n)
	}
	_ = os.Stdout
}

// Params are the knobs of the apass inner loop.
type Params struct {
	Delay     float64 // end-to-end delay target in seconds
	AJ        float64 // anti-jitter tolerance in seconds
	Buffering float64 // block size in seconds
	Gain      int     // playback gain in dB
	Log       bool
	Blocks    int // block count, or -1 for forever
	Logf      func(string, ...any)

	// Reload, when non-nil, delivers parameter updates applied between
	// blocks (the -f / SIGUSR1 mechanism).
	Reload <-chan Update

	// Resyncs is incremented for every clock resynchronization (visible
	// to tests).
	Resyncs int
}

// Update is a runtime parameter change for a running Pass loop. Nil
// fields leave the value alone.
type Update struct {
	Delay     *float64
	AJ        *float64
	Buffering *float64
	Gain      *int
}

// ReadParamFile parses the apass parameter file: one "keyword value" pair
// per line, keywords delay, buffering, aj, and gain.
func ReadParamFile(path string) (Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return Update{}, err
	}
	defer f.Close()
	var u Update
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return Update{}, fmt.Errorf("bad value %q for %s", fields[1], fields[0])
		}
		switch fields[0] {
		case "delay":
			u.Delay = &v
		case "buffering":
			u.Buffering = &v
		case "aj":
			u.AJ = &v
		case "gain":
			g := int(v)
			u.Gain = &g
		}
	}
	return u, sc.Err()
}

// sliphist is the circular history of recent delay observations (§8.3.2).
const sliphist = 4

// Pass runs the apass inner loop between two connections. It returns the
// number of blocks passed.
func Pass(faud, taud *af.Conn, fdev, tdev int, p Params) (int, error) {
	fd := faud.Devices()[fdev]
	td := taud.Devices()[tdev]
	if fd.RecBufType != td.PlayBufType || fd.RecNchannels != td.PlayNchannels {
		return 0, fmt.Errorf("device formats differ (%v/%d vs %v/%d)",
			fd.RecBufType, fd.RecNchannels, td.PlayBufType, td.PlayNchannels)
	}
	fsrate := fd.RecSampleFreq
	fssize := fd.RecBufType.BytesPerUnit() * fd.RecNchannels

	fac, err := faud.CreateAC(fdev, af.ACRecordGain, af.ACAttributes{})
	if err != nil {
		return 0, err
	}
	tac, err := taud.CreateAC(tdev, af.ACPlayGain, af.ACAttributes{PlayGain: p.Gain})
	if err != nil {
		return 0, err
	}

	delayInSamples := int(p.Delay * float64(fsrate))
	ajSamples := int(p.AJ * float64(fsrate))
	delayLower := delayInSamples - ajSamples
	delayUpper := delayInSamples + ajSamples
	samplesBuf := int(p.Buffering * float64(fsrate))
	buf := make([]byte, samplesBuf*fssize)

	ft, err := fac.GetTime()
	if err != nil {
		return 0, err
	}
	tt0, err := tac.GetTime()
	if err != nil {
		return 0, err
	}
	tt := tt0.Add(delayInSamples)

	var hist [sliphist]int
	for i := range hist {
		hist[i] = delayInSamples // seed so startup does not look like drift
	}
	next := 0
	passed := 0
	for p.Blocks < 0 || passed < p.Blocks {
		// Apply any pending runtime parameter update between blocks.
		if p.Reload != nil {
			select {
			case u := <-p.Reload:
				if u.Delay != nil {
					delayInSamples = int(*u.Delay * float64(fsrate))
				}
				if u.AJ != nil {
					ajSamples = int(*u.AJ * float64(fsrate))
				}
				delayLower = delayInSamples - ajSamples
				delayUpper = delayInSamples + ajSamples
				if u.Buffering != nil {
					samplesBuf = int(*u.Buffering * float64(fsrate))
					buf = make([]byte, samplesBuf*fssize)
				}
				if u.Gain != nil {
					if err := tac.ChangeAttributes(af.ACPlayGain,
						af.ACAttributes{PlayGain: *u.Gain}); err != nil {
						return passed, err
					}
				}
				// Changed targets mean the old slip history is stale.
				tt = tt0 // recomputed below from the receiver clock
				if now, err := tac.GetTime(); err == nil {
					tt = now.Add(delayInSamples)
				}
				for i := range hist {
					hist[i] = delayInSamples
				}
				if p.Log && p.Logf != nil {
					p.Logf("apass: parameters updated (delay %d samples, aj %d)", delayInSamples, ajSamples)
				}
			default:
			}
		}
		// Record a block from the source server; its pacing is the flow
		// control of the whole loop.
		_, n, err := fac.RecordSamples(ft, buf, true)
		if err != nil {
			return passed, err
		}
		if n < len(buf) {
			return passed, fmt.Errorf("short record (%d of %d bytes)", n, len(buf))
		}
		// Play it on the sink server, scheduled delay samples ahead.
		tactt, err := tac.PlaySamples(tt, buf)
		if err != nil {
			return passed, err
		}
		// tt-tactt estimates the current receiver-side slack; average the
		// last few and resynchronize if drift leaves the tolerance band.
		hist[next] = int(af.TimeSub(tt, tactt))
		next = (next + 1) % sliphist
		slip := 0
		for _, v := range hist {
			slip += v
		}
		slip /= sliphist
		if passed >= sliphist && (slip < delayLower || slip >= delayUpper) {
			tt = tactt.Add(delayInSamples)
			p.Resyncs++
			// Restart the average: pre-resync observations would otherwise
			// keep the mean out of band and trigger spurious resyncs.
			for i := range hist {
				hist[i] = delayInSamples
			}
			if p.Log && p.Logf != nil {
				p.Logf("apass: resync (slip %d samples, want %d..%d)", slip, delayLower, delayUpper)
			}
		}
		ft = ft.Add(samplesBuf)
		tt = tt.Add(samplesBuf)
		passed++
	}
	return passed, nil
}
