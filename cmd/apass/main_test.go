package main

import (
	"os"
	"strings"
	"testing"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/aserver"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// newServer builds a single-codec server with the given source, sink and
// clock skew, and returns a connection to it.
func newServer(t *testing.T, ppm float64, src vdev.RecordSource, sink vdev.PlaySink) (*aserver.Server, *af.Conn) {
	t.Helper()
	srv, err := aserver.New(aserver.Options{
		Logf: t.Logf,
		Devices: []aserver.DeviceSpec{
			{Kind: "codec", Name: "codec0", PPM: ppm, Source: src, Sink: sink},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return srv, c
}

func TestPassMovesAudio(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	mic := vdev.SineSource{Freq: 700, Amp: 6000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	_, faud := newServer(t, 0, mic, nil)
	_, taud := newServer(t, 0, nil, speaker)

	p := Params{Delay: 0.3, AJ: 0.1, Buffering: 0.1, Blocks: 10}
	n, err := Pass(faud, taud, 0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("passed %d blocks, want 10", n)
	}
	heard, _ := speaker.Bytes()
	if p := afutil.PowerMu(heard); p < -30 {
		t.Errorf("speaker heard only %.1f dBm", p)
	}
}

func TestPassResynchronizesUnderDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	mic := vdev.SineSource{Freq: 700, Amp: 6000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	// A wildly fast receiver clock (5000 ppm) drifts 4 samples per
	// 100 ms block; with a ±10 ms (80-sample) band the loop must resync
	// within the 40-block (4 s) run.
	_, faud := newServer(t, 0, mic, nil)
	_, taud := newServer(t, 5000, nil, &vdev.CaptureSink{Max: 1 << 20})

	resyncCount := 0
	p := Params{Delay: 0.2, AJ: 0.01, Buffering: 0.1, Blocks: 40, Log: true,
		Logf: func(format string, args ...any) { resyncCount++ }}
	if _, err := Pass(faud, taud, 0, 0, p); err != nil {
		t.Fatal(err)
	}
	if resyncCount == 0 {
		t.Error("no resynchronization despite 5000 ppm clock drift")
	}
}

func TestPassRejectsMismatchedDevices(t *testing.T) {
	srv, err := aserver.New(aserver.Options{
		Logf: t.Logf,
		Devices: []aserver.DeviceSpec{
			{Kind: "codec", Name: "codec0"},
			{Kind: "hifi", Name: "hifi0"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := Pass(c, c, 0, 1, Params{Delay: 0.3, AJ: 0.1, Buffering: 0.1, Blocks: 1}); err == nil {
		t.Error("mismatched formats accepted")
	}
}

func TestReadParamFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/params"
	content := "delay 0.5\nbuffering 0.2\naj 0.05\ngain -6\njunk line here\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := ReadParamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if u.Delay == nil || *u.Delay != 0.5 {
		t.Error("delay not parsed")
	}
	if u.Buffering == nil || *u.Buffering != 0.2 {
		t.Error("buffering not parsed")
	}
	if u.AJ == nil || *u.AJ != 0.05 {
		t.Error("aj not parsed")
	}
	if u.Gain == nil || *u.Gain != -6 {
		t.Error("gain not parsed")
	}
	// Bad values error.
	os.WriteFile(path, []byte("delay oops\n"), 0o644)
	if _, err := ReadParamFile(path); err == nil {
		t.Error("bad value accepted")
	}
	if _, err := ReadParamFile(dir + "/nonexistent"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPassRuntimeReload(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	mic := vdev.SineSource{Freq: 700, Amp: 6000, Rate: 8000, Enc: sampleconv.MU255, Ch: 1}
	speaker := &vdev.CaptureSink{Max: 1 << 20}
	_, faud := newServer(t, 0, mic, nil)
	_, taud := newServer(t, 0, nil, speaker)

	reload := make(chan Update, 1)
	newDelay := 0.6
	newGain := -12
	reload <- Update{Delay: &newDelay, Gain: &newGain}
	logged := 0
	p := Params{Delay: 0.3, AJ: 0.1, Buffering: 0.1, Blocks: 6, Reload: reload,
		Log: true, Logf: func(format string, args ...any) {
			if strings.Contains(format, "parameters updated") {
				logged++
			}
		}}
	if _, err := Pass(faud, taud, 0, 0, p); err != nil {
		t.Fatal(err)
	}
	if logged != 1 {
		t.Errorf("reload applied %d times, want 1", logged)
	}
}
