// apower is a stdio-based signal power meter (§9.6): it reads µ-law
// samples from standard input and prints the power of each block in dBm
// relative to the CCITT digital milliwatt (or, with -clip, relative to a
// sine 3.16 dB below the digital clipping level).
//
//	arecord | apower
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"audiofile/afutil"
	"audiofile/internal/cmdutil"
)

func main() {
	rate := flag.Int("r", 8000, "sampling rate (sets the block size)")
	clip := flag.Bool("clip", false, "report dB relative to 3.16 dB below clipping instead of dBm")
	flag.Parse()

	block := *rate / 8 // 8 blocks per second, as arecord -printpower
	buf := make([]byte, block)
	for {
		n, err := io.ReadFull(os.Stdin, buf)
		if n > 0 {
			p := afutil.PowerMu(buf[:n])
			if *clip {
				p -= 3.16
			}
			fmt.Printf("%.1f\n", p)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return
		}
		if err != nil {
			cmdutil.Die("apower: %v", err)
		}
	}
}
