// alsatoms displays the atoms defined by the server (§8.5): the built-in
// atoms of Table 2 plus anything clients have interned.
//
//	alsatoms [-a server]
package main

import (
	"flag"
	"fmt"

	"audiofile/af"
	"audiofile/internal/cmdutil"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	flag.Parse()

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	// Silence async error output: probing past the last atom is expected.
	conn.SetErrorHandler(func(*af.Conn, *af.ProtoError) {})

	for id := af.Atom(1); ; id++ {
		name, err := conn.GetAtomName(id)
		if err != nil {
			break // first unknown id: done
		}
		fmt.Printf("%d\t%s\n", id, name)
	}
}
