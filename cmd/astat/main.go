// astat polls an AudioFile server's stats endpoint (afd -stats) and
// renders a live one-line-per-device summary, in the spirit of vmstat:
//
//	astat [-a host:port] [-i interval] [-n count] [-once]
//
// Each tick prints one line per device with the deltas since the last
// scrape (bytes and frames per interval, underruns, parks) plus the
// dispatch p99 for the hot ops. -once prints a single absolute snapshot
// and exits, which is also the scriptable mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"audiofile/aserver"
	"audiofile/internal/cmdutil"
)

var (
	addr     = flag.String("a", "localhost:7800", "stats address of the server (afd -stats)")
	interval = flag.Duration("i", time.Second, "polling interval")
	count    = flag.Int("n", 0, "number of intervals to print (0 = until interrupted)")
	once     = flag.Bool("once", false, "print one absolute snapshot and exit")
)

func main() {
	flag.Parse()
	url := "http://" + *addr + "/stats"

	prev, err := scrape(url)
	if err != nil {
		cmdutil.Die("astat: %v", err)
	}
	if *once {
		printAbsolute(prev)
		return
	}

	header()
	for tick := 0; *count == 0 || tick < *count; tick++ {
		time.Sleep(*interval)
		cur, err := scrape(url)
		if err != nil {
			cmdutil.Die("astat: %v", err)
		}
		if tick%20 == 0 && tick > 0 {
			header()
		}
		printDelta(prev, cur, *interval)
		prev = cur
	}
}

// scrape fetches and decodes one snapshot.
func scrape(url string) (aserver.Snapshot, error) {
	var snap aserver.Snapshot
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func header() {
	fmt.Printf("%-10s %9s %9s %9s %7s %6s %6s %6s %9s %9s\n",
		"device", "play-B/s", "rec-B/s", "sil-f/s", "under", "parks", "queued", "errs", "play-p99", "lock-p99")
}

// printDelta renders one interval: per-device rates from the counter
// deltas, with the server-wide columns folded into the first row.
func printDelta(prev, cur aserver.Snapshot, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	prevDev := make(map[int]aserver.DeviceStats, len(prev.Devices))
	for _, d := range prev.Devices {
		prevDev[d.Index] = d
	}
	for i, d := range cur.Devices {
		p := prevDev[d.Index]
		errs := ""
		if i == 0 {
			errs = fmt.Sprintf("%d", cur.ClientErrors-prev.ClientErrors)
		}
		fmt.Printf("%-10s %9.0f %9.0f %9.0f %7d %6d %6d %6s %9s %9s\n",
			d.Name,
			float64(d.PlayBytes-p.PlayBytes)/secs,
			float64(d.RecBytes-p.RecBytes)/secs,
			float64(d.PlaySilenceFilled-p.PlaySilenceFilled)/secs,
			d.Underruns-p.Underruns,
			d.ParksStarted-p.ParksStarted,
			d.ParkedNow,
			errs,
			ns(cur.DispatchPlayNs.Quantile(0.99)),
			ns(d.LockWaitNs.Quantile(0.99)))
	}
}

// printAbsolute renders one snapshot's cumulative counters.
func printAbsolute(s aserver.Snapshot) {
	fmt.Printf("requests %d  connects %d  disconnects %d  active %d  errors %d  overflows %d\n",
		s.Requests, s.Connects, s.Disconnects, s.ActiveClients, s.ClientErrors, s.QueueOverflows)
	fmt.Printf("evictions %d  sheds %d  drains %d  client-closes %d  queued-bytes %d  frame-bytes %d\n",
		s.Evictions, s.Sheds, s.Drains, s.ClientCloses, s.QueuedBytes, s.FrameBytesInFlight)
	fmt.Printf("dispatch p99: play %s  record %s  gettime %s  control %s  writev mean %.1f\n",
		ns(s.DispatchPlayNs.Quantile(0.99)), ns(s.DispatchRecordNs.Quantile(0.99)),
		ns(s.DispatchGetTimeNs.Quantile(0.99)), ns(s.DispatchControlNs.Quantile(0.99)),
		s.WritevBatch.Mean())
	fmt.Printf("%-10s %12s %12s %10s %10s %7s %6s %6s %9s\n",
		"device", "play-bytes", "rec-bytes", "sil-fill", "preempt", "under", "parks", "queued", "lock-p99")
	for _, d := range s.Devices {
		fmt.Printf("%-10s %12d %12d %10d %10d %7d %6d %6d %9s\n",
			d.Name, d.PlayBytes, d.RecBytes, d.PlaySilenceFilled, d.FramesPreempted,
			d.Underruns, d.ParksStarted, d.ParkedNow, ns(d.LockWaitNs.Quantile(0.99)))
	}
	if werr := conservation(s); werr != "" {
		fmt.Fprintf(os.Stderr, "astat: WARNING: %s\n", werr)
	}
}

// conservation checks the snapshot's frame-accounting laws; a violation
// means the server's instrumentation is broken, which is worth shouting
// about in a stats tool.
func conservation(s aserver.Snapshot) string {
	// Every disconnect is accounted to exactly one close reason. The check
	// is one-sided because counters are read without a global lock: a
	// reason may be counted an instant before the disconnect it explains.
	if sum := s.Evictions + s.Sheds + s.Drains + s.ClientCloses; s.Disconnects > sum {
		return fmt.Sprintf("disconnects %d > evictions %d + sheds %d + drains %d + client-closes %d",
			s.Disconnects, s.Evictions, s.Sheds, s.Drains, s.ClientCloses)
	}
	for _, d := range s.Devices {
		if d.FramesAccepted != d.FramesBuffered+d.FramesDiscarded {
			return fmt.Sprintf("device %d: accepted %d != buffered %d + discarded %d",
				d.Index, d.FramesAccepted, d.FramesBuffered, d.FramesDiscarded)
		}
		if d.FramesPreempted > d.FramesBuffered {
			return fmt.Sprintf("device %d: preempted %d > buffered %d",
				d.Index, d.FramesPreempted, d.FramesBuffered)
		}
	}
	return ""
}

// ns renders a nanosecond bucket bound compactly.
func ns(v uint64) string {
	d := time.Duration(v)
	switch {
	case d == 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
}
