// astat polls an AudioFile server's stats endpoint (afd -stats) and
// renders a live one-line-per-device summary, in the spirit of vmstat:
//
//	astat [-a host:port] [-i interval] [-n count] [-once] [-top N] [-agg]
//	astat -router [-a host:port] ...     poll an arouter instead
//
// With -router the address is an arouter's -stats endpoint: each tick
// prints the fleet view (session routes, proxied byte rates, failover
// counters, per-backend health) and the router's conservation laws are
// checked instead of the device-frame laws.
//
// Each tick prints one line per device with the deltas since the last
// scrape (bytes and frames per interval, underruns, parks) plus the
// dispatch p99 for the hot ops. With hundreds or thousands of devices
// (the PBX workloads) the full table is unusable: -top N keeps only the
// N busiest devices per tick, and -agg drops the per-device rows
// entirely for one server-wide line per tick, including the update
// scheduler's health (engine update rate, tick-lag p99). -once prints a
// single absolute snapshot and exits, which is also the scriptable mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"audiofile/aserver"
	"audiofile/internal/cmdutil"
	"audiofile/internal/metrics"
)

var (
	addr     = flag.String("a", "localhost:7800", "stats address of the server (afd -stats)")
	interval = flag.Duration("i", time.Second, "polling interval")
	count    = flag.Int("n", 0, "number of intervals to print (0 = until interrupted)")
	once     = flag.Bool("once", false, "print one absolute snapshot and exit")
	top      = flag.Int("top", 0, "show only the N busiest devices per tick, by byte rate (0 = all)")
	agg      = flag.Bool("agg", false, "aggregate only: one server-wide line per tick, no per-device rows")
	routerMd = flag.Bool("router", false, "the address is an arouter -stats endpoint: show fleet routing stats")
)

func main() {
	flag.Parse()
	url := "http://" + *addr + "/stats"

	if *routerMd {
		routerMain(url)
		return
	}

	prev, err := scrape(url)
	if err != nil {
		cmdutil.Die("astat: %v", err)
	}
	if *once {
		printAbsolute(prev)
		return
	}

	header()
	for tick := 0; *count == 0 || tick < *count; tick++ {
		time.Sleep(*interval)
		cur, err := scrape(url)
		if err != nil {
			cmdutil.Die("astat: %v", err)
		}
		if tick%20 == 0 && tick > 0 {
			header()
		}
		if *agg {
			printAggregate(prev, cur, *interval)
		} else {
			printDelta(prev, cur, *interval)
		}
		prev = cur
	}
}

// scrape fetches and decodes one snapshot.
func scrape(url string) (aserver.Snapshot, error) {
	var snap aserver.Snapshot
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func header() {
	if *agg {
		fmt.Printf("%7s %9s %9s %9s %7s %6s %6s %6s %8s %5s %8s %8s %8s %9s %6s %8s\n",
			"devs", "play-B/s", "rec-B/s", "sil-f/s", "under", "parks", "queued", "errs", "reqs/s", "batch", "stg-B/s", "upd/s", "sweep", "lag-p99", "bsubs", "bmsg/s")
		return
	}
	fmt.Printf("%-10s %9s %9s %9s %7s %6s %6s %5s %6s %9s %9s\n",
		"device", "play-B/s", "rec-B/s", "sil-f/s", "under", "parks", "queued", "batch", "errs", "play-p99", "lock-p99")
}

// deviceRate is one device's interval delta, used for -top ranking.
type deviceRate struct {
	cur      aserver.DeviceStats
	playRate float64
	recRate  float64
	silRate  float64
	under    uint64
	parks    uint64
	batch    float64 // mean dispatch batch size over the interval
}

// rates computes per-device interval deltas, sorted busiest-first when
// ranking is requested.
func rates(prev, cur aserver.Snapshot, secs float64, rank bool) []deviceRate {
	prevDev := make(map[int]aserver.DeviceStats, len(prev.Devices))
	for _, d := range prev.Devices {
		prevDev[d.Index] = d
	}
	rows := make([]deviceRate, 0, len(cur.Devices))
	for _, d := range cur.Devices {
		p := prevDev[d.Index]
		rows = append(rows, deviceRate{
			cur:      d,
			playRate: float64(d.PlayBytes-p.PlayBytes) / secs,
			recRate:  float64(d.RecBytes-p.RecBytes) / secs,
			silRate:  float64(d.PlaySilenceFilled-p.PlaySilenceFilled) / secs,
			under:    d.Underruns - p.Underruns,
			parks:    d.ParksStarted - p.ParksStarted,
			batch:    histDeltaMean(p.DispatchBatch, d.DispatchBatch),
		})
	}
	if rank {
		sort.SliceStable(rows, func(i, j int) bool {
			return rows[i].playRate+rows[i].recRate > rows[j].playRate+rows[j].recRate
		})
	}
	return rows
}

// printDelta renders one interval: per-device rates from the counter
// deltas, with the server-wide columns folded into the first row. With
// -top N only the N busiest devices print, with a trailer counting the
// rest.
func printDelta(prev, cur aserver.Snapshot, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	rows := rates(prev, cur, secs, *top > 0)
	hidden := 0
	if *top > 0 && len(rows) > *top {
		hidden = len(rows) - *top
		rows = rows[:*top]
	}
	for i, r := range rows {
		errs := ""
		if i == 0 {
			errs = fmt.Sprintf("%d", cur.ClientErrors-prev.ClientErrors)
		}
		fmt.Printf("%-10s %9.0f %9.0f %9.0f %7d %6d %6d %5.1f %6s %9s %9s\n",
			r.cur.Name, r.playRate, r.recRate, r.silRate,
			r.under, r.parks, r.cur.ParkedNow, r.batch, errs,
			ns(cur.DispatchPlayNs.Quantile(0.99)),
			ns(r.cur.LockWaitNs.Quantile(0.99)))
	}
	if hidden > 0 {
		fmt.Printf("... (+%d more devices; -top %d)\n", hidden, *top)
	}
}

// printAggregate renders one interval as a single server-wide line: the
// device columns summed, plus request and engine-update rates and the
// scheduler's tick-lag p99.
func printAggregate(prev, cur aserver.Snapshot, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	var play, rec, sil float64
	var under, parks uint64
	var queued int64
	for _, r := range rates(prev, cur, secs, false) {
		play += r.playRate
		rec += r.recRate
		sil += r.silRate
		under += r.under
		parks += r.parks
		queued += r.cur.ParkedNow
	}
	var bsubs int64
	var curMsgs, prevMsgs uint64
	for _, d := range cur.Devices {
		bsubs += d.BcastSubs
		curMsgs += d.BcastMsgs
	}
	for _, d := range prev.Devices {
		prevMsgs += d.BcastMsgs
	}
	fmt.Printf("%7d %9.0f %9.0f %9.0f %7d %6d %6d %6d %8.0f %5.1f %8.0f %8.0f %8.1f %9s %6d %8.0f\n",
		len(cur.Devices), play, rec, sil, under, parks, queued,
		cur.ClientErrors-prev.ClientErrors,
		float64(cur.Requests-prev.Requests)/secs,
		histDeltaMean(prev.DispatchBatch, cur.DispatchBatch),
		float64(cur.StagedBytes-prev.StagedBytes)/secs,
		float64(cur.SchedEngineRuns-prev.SchedEngineRuns)/secs,
		histDeltaMean(prev.SchedSweepBatch, cur.SchedSweepBatch),
		ns(cur.SchedTickLagNs.Quantile(0.99)),
		bsubs, float64(curMsgs-prevMsgs)/secs)
}

// histDeltaMean is the mean observed value across one interval: the
// delta of a histogram's sum over the delta of its count.
func histDeltaMean(prev, cur metrics.HistogramSnapshot) float64 {
	dc := cur.Count - prev.Count
	if dc == 0 {
		return 0
	}
	return float64(cur.Sum-prev.Sum) / float64(dc)
}

// printAbsolute renders one snapshot's cumulative counters. -top bounds
// the device table here too.
func printAbsolute(s aserver.Snapshot) {
	fmt.Printf("requests %d  connects %d  disconnects %d  active %d  errors %d  overflows %d\n",
		s.Requests, s.Connects, s.Disconnects, s.ActiveClients, s.ClientErrors, s.QueueOverflows)
	fmt.Printf("evictions %d  sheds %d  drains %d  client-closes %d  queued-bytes %d  frame-bytes %d\n",
		s.Evictions, s.Sheds, s.Drains, s.ClientCloses, s.QueuedBytes, s.FrameBytesInFlight)
	fmt.Printf("dispatch p99: play %s  record %s  gettime %s  control %s  writev mean %.1f\n",
		ns(s.DispatchPlayNs.Quantile(0.99)), ns(s.DispatchRecordNs.Quantile(0.99)),
		ns(s.DispatchGetTimeNs.Quantile(0.99)), ns(s.DispatchControlNs.Quantile(0.99)),
		s.WritevBatch.Mean())
	fmt.Printf("batch: dispatch mean %.1f p99 %d  staged %d bytes / %d flushes  sweep mean %.1f p99 %d\n",
		s.DispatchBatch.Mean(), s.DispatchBatch.Quantile(0.99),
		s.StagedBytes, s.StagedFlushes,
		s.SchedSweepBatch.Mean(), s.SchedSweepBatch.Quantile(0.99))
	fmt.Printf("sched: %d shards  %d workers  %d engine-runs  tick-lag p50 %s p99 %s  batch p99 %d  overdue %d\n",
		s.SchedShards, s.SchedWorkers, s.SchedEngineRuns,
		ns(s.SchedTickLagNs.Quantile(0.50)), ns(s.SchedTickLagNs.Quantile(0.99)),
		s.SchedBatchSize.Quantile(0.99), s.SchedOverdueTasks)
	var bsubs int64
	var bchunks, bencodes, bmsgs, bbytes, bdrops uint64
	for _, d := range s.Devices {
		bsubs += d.BcastSubs
		bchunks += d.BcastChunks
		bencodes += d.BcastEncodes
		bmsgs += d.BcastMsgs
		bbytes += d.BcastBytes
		bdrops += d.BcastDrops
	}
	fmt.Printf("bcast: subs %d  chunks %d  encodes %d  msgs %d  bytes %d  drops %d\n",
		bsubs, bchunks, bencodes, bmsgs, bbytes, bdrops)
	for _, d := range s.Devices {
		ls := d.Lineserver
		if ls == nil {
			continue
		}
		fmt.Printf("als %-6s %s  req %d  rep %d (ok %d stale %d dup %d garbage %d)  timeouts %d  slips %d\n",
			d.Name, ls.State, ls.Requests, ls.Replies,
			ls.Accepted, ls.Stale, ls.Duplicate, ls.Garbage, ls.Timeouts, ls.Slips)
		fmt.Printf("als %-6s resyncs: started %d  completed %d  abandoned %d  attempts %d  rec-silence %dB  play-lost %dB\n",
			d.Name, ls.ResyncsStarted, ls.ResyncsCompleted, ls.ResyncsAbandoned,
			ls.ResyncAttempts, ls.RecSilenceBytes, ls.PlayLostBytes)
	}
	if *agg {
		if werr := conservation(s); werr != "" {
			fmt.Fprintf(os.Stderr, "astat: WARNING: %s\n", werr)
		}
		return
	}
	devs := s.Devices
	hidden := 0
	if *top > 0 && len(devs) > *top {
		ranked := append([]aserver.DeviceStats(nil), devs...)
		sort.SliceStable(ranked, func(i, j int) bool {
			return ranked[i].PlayBytes+ranked[i].RecBytes > ranked[j].PlayBytes+ranked[j].RecBytes
		})
		hidden = len(ranked) - *top
		devs = ranked[:*top]
	}
	fmt.Printf("%-10s %12s %12s %10s %10s %7s %6s %6s %5s %9s\n",
		"device", "play-bytes", "rec-bytes", "sil-fill", "preempt", "under", "parks", "queued", "batch", "lock-p99")
	for _, d := range devs {
		fmt.Printf("%-10s %12d %12d %10d %10d %7d %6d %6d %5.1f %9s\n",
			d.Name, d.PlayBytes, d.RecBytes, d.PlaySilenceFilled, d.FramesPreempted,
			d.Underruns, d.ParksStarted, d.ParkedNow, d.DispatchBatch.Mean(),
			ns(d.LockWaitNs.Quantile(0.99)))
	}
	if hidden > 0 {
		fmt.Printf("... (+%d more devices; -top %d)\n", hidden, *top)
	}
	if werr := conservation(s); werr != "" {
		fmt.Fprintf(os.Stderr, "astat: WARNING: %s\n", werr)
	}
}

// conservation checks the snapshot's frame-accounting laws; a violation
// means the server's instrumentation is broken, which is worth shouting
// about in a stats tool.
func conservation(s aserver.Snapshot) string {
	// Every disconnect is accounted to exactly one close reason. The check
	// is one-sided because counters are read without a global lock: a
	// reason may be counted an instant before the disconnect it explains.
	if sum := s.Evictions + s.Sheds + s.Drains + s.ClientCloses; s.Disconnects > sum {
		return fmt.Sprintf("disconnects %d > evictions %d + sheds %d + drains %d + client-closes %d",
			s.Disconnects, s.Evictions, s.Sheds, s.Drains, s.ClientCloses)
	}
	// Every request is retired by exactly one dispatch batch. One-sided
	// because the server counts requests before observing the batch (and
	// the snapshot reads the histogram first), so a batch mid-account may
	// be missing from the sum but never over-counted.
	if s.DispatchBatch.Sum > s.Requests {
		return fmt.Sprintf("dispatch batch sizes sum to %d > %d requests",
			s.DispatchBatch.Sum, s.Requests)
	}
	for _, d := range s.Devices {
		if d.FramesAccepted != d.FramesBuffered+d.FramesDiscarded {
			return fmt.Sprintf("device %d: accepted %d != buffered %d + discarded %d",
				d.Index, d.FramesAccepted, d.FramesBuffered, d.FramesDiscarded)
		}
		if d.FramesPreempted > d.FramesBuffered {
			return fmt.Sprintf("device %d: preempted %d > buffered %d",
				d.Index, d.FramesPreempted, d.FramesBuffered)
		}
		// Encode-once: a broadcast chunk is encoded at least once per live
		// wire format. The server increments encodes before chunks, so the
		// one-sided law holds in every snapshot, not just drained ones.
		if d.BcastEncodes < d.BcastChunks {
			return fmt.Sprintf("device %d: broadcast encodes %d < chunks %d",
				d.Index, d.BcastEncodes, d.BcastChunks)
		}
		// LineServer transport health: every reply datagram is classified
		// exactly once, and every resync the healer starts ends exactly
		// once. Both one-sided live (the backend increments the aggregate
		// first and the snapshot reads it last), exact after close.
		if ls := d.Lineserver; ls != nil {
			if sum := ls.Accepted + ls.Stale + ls.Duplicate; ls.Replies < sum {
				return fmt.Sprintf("device %d: lineserver replies %d < accepted %d + stale %d + duplicate %d",
					d.Index, ls.Replies, ls.Accepted, ls.Stale, ls.Duplicate)
			}
			if sum := ls.ResyncsCompleted + ls.ResyncsAbandoned; ls.ResyncsStarted < sum {
				return fmt.Sprintf("device %d: lineserver resyncs started %d < completed %d + abandoned %d",
					d.Index, ls.ResyncsStarted, ls.ResyncsCompleted, ls.ResyncsAbandoned)
			}
		}
	}
	return ""
}

// routerMain is the -router mode: poll an arouter's RouterSnapshot.
func routerMain(url string) {
	prev, err := scrapeRouter(url)
	if err != nil {
		cmdutil.Die("astat: %v", err)
	}
	if *once {
		printRouterAbsolute(prev)
		return
	}
	routerHeader()
	for tick := 0; *count == 0 || tick < *count; tick++ {
		time.Sleep(*interval)
		cur, err := scrapeRouter(url)
		if err != nil {
			cmdutil.Die("astat: %v", err)
		}
		if tick%20 == 0 && tick > 0 {
			routerHeader()
		}
		printRouterDelta(prev, cur, *interval)
		prev = cur
	}
}

// scrapeRouter fetches and decodes one router snapshot.
func scrapeRouter(url string) (aserver.RouterSnapshot, error) {
	var snap aserver.RouterSnapshot
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func routerHeader() {
	fmt.Printf("%8s %8s %10s %10s %7s %9s %6s %s\n",
		"sessions", "routes/s", "c2b-B/s", "b2c-B/s", "fails", "failovers", "errs", "backends")
}

// printRouterDelta renders one interval of router counters plus the
// backend health roster.
func printRouterDelta(prev, cur aserver.RouterSnapshot, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	roster := ""
	for i, b := range cur.Backends {
		if i > 0 {
			roster += " "
		}
		marker := ""
		if i < len(prev.Backends) && b.ProbeFailures > prev.Backends[i].ProbeFailures {
			marker = "!"
		}
		roster += fmt.Sprintf("%s=%s%s(%d)", b.Name, b.State, marker, b.Sessions)
	}
	fmt.Printf("%8d %8.1f %10.0f %10.0f %7d %9d %6d %s\n",
		cur.SessionsActive,
		float64(cur.Routes-prev.Routes)/secs,
		float64(cur.ProxiedBytesC2B-prev.ProxiedBytesC2B)/secs,
		float64(cur.ProxiedBytesB2C-prev.ProxiedBytesB2C)/secs,
		cur.FailoversStarted-prev.FailoversStarted,
		cur.FailoversCompleted-prev.FailoversCompleted,
		cur.RouteErrors-prev.RouteErrors,
		roster)
	if werr := routerConservation(cur); werr != "" {
		fmt.Fprintf(os.Stderr, "astat: WARNING: %s\n", werr)
	}
}

// printRouterAbsolute renders one cumulative router snapshot.
func printRouterAbsolute(s aserver.RouterSnapshot) {
	fmt.Printf("routes %d  active %d  route-errors %d  proxied c2b %dB b2c %dB\n",
		s.Routes, s.SessionsActive, s.RouteErrors, s.ProxiedBytesC2B, s.ProxiedBytesB2C)
	fmt.Printf("closed: client %d  backend %d  failovers: started %d  completed %d  abandoned %d\n",
		s.ClosedClient, s.ClosedBackend,
		s.FailoversStarted, s.FailoversCompleted, s.FailoversAbandoned)
	fmt.Printf("%-24s %-8s %8s %8s %8s %6s %6s %6s %6s\n",
		"backend", "state", "sessions", "probes", "fails", "dial", "→heal", "→susp", "→down")
	for _, b := range s.Backends {
		fmt.Printf("%-24s %-8s %8d %8d %8d %6d %6d %6d %6d\n",
			b.Name, b.State, b.Sessions, b.Probes, b.ProbeFailures,
			b.DialErrors, b.ToHealthy, b.ToSuspect, b.ToDown)
	}
	if werr := routerConservation(s); werr != "" {
		fmt.Fprintf(os.Stderr, "astat: WARNING: %s\n", werr)
	}
}

// routerConservation checks the router's accounting laws. Snapshots read
// outcome counters before antecedents, so the one-sided forms hold in
// every live snapshot (exact once the router is drained); a violation
// means the router's bookkeeping is broken.
func routerConservation(s aserver.RouterSnapshot) string {
	if sum := s.FailoversCompleted + s.FailoversAbandoned; s.FailoversStarted < sum {
		return fmt.Sprintf("failovers started %d < completed %d + abandoned %d",
			s.FailoversStarted, s.FailoversCompleted, s.FailoversAbandoned)
	}
	if sum := s.ClosedClient + s.ClosedBackend + s.FailoversStarted; s.Routes < sum {
		return fmt.Sprintf("routes %d < closed-client %d + closed-backend %d + failovers-started %d",
			s.Routes, s.ClosedClient, s.ClosedBackend, s.FailoversStarted)
	}
	return ""
}

// ns renders a nanosecond bucket bound compactly.
func ns(v uint64) string {
	d := time.Duration(v)
	switch {
	case d == 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
}
