package main

import "testing"

func TestParseDevices(t *testing.T) {
	specs, err := parseDevices("phone,codec:loopback,codec,hifi:48000")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Kind != "phone" {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Kind != "codec" || !specs[1].Loopback || specs[1].Name != "codec0" {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	if specs[2].Kind != "codec" || specs[2].Loopback || specs[2].Name != "codec1" {
		t.Errorf("spec 2 = %+v", specs[2])
	}
	if specs[3].Kind != "hifi" || specs[3].Rate != 48000 {
		t.Errorf("spec 3 = %+v", specs[3])
	}
}

func TestParseDevicesErrors(t *testing.T) {
	for _, bad := range []string{"theremin", "hifi:fast", "lineserver"} {
		if _, err := parseDevices(bad); err == nil {
			t.Errorf("parseDevices(%q) accepted", bad)
		}
	}
	// Empty entries are skipped, not errors.
	specs, err := parseDevices("codec,,")
	if err != nil || len(specs) != 1 {
		t.Errorf("trailing commas: %v, %d specs", err, len(specs))
	}
}

func TestParseDevicesLineServer(t *testing.T) {
	specs, err := parseDevices("lineserver:127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Kind != "lineserver" || specs[0].Addr != "127.0.0.1:9999" {
		t.Errorf("specs = %+v", specs)
	}
}
