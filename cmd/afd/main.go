// afd is the AudioFile server daemon. It builds the simulated device
// complement (telephone CODEC, local CODEC, stereo HiFi with mono views —
// the Alofi arrangement) and serves the AudioFile protocol on a Unix
// socket and/or TCP port.
//
//	afd [-n display] [-tcp] [-ac] [-devices spec,...] [-console]
//
// Because the telephone line is simulated, afd offers a small control
// console on standard input so a human (or script) can play the exchange:
//
//	ring            deliver a ring pulse
//	stopring        caller gives up
//	digits 555#     remote caller punches digits
//	exthook on|off  extension phone off/on hook
//	stats           print device statistics
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"audiofile/aserver"
	"audiofile/internal/cmdutil"
)

func main() {
	display := flag.Int("n", 0, "server number: Unix socket /tmp/.AFunix/AF<n>, TCP port 7000+<n>")
	tcp := flag.Bool("tcp", false, "also listen on TCP")
	ac := flag.Bool("ac", false, "enable host access control at startup")
	devices := flag.String("devices", "phone,codec:loopback,hifi",
		"comma-separated device specs: phone | codec[:loopback] | hifi[:rate] | lineserver:addr")
	console := flag.Bool("console", false, "read exchange-control commands from stdin")
	nodelay := flag.Bool("nodelay", true, "set TCP_NODELAY on accepted TCP connections (disable to let Nagle coalesce)")
	verbose := flag.Bool("verbose", false, "log server diagnostics")
	statsAddr := flag.String("stats", "", "serve metrics (/stats JSON, /debug/vars expvar) on this address (e.g. localhost:7800); off by default")
	maxClients := flag.Int("max-clients", 0, "maximum simultaneous clients; the oldest idle client is shed to admit a new one (0 = unlimited)")
	clientQueueBytes := flag.Int("client-queue-bytes", 0, "per-client send-queue byte budget before slow-client eviction (0 = default 256KiB, negative = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "on SIGTERM/SIGINT, wait up to this long for play buffers to drain before closing")
	updateShards := flag.Int("update-shards", 0, "timer-wheel shards driving device updates (0 = GOMAXPROCS/4, clamped to [1,8])")
	updateWorkers := flag.Int("update-workers", 0, "workers running due device updates (0 = GOMAXPROCS, clamped to [1,16])")
	batch := flag.String("batch", "auto", "small-op batching: auto (coalesce ingress runs, stage replies, sweep shards) or off (one-at-a-time dispatch, for A/B comparison)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file until shutdown")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			cmdutil.Die("afd: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			cmdutil.Die("afd: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "afd: pprof listener: %v\n", err)
			}
		}()
	}

	specs, err := parseDevices(*devices)
	if err != nil {
		cmdutil.Die("afd: %v", err)
	}
	var batching aserver.BatchMode
	switch *batch {
	case "auto":
		batching = aserver.BatchAuto
	case "off":
		batching = aserver.BatchOff
	default:
		cmdutil.Die("afd: -batch must be auto or off, got %q", *batch)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "afd: "+format+"\n", args...)
		}
	}
	srv, err := aserver.New(aserver.Options{
		Vendor:           "audiofile-go afd",
		Devices:          specs,
		AccessControl:    *ac,
		TCPDelay:         !*nodelay,
		Logf:             logf,
		MaxClients:       *maxClients,
		ClientQueueBytes: *clientQueueBytes,
		UpdateShards:     *updateShards,
		UpdateWorkers:    *updateWorkers,
		Batching:         batching,
	})
	if err != nil {
		cmdutil.Die("afd: %v", err)
	}
	defer srv.Close()

	if *statsAddr != "" {
		sl, err := srv.ListenStats(*statsAddr)
		if err != nil {
			cmdutil.Die("afd: stats listener: %v", err)
		}
		fmt.Fprintf(os.Stderr, "afd: stats on http://%s/stats\n", sl.Addr())
	}

	sockDir := "/tmp/.AFunix"
	if err := os.MkdirAll(sockDir, 0o777); err != nil {
		cmdutil.Die("afd: %v", err)
	}
	sockPath := filepath.Join(sockDir, fmt.Sprintf("AF%d", *display))
	os.Remove(sockPath) //nolint:errcheck — stale socket from a previous run
	if _, err := srv.Listen("unix", sockPath); err != nil {
		cmdutil.Die("afd: %v", err)
	}
	fmt.Fprintf(os.Stderr, "afd: listening on %s", sockPath)
	if *tcp {
		addr := fmt.Sprintf(":%d", 7000+*display)
		if _, err := srv.Listen("tcp", addr); err != nil {
			cmdutil.Die("afd: %v", err)
		}
		fmt.Fprintf(os.Stderr, " and tcp%s", addr)
	}
	fmt.Fprintln(os.Stderr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	if *console {
		go runConsole(srv)
	}
	<-sigCh
	// Graceful drain: stop accepting, let the play rings run out to the
	// device tail, notify remaining clients with a typed Drain error, then
	// close. A second signal during the drain aborts immediately.
	done := make(chan struct{})
	go func() {
		srv.Drain(*drainTimeout)
		close(done)
	}()
	select {
	case <-done:
	case <-sigCh:
	}
	os.Remove(sockPath) //nolint:errcheck
}

// parseDevices turns the -devices string into server specs.
func parseDevices(s string) ([]aserver.DeviceSpec, error) {
	var specs []aserver.DeviceSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		kind := fields[0]
		arg := ""
		if len(fields) == 2 {
			arg = fields[1]
		}
		switch kind {
		case "phone":
			specs = append(specs, aserver.DeviceSpec{Kind: "phone", Name: "phone0"})
		case "codec":
			specs = append(specs, aserver.DeviceSpec{
				Kind: "codec", Name: fmt.Sprintf("codec%d", countKind(specs, "codec")),
				Loopback: arg == "loopback",
			})
		case "hifi":
			rate := 44100
			if arg != "" {
				if _, err := fmt.Sscanf(arg, "%d", &rate); err != nil {
					return nil, fmt.Errorf("bad hifi rate %q", arg)
				}
			}
			specs = append(specs, aserver.DeviceSpec{Kind: "hifi", Name: "hifi0", Rate: rate})
		case "lineserver":
			if arg == "" {
				return nil, fmt.Errorf("lineserver needs an address: lineserver:host:port")
			}
			specs = append(specs, aserver.DeviceSpec{Kind: "lineserver", Addr: arg})
		case "":
			continue
		default:
			return nil, fmt.Errorf("unknown device kind %q", kind)
		}
	}
	return specs, nil
}

func countKind(specs []aserver.DeviceSpec, kind string) int {
	n := 0
	for _, s := range specs {
		if s.Kind == kind {
			n++
		}
	}
	return n
}

// runConsole reads exchange commands from stdin and drives the simulated
// telephone line of the first phone device.
func runConsole(srv *aserver.Server) {
	var phoneDev = -1
	for i := 0; i < srv.NumDevices(); i++ {
		if srv.PhoneLine(i) != nil {
			phoneDev = i
			break
		}
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		line := srv.PhoneLine(phoneDev)
		switch fields[0] {
		case "ring":
			if line != nil {
				line.RingPulse()
			}
		case "stopring":
			if line != nil {
				line.StopRinging()
			}
		case "digits":
			if line != nil && len(fields) > 1 {
				line.RemoteDigits(fields[1])
			}
		case "exthook":
			if line != nil && len(fields) > 1 {
				line.SetExtensionHook(fields[1] == "on")
			}
		case "stats":
			for i := 0; i < srv.NumDevices(); i++ {
				if hw := srv.Hardware(i); hw != nil {
					played, silent, rec := hw.Stats()
					fmt.Printf("device %d (%s): played %d, silence %d, recorded %d frames\n",
						i, hw.Name(), played, silent, rec)
				}
			}
		case "quit":
			return
		default:
			fmt.Println("commands: ring stopring digits <d> exthook on|off stats quit")
		}
	}
}
