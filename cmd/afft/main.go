// afft is a real-time spectrogram displayer (§9.5) rendered as a text
// waterfall: it reads µ-law audio from a file, standard input, or an
// AudioFile server in real time, runs a windowed Fourier transform, and
// prints one line of spectrum per transform block.
//
//	afft [-a server] [-d device] [-file f] [-sine] [-length n] [-stride n] \
//	     [-window hamming|hanning|triangular|none] [-log] [-realtime] [-blocks n]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"audiofile/af"
	"audiofile/internal/cmdutil"
	"audiofile/internal/dsp"
	"audiofile/internal/sampleconv"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "device to record from")
	file := flag.String("file", "", "µ-law file to analyze (\"-\" for stdin)")
	sine := flag.Bool("sine", false, "analyze a built-in swept sine (demo mode)")
	length := flag.Int("length", 256, "FFT length: 64..512, power of two")
	stride := flag.Int("stride", 0, "samples between transforms (default: length)")
	windowName := flag.String("window", "hamming", "window: hamming|hanning|triangular|none")
	logScale := flag.Bool("log", true, "logarithmic amplitude scale")
	rate := flag.Int("r", 8000, "sampling rate for file input")
	blocks := flag.Int("blocks", 0, "stop after this many transform blocks (0 = forever/EOF)")
	width := flag.Int("width", 64, "display width in columns")
	flag.Parse()

	if *length < 64 || *length > 512 || *length&(*length-1) != 0 {
		cmdutil.Die("afft: -length must be a power of two in 64..512")
	}
	if *stride <= 0 {
		*stride = *length
	}
	var win dsp.Window
	switch *windowName {
	case "hamming":
		win = dsp.Hamming
	case "hanning":
		win = dsp.Hanning
	case "triangular":
		win = dsp.Triangular
	case "none":
		win = dsp.Rectangular
	default:
		cmdutil.Die("afft: unknown window %q", *windowName)
	}

	var src sampleSource
	switch {
	case *sine:
		src = &sweepSource{rate: float64(*rate)}
	case *file == "-":
		src = &readerSource{r: os.Stdin}
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			cmdutil.Die("afft: %v", err)
		}
		defer f.Close()
		src = &readerSource{r: f, loop: f}
	default:
		conn := cmdutil.OpenServer(*server)
		defer conn.Close()
		dev := cmdutil.PickDevice(conn, *device)
		d := conn.Devices()[dev]
		if d.RecBufType != af.MU255 {
			cmdutil.Die("afft: device %s is not µ-law", d.Name)
		}
		*rate = d.RecSampleFreq
		ac, err := conn.CreateAC(dev, 0, af.ACAttributes{})
		if err != nil {
			cmdutil.Die("afft: %v", err)
		}
		now, err := ac.GetTime()
		if err != nil {
			cmdutil.Die("afft: %v", err)
		}
		src = &serverSource{ac: ac, t: now}
	}

	run(src, win, *length, *stride, *logScale, *width, *blocks, float64(*rate))
}

// run is the afft core: window, transform, render.
func run(src sampleSource, win dsp.Window, length, stride int, logScale bool,
	width, maxBlocks int, rate float64) {
	ring := make([]float64, 0, length+stride)
	block := 0
	ramp := " .:-=+*#%@"
	for maxBlocks == 0 || block < maxBlocks {
		need := length + stride - len(ring)
		if need > stride {
			need = stride
		}
		if len(ring) < length {
			need = length - len(ring)
		}
		chunk, ok := src.next(need)
		if !ok {
			return
		}
		ring = append(ring, chunk...)
		if len(ring) < length {
			continue
		}
		x := make([]float64, length)
		copy(x, ring[:length])
		ring = append(ring[:0], ring[stride:]...)
		win.Apply(x)
		ps := dsp.PowerSpectrum(x)
		fmt.Println(renderLine(ps[1:], width, logScale, ramp))
		block++
	}
}

// renderLine folds the power spectrum into width buckets and maps each to
// an intensity character.
func renderLine(ps []float64, width int, logScale bool, ramp string) string {
	var sb strings.Builder
	perBucket := float64(len(ps)) / float64(width)
	var peak float64 = 1
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * perBucket)
		hi := int(float64(i+1) * perBucket)
		if hi <= lo {
			hi = lo + 1
		}
		var v float64
		for _, p := range ps[lo:min(hi, len(ps))] {
			if p > v {
				v = p
			}
		}
		if logScale {
			v = math.Log10(1 + v)
		}
		vals[i] = v
		if v > peak {
			peak = v
		}
	}
	for _, v := range vals {
		idx := int(v / peak * float64(len(ramp)-1))
		sb.WriteByte(ramp[idx])
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sampleSource produces linear samples for analysis.
type sampleSource interface {
	next(n int) ([]float64, bool)
}

// readerSource decodes µ-law from a reader; with loop set it rewinds at
// EOF and repeats, as afft does for files.
type readerSource struct {
	r    io.Reader
	loop io.Seeker
}

func (s *readerSource) next(n int) ([]float64, bool) {
	buf := make([]byte, n)
	got, err := io.ReadFull(s.r, buf)
	if got == 0 {
		if s.loop != nil && err == io.EOF {
			if _, err := s.loop.Seek(0, io.SeekStart); err != nil {
				return nil, false
			}
			return s.next(n)
		}
		return nil, false
	}
	out := make([]float64, got)
	for i := 0; i < got; i++ {
		out[i] = float64(sampleconv.DecodeMuLaw(buf[i]))
	}
	return out, true
}

// sweepSource is the built-in demo: a sine sweeping up and down the band.
type sweepSource struct {
	rate  float64
	phase float64
	freq  float64
	dir   float64
}

func (s *sweepSource) next(n int) ([]float64, bool) {
	if s.freq == 0 {
		s.freq, s.dir = 200, 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 8000 * math.Sin(2*math.Pi*s.phase)
		s.phase += s.freq / s.rate
		if s.phase >= 1 {
			s.phase -= 1
		}
		s.freq += s.dir * 2
		if s.freq > s.rate/2-400 || s.freq < 200 {
			s.dir = -s.dir
		}
	}
	return out, true
}

// serverSource records from an AudioFile device in real time.
type serverSource struct {
	ac *af.AC
	t  af.ATime
}

func (s *serverSource) next(n int) ([]float64, bool) {
	buf := make([]byte, n)
	_, got, err := s.ac.RecordSamples(s.t, buf, true)
	if err != nil || got == 0 {
		return nil, false
	}
	s.t = s.t.Add(got)
	out := make([]float64, got)
	for i := 0; i < got; i++ {
		out[i] = float64(sampleconv.DecodeMuLaw(buf[i]))
	}
	return out, true
}
