// abiff is the audio analogue of the Berkeley biff program (§9.6): it
// watches a mailbox file and announces new mail through the AudioFile
// server. The original spoke the From and Subject lines through DECtalk;
// this one plays a distinctive two-tone chime (speech synthesis being a
// little out of scope for a reproduction).
//
//	abiff [-a server] [-d device] [-f mailbox] [-poll 2s] [-n count]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"audiofile/af"
	"audiofile/afutil"
	"audiofile/internal/cmdutil"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "audio device")
	mbox := flag.String("f", "", "mailbox file to watch (default $MAIL)")
	poll := flag.Duration("poll", 2*time.Second, "poll interval")
	count := flag.Int("n", -1, "exit after this many notifications")
	flag.Parse()

	path := *mbox
	if path == "" {
		path = os.Getenv("MAIL")
	}
	if path == "" {
		cmdutil.Die("abiff: no mailbox: use -f or set $MAIL")
	}

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := cmdutil.PickDevice(conn, *device)
	rate := conn.Devices()[dev].PlaySampleFreq
	ac, err := conn.CreateAC(dev, 0, af.ACAttributes{})
	if err != nil {
		cmdutil.Die("abiff: %v", err)
	}

	// The chime: an upward pair of tone bursts.
	chime := make([]byte, rate/2)
	afutil.TonePair(523, -10, 659, -12, rate/100, rate, chime[:rate/4])
	afutil.TonePair(784, -10, 988, -12, rate/100, rate, chime[rate/4:])

	lastSize := int64(-1)
	if st, err := os.Stat(path); err == nil {
		lastSize = st.Size()
	}
	notified := 0
	for *count < 0 || notified < *count {
		time.Sleep(*poll)
		st, err := os.Stat(path)
		if err != nil {
			continue // mailbox may not exist yet
		}
		size := st.Size()
		if lastSize >= 0 && size > lastSize {
			now, err := ac.GetTime()
			if err != nil {
				cmdutil.Die("abiff: %v", err)
			}
			if _, err := ac.PlaySamples(now.Add(rate/10), chime); err != nil {
				cmdutil.Die("abiff: %v", err)
			}
			fmt.Printf("abiff: new mail in %s (%d bytes)\n", path, size-lastSize)
			notified++
		}
		lastSize = size
	}
}
