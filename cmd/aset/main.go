// aset is the general-purpose device control client (§8.5): it queries
// and sets gains and enables or disables device inputs and outputs.
//
//	aset [-a server] [-d device]                       # show device state
//	aset [-a server] [-d device] -og -6 -ig 3          # set gains
//	aset [-a server] [-d device] -input on -output off # I/O control
package main

import (
	"flag"
	"fmt"

	"audiofile/internal/cmdutil"
)

func main() {
	server := flag.String("a", "", "AudioFile server")
	device := flag.Int("d", -1, "device to control (default: first non-telephone device)")
	og := flag.Int("og", -1000, "set output gain (volume) in dB")
	ig := flag.Int("ig", -1000, "set input gain in dB")
	input := flag.String("input", "", "enable or disable inputs: on|off")
	output := flag.String("output", "", "enable or disable outputs: on|off")
	passTo := flag.Int("passthrough", -1, "connect this device to another device (pass-through)")
	unpass := flag.Bool("nopassthrough", false, "remove pass-through connections")
	flag.Parse()

	conn := cmdutil.OpenServer(*server)
	defer conn.Close()
	dev := cmdutil.PickDevice(conn, *device)

	changed := false
	if *og != -1000 {
		if err := conn.SetOutputGain(dev, *og); err != nil {
			cmdutil.Die("aset: %v", err)
		}
		changed = true
	}
	if *ig != -1000 {
		if err := conn.SetInputGain(dev, *ig); err != nil {
			cmdutil.Die("aset: %v", err)
		}
		changed = true
	}
	switch *input {
	case "on":
		conn.EnableInput(dev, ^uint32(0)) //nolint:errcheck
		changed = true
	case "off":
		conn.DisableInput(dev, ^uint32(0)) //nolint:errcheck
		changed = true
	}
	switch *output {
	case "on":
		conn.EnableOutput(dev, ^uint32(0)) //nolint:errcheck
		changed = true
	case "off":
		conn.DisableOutput(dev, ^uint32(0)) //nolint:errcheck
		changed = true
	}
	if *passTo >= 0 {
		if err := conn.EnablePassThrough(dev, *passTo); err != nil {
			cmdutil.Die("aset: %v", err)
		}
		changed = true
	}
	if *unpass {
		conn.DisablePassThrough(dev) //nolint:errcheck
		changed = true
	}
	if err := conn.Sync(); err != nil {
		cmdutil.Die("aset: %v", err)
	}
	if changed {
		return
	}

	// No changes requested: report the device state.
	d := conn.Devices()[dev]
	fmt.Printf("device %d (%s): %d Hz, %v, %d channel(s)\n",
		dev, d.Name, d.PlaySampleFreq, d.PlayBufType, d.PlayNchannels)
	fmt.Printf("  play buffer %d samples, record buffer %d samples\n",
		d.PlayNSamplesBuf, d.RecNSamplesBuf)
	fmt.Printf("  %d input(s), %d output(s)", d.NumberOfInputs, d.NumberOfOutputs)
	if d.IsPhone() {
		fmt.Printf(" (telephone line)")
	}
	fmt.Println()
	if cur, minG, maxG, err := conn.QueryOutputGain(dev); err == nil {
		fmt.Printf("  output gain %d dB (range %d..%d)\n", cur, minG, maxG)
	}
	if cur, minG, maxG, err := conn.QueryInputGain(dev); err == nil {
		fmt.Printf("  input gain %d dB (range %d..%d)\n", cur, minG, maxG)
	}
}
