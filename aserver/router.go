package aserver

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"audiofile/internal/metrics"
	"audiofile/internal/proto"
)

// Fleet routing. One afd owns one machine's devices; a Router fronts a
// fleet of them behind a single AF endpoint. It speaks just enough of
// the protocol to read the client's setup request, hashes the session's
// routing key (carried in the setup auth fields, see proto.RouteAuthName)
// onto a consistent-hash Directory of backends, and from then on is a
// pure byte splice: the backend's setup reply and every subsequent
// message forward verbatim in both directions through pooled buffers, so
// the proxied hot path adds no per-chunk allocations and never parses
// the stream.
//
// Health is the detect/decide/act loop from the lineserver backend,
// lifted to the fleet: a per-backend prober holds its own AF session and
// round-trips a GetTime every ProbeInterval. A probe failure moves the
// backend healthy→suspect; FailThreshold consecutive failures move it
// suspect→down; any success snaps it back to healthy. The directory
// never places a new session on a down backend.
//
// Failover: when a session's backend side fails, the router must decide
// whether the backend closed this one session on purpose (an Overload
// eviction, whose goodbye has already been spliced through to the
// client) or died. It cannot tell from the spliced bytes, so it asks the
// backend directly — one synchronous confirm probe. A backend that
// answers means a deliberate close: the router just closes the client
// side. A backend that doesn't is forced down, and the router starts a
// failover: if the directory still has a live standby for the session's
// key, it sends the client a typed ErrRedirect goodbye and counts the
// failover completed, else abandoned. A redirect-aware client
// (af.SetReconnect) redials the router, carries the same routing key in
// its setup, lands on the standby, and replays its audio contexts — the
// router itself holds no session state to migrate.
//
// Counter ownership and conservation: routes is incremented once per
// proxied session by the accept path; exactly one of closedClient,
// closedBackend, or failoversStarted is incremented per session by the
// pump that loses the session (a CAS picks the single classifier); and
// every failoversStarted is followed by exactly one of
// failoversCompleted or failoversAbandoned before the session is torn
// down. Snapshot reads the outcome counters before their antecedents, so
//
//	failovers_started >= failovers_completed + failovers_abandoned
//	routes >= closed_client + closed_backend + failovers_started
//
// hold in every live snapshot, and both are exact equalities once the
// router is drained (sessions_active == 0).

// RouterOptions configures a Router.
type RouterOptions struct {
	// Backends are the afd dial targets, one per backend: "host:port"
	// dials TCP, an address containing '/' dials a Unix socket.
	Backends []string
	// Names optionally gives the directory names hashed onto the ring
	// (stable identities that survive an address change); defaults to
	// Backends.
	Names []string
	// Replicas is the virtual-point count per backend on the hash ring
	// (default DefaultDirectoryReplicas).
	Replicas int

	// ProbeInterval is the health-check period (default 1s);
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is the consecutive probe failures after which a
	// suspect backend is marked down (default 3). The first failure
	// always moves healthy→suspect.
	FailThreshold int

	// DialTimeout bounds a backend dial for a new session (default 5s).
	DialTimeout time.Duration
	// ClientWriteStall is the rolling write deadline toward clients: a
	// client that stops reading for this long loses its session instead
	// of pinning a pump goroutine (default 30s). The backend's own
	// overload policy usually fires first.
	ClientWriteStall time.Duration

	// Logf receives progress messages; nil discards them.
	Logf func(format string, args ...any)
}

// Backend health states.
const (
	backendHealthy int32 = iota
	backendSuspect
	backendDown
)

// stateName maps a health state to its wire/report name.
func stateName(s int32) string {
	switch s {
	case backendHealthy:
		return "healthy"
	case backendSuspect:
		return "suspect"
	case backendDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", s)
}

// Router is an AF-protocol session router fronting a fleet of afds.
type Router struct {
	opts RouterOptions
	dir  *Directory
	reg  *metrics.Registry
	rm   routerMetrics

	backends []*routerBackend

	mu        sync.Mutex
	listeners []net.Listener
	sessions  map[*rsession]struct{}
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup
}

type routerMetrics struct {
	routes         *metrics.Counter
	routeErrors    *metrics.Counter
	sessionsActive *metrics.Gauge

	bytesC2B *metrics.Counter // client→backend bytes forwarded
	bytesB2C *metrics.Counter // backend→client bytes forwarded

	closedClient       *metrics.Counter
	closedBackend      *metrics.Counter
	failoversStarted   *metrics.Counter
	failoversCompleted *metrics.Counter
	failoversAbandoned *metrics.Counter
}

type routerBackend struct {
	r             *Router
	index         int
	name          string
	network, addr string

	mu          sync.Mutex
	state       int32
	consecFails int

	// Prober-owned connection state; only the prober goroutine and the
	// one-shot confirm path (which uses its own throwaway conn) touch
	// the network, so no lock guards probeConn.
	probeConn net.Conn
	probeBR   *bufio.Reader
	probeSeq  uint16

	stateGauge *metrics.Gauge
	sessions   *metrics.Gauge
	probes     *metrics.Counter
	probeFails *metrics.Counter
	dialErrors *metrics.Counter
	toHealthy  *metrics.Counter
	toSuspect  *metrics.Counter
	toDown     *metrics.Counter
}

// NewRouter builds a router over the given backends and starts its
// health probers. All backends start healthy (optimistically routable);
// the first probe round corrects that within ProbeInterval.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("aserver: router needs at least one backend")
	}
	if len(opts.Names) != 0 && len(opts.Names) != len(opts.Backends) {
		return nil, errors.New("aserver: router Names must match Backends")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ClientWriteStall <= 0 {
		opts.ClientWriteStall = 30 * time.Second
	}
	names := opts.Names
	if len(names) == 0 {
		names = opts.Backends
	}
	r := &Router{
		opts:     opts,
		dir:      NewDirectory(names, opts.Replicas),
		reg:      metrics.NewRegistry(),
		sessions: make(map[*rsession]struct{}),
		done:     make(chan struct{}),
	}
	r.rm = routerMetrics{
		routes:             r.reg.Counter("router.routes"),
		routeErrors:        r.reg.Counter("router.route_errors"),
		sessionsActive:     r.reg.Gauge("router.sessions_active"),
		bytesC2B:           r.reg.Counter("router.proxied_bytes_c2b"),
		bytesB2C:           r.reg.Counter("router.proxied_bytes_b2c"),
		closedClient:       r.reg.Counter("router.closed_client"),
		closedBackend:      r.reg.Counter("router.closed_backend"),
		failoversStarted:   r.reg.Counter("router.failovers_started"),
		failoversCompleted: r.reg.Counter("router.failovers_completed"),
		failoversAbandoned: r.reg.Counter("router.failovers_abandoned"),
	}
	for i, addr := range opts.Backends {
		network := "tcp"
		if strings.Contains(addr, "/") {
			network = "unix"
		}
		b := &routerBackend{
			r:       r,
			index:   i,
			name:    names[i],
			network: network,
			addr:    addr,
			state:   backendHealthy,

			stateGauge: r.reg.Gauge(fmt.Sprintf("router.backend.%d.state", i)),
			sessions:   r.reg.Gauge(fmt.Sprintf("router.backend.%d.sessions", i)),
			probes:     r.reg.Counter(fmt.Sprintf("router.backend.%d.probes", i)),
			probeFails: r.reg.Counter(fmt.Sprintf("router.backend.%d.probe_failures", i)),
			dialErrors: r.reg.Counter(fmt.Sprintf("router.backend.%d.dial_errors", i)),
			toHealthy:  r.reg.Counter(fmt.Sprintf("router.backend.%d.to_healthy", i)),
			toSuspect:  r.reg.Counter(fmt.Sprintf("router.backend.%d.to_suspect", i)),
			toDown:     r.reg.Counter(fmt.Sprintf("router.backend.%d.to_down", i)),
		}
		r.backends = append(r.backends, b)
		r.wg.Add(1)
		go b.prober()
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Directory returns the router's placement directory (read-only).
func (r *Router) Directory() *Directory { return r.dir }

// Serve accepts and proxies sessions from l until the listener or the
// router closes.
func (r *Router) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("aserver: router closed")
	}
	r.listeners = append(r.listeners, l)
	r.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.done:
				return nil
			default:
				return err
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleConn(conn)
		}()
	}
}

// Listen starts serving on the given network address in the background.
func (r *Router) Listen(network, addr string) (net.Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	go r.Serve(l) //nolint:errcheck — ends when the listener closes
	return l, nil
}

// DialPipe returns an in-process client connection to the router.
func (r *Router) DialPipe() net.Conn {
	cc, sc := net.Pipe()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.handleConn(sc)
	}()
	return cc
}

// Close shuts the router down: listeners close, live sessions tear, the
// probers exit. Blocks until every goroutine has finished.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ls := r.listeners
	var live []*rsession
	for s := range r.sessions {
		live = append(live, s)
	}
	r.mu.Unlock()
	close(r.done)
	for _, l := range ls {
		l.Close()
	}
	for _, s := range live {
		s.teardown()
	}
	r.wg.Wait()
}

// routerSetupDeadline bounds the unproxied prefix of a connection: the
// client's setup request and the backend handshake.
const routerSetupDeadline = 30 * time.Second

// proxyBufBytes is the splice buffer size; two per session, pooled.
const proxyBufBytes = 32 << 10

var proxyBufPool = sync.Pool{
	New: func() any { b := make([]byte, proxyBufBytes); return &b },
}

// refuse sends a failed setup reply to the client; best-effort.
func refuse(conn net.Conn, order binary.ByteOrder, reason string) {
	rep := proto.SetupReply{
		Success: false,
		Reason:  reason,
		Major:   proto.ProtocolMajor,
		Minor:   proto.ProtocolMinor,
	}
	rep.Send(conn, order) //nolint:errcheck — the client is being turned away
}

// handleConn performs the routed handshake, then splices.
func (r *Router) handleConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(routerSetupDeadline)) //nolint:errcheck
	setup, order, err := proto.ReadSetupRequest(conn)
	if err != nil {
		r.rm.routeErrors.Inc()
		conn.Close()
		return
	}
	key := ""
	if setup.AuthName == proto.RouteAuthName {
		key = string(setup.AuthData)
	}
	if key == "" {
		// No routing key: spread by client address. Reconnects of the
		// same client may land elsewhere, which is fine — every backend
		// serves the session equally when the client didn't pin a key.
		key = conn.RemoteAddr().String()
	}

	backend, bc := r.dialFor(key)
	if backend == nil {
		r.rm.routeErrors.Inc()
		refuse(conn, order, "no live backend for route")
		conn.Close()
		return
	}

	// Forward the client's setup verbatim (the backend ignores the route
	// auth fields) and relay the backend's reply as raw bytes, so the
	// handshake a routed client sees is byte-identical to a direct one.
	bc.SetDeadline(time.Now().Add(routerSetupDeadline)) //nolint:errcheck
	if err := setup.Send(bc); err != nil {
		r.rm.routeErrors.Inc()
		refuse(conn, order, "backend handshake failed")
		conn.Close()
		bc.Close()
		return
	}
	ok, err := spliceSetupReply(bc, conn, order)
	if err != nil || !ok {
		r.rm.routeErrors.Inc()
		conn.Close()
		bc.Close()
		return
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	bc.SetDeadline(time.Time{})   //nolint:errcheck

	s := &rsession{
		r:       r,
		b:       backend,
		key:     key,
		client:  conn,
		backend: bc,
		order:   order,
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		bc.Close()
		return
	}
	r.sessions[s] = struct{}{}
	r.mu.Unlock()

	r.rm.routes.Inc()
	r.rm.sessionsActive.Add(1)
	backend.sessions.Add(1)

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		s.pumpClientToBackend()
	}()
	s.pumpBackendToClient()
}

// dialFor resolves key through the directory and dials the chosen
// backend, walking the failover chain on dial errors so a freshly dead
// (not yet probed) backend doesn't refuse the session.
func (r *Router) dialFor(key string) (*routerBackend, net.Conn) {
	tried := make(map[int]bool)
	for range r.backends {
		idx := r.dir.LookupLive(key, func(i int) bool {
			return !tried[i] && r.backends[i].getState() != backendDown
		})
		if idx < 0 {
			return nil, nil
		}
		tried[idx] = true
		b := r.backends[idx]
		c, err := net.DialTimeout(b.network, b.addr, r.opts.DialTimeout)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true) //nolint:errcheck
			}
			return b, c
		}
		b.dialErrors.Inc()
		b.noteFailure()
		r.logf("arouter: dial %s (%s): %v", b.name, b.addr, err)
	}
	return nil, nil
}

// spliceSetupReply forwards the backend's setup reply to the client as
// raw bytes, parsing only the 8-byte header for the length and success
// flag.
func spliceSetupReply(from io.Reader, to io.Writer, order binary.ByteOrder) (ok bool, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(from, hdr[:]); err != nil {
		return false, err
	}
	extra := make([]byte, int(order.Uint16(hdr[6:]))*4)
	if _, err := io.ReadFull(from, extra); err != nil {
		return false, err
	}
	if _, err := to.Write(hdr[:]); err != nil {
		return false, err
	}
	if _, err := to.Write(extra); err != nil {
		return false, err
	}
	return hdr[0] == 1, nil
}

// rsession is one proxied session: a client conn, a backend conn, and
// two pump goroutines splicing between them.
type rsession struct {
	r       *Router
	b       *routerBackend
	key     string
	client  net.Conn
	backend net.Conn
	order   binary.ByteOrder

	// classified flips once, in the pump that loses the session; the
	// winner increments exactly one close-classification counter and
	// releases the session's gauges.
	classified atomic.Bool
}

func (s *rsession) teardown() {
	s.client.Close()
	s.backend.Close()
}

// finish runs once (guarded by the classified CAS in the callers):
// close both sides, release the gauges, unregister.
func (s *rsession) finish() {
	s.teardown()
	s.r.rm.sessionsActive.Add(-1)
	s.b.sessions.Add(-1)
	s.r.mu.Lock()
	delete(s.r.sessions, s)
	s.r.mu.Unlock()
}

// pumpClientToBackend splices client bytes to the backend.
func (s *rsession) pumpClientToBackend() {
	bp := proxyBufPool.Get().(*[]byte)
	defer proxyBufPool.Put(bp)
	buf := *bp
	for {
		n, rerr := s.client.Read(buf)
		if n > 0 {
			if _, werr := s.backend.Write(buf[:n]); werr != nil {
				s.backendFailed(false)
				return
			}
			s.r.rm.bytesC2B.Add(uint64(n))
		}
		if rerr != nil {
			s.clientGone()
			return
		}
	}
}

// pumpBackendToClient splices backend bytes to the client under a
// rolling write deadline, so a client that stops reading loses its
// session instead of pinning the pump.
func (s *rsession) pumpBackendToClient() {
	bp := proxyBufPool.Get().(*[]byte)
	defer proxyBufPool.Put(bp)
	buf := *bp
	stall := s.r.opts.ClientWriteStall
	for {
		n, rerr := s.backend.Read(buf)
		if n > 0 {
			s.client.SetWriteDeadline(time.Now().Add(stall)) //nolint:errcheck
			if _, werr := s.client.Write(buf[:n]); werr != nil {
				s.clientGone()
				return
			}
			s.r.rm.bytesB2C.Add(uint64(n))
		}
		if rerr != nil {
			s.backendFailed(true)
			return
		}
	}
}

// clientGone classifies the session as closed by the client side (the
// client hung up, or stopped reading past the stall deadline).
func (s *rsession) clientGone() {
	if !s.classified.CompareAndSwap(false, true) {
		s.teardown()
		return
	}
	s.r.rm.closedClient.Inc()
	s.finish()
}

// backendFailed handles a backend-side error: decide deliberate close vs
// backend death (one confirm probe), and on death start a failover.
// ownsClientWrites is true when called from the backend→client pump,
// the only goroutine allowed to write the redirect goodbye without
// racing proxied payload bytes.
func (s *rsession) backendFailed(ownsClientWrites bool) {
	if !s.classified.CompareAndSwap(false, true) {
		s.teardown()
		return
	}
	if s.r.confirmBackend(s.b) {
		// The backend is answering probes: it closed this session on
		// purpose (eviction, drain) and its goodbye — if any — has
		// already been spliced through. Not a failover.
		s.r.rm.closedBackend.Inc()
		s.finish()
		return
	}
	// Backend death. Increment started before the outcome counter, and
	// resolve the outcome before finish, so started >= completed +
	// abandoned live and == after drain.
	s.r.rm.failoversStarted.Inc()
	standby := s.r.dir.LookupLive(s.key, func(i int) bool {
		return i != s.b.index && s.r.backends[i].getState() != backendDown
	})
	if standby >= 0 {
		if ownsClientWrites {
			s.sendRedirect()
		}
		s.r.rm.failoversCompleted.Inc()
		s.r.logf("arouter: failover %q: %s -> %s", s.key, s.b.name, s.r.backends[standby].name)
	} else {
		s.r.rm.failoversAbandoned.Inc()
		s.r.logf("arouter: failover %q abandoned: no live standby for %s", s.key, s.b.name)
	}
	s.finish()
}

// redirectGoodbyeTimeout bounds the redirect goodbye write, as the
// server's eviction goodbyeTimeout bounds its own.
const redirectGoodbyeTimeout = 250 * time.Millisecond

// sendRedirect writes the typed ErrRedirect goodbye that tells a
// redirect-aware client to redial and be re-placed. Best-effort: if the
// backend died mid-message the client's parser is already desynchronized
// and will reconnect off the transport error instead.
func (s *rsession) sendRedirect() {
	w := proto.Writer{Order: s.order}
	(&proto.ErrorMsg{Code: proto.ErrRedirect}).Encode(&w)
	s.client.SetWriteDeadline(time.Now().Add(redirectGoodbyeTimeout)) //nolint:errcheck
	s.client.Write(w.Buf)                                             //nolint:errcheck
}

// getState reads the backend's health state.
func (b *routerBackend) getState() int32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// setStateLocked transitions the state machine and counts it. b.mu held.
func (b *routerBackend) setStateLocked(next int32) {
	if b.state == next {
		return
	}
	b.state = next
	b.stateGauge.Set(int64(next))
	switch next {
	case backendHealthy:
		b.toHealthy.Inc()
	case backendSuspect:
		b.toSuspect.Inc()
	case backendDown:
		b.toDown.Inc()
	}
	b.r.logf("arouter: backend %s -> %s", b.name, stateName(next))
}

// noteSuccess records an answering backend: consecutive failures reset
// and any non-healthy state snaps back to healthy.
func (b *routerBackend) noteSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	b.setStateLocked(backendHealthy)
}

// noteFailure records one failed probe or dial: healthy→suspect on the
// first, suspect→down at FailThreshold consecutive.
func (b *routerBackend) noteFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.state == backendHealthy {
		b.setStateLocked(backendSuspect)
	}
	if b.consecFails >= b.r.opts.FailThreshold {
		b.setStateLocked(backendDown)
	}
}

// forceDown is the data-path verdict: a confirm probe just failed, so
// skip the remaining threshold — sessions are dying now.
func (b *routerBackend) forceDown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecFails < b.r.opts.FailThreshold {
		b.consecFails = b.r.opts.FailThreshold
	}
	b.setStateLocked(backendDown)
}

// prober is the backend's detect loop: one AF session, one GetTime round
// trip per ProbeInterval.
func (b *routerBackend) prober() {
	defer b.r.wg.Done()
	defer func() {
		if b.probeConn != nil {
			b.probeConn.Close()
		}
	}()
	t := time.NewTicker(b.r.opts.ProbeInterval)
	defer t.Stop()
	// One immediate probe so a backend that is dead at startup is
	// discovered within ProbeTimeout, not ProbeInterval.
	for {
		b.probes.Inc()
		if err := b.probeOnce(); err != nil {
			b.probeFails.Inc()
			b.noteFailure()
		} else {
			b.noteSuccess()
		}
		select {
		case <-b.r.done:
			return
		case <-t.C:
		}
	}
}

// probeOnce round-trips one GetTime on the prober's persistent session,
// re-handshaking when the session is fresh or the last probe failed.
func (b *routerBackend) probeOnce() error {
	deadline := time.Now().Add(b.r.opts.ProbeTimeout)
	if b.probeConn == nil {
		c, br, err := dialProbe(b.network, b.addr, deadline)
		if err != nil {
			return err
		}
		b.probeConn, b.probeBR, b.probeSeq = c, br, 0
	}
	b.probeConn.SetDeadline(deadline) //nolint:errcheck
	b.probeSeq++
	err := probeGetTime(b.probeConn, b.probeBR, b.probeSeq)
	if err != nil {
		b.probeConn.Close()
		b.probeConn, b.probeBR = nil, nil
		return err
	}
	b.probeConn.SetDeadline(time.Time{}) //nolint:errcheck
	return nil
}

// dialProbe opens and handshakes a probe session.
func dialProbe(network, addr string, deadline time.Time) (net.Conn, *bufio.Reader, error) {
	c, err := net.DialTimeout(network, addr, time.Until(deadline))
	if err != nil {
		return nil, nil, err
	}
	c.SetDeadline(deadline) //nolint:errcheck
	setup := proto.SetupRequest{
		ByteOrder: proto.LittleEndianOrder,
		Major:     proto.ProtocolMajor,
		Minor:     proto.ProtocolMinor,
	}
	if err := setup.Send(c); err != nil {
		c.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(c, 4096)
	rep, err := proto.ReadSetupReply(br, binary.LittleEndian)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	if !rep.Success {
		// A refusing backend (draining, full) is alive but not placeable;
		// treat it as probe failure so the directory routes around it.
		c.Close()
		return nil, nil, fmt.Errorf("backend refused setup: %s", rep.Reason)
	}
	return c, br, nil
}

// probeGetTime sends GetTime(device 0) with sequence seq and reads
// messages until the matching answer. Any answer — reply or protocol
// error — proves the backend is dispatching requests.
func probeGetTime(c net.Conn, br *bufio.Reader, seq uint16) error {
	w := proto.Writer{Order: binary.LittleEndian}
	if err := proto.AppendDeviceReq(&w, proto.OpGetTime, 0); err != nil {
		return err
	}
	if _, err := c.Write(w.Buf); err != nil {
		return err
	}
	var msg proto.Message
	for {
		if err := proto.ReadMessageInto(br, binary.LittleEndian, &msg); err != nil {
			return err
		}
		if msg.Reply != nil && msg.Reply.Seq == seq {
			return nil
		}
		if msg.Error != nil && msg.Error.Seq == seq && !proto.IsGoodbye(msg.Error.Code) {
			return nil
		}
	}
}

// confirmBackend is the decide step for a backend-side session error:
// one synchronous probe on a fresh connection. An already-down backend
// is not re-probed; a failing probe forces the backend down so the
// directory and every other dying session see the verdict immediately.
func (r *Router) confirmBackend(b *routerBackend) bool {
	if b.getState() == backendDown {
		return false
	}
	deadline := time.Now().Add(r.opts.ProbeTimeout)
	b.probes.Inc()
	c, br, err := dialProbe(b.network, b.addr, deadline)
	if err == nil {
		err = probeGetTime(c, br, 1)
		c.Close()
	}
	if err != nil {
		b.probeFails.Inc()
		b.forceDown()
		return false
	}
	b.noteSuccess()
	return true
}

// RouterBackendStats is one backend's health and traffic in a snapshot.
type RouterBackendStats struct {
	Name          string `json:"name"`
	Addr          string `json:"addr"`
	State         string `json:"state"`
	Sessions      int64  `json:"sessions"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	DialErrors    uint64 `json:"dial_errors"`
	ToHealthy     uint64 `json:"to_healthy"`
	ToSuspect     uint64 `json:"to_suspect"`
	ToDown        uint64 `json:"to_down"`
}

// RouterSnapshot is a consistent-enough view of the router's counters
// for invariant checks: outcome counters are read before their
// antecedents, so in every snapshot
//
//	FailoversStarted >= FailoversCompleted + FailoversAbandoned
//	Routes >= ClosedClient + ClosedBackend + FailoversStarted
//
// with exact equality once SessionsActive is 0 and no setup is in
// flight.
type RouterSnapshot struct {
	Routes         uint64 `json:"routes"`
	RouteErrors    uint64 `json:"route_errors"`
	SessionsActive int64  `json:"sessions_active"`

	ProxiedBytesC2B uint64 `json:"proxied_bytes_c2b"`
	ProxiedBytesB2C uint64 `json:"proxied_bytes_b2c"`

	ClosedClient       uint64 `json:"closed_client"`
	ClosedBackend      uint64 `json:"closed_backend"`
	FailoversStarted   uint64 `json:"failovers_started"`
	FailoversCompleted uint64 `json:"failovers_completed"`
	FailoversAbandoned uint64 `json:"failovers_abandoned"`

	Backends []RouterBackendStats `json:"backends"`
}

// Snapshot copies the router's counters. Read ordering gives the
// one-sided live laws documented on RouterSnapshot.
func (r *Router) Snapshot() RouterSnapshot {
	var s RouterSnapshot
	// Outcomes before antecedents: completed/abandoned before started,
	// all close classifications before routes.
	s.FailoversCompleted = r.rm.failoversCompleted.Load()
	s.FailoversAbandoned = r.rm.failoversAbandoned.Load()
	s.ClosedClient = r.rm.closedClient.Load()
	s.ClosedBackend = r.rm.closedBackend.Load()
	s.FailoversStarted = r.rm.failoversStarted.Load()
	s.SessionsActive = r.rm.sessionsActive.Load()
	s.Routes = r.rm.routes.Load()
	s.RouteErrors = r.rm.routeErrors.Load()
	s.ProxiedBytesC2B = r.rm.bytesC2B.Load()
	s.ProxiedBytesB2C = r.rm.bytesB2C.Load()
	for _, b := range r.backends {
		b.mu.Lock()
		state := b.state
		b.mu.Unlock()
		s.Backends = append(s.Backends, RouterBackendStats{
			Name:          b.name,
			Addr:          b.addr,
			State:         stateName(state),
			Sessions:      b.sessions.Load(),
			Probes:        b.probes.Load(),
			ProbeFailures: b.probeFails.Load(),
			DialErrors:    b.dialErrors.Load(),
			ToHealthy:     b.toHealthy.Load(),
			ToSuspect:     b.toSuspect.Load(),
			ToDown:        b.toDown.Load(),
		})
	}
	return s
}

// StatsHandler mirrors Server.StatsHandler for the router:
//
//	/stats       the RouterSnapshot as JSON (astat -router consumes it)
//	/debug/vars  the flat expvar view of the registry
func (r *Router) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck — client went away mid-scrape
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.reg.WriteExpvar(w) //nolint:errcheck
	})
	return mux
}

// ListenStats serves the router stats endpoints on addr in the
// background (the arouter -stats flag).
func (r *Router) ListenStats(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		srv := &http.Server{Handler: r.StatsHandler()}
		srv.Serve(l) //nolint:errcheck — ends when the listener closes
	}()
	return l, nil
}
