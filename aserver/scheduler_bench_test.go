package aserver

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkUpdateScheduler measures the per-engine cost of one worker
// pass — the unit the wheel fans out every tick: clear the queued flag,
// take the engine lock through the instrumented path, run due tasks
// (the periodic device update), re-arm the wheel timer. Device clocks
// are manual so the pass is pure scheduler + update machinery, and the
// driving now advances artificially so the periodic task is genuinely
// due on every visit. Must stay 0 allocs/op at every fleet size: a
// thousand-device tick may not generate garbage.
func BenchmarkUpdateScheduler(b *testing.B) {
	for _, devs := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("devs=%d", devs), func(b *testing.B) {
			s, err := New(Options{
				Devices: manyCodecs(devs),
				Logf:    func(string, ...any) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Round-robin the fleet; each visit advances the fake clock
			// past the engine's next deadline so runDue always fires the
			// periodic update (fan-out cost, not idle-poll cost).
			now := time.Now()
			step := s.engines[0].interval/time.Duration(devs) + time.Millisecond
			i := 0
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				e := s.engines[i]
				i++
				if i == len(s.engines) {
					i = 0
				}
				now = now.Add(step)
				// Mirror the fire path's bookkeeping so the overdue gauge
				// (decremented by runEngine) stays consistent.
				s.sm.schedOverdue.Add(1)
				s.sched.runEngine(e, now)
			}
		})
	}
}
