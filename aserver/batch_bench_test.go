package aserver

import (
	"bufio"
	"encoding/binary"
	"testing"

	"audiofile/internal/proto"
)

// Batching throughput benchmarks. BenchmarkSmallOpFlood is the headline
// A/B: the full server path (framing, dispatch, reply egress) under a
// pipelined small-op flood, with and without batching. Both are
// allocation gates: the steady state must not allocate per request.

// BenchmarkSmallOpFlood pumps pipelined bursts of GetTimes and 64-byte
// plays through a real connection (handshake, reader goroutine, writer
// goroutine) and reads every reply. One benchmark iteration is one
// request, so ops/sec compares directly across the batch modes.
func BenchmarkSmallOpFlood(b *testing.B) {
	modes := []struct {
		name string
		mode BatchMode
	}{
		{"batch=auto", BatchAuto},
		{"batch=off", BatchOff},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			srv, clk := batchTestServer(b, m.mode)
			clk.Advance(4096)
			srv.Sync()
			conn := srv.DialPipe()
			defer conn.Close()
			br := bufio.NewReader(conn)
			handshake(b, conn, br)

			w := proto.Writer{Order: binary.LittleEndian}
			if err := proto.AppendCreateAC(&w, proto.CreateACReq{AC: 1, Device: 0}); err != nil {
				b.Fatal(err)
			}
			if _, err := conn.Write(w.Buf); err != nil {
				b.Fatal(err)
			}

			// One pipelined burst: half GetTimes, half 64-byte plays at
			// the frozen device time (mixed in place, never parked).
			const burst = 32
			w.Reset()
			data := make([]byte, 64)
			for i := 0; i < burst/2; i++ {
				if err := proto.AppendDeviceReq(&w, proto.OpGetTime, 0); err != nil {
					b.Fatal(err)
				}
				if err := proto.AppendPlaySamples(&w, proto.PlaySamplesReq{
					AC: 1, Time: 4096, Data: data,
				}); err != nil {
					b.Fatal(err)
				}
			}
			buf := w.Buf

			var msg proto.Message
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += burst {
				if _, err := conn.Write(buf); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < burst; i++ {
					if err := proto.ReadMessageInto(br, binary.LittleEndian, &msg); err != nil {
						b.Fatal(err)
					}
					if msg.Reply == nil {
						b.Fatalf("want reply, got %+v", msg)
					}
				}
			}
		})
	}
}

// BenchmarkDispatchBatch isolates the dispatch layer: sixteen GetTimes
// served as one coalesced group (one lock acquisition, one staged
// message) versus sixteen standalone dispatches (a lock and a wire
// message each). One iteration is one request.
func BenchmarkDispatchBatch(b *testing.B) {
	body := make([]byte, 4) // device 0 in either byte order

	b.Run("group16", func(b *testing.B) {
		srv, c, clk, cleanup := benchServer(b)
		defer cleanup()
		clk.Advance(4096)
		e := srv.engineByDev[0]
		run := make([]runFrame, 16)
		for i := range run {
			run[i] = runFrame{op: proto.OpGetTime, frame: &body}
		}
		req := &request{c: c}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(run) {
			srv.dispatchHotGroup(c, e, run, req)
			drainOut(c)
		}
	})

	b.Run("single16", func(b *testing.B) {
		srv, c, clk, cleanup := benchServer(b)
		defer cleanup()
		clk.Advance(4096)
		req := &request{c: c, op: proto.OpGetTime, body: body}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += 16 {
			for k := 0; k < 16; k++ {
				srv.dispatchHot(req)
			}
			drainOut(c)
		}
	})
}
