// Package aserver implements the AudioFile server: the device-independent
// audio (DIA) dispatcher, the task mechanism, host access control, atoms
// and properties, and the built-in device-dependent (DDA) backends over
// simulated hardware.
//
// Where the paper's DIA is single threaded, this server is split into a
// control plane and a sharded data plane. The loop goroutine keeps the
// genuinely global state (client registry, atoms, properties, host
// access, AC lifecycle); each root device gets an engine — a mutex plus
// a passive timer on a sharded timer wheel — that owns its buffering
// state, periodic update, parked requests, and phone-line/patch pumps.
// Due engines are serviced by a bounded worker pool (the update
// scheduler), so the update plane runs O(shards + workers) goroutines
// regardless of device count. Hot requests
// (PlaySamples, RecordSamples, GetTime) are dispatched inline by the
// connection's reader goroutine under the owning engine's lock, so
// independent devices are served in parallel and the per-request channel
// hop of the single-loop design disappears. Per-connection FIFO order
// and per-device serialization are preserved; see DESIGN.md ("Threading
// model") for the invariants.
//
// A Server is embeddable: tests, benchmarks, and the example programs run
// one in-process and connect over Unix or TCP sockets (or a pipe).
package aserver

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"audiofile/internal/core"
	"audiofile/internal/lineserver"
	"audiofile/internal/phonesim"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// DeviceSpec describes one audio device to build at server startup.
type DeviceSpec struct {
	// Kind selects the device template: "codec" (8 kHz µ-law mono),
	// "phone" (codec wired to a simulated telephone line), or "hifi"
	// (stereo lin16, which also creates left and right mono sub-devices).
	Kind string
	// Name overrides the default device name.
	Name string
	// Rate overrides the sampling frequency (hifi only; codecs are 8 kHz).
	Rate int
	// HWFrames overrides the simulated hardware ring depth.
	HWFrames int
	// BufSeconds overrides the ~4 s server buffer depth.
	BufSeconds float64
	// Clock overrides the device sample clock (tests use ManualClock).
	Clock vdev.Clock
	// PPM skews the default real-time clock, modeling crystal tolerance.
	PPM float64
	// Loopback wires the device's output to its input through a simulated
	// patch cable with LoopbackDelay frames of delay.
	Loopback      bool
	LoopbackDelay int
	// Sink and Source override the hardware's analog side (ignored for
	// "phone", whose line is both). A nil Sink discards; a nil Source
	// records silence.
	Sink   vdev.PlaySink
	Source vdev.RecordSource
	// Addr is the UDP address of a LineServer box (kind "lineserver").
	Addr string
	// LSNoExtrapolate disables wall-clock time extrapolation in the
	// LineServer backend (deterministic manual-clock tests).
	LSNoExtrapolate bool
}

// Options configures a Server.
type Options struct {
	// Vendor is the server identification string in the setup reply.
	Vendor string
	// Devices lists the devices to create; nil builds DefaultDevices().
	Devices []DeviceSpec
	// AccessControl enables host-based access control at startup.
	AccessControl bool
	// TCPDelay re-enables Nagle's algorithm (TCP_NODELAY off) on accepted
	// TCP connections. The default (false) disables Nagle, so small
	// replies and events leave immediately instead of waiting for an ACK.
	TCPDelay bool
	// Logf receives server diagnostics; nil uses the standard logger.
	Logf func(format string, args ...any)

	// Overload budgets (see overload.go and DESIGN.md, "Overload &
	// shutdown"). Zero selects the default; negative disables the bound.

	// MaxClients caps registered clients; registering past it sheds the
	// oldest-idle client. 0 = unlimited.
	MaxClients int
	// ClientQueueBytes is the per-client outgoing queue byte budget
	// (default 256 KiB). A client over budget for longer than its
	// allowance is evicted with a typed Overload error.
	ClientQueueBytes int
	// EvictGrace is the fixed time a client may stay over budget
	// (default 250ms).
	EvictGrace time.Duration
	// EvictRateBytesPerSec adds "the audio the client is owed" to the
	// allowance: queued bytes at this consumption rate. 0 disables the
	// term (grace only).
	EvictRateBytesPerSec int
	// ServerQueueBytes bounds total queued bytes across all clients
	// (default 64 × ClientQueueBytes); exceeding it sheds the largest
	// queue.
	ServerQueueBytes int64
	// FrameBytesCeiling bounds pooled request-frame bytes in flight
	// (default 16 MiB); exceeding it sheds the oldest-idle client.
	FrameBytesCeiling int64

	// Update scheduler sizing (see scheduler.go). The update plane runs
	// O(UpdateShards + UpdateWorkers) goroutines however many devices the
	// server hosts.

	// UpdateShards is the number of timer-wheel shards driving device
	// updates. 0 = GOMAXPROCS/4 clamped to [1, 8].
	UpdateShards int
	// UpdateWorkers bounds the pool running due device updates.
	// 0 = GOMAXPROCS clamped to [1, 16], and never more than one per
	// engine.
	UpdateWorkers int

	// Batching selects the small-op batching mode (see DESIGN.md,
	// "Batching & run coalescing"). The zero value (BatchAuto) coalesces
	// pipelined ingress runs, stages small replies, and sweeps shard
	// batches; BatchOff restores the one-at-a-time paths for A/B
	// comparison and bisection (afd -batch=off).
	Batching BatchMode
}

// BatchMode selects the server's small-op batching behavior.
type BatchMode int

const (
	// BatchAuto (the default) coalesces runs of already-buffered requests
	// into one-lock dispatch groups with staged reply egress, and hands
	// the update workers whole shard sweeps.
	BatchAuto BatchMode = iota
	// BatchOff dispatches every request one at a time, as before PR 8.
	BatchOff
)

// DefaultDevices returns the paper's Alofi-like device complement: a
// telephone CODEC (device 0), a local CODEC (device 1), and a stereo HiFi
// device (2) with mono left (3) and right (4) views.
func DefaultDevices() []DeviceSpec {
	return []DeviceSpec{
		{Kind: "phone", Name: "phone0"},
		{Kind: "codec", Name: "codec0"},
		{Kind: "hifi", Name: "hifi0", Rate: 44100},
	}
}

// Server is an AudioFile server instance.
type Server struct {
	opts Options
	logf func(string, ...any)

	devices []*core.Device // by device index
	hw      map[*core.Device]*vdev.Device
	lines   map[int]*phonesim.Line // device index -> phone line
	descs   []proto.DeviceDesc

	atoms *atomTable
	props []map[uint32]*property // by device index

	// engines is the sharded data plane: one per root device, in
	// ascending device order. engineByDev maps every device index
	// (views included) to its root's engine. Both are immutable after New.
	engines     []*engine
	engineByDev []*engine

	// sched drives every engine's task queue: a sharded timer wheel plus
	// a bounded worker pool (scheduler.go). Immutable after New.
	sched *updateScheduler

	// clientMu guards the clients set and each client's eventMasks: the
	// loop writes them, engine goroutines read them to fan out events.
	// It is the innermost lock (engines may take it; never the reverse).
	clientMu sync.RWMutex
	clients  map[*client]struct{}

	accessEnabled bool
	accessList    []proto.HostEntry

	gainControl bool // EnableGainControl/DisableGainControl state

	reqCh   chan *request
	regCh   chan *client
	unregCh chan *client
	funcCh  chan func()
	done    chan struct{}
	stopped chan struct{}

	// tasks is the control plane's own timer queue (telephone re-hook
	// and the like); per-device periodic work lives on the engines.
	tasks *taskQueue

	// budget is the resolved overload policy (overload.go); immutable
	// after New. draining flips once, when Drain begins.
	budget   budgets
	draining atomic.Bool

	// batching is the resolved Options.Batching; immutable after New.
	batching bool

	mu        sync.Mutex
	listeners []net.Listener
	closers   []func()
	closed    bool
	wg        sync.WaitGroup

	// Stats observed by afperf.
	requestCount atomic.Uint64

	// sm is the observability layer: the metric registry plus the typed
	// server-wide counter set. Created before the engines (each engine
	// registers its own set against it); immutable after New.
	sm *serverMetrics
}

// New builds the devices and starts the server loop.
func New(opts Options) (*Server, error) {
	if opts.Vendor == "" {
		opts.Vendor = "audiofile-go"
	}
	if opts.Devices == nil {
		opts.Devices = DefaultDevices()
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		opts:          opts,
		logf:          logf,
		hw:            make(map[*core.Device]*vdev.Device),
		lines:         make(map[int]*phonesim.Line),
		atoms:         newAtomTable(),
		clients:       make(map[*client]struct{}),
		accessEnabled: opts.AccessControl,
		reqCh:         make(chan *request, 64),
		regCh:         make(chan *client),
		unregCh:       make(chan *client, 8),
		funcCh:        make(chan func()),
		done:          make(chan struct{}),
		stopped:       make(chan struct{}),
		tasks:         newTaskQueue(),
		sm:            newServerMetrics(),
		batching:      opts.Batching != BatchOff,
	}
	// The access list starts with the server's own host, as xhost does, so
	// enabling access control does not lock out local TCP clients.
	s.accessList = []proto.HostEntry{
		{Family: proto.FamilyInternet, Addr: net.IPv4(127, 0, 0, 1).To4()},
		{Family: proto.FamilyInternet6, Addr: net.IPv6loopback},
	}
	s.initOverload()
	if err := s.buildDevices(); err != nil {
		return nil, err
	}
	for range s.devices {
		s.props = append(s.props, make(map[uint32]*property))
	}
	// Build the data plane: one engine per root device (views share their
	// parent's), each seeded with its periodic update task (§7.2).
	roots := make(map[*core.Device]*engine)
	for _, d := range s.devices {
		root := d
		if d.IsView() {
			root = d.Parent()
		}
		e := roots[root]
		if e == nil {
			e = newEngine(s, len(s.engines), root, s.lines[root.Index])
			roots[root] = e
			s.engines = append(s.engines, e)
		}
		s.engineByDev = append(s.engineByDev, e)
	}
	// The update plane: one sharded wheel + one bounded worker pool for
	// every engine, instead of a goroutine per engine.
	s.sched = newUpdateScheduler(s, len(s.engines), opts.UpdateShards, opts.UpdateWorkers)
	for _, e := range s.engines {
		s.sched.register(e)
	}
	go s.loop()
	return s, nil
}

// buildDevices constructs the DDA: virtual hardware plus core devices.
func (s *Server) buildDevices() error {
	for _, spec := range s.opts.Devices {
		switch spec.Kind {
		case "codec", "phone":
			rate := spec.Rate
			if rate == 0 {
				rate = 8000
			}
			hwf := spec.HWFrames
			if hwf == 0 {
				hwf = 1024 // the LoFi DSP CODEC ring: ~125 ms at 8 kHz
			}
			clock := spec.Clock
			if clock == nil {
				clock = vdev.NewRealClock(rate, spec.PPM)
			}
			sink, source := spec.Sink, spec.Source
			var line *phonesim.Line
			phoneMask := uint32(0)
			if spec.Kind == "phone" {
				line = phonesim.NewLine(rate)
				sink, source = line, line
				phoneMask = 1
			} else if spec.Loopback {
				lb := vdev.NewLoopback(4*hwf, 1, spec.LoopbackDelay, 0xFF)
				sink, source = lb, lb
			}
			hw := vdev.New(vdev.Config{
				Name: spec.Name, Rate: rate, Enc: sampleconv.MU255, Channels: 1,
				HWFrames: hwf, Clock: clock, Sink: sink, Source: source,
			})
			devType := uint8(proto.DevCodec)
			if line != nil {
				devType = proto.DevPhone
			}
			dev := core.NewDevice(core.Config{
				Name: spec.Name, Type: devType, Rate: rate,
				Enc: sampleconv.MU255, Channels: 1, BufSeconds: spec.BufSeconds,
				InputsFromPhone: phoneMask, OutputsToPhone: phoneMask,
			}, hw)
			idx := len(s.devices)
			dev.Index = idx
			s.devices = append(s.devices, dev)
			s.hw[dev] = hw
			if line != nil {
				s.lines[idx] = line
			}
		case "hifi":
			rate := spec.Rate
			if rate == 0 {
				rate = 44100
			}
			hwf := spec.HWFrames
			if hwf == 0 {
				hwf = 4096 // the LoFi DSP HiFi ring: ~85 ms at 48 kHz
			}
			clock := spec.Clock
			if clock == nil {
				clock = vdev.NewRealClock(rate, spec.PPM)
			}
			sink, source := spec.Sink, spec.Source
			if spec.Loopback {
				lb := vdev.NewLoopback(4*hwf, 4, spec.LoopbackDelay, 0)
				sink, source = lb, lb
			}
			hw := vdev.New(vdev.Config{
				Name: spec.Name, Rate: rate, Enc: sampleconv.LIN16, Channels: 2,
				HWFrames: hwf, Clock: clock, Sink: sink, Source: source,
			})
			stereo := core.NewDevice(core.Config{
				Name: spec.Name, Type: proto.DevHiFi, Rate: rate,
				Enc: sampleconv.LIN16, Channels: 2, BufSeconds: spec.BufSeconds,
				NumInputs: 2, NumOutputs: 2,
			}, hw)
			idx := len(s.devices)
			stereo.Index = idx
			s.devices = append(s.devices, stereo)
			s.hw[stereo] = hw
			left := core.NewChannelView(spec.Name+"L", proto.DevMono, stereo, 0, 1)
			left.Index = idx + 1
			right := core.NewChannelView(spec.Name+"R", proto.DevMono, stereo, 1, 1)
			right.Index = idx + 2
			s.devices = append(s.devices, left, right)
		case "lineserver":
			// The Als design (§7.4.3): the server runs here, the audio
			// hardware is a LineServer box across UDP.
			rate := spec.Rate
			if rate == 0 {
				rate = 8000
			}
			var opts []lineserver.BackendOption
			if spec.LSNoExtrapolate {
				opts = append(opts, lineserver.WithoutExtrapolation())
			}
			backend, err := lineserver.Dial(spec.Addr, rate, opts...)
			if err != nil {
				return fmt.Errorf("aserver: lineserver %s: %w", spec.Addr, err)
			}
			name := spec.Name
			if name == "" {
				name = "als0"
			}
			dev := core.NewDevice(core.Config{
				Name: name, Type: proto.DevCodec, Rate: rate,
				Enc: sampleconv.MU255, Channels: 1, BufSeconds: spec.BufSeconds,
			}, backend)
			dev.Index = len(s.devices)
			s.devices = append(s.devices, dev)
			s.closers = append(s.closers, backend.Close)
		default:
			return fmt.Errorf("aserver: unknown device kind %q", spec.Kind)
		}
	}
	if len(s.devices) == 0 {
		return errors.New("aserver: no devices configured")
	}
	for _, d := range s.devices {
		s.descs = append(s.descs, deviceDesc(d))
	}
	return nil
}

// deviceDesc builds the setup-reply description for a device.
func deviceDesc(d *core.Device) proto.DeviceDesc {
	return proto.DeviceDesc{
		Index:           uint8(d.Index),
		Type:            d.Cfg.Type,
		Name:            d.Cfg.Name,
		PlaySampleFreq:  uint32(d.Cfg.Rate),
		PlayBufType:     uint8(d.Cfg.Enc),
		PlayNchannels:   uint8(d.Cfg.Channels),
		PlayNSamplesBuf: uint32(d.BufFrames()),
		RecSampleFreq:   uint32(d.Cfg.Rate),
		RecBufType:      uint8(d.Cfg.Enc),
		RecNchannels:    uint8(d.Cfg.Channels),
		RecNSamplesBuf:  uint32(d.BufFrames()),
		NumberOfInputs:  uint8(d.Cfg.NumInputs),
		NumberOfOutputs: uint8(d.Cfg.NumOutputs),
		InputsFromPhone: d.Cfg.InputsFromPhone,
		OutputsToPhone:  d.Cfg.OutputsToPhone,
	}
}

// Device returns the core device at index i (for embedding harnesses).
func (s *Server) Device(i int) *core.Device { return s.devices[i] }

// NumDevices returns the number of abstract devices.
func (s *Server) NumDevices() int { return len(s.devices) }

// PhoneLine returns the simulated telephone line behind device i, or nil.
func (s *Server) PhoneLine(i int) *phonesim.Line { return s.lines[i] }

// Hardware returns the virtual hardware behind device i (views return
// their parent's), or nil for non-vdev backends.
func (s *Server) Hardware(i int) *vdev.Device {
	d := s.devices[i]
	if d.IsView() {
		d = d.Parent()
	}
	return s.hw[d]
}

// Do runs fn inside the server loop and waits for it, giving tests and
// embedded harnesses race-free access to loop-owned state.
func (s *Server) Do(fn func()) {
	doneCh := make(chan struct{})
	select {
	case s.funcCh <- func() { fn(); close(doneCh) }:
		<-doneCh
	case <-s.stopped:
	}
}

// Sync forces one update cycle on every device, synchronously. Tests with
// manual clocks call this instead of waiting for the periodic tasks.
func (s *Server) Sync() {
	s.Do(func() {
		for _, e := range s.engines {
			e.mu.Lock()
			e.updateLocked()
			e.mu.Unlock()
		}
	})
}

// Serve accepts connections on l until the listener or server closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("aserver: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Listen starts serving on the given network address in the background.
func (s *Server) Listen(network, addr string) (net.Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l) //nolint:errcheck — ends when the listener closes
	return l, nil
}

// DialPipe returns an in-process client connection to the server.
func (s *Server) DialPipe() net.Conn {
	cc, sc := net.Pipe()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.handleConn(sc)
	}()
	return cc
}

// Close shuts the server down: listeners close, clients disconnect, the
// loop exits.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ls := s.listeners
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	close(s.done)
	<-s.stopped
	s.sched.stop()
	s.wg.Wait()
	for _, fn := range s.closers {
		fn()
	}
}
