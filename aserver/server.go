// Package aserver implements the AudioFile server: the device-independent
// audio (DIA) main loop, the request dispatcher, the task mechanism, host
// access control, atoms and properties, and the built-in device-dependent
// (DDA) backends over simulated hardware.
//
// Like the paper's server, the DIA is single threaded: one goroutine owns
// every device, client, and table. Per-connection goroutines do only
// transport work — framing requests into the loop and draining the outgoing
// message queue — the Go analogue of the select()-driven file descriptors
// in the C implementation. Fairness comes from round-robin servicing of
// the request channel, with large transfers already broken into 8 KiB
// chunks by the client library.
//
// A Server is embeddable: tests, benchmarks, and the example programs run
// one in-process and connect over Unix or TCP sockets (or a pipe).
package aserver

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"audiofile/internal/core"
	"audiofile/internal/lineserver"
	"audiofile/internal/phonesim"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// DeviceSpec describes one audio device to build at server startup.
type DeviceSpec struct {
	// Kind selects the device template: "codec" (8 kHz µ-law mono),
	// "phone" (codec wired to a simulated telephone line), or "hifi"
	// (stereo lin16, which also creates left and right mono sub-devices).
	Kind string
	// Name overrides the default device name.
	Name string
	// Rate overrides the sampling frequency (hifi only; codecs are 8 kHz).
	Rate int
	// HWFrames overrides the simulated hardware ring depth.
	HWFrames int
	// BufSeconds overrides the ~4 s server buffer depth.
	BufSeconds float64
	// Clock overrides the device sample clock (tests use ManualClock).
	Clock vdev.Clock
	// PPM skews the default real-time clock, modeling crystal tolerance.
	PPM float64
	// Loopback wires the device's output to its input through a simulated
	// patch cable with LoopbackDelay frames of delay.
	Loopback      bool
	LoopbackDelay int
	// Sink and Source override the hardware's analog side (ignored for
	// "phone", whose line is both). A nil Sink discards; a nil Source
	// records silence.
	Sink   vdev.PlaySink
	Source vdev.RecordSource
	// Addr is the UDP address of a LineServer box (kind "lineserver").
	Addr string
	// LSNoExtrapolate disables wall-clock time extrapolation in the
	// LineServer backend (deterministic manual-clock tests).
	LSNoExtrapolate bool
}

// Options configures a Server.
type Options struct {
	// Vendor is the server identification string in the setup reply.
	Vendor string
	// Devices lists the devices to create; nil builds DefaultDevices().
	Devices []DeviceSpec
	// AccessControl enables host-based access control at startup.
	AccessControl bool
	// Logf receives server diagnostics; nil uses the standard logger.
	Logf func(format string, args ...any)
}

// DefaultDevices returns the paper's Alofi-like device complement: a
// telephone CODEC (device 0), a local CODEC (device 1), and a stereo HiFi
// device (2) with mono left (3) and right (4) views.
func DefaultDevices() []DeviceSpec {
	return []DeviceSpec{
		{Kind: "phone", Name: "phone0"},
		{Kind: "codec", Name: "codec0"},
		{Kind: "hifi", Name: "hifi0", Rate: 44100},
	}
}

// Server is an AudioFile server instance.
type Server struct {
	opts Options
	logf func(string, ...any)

	devices []*core.Device // by device index
	hw      map[*core.Device]*vdev.Device
	lines   map[int]*phonesim.Line // device index -> phone line
	descs   []proto.DeviceDesc

	atoms *atomTable
	props []map[uint32]*property // by device index

	clients map[*client]struct{}

	accessEnabled bool
	accessList    []proto.HostEntry

	passThrough map[int]*patch // src device index -> patch

	gainControl bool // EnableGainControl/DisableGainControl state

	reqCh   chan *request
	regCh   chan *client
	unregCh chan *client
	funcCh  chan func()
	done    chan struct{}
	stopped chan struct{}

	tasks *taskQueue

	mu        sync.Mutex
	listeners []net.Listener
	closers   []func()
	closed    bool
	wg        sync.WaitGroup

	// Stats observed by afperf.
	requestCount uint64
}

// New builds the devices and starts the server loop.
func New(opts Options) (*Server, error) {
	if opts.Vendor == "" {
		opts.Vendor = "audiofile-go"
	}
	if opts.Devices == nil {
		opts.Devices = DefaultDevices()
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		opts:          opts,
		logf:          logf,
		hw:            make(map[*core.Device]*vdev.Device),
		lines:         make(map[int]*phonesim.Line),
		atoms:         newAtomTable(),
		clients:       make(map[*client]struct{}),
		accessEnabled: opts.AccessControl,
		passThrough:   make(map[int]*patch),
		reqCh:         make(chan *request, 64),
		regCh:         make(chan *client),
		unregCh:       make(chan *client, 8),
		funcCh:        make(chan func()),
		done:          make(chan struct{}),
		stopped:       make(chan struct{}),
		tasks:         newTaskQueue(),
	}
	// The access list starts with the server's own host, as xhost does, so
	// enabling access control does not lock out local TCP clients.
	s.accessList = []proto.HostEntry{
		{Family: proto.FamilyInternet, Addr: net.IPv4(127, 0, 0, 1).To4()},
		{Family: proto.FamilyInternet6, Addr: net.IPv6loopback},
	}
	if err := s.buildDevices(); err != nil {
		return nil, err
	}
	for range s.devices {
		s.props = append(s.props, make(map[uint32]*property))
	}
	s.scheduleUpdates()
	go s.loop()
	return s, nil
}

// buildDevices constructs the DDA: virtual hardware plus core devices.
func (s *Server) buildDevices() error {
	for _, spec := range s.opts.Devices {
		switch spec.Kind {
		case "codec", "phone":
			rate := spec.Rate
			if rate == 0 {
				rate = 8000
			}
			hwf := spec.HWFrames
			if hwf == 0 {
				hwf = 1024 // the LoFi DSP CODEC ring: ~125 ms at 8 kHz
			}
			clock := spec.Clock
			if clock == nil {
				clock = vdev.NewRealClock(rate, spec.PPM)
			}
			sink, source := spec.Sink, spec.Source
			var line *phonesim.Line
			phoneMask := uint32(0)
			if spec.Kind == "phone" {
				line = phonesim.NewLine(rate)
				sink, source = line, line
				phoneMask = 1
			} else if spec.Loopback {
				lb := vdev.NewLoopback(4*hwf, 1, spec.LoopbackDelay, 0xFF)
				sink, source = lb, lb
			}
			hw := vdev.New(vdev.Config{
				Name: spec.Name, Rate: rate, Enc: sampleconv.MU255, Channels: 1,
				HWFrames: hwf, Clock: clock, Sink: sink, Source: source,
			})
			devType := uint8(proto.DevCodec)
			if line != nil {
				devType = proto.DevPhone
			}
			dev := core.NewDevice(core.Config{
				Name: spec.Name, Type: devType, Rate: rate,
				Enc: sampleconv.MU255, Channels: 1, BufSeconds: spec.BufSeconds,
				InputsFromPhone: phoneMask, OutputsToPhone: phoneMask,
			}, hw)
			idx := len(s.devices)
			dev.Index = idx
			s.devices = append(s.devices, dev)
			s.hw[dev] = hw
			if line != nil {
				s.lines[idx] = line
			}
		case "hifi":
			rate := spec.Rate
			if rate == 0 {
				rate = 44100
			}
			hwf := spec.HWFrames
			if hwf == 0 {
				hwf = 4096 // the LoFi DSP HiFi ring: ~85 ms at 48 kHz
			}
			clock := spec.Clock
			if clock == nil {
				clock = vdev.NewRealClock(rate, spec.PPM)
			}
			sink, source := spec.Sink, spec.Source
			if spec.Loopback {
				lb := vdev.NewLoopback(4*hwf, 4, spec.LoopbackDelay, 0)
				sink, source = lb, lb
			}
			hw := vdev.New(vdev.Config{
				Name: spec.Name, Rate: rate, Enc: sampleconv.LIN16, Channels: 2,
				HWFrames: hwf, Clock: clock, Sink: sink, Source: source,
			})
			stereo := core.NewDevice(core.Config{
				Name: spec.Name, Type: proto.DevHiFi, Rate: rate,
				Enc: sampleconv.LIN16, Channels: 2, BufSeconds: spec.BufSeconds,
				NumInputs: 2, NumOutputs: 2,
			}, hw)
			idx := len(s.devices)
			stereo.Index = idx
			s.devices = append(s.devices, stereo)
			s.hw[stereo] = hw
			left := core.NewChannelView(spec.Name+"L", proto.DevMono, stereo, 0, 1)
			left.Index = idx + 1
			right := core.NewChannelView(spec.Name+"R", proto.DevMono, stereo, 1, 1)
			right.Index = idx + 2
			s.devices = append(s.devices, left, right)
		case "lineserver":
			// The Als design (§7.4.3): the server runs here, the audio
			// hardware is a LineServer box across UDP.
			rate := spec.Rate
			if rate == 0 {
				rate = 8000
			}
			var opts []lineserver.BackendOption
			if spec.LSNoExtrapolate {
				opts = append(opts, lineserver.WithoutExtrapolation())
			}
			backend, err := lineserver.Dial(spec.Addr, rate, opts...)
			if err != nil {
				return fmt.Errorf("aserver: lineserver %s: %w", spec.Addr, err)
			}
			name := spec.Name
			if name == "" {
				name = "als0"
			}
			dev := core.NewDevice(core.Config{
				Name: name, Type: proto.DevCodec, Rate: rate,
				Enc: sampleconv.MU255, Channels: 1, BufSeconds: spec.BufSeconds,
			}, backend)
			dev.Index = len(s.devices)
			s.devices = append(s.devices, dev)
			s.closers = append(s.closers, backend.Close)
		default:
			return fmt.Errorf("aserver: unknown device kind %q", spec.Kind)
		}
	}
	if len(s.devices) == 0 {
		return errors.New("aserver: no devices configured")
	}
	for _, d := range s.devices {
		s.descs = append(s.descs, deviceDesc(d))
	}
	return nil
}

// deviceDesc builds the setup-reply description for a device.
func deviceDesc(d *core.Device) proto.DeviceDesc {
	return proto.DeviceDesc{
		Index:           uint8(d.Index),
		Type:            d.Cfg.Type,
		Name:            d.Cfg.Name,
		PlaySampleFreq:  uint32(d.Cfg.Rate),
		PlayBufType:     uint8(d.Cfg.Enc),
		PlayNchannels:   uint8(d.Cfg.Channels),
		PlayNSamplesBuf: uint32(d.BufFrames()),
		RecSampleFreq:   uint32(d.Cfg.Rate),
		RecBufType:      uint8(d.Cfg.Enc),
		RecNchannels:    uint8(d.Cfg.Channels),
		RecNSamplesBuf:  uint32(d.BufFrames()),
		NumberOfInputs:  uint8(d.Cfg.NumInputs),
		NumberOfOutputs: uint8(d.Cfg.NumOutputs),
		InputsFromPhone: d.Cfg.InputsFromPhone,
		OutputsToPhone:  d.Cfg.OutputsToPhone,
	}
}

// scheduleUpdates arms the periodic update task for each root device
// (§7.2): every MSUpdate milliseconds, or half the hardware buffer
// duration if that is shorter.
func (s *Server) scheduleUpdates() {
	seen := make(map[*core.Device]bool)
	for _, d := range s.devices {
		root := d
		if d.IsView() {
			root = d.Parent()
		}
		if seen[root] {
			continue
		}
		seen[root] = true
		hwDur := time.Duration(root.Backend().HWFrames()) * time.Second / time.Duration(root.Cfg.Rate)
		interval := core.MSUpdate * time.Millisecond
		if hwDur/2 < interval {
			interval = hwDur / 2
		}
		dev := root
		var tick func()
		tick = func() {
			s.updateDevice(dev)
			s.tasks.add(time.Now().Add(interval), tick)
		}
		s.tasks.add(time.Now().Add(interval), tick)
	}
}

// Device returns the core device at index i (for embedding harnesses).
func (s *Server) Device(i int) *core.Device { return s.devices[i] }

// NumDevices returns the number of abstract devices.
func (s *Server) NumDevices() int { return len(s.devices) }

// PhoneLine returns the simulated telephone line behind device i, or nil.
func (s *Server) PhoneLine(i int) *phonesim.Line { return s.lines[i] }

// Hardware returns the virtual hardware behind device i (views return
// their parent's), or nil for non-vdev backends.
func (s *Server) Hardware(i int) *vdev.Device {
	d := s.devices[i]
	if d.IsView() {
		d = d.Parent()
	}
	return s.hw[d]
}

// Do runs fn inside the server loop and waits for it, giving tests and
// embedded harnesses race-free access to loop-owned state.
func (s *Server) Do(fn func()) {
	doneCh := make(chan struct{})
	select {
	case s.funcCh <- func() { fn(); close(doneCh) }:
		<-doneCh
	case <-s.stopped:
	}
}

// Sync forces one update cycle on every device, synchronously. Tests with
// manual clocks call this instead of waiting for the periodic task.
func (s *Server) Sync() {
	s.Do(func() {
		seen := make(map[*core.Device]bool)
		for _, d := range s.devices {
			root := d
			if d.IsView() {
				root = d.Parent()
			}
			if !seen[root] {
				seen[root] = true
				s.updateDevice(root)
			}
		}
	})
}

// Serve accepts connections on l until the listener or server closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("aserver: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Listen starts serving on the given network address in the background.
func (s *Server) Listen(network, addr string) (net.Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l) //nolint:errcheck — ends when the listener closes
	return l, nil
}

// DialPipe returns an in-process client connection to the server.
func (s *Server) DialPipe() net.Conn {
	cc, sc := net.Pipe()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.handleConn(sc)
	}()
	return cc
}

// Close shuts the server down: listeners close, clients disconnect, the
// loop exits.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ls := s.listeners
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	close(s.done)
	<-s.stopped
	s.wg.Wait()
	for _, fn := range s.closers {
		fn()
	}
}
