package aserver

import (
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"testing"

	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// Dispatch benchmarks: the full server-side request path (decode, engine,
// reply marshal, queue, writer) run inside the loop via Do. These are the
// allocation gates for the pooled staging buffers — the steady state must
// not allocate per request.

// benchServer builds a one-codec server on a manual clock and a client
// over a pipe, via the same newClient constructor the accept path uses,
// with the real writer goroutine draining the queue (its far end is
// discarded). Budgets are disabled so the eviction policy never trips
// mid-benchmark.
func benchServer(b *testing.B) (*Server, *client, *vdev.ManualClock, func()) {
	b.Helper()
	clk := vdev.NewManualClock(8000)
	srv, err := New(Options{
		Devices:          []DeviceSpec{{Kind: "codec", Clock: clk}},
		Logf:             func(string, ...any) {},
		ClientQueueBytes: -1,
		ServerQueueBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p1, p2 := net.Pipe()
	c := newClient(srv, p1, binary.LittleEndian)
	go c.writer()
	go io.Copy(io.Discard, p2) //nolint:errcheck
	srv.Do(func() {
		d := srv.Device(0)
		c.acs[1] = &ac{id: 1, dev: d, devIndex: 0,
			enc: d.Cfg.Enc, channels: d.Cfg.Channels}
	})
	cleanup := func() {
		close(c.closed) // writer flushes the tail, closes p1, settles accounting
		p2.Close()
		srv.Close()
	}
	return srv, c, clk, cleanup
}

// drainOut waits until the writer has flushed every queued message (the
// byte accounting reaching zero means the buffers are back in the pool),
// keeping the benchmark's steady state bounded.
func drainOut(c *client) {
	for c.queuedBytes.Load() != 0 {
		runtime.Gosched()
	}
}

// playBody marshals a PlaySamples request body (AC, Time, NBytes, data).
func playBody(ac, at uint32, data []byte) []byte {
	body := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(body[0:], ac)
	binary.LittleEndian.PutUint32(body[4:], at)
	binary.LittleEndian.PutUint32(body[8:], uint32(len(data)))
	copy(body[12:], data)
	return body
}

// recordBody marshals a RecordSamples request body (AC, Time, NBytes).
func recordBody(ac, at, nbytes uint32) []byte {
	body := make([]byte, 12)
	binary.LittleEndian.PutUint32(body[0:], ac)
	binary.LittleEndian.PutUint32(body[4:], at)
	binary.LittleEndian.PutUint32(body[8:], nbytes)
	return body
}

// BenchmarkDispatchPlayMix replays the same 2048-frame µ-law region with
// mixing on every iteration: decode, Play (mix kernel), reply.
func BenchmarkDispatchPlayMix(b *testing.B) {
	srv, c, clk, cleanup := benchServer(b)
	defer cleanup()
	clk.Advance(4096)
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i*7 + 1)
	}
	srv.Do(func() {
		now := uint32(srv.Device(0).Time())
		req := &request{c: c, op: proto.OpPlaySamples,
			body: playBody(1, now+128, data)}
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.dispatch(req)
			drainOut(c)
		}
	})
}

// BenchmarkDispatchRecord records an available 2048-frame window on every
// iteration: decode, Record (convert kernel into pooled staging), reply
// with the sample payload.
func BenchmarkDispatchRecord(b *testing.B) {
	srv, c, clk, cleanup := benchServer(b)
	defer cleanup()
	clk.Advance(4096)
	srv.Sync()
	srv.Do(func() {
		now := uint32(srv.Device(0).Time())
		req := &request{c: c, op: proto.OpRecordSamples,
			ext:  proto.SampleFlagNoBlock,
			body: recordBody(1, now-2048, 2048)}
		b.SetBytes(2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.dispatch(req)
			drainOut(c)
		}
	})
}

// BenchmarkDispatchRecordADPCM runs the compressed record path: capture
// lin16 into pooled staging, compress 2:1, reply.
func BenchmarkDispatchRecordADPCM(b *testing.B) {
	srv, c, clk, cleanup := benchServer(b)
	defer cleanup()
	srv.Do(func() {
		a := c.acs[1]
		a.enc = sampleconv.ADPCM4
		a.recCoder = &sampleconv.ADPCMCoder{}
	})
	clk.Advance(4096)
	srv.Sync()
	srv.Do(func() {
		now := uint32(srv.Device(0).Time())
		req := &request{c: c, op: proto.OpRecordSamples,
			ext:  proto.SampleFlagNoBlock,
			body: recordBody(1, now-2048, 1024)}
		b.SetBytes(2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.dispatch(req)
			drainOut(c)
		}
	})
}
