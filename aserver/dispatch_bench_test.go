package aserver

import (
	"encoding/binary"
	"net"
	"testing"

	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
	"audiofile/internal/vdev"
)

// Dispatch benchmarks: the full server-side request path (decode, engine,
// reply marshal, queue) without a transport, run inside the loop via Do.
// These are the allocation gates for the pooled staging buffers — the
// steady state must not allocate per request.

// benchServer builds a one-codec server on a manual clock and a loop-side
// client. Benchmarks drain the client's outgoing queue back into the
// message pool inline (drainOut) so the queue can never overflow.
func benchServer(b *testing.B) (*Server, *client, *vdev.ManualClock, func()) {
	b.Helper()
	clk := vdev.NewManualClock(8000)
	srv, err := New(Options{
		Devices: []DeviceSpec{{Kind: "codec", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	p1, p2 := net.Pipe()
	c := &client{
		s:          srv,
		conn:       p1,
		order:      binary.LittleEndian,
		outCh:      make(chan *[]byte, outQueueDepth),
		closed:     make(chan struct{}),
		acs:        make(map[uint32]*ac),
		eventMasks: make(map[int]uint32),
	}
	srv.Do(func() {
		d := srv.Device(0)
		c.acs[1] = &ac{id: 1, dev: d, devIndex: 0,
			enc: d.Cfg.Enc, channels: d.Cfg.Channels}
	})
	cleanup := func() {
		drainOut(c)
		p1.Close()
		p2.Close()
		srv.Close()
	}
	return srv, c, clk, cleanup
}

// drainOut returns every queued outgoing message to the pool.
func drainOut(c *client) {
	for {
		select {
		case m := <-c.outCh:
			putMsg(m)
		default:
			return
		}
	}
}

// playBody marshals a PlaySamples request body (AC, Time, NBytes, data).
func playBody(ac, at uint32, data []byte) []byte {
	body := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(body[0:], ac)
	binary.LittleEndian.PutUint32(body[4:], at)
	binary.LittleEndian.PutUint32(body[8:], uint32(len(data)))
	copy(body[12:], data)
	return body
}

// recordBody marshals a RecordSamples request body (AC, Time, NBytes).
func recordBody(ac, at, nbytes uint32) []byte {
	body := make([]byte, 12)
	binary.LittleEndian.PutUint32(body[0:], ac)
	binary.LittleEndian.PutUint32(body[4:], at)
	binary.LittleEndian.PutUint32(body[8:], nbytes)
	return body
}

// BenchmarkDispatchPlayMix replays the same 2048-frame µ-law region with
// mixing on every iteration: decode, Play (mix kernel), reply.
func BenchmarkDispatchPlayMix(b *testing.B) {
	srv, c, clk, cleanup := benchServer(b)
	defer cleanup()
	clk.Advance(4096)
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i*7 + 1)
	}
	srv.Do(func() {
		now := uint32(srv.Device(0).Time())
		req := &request{c: c, op: proto.OpPlaySamples,
			body: playBody(1, now+128, data)}
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.dispatch(req)
			drainOut(c)
		}
	})
}

// BenchmarkDispatchRecord records an available 2048-frame window on every
// iteration: decode, Record (convert kernel into pooled staging), reply
// with the sample payload.
func BenchmarkDispatchRecord(b *testing.B) {
	srv, c, clk, cleanup := benchServer(b)
	defer cleanup()
	clk.Advance(4096)
	srv.Sync()
	srv.Do(func() {
		now := uint32(srv.Device(0).Time())
		req := &request{c: c, op: proto.OpRecordSamples,
			ext:  proto.SampleFlagNoBlock,
			body: recordBody(1, now-2048, 2048)}
		b.SetBytes(2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.dispatch(req)
			drainOut(c)
		}
	})
}

// BenchmarkDispatchRecordADPCM runs the compressed record path: capture
// lin16 into pooled staging, compress 2:1, reply.
func BenchmarkDispatchRecordADPCM(b *testing.B) {
	srv, c, clk, cleanup := benchServer(b)
	defer cleanup()
	srv.Do(func() {
		a := c.acs[1]
		a.enc = sampleconv.ADPCM4
		a.recCoder = &sampleconv.ADPCMCoder{}
	})
	clk.Advance(4096)
	srv.Sync()
	srv.Do(func() {
		now := uint32(srv.Device(0).Time())
		req := &request{c: c, op: proto.OpRecordSamples,
			ext:  proto.SampleFlagNoBlock,
			body: recordBody(1, now-2048, 1024)}
		b.SetBytes(2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.dispatch(req)
			drainOut(c)
		}
	})
}
