package aserver

import (
	"runtime"
	"time"

	"audiofile/internal/timerwheel"
	"sync"
)

// The update scheduler is the engine goroutine's replacement: where each
// engine used to own a timer goroutine (O(devices) goroutines waking
// independently), all engines now register one passive timer each with a
// sharded timer wheel, and a bounded worker pool runs the due engines'
// task queues in batches. The update plane's resident goroutine count is
// O(shards + workers) regardless of device count.
//
// Protocol, per engine:
//
//   - The engine's task queue (periodic update, precise park wake-ups)
//     is unchanged and still guarded by e.mu.
//   - The wheel timer is armed for the queue's earliest deadline. Arming
//     happens under e.mu — by the worker after a task pass, or by
//     addTaskLocked when a new task beats the armed deadline (the old
//     `wake` channel poke became a wheel promotion).
//   - When the timer fires, the shard hands the engine to the worker
//     pool; e.queued dedupes so an engine is in the pool's queue at most
//     once. A worker takes e.mu through the instrumented lockTimed path,
//     runs every due task, re-arms, and releases — identical lock
//     protocol and metrics to the old engine goroutine.
//
// Liveness invariant: whenever an engine's task queue is non-empty, its
// timer is armed or the engine is queued for a worker. Fires that race
// with the queued flag are dropped precisely because a worker pass —
// which always re-arms under the lock — is already pending.
type updateScheduler struct {
	s       *Server
	wheel   *timerwheel.Wheel
	work    chan schedItem
	workers int
	wg      sync.WaitGroup
}

// schedItem is one unit handed to the worker pool: a due engine, a whole
// shard sweep (batching on), or a generic job (drain polling), with the
// tick's clock reading.
type schedItem struct {
	e     *engine
	batch *[]*engine
	fn    func(now time.Time)
	now   time.Time
}

// engineBatchPool recycles the slices that carry shard sweeps from the
// wheel's fire hook to the workers.
var engineBatchPool = sync.Pool{New: func() any {
	s := make([]*engine, 0, 64)
	return &s
}}

// sweepChunkMax caps how many engines one worker sweeps per item. Small
// ticks still collapse into a single send (the amortization win), but a
// tick that fires a whole fleet is split so the sweep spreads across the
// worker pool instead of serializing on one goroutine — at 512 engines a
// single-worker sweep would hold tick lag above the update period.
const sweepChunkMax = 16

// defaultUpdateWorkers sizes the pool: enough to use the machine during
// a full-fleet tick, never more than one per engine (plus slack for
// generic jobs).
func defaultUpdateWorkers(engines int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w > engines {
		w = engines
	}
	if w < 1 {
		w = 1
	}
	return w
}

func newUpdateScheduler(s *Server, engines, shards, workers int) *updateScheduler {
	if workers <= 0 {
		workers = defaultUpdateWorkers(engines)
	}
	u := &updateScheduler{
		s:       s,
		workers: workers,
		// Sized so every engine can be queued at once (queued dedupes at
		// one entry per engine) plus headroom for generic jobs: a shard
		// goroutine never blocks on a full channel in practice, and the
		// fire path falls back to running inline if it ever would.
		work: make(chan schedItem, engines+64),
	}
	cfg := timerwheel.Config{
		Shards: shards, // 0 = wheel default (GOMAXPROCS/4, clamped to [1, 8])
		OnBatch: func(n int) {
			s.sm.schedBatch.Observe(int64(n))
		},
	}
	if s.batching {
		// Shard-sweep mode: a tick that fires several engines hands the
		// worker pool the whole batch in one send (see fireBatch).
		cfg.FireBatch = u.fireBatch
	}
	u.wheel = timerwheel.New(cfg)
	for i := 0; i < workers; i++ {
		u.wg.Add(1)
		go u.worker()
	}
	return u
}

// register wires an engine to the wheel and arms its first deadline.
func (u *updateScheduler) register(e *engine) {
	sm := u.s.sm
	e.timer = u.wheel.NewTimer(e.idx, func(now time.Time, overdue time.Duration) {
		if overdue > 0 {
			sm.schedTickLag.Observe(overdue.Nanoseconds())
		} else {
			sm.schedTickLag.Observe(0)
		}
		if !e.queued.CompareAndSwap(false, true) {
			// Already awaiting a worker, which will re-arm under the
			// lock; this fire is redundant.
			return
		}
		sm.schedOverdue.Add(1)
		select {
		case u.work <- schedItem{e: e, now: now}:
		default:
			// The channel is sized for the whole fleet, so this is
			// unreachable in steady state; if it ever trips, service the
			// engine on the shard goroutine rather than block the wheel.
			sm.schedOverdue.Add(-1)
			e.queued.Store(false)
			u.serviceEngine(e, now)
		}
	})
	// The payload lets the batch fire hook (batching on) recognize engine
	// timers and group them into one sweep; the per-timer closure above
	// remains the batching-off path and the fallback for foreign timers.
	e.timer.Payload = e
	e.mu.Lock()
	if next, ok := e.tasks.next(); ok {
		e.timer.Arm(next)
	}
	e.mu.Unlock()
}

// fireBatch is the wheel's batch hook (batching on): one shard tick that
// fires several engine timers hands the worker pool the whole sweep as
// one channel send, instead of one queued CAS + send per engine. The
// sweep is sorted into ascending engine order — the repo's engine lock
// order — though the worker only ever holds one engine lock at a time.
// Non-engine timers (pollUntil's) fall back to their own fire callback.
func (u *updateScheduler) fireBatch(now time.Time, due []*timerwheel.Timer) {
	sm := u.s.sm
	var bp *[]*engine
	for _, t := range due {
		e, ok := t.Payload.(*engine)
		if !ok {
			t.Fire(now)
			continue
		}
		if overdue := t.Lateness(now); overdue > 0 {
			sm.schedTickLag.Observe(overdue.Nanoseconds())
		} else {
			sm.schedTickLag.Observe(0)
		}
		if !e.queued.CompareAndSwap(false, true) {
			// Already awaiting a worker, which will re-arm under the lock.
			continue
		}
		if bp == nil {
			bp = engineBatchPool.Get().(*[]*engine)
		}
		*bp = append(*bp, e)
	}
	if bp == nil {
		return
	}
	batch := *bp
	// Insertion sort: sweeps are small and usually already ordered, and
	// sort.Slice would allocate its closure on the per-tick path.
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && batch[j].idx < batch[j-1].idx; j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
	sm.schedOverdue.Add(int64(len(batch)))
	for start := 0; start < len(batch); start += sweepChunkMax {
		end := start + sweepChunkMax
		if end > len(batch) {
			end = len(batch)
		}
		var cp *[]*engine
		if start == 0 && end == len(batch) {
			cp = bp // one chunk: hand over the collected slice itself
		} else {
			cp = engineBatchPool.Get().(*[]*engine)
			*cp = append(*cp, batch[start:end]...)
		}
		sm.schedSweepBatch.Observe(int64(end - start))
		select {
		case u.work <- schedItem{batch: cp, now: now}:
		default:
			// The channel is sized for the whole fleet, so this is
			// unreachable in steady state; if it ever trips, sweep on the
			// shard goroutine rather than block the wheel.
			for _, e := range *cp {
				sm.schedOverdue.Add(-1)
				e.queued.Store(false)
				u.serviceEngine(e, now)
			}
			*cp = (*cp)[:0]
			engineBatchPool.Put(cp)
		}
	}
	if len(batch) > sweepChunkMax {
		// Multi-chunk tick: the chunks were copied out, so the collected
		// slice goes straight back to the pool.
		*bp = (*bp)[:0]
		engineBatchPool.Put(bp)
	}
}

func (u *updateScheduler) worker() {
	defer u.wg.Done()
	for {
		select {
		case it := <-u.work:
			if it.fn != nil {
				it.fn(it.now)
				continue
			}
			if it.batch != nil {
				u.runBatch(it.batch, it.now)
				continue
			}
			u.runEngine(it.e, it.now)
		case <-u.s.done:
			return
		}
	}
}

// runEngine is one worker pass over a due engine. The queued flag is
// cleared before the task pass so a fire arriving mid-pass re-queues the
// engine instead of being lost.
func (u *updateScheduler) runEngine(e *engine, now time.Time) {
	sm := u.s.sm
	sm.schedOverdue.Add(-1)
	e.queued.Store(false)
	sm.schedWorkersBusy.Add(1)
	t0 := time.Now()
	u.serviceEngine(e, now)
	sm.schedBusyNs.Add(uint64(time.Since(t0).Nanoseconds()))
	sm.schedWorkersBusy.Add(-1)
	sm.schedEngineRuns.Inc()
}

// runBatch is one worker pass over a whole shard sweep: each engine is
// serviced in ascending lock order (one lock held at a time), with the
// busy accounting done once for the sweep instead of once per engine.
func (u *updateScheduler) runBatch(bp *[]*engine, now time.Time) {
	sm := u.s.sm
	sm.schedWorkersBusy.Add(1)
	t0 := time.Now()
	for i, e := range *bp {
		sm.schedOverdue.Add(-1)
		e.queued.Store(false)
		u.serviceEngine(e, now)
		sm.schedEngineRuns.Inc()
		(*bp)[i] = nil
	}
	sm.schedBusyNs.Add(uint64(time.Since(t0).Nanoseconds()))
	sm.schedWorkersBusy.Add(-1)
	*bp = (*bp)[:0]
	engineBatchPool.Put(bp)
}

// serviceEngine runs the engine's due tasks and re-arms its wheel timer
// for the next deadline, all under the engine lock: any addTaskLocked
// that lands after our unlock sees the timer we armed and promotes it if
// it holds an earlier deadline.
func (u *updateScheduler) serviceEngine(e *engine, now time.Time) {
	acq := e.m.lockTimed(&e.mu)
	e.tasks.runDue(now)
	if next, ok := e.tasks.next(); ok {
		e.timer.Arm(next)
	}
	e.m.unlockTimed(&e.mu, acq)
}

// pollUntil runs cond on the worker pool every interval until it returns
// true or deadline passes (or the server shuts down). This is how Drain
// watches the data plane empty without a dedicated sleep loop: the poll
// rides the same wheel/worker machinery as the updates it is waiting on.
func (u *updateScheduler) pollUntil(interval time.Duration, deadline time.Time, cond func() bool) {
	done := make(chan struct{})
	var t *timerwheel.Timer
	var check func(now time.Time)
	check = func(now time.Time) {
		if cond() || now.After(deadline) {
			close(done)
			return
		}
		t.Arm(now.Add(interval))
	}
	t = u.wheel.NewTimer(0, func(now time.Time, _ time.Duration) {
		select {
		case u.work <- schedItem{fn: check, now: now}:
		default:
			check(now)
		}
	})
	t.Arm(time.Now().Add(interval))
	select {
	case <-done:
	case <-u.s.done:
	}
	t.Stop()
}

// stop halts the wheel and joins the workers (they exit on s.done), then
// discards any park still registered — the engines no longer have their
// own goroutines to do shutdown cleanup, so the scheduler owns it.
func (u *updateScheduler) stop() {
	u.wheel.Stop()
	u.wg.Wait()
	for _, e := range u.s.engines {
		e.mu.Lock()
		for c, p := range e.parks {
			e.finishPark(c, p, false)
		}
		e.mu.Unlock()
	}
}
