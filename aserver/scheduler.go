package aserver

import (
	"runtime"
	"time"

	"audiofile/internal/timerwheel"
	"sync"
)

// The update scheduler is the engine goroutine's replacement: where each
// engine used to own a timer goroutine (O(devices) goroutines waking
// independently), all engines now register one passive timer each with a
// sharded timer wheel, and a bounded worker pool runs the due engines'
// task queues in batches. The update plane's resident goroutine count is
// O(shards + workers) regardless of device count.
//
// Protocol, per engine:
//
//   - The engine's task queue (periodic update, precise park wake-ups)
//     is unchanged and still guarded by e.mu.
//   - The wheel timer is armed for the queue's earliest deadline. Arming
//     happens under e.mu — by the worker after a task pass, or by
//     addTaskLocked when a new task beats the armed deadline (the old
//     `wake` channel poke became a wheel promotion).
//   - When the timer fires, the shard hands the engine to the worker
//     pool; e.queued dedupes so an engine is in the pool's queue at most
//     once. A worker takes e.mu through the instrumented lockTimed path,
//     runs every due task, re-arms, and releases — identical lock
//     protocol and metrics to the old engine goroutine.
//
// Liveness invariant: whenever an engine's task queue is non-empty, its
// timer is armed or the engine is queued for a worker. Fires that race
// with the queued flag are dropped precisely because a worker pass —
// which always re-arms under the lock — is already pending.
type updateScheduler struct {
	s       *Server
	wheel   *timerwheel.Wheel
	work    chan schedItem
	workers int
	wg      sync.WaitGroup
}

// schedItem is one unit handed to the worker pool: a due engine, or a
// generic job (drain polling) with the tick's clock reading.
type schedItem struct {
	e   *engine
	fn  func(now time.Time)
	now time.Time
}

// defaultUpdateWorkers sizes the pool: enough to use the machine during
// a full-fleet tick, never more than one per engine (plus slack for
// generic jobs).
func defaultUpdateWorkers(engines int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w > engines {
		w = engines
	}
	if w < 1 {
		w = 1
	}
	return w
}

func newUpdateScheduler(s *Server, engines, shards, workers int) *updateScheduler {
	if workers <= 0 {
		workers = defaultUpdateWorkers(engines)
	}
	u := &updateScheduler{
		s:       s,
		workers: workers,
		// Sized so every engine can be queued at once (queued dedupes at
		// one entry per engine) plus headroom for generic jobs: a shard
		// goroutine never blocks on a full channel in practice, and the
		// fire path falls back to running inline if it ever would.
		work: make(chan schedItem, engines+64),
	}
	u.wheel = timerwheel.New(timerwheel.Config{
		Shards: shards, // 0 = wheel default (GOMAXPROCS/4, clamped to [1, 8])
		OnBatch: func(n int) {
			s.sm.schedBatch.Observe(int64(n))
		},
	})
	for i := 0; i < workers; i++ {
		u.wg.Add(1)
		go u.worker()
	}
	return u
}

// register wires an engine to the wheel and arms its first deadline.
func (u *updateScheduler) register(e *engine) {
	sm := u.s.sm
	e.timer = u.wheel.NewTimer(e.idx, func(now time.Time, overdue time.Duration) {
		if overdue > 0 {
			sm.schedTickLag.Observe(overdue.Nanoseconds())
		} else {
			sm.schedTickLag.Observe(0)
		}
		if !e.queued.CompareAndSwap(false, true) {
			// Already awaiting a worker, which will re-arm under the
			// lock; this fire is redundant.
			return
		}
		sm.schedOverdue.Add(1)
		select {
		case u.work <- schedItem{e: e, now: now}:
		default:
			// The channel is sized for the whole fleet, so this is
			// unreachable in steady state; if it ever trips, service the
			// engine on the shard goroutine rather than block the wheel.
			sm.schedOverdue.Add(-1)
			e.queued.Store(false)
			u.serviceEngine(e, now)
		}
	})
	e.mu.Lock()
	if next, ok := e.tasks.next(); ok {
		e.timer.Arm(next)
	}
	e.mu.Unlock()
}

func (u *updateScheduler) worker() {
	defer u.wg.Done()
	for {
		select {
		case it := <-u.work:
			if it.fn != nil {
				it.fn(it.now)
				continue
			}
			u.runEngine(it.e, it.now)
		case <-u.s.done:
			return
		}
	}
}

// runEngine is one worker pass over a due engine. The queued flag is
// cleared before the task pass so a fire arriving mid-pass re-queues the
// engine instead of being lost.
func (u *updateScheduler) runEngine(e *engine, now time.Time) {
	sm := u.s.sm
	sm.schedOverdue.Add(-1)
	e.queued.Store(false)
	sm.schedWorkersBusy.Add(1)
	t0 := time.Now()
	u.serviceEngine(e, now)
	sm.schedBusyNs.Add(uint64(time.Since(t0).Nanoseconds()))
	sm.schedWorkersBusy.Add(-1)
	sm.schedEngineRuns.Inc()
}

// serviceEngine runs the engine's due tasks and re-arms its wheel timer
// for the next deadline, all under the engine lock: any addTaskLocked
// that lands after our unlock sees the timer we armed and promotes it if
// it holds an earlier deadline.
func (u *updateScheduler) serviceEngine(e *engine, now time.Time) {
	acq := e.m.lockTimed(&e.mu)
	e.tasks.runDue(now)
	if next, ok := e.tasks.next(); ok {
		e.timer.Arm(next)
	}
	e.m.unlockTimed(&e.mu, acq)
}

// pollUntil runs cond on the worker pool every interval until it returns
// true or deadline passes (or the server shuts down). This is how Drain
// watches the data plane empty without a dedicated sleep loop: the poll
// rides the same wheel/worker machinery as the updates it is waiting on.
func (u *updateScheduler) pollUntil(interval time.Duration, deadline time.Time, cond func() bool) {
	done := make(chan struct{})
	var t *timerwheel.Timer
	var check func(now time.Time)
	check = func(now time.Time) {
		if cond() || now.After(deadline) {
			close(done)
			return
		}
		t.Arm(now.Add(interval))
	}
	t = u.wheel.NewTimer(0, func(now time.Time, _ time.Duration) {
		select {
		case u.work <- schedItem{fn: check, now: now}:
		default:
			check(now)
		}
	})
	t.Arm(time.Now().Add(interval))
	select {
	case <-done:
	case <-u.s.done:
	}
	t.Stop()
}

// stop halts the wheel and joins the workers (they exit on s.done), then
// discards any park still registered — the engines no longer have their
// own goroutines to do shutdown cleanup, so the scheduler owns it.
func (u *updateScheduler) stop() {
	u.wheel.Stop()
	u.wg.Wait()
	for _, e := range u.s.engines {
		e.mu.Lock()
		for c, p := range e.parks {
			e.finishPark(c, p, false)
		}
		e.mu.Unlock()
	}
}
