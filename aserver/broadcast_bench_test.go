package aserver

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"audiofile/internal/vdev"
)

// Broadcast fan-out benchmark: the encode-once contract. One pump cycle
// encodes each chunk once per wire format and enqueues the same pooled
// message on every subscriber, so the per-chunk cost must be sub-linear
// in listeners (one enqueue each, no copies) and the steady state must
// not allocate. CI gates allocs/op at zero.

// nullConn is a no-op net.Conn: writes succeed instantly, so 10k real
// writer goroutines drain their queues without moving bytes anywhere.
type nullConn struct{}

func (nullConn) Read(b []byte) (int, error)       { select {} }
func (nullConn) Write(b []byte) (int, error)      { return len(b), nil }
func (nullConn) Close() error                     { return nil }
func (nullConn) LocalAddr() net.Addr              { return nullAddr{} }
func (nullConn) RemoteAddr() net.Addr             { return nullAddr{} }
func (nullConn) SetDeadline(time.Time) error      { return nil }
func (nullConn) SetReadDeadline(time.Time) error  { return nil }
func (nullConn) SetWriteDeadline(time.Time) error { return nil }

type nullAddr struct{}

func (nullAddr) Network() string { return "null" }
func (nullAddr) String() string  { return "null" }

// BenchmarkBroadcastFanout measures one chunk's pump cost with N
// subscribed listeners on one µ-law codec channel: TapMix encode (once),
// then N reference-counted enqueues drained by N real writer goroutines.
// ns/op is the full per-chunk cost; divide by the listener count for the
// per-listener cost, which must stay roughly flat from 1k to 10k.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, listeners := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("listeners=%d", listeners), func(b *testing.B) {
			benchBroadcastFanout(b, listeners)
		})
	}
}

func benchBroadcastFanout(b *testing.B, listeners int) {
	const chunkFrames = 256 // one pump span: 32 ms at 8 kHz
	clk := vdev.NewManualClock(8000)
	srv, err := New(Options{
		Devices:          []DeviceSpec{{Kind: "codec", Clock: clk}},
		Logf:             func(string, ...any) {},
		ClientQueueBytes: -1,
		ServerQueueBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	e := srv.engineByDev[0]
	d := srv.Device(0)

	clients := make([]*client, listeners)
	for i := range clients {
		c := newClient(srv, nullConn{}, binary.LittleEndian)
		a := &ac{id: 1, dev: d, devIndex: 0, enc: d.Cfg.Enc, channels: d.Cfg.Channels}
		c.acs[1] = a
		e.mu.Lock()
		if code := e.subscribeLocked(c, a); code != 0 {
			e.mu.Unlock()
			b.Fatalf("subscribe %d: error code %d", i, code)
		}
		e.mu.Unlock()
		go c.writer()
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			close(c.closed)
		}
	}()

	// Warm the pools and every writer's buffers outside the measured
	// region: the first message through a writer grows its reused slices.
	sm := srv.sm
	pump := func() {
		clk.Advance(chunkFrames)
		e.mu.Lock()
		e.updateLocked()
		e.mu.Unlock()
		for sm.queuedBytes.Load() != 0 {
			runtime.Gosched()
		}
	}
	for i := 0; i < 4; i++ {
		pump()
	}

	chunks0 := e.m.bcastChunks.Load()
	encodes0 := e.m.bcastEncodes.Load()

	// Measure: each iteration is one chunk of device time pumped to every
	// listener, with the queues fully drained (pooled messages back in the
	// pool) before the next.
	b.SetBytes(int64(chunkFrames * listeners))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pump()
	}
	b.StopTimer()

	// The conservation law that defines encode-once: every chunk was
	// encoded exactly once (one device, one wire format), regardless of
	// the listener count.
	chunks := e.m.bcastChunks.Load() - chunks0
	encodes := e.m.bcastEncodes.Load() - encodes0
	if chunks == 0 || encodes != chunks {
		b.Fatalf("encodes = %d, chunks = %d; want equal and nonzero (encode-once)", encodes, chunks)
	}
	if subs := e.m.bcastSubs.Load(); subs != int64(listeners) {
		b.Fatalf("bcastSubs = %d, want %d (no listener evicted mid-bench)", subs, listeners)
	}
}
