package aserver

import (
	"fmt"
	"sync"
	"time"

	"audiofile/internal/lineserver"
	"audiofile/internal/metrics"
	"audiofile/internal/proto"
)

// This file is the observability spine of the server: the typed metric
// sets the hot paths update, and the consistent snapshot the export
// endpoints read.
//
// Ownership rules (one owner per counter, so totals are trustworthy):
//
//   - Request totals and dispatch latency: the dispatch wrappers in
//     dispatch.go, on the dispatching goroutine.
//   - Engine lock wait/hold: the lockers themselves (hot dispatch and
//     the scheduler's worker task pass).
//   - Play ingress bytes/chunks: the PlaySamples branch of dispatchHot.
//   - Record egress bytes/chunks: finishRecordReply, the single seal
//     point every record reply passes through (first-try and retry).
//   - Park lifecycle: registration in dispatchHot, release in
//     engine.finishPark. parks started == completed + discarded.
//   - Connects/disconnects: the control plane (loop.go register /
//     removeClient), each exactly once per client, so after every
//     client is gone connects == disconnects.
//   - Queue overflows, client errors, queue depth, writev batches:
//     client.go's send/sendError/writer.
//   - Frame conservation counters and silence fill: internal/core and
//     internal/ring, mutated and snapshotted under the engine lock.
//
// Everything the hot paths touch is an atomic on a pre-registered
// struct — no maps, no allocation (the CI gate on BenchmarkDispatch*
// and BenchmarkMetrics* enforces this).

// serverMetrics is the server-wide metric set.
type serverMetrics struct {
	reg *metrics.Registry

	connects       *metrics.Counter
	disconnects    *metrics.Counter
	activeClients  *metrics.Gauge
	clientErrors   *metrics.Counter
	queueOverflows *metrics.Counter

	// Disconnect classification (overload.go). Every disconnect
	// increments exactly one of these, before disconnects itself, so
	// disconnects == evictions + sheds + drains + clientCloses once the
	// server is drained (<= in any live snapshot).
	evictions    *metrics.Counter
	sheds        *metrics.Counter
	drains       *metrics.Counter
	clientCloses *metrics.Counter

	// queuedBytes is marshaled output queued across all clients;
	// frameBytes is pooled request-frame bytes checked out by ingress.
	queuedBytes *metrics.Gauge
	frameBytes  *metrics.Gauge

	dispatchPlay    *metrics.Histogram // ns, one observation per request
	dispatchRecord  *metrics.Histogram
	dispatchGetTime *metrics.Histogram
	dispatchControl *metrics.Histogram

	// dispatchBatch observes the size of every dispatch batch: coalesced
	// same-engine runs observe their length once, everything else (control
	// ops, standalone hot ops, error replies) observes 1. Conservation:
	// its Sum equals the request total exactly once the server is idle,
	// and never exceeds it in a live snapshot (requests are counted before
	// the batch observation; Snapshot reads the histogram first).
	dispatchBatch *metrics.Histogram

	// Staged reply egress (client.go replyStage): small replies generated
	// while dispatching a run coalesce into one pooled message. bytes is
	// wire bytes that left via the stage; flushes is stage→queue handoffs
	// (each one message, one writev iovec, at most one writer wakeup).
	stagedBytes   *metrics.Counter
	stagedFlushes *metrics.Counter

	writevBatch    *metrics.Histogram // messages per vectored write
	sendQueueDepth *metrics.Histogram // outbound queue depth at enqueue

	// Update scheduler (scheduler.go). tick lag is how far past its slot
	// deadline a wheel fire ran; batch is due timers per shard pass;
	// overdue is engines queued awaiting a worker right now; busy is
	// workers mid-pass; busyNs accumulates worker pass time (utilization
	// = busyNs / (workers × wall time)); engineRuns counts worker passes.
	schedTickLag     *metrics.Histogram
	schedBatch       *metrics.Histogram
	schedOverdue     *metrics.Gauge
	schedWorkersBusy *metrics.Gauge
	schedBusyNs      *metrics.Counter
	schedEngineRuns  *metrics.Counter

	// schedSweepBatch is engines per shard-sweep handoff: when one wheel
	// tick fires several engines, the scheduler hands the worker the whole
	// batch (one channel send) instead of one send per engine.
	schedSweepBatch *metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	return &serverMetrics{
		reg:              reg,
		connects:         reg.Counter("server.connects"),
		disconnects:      reg.Counter("server.disconnects"),
		activeClients:    reg.Gauge("server.active_clients"),
		clientErrors:     reg.Counter("server.client_errors"),
		queueOverflows:   reg.Counter("server.queue_overflows"),
		evictions:        reg.Counter("server.evictions"),
		sheds:            reg.Counter("server.sheds"),
		drains:           reg.Counter("server.drains"),
		clientCloses:     reg.Counter("server.client_closes"),
		queuedBytes:      reg.Gauge("wire.queued_bytes"),
		frameBytes:       reg.Gauge("ingress.frame_bytes"),
		dispatchPlay:     reg.Histogram("dispatch.play_ns"),
		dispatchRecord:   reg.Histogram("dispatch.record_ns"),
		dispatchGetTime:  reg.Histogram("dispatch.gettime_ns"),
		dispatchControl:  reg.Histogram("dispatch.control_ns"),
		dispatchBatch:    reg.Histogram("dispatch.batch_size"),
		stagedBytes:      reg.Counter("wire.staged_bytes"),
		stagedFlushes:    reg.Counter("wire.staged_flushes"),
		writevBatch:      reg.Histogram("wire.writev_batch"),
		sendQueueDepth:   reg.Histogram("wire.send_queue_depth"),
		schedTickLag:     reg.Histogram("sched.tick_lag_ns"),
		schedBatch:       reg.Histogram("sched.batch_size"),
		schedOverdue:     reg.Gauge("sched.overdue_tasks"),
		schedWorkersBusy: reg.Gauge("sched.workers_busy"),
		schedBusyNs:      reg.Counter("sched.worker_busy_ns"),
		schedEngineRuns:  reg.Counter("sched.engine_runs"),
		schedSweepBatch:  reg.Histogram("sched.sweep_batch"),
	}
}

// closeCounterFor maps a recorded close reason to its disconnect-
// classification counter.
func (sm *serverMetrics) closeCounterFor(reason uint32) *metrics.Counter {
	switch reason {
	case closeReasonEvict:
		return sm.evictions
	case closeReasonShed:
		return sm.sheds
	case closeReasonDrain:
		return sm.drains
	default:
		return sm.clientCloses
	}
}

// dispatchFor returns the latency histogram for a request opcode.
func (sm *serverMetrics) dispatchFor(op uint8) *metrics.Histogram {
	switch op {
	case proto.OpPlaySamples:
		return sm.dispatchPlay
	case proto.OpRecordSamples:
		return sm.dispatchRecord
	case proto.OpGetTime:
		return sm.dispatchGetTime
	default:
		return sm.dispatchControl
	}
}

// engineMetrics is the per-root-device metric set, owned by the engine.
// Atomic so engine goroutines, reader goroutines, and the seal points in
// client.go can all update without extending the engine lock's hold.
type engineMetrics struct {
	lockWait *metrics.Histogram // ns waiting to acquire e.mu (hot dispatch + worker task pass)
	lockHold *metrics.Histogram // ns holding e.mu

	playBytes *metrics.Counter   // sample payload bytes accepted off the wire
	recBytes  *metrics.Counter   // sample payload bytes sealed into record replies
	playChunk *metrics.Histogram // bytes per PlaySamples request
	recChunk  *metrics.Histogram // bytes per record reply

	// dispatchBatch is hot requests served per engine-lock acquisition on
	// this engine: coalesced runs observe their group size, standalone hot
	// dispatches observe 1. Mean ≈ 1 means the batcher finds no runs (or
	// is off); higher means pipelined small ops are being amortized.
	dispatchBatch *metrics.Histogram

	parksStarted   *metrics.Counter
	parksCompleted *metrics.Counter
	parksDiscarded *metrics.Counter
	parkedNow      *metrics.Gauge
	parkNs         *metrics.Histogram // park registration to release

	// Broadcast fan-out (broadcast.go). Conservation, in every snapshot:
	// bcastEncodes >= bcastChunks (one encode per chunk per live format),
	// and exactly chunks × formats while the format set is stable.
	bcastSubs    *metrics.Gauge   // current subscriptions on this engine
	bcastChunks  *metrics.Counter // mix time-slices cut by the pump
	bcastEncodes *metrics.Counter // chunk encodes (chunks × wire formats)
	bcastMsgs    *metrics.Counter // per-subscriber enqueues that succeeded
	bcastBytes   *metrics.Counter // wire bytes fanned out (msgs × message size)
	bcastDrops   *metrics.Counter // enqueues refused (dead or hard-capped client)
}

func (sm *serverMetrics) newEngineMetrics(rootIndex int) *engineMetrics {
	p := fmt.Sprintf("dev.%d.", rootIndex)
	reg := sm.reg
	return &engineMetrics{
		lockWait:       reg.Histogram(p + "lock_wait_ns"),
		lockHold:       reg.Histogram(p + "lock_hold_ns"),
		playBytes:      reg.Counter(p + "play_bytes"),
		recBytes:       reg.Counter(p + "rec_bytes"),
		playChunk:      reg.Histogram(p + "play_chunk_bytes"),
		recChunk:       reg.Histogram(p + "rec_chunk_bytes"),
		dispatchBatch:  reg.Histogram(p + "dispatch_batch"),
		parksStarted:   reg.Counter(p + "parks_started"),
		parksCompleted: reg.Counter(p + "parks_completed"),
		parksDiscarded: reg.Counter(p + "parks_discarded"),
		parkedNow:      reg.Gauge(p + "parked_now"),
		parkNs:         reg.Histogram(p + "park_ns"),
		bcastSubs:      reg.Gauge(p + "bcast_subs"),
		bcastChunks:    reg.Counter(p + "bcast_chunks"),
		bcastEncodes:   reg.Counter(p + "bcast_encodes"),
		bcastMsgs:      reg.Counter(p + "bcast_msgs"),
		bcastBytes:     reg.Counter(p + "bcast_bytes"),
		bcastDrops:     reg.Counter(p + "bcast_drops"),
	}
}

// Snapshot is the consistent, JSON-renderable state of the server's
// metrics: what `afd -stats` serves and `astat` renders. Atomics are
// read individually (never torn); the per-device frame counters are
// read under each engine's lock, so within one device the conservation
// laws hold exactly in every snapshot.
type Snapshot struct {
	Requests       uint64 `json:"requests"`
	Connects       uint64 `json:"connects"`
	Disconnects    uint64 `json:"disconnects"`
	ActiveClients  int64  `json:"active_clients"`
	ClientErrors   uint64 `json:"client_errors"`
	QueueOverflows uint64 `json:"queue_overflows"`

	// Disconnect classification: Disconnects <= Evictions + Sheds +
	// Drains + ClientCloses in every snapshot, with equality after drain.
	Evictions    uint64 `json:"evictions"`
	Sheds        uint64 `json:"sheds"`
	Drains       uint64 `json:"drains"`
	ClientCloses uint64 `json:"client_closes"`

	QueuedBytes        int64 `json:"queued_bytes"`
	FrameBytesInFlight int64 `json:"frame_bytes_in_flight"`

	DispatchPlayNs    metrics.HistogramSnapshot `json:"dispatch_play_ns"`
	DispatchRecordNs  metrics.HistogramSnapshot `json:"dispatch_record_ns"`
	DispatchGetTimeNs metrics.HistogramSnapshot `json:"dispatch_gettime_ns"`
	DispatchControlNs metrics.HistogramSnapshot `json:"dispatch_control_ns"`

	// DispatchBatch: requests per dispatch batch, server-wide.
	// Conservation: DispatchBatch.Sum <= Requests in every snapshot, with
	// equality once the server is idle (every request is counted in
	// exactly one batch observation).
	DispatchBatch metrics.HistogramSnapshot `json:"dispatch_batch"`

	StagedBytes   uint64 `json:"staged_bytes"`
	StagedFlushes uint64 `json:"staged_flushes"`

	WritevBatch    metrics.HistogramSnapshot `json:"writev_batch"`
	SendQueueDepth metrics.HistogramSnapshot `json:"send_queue_depth"`

	// Update scheduler: the wheel/pool replacing per-engine goroutines.
	SchedShards       int                       `json:"sched_shards"`
	SchedWorkers      int                       `json:"sched_workers"`
	SchedTickLagNs    metrics.HistogramSnapshot `json:"sched_tick_lag_ns"`
	SchedBatchSize    metrics.HistogramSnapshot `json:"sched_batch_size"`
	SchedOverdueTasks int64                     `json:"sched_overdue_tasks"`
	SchedWorkersBusy  int64                     `json:"sched_workers_busy"`
	SchedWorkerBusyNs uint64                    `json:"sched_worker_busy_ns"`
	SchedEngineRuns   uint64                    `json:"sched_engine_runs"`
	SchedSweepBatch   metrics.HistogramSnapshot `json:"sched_sweep_batch"`

	Devices []DeviceStats `json:"devices"`
}

// DeviceStats is one root device's counters (views account into their
// root). Frame counters obey, in every snapshot:
//
//	FramesAccepted == FramesBuffered + FramesDiscarded
//	FramesPreempted <= FramesBuffered
type DeviceStats struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Rate  int    `json:"rate"`
	Now   uint32 `json:"now"` // device time as of the last refresh

	FramesAccepted  uint64 `json:"frames_accepted"`
	FramesBuffered  uint64 `json:"frames_buffered"`
	FramesDiscarded uint64 `json:"frames_discarded"`
	FramesPreempted uint64 `json:"frames_preempted"`
	FramesRecorded  uint64 `json:"frames_recorded"`

	PlaySilenceFilled uint64 `json:"play_silence_filled"`
	RecSilenceFilled  uint64 `json:"rec_silence_filled"`
	Underruns         uint64 `json:"underruns"`

	PlayBytes      uint64                    `json:"play_bytes"`
	RecBytes       uint64                    `json:"rec_bytes"`
	PlayChunkBytes metrics.HistogramSnapshot `json:"play_chunk_bytes"`
	RecChunkBytes  metrics.HistogramSnapshot `json:"rec_chunk_bytes"`

	// DispatchBatch: hot requests served per engine-lock acquisition.
	DispatchBatch metrics.HistogramSnapshot `json:"dispatch_batch"`

	ParksStarted   uint64                    `json:"parks_started"`
	ParksCompleted uint64                    `json:"parks_completed"`
	ParksDiscarded uint64                    `json:"parks_discarded"`
	ParkedNow      int64                     `json:"parked_now"`
	ParkNs         metrics.HistogramSnapshot `json:"park_ns"`

	// Broadcast fan-out: BcastEncodes >= BcastChunks in every snapshot
	// (one encode per chunk per live wire format).
	BcastSubs    int64  `json:"bcast_subs"`
	BcastChunks  uint64 `json:"bcast_chunks"`
	BcastEncodes uint64 `json:"bcast_encodes"`
	BcastMsgs    uint64 `json:"bcast_msgs"`
	BcastBytes   uint64 `json:"bcast_bytes"`
	BcastDrops   uint64 `json:"bcast_drops"`

	LockWaitNs metrics.HistogramSnapshot `json:"lock_wait_ns"`
	LockHoldNs metrics.HistogramSnapshot `json:"lock_hold_ns"`

	// Simulated-hardware truth (absent for lineserver backends): frames
	// the DAC consumed from host data, backfilled silence frames, and
	// ADC frames captured.
	HWPlayed   uint64 `json:"hw_played"`
	HWSilent   uint64 `json:"hw_silent"`
	HWRecorded uint64 `json:"hw_recorded"`

	// Lineserver is the UDP backend's transport-health snapshot (only
	// for devices whose backend is a LineServer box). Its conservation
	// laws — Replies >= Accepted+Stale+Duplicate, ResyncsStarted >=
	// ResyncsCompleted+ResyncsAbandoned, exact once the backend is
	// closed — are checked by astat like the frame laws above.
	Lineserver *lineserver.BackendStats `json:"lineserver,omitempty"`
}

// Snapshot assembles a consistent metrics snapshot. Engine locks are
// taken one at a time (never nested), so this is safe to call from any
// goroutine, including while the data plane is under load.
func (s *Server) Snapshot() Snapshot {
	sm := s.sm
	// Disconnects is read before the per-reason counters: each of those
	// is incremented before disconnects at the classification site, so
	// every snapshot satisfies Disconnects <= Evictions + Sheds + Drains
	// + ClientCloses.
	disconnects := sm.disconnects.Load()
	// The batch histogram is read before the request total: every dispatch
	// site adds to requestCount before observing the batch, so every
	// snapshot satisfies DispatchBatch.Sum <= Requests.
	dispatchBatch := sm.dispatchBatch.Snapshot()
	snap := Snapshot{
		Requests:           s.requestCount.Load(),
		Connects:           sm.connects.Load(),
		Disconnects:        disconnects,
		ActiveClients:      sm.activeClients.Load(),
		ClientErrors:       sm.clientErrors.Load(),
		QueueOverflows:     sm.queueOverflows.Load(),
		Evictions:          sm.evictions.Load(),
		Sheds:              sm.sheds.Load(),
		Drains:             sm.drains.Load(),
		ClientCloses:       sm.clientCloses.Load(),
		QueuedBytes:        sm.queuedBytes.Load(),
		FrameBytesInFlight: sm.frameBytes.Load(),
		DispatchPlayNs:     sm.dispatchPlay.Snapshot(),
		DispatchRecordNs:   sm.dispatchRecord.Snapshot(),
		DispatchGetTimeNs:  sm.dispatchGetTime.Snapshot(),
		DispatchControlNs:  sm.dispatchControl.Snapshot(),
		DispatchBatch:      dispatchBatch,
		StagedBytes:        sm.stagedBytes.Load(),
		StagedFlushes:      sm.stagedFlushes.Load(),
		WritevBatch:        sm.writevBatch.Snapshot(),
		SendQueueDepth:     sm.sendQueueDepth.Snapshot(),
		SchedShards:        s.sched.wheel.Shards(),
		SchedWorkers:       s.sched.workers,
		SchedTickLagNs:     sm.schedTickLag.Snapshot(),
		SchedBatchSize:     sm.schedBatch.Snapshot(),
		SchedOverdueTasks:  sm.schedOverdue.Load(),
		SchedWorkersBusy:   sm.schedWorkersBusy.Load(),
		SchedWorkerBusyNs:  sm.schedBusyNs.Load(),
		SchedEngineRuns:    sm.schedEngineRuns.Load(),
		SchedSweepBatch:    sm.schedSweepBatch.Snapshot(),
	}
	for _, e := range s.engines {
		d := e.root
		em := e.m
		ds := DeviceStats{
			Index:          d.Index,
			Name:           d.Cfg.Name,
			Rate:           d.Cfg.Rate,
			PlayBytes:      em.playBytes.Load(),
			RecBytes:       em.recBytes.Load(),
			PlayChunkBytes: em.playChunk.Snapshot(),
			RecChunkBytes:  em.recChunk.Snapshot(),
			DispatchBatch:  em.dispatchBatch.Snapshot(),
			ParksStarted:   em.parksStarted.Load(),
			ParksCompleted: em.parksCompleted.Load(),
			ParksDiscarded: em.parksDiscarded.Load(),
			ParkedNow:      em.parkedNow.Load(),
			ParkNs:         em.parkNs.Snapshot(),
			LockWaitNs:     em.lockWait.Snapshot(),
			LockHoldNs:     em.lockHold.Snapshot(),
			BcastSubs:      em.bcastSubs.Load(),
			BcastChunks:    em.bcastChunks.Load(),
			BcastEncodes:   em.bcastEncodes.Load(),
			BcastMsgs:      em.bcastMsgs.Load(),
			BcastBytes:     em.bcastBytes.Load(),
			BcastDrops:     em.bcastDrops.Load(),
		}
		// Backend health is all atomics — read outside the engine lock.
		if lsb, ok := d.Backend().(*lineserver.Backend); ok {
			st := lsb.Stats()
			ds.Lineserver = &st
		}
		e.mu.Lock()
		io := d.Stats()
		ds.Now = uint32(d.Now())
		ds.FramesAccepted = io.FramesAccepted
		ds.FramesBuffered = io.FramesBuffered
		ds.FramesDiscarded = io.FramesDiscarded
		ds.FramesPreempted = io.FramesPreempted
		ds.FramesRecorded = io.FramesRecorded
		ds.PlaySilenceFilled = d.PlaySilenceFilled()
		ds.RecSilenceFilled = d.RecSilenceFilled()
		ds.Underruns = d.Underruns
		if hw := s.hw[d]; hw != nil {
			ds.HWPlayed, ds.HWSilent, ds.HWRecorded = hw.Stats()
		}
		e.mu.Unlock()
		snap.Devices = append(snap.Devices, ds)
	}
	return snap
}

// MetricsRegistry exposes the server's metric registry (for the expvar
// endpoint and for embedding harnesses).
func (s *Server) MetricsRegistry() *metrics.Registry { return s.sm.reg }

// lockTimed/unlockTimed wrap an engine-lock acquire/release with the
// wait and hold histograms; every timed locker uses them so all call
// sites measure the same way. They take the mutex directly (no func
// values) to keep the hot path allocation-free.
func (em *engineMetrics) lockTimed(mu *sync.Mutex) time.Time {
	t0 := time.Now()
	mu.Lock()
	t1 := time.Now()
	em.lockWait.Observe(t1.Sub(t0).Nanoseconds())
	return t1
}

func (em *engineMetrics) unlockTimed(mu *sync.Mutex, acquired time.Time) {
	em.lockHold.Observe(time.Since(acquired).Nanoseconds())
	mu.Unlock()
}
