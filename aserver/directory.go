package aserver

import (
	"fmt"
	"sort"
)

// Directory is a static consistent-hash map from routing keys (device or
// session names) to backend afds. Each backend projects Replicas virtual
// points onto a 64-bit hash ring; a key is served by the first live
// backend at or clockwise from the key's own point. The construction is
// pure arithmetic over the backend names — two processes given the same
// names and replica count build bit-identical rings, so a router fleet
// agrees on placement with no coordination, and adding or removing one
// backend of N moves only ~K/N of K keys (the points owned by the
// changed backend) instead of reshuffling everything.
type Directory struct {
	backends []string
	replicas int
	ring     []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// DefaultDirectoryReplicas is the virtual-point count per backend when
// NewDirectory is given zero: enough that load splits within a few
// percent of even for small fleets.
const DefaultDirectoryReplicas = 128

// NewDirectory builds the ring for the given backend names. Order of the
// names does not affect placement (hashing ignores the index), but the
// returned backend indices refer to this slice.
func NewDirectory(backends []string, replicas int) *Directory {
	if replicas <= 0 {
		replicas = DefaultDirectoryReplicas
	}
	d := &Directory{
		backends: append([]string(nil), backends...),
		replicas: replicas,
		ring:     make([]ringPoint, 0, len(backends)*replicas),
	}
	for i, name := range d.backends {
		for v := 0; v < replicas; v++ {
			h := fnv1a(name)
			h = fnv1aByte(h, '#')
			h = fnv1aU32(h, uint32(v))
			d.ring = append(d.ring, ringPoint{hash: mix64(h), backend: i})
		}
	}
	sort.Slice(d.ring, func(a, b int) bool {
		if d.ring[a].hash != d.ring[b].hash {
			return d.ring[a].hash < d.ring[b].hash
		}
		// Hash ties (vanishingly rare) break by name so the winner does
		// not depend on the order backends were listed in.
		return d.backends[d.ring[a].backend] < d.backends[d.ring[b].backend]
	})
	return d
}

// Backends returns the backend names the directory was built over.
func (d *Directory) Backends() []string { return d.backends }

// Lookup returns the backend index owning key, ignoring health, or -1
// for an empty directory.
func (d *Directory) Lookup(key string) int {
	return d.LookupLive(key, nil)
}

// LookupLive returns the first backend at or clockwise from key's ring
// point for which live reports true (nil means all live), or -1 when no
// live backend exists. Skipping a dead backend hands its keys to the
// next point's owner — the same placement a directory built without that
// backend would choose for most keys — so failover targets are as stable
// as the ring itself.
func (d *Directory) LookupLive(key string, live func(backend int) bool) int {
	owners := d.ownersLive(key, live, 1)
	if len(owners) == 0 {
		return -1
	}
	return owners[0]
}

// Owners returns up to n distinct backends in preference order for key:
// the owner first, then the failover chain walking clockwise. Health is
// ignored; see LookupLive for the live variant.
func (d *Directory) Owners(key string, n int) []int {
	return d.ownersLive(key, nil, n)
}

// ownersLive collects up to max distinct live backends in ring order
// starting at key's point.
func (d *Directory) ownersLive(key string, live func(int) bool, max int) []int {
	if len(d.ring) == 0 || max <= 0 {
		return nil
	}
	h := mix64(fnv1a(key))
	start := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= h })
	out := make([]int, 0, max)
	for i := 0; i < len(d.ring) && len(out) < max; i++ {
		b := d.ring[(start+i)%len(d.ring)].backend
		if live != nil && !live(b) {
			continue
		}
		seen := false
		for _, prev := range out {
			if prev == b {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, b)
		}
	}
	return out
}

// String describes the directory for logs.
func (d *Directory) String() string {
	return fmt.Sprintf("directory{%d backends, %d replicas}", len(d.backends), d.replicas)
}

// mix64 is the splitmix64 finalizer: FNV-1a alone clusters badly for
// short sequential inputs ("device-0".."device-N", vnode counters), so
// every ring point and key hash gets one full-avalanche pass before
// placement. Fixed constants keep it process-independent.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// fnv1a is the 64-bit FNV-1a hash: standard, allocation-free, and — the
// property the ring depends on — identical in every process and on every
// platform, unlike maphash or any seeded hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func fnv1aByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= 1099511628211
	return h
}

func fnv1aU32(h uint64, v uint32) uint64 {
	for shift := 0; shift < 32; shift += 8 {
		h = fnv1aByte(h, byte(v>>shift))
	}
	return h
}
