package aserver

import (
	"sync"
	"sync/atomic"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/core"
	"audiofile/internal/phonesim"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
	"audiofile/internal/timerwheel"
)

// engine is the data plane for one root device: it owns the device's
// buffering state, its periodic update task, the parked (blocked)
// requests touching it, its phone line pump, and the pass-through
// patches it is responsible for pumping.
//
// Where the paper's DIA serializes every device behind one thread, each
// engine serializes only its own root device behind e.mu. Hot requests
// (PlaySamples, RecordSamples, GetTime) are dispatched inline by the
// connection's reader goroutine under this lock; the control plane (the
// Server.loop goroutine) takes the same lock for the rare control
// operations that touch device state. The engine's task timer — periodic
// updates and precise parked-request wake-ups — is a passive timer on
// the server's sharded timer wheel; the update scheduler's worker pool
// runs due task passes (see scheduler.go). An engine owns no goroutine.
//
// Lock ordering: an engine may lock a peer engine only in ascending
// engine order (pass-through pumping runs on the lower-indexed engine
// and reaches across to the higher); the control plane follows the same
// ascending rule when it needs two engines. A wheel shard lock may be
// taken under e.mu (timer.Arm), never the reverse: wheel fire callbacks
// run with no shard lock held. Server.clientMu is the innermost lock
// (event fan-out).
type engine struct {
	s    *Server
	idx  int // position in Server.engines, ascending root device index
	root *core.Device
	line *phonesim.Line
	m    *engineMetrics // this engine's slice of the server registry

	interval time.Duration // periodic update cadence

	mu      sync.Mutex
	tasks   *taskQueue          // guarded by mu; run by the scheduler's workers
	parks   map[*client]*parked // blocked requests on this device, by client
	patches map[int]*patch      // pass-through patches pumped here, by src device index
	bcast   bchannel            // broadcast channel state (broadcast.go)

	// timer is this engine's registration with the sharded timer wheel,
	// armed for the task queue's earliest deadline (under mu). queued
	// dedupes wheel fires: true while the engine sits in the scheduler's
	// work queue awaiting a worker pass.
	timer  *timerwheel.Timer
	queued atomic.Bool
}

// parked captures a blocked request being resumed by the engine's task
// mechanism: a play whose tail lies beyond the buffer horizon, or a
// blocking record whose data has not been captured yet. The originating
// reader goroutine waits on done before dispatching the connection's
// next request, which preserves per-connection FIFO order across the
// block. The pooled request frame stays pinned until the park finishes.
type parked struct {
	c     *client
	a     *ac
	op    uint8
	ext   uint8
	seq   uint16
	body  []byte        // aliases frame when pooled (records re-decode per retry)
	frame *[]byte       // pooled request frame; returned when the park finishes
	done  chan struct{} // closed exactly once, when the park completes or is discarded
	since time.Time     // registration time, for the park-duration histogram

	// play state: remaining data in playEnc (compressed contexts park
	// already-decompressed data)
	playData []byte
	playTime uint32
	playEnc  sampleconv.Encoding
	// playPooled is set when playData aliases a pool-owned staging buffer
	// (the ADPCM decompression output); it returns to the pool when the
	// parked play finally completes.
	playPooled *[]byte
	// record state is re-derived from body on each retry
}

func newEngine(s *Server, idx int, root *core.Device, line *phonesim.Line) *engine {
	hwDur := time.Duration(root.Backend().HWFrames()) * time.Second / time.Duration(root.Cfg.Rate)
	interval := core.MSUpdate * time.Millisecond
	if hwDur/2 < interval {
		interval = hwDur / 2
	}
	e := &engine{
		s:        s,
		idx:      idx,
		root:     root,
		line:     line,
		m:        s.sm.newEngineMetrics(root.Index),
		interval: interval,
		tasks:    newTaskQueue(),
		parks:    make(map[*client]*parked),
		patches:  make(map[int]*patch),
	}
	// Seed the periodic update (§7.2): every interval, or half the
	// hardware buffer duration if that is shorter. The re-arm uses the
	// tick's own now — one clock read per tick, passed through.
	var tick func(now time.Time)
	tick = func(now time.Time) {
		e.updateLocked()
		e.tasks.add(now.Add(e.interval), tick)
	}
	e.tasks.add(time.Now().Add(e.interval), tick)
	return e
}

// addTaskLocked schedules fn on the engine's task queue (caller holds
// e.mu) and promotes the engine's wheel timer when the new deadline is
// the queue's earliest — what used to be a poke on the engine
// goroutine's wake channel. If the new task is not the earliest, the
// timer is already armed for a sooner deadline (or the engine is queued
// for a worker pass, which re-arms under the lock).
func (e *engine) addTaskLocked(d time.Duration, fn func(now time.Time)) {
	when := time.Now().Add(d)
	e.tasks.add(when, fn)
	if next, ok := e.tasks.next(); ok && next.Equal(when) {
		e.timer.Arm(when)
	}
}

// updateLocked runs one periodic update for the engine's root device:
// buffer maintenance, telephone events, pass-through patching, and
// resumption of blocked requests. Caller holds e.mu.
func (e *engine) updateLocked() {
	e.root.Update()
	if e.line != nil {
		e.pumpLineEvents()
	}
	for _, p := range e.patches {
		e.pumpPatch(p)
	}
	e.resumeParked()
	e.pumpBroadcast()
}

// pumpLineEvents forwards pending telephone line events to interested
// clients.
func (e *engine) pumpLineEvents() {
	for _, lev := range e.line.DrainEvents() {
		var code uint8
		switch lev.Kind {
		case phonesim.EvRing:
			code = proto.EventPhoneRing
		case phonesim.EvDTMF:
			code = proto.EventPhoneDTMF
		case phonesim.EvLoop:
			code = proto.EventPhoneLoop
		case phonesim.EvHook:
			code = proto.EventPhoneHookSwitch
		}
		e.s.deliverEvent(e.root.Index, e.root.Now(), code, lev.Detail, 0)
	}
}

// peer returns the engine owning the patch endpoint that is not ours.
func (e *engine) peer(p *patch) *engine {
	other := p.a
	if other == e.root {
		other = p.b
	}
	return e.s.engineByDev[other.Index]
}

// pumpPatch moves newly recorded audio across a pass-through patch in
// both directions. The patch is registered on the lower-indexed engine
// (us); the peer's device state is reached under its lock, acquired in
// ascending engine order.
func (e *engine) pumpPatch(p *patch) {
	peer := e.peer(p)
	peer.mu.Lock()
	pumpPatchDir(p.a, p.b, p.buf, &p.aTaken, &p.bOut)
	pumpPatchDir(p.b, p.a, p.buf, &p.bTaken, &p.aOut)
	peer.mu.Unlock()
}

func pumpPatchDir(src, dst *core.Device, buf []byte, taken *atime.ATime, out *atime.ATime) {
	now := src.Now()
	n := int(atime.Sub(now, *taken))
	if n <= 0 {
		return
	}
	max := len(buf) / src.FrameBytes()
	for n > 0 {
		c := n
		if c > max {
			c = max
		}
		chunk := buf[:c*src.FrameBytes()]
		src.Record(*taken, chunk, src.Cfg.Enc, 0)
		// Keep the output cursor inside dst's near future; resynchronize
		// after stalls or clock drift.
		lead := dst.Backend().HWFrames()
		dnow := dst.Now()
		if atime.Before(*out, dnow) || atime.After(*out, atime.Add(dnow, 2*lead)) {
			*out = atime.Add(dnow, lead/2)
		}
		dst.Play(*out, chunk, src.Cfg.Enc, 0, false)
		*out = atime.Add(*out, c)
		*taken = atime.Add(*taken, c)
		n -= c
	}
}

// resumeParked retries every blocked request on this engine. Caller
// holds e.mu.
func (e *engine) resumeParked() {
	for c, p := range e.parks {
		e.retryParked(c, p)
	}
}

// registerParkLocked records a blocked request on this engine and starts
// its lifecycle accounting: every park registered here is later released
// by finishPark exactly once, so parks started == completed + discarded
// whenever no parks are outstanding. Caller holds e.mu.
func (e *engine) registerParkLocked(c *client, p *parked) {
	p.since = time.Now()
	e.parks[c] = p
	e.m.parksStarted.Inc()
	e.m.parkedNow.Add(1)
}

// finishPark removes a park and releases everything it pinned: the
// pooled request frame, any pooled staging buffer, and the reader
// goroutine waiting on done. completed distinguishes a request that ran
// to completion from one discarded (dead client, shutdown). Caller holds
// e.mu.
func (e *engine) finishPark(c *client, p *parked, completed bool) {
	delete(e.parks, c)
	if completed {
		e.m.parksCompleted.Inc()
	} else {
		e.m.parksDiscarded.Inc()
	}
	e.m.parkedNow.Add(-1)
	e.m.parkNs.Observe(time.Since(p.since).Nanoseconds())
	if p.playPooled != nil {
		putBytes(p.playPooled)
		p.playPooled = nil
	}
	if p.frame != nil {
		e.s.putFrame(p.frame)
		p.frame = nil
	}
	close(p.done)
}

// retryParked re-attempts a blocked request after time has advanced.
// Caller holds e.mu.
func (e *engine) retryParked(c *client, p *parked) {
	if c.dead.Load() {
		e.finishPark(c, p, false)
		return
	}
	a := p.a
	switch p.op {
	case proto.OpPlaySamples:
		res := a.dev.Play(atime.ATime(p.playTime), p.playData, p.playEnc, a.playGain, a.preempt)
		if res.Blocked {
			cfb := p.playEnc.BytesPerSamples(1) * a.channels
			p.playData = p.playData[res.Consumed*cfb:]
			p.playTime = uint32(atime.Add(atime.ATime(p.playTime), res.Consumed))
			return
		}
		if p.ext&proto.SampleFlagSuppressReply == 0 {
			c.sendReply(&proto.Reply{Time: uint32(res.Now)}, p.seq)
		}
		e.finishPark(c, p, true)
	case proto.OpRecordSamples:
		r := proto.NewReader(c.order, p.body)
		q := proto.DecodeRecordSamples(r, p.ext)
		if a.enc == sampleconv.ADPCM4 {
			linp := getBytes(4 * int(q.NBytes))
			res := a.dev.Record(atime.ATime(q.Time), *linp, sampleconv.LIN16, a.recGain)
			if res.Avail < 2*int(q.NBytes) {
				putBytes(linp)
				return // still short; stay parked (a wake task is pending)
			}
			frames := res.Avail &^ 1
			samplesp := getLin(frames)
			sampleconv.ToLin16(*samplesp, *linp, sampleconv.LIN16, frames)
			putBytes(linp)
			m, payload := newRecordReplyMsg(frames / 2)
			a.recCoder.Encode(payload, *samplesp)
			putLin(samplesp)
			finishRecordReply(c, a, m, frames/2, uint32(res.Now), 0, p.seq)
			e.finishPark(c, p, true)
			return
		}
		cfb := a.clientFrameBytes()
		want := int(q.NBytes) / cfb
		m, payload := newRecordReplyMsg(want * cfb)
		res := a.dev.Record(atime.ATime(q.Time), payload, a.enc, a.recGain)
		if res.Avail < want {
			// Still short (e.g. the clock runs slightly slow relative to
			// the wall-clock estimate): try again shortly.
			m.release()
			missing := want - res.Avail
			wakeIn := time.Duration(missing)*time.Second/time.Duration(a.dev.Cfg.Rate) + time.Millisecond
			e.addTaskLocked(wakeIn, func(time.Time) {
				if e.parks[c] == p {
					e.retryParked(c, p)
				}
			})
			return
		}
		finishRecordReply(c, a, m, want*cfb, uint32(res.Now), q.Flags, p.seq)
		e.finishPark(c, p, true)
	default:
		e.finishPark(c, p, false)
	}
}

// dropClientParks discards any park the client holds on this engine,
// releasing its pinned buffers and its reader (if still waiting). Called
// by the control plane when a client unregisters.
func (e *engine) dropClientParks(c *client) {
	e.mu.Lock()
	if p, ok := e.parks[c]; ok {
		e.finishPark(c, p, false)
	}
	e.mu.Unlock()
}
